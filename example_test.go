package pwcet_test

import (
	"fmt"

	pwcet "repro"
)

// ExampleAnalyze shows the basic flow: author a program, analyze it
// under the paper's configuration, read the fault-free WCET and the
// pWCET at the 1e-15 target.
func ExampleAnalyze() {
	b := pwcet.NewProgram("demo")
	b.Func("main").Ops(8).Loop(10, func(l *pwcet.Body) { l.Ops(4) })
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.RW})
	if err != nil {
		panic(err)
	}
	fmt.Println("fault-free WCET:", res.FaultFreeWCET)
	fmt.Println("pWCET at 1e-15:", res.PWCET)
	// Output:
	// fault-free WCET: 581
	// pWCET at 1e-15: 581
}

// ExampleEngine_AnalyzeBatch runs a pfail sweep as one engine batch:
// the CFG, fixpoints, IPET system, fault-free WCET and per-set FMM
// solves are computed once and shared by every sweep point; each query
// only re-weights the probabilities and convolves.
func ExampleEngine_AnalyzeBatch() {
	b := pwcet.NewProgram("sweep")
	b.Func("main").Ops(8).Loop(10, func(l *pwcet.Body) { l.Ops(4) })
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
	if err != nil {
		panic(err)
	}
	queries := []pwcet.Query{
		{Pfail: 1e-6, Mechanism: pwcet.SRB},
		{Pfail: 1e-4, Mechanism: pwcet.SRB},
		{Pfail: 1e-3, Mechanism: pwcet.SRB},
	}
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("pfail=%g: pWCET %d\n", queries[i].Pfail, r.PWCET)
	}
	// Output:
	// pfail=1e-06: pWCET 581
	// pfail=0.0001: pWCET 1581
	// pfail=0.001: pWCET 2481
}

// ExampleAnalyzeAll compares the three architectures of the paper on a
// tight loop: the RW recovers the fault-free WCET (category 2), the SRB
// cannot preserve the loop's MRU hits, no protection pays the full
// whole-set penalty.
func ExampleAnalyzeAll() {
	b := pwcet.NewProgram("tight-loop")
	b.Func("main").Ops(40).Loop(50, func(l *pwcet.Body) { l.Ops(12) })
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
	if err != nil {
		panic(err)
	}
	none := results[pwcet.None]
	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW} {
		fmt.Printf("%s: %.2fx fault-free\n", m,
			float64(results[m].PWCET)/float64(none.FaultFreeWCET))
	}
	// Output:
	// none: 18.44x fault-free
	// srb: 5.32x fault-free
	// rw: 1.00x fault-free
}

// ExamplePBF evaluates equation 1 of the paper at its quoted operating
// points: 16-byte (128-bit) cache lines.
func ExamplePBF() {
	fmt.Printf("pbf at pfail=1e-4: %.4f\n", pwcet.PBF(1e-4, 128))
	// Output:
	// pbf at pfail=1e-4: 0.0127
}

// ExampleGain computes the paper's headline metric for one benchmark.
func ExampleGain() {
	p, err := pwcet.Benchmark("fibcall")
	if err != nil {
		panic(err)
	}
	results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("RW gain: %.1f%%\n", 100*pwcet.Gain(results[pwcet.None], results[pwcet.RW]))
	// Output:
	// RW gain: 59.6%
}
