// Command paperfigs regenerates the figures of the paper's evaluation
// (Section IV) as text tables and CSV series:
//
//	paperfigs -fig 1      Figure 1: FMM example + penalty convolution
//	paperfigs -fig 3      Figure 3: adpcm exceedance curves (CSV)
//	paperfigs -fig 4      Figure 4: normalized pWCETs, categories, gains
//	paperfigs -fig gains  Section IV.B: average/min gain summary
//	paperfigs -fig all    everything above
//
// Flags -pfail and -target change the fault probability (default 1e-4)
// and the exceedance target (default 1e-15); -workers bounds the
// goroutines used across benchmarks and inside each analysis
// (0 = GOMAXPROCS). The figures are identical for every worker count.
// -coarsen selects the support-cap coarsening strategy (least-error,
// the tail-faithful default, or keep-heaviest for the legacy figures);
// at the paper's configurations the cap never binds, so both
// strategies regenerate identical figures.
//
// Every figure runs on the session API: one pwcet.Engine per benchmark
// evaluates its whole query grid (mechanisms, pfail points) with the
// cache fixpoints, IPET system and per-set FMM solves shared across
// sweep points instead of recomputed per configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	pwcet "repro"
	"repro/internal/dist"
	"repro/internal/report"
)

// workers is the resolved -workers flag: the bound on concurrent
// benchmark analyses and on each analysis's internal per-set stages.
var workers int

// coarsen is the resolved -coarsen flag, applied to every query.
var coarsen pwcet.CoarsenStrategy

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 3, 4, gains or all")
	pfail := flag.Float64("pfail", 1e-4, "per-bit permanent failure probability")
	target := flag.Float64("target", 1e-15, "target exceedance probability")
	bench := flag.String("bench", "adpcm", "benchmark for -fig 3")
	workersFlag := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	coarsenFlag := flag.String("coarsen", "least-error", "support-cap coarsening strategy: least-error or keep-heaviest")
	flag.Parse()
	if *workersFlag < 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: -workers %d is negative\n", *workersFlag)
		os.Exit(2)
	}
	workers = *workersFlag
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var err error
	if coarsen, err = pwcet.ParseCoarsenStrategy(*coarsenFlag); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(2)
	}

	switch *fig {
	case "1":
		fig1()
	case "3":
		fig3(*bench, *pfail, *target)
	case "4":
		fig4(*pfail, *target, true)
	case "gains":
		fig4(*pfail, *target, false)
	case "motivation":
		motivation(*bench, *target)
	case "all":
		fig1()
		fig3(*bench, *pfail, *target)
		fig4(*pfail, *target, true)
		motivation(*bench, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// motivation regenerates the observation the paper builds on (from
// Hardy & Puaut, RTS 2015 — its reference [1], summarized in the
// introduction): unprotected pWCET estimates "increase rapidly with the
// probability of faults", and the reliability mechanisms flatten that
// growth.
func motivation(name string, target float64) {
	fmt.Printf("=== Motivation ([1]): pWCET growth with pfail for %s, target %g ===\n", name, target)
	p, err := pwcet.Benchmark(name)
	if err != nil {
		fatal(err)
	}
	// One engine, one batch: the 6x3 grid shares every fixpoint and ILP
	// solve; each point only re-weights probabilities and convolves.
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{Workers: workers})
	if err != nil {
		fatal(err)
	}
	pfails := []float64{1e-7, 1e-6, 1e-5, 1e-4, 3e-4, 1e-3}
	mechs := []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW}
	var queries []pwcet.Query
	for _, pf := range pfails {
		for _, m := range mechs {
			queries = append(queries, pwcet.Query{Pfail: pf, Mechanism: m, TargetExceedance: target, Coarsen: coarsen})
		}
	}
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		fatal(err)
	}
	rows := [][]string{}
	for i, pf := range pfails {
		none, srb, rw := results[3*i], results[3*i+1], results[3*i+2]
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", pf),
			fmt.Sprintf("%.3f", norm(none.PWCET, none.FaultFreeWCET)),
			fmt.Sprintf("%.3f", norm(srb.PWCET, none.FaultFreeWCET)),
			fmt.Sprintf("%.3f", norm(rw.PWCET, none.FaultFreeWCET)),
		})
	}
	if err := report.Table(os.Stdout, []string{"pfail", "none/ff", "srb/ff", "rw/ff"}, rows); err != nil {
		fatal(err)
	}
	fmt.Println()
}

// fig1 reproduces Figure 1 of the paper: the example fault miss map and
// the convolution of the first two sets' penalty distributions. The FMM
// values are the figure's own (a 4-set, 2-way illustration).
func fig1() {
	fmt.Println("=== Figure 1: fault miss map example and penalty convolution ===")
	fmm := [][]int64{ // [set][faulty blocks] -> fault-induced misses
		{0, 10, 130},
		{0, 14, 164},
		{0, 13, 193},
		{0, 20, 240},
	}
	const ways = 2
	pbf := pwcet.PBF(1e-4, 128)
	// pwf per equation 2 for W = 2.
	pwf := []float64{(1 - pbf) * (1 - pbf), 2 * pbf * (1 - pbf), pbf * pbf}

	fmt.Println("FMM (misses):        1 faulty   2 faulty")
	for s, row := range fmm {
		fmt.Printf("  set %d              %8d   %8d\n", s, row[1], row[2])
	}
	fmt.Printf("pwf(0)=%.6g pwf(1)=%.6g pwf(2)=%.6g\n", pwf[0], pwf[1], pwf[2])

	perSet := make([]*pwcet.Dist, len(fmm))
	for s, row := range fmm {
		pts := make([]pwcet.Point, ways+1)
		for f := 0; f <= ways; f++ {
			pts[f] = pwcet.Point{Value: row[f], Prob: pwf[f]}
		}
		d, err := dist.New(pts)
		if err != nil {
			fatal(err)
		}
		perSet[s] = d
	}
	conv01 := perSet[0].Convolve(perSet[1])
	fmt.Println("\nPenalty distribution of set 0 + set 1 (Figure 1.b):")
	for _, p := range conv01.Points() {
		fmt.Printf("  penalty %4d misses   probability %.6g\n", p.Value, p.Prob)
	}
	all := conv01.Convolve(perSet[2]).Convolve(perSet[3])
	fmt.Printf("\nAll four sets convolved: %d support points, max penalty %d misses\n",
		all.Len(), all.Max())
	fmt.Printf("P(penalty > 0) = %.6g\n\n", all.CCDF(0))
}

// fig3 prints the complementary cumulative distributions of one
// benchmark (the paper uses adpcm) for the three protection levels.
func fig3(name string, pfail, target float64) {
	fmt.Printf("=== Figure 3: exceedance curves of %s (pfail=%g) ===\n", name, pfail)
	p, err := pwcet.Benchmark(name)
	if err != nil {
		fatal(err)
	}
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{Workers: workers})
	if err != nil {
		fatal(err)
	}
	order := []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW}
	queries := make([]pwcet.Query, len(order))
	for i, m := range order {
		queries[i] = pwcet.Query{Pfail: pfail, Mechanism: m, TargetExceedance: target, Coarsen: coarsen}
	}
	batch, err := eng.AnalyzeBatch(queries)
	if err != nil {
		fatal(err)
	}
	results := make(map[pwcet.Mechanism]*pwcet.Result, len(order))
	for i, m := range order {
		results[m] = batch[i]
	}
	fmt.Println("mechanism,wcet_cycles,exceedance_probability")
	for _, m := range order {
		r := results[m]
		fmt.Printf("%s,%d,1\n", m, r.FaultFreeWCET)
		for _, pt := range r.ExceedanceCurve() {
			if pt.Prob < 1e-30 {
				fmt.Printf("%s,%d,0\n", m, pt.Value)
				break
			}
			fmt.Printf("%s,%d,%.6g\n", m, pt.Value, pt.Prob)
		}
	}
	fmt.Printf("pWCET at %g: none=%d srb=%d rw=%d fault-free=%d\n\n",
		target, results[pwcet.None].PWCET, results[pwcet.SRB].PWCET,
		results[pwcet.RW].PWCET, results[pwcet.None].FaultFreeWCET)

	plotCurves(name, results)
}

// plotCurves renders the three exceedance curves as an ASCII log-log
// chart like the paper's Figure 3 (y: exceedance probability decades,
// x: execution time).
func plotCurves(name string, results map[pwcet.Mechanism]*pwcet.Result) {
	none := results[pwcet.None]
	fmt.Printf("ASCII Figure 3 for %s:\n", name)
	report.ExceedancePlot(os.Stdout, none.FaultFreeWCET, none.PWCET, 72, -16, []report.Curve{
		{Name: "no protection", Symbol: 'n', Quantile: results[pwcet.None].PWCETAt},
		{Name: "SRB", Symbol: 's', Quantile: results[pwcet.SRB].PWCETAt},
		{Name: "RW", Symbol: 'r', Quantile: results[pwcet.RW].PWCETAt},
	})
	fmt.Println()
}

// benchRow is one benchmark's Figure 4 data.
type benchRow struct {
	name              string
	ff, none, rw, srb int64
	gainRW, gainSRB   float64
	category          int
}

// fig4 prints the normalized pWCET table of Figure 4 (and, when table is
// false, only the gain summary of Section IV.B).
func fig4(pfail, target float64, table bool) {
	rows := computeFig4(pfail, target)
	if table {
		fmt.Printf("=== Figure 4: pWCET normalized to no protection (pfail=%g, target=%g) ===\n", pfail, target)
		fmt.Println("benchmark      category  fault-free     rw    srb   none | gainRW gainSRB")
		for _, r := range rows {
			fmt.Printf("%-14s     %d      %8.3f %6.3f %6.3f  1.000 | %5.1f%%  %5.1f%%\n",
				r.name, r.category,
				norm(r.ff, r.none), norm(r.rw, r.none), norm(r.srb, r.none),
				100*r.gainRW, 100*r.gainSRB)
		}
	}
	printGainSummary(rows)
}

func computeFig4(pfail, target float64) []benchRow {
	names := pwcet.Benchmarks()
	rows := make([]benchRow, len(names))
	// The 75 analyses are independent; run them on the bounded worker
	// pool (each benchmark's engine stays sequential inside: the outer
	// fan-out already saturates the pool).
	var wg sync.WaitGroup
	jobs := make(chan int)
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p, err := pwcet.Benchmark(names[i])
				if err == nil {
					var results []*pwcet.Result
					var eng *pwcet.Engine
					eng, err = pwcet.NewEngine(p, pwcet.EngineOptions{Workers: 1})
					if err == nil {
						results, err = eng.AnalyzeBatch([]pwcet.Query{
							{Pfail: pfail, Mechanism: pwcet.None, TargetExceedance: target, Coarsen: coarsen},
							{Pfail: pfail, Mechanism: pwcet.RW, TargetExceedance: target, Coarsen: coarsen},
							{Pfail: pfail, Mechanism: pwcet.SRB, TargetExceedance: target, Coarsen: coarsen},
						})
					}
					if err == nil {
						none, rw, srb := results[0], results[1], results[2]
						rows[i] = benchRow{
							name:    names[i],
							ff:      none.FaultFreeWCET,
							none:    none.PWCET,
							rw:      rw.PWCET,
							srb:     srb.PWCET,
							gainRW:  pwcet.Gain(none, rw),
							gainSRB: pwcet.Gain(none, srb),
						}
						rows[i].category = categorize(rows[i])
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		fatal(firstErr)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].category != rows[j].category {
			return rows[i].category < rows[j].category
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// categorize applies the paper's four-way classification (Section IV.B):
// 1: both mechanisms recover the fault-free WCET; 2: only RW does;
// 3: neither does but their gains are similar; 4: mixed behaviour.
func categorize(r benchRow) int {
	rwAtFF := r.rw == r.ff
	srbAtFF := r.srb == r.ff
	switch {
	case rwAtFF && srbAtFF:
		return 1
	case rwAtFF:
		return 2
	case similar(r.gainRW, r.gainSRB):
		return 3
	default:
		return 4
	}
}

// similar reports whether two gains are within 2 percentage points.
func similar(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 0.02
}

func printGainSummary(rows []benchRow) {
	var sumRW, sumSRB, minRW, minSRB float64
	minRW, minSRB = 1, 1
	var minRWName, minSRBName string
	counts := map[int]int{}
	for _, r := range rows {
		sumRW += r.gainRW
		sumSRB += r.gainSRB
		if r.gainRW < minRW {
			minRW, minRWName = r.gainRW, r.name
		}
		if r.gainSRB < minSRB {
			minSRB, minSRBName = r.gainSRB, r.name
		}
		counts[r.category]++
	}
	n := float64(len(rows))
	fmt.Printf("\n=== Gain summary (Section IV.B; paper: RW avg 48%% min 26%% fft, SRB avg 40%% min 25%% ud) ===\n")
	fmt.Printf("average gain RW : %5.1f%%   (paper: 48%%)\n", 100*sumRW/n)
	fmt.Printf("average gain SRB: %5.1f%%   (paper: 40%%)\n", 100*sumSRB/n)
	fmt.Printf("minimum gain RW : %5.1f%% on %s (paper: 26%% on fft)\n", 100*minRW, minRWName)
	fmt.Printf("minimum gain SRB: %5.1f%% on %s (paper: 25%% on ud)\n", 100*minSRB, minSRBName)
	fmt.Printf("category sizes  : 1:%d 2:%d 3:%d 4:%d\n\n", counts[1], counts[2], counts[3], counts[4])
}

func norm(v, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
