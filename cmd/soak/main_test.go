package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestLocalLaneSmoke runs the in-process chaos lane alone for a short
// burst: random programs must analyze deterministically and fuzzed
// cancellations must not trip any contract check.
func TestLocalLaneSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-duration", "1s", "-seed", "7", "-clients", "0"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "all checks held") {
		t.Fatalf("missing success line in output:\n%s", out.String())
	}
}

// TestHTTPLaneSmoke soaks an in-process serve.Server over a real HTTP
// listener: randomized sweeps with injected client disconnects must
// stay byte-identical to the in-process oracle.
func TestHTTPLaneSmoke(t *testing.T) {
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", addr, "-duration", "2s", "-seed", "3",
		"-clients", "2", "-disconnect-prob", "0.3", "-local=false",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestFlagValidation pins the usage errors.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-addr", "x", "-pwcetd", "y"},
		{"-restart-every", "5s"},
		{"-pwcetd-fault", "core.force-evict=on"},
		{"-disconnect-prob", "1.5"},
		{"-duration", "0s"},
		{"-local=false"},
		{"extra-arg"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}
