// Command soak is the chaos harness for the pwcet analysis service:
// it hammers a live pwcetd with randomized sweep specifications while
// injecting client-side chaos (mid-stream disconnects, retry storms,
// SIGTERM/restart cycles) and checks the two properties the service
// promises under all of it:
//
//   - byte-identity: every completed response is byte-for-byte the
//     NDJSON an in-process engine produces for the same spec (a
//     response cut short by a disconnect must be a clean line-boundary
//     prefix of it — truncated, never corrupted);
//   - flat residency: the pool's resident artifact bytes never exceed
//     the configured budget (max-engines x max-artifact-bytes), no
//     matter how many distinct sweeps the run throws at it.
//
// Alongside the HTTP lane, a local chaos lane generates random
// programs (internal/progen) and fuzzes the engine directly with
// cancellation: queries canceled at random points must return context
// errors, leave zero pinned artifact bytes behind, and a subsequent
// uncanceled run must still produce identical results.
//
//	soak -pwcetd ./pwcetd -duration 60s -restart-every 15s
//	soak -addr 127.0.0.1:8080 -api-key k1 -clients 8 -disconnect-prob 0.2
//	soak -duration 10s                  # local chaos lane only
//
// With -pwcetd, soak spawns and supervises the daemon itself (on a
// loopback port), restarting it with SIGTERM every -restart-every; a
// daemon exit soak did not request fails the run. With -addr it
// targets an already-running server and only reports residency.
// Exit status: 0 when every check held, 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	pwcet "repro"
	"repro/internal/batchspec"
	"repro/internal/progen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed command line.
type config struct {
	addr           string
	pwcetdPath     string
	apiKey         string
	duration       time.Duration
	seed           int64
	clients        int
	restartEvery   time.Duration
	disconnectProb float64
	local          bool
	maxEngines     int
	maxArtifact    int64
	faults         string
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	fs.StringVar(&c.addr, "addr", "", "address of a running pwcetd to target (host:port)")
	fs.StringVar(&c.pwcetdPath, "pwcetd", "", "path to a pwcetd binary to spawn and supervise on a loopback port")
	fs.StringVar(&c.apiKey, "api-key", "", "bearer token sent with every request (and configured on a spawned daemon)")
	fs.DurationVar(&c.duration, "duration", 30*time.Second, "how long to soak")
	fs.Int64Var(&c.seed, "seed", 1, "PRNG seed; a given seed replays the same request and chaos schedule")
	fs.IntVar(&c.clients, "clients", 4, "concurrent HTTP clients")
	fs.DurationVar(&c.restartEvery, "restart-every", 0, "SIGTERM and restart the spawned daemon this often (0 = never; requires -pwcetd)")
	fs.Float64Var(&c.disconnectProb, "disconnect-prob", 0.1, "probability a client abandons its stream mid-read, in [0,1]")
	fs.BoolVar(&c.local, "local", true, "run the local engine chaos lane (random programs, cancellation fuzz)")
	fs.IntVar(&c.maxEngines, "max-engines", 4, "pool bound for a spawned daemon (residency budget = max-engines x max-artifact-bytes)")
	fs.Int64Var(&c.maxArtifact, "max-artifact-bytes", 8<<20, "per-engine artifact budget for a spawned daemon")
	fs.StringVar(&c.faults, "pwcetd-fault", "", "fault spec forwarded to the spawned daemon's -fault flag (requires -pwcetd and a binary built with -tags pwcetfault)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	usage := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(stderr, "soak: %v\n", err)
		fs.Usage()
		return err
	}
	if fs.NArg() > 0 {
		return nil, usage("unexpected arguments %q", fs.Args())
	}
	if c.addr != "" && c.pwcetdPath != "" {
		return nil, usage("-addr and -pwcetd are mutually exclusive")
	}
	if c.restartEvery < 0 || c.duration <= 0 {
		return nil, usage("durations must be positive")
	}
	if c.restartEvery > 0 && c.pwcetdPath == "" {
		return nil, usage("-restart-every requires -pwcetd (soak cannot restart a daemon it does not own)")
	}
	if c.faults != "" && c.pwcetdPath == "" {
		return nil, usage("-pwcetd-fault requires -pwcetd (soak cannot arm faults on a daemon it does not own)")
	}
	if c.disconnectProb < 0 || c.disconnectProb > 1 {
		return nil, usage("-disconnect-prob %g outside [0,1]", c.disconnectProb)
	}
	if c.clients < 0 || c.maxEngines <= 0 || c.maxArtifact <= 0 {
		return nil, usage("-clients must be >= 0 and pool bounds positive")
	}
	if c.addr == "" && c.pwcetdPath == "" && !c.local {
		return nil, usage("nothing to do: no -addr, no -pwcetd, and -local=false")
	}
	return c, nil
}

// soaker carries the shared run state: chaos counters, the reference
// oracle, and the first recorded divergence.
type soaker struct {
	cfg *config

	httpOK         atomic.Uint64 // byte-identical completed responses
	httpTruncated  atomic.Uint64 // clean line-boundary prefixes (disconnects, drains)
	httpRetries    atomic.Uint64 // transient failures retried (conn refused, 503)
	httpAborts     atomic.Uint64 // client-initiated mid-stream disconnects
	mismatches     atomic.Uint64 // responses diverging from the reference bytes
	localPrograms  atomic.Uint64 // random programs analyzed by the local lane
	localCancels   atomic.Uint64 // fuzzed cancellations observed
	localFailures  atomic.Uint64 // local-lane contract violations
	restarts       atomic.Uint64 // commanded SIGTERM/restart cycles
	unexpectedExit atomic.Uint64 // daemon exits soak did not request
	maxResidency   atomic.Int64  // peak engine_pool.artifact_bytes observed
	overBudget     atomic.Uint64 // residency polls exceeding the budget

	refMu   sync.Mutex
	refs    map[string][]byte // spec body -> expected NDJSON bytes
	diagMu  sync.Mutex
	firstMu string // first mismatch diagnostic, for the summary
}

func (s *soaker) recordMismatch(diag string) {
	s.mismatches.Add(1)
	s.diagMu.Lock()
	if s.firstMu == "" {
		s.firstMu = diag
	}
	s.diagMu.Unlock()
}

// smallBenchmarks returns the suite's smallest benchmarks by code
// size — cheap enough to sweep repeatedly for the whole soak.
func smallBenchmarks(n int) []string {
	names := pwcet.Benchmarks()
	sort.Slice(names, func(i, j int) bool {
		pi, _ := pwcet.Benchmark(names[i])
		pj, _ := pwcet.Benchmark(names[j])
		if pi.CodeBytes() != pj.CodeBytes() {
			return pi.CodeBytes() < pj.CodeBytes()
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}

// randomSpec builds a random but valid sweep specification over the
// small-benchmark pool. json.Marshal sorts map keys, so a given rng
// state always yields the same body bytes.
func randomSpec(rng *rand.Rand, pool []string) string {
	spec := map[string]any{}
	n := 1 + rng.Intn(2)
	perm := rng.Perm(len(pool))[:n]
	sort.Ints(perm)
	benches := make([]string, n)
	for i, p := range perm {
		benches[i] = pool[p]
	}
	spec["benchmarks"] = benches

	pfails := []float64{1e-5, 1e-4, 1e-3}
	lambdas := []float64{1e-12, 1e-10}
	switch rng.Intn(4) {
	case 0:
		spec["fault_model"] = "transient"
		spec["lambdas"] = lambdas[:1+rng.Intn(len(lambdas))]
	case 1:
		spec["fault_model"] = "combined"
		spec["pfails"] = pfails[:1+rng.Intn(len(pfails))]
		spec["lambdas"] = lambdas[:1]
	default:
		spec["pfails"] = pfails[:1+rng.Intn(len(pfails))]
	}
	if rng.Intn(2) == 0 {
		spec["mechanisms"] = [][]string{{"none"}, {"rw"}, {"srb"}, {"none", "srb"}}[rng.Intn(4)]
	}
	if rng.Intn(2) == 0 {
		spec["max_support"] = []int{256, 1024, 4096}[rng.Intn(3)]
	}
	if rng.Intn(4) == 0 {
		spec["coarsen"] = "keep-heaviest"
	}
	if rng.Intn(8) == 0 {
		spec["exact_convolve"] = true
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err) // literal maps of strings and numbers cannot fail
	}
	return string(b)
}

// reference returns the NDJSON bytes an in-process engine produces for
// the spec — the oracle every HTTP response is compared against.
// Results are memoized: the randomized spec space is small, so most
// requests hit a cached oracle.
func (s *soaker) reference(body string) ([]byte, error) {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	if b, ok := s.refs[body]; ok {
		return b, nil
	}
	spec, err := batchspec.Parse(strings.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("generated spec invalid: %w", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, name := range spec.Benchmarks {
		p, err := pwcet.Benchmark(name)
		if err != nil {
			return nil, err
		}
		eng, err := pwcet.NewEngine(p, spec.EngineOptions(0))
		if err != nil {
			return nil, err
		}
		queries := spec.Queries()
		results, err := eng.AnalyzeBatch(queries)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", name, err)
		}
		for _, r := range batchspec.Rows(name, queries, results) {
			if err := enc.Encode(r); err != nil {
				return nil, err
			}
		}
	}
	s.refs[body] = buf.Bytes()
	return s.refs[body], nil
}

// daemon supervises a spawned pwcetd.
type daemon struct {
	path string
	args []string

	mu       sync.Mutex
	cmd      *exec.Cmd
	exited   chan error
	addr     atomic.Value // string; "" until the listener is up
	stopping atomic.Bool
	s        *soaker
}

func (d *daemon) start() error {
	cmd := exec.Command(d.path, d.args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			// "pwcetd: listening on 127.0.0.1:NNN (pool: ...)"
			if f := strings.Fields(sc.Text()); len(f) >= 4 && f[1] == "listening" {
				select {
				case ready <- f[3]:
				default:
				}
			}
		}
	}()
	exited := make(chan error, 1)
	go func() {
		err := cmd.Wait()
		if !d.stopping.Load() {
			d.s.unexpectedExit.Add(1)
		}
		exited <- err
	}()
	select {
	case a := <-ready:
		d.addr.Store(a)
	case err := <-exited:
		return fmt.Errorf("pwcetd exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return errors.New("pwcetd did not report a listen address within 10s")
	}
	d.mu.Lock()
	d.cmd, d.exited = cmd, exited
	d.mu.Unlock()
	return nil
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (d *daemon) stop() error {
	d.mu.Lock()
	cmd, exited := d.cmd, d.exited
	d.mu.Unlock()
	if cmd == nil {
		return nil
	}
	d.stopping.Store(true)
	cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-exited:
		return err
	case <-time.After(45 * time.Second):
		cmd.Process.Kill()
		return errors.New("pwcetd did not drain within 45s of SIGTERM")
	}
}

func (d *daemon) restart() error {
	if err := d.stop(); err != nil {
		return err
	}
	d.stopping.Store(false)
	return d.start()
}

// client runs one HTTP soak loop: random spec, POST, compare against
// the oracle; transient failures (connection refused during a restart
// window, 503 while draining) back off and retry.
func (s *soaker) client(ctx context.Context, id int, addr func() string) {
	rng := rand.New(rand.NewSource(s.cfg.seed + int64(id)*7919))
	pool := smallBenchmarks(6)
	hc := &http.Client{}
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		body := randomSpec(rng, pool)
		want, err := s.reference(body)
		if err != nil {
			s.recordMismatch(fmt.Sprintf("reference oracle failed: %v", err))
			return
		}
		abortAfter := -1
		if len(want) > 1 && rng.Float64() < s.cfg.disconnectProb {
			abortAfter = rng.Intn(len(want))
		}
		got, status, err := s.post(ctx, hc, addr(), body, abortAfter)
		switch {
		case ctx.Err() != nil:
			return
		case err != nil || status == http.StatusServiceUnavailable:
			s.httpRetries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		case status != http.StatusOK:
			s.recordMismatch(fmt.Sprintf("HTTP %d for spec %s: %s", status, body, got))
		case abortAfter >= 0:
			s.httpAborts.Add(1)
		case bytes.Equal(got, want):
			s.httpOK.Add(1)
		case len(got) < len(want) && bytes.HasPrefix(want, got) &&
			(len(got) == 0 || got[len(got)-1] == '\n'):
			// A stream cut at a row boundary (drain, injected disconnect
			// fault): truncated is acceptable, corrupted is not.
			s.httpTruncated.Add(1)
		default:
			s.recordMismatch(fmt.Sprintf("response diverges from in-process run for spec %s:\n got: %.200q\nwant: %.200q", body, got, want))
		}
		backoff = 50 * time.Millisecond
	}
}

// post issues one batch request. abortAfter >= 0 reads that many bytes
// and then abandons the stream (the injected client disconnect).
func (s *soaker) post(ctx context.Context, hc *http.Client, addr, body string, abortAfter int) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/batch", strings.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if s.cfg.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+s.cfg.apiKey)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if abortAfter >= 0 && resp.StatusCode == http.StatusOK {
		io.CopyN(io.Discard, resp.Body, int64(abortAfter))
		return nil, resp.StatusCode, nil
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// pollResidency samples /metrics and records the pool's resident
// artifact bytes; budget > 0 additionally asserts the flat-residency
// bound (only known when soak spawned the daemon itself).
func (s *soaker) pollResidency(ctx context.Context, addr func() string, budget int64) {
	hc := &http.Client{Timeout: 2 * time.Second}
	var snap struct {
		Pool struct {
			ArtifactBytes int64 `json:"artifact_bytes"`
		} `json:"engine_pool"`
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(250 * time.Millisecond):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr()+"/metrics", nil)
		if err != nil {
			continue
		}
		if s.cfg.apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+s.cfg.apiKey)
		}
		resp, err := hc.Do(req)
		if err != nil {
			continue // restart window
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for {
			prev := s.maxResidency.Load()
			if snap.Pool.ArtifactBytes <= prev || s.maxResidency.CompareAndSwap(prev, snap.Pool.ArtifactBytes) {
				break
			}
		}
		if budget > 0 && snap.Pool.ArtifactBytes > budget {
			s.overBudget.Add(1)
		}
	}
}

// localLane fuzzes the engine directly: random programs, random
// cancellation points, and the three contracts — canceled queries
// return context errors, pins are released (zero pinned bytes), and a
// subsequent clean run is unaffected (identical pWCETs across two
// uncanceled runs).
func (s *soaker) localLane(ctx context.Context) {
	rng := rand.New(rand.NewSource(s.cfg.seed ^ 0x50a4))
	params := progen.DefaultParams()
	for ctx.Err() == nil {
		p := progen.Random(rng, params)
		eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{MaxArtifactBytes: 4 << 20})
		if err != nil {
			s.localFailures.Add(1)
			return
		}
		queries := []pwcet.Query{
			{Pfail: 1e-4, Mechanism: pwcet.None},
			{Pfail: 1e-4, Mechanism: pwcet.RW},
			{Pfail: 1e-4, Mechanism: pwcet.SRB},
		}
		if rng.Intn(2) == 0 {
			cctx, cancel := context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
			_, err := eng.AnalyzeBatchContext(cctx, queries)
			cancel()
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					s.localFailures.Add(1)
				} else {
					s.localCancels.Add(1)
				}
			}
			if ms := eng.MemStats(); ms.PinnedBytes != 0 {
				s.localFailures.Add(1)
			}
		}
		first, err1 := eng.AnalyzeBatch(queries)
		second, err2 := eng.AnalyzeBatch(queries)
		if err1 != nil || err2 != nil {
			if ctx.Err() != nil {
				return
			}
			s.localFailures.Add(1)
			continue
		}
		for i := range first {
			if first[i].PWCET != second[i].PWCET || first[i].FaultFreeWCET != second[i].FaultFreeWCET {
				s.localFailures.Add(1)
			}
		}
		s.localPrograms.Add(1)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	s := &soaker{cfg: cfg, refs: make(map[string][]byte)}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var budget int64
	addr := func() string { return cfg.addr }
	var d *daemon
	if cfg.pwcetdPath != "" {
		budget = int64(cfg.maxEngines) * cfg.maxArtifact
		dArgs := []string{
			"-addr", "127.0.0.1:0",
			"-max-engines", fmt.Sprint(cfg.maxEngines),
			"-max-artifact-bytes", fmt.Sprint(cfg.maxArtifact),
		}
		if cfg.apiKey != "" {
			dArgs = append(dArgs, "-api-keys", cfg.apiKey)
		}
		if cfg.faults != "" {
			dArgs = append(dArgs, "-fault", cfg.faults)
		}
		d = &daemon{path: cfg.pwcetdPath, args: dArgs, s: s}
		if err := d.start(); err != nil {
			fmt.Fprintln(stderr, "soak:", err)
			return 1
		}
		addr = func() string { a, _ := d.addr.Load().(string); return a }
		fmt.Fprintf(stdout, "soak: spawned %s on %s (budget %d bytes)\n", cfg.pwcetdPath, addr(), budget)
	}

	var wg sync.WaitGroup
	httpLane := cfg.addr != "" || d != nil
	if httpLane {
		for i := 0; i < cfg.clients; i++ {
			wg.Add(1)
			go func(id int) { defer wg.Done(); s.client(ctx, id, addr) }(i)
		}
		wg.Add(1)
		go func() { defer wg.Done(); s.pollResidency(ctx, addr, budget) }()
	}
	if cfg.local {
		wg.Add(1)
		go func() { defer wg.Done(); s.localLane(ctx) }()
	}
	if d != nil && cfg.restartEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(cfg.restartEvery):
				}
				if ctx.Err() != nil {
					return
				}
				if err := d.restart(); err != nil {
					fmt.Fprintln(stderr, "soak: restart:", err)
					s.unexpectedExit.Add(1)
					return
				}
				s.restarts.Add(1)
				fmt.Fprintf(stdout, "soak: restarted pwcetd, now on %s\n", addr())
			}
		}()
	}
	wg.Wait()
	cancel()
	if d != nil {
		if err := d.stop(); err != nil {
			fmt.Fprintln(stderr, "soak: shutdown:", err)
			s.unexpectedExit.Add(1)
		}
	}

	fmt.Fprintf(stdout, "soak: %v seed=%d: %d identical, %d truncated, %d client aborts, %d retries, %d restarts\n",
		cfg.duration, cfg.seed, s.httpOK.Load(), s.httpTruncated.Load(), s.httpAborts.Load(), s.httpRetries.Load(), s.restarts.Load())
	fmt.Fprintf(stdout, "soak: local lane: %d programs, %d fuzzed cancellations; peak residency %d bytes (budget %d)\n",
		s.localPrograms.Load(), s.localCancels.Load(), s.maxResidency.Load(), budget)

	failed := false
	fail := func(format string, a ...any) {
		failed = true
		fmt.Fprintf(stderr, "soak: FAIL: "+format+"\n", a...)
	}
	if n := s.mismatches.Load(); n > 0 {
		s.diagMu.Lock()
		fail("%d byte-identity mismatches; first: %s", n, s.firstMu)
		s.diagMu.Unlock()
	}
	if n := s.unexpectedExit.Load(); n > 0 {
		fail("%d unexpected daemon exits", n)
	}
	if n := s.overBudget.Load(); n > 0 {
		fail("residency exceeded budget %d bytes in %d samples (peak %d)", budget, n, s.maxResidency.Load())
	}
	if n := s.localFailures.Load(); n > 0 {
		fail("%d local-lane contract violations (cancellation/pin/determinism)", n)
	}
	if httpLane && s.httpOK.Load() == 0 {
		fail("HTTP lane completed zero byte-identical responses — the service never answered")
	}
	if cfg.local && s.localPrograms.Load() == 0 {
		fail("local lane analyzed zero programs")
	}
	if failed {
		return 1
	}
	fmt.Fprintln(stdout, "soak: all checks held")
	return 0
}
