package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComputeFMMWorkers/workers=1-8         	      79	  14490974 ns/op
BenchmarkComputeFMMWorkers/workers=4-8         	     310	   3621205 ns/op
BenchmarkFig3-8   	       2	 504804832 ns/op	   1.5399e+06 pwcet-none	368486 wcet-fault-free
PASS
ok  	repro	3.179s
`

func TestParse(t *testing.T) {
	base, err := parse(bufio.NewScanner(strings.NewReader(sample)), "pr2")
	if err != nil {
		t.Fatal(err)
	}
	if base.Label != "pr2" {
		t.Errorf("label %q", base.Label)
	}
	if base.Context["goos"] != "linux" || !strings.Contains(base.Context["cpu"], "Xeon") {
		t.Errorf("context not captured: %v", base.Context)
	}
	if len(base.Results) != 3 {
		t.Fatalf("%d results, want 3", len(base.Results))
	}
	r := base.Results[1]
	if r.Name != "BenchmarkComputeFMMWorkers/workers=4-8" || r.Iterations != 310 || r.NsPerOp != 3621205 {
		t.Errorf("result 1 = %+v", r)
	}
	fig := base.Results[2]
	if fig.Metrics["pwcet-none"] != 1.5399e+06 || fig.Metrics["wcet-fault-free"] != 368486 {
		t.Errorf("custom metrics not captured: %+v", fig.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")), ""); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX 12 bogus\n")), ""); err == nil {
		t.Fatal("malformed line accepted")
	}
}
