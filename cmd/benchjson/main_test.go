package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComputeFMMWorkers/workers=1-8         	      79	  14490974 ns/op
BenchmarkComputeFMMWorkers/workers=4-8         	     310	   3621205 ns/op
BenchmarkFig3-8   	       2	 504804832 ns/op	   1.5399e+06 pwcet-none	368486 wcet-fault-free
PASS
ok  	repro	3.179s
`

func TestParse(t *testing.T) {
	base, err := parse(bufio.NewScanner(strings.NewReader(sample)), "pr2")
	if err != nil {
		t.Fatal(err)
	}
	if base.Label != "pr2" {
		t.Errorf("label %q", base.Label)
	}
	if base.Context["goos"] != "linux" || !strings.Contains(base.Context["cpu"], "Xeon") {
		t.Errorf("context not captured: %v", base.Context)
	}
	if len(base.Results) != 3 {
		t.Fatalf("%d results, want 3", len(base.Results))
	}
	r := base.Results[1]
	if r.Name != "BenchmarkComputeFMMWorkers/workers=4-8" || r.Iterations != 310 || r.NsPerOp != 3621205 {
		t.Errorf("result 1 = %+v", r)
	}
	fig := base.Results[2]
	if fig.Metrics["pwcet-none"] != 1.5399e+06 || fig.Metrics["wcet-fault-free"] != 368486 {
		t.Errorf("custom metrics not captured: %+v", fig.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")), ""); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX 12 bogus\n")), ""); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// runCmd executes run with the given stdin and captured output.
func runCmd(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

// writeBaseline records the sample run into a baseline file, scaling
// every ns/op by the factor (so tests can fabricate faster/slower
// baselines from one source of truth).
func writeBaseline(t *testing.T, scale float64) string {
	t.Helper()
	base, err := parse(bufio.NewScanner(strings.NewReader(sample)), "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		base.Results[i].NsPerOp *= scale
		// Fabricate a different GOMAXPROCS suffix: comparisons must
		// match names across machines with different core counts.
		base.Results[i].Name = strings.TrimSuffix(base.Results[i].Name, "-8") + "-4"
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordModeWritesJSON(t *testing.T) {
	code, stdout, stderr := runCmd(t, sample, "-label", "pr3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	base := &Baseline{}
	if err := json.Unmarshal([]byte(stdout), base); err != nil {
		t.Fatalf("unparseable output: %v", err)
	}
	if base.Label != "pr3" || len(base.Results) != 3 {
		t.Errorf("recorded baseline %+v", base)
	}
}

// TestCompareWithinThreshold: identical numbers (modulo the GOMAXPROCS
// suffix) pass the gate.
func TestCompareWithinThreshold(t *testing.T) {
	code, stdout, stderr := runCmd(t, sample, "-compare", writeBaseline(t, 1.0))
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all 3 shared benchmarks within 25%") {
		t.Errorf("missing pass summary:\n%s", stdout)
	}
}

// TestCompareFlagsRegression: a current run more than threshold slower
// than the baseline fails with exit 1 and names the offender.
func TestCompareFlagsRegression(t *testing.T) {
	// Baseline 2x faster than the current numbers = +100% regression.
	code, stdout, _ := runCmd(t, sample, "-compare", writeBaseline(t, 0.5))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") || !strings.Contains(stdout, "3 of 3 shared benchmarks regressed") {
		t.Errorf("missing regression report:\n%s", stdout)
	}

	// The same run passes with a generous threshold.
	code, _, _ = runCmd(t, sample, "-compare", writeBaseline(t, 0.5), "-threshold", "150")
	if code != 0 {
		t.Errorf("threshold 150%% still failed (exit %d)", code)
	}

	// Improvements never fail, whatever their size.
	code, stdout, _ = runCmd(t, sample, "-compare", writeBaseline(t, 100))
	if code != 0 {
		t.Errorf("improvement flagged as regression (exit %d):\n%s", code, stdout)
	}
}

// TestCompareNoOverlapFails: a baseline with disjoint benchmark names
// must not pass vacuously.
func TestCompareNoOverlapFails(t *testing.T) {
	other := `BenchmarkSomethingElse-8 10 12345 ns/op` + "\n"
	base, err := parse(bufio.NewScanner(strings.NewReader(other)), "")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(base)
	path := filepath.Join(t.TempDir(), "disjoint.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCmd(t, sample, "-compare", path)
	if code != 1 {
		t.Fatalf("disjoint compare exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no shared benchmarks") {
		t.Errorf("missing no-overlap diagnosis:\n%s", stdout)
	}
}

// writeScaledBaseline records the sample run with per-benchmark ns/op
// scale factors (by normalized name; missing names keep scale def).
func writeScaledBaseline(t *testing.T, def float64, scales map[string]float64) string {
	t.Helper()
	base, err := parse(bufio.NewScanner(strings.NewReader(sample)), "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		s, ok := scales[normalizeName(base.Results[i].Name)]
		if !ok {
			s = def
		}
		base.Results[i].NsPerOp *= s
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareNormalizedCancelsMachineSpeed: a baseline recorded on a
// machine 2x faster than the current one fails the absolute gate but
// passes the ratio gate — every benchmark moved in lockstep with the
// in-run reference, so no ratio changed.
func TestCompareNormalizedCancelsMachineSpeed(t *testing.T) {
	fast := writeBaseline(t, 0.5) // uniformly 2x faster baseline machine
	if code, stdout, _ := runCmd(t, sample, "-compare", fast); code != 1 {
		t.Fatalf("absolute compare against a 2x faster machine passed (exit %d):\n%s", code, stdout)
	}
	code, stdout, stderr := runCmd(t, sample, "-compare", fast, "-normalize", "BenchmarkFig3")
	if code != 0 {
		t.Fatalf("normalized compare exit %d, stdout:\n%s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "normalized to BenchmarkFig3") {
		t.Errorf("missing normalization header:\n%s", stdout)
	}
	if !strings.Contains(stdout, "reference") {
		t.Errorf("reference row not marked:\n%s", stdout)
	}
	// The reference itself does not count as a shared benchmark.
	if !strings.Contains(stdout, "all 2 shared benchmarks within 25%") {
		t.Errorf("missing pass summary:\n%s", stdout)
	}
}

// TestCompareNormalizedCatchesRelativeRegression: one benchmark slowed
// 2x relative to the reference; the ratio gate fails and names it even
// though the machines differ in speed.
func TestCompareNormalizedCatchesRelativeRegression(t *testing.T) {
	// Baseline machine uniformly 4x faster, but the workers=4 benchmark
	// was additionally 2x faster relative to everything else.
	path := writeScaledBaseline(t, 0.25, map[string]float64{
		"BenchmarkComputeFMMWorkers/workers=4": 0.125,
	})
	code, stdout, _ := runCmd(t, sample, "-compare", path, "-normalize", "BenchmarkFig3")
	if code != 1 {
		t.Fatalf("relative regression passed the normalized gate (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "1 of 2 shared benchmarks regressed") {
		t.Errorf("missing regression summary:\n%s", stdout)
	}
	// The reference itself is exempt even when the machines differ:
	// its own table row must be marked "reference", never "REGRESSION".
	for _, line := range strings.Split(stdout, "\n") {
		if !strings.Contains(line, "BenchmarkFig3") || strings.HasPrefix(line, "normalized to") {
			continue
		}
		if strings.Contains(line, "REGRESSION") || !strings.Contains(line, "reference") {
			t.Errorf("reference row not exempt: %q", line)
		}
	}
}

// TestCompareNormalizedRefOnlyOverlapFails: when the normalization
// reference is the ONLY benchmark shared with the baseline, the gate
// compares nothing and must fail like a zero-overlap run.
func TestCompareNormalizedRefOnlyOverlapFails(t *testing.T) {
	refOnly := `BenchmarkFig3-8 2 504804832 ns/op` + "\n"
	base, err := parse(bufio.NewScanner(strings.NewReader(refOnly)), "")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(base)
	path := filepath.Join(t.TempDir(), "refonly.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCmd(t, sample, "-compare", path, "-normalize", "BenchmarkFig3")
	if code != 1 {
		t.Fatalf("reference-only overlap passed the gate (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no shared benchmarks") {
		t.Errorf("missing no-overlap diagnosis:\n%s", stdout)
	}
}

// TestCompareNormalizeErrors: a missing reference must fail the gate
// loudly on either side, and -normalize without -compare is a usage
// error.
func TestCompareNormalizeErrors(t *testing.T) {
	if code, _, stderr := runCmd(t, sample, "-compare", writeBaseline(t, 1), "-normalize", "BenchmarkNope"); code != 1 ||
		!strings.Contains(stderr, "missing from baseline") {
		t.Errorf("missing baseline reference: exit %d, stderr %q", code, stderr)
	}
	// Present in the baseline, absent from the current run.
	other := `BenchmarkOnlyInBaseline-8 10 12345 ns/op` + "\n" + sample
	base, err := parse(bufio.NewScanner(strings.NewReader(other)), "")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(base)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCmd(t, sample, "-compare", path, "-normalize", "BenchmarkOnlyInBaseline"); code != 1 ||
		!strings.Contains(stderr, "missing from the current run") {
		t.Errorf("missing current reference: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, sample, "-normalize", "BenchmarkFig3"); code != 2 ||
		!strings.Contains(stderr, "requires -compare") {
		t.Errorf("-normalize without -compare: exit %d, stderr %q", code, stderr)
	}
}

// TestCompareErrors covers the failure paths: missing baseline file,
// corrupt baseline, bad flags.
func TestCompareErrors(t *testing.T) {
	if code, _, _ := runCmd(t, sample, "-compare", "/nonexistent.json"); code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd(t, sample, "-compare", path); code != 1 {
		t.Errorf("corrupt baseline: exit %d, want 1", code)
	}
	if code, _, _ := runCmd(t, sample, "-threshold", "-5"); code != 2 {
		t.Errorf("negative threshold: exit %d, want 2", code)
	}
	if code, _, _ := runCmd(t, sample, "positional"); code != 2 {
		t.Errorf("positional args: exit %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "PASS\n"); code != 1 {
		t.Errorf("empty bench input: exit %d, want 1", code)
	}
}

// allocSample is a -benchmem run: ns/op plus B/op and allocs/op pairs.
const allocSample = `goos: linux
BenchmarkFMM-8        	      10	  900000 ns/op	  524288 B/op	    1200 allocs/op
BenchmarkConvolution-8	      24	 5000000 ns/op	 8388608 B/op	    3000 allocs/op
PASS
`

// writeAllocBaseline records allocSample as a baseline with every
// allocs/op scaled by the factor.
func writeAllocBaseline(t *testing.T, allocScale float64) string {
	t.Helper()
	base, err := parse(bufio.NewScanner(strings.NewReader(allocSample)), "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		base.Results[i].Metrics["allocs/op"] *= allocScale
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "allocbase.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareAllocGate: the allocs/op gate passes when counts match,
// fails on growth beyond the threshold, and never fails on
// improvements. ns/op is identical throughout, isolating the alloc
// signal.
func TestCompareAllocGate(t *testing.T) {
	code, stdout, _ := runCmd(t, allocSample, "-compare", writeAllocBaseline(t, 1.0), "-allocthreshold", "10")
	if code != 0 {
		t.Fatalf("identical allocs failed the gate:\n%s", stdout)
	}
	if !strings.Contains(stdout, "allocs/op") {
		t.Errorf("alloc table missing:\n%s", stdout)
	}

	// Baseline had half the allocations: +100% regression.
	code, stdout, _ = runCmd(t, allocSample, "-compare", writeAllocBaseline(t, 0.5), "-allocthreshold", "40")
	if code != 1 {
		t.Fatalf("doubled allocs passed the gate:\n%s", stdout)
	}
	if !strings.Contains(stdout, "regressed beyond 40% allocs/op") {
		t.Errorf("missing alloc regression summary:\n%s", stdout)
	}

	// Fewer allocations than the baseline is an improvement.
	code, _, _ = runCmd(t, allocSample, "-compare", writeAllocBaseline(t, 3.0), "-allocthreshold", "10")
	if code != 0 {
		t.Error("alloc improvement flagged as regression")
	}

	// Without -allocthreshold the same doubled-alloc run passes (the
	// alloc gate is opt-in; ns/op is unchanged).
	code, _, _ = runCmd(t, allocSample, "-compare", writeAllocBaseline(t, 0.5))
	if code != 0 {
		t.Error("alloc gate ran without -allocthreshold")
	}
}

// TestCompareAllocGateZeroBaseline: a benchmark that used to be
// allocation-free must fail the gate as soon as it allocates at all
// beyond the threshold (the denominator clamps to 1).
func TestCompareAllocGateZeroBaseline(t *testing.T) {
	code, stdout, _ := runCmd(t, allocSample, "-compare", writeAllocBaseline(t, 0), "-allocthreshold", "50")
	if code != 1 {
		t.Fatalf("allocations on a zero-alloc baseline passed the gate:\n%s", stdout)
	}
}

// TestCompareAllocGateRequiresMetric: gating on allocations against a
// baseline recorded without -benchmem must fail loudly, not pass
// vacuously.
func TestCompareAllocGateRequiresMetric(t *testing.T) {
	code, stdout, _ := runCmd(t, sample, "-compare", writeBaseline(t, 1.0), "-allocthreshold", "25")
	if code != 1 {
		t.Fatalf("alloc gate with no allocs/op metrics exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no shared allocs/op metrics") {
		t.Errorf("missing vacuous-gate diagnosis:\n%s", stdout)
	}
}

// TestAllocThresholdFlagValidation: -allocthreshold needs -compare and
// must not be negative.
func TestAllocThresholdFlagValidation(t *testing.T) {
	code, _, stderr := runCmd(t, allocSample, "-allocthreshold", "10")
	if code != 2 || !strings.Contains(stderr, "-allocthreshold requires -compare") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCmd(t, allocSample, "-compare", "x.json", "-allocthreshold", "-1")
	if code != 2 || !strings.Contains(stderr, "must not be negative") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}
