// Command benchjson records and compares benchmark baselines.
//
// Record mode (default) converts `go test -bench` text output (read
// from stdin) into a JSON benchmark baseline (written to stdout), the
// format the CI perf-tracking step records as BENCH_<pr>.json:
//
//	go test -run '^$' -bench 'Sweep' . | benchjson -label pr3 > BENCH_pr3.json
//
// Each benchmark line
//
//	BenchmarkComputeFMMWorkers/workers=4-8   100  1234567 ns/op  12 B/op
//
// becomes one entry with the name, iteration count, ns/op, and any
// further metric pairs (unit -> value). Context lines (goos, goarch,
// pkg, cpu) are captured into the header.
//
// Compare mode diffs a freshly measured run against a committed
// baseline and fails on regressions — CI's perf gate:
//
//	go test -run '^$' -bench '...' . | benchjson -compare BENCH_pr4.json -threshold 25
//
// Benchmarks are matched by name with the trailing GOMAXPROCS suffix
// ("-8") stripped, so baselines recorded on machines with different
// core counts still compare. The exit status is 1 when any benchmark
// present in both runs slowed down by more than the threshold
// percentage of ns/op, or when the two runs share no benchmark at all
// (a misconfigured gate must not pass vacuously); benchmarks that
// appear on only one side are reported but do not fail the gate.
//
// By default the comparison is absolute: current ns/op against
// baseline ns/op, which assumes comparable machines. The -normalize
// flag makes the gate machine-speed independent by electing one
// benchmark of the run as the in-run speed reference:
//
//	... | benchjson -compare BENCH_pr4.json -threshold 25 -normalize BenchmarkFMM
//
// Every benchmark's ns/op is divided by the reference's ns/op OF THE
// SAME RUN, and the threshold applies to the ratio's change instead of
// the raw ns/op change — a uniformly 2x slower CI runner moves every
// ratio by ~0%, while a genuine hot-path regression moves its
// benchmark's ratio as much as it moves its ns/op. The reference must
// be present in both runs (the gate fails otherwise: a normalization
// anchor that silently disappears would un-gate everything) and is
// itself exempt from the threshold — its ratio is 1 by construction —
// so it also does not count toward the shared-benchmark overlap: a run
// whose only overlap with the baseline is the reference fails like a
// zero-overlap run instead of passing vacuously. The absolute mode
// remains the fallback when -normalize is not given.
//
// With -allocthreshold the gate additionally compares the allocs/op
// metric of benchmarks run under `go test -benchmem`: any shared
// benchmark whose allocation count grew by more than the given
// percentage fails the gate. Allocation counts are deterministic
// per-machine-class (never normalized — a runner's speed cannot change
// how often the code allocates), which makes this the cheapest
// regression signal the gate has; benchmarks without the metric on
// both sides are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Baseline is the serialized benchmark record.
type Baseline struct {
	Label   string            `json:"label,omitempty"`
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "baseline label recorded in the output (e.g. pr4)")
	compare := fs.String("compare", "", "baseline JSON file to compare stdin against (compare mode)")
	threshold := fs.Float64("threshold", 25, "compare mode: maximum tolerated ns/op regression in percent")
	normalize := fs.String("normalize", "", "compare mode: in-run reference benchmark; regressions are judged on ns/op ratios to it (machine-speed independent)")
	allocThreshold := fs.Float64("allocthreshold", 0, "compare mode: maximum tolerated allocs/op regression in percent (0 disables the alloc gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintf(stderr, "benchjson: -threshold %g must be positive\n", *threshold)
		fs.Usage()
		return 2
	}
	if *normalize != "" && *compare == "" {
		fmt.Fprintln(stderr, "benchjson: -normalize requires -compare")
		fs.Usage()
		return 2
	}
	if *allocThreshold < 0 {
		fmt.Fprintf(stderr, "benchjson: -allocthreshold %g must not be negative\n", *allocThreshold)
		fs.Usage()
		return 2
	}
	if *allocThreshold > 0 && *compare == "" {
		fmt.Fprintln(stderr, "benchjson: -allocthreshold requires -compare")
		fs.Usage()
		return 2
	}

	current, err := parse(bufio.NewScanner(stdin), *label)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}

	if *compare != "" {
		ok, err := compareBaselines(stdout, *compare, current, *threshold, *normalize, *allocThreshold)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if !ok {
			return 1
		}
		return 0
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(current); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner, label string) (*Baseline, error) {
	base := &Baseline{Label: label, Context: map[string]string{}, Results: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			base.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			base.Results = append(base.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return base, nil
}

// parseBenchLine splits "BenchmarkName-P N val unit [val unit]...".
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = val
	}
	return r, nil
}

// procSuffix matches the trailing "-P" GOMAXPROCS suffix of a
// benchmark name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so runs from machines
// with different core counts compare by benchmark identity.
func normalizeName(name string) string {
	return procSuffix.ReplaceAllString(name, "")
}

// compareBaselines diffs current against the baseline file and prints
// a per-benchmark table. It returns ok = false when any shared
// benchmark regressed beyond the threshold or when no benchmark is
// shared at all. With an empty normalize the deltas are absolute ns/op
// changes; otherwise normalize names the in-run reference benchmark
// and deltas are changes of the ns/op ratio to that reference (see the
// package comment).
func compareBaselines(stdout io.Writer, baselinePath string, current *Baseline, threshold float64, normalize string, allocThreshold float64) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	baseline := &Baseline{}
	if err := json.Unmarshal(raw, baseline); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	ref := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		ref[normalizeName(r.Name)] = r
	}

	// In normalized mode every ns/op is divided by its own run's
	// reference ns/op before comparing, canceling machine speed.
	refName := normalizeName(normalize)
	baseDiv, curDiv := 1.0, 1.0
	if normalize != "" {
		baseRef, okBase := ref[refName]
		var curRef Result
		okCur := false
		for _, cur := range current.Results {
			if normalizeName(cur.Name) == refName {
				curRef, okCur = cur, true
				break
			}
		}
		switch {
		case !okBase:
			return false, fmt.Errorf("normalization reference %q missing from baseline %s", refName, baselinePath)
		case !okCur:
			return false, fmt.Errorf("normalization reference %q missing from the current run", refName)
		case baseRef.NsPerOp <= 0 || curRef.NsPerOp <= 0:
			return false, fmt.Errorf("normalization reference %q has non-positive ns/op", refName)
		}
		baseDiv, curDiv = baseRef.NsPerOp, curRef.NsPerOp
		fmt.Fprintf(stdout, "normalized to %s: baseline %.0f ns/op, current %.0f ns/op\n",
			refName, baseDiv, curDiv)
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tbaseline ns/op\tcurrent ns/op\tdelta\tstatus\t\n")
	shared, regressions := 0, 0
	allocShared, allocRegressions := 0, 0
	var allocRows []string
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		name := normalizeName(cur.Name)
		seen[name] = true
		base, ok := ref[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\tnew\t\n", name, cur.NsPerOp)
			continue
		}
		if allocThreshold > 0 {
			if row, hasAllocs, regressed := compareAllocs(name, base, cur, allocThreshold); hasAllocs {
				allocShared++
				allocRows = append(allocRows, row)
				if regressed {
					allocRegressions++
				}
			}
		}
		if normalize != "" && name == refName {
			// The reference is exempt from the threshold (its ratio is 1
			// by construction), so it must not count as shared either —
			// a gate whose only overlap is its own anchor compares
			// nothing and must fail below, not pass vacuously.
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t-\treference\t\n", name, base.NsPerOp, cur.NsPerOp)
			continue
		}
		shared++
		if base.NsPerOp <= 0 {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t-\tskipped (zero baseline)\t\n", name, base.NsPerOp, cur.NsPerOp)
			continue
		}
		baseVal, curVal := base.NsPerOp/baseDiv, cur.NsPerOp/curDiv
		delta := 100 * (curVal - baseVal) / baseVal
		status := "ok"
		if delta > threshold {
			status = fmt.Sprintf("REGRESSION (> %g%%)", threshold)
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t\n", name, base.NsPerOp, cur.NsPerOp, delta, status)
	}
	for _, r := range baseline.Results {
		if name := normalizeName(r.Name); !seen[name] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\tmissing from current run\t\n", name, r.NsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return false, err
	}

	if allocThreshold > 0 {
		atw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintf(atw, "benchmark\tbaseline allocs/op\tcurrent allocs/op\tdelta\tstatus\t\n")
		for _, row := range allocRows {
			fmt.Fprint(atw, row)
		}
		if err := atw.Flush(); err != nil {
			return false, err
		}
		if allocShared == 0 {
			fmt.Fprintf(stdout, "no shared allocs/op metrics between %s and the current run — run the benchmarks with -benchmem\n", baselinePath)
			return false, nil
		}
	}

	refNote := ""
	if normalize != "" {
		refNote = " (the normalization reference does not count)"
	}
	switch {
	case shared == 0:
		fmt.Fprintf(stdout, "no shared benchmarks between %s and the current run%s — the gate cannot pass vacuously\n", baselinePath, refNote)
		return false, nil
	case regressions > 0 || allocRegressions > 0:
		if regressions > 0 {
			fmt.Fprintf(stdout, "%d of %d shared benchmarks regressed beyond %g%% ns/op\n", regressions, shared, threshold)
		}
		if allocRegressions > 0 {
			fmt.Fprintf(stdout, "%d of %d shared benchmarks regressed beyond %g%% allocs/op\n", allocRegressions, allocShared, allocThreshold)
		}
		return false, nil
	default:
		fmt.Fprintf(stdout, "all %d shared benchmarks within %g%% of %s\n", shared, threshold, baselinePath)
		return true, nil
	}
}

// compareAllocs diffs one benchmark's allocs/op metric. It returns the
// formatted table row, whether both sides carried the metric, and
// whether the regression exceeds the threshold. The delta denominator
// is clamped to one allocation so a zero-alloc baseline still gates
// (any new allocation on a formerly allocation-free benchmark is an
// infinite relative regression).
func compareAllocs(name string, base, cur Result, threshold float64) (row string, hasAllocs, regressed bool) {
	baseA, okBase := base.Metrics["allocs/op"]
	curA, okCur := cur.Metrics["allocs/op"]
	if !okBase || !okCur {
		return "", false, false
	}
	denom := baseA
	if denom < 1 {
		denom = 1
	}
	delta := 100 * (curA - baseA) / denom
	status := "ok"
	if delta > threshold {
		status = fmt.Sprintf("REGRESSION (> %g%%)", threshold)
		regressed = true
	}
	return fmt.Sprintf("%s\t%.0f\t%.0f\t%+.1f%%\t%s\t\n", name, baseA, curA, delta, status), true, regressed
}
