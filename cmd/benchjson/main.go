// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark baseline (written to stdout), the
// format the CI perf-tracking step records as BENCH_<pr>.json:
//
//	go test -run '^$' -bench 'ComputeFMM|Convolve' . | benchjson -label pr2 > BENCH_pr2.json
//
// Each benchmark line
//
//	BenchmarkComputeFMMWorkers/workers=4-8   100  1234567 ns/op  12 B/op
//
// becomes one entry with the name, iteration count, ns/op, and any
// further metric pairs (unit -> value). Context lines (goos, goarch,
// pkg, cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Baseline is the serialized benchmark record.
type Baseline struct {
	Label   string            `json:"label,omitempty"`
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	label := flag.String("label", "", "baseline label recorded in the output (e.g. pr2)")
	flag.Parse()

	base, err := parse(bufio.NewScanner(os.Stdin), *label)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner, label string) (*Baseline, error) {
	base := &Baseline{Label: label, Context: map[string]string{}, Results: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			base.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			base.Results = append(base.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return base, nil
}

// parseBenchLine splits "BenchmarkName-P N val unit [val unit]...".
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = val
	}
	return r, nil
}
