// Command benchjson records and compares benchmark baselines.
//
// Record mode (default) converts `go test -bench` text output (read
// from stdin) into a JSON benchmark baseline (written to stdout), the
// format the CI perf-tracking step records as BENCH_<pr>.json:
//
//	go test -run '^$' -bench 'Sweep' . | benchjson -label pr3 > BENCH_pr3.json
//
// Each benchmark line
//
//	BenchmarkComputeFMMWorkers/workers=4-8   100  1234567 ns/op  12 B/op
//
// becomes one entry with the name, iteration count, ns/op, and any
// further metric pairs (unit -> value). Context lines (goos, goarch,
// pkg, cpu) are captured into the header.
//
// Compare mode diffs a freshly measured run against a committed
// baseline and fails on regressions — CI's perf gate:
//
//	go test -run '^$' -bench '...' . | benchjson -compare BENCH_pr3.json -threshold 25
//
// Benchmarks are matched by name with the trailing GOMAXPROCS suffix
// ("-8") stripped, so baselines recorded on machines with different
// core counts still compare. The exit status is 1 when any benchmark
// present in both runs slowed down by more than the threshold
// percentage of ns/op, or when the two runs share no benchmark at all
// (a misconfigured gate must not pass vacuously); benchmarks that
// appear on only one side are reported but do not fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Baseline is the serialized benchmark record.
type Baseline struct {
	Label   string            `json:"label,omitempty"`
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "baseline label recorded in the output (e.g. pr3)")
	compare := fs.String("compare", "", "baseline JSON file to compare stdin against (compare mode)")
	threshold := fs.Float64("threshold", 25, "compare mode: maximum tolerated ns/op regression in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintf(stderr, "benchjson: -threshold %g must be positive\n", *threshold)
		fs.Usage()
		return 2
	}

	current, err := parse(bufio.NewScanner(stdin), *label)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}

	if *compare != "" {
		ok, err := compareBaselines(stdout, *compare, current, *threshold)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if !ok {
			return 1
		}
		return 0
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(current); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner, label string) (*Baseline, error) {
	base := &Baseline{Label: label, Context: map[string]string{}, Results: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			base.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			base.Results = append(base.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return base, nil
}

// parseBenchLine splits "BenchmarkName-P N val unit [val unit]...".
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = val
	}
	return r, nil
}

// procSuffix matches the trailing "-P" GOMAXPROCS suffix of a
// benchmark name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so runs from machines
// with different core counts compare by benchmark identity.
func normalizeName(name string) string {
	return procSuffix.ReplaceAllString(name, "")
}

// compareBaselines diffs current against the baseline file and prints
// a per-benchmark table. It returns ok = false when any shared
// benchmark regressed beyond the threshold (in percent of the
// baseline's ns/op) or when no benchmark is shared at all.
func compareBaselines(stdout io.Writer, baselinePath string, current *Baseline, threshold float64) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	baseline := &Baseline{}
	if err := json.Unmarshal(raw, baseline); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	ref := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		ref[normalizeName(r.Name)] = r
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tbaseline ns/op\tcurrent ns/op\tdelta\tstatus\t\n")
	shared, regressions := 0, 0
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		name := normalizeName(cur.Name)
		seen[name] = true
		base, ok := ref[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\tnew\t\n", name, cur.NsPerOp)
			continue
		}
		shared++
		if base.NsPerOp <= 0 {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t-\tskipped (zero baseline)\t\n", name, base.NsPerOp, cur.NsPerOp)
			continue
		}
		delta := 100 * (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
		status := "ok"
		if delta > threshold {
			status = fmt.Sprintf("REGRESSION (> %g%%)", threshold)
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t\n", name, base.NsPerOp, cur.NsPerOp, delta, status)
	}
	for _, r := range baseline.Results {
		if name := normalizeName(r.Name); !seen[name] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\tmissing from current run\t\n", name, r.NsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return false, err
	}

	switch {
	case shared == 0:
		fmt.Fprintf(stdout, "no shared benchmarks between %s and the current run — the gate cannot pass vacuously\n", baselinePath)
		return false, nil
	case regressions > 0:
		fmt.Fprintf(stdout, "%d of %d shared benchmarks regressed beyond %g%%\n", regressions, shared, threshold)
		return false, nil
	default:
		fmt.Fprintf(stdout, "all %d shared benchmarks within %g%% of %s\n", shared, threshold, baselinePath)
		return true, nil
	}
}
