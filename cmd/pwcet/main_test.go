package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCmd executes run with captured output.
func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestInvalidFlagsExitWithUsage: every malformed flag or combination
// must exit with status 2 and print both the specific error and the
// flag usage, instead of surfacing a raw error mid-run.
func TestInvalidFlagsExitWithUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no args", nil, "-bench or -list required"},
		{"bad mechanism", []string{"-bench", "bs", "-mech", "bogus"}, "unknown mechanism"},
		{"pfail above 1", []string{"-bench", "bs", "-pfail", "1.5"}, "outside [0,1]"},
		{"pfail negative", []string{"-bench", "bs", "-pfail", "-0.1"}, "outside [0,1]"},
		{"target zero", []string{"-bench", "bs", "-target", "0"}, "outside (0,1)"},
		{"target one", []string{"-bench", "bs", "-target", "1"}, "outside (0,1)"},
		{"negative workers", []string{"-bench", "bs", "-workers", "-2"}, "negative"},
		{"negative validate", []string{"-bench", "bs", "-validate", "-1"}, "negative"},
		{"unknown benchmark", []string{"-bench", "nope"}, "see -list"},
		{"unknown flag", []string{"-wat"}, "flag provided but not defined"},
		{"positional junk", []string{"-list", "extra"}, "unexpected arguments"},
		{"list plus bench", []string{"-list", "-bench", "bs"}, "cannot be combined"},
		{"all plus curve", []string{"-all", "-curve"}, "requires -bench"},
		{"all plus validate", []string{"-all", "-validate", "10"}, "requires -bench"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCmd(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
			if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-bench string") {
				t.Errorf("stderr missing usage text:\n%s", stderr)
			}
			if stdout != "" {
				t.Errorf("usage errors must not write to stdout, got:\n%s", stdout)
			}
		})
	}
}

// TestListAndAnalyzeSucceed smoke-tests the happy paths, including the
// new -workers flag.
func TestListAndAnalyzeSucceed(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "adpcm") {
		t.Errorf("-list output missing adpcm:\n%s", stdout)
	}

	code, stdout, stderr = runCmd(t, "-bench", "bs", "-mech", "rw", "-workers", "4")
	if code != 0 {
		t.Fatalf("analysis exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "pWCET") || !strings.Contains(stdout, "rw") {
		t.Errorf("analysis output incomplete:\n%s", stdout)
	}
}

// TestWorkersFlagDoesNotChangeOutput: the CLI output is identical for
// every -workers value (the determinism guarantee, end to end).
func TestWorkersFlagDoesNotChangeOutput(t *testing.T) {
	_, ref, _ := runCmd(t, "-bench", "crc", "-mech", "all", "-workers", "1")
	for _, w := range []string{"0", "2", "8"} {
		code, got, stderr := runCmd(t, "-bench", "crc", "-mech", "all", "-workers", w)
		if code != 0 {
			t.Fatalf("-workers %s exited %d: %s", w, code, stderr)
		}
		if got != ref {
			t.Errorf("-workers %s changed the output:\n--- workers=1\n%s\n--- workers=%s\n%s", w, ref, w, got)
		}
	}
}
