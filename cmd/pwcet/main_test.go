package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pwcet "repro"
)

// runCmd executes run with captured output.
func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestInvalidFlagsExitWithUsage: every malformed flag or combination
// must exit with status 2 and print both the specific error and the
// flag usage, instead of surfacing a raw error mid-run.
func TestInvalidFlagsExitWithUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no args", nil, "-bench, -batch, -all or -list required"},
		{"bad mechanism", []string{"-bench", "bs", "-mech", "bogus"}, "unknown mechanism"},
		{"pfail above 1", []string{"-bench", "bs", "-pfail", "1.5"}, "outside [0,1]"},
		{"pfail negative", []string{"-bench", "bs", "-pfail", "-0.1"}, "outside [0,1]"},
		{"target zero", []string{"-bench", "bs", "-target", "0"}, "outside (0,1)"},
		{"target one", []string{"-bench", "bs", "-target", "1"}, "outside (0,1)"},
		{"negative workers", []string{"-bench", "bs", "-workers", "-2"}, "negative"},
		{"negative validate", []string{"-bench", "bs", "-validate", "-1"}, "negative"},
		{"unknown benchmark", []string{"-bench", "nope"}, "see -list"},
		{"unknown flag", []string{"-wat"}, "flag provided but not defined"},
		{"positional junk", []string{"-list", "extra"}, "unexpected arguments"},
		{"list plus bench", []string{"-list", "-bench", "bs"}, "mutually exclusive"},
		{"batch plus bench", []string{"-batch", "x.json", "-bench", "bs"}, "mutually exclusive"},
		{"all plus curve", []string{"-all", "-curve"}, "requires -bench"},
		{"all plus validate", []string{"-all", "-validate", "10"}, "requires -bench"},
		{"batch plus fmm", []string{"-batch", "x.json", "-fmm"}, "requires -bench"},
		{"batch plus pfail", []string{"-batch", "x.json", "-pfail", "1e-3"}, "cannot be combined with -batch"},
		{"batch plus mech", []string{"-batch", "x.json", "-mech", "srb"}, "cannot be combined with -batch"},
		{"batch plus target", []string{"-batch", "x.json", "-target", "1e-9"}, "cannot be combined with -batch"},
		{"batch plus coarsen", []string{"-batch", "x.json", "-coarsen", "keep-heaviest"}, "cannot be combined with -batch"},
		{"batch plus exact-convolve", []string{"-batch", "x.json", "-exact-convolve"}, "cannot be combined with -batch"},
		{"ndjson without batch", []string{"-bench", "bs", "-ndjson"}, "-ndjson requires -batch"},
		{"ndjson plus list", []string{"-list", "-ndjson"}, "-ndjson requires -batch"},
		{"ndjson plus json", []string{"-batch", "x.json", "-json", "-ndjson"}, "mutually exclusive"},
		{"bad coarsen", []string{"-bench", "bs", "-coarsen", "bogus"}, "unknown coarsening strategy"},
		{"list plus json", []string{"-list", "-json"}, "requires -bench or -batch"},
		{"all plus json", []string{"-all", "-json"}, "requires -bench or -batch"},
		{"json plus validate", []string{"-bench", "bs", "-json", "-validate", "10"}, "not available with -json"},
		{"json plus fmm", []string{"-bench", "bs", "-json", "-fmm"}, "not available with -json"},
		{"json plus classes", []string{"-bench", "bs", "-json", "-classes"}, "not available with -json"},
		{"negative soft-deadline", []string{"-bench", "bs", "-soft-deadline", "-1s"}, "negative"},
		{"soft-deadline plus list", []string{"-list", "-soft-deadline", "1s"}, "requires -bench or -batch"},
		{"soft-deadline plus all", []string{"-all", "-soft-deadline", "1s"}, "requires -bench or -batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCmd(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
			if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-bench string") {
				t.Errorf("stderr missing usage text:\n%s", stderr)
			}
			if stdout != "" {
				t.Errorf("usage errors must not write to stdout, got:\n%s", stdout)
			}
		})
	}
}

// TestListAndAnalyzeSucceed smoke-tests the happy paths, including the
// new -workers flag.
func TestListAndAnalyzeSucceed(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "adpcm") {
		t.Errorf("-list output missing adpcm:\n%s", stdout)
	}

	code, stdout, stderr = runCmd(t, "-bench", "bs", "-mech", "rw", "-workers", "4")
	if code != 0 {
		t.Fatalf("analysis exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "pWCET") || !strings.Contains(stdout, "rw") {
		t.Errorf("analysis output incomplete:\n%s", stdout)
	}
}

// TestWorkersFlagDoesNotChangeOutput: the CLI output is identical for
// every -workers value (the determinism guarantee, end to end).
func TestWorkersFlagDoesNotChangeOutput(t *testing.T) {
	_, ref, _ := runCmd(t, "-bench", "crc", "-mech", "all", "-workers", "1")
	for _, w := range []string{"0", "2", "8"} {
		code, got, stderr := runCmd(t, "-bench", "crc", "-mech", "all", "-workers", w)
		if code != 0 {
			t.Fatalf("-workers %s exited %d: %s", w, code, stderr)
		}
		if got != ref {
			t.Errorf("-workers %s changed the output:\n--- workers=1\n%s\n--- workers=%s\n%s", w, ref, w, got)
		}
	}
}

// TestJSONOutput: -json emits a parseable report whose numbers match
// the text mode's analysis, including the exceedance curve with -curve.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-bench", "bs", "-mech", "all", "-curve", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rep struct {
		Benchmark string  `json:"benchmark"`
		Pfail     float64 `json:"pfail"`
		PBF       float64 `json:"pbf"`
		Target    float64 `json:"target"`
		Cache     struct {
			Sets int `json:"sets"`
			Ways int `json:"ways"`
		} `json:"cache"`
		Mechanisms []struct {
			Mechanism     string `json:"mechanism"`
			FaultFreeWCET int64  `json:"fault_free_wcet"`
			PWCET         int64  `json:"pwcet"`
			Curve         [][2]float64
			RawCurve      []struct {
				WCET       int64   `json:"wcet_cycles"`
				Exceedance float64 `json:"exceedance"`
			} `json:"curve"`
		} `json:"mechanisms"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("unparseable -json output: %v\n%s", err, stdout)
	}
	if rep.Benchmark != "bs" || rep.Pfail != 1e-4 || rep.Target != 1e-15 {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if rep.Cache.Sets != 16 || rep.Cache.Ways != 4 {
		t.Errorf("cache fields wrong: %+v", rep.Cache)
	}
	if len(rep.Mechanisms) != 3 {
		t.Fatalf("%d mechanisms, want 3", len(rep.Mechanisms))
	}
	for _, m := range rep.Mechanisms {
		if m.PWCET < m.FaultFreeWCET || m.FaultFreeWCET <= 0 {
			t.Errorf("%s: implausible WCETs %d/%d", m.Mechanism, m.FaultFreeWCET, m.PWCET)
		}
		if len(m.RawCurve) == 0 {
			t.Errorf("%s: -curve requested but curve empty", m.Mechanism)
		}
	}

	// Without -curve the curve field is omitted.
	_, stdout, _ = runCmd(t, "-bench", "bs", "-mech", "rw", "-json")
	if strings.Contains(stdout, "\"curve\"") {
		t.Errorf("curve present without -curve:\n%s", stdout)
	}
}

// TestSoftDeadlineDegradedEcho: an unmeetable -soft-deadline still
// yields a successful run whose JSON rows carry "degraded": true, while
// runs without the flag keep the field off the wire entirely.
func TestSoftDeadlineDegradedEcho(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-bench", "bs", "-mech", "all", "-soft-deadline", "1ns", "-json")
	if code != 0 {
		t.Fatalf("degraded-mode run exited %d: %s", code, stderr)
	}
	var rep struct {
		Mechanisms []struct {
			Mechanism string `json:"mechanism"`
			PWCET     int64  `json:"pwcet"`
			Degraded  bool   `json:"degraded"`
		} `json:"mechanisms"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("unparseable -json output: %v\n%s", err, stdout)
	}
	if len(rep.Mechanisms) != 3 {
		t.Fatalf("%d mechanisms, want 3", len(rep.Mechanisms))
	}
	for _, m := range rep.Mechanisms {
		if !m.Degraded {
			t.Errorf("%s: not flagged degraded under a 1ns soft deadline", m.Mechanism)
		}
		if m.PWCET <= 0 {
			t.Errorf("%s: implausible degraded pWCET %d", m.Mechanism, m.PWCET)
		}
	}

	_, stdout, _ = runCmd(t, "-bench", "bs", "-mech", "rw", "-json")
	if strings.Contains(stdout, "\"degraded\"") {
		t.Errorf("degraded field present without -soft-deadline:\n%s", stdout)
	}
}

// writeSpec writes a batch specification to a temp file.
func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBatchSweep: a -batch run covers the full benchmark x pfail x
// mechanism x target grid, in spec order, and its JSON rows agree with
// independent one-shot analyses.
func TestBatchSweep(t *testing.T) {
	spec := `{
		"benchmarks": ["bs", "fibcall"],
		"pfails": [1e-5, 1e-3],
		"mechanisms": ["none", "srb"],
		"targets": [1e-9, 1e-15]
	}`
	code, stdout, stderr := runCmd(t, "-batch", writeSpec(t, spec), "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rows []struct {
		Benchmark     string  `json:"benchmark"`
		Pfail         float64 `json:"pfail"`
		Mechanism     string  `json:"mechanism"`
		Target        float64 `json:"target"`
		FaultFreeWCET int64   `json:"fault_free_wcet"`
		PWCET         int64   `json:"pwcet"`
	}
	if err := json.Unmarshal([]byte(stdout), &rows); err != nil {
		t.Fatalf("unparseable batch JSON: %v\n%s", err, stdout)
	}
	if len(rows) != 2*2*2*2 {
		t.Fatalf("%d rows, want 16", len(rows))
	}
	if rows[0].Benchmark != "bs" || rows[8].Benchmark != "fibcall" {
		t.Errorf("row order does not follow the spec: %+v, %+v", rows[0], rows[8])
	}
	for _, r := range rows {
		p, err := pwcet.Benchmark(r.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		m, err := pwcet.ParseMechanism(r.Mechanism)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := pwcet.Analyze(p, pwcet.Options{
			Pfail: r.Pfail, Mechanism: m, TargetExceedance: r.Target,
		})
		if err != nil {
			t.Fatal(err)
		}
		if solo.PWCET != r.PWCET || solo.FaultFreeWCET != r.FaultFreeWCET {
			t.Errorf("%s %s pfail=%g target=%g: batch (%d, %d) != one-shot (%d, %d)",
				r.Benchmark, r.Mechanism, r.Pfail, r.Target,
				r.FaultFreeWCET, r.PWCET, solo.FaultFreeWCET, solo.PWCET)
		}
	}

	// Text mode renders the same sweep as a table.
	code, stdout, stderr = runCmd(t, "-batch", writeSpec(t, spec))
	if code != 0 {
		t.Fatalf("text mode exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "benchmark") || !strings.Contains(stdout, "fibcall") {
		t.Errorf("batch table incomplete:\n%s", stdout)
	}
}

// TestBatchSpecValidation: malformed specifications fail with a clear
// error and exit status 1.
func TestBatchSpecValidation(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"no pfails", `{"benchmarks": ["bs"]}`, "pfails must be non-empty"},
		{"bad pfail", `{"pfails": [2]}`, "outside [0,1]"},
		{"bad target", `{"pfails": [1e-4], "targets": [0]}`, "outside (0,1)"},
		{"bad mechanism", `{"pfails": [1e-4], "mechanisms": ["bogus"]}`, "unknown mechanism"},
		{"bad benchmark", `{"pfails": [1e-4], "benchmarks": ["nope"]}`, "unknown benchmark"},
		{"bad max_support", `{"pfails": [1e-4], "max_support": 1}`, "at least 2 support points"},
		{"bad coarsen", `{"pfails": [1e-4], "coarsen": "bogus"}`, "unknown coarsening strategy"},
		{"unknown field", `{"pfails": [1e-4], "wat": 1}`, "unknown field"},
		{"syntax", `{`, "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, "-batch", writeSpec(t, tc.spec))
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
	if code, _, _ := runCmd(t, "-batch", "/nonexistent/spec.json"); code != 1 {
		t.Errorf("missing spec file: exit %d, want 1", code)
	}
}

// TestBatchCustomCache: the spec's cache object overrides the paper
// geometry for every query.
func TestBatchCustomCache(t *testing.T) {
	spec := `{
		"benchmarks": ["bs"],
		"pfails": [1e-3],
		"mechanisms": ["none"],
		"cache": {"sets": 8, "ways": 2, "block_bytes": 8, "hit_latency": 1, "mem_latency": 10}
	}`
	code, stdout, stderr := runCmd(t, "-batch", writeSpec(t, spec), "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rows []struct {
		PWCET         int64 `json:"pwcet"`
		FaultFreeWCET int64 `json:"fault_free_wcet"`
	}
	if err := json.Unmarshal([]byte(stdout), &rows); err != nil {
		t.Fatal(err)
	}
	p, err := pwcet.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := pwcet.Analyze(p, pwcet.Options{
		Cache: pwcet.CacheConfig{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		Pfail: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].PWCET != solo.PWCET {
		t.Errorf("custom-cache batch rows %+v, want pWCET %d", rows, solo.PWCET)
	}
}

// TestBatchCoarsenStrategy: the spec's coarsen field reaches every
// query — rows match one-shot analyses run with the same strategy and
// binding cap.
func TestBatchCoarsenStrategy(t *testing.T) {
	spec := `{
		"benchmarks": ["bs"],
		"pfails": [1e-3],
		"mechanisms": ["none"],
		"max_support": 8,
		"coarsen": "keep-heaviest"
	}`
	code, stdout, stderr := runCmd(t, "-batch", writeSpec(t, spec), "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rows []struct {
		PWCET int64 `json:"pwcet"`
	}
	if err := json.Unmarshal([]byte(stdout), &rows); err != nil {
		t.Fatal(err)
	}
	p, err := pwcet.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := pwcet.Analyze(p, pwcet.Options{
		Pfail: 1e-3, MaxSupport: 8, Coarsen: pwcet.CoarsenKeepHeaviest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].PWCET != solo.PWCET {
		t.Errorf("coarsen batch rows %+v, want pWCET %d", rows, solo.PWCET)
	}
	// The single-benchmark JSON report echoes the strategy.
	code, stdout, stderr = runCmd(t, "-bench", "bs", "-mech", "none", "-coarsen", "keep-heaviest", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var rep struct {
		Coarsen string `json:"coarsen"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Coarsen != "keep-heaviest" {
		t.Errorf("report coarsen = %q, want keep-heaviest", rep.Coarsen)
	}
}

// TestBatchNDJSON: -ndjson streams one compact JSON row per line, in
// the same order and with the same values as the -json array.
func TestBatchNDJSON(t *testing.T) {
	spec := `{
		"benchmarks": ["bs", "fibcall"],
		"pfails": [1e-4],
		"mechanisms": ["none", "srb"]
	}`
	path := writeSpec(t, spec)
	code, jsonOut, stderr := runCmd(t, "-batch", path, "-json")
	if code != 0 {
		t.Fatalf("-json exit %d: %s", code, stderr)
	}
	var want []json.RawMessage
	if err := json.Unmarshal([]byte(jsonOut), &want); err != nil {
		t.Fatal(err)
	}

	code, ndOut, stderr := runCmd(t, "-batch", path, "-ndjson")
	if code != 0 {
		t.Fatalf("-ndjson exit %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(ndOut, "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		if strings.ContainsAny(line, " \t") && strings.Contains(line, "  ") {
			t.Errorf("line %d is not compact: %q", i, line)
		}
		var wantRow, gotRow map[string]any
		if err := json.Unmarshal(want[i], &wantRow); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(line), &gotRow); err != nil {
			t.Fatalf("line %d unparseable: %v\n%s", i, err, line)
		}
		if len(gotRow) != len(wantRow) {
			t.Fatalf("line %d fields %v, want %v", i, gotRow, wantRow)
		}
		for k, v := range wantRow {
			if gotRow[k] != v {
				t.Errorf("line %d field %q = %v, want %v", i, k, gotRow[k], v)
			}
		}
	}
}

// TestExactConvolve: the -exact-convolve escape hatch and the spec's
// exact_convolve field run the exact convolution fold; without a
// binding support cap its pWCETs match the default path (the
// differential suites pin this byte-identical), and the JSON report
// echoes the flag.
func TestExactConvolve(t *testing.T) {
	code, fast, stderr := runCmd(t, "-bench", "bs", "-mech", "srb", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	code, exact, stderr := runCmd(t, "-bench", "bs", "-mech", "srb", "-json", "-exact-convolve")
	if code != 0 {
		t.Fatalf("-exact-convolve exit %d: %s", code, stderr)
	}
	var fastRep, exactRep struct {
		ExactConvolve bool `json:"exact_convolve"`
		Mechanisms    []struct {
			PWCET int64 `json:"pwcet"`
		} `json:"mechanisms"`
	}
	if err := json.Unmarshal([]byte(fast), &fastRep); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(exact), &exactRep); err != nil {
		t.Fatal(err)
	}
	if fastRep.ExactConvolve || !exactRep.ExactConvolve {
		t.Errorf("exact_convolve echo: fast %v, exact %v", fastRep.ExactConvolve, exactRep.ExactConvolve)
	}
	if len(fastRep.Mechanisms) != 1 || len(exactRep.Mechanisms) != 1 ||
		fastRep.Mechanisms[0].PWCET != exactRep.Mechanisms[0].PWCET {
		t.Errorf("uncapped exact convolution changed the pWCET: %+v vs %+v", fastRep.Mechanisms, exactRep.Mechanisms)
	}

	// Through the batch spec: exact_convolve + workers are accepted and
	// the row matches a one-shot exact analysis.
	spec := `{
		"benchmarks": ["bs"],
		"pfails": [1e-3],
		"mechanisms": ["srb"],
		"exact_convolve": true,
		"workers": 2
	}`
	code, stdout, stderr := runCmd(t, "-batch", writeSpec(t, spec), "-json")
	if code != 0 {
		t.Fatalf("batch exact_convolve exit %d: %s", code, stderr)
	}
	var rows []struct {
		PWCET int64 `json:"pwcet"`
	}
	if err := json.Unmarshal([]byte(stdout), &rows); err != nil {
		t.Fatal(err)
	}
	p, err := pwcet.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-3, Mechanism: pwcet.SRB, ExactConvolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].PWCET != solo.PWCET {
		t.Errorf("batch exact_convolve rows %+v, want pWCET %d", rows, solo.PWCET)
	}
}

// TestProfilingFlags: -cpuprofile and -memprofile must write non-empty
// pprof files on a clean run, and an unwritable profile path must exit
// 1 with a diagnostic instead of silently analyzing without a profile.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	code, _, stderr := runCmd(t, "-bench", "bs", "-mech", "rw", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("profiled run exited %d: %s", code, stderr)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}

	code, _, stderr = runCmd(t, "-bench", "bs", "-cpuprofile", filepath.Join(dir, "missing", "cpu.out"))
	if code != 1 || !strings.Contains(stderr, "pwcet:") {
		t.Fatalf("unwritable -cpuprofile: exit %d, stderr %q (want 1 with diagnostic)", code, stderr)
	}
	code, _, stderr = runCmd(t, "-bench", "bs", "-memprofile", filepath.Join(dir, "missing", "mem.out"))
	if code != 1 || !strings.Contains(stderr, "pwcet:") {
		t.Fatalf("unwritable -memprofile: exit %d, stderr %q (want 1 with diagnostic)", code, stderr)
	}
}

// TestMemProfileSkippedOnFailure: the heap profile is only written on
// clean exit — a failing run must not leave one behind.
func TestMemProfileSkippedOnFailure(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.out")
	code, _, _ := runCmd(t, "-batch", filepath.Join(dir, "does-not-exist.json"), "-memprofile", mem)
	if code != 1 {
		t.Fatalf("missing batch spec exited %d, want 1", code)
	}
	if _, err := os.Stat(mem); err == nil {
		t.Fatal("heap profile written despite a failing run")
	}
}
