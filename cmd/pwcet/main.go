// Command pwcet analyzes one benchmark of the Mälardalen-like suite and
// reports its probabilistic WCET under a chosen reliability mechanism.
//
//	pwcet -list
//	pwcet -all
//	pwcet -bench adpcm
//	pwcet -bench matmult -mech all -pfail 1e-3
//	pwcet -bench crc -mech srb -curve
//	pwcet -bench bs -mech rw -fmm
//	pwcet -bench adpcm -classes
//	pwcet -bench fibcall -mech none -validate 200
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	pwcet "repro"
	"repro/internal/core"
	"repro/internal/malardalen"
	"repro/internal/sim"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks and exit")
	all := flag.Bool("all", false, "analyze the whole suite and print a summary table")
	bench := flag.String("bench", "", "benchmark name (see -list)")
	mech := flag.String("mech", "all", "reliability mechanism: none, rw, srb or all")
	pfail := flag.Float64("pfail", 1e-4, "per-bit permanent failure probability")
	target := flag.Float64("target", 1e-15, "target exceedance probability")
	curve := flag.Bool("curve", false, "print the exceedance curve as CSV")
	fmm := flag.Bool("fmm", false, "print the fault miss map")
	classes := flag.Bool("classes", false, "print the per-reference CHMC summary")
	precise := flag.Bool("precise", false, "enable the precise SRB analysis (mixture bound; srb only)")
	validate := flag.Int("validate", 0, "run Monte-Carlo validation with N fault maps")
	flag.Parse()

	if *list {
		for _, n := range pwcet.Benchmarks() {
			p := malardalen.MustGet(n)
			fmt.Printf("%-14s %6d bytes  %4d blocks  %3d loops\n",
				n, p.CodeBytes(), len(p.Blocks), len(p.Loops))
		}
		return
	}
	if *all {
		analyzeAll(*pfail, *target)
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "pwcet: -bench or -list required")
		flag.Usage()
		os.Exit(2)
	}
	p, err := pwcet.Benchmark(*bench)
	if err != nil {
		fatal(err)
	}

	var mechs []pwcet.Mechanism
	if *mech == "all" {
		mechs = []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}
	} else {
		m, err := pwcet.ParseMechanism(*mech)
		if err != nil {
			fatal(err)
		}
		mechs = []pwcet.Mechanism{m}
	}

	opt := pwcet.Options{Pfail: *pfail, TargetExceedance: *target}
	results := make(map[pwcet.Mechanism]*core.Result, len(mechs))
	for _, m := range mechs {
		o := opt
		o.Mechanism = m
		o.PreciseSRB = *precise && m == pwcet.SRB
		r, err := pwcet.Analyze(p, o)
		if err != nil {
			fatal(err)
		}
		results[m] = r
	}

	first := results[mechs[0]]
	fmt.Printf("benchmark %s: %d bytes of code, %d basic blocks, %d loops\n",
		*bench, p.CodeBytes(), len(p.Blocks), len(p.Loops))
	fmt.Printf("cache: %dB, %d sets x %d ways x %dB lines; pfail=%g (pbf=%.4g); target=%g\n",
		first.Options.Cache.SizeBytes(), first.Options.Cache.Sets, first.Options.Cache.Ways,
		first.Options.Cache.BlockBytes, *pfail, first.Model.PBF, *target)
	fmt.Printf("references: %d always-hit, %d first-miss, %d always-miss/not-classified\n",
		first.HitRefs, first.FMRefs, first.MissRefs)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tfault-free WCET\tpWCET\tratio\tmax penalty")
	for _, m := range mechs {
		r := results[m]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\n",
			m, r.FaultFreeWCET, r.PWCET,
			float64(r.PWCET)/float64(r.FaultFreeWCET), r.Penalty.Max())
	}
	tw.Flush()

	if *classes {
		printClasses(p, first.Options.Cache)
	}

	for _, m := range mechs {
		r := results[m]
		if *fmm {
			fmt.Printf("\nfault miss map (%s), rows = sets, columns = faulty blocks 0..W:\n", m)
			for s, row := range r.FMM {
				fmt.Printf("  set %2d:", s)
				for _, v := range row {
					fmt.Printf(" %7d", v)
				}
				fmt.Println()
			}
		}
		if *curve {
			fmt.Printf("\nexceedance curve (%s): wcet_cycles,probability\n", m)
			for _, pt := range r.ExceedanceCurve() {
				fmt.Printf("%d,%.6g\n", pt.Value, pt.Prob)
			}
		}
		if *validate > 0 {
			rep, err := sim.Validate(p, r, *validate, 2, 1)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nvalidation (%s): %d fault maps x %d paths: max simulated %d, max bound %d, "+
				"bound violations %d, CCDF violations %d\n",
				m, rep.Samples, rep.PathsPerSample, rep.MaxTime, rep.MaxBound,
				rep.BoundViolations, rep.CCDFViolations)
		}
	}
}

// analyzeAll prints the whole-suite summary (one line per benchmark).
func analyzeAll(pfail, target float64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tcode B\tfault-free\tnone\tsrb\trw\tgain srb\tgain rw\t")
	for _, name := range pwcet.Benchmarks() {
		p := malardalen.MustGet(name)
		results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: pfail, TargetExceedance: target})
		if err != nil {
			fatal(err)
		}
		none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f%%\t%.0f%%\t\n",
			name, p.CodeBytes(), none.FaultFreeWCET, none.PWCET, srb.PWCET, rw.PWCET,
			100*pwcet.Gain(none, srb), 100*pwcet.Gain(none, rw))
	}
	tw.Flush()
}

// printClasses summarizes the CHMC classification per cache set.
func printClasses(p *pwcet.Program, cfg pwcet.CacheConfig) {
	cls := core.Classify(p, cfg)
	perSet := make(map[int]map[string]int)
	for i, r := range cls.Refs {
		m := perSet[r.Set]
		if m == nil {
			m = make(map[string]int)
			perSet[r.Set] = m
		}
		m[cls.Classes[i].String()]++
		if cls.SRBHit[i] {
			m["SRB-AH"]++
		}
	}
	fmt.Println("\nper-set reference classification (AH / FM / AM / NC, SRB guaranteed hits):")
	for s := 0; s < cfg.Sets; s++ {
		m := perSet[s]
		fmt.Printf("  set %2d: AH %3d  FM %3d  AM %3d  NC %3d  SRB-AH %3d\n",
			s, m["AH"], m["FM"], m["AM"], m["NC"], m["SRB-AH"])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwcet:", err)
	os.Exit(1)
}
