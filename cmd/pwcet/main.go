// Command pwcet analyzes one benchmark of the Mälardalen-like suite and
// reports its probabilistic WCET under a chosen reliability mechanism.
//
//	pwcet -list
//	pwcet -all
//	pwcet -bench adpcm
//	pwcet -bench matmult -mech all -pfail 1e-3
//	pwcet -bench crc -mech srb -curve
//	pwcet -bench bs -mech rw -fmm
//	pwcet -bench adpcm -classes
//	pwcet -bench fibcall -mech none -validate 200
//	pwcet -all -workers 8
//
// Invalid flags or flag combinations exit with status 2 after a usage
// message; analysis failures exit with status 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	pwcet "repro"
	"repro/internal/core"
	"repro/internal/malardalen"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config carries the parsed and validated command line.
type config struct {
	list, all bool
	bench     string
	mechs     []pwcet.Mechanism
	pfail     float64
	target    float64
	workers   int
	curve     bool
	fmm       bool
	classes   bool
	precise   bool
	validate  int
}

// parseFlags parses and validates the command line. It returns a usage
// error (exit status 2) for anything malformed: unknown mechanism
// names, probabilities outside their domain, negative counts, or flag
// combinations that cannot be satisfied together.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("pwcet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	var mech string
	fs.BoolVar(&c.list, "list", false, "list available benchmarks and exit")
	fs.BoolVar(&c.all, "all", false, "analyze the whole suite and print a summary table")
	fs.StringVar(&c.bench, "bench", "", "benchmark name (see -list)")
	fs.StringVar(&mech, "mech", "all", "reliability mechanism: none, rw, srb or all")
	fs.Float64Var(&c.pfail, "pfail", 1e-4, "per-bit permanent failure probability, in [0,1]")
	fs.Float64Var(&c.target, "target", 1e-15, "target exceedance probability, in (0,1)")
	fs.IntVar(&c.workers, "workers", 0, "worker goroutines for the per-set stages (0 = GOMAXPROCS)")
	fs.BoolVar(&c.curve, "curve", false, "print the exceedance curve as CSV")
	fs.BoolVar(&c.fmm, "fmm", false, "print the fault miss map")
	fs.BoolVar(&c.classes, "classes", false, "print the per-reference CHMC summary")
	fs.BoolVar(&c.precise, "precise", false, "enable the precise SRB analysis (mixture bound; srb only)")
	fs.IntVar(&c.validate, "validate", 0, "run Monte-Carlo validation with N fault maps")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	usage := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(stderr, "pwcet: %v\n", err)
		fs.Usage()
		return err
	}
	if fs.NArg() > 0 {
		return nil, usage("unexpected arguments %q", fs.Args())
	}
	if c.pfail < 0 || c.pfail > 1 || math.IsNaN(c.pfail) {
		return nil, usage("-pfail %g outside [0,1]", c.pfail)
	}
	if c.target <= 0 || c.target >= 1 || math.IsNaN(c.target) {
		return nil, usage("-target %g outside (0,1)", c.target)
	}
	if c.workers < 0 {
		return nil, usage("-workers %d is negative (0 means GOMAXPROCS)", c.workers)
	}
	if c.validate < 0 {
		return nil, usage("-validate %d is negative", c.validate)
	}
	if mech == "all" {
		c.mechs = []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}
	} else {
		m, err := pwcet.ParseMechanism(mech)
		if err != nil {
			return nil, usage("%v", err)
		}
		c.mechs = []pwcet.Mechanism{m}
	}
	if c.list || c.all {
		if c.bench != "" {
			return nil, usage("-bench cannot be combined with -list or -all")
		}
		benchOnly := []struct {
			name string
			set  bool
		}{
			{"-curve", c.curve}, {"-fmm", c.fmm}, {"-classes", c.classes},
			{"-precise", c.precise}, {"-validate", c.validate > 0},
		}
		for _, f := range benchOnly {
			if f.set {
				return nil, usage("%s requires -bench", f.name)
			}
		}
		return c, nil
	}
	if c.bench == "" {
		return nil, usage("-bench or -list required")
	}
	if _, err := pwcet.Benchmark(c.bench); err != nil {
		return nil, usage("%v (see -list)", err)
	}
	return c, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if c.list {
		for _, n := range pwcet.Benchmarks() {
			p := malardalen.MustGet(n)
			fmt.Fprintf(stdout, "%-14s %6d bytes  %4d blocks  %3d loops\n",
				n, p.CodeBytes(), len(p.Blocks), len(p.Loops))
		}
		return 0
	}
	if c.all {
		if err := analyzeAll(stdout, c); err != nil {
			fmt.Fprintln(stderr, "pwcet:", err)
			return 1
		}
		return 0
	}
	if err := analyzeBench(stdout, c); err != nil {
		fmt.Fprintln(stderr, "pwcet:", err)
		return 1
	}
	return 0
}

// analyzeBench analyzes one benchmark under the selected mechanisms.
func analyzeBench(stdout io.Writer, c *config) error {
	p, err := pwcet.Benchmark(c.bench)
	if err != nil {
		return err
	}

	opt := pwcet.Options{Pfail: c.pfail, TargetExceedance: c.target, Workers: c.workers}
	results := make(map[pwcet.Mechanism]*core.Result, len(c.mechs))
	for _, m := range c.mechs {
		o := opt
		o.Mechanism = m
		o.PreciseSRB = c.precise && m == pwcet.SRB
		r, err := pwcet.Analyze(p, o)
		if err != nil {
			return err
		}
		results[m] = r
	}

	first := results[c.mechs[0]]
	fmt.Fprintf(stdout, "benchmark %s: %d bytes of code, %d basic blocks, %d loops\n",
		c.bench, p.CodeBytes(), len(p.Blocks), len(p.Loops))
	fmt.Fprintf(stdout, "cache: %dB, %d sets x %d ways x %dB lines; pfail=%g (pbf=%.4g); target=%g\n",
		first.Options.Cache.SizeBytes(), first.Options.Cache.Sets, first.Options.Cache.Ways,
		first.Options.Cache.BlockBytes, c.pfail, first.Model.PBF, c.target)
	fmt.Fprintf(stdout, "references: %d always-hit, %d first-miss, %d always-miss/not-classified\n",
		first.HitRefs, first.FMRefs, first.MissRefs)

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tfault-free WCET\tpWCET\tratio\tmax penalty")
	for _, m := range c.mechs {
		r := results[m]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\n",
			m, r.FaultFreeWCET, r.PWCET,
			float64(r.PWCET)/float64(r.FaultFreeWCET), r.Penalty.Max())
	}
	tw.Flush()

	if c.classes {
		printClasses(stdout, p, first.Options.Cache)
	}

	for _, m := range c.mechs {
		r := results[m]
		if c.fmm {
			fmt.Fprintf(stdout, "\nfault miss map (%s), rows = sets, columns = faulty blocks 0..W:\n", m)
			for s, row := range r.FMM {
				fmt.Fprintf(stdout, "  set %2d:", s)
				for _, v := range row {
					fmt.Fprintf(stdout, " %7d", v)
				}
				fmt.Fprintln(stdout)
			}
		}
		if c.curve {
			fmt.Fprintf(stdout, "\nexceedance curve (%s): wcet_cycles,probability\n", m)
			for _, pt := range r.ExceedanceCurve() {
				fmt.Fprintf(stdout, "%d,%.6g\n", pt.Value, pt.Prob)
			}
		}
		if c.validate > 0 {
			rep, err := sim.Validate(p, r, c.validate, 2, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nvalidation (%s): %d fault maps x %d paths: max simulated %d, max bound %d, "+
				"bound violations %d, CCDF violations %d\n",
				m, rep.Samples, rep.PathsPerSample, rep.MaxTime, rep.MaxBound,
				rep.BoundViolations, rep.CCDFViolations)
		}
	}
	return nil
}

// analyzeAll prints the whole-suite summary (one line per benchmark).
func analyzeAll(stdout io.Writer, c *config) error {
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tcode B\tfault-free\tnone\tsrb\trw\tgain srb\tgain rw\t")
	for _, name := range pwcet.Benchmarks() {
		p := malardalen.MustGet(name)
		results, err := pwcet.AnalyzeAll(p, pwcet.Options{
			Pfail: c.pfail, TargetExceedance: c.target, Workers: c.workers,
		})
		if err != nil {
			return err
		}
		none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f%%\t%.0f%%\t\n",
			name, p.CodeBytes(), none.FaultFreeWCET, none.PWCET, srb.PWCET, rw.PWCET,
			100*pwcet.Gain(none, srb), 100*pwcet.Gain(none, rw))
	}
	tw.Flush()
	return nil
}

// printClasses summarizes the CHMC classification per cache set.
func printClasses(stdout io.Writer, p *pwcet.Program, cfg pwcet.CacheConfig) {
	cls := core.Classify(p, cfg)
	perSet := make(map[int]map[string]int)
	for i, r := range cls.Refs {
		m := perSet[r.Set]
		if m == nil {
			m = make(map[string]int)
			perSet[r.Set] = m
		}
		m[cls.Classes[i].String()]++
		if cls.SRBHit[i] {
			m["SRB-AH"]++
		}
	}
	fmt.Fprintln(stdout, "\nper-set reference classification (AH / FM / AM / NC, SRB guaranteed hits):")
	for s := 0; s < cfg.Sets; s++ {
		m := perSet[s]
		fmt.Fprintf(stdout, "  set %2d: AH %3d  FM %3d  AM %3d  NC %3d  SRB-AH %3d\n",
			s, m["AH"], m["FM"], m["AM"], m["NC"], m["SRB-AH"])
	}
}
