// Command pwcet analyzes benchmarks of the Mälardalen-like suite and
// reports their probabilistic WCET under the paper's reliability
// mechanisms. Single-benchmark analyses and whole-suite summaries run
// on a shared-work analysis session (pwcet.Engine); -batch runs a full
// sweep specification (benchmarks x pfails x mechanisms x targets)
// through Engine.AnalyzeBatch.
//
//	pwcet -list
//	pwcet -all
//	pwcet -bench adpcm
//	pwcet -bench matmult -mech all -pfail 1e-3
//	pwcet -bench crc -fault-model transient -lambda 1e-10
//	pwcet -bench crc -fault-model combined -pfail 1e-4 -lambda 1e-10
//	pwcet -bench crc -mech srb -curve
//	pwcet -bench crc -mech srb -curve -json
//	pwcet -bench bs -mech rw -fmm
//	pwcet -bench adpcm -classes
//	pwcet -bench fibcall -mech none -validate 200
//	pwcet -all -workers 8
//	pwcet -batch sweep.json
//	pwcet -batch sweep.json -json
//	pwcet -batch sweep.json -ndjson
//
// The -batch specification is the shared internal/batchspec JSON
// format (also accepted verbatim by the pwcetd analysis service):
//
//	{
//	  "benchmarks": ["adpcm", "crc"],          // omitted = whole suite
//	  "fault_model": "permanent",              // or "transient", "combined"
//	  "pfails": [1e-6, 1e-5, 1e-4, 1e-3],      // permanent/combined: required
//	  "lambdas": [1e-12, 1e-10],               // transient/combined: required
//	  "mechanisms": ["none", "rw", "srb"],     // omitted = all three
//	  "targets": [1e-15],                      // omitted = [1e-15]
//	  "cache": {"sets": 16, "ways": 4, "block_bytes": 16,
//	            "hit_latency": 1, "mem_latency": 100}, // omitted = paper cache
//	  "max_support": 4096,                     // omitted = default
//	  "coarsen": "least-error",                // or "keep-heaviest"; omitted = least-error
//	  "exact_convolve": false,                 // exact convolution fold (escape hatch)
//	  "workers": 0                             // 0/omitted = the -workers flag
//	}
//
// The fault_model gates the parameter axes strictly: permanent sweeps
// must not set lambdas, transient sweeps must not set pfails, combined
// sweeps must set both. The single-benchmark modes expose the same
// axis through -fault-model and -lambda.
//
// -ndjson streams one compact JSON row per line as benchmarks finish —
// byte-identical to the NDJSON stream pwcetd serves for the same spec.
//
// Each benchmark's queries share one engine: the cache fixpoints, the
// IPET system, the fault-free WCET and the per-set FMM ILP solves are
// computed once per (cache, mechanism) and reused by every sweep point.
//
// Profiling: -cpuprofile and -memprofile write pprof profiles of the
// run (the heap profile on clean exit only), so performance work on
// the analysis pipeline needs no ad-hoc harness:
//
//	pwcet -all -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Invalid flags or flag combinations exit with status 2 after a usage
// message; analysis failures exit with status 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	pwcet "repro"
	"repro/internal/batchspec"
	"repro/internal/core"
	"repro/internal/malardalen"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config carries the parsed and validated command line.
type config struct {
	list, all  bool
	bench      string
	batch      string
	mechs      []pwcet.Mechanism
	faultModel pwcet.ScenarioKind
	pfail      float64
	lambda     float64
	target     float64
	coarsen    pwcet.CoarsenStrategy
	workers    int
	exact      bool
	softDL     time.Duration
	jsonOut    bool
	ndjson     bool
	curve      bool
	fmm        bool
	classes    bool
	precise    bool
	validate   int
	cpuprofile string
	memprofile string
}

// scenario returns the explicit fault scenario of the command line, or
// nil for the permanent model — the legacy Pfail spelling, which keeps
// permanent runs byte-identical to the pre-scenario CLI.
func (c *config) scenario() pwcet.Scenario {
	switch c.faultModel {
	case pwcet.ScenarioPermanent:
		return nil
	case pwcet.ScenarioTransient:
		return pwcet.Transient{Lambda: c.lambda}
	case pwcet.ScenarioCombined:
		return pwcet.Combined{Pfail: c.pfail, Lambda: c.lambda}
	default:
		panic(fmt.Sprintf("pwcet: unhandled fault model %v", c.faultModel))
	}
}

// parseFlags parses and validates the command line. It returns a usage
// error (exit status 2) for anything malformed: unknown mechanism
// names, probabilities outside their domain, negative counts, or flag
// combinations that cannot be satisfied together.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("pwcet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	var mech string
	fs.BoolVar(&c.list, "list", false, "list available benchmarks and exit")
	fs.BoolVar(&c.all, "all", false, "analyze the whole suite and print a summary table")
	fs.StringVar(&c.bench, "bench", "", "benchmark name (see -list)")
	fs.StringVar(&c.batch, "batch", "", "JSON sweep specification file (see package doc)")
	fs.StringVar(&mech, "mech", "all", "reliability mechanism: none, rw, srb or all")
	var faultModel string
	fs.StringVar(&faultModel, "fault-model", "permanent", "fault scenario: permanent, transient or combined")
	fs.Float64Var(&c.pfail, "pfail", 1e-4, "per-bit permanent failure probability, in [0,1] (permanent and combined models)")
	fs.Float64Var(&c.lambda, "lambda", 0, "per-line per-cycle SEU rate, >= 0 (transient and combined models)")
	fs.Float64Var(&c.target, "target", 1e-15, "target exceedance probability, in (0,1)")
	var coarsen string
	fs.StringVar(&coarsen, "coarsen", "least-error", "support-cap coarsening strategy: least-error or keep-heaviest")
	fs.IntVar(&c.workers, "workers", 0, "worker goroutines for the per-set stages and batch scheduling (0 = GOMAXPROCS)")
	fs.BoolVar(&c.exact, "exact-convolve", false, "route the penalty reduction through the exact convolution fold (differential escape hatch)")
	fs.DurationVar(&c.softDL, "soft-deadline", 0, "per-query degraded-mode deadline: queries over it retry at tighter support caps and report degraded results (0 = off)")
	fs.BoolVar(&c.jsonOut, "json", false, "emit machine-readable JSON (with -bench or -batch)")
	fs.BoolVar(&c.ndjson, "ndjson", false, "with -batch: stream one compact JSON row per line (NDJSON)")
	fs.BoolVar(&c.curve, "curve", false, "print the exceedance curve")
	fs.BoolVar(&c.fmm, "fmm", false, "print the fault miss map")
	fs.BoolVar(&c.classes, "classes", false, "print the per-reference CHMC summary")
	fs.BoolVar(&c.precise, "precise", false, "enable the precise SRB analysis (mixture bound; srb only)")
	fs.IntVar(&c.validate, "validate", 0, "run Monte-Carlo validation with N fault maps")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a pprof heap profile to this file on clean exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	usage := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(stderr, "pwcet: %v\n", err)
		fs.Usage()
		return err
	}
	if fs.NArg() > 0 {
		return nil, usage("unexpected arguments %q", fs.Args())
	}
	if c.pfail < 0 || c.pfail > 1 || math.IsNaN(c.pfail) {
		return nil, usage("-pfail %g outside [0,1]", c.pfail)
	}
	if c.lambda < 0 || math.IsNaN(c.lambda) || math.IsInf(c.lambda, 0) {
		return nil, usage("-lambda %g must be a finite rate >= 0", c.lambda)
	}
	fm, err := pwcet.ParseScenarioKind(faultModel)
	if err != nil {
		return nil, usage("%v", err)
	}
	c.faultModel = fm
	// Each fault model owns exactly its parameter axes: an explicitly
	// set flag along a missing axis would be silently meaningless.
	if c.faultModel == pwcet.ScenarioPermanent && explicit["lambda"] {
		return nil, usage("-lambda requires -fault-model transient or combined")
	}
	if c.faultModel == pwcet.ScenarioTransient && explicit["pfail"] {
		return nil, usage("-pfail is meaningless with -fault-model transient")
	}
	if c.target <= 0 || c.target >= 1 || math.IsNaN(c.target) {
		return nil, usage("-target %g outside (0,1)", c.target)
	}
	if c.workers < 0 {
		return nil, usage("-workers %d is negative (0 means GOMAXPROCS)", c.workers)
	}
	if c.softDL < 0 {
		return nil, usage("-soft-deadline %v is negative (0 means off)", c.softDL)
	}
	if c.validate < 0 {
		return nil, usage("-validate %d is negative", c.validate)
	}
	if c.coarsen, err = pwcet.ParseCoarsenStrategy(coarsen); err != nil {
		return nil, usage("%v", err)
	}
	if mech == "all" {
		c.mechs = []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}
	} else {
		m, err := pwcet.ParseMechanism(mech)
		if err != nil {
			return nil, usage("%v", err)
		}
		c.mechs = []pwcet.Mechanism{m}
	}

	modes := 0
	for _, set := range []bool{c.list, c.all, c.bench != "", c.batch != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		return nil, usage("-list, -all, -bench and -batch are mutually exclusive")
	}
	if modes == 0 {
		return nil, usage("-bench, -batch, -all or -list required")
	}
	if c.list || c.all || c.batch != "" {
		benchOnly := []struct {
			name string
			set  bool
		}{
			{"-curve", c.curve}, {"-fmm", c.fmm}, {"-classes", c.classes},
			{"-precise", c.precise}, {"-validate", c.validate > 0},
		}
		for _, f := range benchOnly {
			if f.set {
				return nil, usage("%s requires -bench", f.name)
			}
		}
		if c.jsonOut && (c.list || c.all) {
			return nil, usage("-json requires -bench or -batch")
		}
		if explicit["soft-deadline"] && (c.list || c.all) {
			// AnalyzeAll's one-shot Options have no per-query degraded
			// mode; silently dropping the flag would mislead.
			return nil, usage("-soft-deadline requires -bench or -batch")
		}
		if c.ndjson && c.batch == "" {
			return nil, usage("-ndjson requires -batch")
		}
		if c.batch != "" {
			// The sweep specification owns these axes; silently dropping
			// an explicit flag would mislead.
			for _, name := range []string{"fault-model", "pfail", "lambda", "target", "mech", "coarsen", "exact-convolve"} {
				if explicit[name] {
					return nil, usage("-%s cannot be combined with -batch (set it in the spec)", name)
				}
			}
			if c.jsonOut && c.ndjson {
				return nil, usage("-json and -ndjson are mutually exclusive")
			}
		}
		return c, nil
	}
	if c.ndjson {
		return nil, usage("-ndjson requires -batch")
	}
	if _, err := pwcet.Benchmark(c.bench); err != nil {
		return nil, usage("%v (see -list)", err)
	}
	if c.faultModel != pwcet.ScenarioPermanent {
		// The precise SRB mixture and the Monte-Carlo validator model
		// permanent fault maps only; a pure transient run has no fault
		// miss map to print.
		if c.precise {
			return nil, usage("-precise requires the permanent fault model")
		}
		if c.validate > 0 {
			return nil, usage("-validate requires the permanent fault model")
		}
		if c.fmm && c.faultModel == pwcet.ScenarioTransient {
			return nil, usage("-fmm is meaningless with -fault-model transient (no permanent component)")
		}
	}
	if c.jsonOut {
		// The JSON report carries the analysis results and optional
		// curve; the remaining sections are text-only and would be
		// silently dropped — reject instead of misleading.
		for _, f := range []struct {
			name string
			set  bool
		}{{"-fmm", c.fmm}, {"-classes", c.classes}, {"-validate", c.validate > 0}} {
			if f.set {
				return nil, usage("%s is not available with -json", f.name)
			}
		}
	}
	return c, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "pwcet:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "pwcet:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	code := dispatch(c, stdout, stderr)
	if code == 0 && c.memprofile != "" {
		if err := writeMemProfile(c.memprofile); err != nil {
			fmt.Fprintln(stderr, "pwcet:", err)
			return 1
		}
	}
	return code
}

// writeMemProfile records the post-run heap profile (after a GC, so
// retained memory — the engines' memoized artifacts — dominates over
// garbage).
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// dispatch runs the selected mode.
func dispatch(c *config, stdout, stderr io.Writer) int {
	var err error
	switch {
	case c.list:
		for _, n := range pwcet.Benchmarks() {
			p := malardalen.MustGet(n)
			fmt.Fprintf(stdout, "%-14s %6d bytes  %4d blocks  %3d loops\n",
				n, p.CodeBytes(), len(p.Blocks), len(p.Loops))
		}
		return 0
	case c.all:
		err = analyzeAll(stdout, c)
	case c.batch != "":
		err = runBatch(stdout, c)
	default:
		err = analyzeBench(stdout, c)
	}
	if err != nil {
		fmt.Fprintln(stderr, "pwcet:", err)
		return 1
	}
	return 0
}

// benchJSON is the machine-readable single-benchmark report.
type benchJSON struct {
	Benchmark     string          `json:"benchmark"`
	Cache         batchspec.Cache `json:"cache"`
	Pfail         float64         `json:"pfail"`
	PBF           float64         `json:"pbf"`
	FaultModel    string          `json:"fault_model,omitempty"`
	Lambda        float64         `json:"lambda,omitempty"`
	Target        float64         `json:"target"`
	Coarsen       string          `json:"coarsen"`
	ExactConvolve bool            `json:"exact_convolve"`
	HitRefs       int             `json:"hit_refs"`
	FMRefs        int             `json:"fm_refs"`
	MissRefs      int             `json:"miss_refs"`
	Mechanisms    []mechanismJSON `json:"mechanisms"`
}

// mechanismJSON is one mechanism's outcome.
type mechanismJSON struct {
	Mechanism     string `json:"mechanism"`
	FaultFreeWCET int64  `json:"fault_free_wcet"`
	PWCET         int64  `json:"pwcet"`
	MaxPenalty    int64  `json:"max_penalty"`
	// Degraded reports that a -soft-deadline retry tightened the support
	// cap: the pWCET is still a sound upper bound, just coarser.
	Degraded bool         `json:"degraded,omitempty"`
	Curve    []curvePoint `json:"curve,omitempty"`
}

// curvePoint is one atom of the exceedance curve.
type curvePoint struct {
	WCET       int64   `json:"wcet_cycles"`
	Exceedance float64 `json:"exceedance"`
}

// analyzeBench analyzes one benchmark under the selected mechanisms on
// one shared-work engine.
func analyzeBench(stdout io.Writer, c *config) error {
	p, err := pwcet.Benchmark(c.bench)
	if err != nil {
		return err
	}
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{Workers: c.workers, ExactConvolve: c.exact})
	if err != nil {
		return err
	}
	queries := make([]pwcet.Query, len(c.mechs))
	for i, m := range c.mechs {
		q := pwcet.Query{
			Mechanism:        m,
			TargetExceedance: c.target,
			Coarsen:          c.coarsen,
			PreciseSRB:       c.precise && m == pwcet.SRB,
			SoftDeadline:     c.softDL,
		}
		if scn := c.scenario(); scn != nil {
			q.Scenario = scn
		} else {
			q.Pfail = c.pfail
		}
		queries[i] = q
	}
	batch, err := eng.AnalyzeBatch(queries)
	if err != nil {
		return err
	}
	results := make(map[pwcet.Mechanism]*core.Result, len(c.mechs))
	for i, m := range c.mechs {
		results[m] = batch[i]
	}

	if c.jsonOut {
		return writeBenchJSON(stdout, c, results)
	}

	first := results[c.mechs[0]]
	fmt.Fprintf(stdout, "benchmark %s: %d bytes of code, %d basic blocks, %d loops\n",
		c.bench, p.CodeBytes(), len(p.Blocks), len(p.Loops))
	fmt.Fprintf(stdout, "cache: %dB, %d sets x %d ways x %dB lines; pfail=%g (pbf=%.4g); target=%g\n",
		first.Options.Cache.SizeBytes(), first.Options.Cache.Sets, first.Options.Cache.Ways,
		first.Options.Cache.BlockBytes, first.Model.Pfail, first.Model.PBF, c.target)
	if c.faultModel != pwcet.ScenarioPermanent {
		fmt.Fprintf(stdout, "fault model: %s; lambda=%g upsets/line/cycle (window=%d cycles, per-access p=%.4g)\n",
			first.Scenario, c.lambda, first.Transient.Window, first.Transient.PMiss)
	}
	fmt.Fprintf(stdout, "references: %d always-hit, %d first-miss, %d always-miss/not-classified\n",
		first.HitRefs, first.FMRefs, first.MissRefs)

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tfault-free WCET\tpWCET\tratio\tmax penalty")
	for _, m := range c.mechs {
		r := results[m]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\n",
			m, r.FaultFreeWCET, r.PWCET,
			float64(r.PWCET)/float64(r.FaultFreeWCET), r.Penalty.Max())
	}
	tw.Flush()

	if c.classes {
		printClasses(stdout, p, first.Options.Cache)
	}

	for _, m := range c.mechs {
		r := results[m]
		if c.fmm {
			fmt.Fprintf(stdout, "\nfault miss map (%s), rows = sets, columns = faulty blocks 0..W:\n", m)
			for s, row := range r.FMM {
				fmt.Fprintf(stdout, "  set %2d:", s)
				for _, v := range row {
					fmt.Fprintf(stdout, " %7d", v)
				}
				fmt.Fprintln(stdout)
			}
		}
		if c.curve {
			fmt.Fprintf(stdout, "\nexceedance curve (%s): wcet_cycles,probability\n", m)
			for _, pt := range r.ExceedanceCurve() {
				fmt.Fprintf(stdout, "%d,%.6g\n", pt.Value, pt.Prob)
			}
		}
		if c.validate > 0 {
			rep, err := sim.Validate(p, r, c.validate, 2, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nvalidation (%s): %d fault maps x %d paths: max simulated %d, max bound %d, "+
				"bound violations %d, CCDF violations %d\n",
				m, rep.Samples, rep.PathsPerSample, rep.MaxTime, rep.MaxBound,
				rep.BoundViolations, rep.CCDFViolations)
		}
	}
	return nil
}

// writeBenchJSON emits the single-benchmark report as JSON.
func writeBenchJSON(stdout io.Writer, c *config, results map[pwcet.Mechanism]*core.Result) error {
	first := results[c.mechs[0]]
	rep := benchJSON{
		Benchmark:     c.bench,
		Cache:         batchspec.FromConfig(first.Options.Cache),
		Pfail:         first.Model.Pfail,
		PBF:           first.Model.PBF,
		Target:        c.target,
		Coarsen:       c.coarsen.String(),
		ExactConvolve: c.exact,
		HitRefs:       first.HitRefs,
		FMRefs:        first.FMRefs,
		MissRefs:      first.MissRefs,
	}
	if c.faultModel != pwcet.ScenarioPermanent {
		rep.FaultModel = c.faultModel.String()
		rep.Lambda = c.lambda
	}
	for _, m := range c.mechs {
		r := results[m]
		mj := mechanismJSON{
			Mechanism:     m.String(),
			FaultFreeWCET: r.FaultFreeWCET,
			PWCET:         r.PWCET,
			MaxPenalty:    r.Penalty.Max(),
			Degraded:      r.Degraded,
		}
		if c.curve {
			for _, pt := range r.ExceedanceCurve() {
				mj.Curve = append(mj.Curve, curvePoint{WCET: pt.Value, Exceedance: pt.Prob})
			}
		}
		rep.Mechanisms = append(rep.Mechanisms, mj)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// loadBatchSpec reads and validates the sweep specification (the
// shared internal/batchspec wire format).
func loadBatchSpec(path string) (*batchspec.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := batchspec.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("batch spec %s: %w", path, err)
	}
	return spec, nil
}

// runBatch executes the sweep specification: one engine per benchmark,
// the full (pfail x mechanism x target) grid as one batch each. With
// -ndjson rows stream per benchmark as compact JSON lines — the exact
// bytes pwcetd streams for the same spec.
func runBatch(stdout io.Writer, c *config) error {
	spec, err := loadBatchSpec(c.batch)
	if err != nil {
		return err
	}

	var rows []batchspec.Row
	stream := json.NewEncoder(stdout)
	for _, name := range spec.Benchmarks {
		p := malardalen.MustGet(name)
		eng, err := pwcet.NewEngine(p, spec.EngineOptions(c.workers))
		if err != nil {
			return err
		}
		queries := spec.Queries()
		if c.softDL > 0 {
			for i := range queries {
				queries[i].SoftDeadline = c.softDL
			}
		}
		results, err := eng.AnalyzeBatch(queries)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		benchRows := batchspec.Rows(name, queries, results)
		if c.ndjson {
			for _, r := range benchRows {
				if err := stream.Encode(r); err != nil {
					return err
				}
			}
			continue
		}
		rows = append(rows, benchRows...)
	}

	if c.ndjson {
		return nil
	}
	if c.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tpfail\tmechanism\ttarget\tfault-free\tpWCET\tratio\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3g\t%s\t%g\t%d\t%d\t%.3f\t\n",
			r.Benchmark, r.Pfail, r.Mechanism, r.Target, r.FaultFreeWCET, r.PWCET,
			float64(r.PWCET)/float64(r.FaultFreeWCET))
	}
	return tw.Flush()
}

// analyzeAll prints the whole-suite summary (one line per benchmark).
func analyzeAll(stdout io.Writer, c *config) error {
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tcode B\tfault-free\tnone\tsrb\trw\tgain srb\tgain rw\t")
	for _, name := range pwcet.Benchmarks() {
		p := malardalen.MustGet(name)
		opt := pwcet.Options{
			TargetExceedance: c.target, Workers: c.workers,
			ExactConvolve: c.exact,
		}
		if scn := c.scenario(); scn != nil {
			opt.Scenario = scn
		} else {
			opt.Pfail = c.pfail
		}
		results, err := pwcet.AnalyzeAll(p, opt)
		if err != nil {
			return err
		}
		none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f%%\t%.0f%%\t\n",
			name, p.CodeBytes(), none.FaultFreeWCET, none.PWCET, srb.PWCET, rw.PWCET,
			100*pwcet.Gain(none, srb), 100*pwcet.Gain(none, rw))
	}
	tw.Flush()
	return nil
}

// printClasses summarizes the CHMC classification per cache set.
func printClasses(stdout io.Writer, p *pwcet.Program, cfg pwcet.CacheConfig) {
	cls := core.Classify(p, cfg)
	perSet := make(map[int]map[string]int)
	for i, r := range cls.Refs {
		m := perSet[r.Set]
		if m == nil {
			m = make(map[string]int)
			perSet[r.Set] = m
		}
		m[cls.Classes[i].String()]++
		if cls.SRBHit[i] {
			m["SRB-AH"]++
		}
	}
	fmt.Fprintln(stdout, "\nper-set reference classification (AH / FM / AM / NC, SRB guaranteed hits):")
	for s := 0; s < cfg.Sets; s++ {
		m := perSet[s]
		fmt.Fprintf(stdout, "  set %2d: AH %3d  FM %3d  AM %3d  NC %3d  SRB-AH %3d\n",
			s, m["AH"], m["FM"], m["AM"], m["NC"], m["SRB-AH"])
	}
}
