// Command pwcetlint runs the repo's determinism and soundness
// analyzers (internal/analyzers) over the given package patterns — a
// multichecker in the spirit of golang.org/x/tools/go/analysis, built
// on the standard library alone.
//
// Usage:
//
//	go run ./cmd/pwcetlint ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. Run with -list to print the analyzers and their docs.
//
// CI runs `go run ./cmd/pwcetlint ./...` as a hard gate; a finding is
// silenced only by fixing the code or by a reviewed justification
// directive (see the package documentation of internal/analyzers for
// the //pwcetlint:NAME format).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwcetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pwcetlint [-list] [-C dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pwcetlint: %v\n", err)
		return 2
	}
	diags, err := analyzers.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "pwcetlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pwcetlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
