package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"mapiterdet", "floataccum", "exhaustenum", "refpurity"} {
		if !strings.Contains(out.String(), name+":") {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

// TestRepoExitsZero is the command-level half of the CI gate: the module
// currently carries no findings, so the exit status must be 0 and both
// streams stay quiet.
func TestRepoExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d on a clean repo\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("diagnostics printed on a clean repo: %s", out.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./does/not/exist"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d for an unresolvable pattern, want 2", code)
	}
}
