package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	pwcet "repro"
	"repro/internal/batchspec"
)

// TestInvalidFlagsExitWithUsage: malformed command lines exit 2 with a
// diagnostic and usage.
func TestInvalidFlagsExitWithUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"extra"}, "unexpected arguments"},
		{"negative rate", []string{"-rate", "-1"}, "negative"},
		{"zero burst", []string{"-burst", "0"}, "must be positive"},
		{"zero max-body", []string{"-max-body", "0"}, "must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "negative"},
		{"negative max-engines", []string{"-max-engines", "-1"}, "non-negative"},
		{"negative timeout", []string{"-batch-timeout", "-1s"}, "non-negative"},
		{"negative soft-deadline", []string{"-soft-deadline", "-1s"}, "non-negative"},
		// Rejected in both build modes: without pwcetfault the whole
		// -fault flag is refused, with it the site is unknown — either
		// way the diagnostic comes from the faultpoint package.
		{"bad fault spec", []string{"-fault", "no.such.site=error"}, "faultpoint:"},
		{"unknown flag", []string{"-wat"}, "flag provided but not defined"},
		{"open non-loopback", []string{"-addr", ":8080"}, "without -api-keys"},
		{"open all interfaces", []string{"-addr", "0.0.0.0:8080"}, "without -api-keys"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr, nil, nil)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage") {
				t.Errorf("stderr missing usage:\n%s", stderr.String())
			}
		})
	}
}

// TestLoopbackOpenAllowed: loopback addresses may run without keys;
// non-loopback requires -insecure. (Parse-level check only — no
// listener is bound because the address is invalid.)
func TestLoopbackOpenAllowed(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-addr", "localhost:9"}, &stderr); err != nil {
		t.Errorf("open loopback rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-addr", "[::1]:9"}, &stderr); err != nil {
		t.Errorf("open IPv6 loopback rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-addr", ":9", "-insecure"}, &stderr); err != nil {
		t.Errorf("-insecure override rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-addr", ":9", "-api-keys", "k"}, &stderr); err != nil {
		t.Errorf("keyed non-loopback rejected: %v", err)
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, streams a
// sweep, checks the rows against a direct engine run, reads /metrics
// and /healthz, and shuts down cleanly via the stop channel.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	var stdout, stderr bytes.Buffer
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-api-keys", "test-key", "-max-engines", "2"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("daemon exited %d before ready: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	// Auth is enforced.
	resp, err := http.Post(base+"/v1/batch", "application/json",
		strings.NewReader(`{"pfails":[1e-4]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless batch: %d, want 401", resp.StatusCode)
	}

	// A real sweep streams NDJSON rows matching a direct engine run.
	spec := `{"benchmarks":["bs"],"pfails":[1e-5,1e-3],"mechanisms":["none","srb"]}`
	req, err := http.NewRequest(http.MethodPost, base+"/v1/batch", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer test-key")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var got []batchspec.Row
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row batchspec.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, row)
	}
	parsed, err := batchspec.Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := pwcet.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pwcet.NewEngine(p, parsed.EngineOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	queries := parsed.Queries()
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	want := batchspec.Rows("bs", queries, results)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Metrics and pprof are wired.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, field := range []string{"rows_streamed", "engine_pool", "artifact_bytes", "row_latency"} {
		if !strings.Contains(string(mbody), field) {
			t.Errorf("/metrics missing %q:\n%s", field, mbody)
		}
	}
	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", presp.StatusCode)
	}

	// Clean shutdown.
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
	if !strings.Contains(stdout.String(), "drained, exiting") {
		t.Errorf("missing drain log:\n%s", stdout.String())
	}
}
