// Command pwcetd serves the pwcet analysis over HTTP (see
// internal/serve). It accepts cmd/pwcet batch specifications on
// POST /v1/batch and streams result rows as NDJSON in grid order —
// byte-identical to `pwcet -batch spec.json -ndjson` — while keeping
// its memory flat via a bounded engine pool: at most -max-engines warm
// engines stay resident, each retaining at most -max-artifact-bytes of
// memoized artifacts.
//
//	pwcetd -addr 127.0.0.1:8080
//	pwcetd -addr :8080 -api-keys key1,key2 -rate 5 -burst 10
//	curl -N -H 'Authorization: Bearer key1' \
//	     --data-binary @sweep.json http://localhost:8080/v1/batch
//
// Observability: GET /metrics returns request/row/pool counters and
// per-stage latency histograms as JSON; /debug/pprof serves the
// standard Go profiles; GET /healthz reports readiness (503 while
// draining).
//
// Listening on a non-loopback address requires -api-keys (or the
// explicit -insecure override). On SIGINT/SIGTERM the server drains:
// new requests get 503, in-flight streams finish (up to
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// config is the parsed command line.
type config struct {
	addr         string
	apiKeys      []string
	insecure     bool
	rate         float64
	burst        int
	maxBody      int64
	batchTimeout time.Duration
	softDeadline time.Duration
	drainTimeout time.Duration
	workers      int
	maxEngines   int
	maxArtifact  int64
	faults       string
}

// parseFlags parses and validates the command line (usage errors exit
// with status 2).
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("pwcetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	var keys string
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&keys, "api-keys", "", "comma-separated API keys (empty = open server, loopback only)")
	fs.BoolVar(&c.insecure, "insecure", false, "allow listening without API keys on non-loopback addresses")
	fs.Float64Var(&c.rate, "rate", 0, "per-key sustained requests per second (0 = unlimited)")
	fs.IntVar(&c.burst, "burst", 5, "per-key request burst")
	fs.Int64Var(&c.maxBody, "max-body", 1<<20, "request body size limit in bytes")
	fs.DurationVar(&c.batchTimeout, "batch-timeout", 10*time.Minute, "wall-clock limit per batch request (0 = unlimited)")
	fs.DurationVar(&c.softDeadline, "soft-deadline", 0, "per-query degraded-mode deadline: queries over it retry at tighter support caps and stream \"degraded\": true rows (0 = off)")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown drain limit")
	fs.StringVar(&c.faults, "fault", "", "fault-injection spec site=spec;... (requires the pwcetfault build tag; see internal/faultpoint)")
	fs.IntVar(&c.workers, "workers", 0, "default engine worker goroutines (0 = GOMAXPROCS; specs may override)")
	fs.IntVar(&c.maxEngines, "max-engines", 8, "max resident warm engines in the pool (0 = unbounded)")
	fs.Int64Var(&c.maxArtifact, "max-artifact-bytes", 64<<20, "per-engine memoized-artifact byte budget (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	usage := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(stderr, "pwcetd: %v\n", err)
		fs.Usage()
		return err
	}
	if fs.NArg() > 0 {
		return nil, usage("unexpected arguments %q", fs.Args())
	}
	if keys != "" {
		for _, k := range strings.Split(keys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				c.apiKeys = append(c.apiKeys, k)
			}
		}
	}
	if c.rate < 0 {
		return nil, usage("-rate %g is negative", c.rate)
	}
	if c.burst <= 0 {
		return nil, usage("-burst %d must be positive", c.burst)
	}
	if c.maxBody <= 0 {
		return nil, usage("-max-body %d must be positive", c.maxBody)
	}
	if c.batchTimeout < 0 || c.drainTimeout < 0 || c.softDeadline < 0 {
		return nil, usage("timeouts must be non-negative")
	}
	if err := faultpoint.EnableSpecs(c.faults); err != nil {
		return nil, usage("-fault: %v", err)
	}
	if c.workers < 0 {
		return nil, usage("-workers %d is negative (0 means GOMAXPROCS)", c.workers)
	}
	if c.maxEngines < 0 || c.maxArtifact < 0 {
		return nil, usage("pool bounds must be non-negative (0 = unbounded)")
	}
	if len(c.apiKeys) == 0 && !c.insecure && !loopbackAddr(c.addr) {
		return nil, usage("refusing to listen on non-loopback %q without -api-keys (or explicit -insecure)", c.addr)
	}
	return c, nil
}

// loopbackAddr reports whether the listen address binds only a
// loopback interface.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// run starts the server and blocks until a shutdown signal (or a send
// on stop, used by tests). If ready is non-nil the actual listen
// address is sent once the listener is bound — tests pass ":0".
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	srv := serve.New(serve.Options{
		APIKeys:       c.apiKeys,
		RatePerSecond: c.rate,
		Burst:         c.burst,
		MaxBodyBytes:  c.maxBody,
		BatchTimeout:  c.batchTimeout,
		SoftDeadline:  c.softDeadline,
		Workers:       c.workers,
		Pool: serve.PoolOptions{
			MaxEngines:       c.maxEngines,
			MaxArtifactBytes: c.maxArtifact,
		},
	})
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fmt.Fprintln(stderr, "pwcetd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "pwcetd: listening on %s (pool: %d engines x %d artifact bytes)\n",
		ln.Addr(), c.maxEngines, c.maxArtifact)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(signals)

	select {
	case sig := <-signals:
		fmt.Fprintf(stdout, "pwcetd: %v, draining\n", sig)
	case <-stop:
		fmt.Fprintln(stdout, "pwcetd: stop requested, draining")
	case err := <-serveErr:
		fmt.Fprintln(stderr, "pwcetd:", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "pwcetd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "pwcetd: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pwcetd: drained, exiting")
	return 0
}
