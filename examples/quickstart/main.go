// Quickstart: author a small program, estimate its probabilistic WCET
// under permanent cache faults, and compare the three architectures of
// the paper (no protection, Reliable Way, Shared Reliable Buffer).
package main

import (
	"fmt"
	"log"

	pwcet "repro"
)

func main() {
	// A toy control task: sensor filtering in a bounded loop, a mode
	// branch, and an actuation function called once per activation.
	b := pwcet.NewProgram("quickstart")
	b.Func("main").
		Ops(20). // startup: load calibration constants
		Loop(50, func(l *pwcet.Body) {
			l.Ops(8) // read sensor, update filter state
			l.If(func(alarm *pwcet.Body) {
				alarm.Ops(6) // clamp + flag
			}, func(normal *pwcet.Body) {
				normal.Ops(4)
			})
		}).
		Call("actuate").
		Ops(4)
	b.Func("actuate").
		Ops(30) // command computation + bus write
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Analyze with the paper's setup: 1KB 4-way cache with 16-byte
	// lines, pfail = 1e-4, pWCET read at exceedance 1e-15.
	results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
	if err != nil {
		log.Fatal(err)
	}

	none := results[pwcet.None]
	fmt.Printf("program: %s (%d bytes of code)\n", p.Name, p.CodeBytes())
	fmt.Printf("fault-free WCET: %d cycles\n", none.FaultFreeWCET)
	fmt.Printf("block failure probability (eq. 1): %.4g\n\n", none.Model.PBF)

	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB} {
		r := results[m]
		fmt.Printf("%-5s pWCET@1e-15 = %6d cycles  (%.2fx fault-free, gain vs none %.0f%%)\n",
			m.String()+":", r.PWCET,
			float64(r.PWCET)/float64(r.FaultFreeWCET),
			100*pwcet.Gain(none, r))
	}

	// The full exceedance curve (Figure 3 of the paper) is available
	// per mechanism; print a few points of the unprotected one.
	fmt.Println("\nunprotected exceedance curve (first points):")
	for i, pt := range none.ExceedanceCurve() {
		if i >= 5 {
			break
		}
		fmt.Printf("  P(WCET > %d cycles) = %.3g\n", pt.Value, pt.Prob)
	}
}
