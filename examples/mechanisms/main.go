// Mechanisms: a deeper look at how the Reliable Way and the Shared
// Reliable Buffer differ, reproducing the reasoning of Section III.A and
// the category analysis of Section IV.B on three purpose-built programs:
//
//   - spatialOnly streams through code larger than the cache: both
//     mechanisms fully mask the faults (category 1);
//   - mruTemporal runs a tight loop resident in one way per set: the RW
//     recovers the fault-free WCET, the SRB cannot preserve the hits
//     (category 2);
//   - deepTemporal needs several ways per set: neither mechanism
//     protects the non-MRU locality, so their gains converge
//     (category 3).
package main

import (
	"fmt"
	"log"

	pwcet "repro"
)

func build(name string, f func(*pwcet.Body)) *pwcet.Program {
	b := pwcet.NewProgram(name)
	f(b.Func("main"))
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	programs := []*pwcet.Program{
		build("spatialOnly", func(m *pwcet.Body) {
			// 1.6KB body streaming through a 1KB cache.
			m.Loop(8, func(l *pwcet.Body) { l.Ops(400) })
		}),
		build("mruTemporal", func(m *pwcet.Body) {
			// 160B hot loop: one block per set at most.
			m.Ops(100)
			m.Loop(60, func(l *pwcet.Body) { l.Ops(36) })
		}),
		build("deepTemporal", func(m *pwcet.Body) {
			// ~900B hot loop: 3-4 blocks per set, all ways needed.
			m.Ops(100)
			m.Loop(40, func(l *pwcet.Body) { l.Ops(220) })
		}),
	}

	fmt.Println("category analysis (pfail=1e-4, target=1e-15):")
	fmt.Println()
	for _, p := range programs {
		results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
		if err != nil {
			log.Fatal(err)
		}
		none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
		fmt.Printf("%-13s (%4d B code): fault-free %7d | rw %7d | srb %7d | none %7d\n",
			p.Name, p.CodeBytes(), none.FaultFreeWCET, rw.PWCET, srb.PWCET, none.PWCET)
		switch {
		case rw.PWCET == none.FaultFreeWCET && srb.PWCET == none.FaultFreeWCET:
			fmt.Println("              -> category 1: both mechanisms fully mask the faults")
		case rw.PWCET == none.FaultFreeWCET:
			fmt.Println("              -> category 2: RW recovers the fault-free WCET, SRB cannot")
		default:
			fmt.Printf("              -> category 3/4: residual degradation (gains rw %.0f%%, srb %.0f%%)\n",
				100*pwcet.Gain(none, rw), 100*pwcet.Gain(none, srb))
		}
		fmt.Println()
	}

	fmt.Println("hardware tradeoff (Section III.A): the RW hardens S whole cache blocks")
	fmt.Println("(one way), the SRB hardens a single block shared by all sets — the")
	fmt.Println("analysis quantifies what each buys for a given application.")
}
