// DVFS: find the lowest safe supply voltage for a real-time task.
//
// The paper's introduction motivates fault-aware WCET analysis with
// dynamic voltage scaling: lowering the voltage saves energy but makes
// SRAM cells fail. Combining the pWCET analysis with a
// voltage-to-pfail model answers the system-level question directly:
// *given a deadline, how far can the cache voltage drop* — and how much
// further do the RW/SRB mechanisms let it drop?
//
// For each mechanism the example lowers the voltage step by step until
// the pWCET at 1e-15 exceeds the deadline, and reports the floor.
//
// The whole exploration — up to 51 voltage steps x 3 mechanisms — runs
// on a single Engine: every step reuses the memoized fixpoints, WCET
// and FMMs, so each query costs only a probability re-weighting. This
// is the design-space-exploration workload the session API exists for.
package main

import (
	"fmt"
	"log"
	"os"

	pwcet "repro"
)

func main() {
	bench := "fir"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	vm := pwcet.DefaultVoltageModel()
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Deadline: 40% headroom over the fault-free WCET.
	base, err := eng.Analyze(pwcet.Query{Pfail: 0})
	if err != nil {
		log.Fatal(err)
	}
	deadline := base.FaultFreeWCET * 14 / 10
	fmt.Printf("task %s: fault-free WCET %d cycles, deadline %d cycles (40%% headroom)\n",
		bench, base.FaultFreeWCET, deadline)
	fmt.Printf("voltage model: pfail(0.5V)=%.0e, one decade per %.0fmV\n\n",
		vm.PfailAtVmin, vm.Decade*1000)

	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW} {
		floor := -1.0
		var atFloor int64
		// Sweep downward in 10mV steps from nominal 0.9V.
		for v := 0.90; v >= 0.40; v -= 0.01 {
			res, err := eng.Analyze(pwcet.Query{
				Pfail:     vm.Pfail(v),
				Mechanism: m,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.PWCET > deadline {
				break
			}
			floor = v
			atFloor = res.PWCET
		}
		if floor < 0 {
			fmt.Printf("%-5s cannot meet the deadline even at 0.90V\n", m.String()+":")
			continue
		}
		fmt.Printf("%-5s safe down to %.2fV (pfail %.2g, pWCET %d <= %d)\n",
			m.String()+":", floor, vm.Pfail(floor), atFloor, deadline)
	}

	fmt.Println("\nlower floors mean more energy savings; the difference between the")
	fmt.Println("mechanisms is the DVFS value of the extra reliable hardware.")
}
