// Cachesweep: choose a cache geometry under permanent faults.
//
// The paper fixes its evaluation cache to 1KB 4-way with 16-byte lines
// because "this configuration is the one leading to the smallest pWCET
// in [1]" (Section IV.A). This example reproduces that selection
// process: for one benchmark it sweeps associativity and line size at
// constant capacity and reports fault-free WCET and pWCET per
// mechanism — showing how the best fault-aware configuration can differ
// from the best fault-free one (higher associativity adds eviction
// headroom; longer lines raise the block failure probability pbf since
// K grows in equation 1).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pwcet "repro"
)

func main() {
	bench := "fir"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}

	type geom struct {
		ways, blockBytes int
	}
	geoms := []geom{
		{1, 16}, {2, 16}, {4, 16}, {8, 16}, // associativity sweep
		{4, 8}, {4, 32}, // line-size sweep at 4 ways
	}

	// One engine for the whole design-space exploration: artifacts are
	// memoized per cache geometry, so the three mechanisms of each
	// configuration share its fixpoints, WCET and FMM columns, and the
	// 18-query grid runs as one batch.
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	const capacity = 1024
	mechs := []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}
	var queries []pwcet.Query
	configs := make([]pwcet.CacheConfig, len(geoms))
	for i, g := range geoms {
		configs[i] = pwcet.CacheConfig{
			Sets:       capacity / (g.ways * g.blockBytes),
			Ways:       g.ways,
			BlockBytes: g.blockBytes,
			HitLatency: 1,
			MemLatency: 100,
		}
		for _, m := range mechs {
			queries = append(queries, pwcet.Query{Cache: configs[i], Pfail: 1e-4, Mechanism: m})
		}
	}
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Printf("%s at 1KB capacity, pfail=1e-4, target 1e-15 (cycles):\n\n", bench)
	fmt.Fprintln(tw, "ways\tline\tsets\tpbf\tfault-free\tpWCET none\tpWCET srb\tpWCET rw\t")
	for i, g := range geoms {
		none, rw, srb := results[3*i], results[3*i+1], results[3*i+2]
		fmt.Fprintf(tw, "%d\t%dB\t%d\t%.4f\t%d\t%d\t%d\t%d\t\n",
			g.ways, g.blockBytes, configs[i].Sets, none.Model.PBF,
			none.FaultFreeWCET, none.PWCET, srb.PWCET, rw.PWCET)
	}
	tw.Flush()

	fmt.Println("\nnotes: direct-mapped caches (1 way) have no RW story (the single way")
	fmt.Println("IS the reliable way, so rw = fault-free) but pay conflict misses even")
	fmt.Println("fault-free; longer lines amplify pbf (equation 1: K doubles) while")
	fmt.Println("capturing more spatial locality. The paper's 4-way/16B choice is the")
	fmt.Println("balance point found in [1].")
}
