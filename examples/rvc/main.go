// RVC: Monte-Carlo comparison against the related-work Reliable Victim
// Cache (Abella et al., HiPEAC 2011 — reference [19] of the paper).
//
// The RVC supplements faulty sets with a small fault-resilient victim
// store. Its authors evaluated it by simulation along a known path and
// provided no static analysis, so here it serves as a simulation-only
// baseline: sampled fault maps, random paths, observed execution times
// for no-protection / RVC / SRB / RW, next to the static pWCET bounds
// available for the three analyzable architectures.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	pwcet "repro"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/program"
)

func main() {
	bench := "crc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pwcet.PaperCache()
	const pfail = 2e-3 // elevated so sampled maps contain faults
	model, err := fault.NewModel(pfail, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Static bounds where the analysis exists.
	fmt.Printf("%s, pfail=%g (pbf=%.3g): static pWCET at 1e-15:\n", bench, pfail, model.PBF)
	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW} {
		res, err := pwcet.Analyze(p, pwcet.Options{Pfail: pfail, Mechanism: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %8d cycles\n", m.String()+":", res.PWCET)
	}
	fmt.Println("  rvc:   (no static analysis exists — simulation only, see [19])")

	// Monte-Carlo observation.
	const samples = 200
	rng := rand.New(rand.NewSource(7))
	maxT := map[string]int64{}
	sumT := map[string]float64{}
	for i := 0; i < samples; i++ {
		fm := model.SampleFaultMap(rng, cfg)
		tr, err := p.Trace(program.RandomChooser(rng), 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		run := func(name string, time int64) {
			if time > maxT[name] {
				maxT[name] = time
			}
			sumT[name] += float64(time)
		}
		none := cache.NewSim(cfg, cache.MechanismNone, fm)
		none.AccessAll(tr)
		run("none", none.Time)
		srb := cache.NewSim(cfg, cache.MechanismSRB, fm)
		srb.AccessAll(tr)
		run("srb", srb.Time)
		rw := cache.NewSim(cfg, cache.MechanismRW, fm)
		rw.AccessAll(tr)
		run("rw", rw.Time)
		rvc := cache.NewRVCSim(cfg, 4, fm)
		rvc.AccessAll(tr)
		run("rvc", rvc.Time)
	}

	fmt.Printf("\nobserved over %d fault maps (max / mean cycles):\n", samples)
	for _, name := range []string{"none", "srb", "rw", "rvc"} {
		fmt.Printf("  %-5s %8d / %.0f\n", name+":", maxT[name], sumT[name]/samples)
	}
	fmt.Println("\nthe RVC's 4 reliable entries compete well on observed behaviour, but")
	fmt.Println("only RW/SRB/none come with a safe static bound — the paper's point in")
	fmt.Println("Section V when comparing against [19].")
}
