// Validate: audit the static analysis against a cycle-accurate
// simulation. Fault maps are sampled from the paper's fault model
// (equation 1 at block granularity), the program is executed on random
// paths through a concrete LRU cache with the sampled blocks disabled,
// and every run is checked against the analytical bound
// "fault-free WCET + sum of per-set FMM penalties".
//
// An elevated pfail is used so that sampled maps actually contain faults
// (at the paper's 1e-4, a 64-block cache is fault-free ~44% of the time
// and nearly always has at most a couple of faulty blocks).
package main

import (
	"fmt"
	"log"
	"os"

	pwcet "repro"
)

func main() {
	bench := "insertsort"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB} {
		res, err := pwcet.Analyze(p, pwcet.Options{
			Pfail:     2e-3, // pbf ~ 22%: most sampled maps contain faults
			Mechanism: m,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pwcet.Validate(p, res, 300, 2, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s / %s: %d fault maps x %d paths\n", bench, m, rep.Samples, rep.PathsPerSample)
		fmt.Printf("  fault-free WCET %d, max simulated %d, max analytical bound %d\n",
			res.FaultFreeWCET, rep.MaxTime, rep.MaxBound)
		fmt.Printf("  bound violations: %d, CCDF violations: %d, worst sim/bound ratio: %.3f\n",
			rep.BoundViolations, rep.CCDFViolations, rep.WorstGapRatio)
		if rep.BoundViolations != 0 || rep.CCDFViolations != 0 {
			fmt.Println("  !! soundness violation — please file a bug")
			os.Exit(1)
		}
		fmt.Println("  sound: no simulation exceeded its bound")
		fmt.Println()
	}
}
