// Datacache: joint instruction + data cache pWCET analysis — the
// paper's "transpose the hardware and corresponding analyses to data
// caches" future-work direction, implemented.
//
// The example authors a filter kernel with explicit scalar loads and
// stores, attaches a data cache beside the instruction cache (same
// pfail, independent fault population), and compares the three
// architectures when *both* caches suffer permanent faults. The per-set
// penalty distributions of the two caches convolve because their fault
// locations are independent.
package main

import (
	"fmt"
	"log"

	pwcet "repro"
)

func main() {
	// An IIR filter section: state loads, coefficient loads, state and
	// output stores, all scalars at fixed addresses (the analyzable
	// subset; unknown-address accesses would classify always-miss).
	const (
		stateBase = 0x8000
		coefBase  = 0x8100
		outBase   = 0x8200
	)
	b := pwcet.NewProgram("iir")
	b.Func("main").
		Ops(12).
		Loop(32, func(l *pwcet.Body) {
			l.Load(stateBase). // x[n-1]
						Load(stateBase + 4). // x[n-2]
						Load(coefBase).      // b0
						Load(coefBase + 4).  // b1
						Ops(6).              // multiply-accumulate
						Store(stateBase).    // shift state
						Store(outBase)       // y[n]
		}).
		Ops(4)
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	icache := pwcet.PaperCache()
	dcache := pwcet.CacheConfig{
		Sets: 16, Ways: 2, BlockBytes: 16, HitLatency: 1, MemLatency: 100,
	}

	fmt.Printf("IIR kernel: %dB code, I-cache 1KB/4-way, D-cache 512B/2-way, pfail=1e-3\n\n", p.CodeBytes())
	for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.SRB, pwcet.RW} {
		instrOnly, err := pwcet.Analyze(p, pwcet.Options{Cache: icache, Pfail: 1e-3, Mechanism: m})
		if err != nil {
			log.Fatal(err)
		}
		joint, err := pwcet.Analyze(p, pwcet.Options{
			Cache: icache, Pfail: 1e-3, Mechanism: m, DataCache: &dcache,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s I-only: WCET %6d, pWCET %6d | I+D: WCET %6d, pWCET %6d\n",
			m.String()+":", instrOnly.FaultFreeWCET, instrOnly.PWCET,
			joint.FaultFreeWCET, joint.PWCET)
	}

	fmt.Println("\nthe joint analysis applies the mechanism to both caches; the data")
	fmt.Println("working set here is tiny (3 blocks), so data faults matter mostly")
	fmt.Println("through whole-set failures — exactly the case RW and SRB remove.")
}
