// Transientsweep: combined permanent + transient (SEU) exceedance
// curves across the fault-model grid.
//
// The paper's model covers permanent faults fixed at boot; this example
// layers the per-access transient-upset extension on top and sweeps
// both axes at once — the per-bit permanent failure probability pfail
// and the SEU rate lambda (upsets per cycle per vulnerable access) —
// for every mitigation mechanism. Each (pfail, lambda) point is a
// fault.Combined scenario: the permanent penalty distribution is
// convolved with a sound binomial bound on the extra misses that upsets
// inject into hit-classified accesses during one run.
//
// The sweep runs as one Engine batch: every grid point shares the cache
// fixpoints, the IPET system, the per-set FMM ILPs of the permanent
// stage and the per-set hit-bound ILPs of the transient stage — only
// the probability weighting and the convolutions differ per point.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pwcet "repro"
)

func main() {
	bench := "crc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// pfail spans the resilience roadmap (45nm to low-voltage 12nm);
	// lambda spans negligible space radiation to harsh avionics rates.
	pfails := []float64{0, 1e-6, 1e-4, 1e-3}
	lambdas := []float64{0, 1e-12, 1e-10, 1e-9}
	mechs := []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}

	var queries []pwcet.Query
	for _, pf := range pfails {
		for _, la := range lambdas {
			for _, m := range mechs {
				queries = append(queries, pwcet.Query{
					Scenario:  pwcet.Combined{Pfail: pf, Lambda: la},
					Mechanism: m,
				})
			}
		}
	}
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Printf("combined pWCET at 1e-15 for %s (cycles):\n\n", bench)
	fmt.Fprintln(tw, "pfail\tlambda\tnone\trw\tsrb\tgain srb\t")
	for i := 0; i < len(results); i += len(mechs) {
		none, rw, srb := results[i], results[i+1], results[i+2]
		pf, la := pwcet.Components(none.Scenario)
		fmt.Fprintf(tw, "%.2g\t%.2g\t%d\t%d\t%d\t%.0f%%\t\n",
			pf, la, none.PWCET, rw.PWCET, srb.PWCET,
			100*pwcet.Gain(none, srb))
	}
	tw.Flush()

	// One full exceedance curve: the harshest grid point, unprotected.
	worst := results[len(results)-3]
	pf, la := pwcet.Components(worst.Scenario)
	tm := worst.Transient
	fmt.Printf("\nexceedance curve at pfail=%.2g lambda=%.2g (none), window=%d cycles, per-access upset p=%.3g:\n",
		pf, la, tm.Window, tm.PMiss)
	for _, q := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
		fmt.Printf("  P(exceed) <= %-6.0e  at %d cycles\n", q, worst.PWCETAt(q))
	}

	fmt.Println("\nreading: the lambda=0 row reproduces the pure permanent analysis and")
	fmt.Println("the pfail=0 rows the pure transient one; in between, permanent faults")
	fmt.Println("dominate the deep tail (they persist for the whole run) while the")
	fmt.Println("transient stage adds a rate-driven penalty that no boot-time")
	fmt.Println("mitigation mechanism can mask.")
}
