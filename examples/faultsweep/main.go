// Faultsweep: sensitivity of the pWCET to the per-bit failure
// probability, for one benchmark and all three architectures.
//
// The paper fixes pfail = 1e-4 ("representative of the highest assumed
// probability of cell failure in related work"); the resilience roadmap
// it cites spans 6.1e-13 (45nm) to 2.6e-4 (12nm), and low-voltage
// operation reaches 1e-3. This example sweeps that whole range and shows
// where each mechanism stops masking the faults — the motivation for the
// cost/pWCET tradeoff of Section III.
//
// The sweep runs as one Engine batch: the 8x3 grid of queries shares
// the cache fixpoints, the IPET system and every per-set FMM ILP solve;
// each pfail point only re-weights the probabilities and convolves.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pwcet "repro"
)

func main() {
	bench := "crc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := pwcet.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	pfails := []float64{6.1e-13, 1e-9, 1e-7, 1e-6, 1e-5, 1e-4, 2.6e-4, 1e-3}
	mechs := []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB}
	var queries []pwcet.Query
	for _, pf := range pfails {
		for _, m := range mechs {
			queries = append(queries, pwcet.Query{Pfail: pf, Mechanism: m})
		}
	}
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Printf("pWCET at 1e-15 for %s across pfail (cycles):\n\n", bench)
	fmt.Fprintln(tw, "pfail\tpbf\tfault-free\tnone\trw\tsrb\tgain rw\tgain srb\t")
	for i, pf := range pfails {
		none, rw, srb := results[3*i], results[3*i+1], results[3*i+2]
		fmt.Fprintf(tw, "%.2g\t%.3g\t%d\t%d\t%d\t%d\t%.0f%%\t%.0f%%\t\n",
			pf, none.Model.PBF, none.FaultFreeWCET,
			none.PWCET, rw.PWCET, srb.PWCET,
			100*pwcet.Gain(none, rw), 100*pwcet.Gain(none, srb))
	}
	tw.Flush()

	fmt.Println("\nreading: at roadmap-era pfail (<=1e-7) faults are invisible at 1e-15;")
	fmt.Println("as pfail approaches 1e-3, whole-set failures dominate the unprotected")
	fmt.Println("pWCET and the reliability hardware recovers most of the loss.")
}
