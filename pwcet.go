// Package pwcet is the public API of the reproduction of "Probabilistic
// WCET estimation in presence of hardware for mitigating the impact of
// permanent faults" (Hardy, Puaut, Sazeides — DATE 2016).
//
// It estimates probabilistic worst-case execution times (pWCET) of
// programs running on a processor whose set-associative LRU instruction
// cache suffers permanent SRAM faults, for three architectures:
//
//   - no protection: faulty blocks are disabled (baseline of Hardy &
//     Puaut, RTS 2015);
//   - RW, the Reliable Way: one fault-resilient way per set;
//   - SRB, the Shared Reliable Buffer: one fault-resilient block-sized
//     buffer shared by all sets, used when a whole set is faulty.
//
// # Quick start
//
//	b := pwcet.NewProgram("example")
//	b.Func("main").Loop(100, func(l *pwcet.Body) { l.Ops(12) })
//	p, err := b.Build()
//	// handle err
//	res, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.RW})
//	// handle err
//	fmt.Println(res.FaultFreeWCET, res.PWCET)
//
// The paper's 25-benchmark Mälardalen evaluation is available through
// Benchmarks and Benchmark; cmd/paperfigs regenerates every figure.
//
// # Parallelism and determinism
//
// The per-set stages of an analysis — the fault-miss-map ILP solves
// and the penalty convolution — are independent across cache sets and
// run on a bounded worker pool controlled by Options.Workers (0 uses
// GOMAXPROCS, 1 forces fully sequential execution; cmd/pwcet exposes
// it as -workers). The results are byte-identical for every worker
// count: each set's ILPs are solved on a private simplex restored to
// the same pristine basis, and the per-set distributions are reduced
// by a pairwise tree whose shape depends only on the set count, so
// neither goroutine scheduling nor pool size can influence any FMM
// entry, distribution atom, or pWCET. Parallelism changes wall-clock
// time, never results.
package pwcet

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ipet"
	"repro/internal/malardalen"
	"repro/internal/program"
	"repro/internal/sim"
)

// Re-exported types: the analysis surface.
type (
	// CacheConfig describes a set-associative instruction cache.
	CacheConfig = cache.Config
	// Mechanism selects the reliability hardware (None, RW, SRB).
	Mechanism = cache.Mechanism
	// FaultMap records which cache blocks are permanently faulty.
	FaultMap = cache.FaultMap
	// Options configures an analysis (cache, pfail, mechanism, target).
	Options = core.Options
	// Result is the outcome of one pWCET analysis.
	Result = core.Result
	// Dist is a discrete probability distribution over penalties.
	Dist = dist.Dist
	// Point is one (value, probability) atom of a distribution.
	Point = dist.Point
	// FMM is the Fault Miss Map: FMM[set][faultyBlocks] bounds the
	// fault-induced misses.
	FMM = ipet.FMM
	// FaultModel carries pfail and the derived block failure
	// probability of equation 1.
	FaultModel = fault.Model
	// VoltageModel maps DVFS supply voltage to per-bit failure
	// probability (calibrated against the paper's low-voltage citation).
	VoltageModel = fault.VoltageModel
)

// DefaultVoltageModel returns the low-voltage SRAM failure calibration
// (pfail = 1e-3 at 0.5V, per the paper's citation of Zhou et al.).
func DefaultVoltageModel() VoltageModel { return fault.DefaultVoltageModel() }

// Re-exported types: program authoring.
type (
	// Builder assembles a program from structured functions.
	Builder = program.Builder
	// Body is a sequence of statements (Ops/Loop/If/Call/Switch).
	Body = program.Body
	// Program is an assembled, analyzable program.
	Program = program.Program
)

// Reliability mechanisms (Section III.A of the paper).
const (
	// None: faulty blocks are disabled, nothing masks them.
	None = cache.MechanismNone
	// RW: the Reliable Way.
	RW = cache.MechanismRW
	// SRB: the Shared Reliable Buffer.
	SRB = cache.MechanismSRB
)

// DefaultTargetExceedance is the paper's 1e-15 target probability.
const DefaultTargetExceedance = core.DefaultTargetExceedance

// PaperCache returns the evaluation cache of Section IV.A: 1KB, 4 ways,
// 16-byte lines, 1-cycle hit, 100-cycle memory.
func PaperCache() CacheConfig { return cache.PaperConfig() }

// NewProgram starts building a program with the given name.
func NewProgram(name string) *Builder { return program.New(name) }

// Analyze runs the pWCET analysis of a program under the given options.
func Analyze(p *Program, opt Options) (*Result, error) { return core.Analyze(p, opt) }

// AnalyzeAll analyzes a program under all three architectures (none, RW,
// SRB) with otherwise identical options.
func AnalyzeAll(p *Program, opt Options) (map[Mechanism]*Result, error) {
	return core.AnalyzeAll(p, opt)
}

// Gain returns the relative pWCET reduction of protected vs baseline.
func Gain(baseline, protected *Result) float64 { return core.Gain(baseline, protected) }

// Benchmarks lists the names of the 25-benchmark Mälardalen-like suite.
func Benchmarks() []string { return malardalen.Names() }

// Benchmark builds the named suite benchmark.
func Benchmark(name string) (*Program, error) { return malardalen.Get(name) }

// PBF computes the block failure probability of equation 1.
func PBF(pfail float64, blockBits int) float64 { return fault.PBF(pfail, blockBits) }

// ParseMechanism converts "none", "rw" or "srb" to a Mechanism.
func ParseMechanism(s string) (Mechanism, error) { return cache.ParseMechanism(s) }

// ValidationReport summarizes a Monte-Carlo soundness check.
type ValidationReport = sim.Report

// Validate samples fault maps from the result's fault model, simulates
// the program on random paths with a cycle-accurate cache model, and
// checks that no simulation exceeds its analytical bound. A sound
// analysis yields zero BoundViolations and zero CCDFViolations.
func Validate(p *Program, res *Result, samples, pathsPerSample int, seed int64) (*ValidationReport, error) {
	return sim.Validate(p, res, samples, pathsPerSample, seed)
}
