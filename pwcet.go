// Package pwcet is the public API of the reproduction of "Probabilistic
// WCET estimation in presence of hardware for mitigating the impact of
// permanent faults" (Hardy, Puaut, Sazeides — DATE 2016).
//
// It estimates probabilistic worst-case execution times (pWCET) of
// programs running on a processor whose set-associative LRU instruction
// cache suffers permanent SRAM faults, for three architectures:
//
//   - no protection: faulty blocks are disabled (baseline of Hardy &
//     Puaut, RTS 2015);
//   - RW, the Reliable Way: one fault-resilient way per set;
//   - SRB, the Shared Reliable Buffer: one fault-resilient block-sized
//     buffer shared by all sets, used when a whole set is faulty.
//
// # Quick start
//
// The primary entry point is the Engine: a reusable analysis session
// for one program that memoizes the expensive pipeline stages (CFG and
// IPET system construction, the Must/May/Persistence fixpoints, the
// fault-free WCET, the per-set fault-miss-map ILP solves) across
// queries, so sweeps over pfail, mechanism, target or cache geometry
// pay for them once:
//
//	b := pwcet.NewProgram("example")
//	b.Func("main").Loop(100, func(l *pwcet.Body) { l.Ops(12) })
//	p, err := b.Build()
//	// handle err
//	eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{})
//	// handle err
//	res, err := eng.Analyze(pwcet.Query{Pfail: 1e-4, Mechanism: pwcet.RW})
//	// handle err
//	fmt.Println(res.FaultFreeWCET, res.PWCET)
//
// Engine.AnalyzeBatch evaluates many queries at once over a worker
// pool with shared-work deduplication; Engine.AnalyzeBatchStream and
// Engine.AnalyzeBatchChan stream indexed results as they complete. For
// a single configuration, the one-shot Analyze and AnalyzeAll helpers
// wrap a throwaway Engine.
//
// The paper's 25-benchmark Mälardalen evaluation is available through
// Benchmarks and Benchmark; cmd/paperfigs regenerates every figure and
// cmd/pwcet -batch runs JSON-specified sweeps.
//
// # Fault models
//
// The fault environment of an analysis is a Scenario
// (Options.Scenario / Query.Scenario), one of:
//
//   - Permanent{Pfail}: the paper's model — every SRAM cell fails at
//     boot with probability Pfail and stays failed. A nil Scenario
//     defaults to Permanent at the legacy Pfail field, byte-identical
//     to the historical pipeline.
//   - Transient{Lambda}: per-access SEUs — soft errors strike each
//     cache line as an independent Poisson process with rate Lambda
//     (upsets per line per cycle), invalidating the line; an access
//     that would have hit pays an extra miss when an upset struck its
//     line since the previous access.
//   - Combined{Pfail, Lambda}: both at once. The permanent and
//     transient fault populations are independent, so their penalty
//     distributions convolve; Combined{Pfail, 0} is equivalent to
//     Permanent{Pfail} and Combined{0, Lambda} to Transient{Lambda}.
//
// The transient analysis is a sound exceedance upper bound, not an
// exact distribution: each set's extra-miss count is bounded by a
// binomial — at most N_s vulnerable (hit-classified) accesses from a
// per-set ILP, each upset independently with probability
// 1-exp(-Lambda*D) for a window bound D on the run duration — which
// stochastically dominates the true count. Reliability mechanisms
// (RW, SRB) shield only permanent faults, so a pure Transient
// scenario yields the same result for every Mechanism, and
// Result.FMM is nil (there is no permanent component to map).
// Transient and Combined scenarios are not combinable with PreciseSRB
// or DataCache.
//
// # Parallelism and determinism
//
// The per-set stages of an analysis — the fault-miss-map ILP solves
// and the penalty convolution — are independent across cache sets and
// run on a bounded worker pool controlled by EngineOptions.Workers /
// Options.Workers (0 uses GOMAXPROCS, 1 forces fully sequential
// execution; cmd/pwcet exposes it as -workers). Engine batches
// additionally schedule whole queries over the same pool. The results
// are byte-identical for every worker count and batch order: each
// set's ILPs are solved on a private simplex restored to the same
// pristine basis, the per-set distributions are reduced by a pairwise
// tree whose shape depends only on the set count, and every memoized
// Engine artifact is a pure function of its key, so neither goroutine
// scheduling nor pool size nor query interleaving can influence any
// FMM entry, distribution atom, or pWCET. Parallelism changes
// wall-clock time, never results.
//
// The optimized hot paths keep differential escape hatches:
// Options.Reference re-runs an analysis on the retained dense
// simplex and map-based abstract domain, and Options.ExactConvolve
// routes the penalty reduction through the exact convolution fold
// (no shared-subtree reuse, no in-tree coarsening) — both exist to
// validate the fast paths, which the differential suites pin
// byte-identical (exactly, or whenever the support cap does not
// bind, respectively).
//
// # Bounded memory and serving
//
// By default an Engine retains every memoized artifact for its
// lifetime. Long-lived processes sweeping many cache geometries set
// EngineOptions.MaxArtifactBytes to bound the resident estimated
// bytes: artifacts are tracked on an LRU list and cold ones are
// evicted once the budget is exceeded. Because every artifact is a
// pure function of its key, eviction never changes results — a
// re-query recomputes byte-identical values and only costs time.
// Engine.MemStats reports residency and hit/miss/eviction counters.
//
// cmd/pwcetd builds on this: an HTTP service streaming batch results
// as NDJSON (byte-identical to cmd/pwcet -batch -ndjson) from a
// bounded pool of per-program engines, with API-key auth, rate
// limits, JSON metrics and graceful drain; internal/serve holds the
// testable handler layer.
//
// # Robustness
//
// Every analysis entry point has a context-aware twin —
// Engine.AnalyzeContext, Engine.AnalyzeBatchContext and
// Engine.AnalyzeBatchStreamContext — that observes cancellation and
// deadlines at every expensive boundary (per-set LP solves, simplex
// pivot batches, convolution-tree merge nodes). A canceled query
// returns ctx.Err() promptly, unwinds its worker goroutines and
// unpins its LRU working set; memoized artifacts computed before the
// cancellation stay valid, so the engine remains fully usable. The
// context-free signatures are thin context.Background() wrappers and
// behave exactly as before.
//
// Queries may also set Query.SoftDeadline, a per-query latency
// budget: when an attempt overruns it, the engine retries with a
// geometrically tighter penalty-support cap (a coarser but still
// sound analysis — capping only redistributes probability mass
// upward) and flags the outcome Result.Degraded instead of failing.
// Because the final attempt runs without a deadline, a soft deadline
// never turns into an error; the degraded pWCET is always an upper
// bound on the exact one.
//
// A panic inside an analysis (a bug, a corrupted artifact, an
// instrumentation Hook failure) is recovered into a *PanicError
// carrying the panic value and stack, and the engine is poisoned:
// every subsequent query fails fast with ErrPoisoned instead of
// computing on top of unknown shared state. Poisoned engines are
// evicted from serving pools (internal/serve) so one bad engine
// cannot take down cmd/pwcetd.
//
// For fault-drill testing there is internal/faultpoint, a registry of
// named deterministic injection sites (slow solves, spurious pivot
// limits, forced evictions, mid-stream disconnects) that compiles to
// no-ops unless the pwcetfault build tag is set, plus cmd/soak, a
// chaos harness that hammers a live pwcetd while asserting
// byte-identity against in-process runs and flat memory residency.
package pwcet

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ipet"
	"repro/internal/malardalen"
	"repro/internal/program"
	"repro/internal/sim"
)

// Re-exported types: the analysis surface.
type (
	// Engine is a reusable analysis session for one program: it
	// memoizes the program- and cache-level artifacts so repeated
	// queries only pay for the cheap probability weighting. Safe for
	// concurrent use; results are byte-identical to one-shot Analyze.
	Engine = core.Engine
	// EngineOptions configures an Engine (worker pool, artifact memory
	// budget, instrumentation hook).
	EngineOptions = core.EngineOptions
	// MemStats reports an Engine's memoized-artifact residency and
	// lookup counters; see Engine.MemStats.
	MemStats = core.MemStats
	// Query selects one configuration (cache, pfail, mechanism, target)
	// to analyze against an Engine's program.
	Query = core.Query
	// BatchResult is one indexed outcome of a streaming batch.
	BatchResult = core.BatchResult
	// Artifact identifies a class of memoized Engine computation.
	Artifact = core.Artifact
	// ArtifactEvent describes one Engine artifact computation; see
	// EngineOptions.Hook.
	ArtifactEvent = core.ArtifactEvent
	// CacheConfig describes a set-associative instruction cache.
	CacheConfig = cache.Config
	// Mechanism selects the reliability hardware (None, RW, SRB).
	Mechanism = cache.Mechanism
	// FaultMap records which cache blocks are permanently faulty.
	FaultMap = cache.FaultMap
	// Options configures an analysis (cache, pfail, mechanism, target).
	Options = core.Options
	// Result is the outcome of one pWCET analysis.
	Result = core.Result
	// PanicError wraps a panic recovered inside an analysis; the
	// offending Engine is poisoned (see ErrPoisoned).
	PanicError = core.PanicError
	// Dist is a discrete probability distribution over penalties.
	Dist = dist.Dist
	// Point is one (value, probability) atom of a distribution.
	Point = dist.Point
	// CoarsenStrategy selects how over-cap penalty supports are
	// coarsened (Options.Coarsen / Query.Coarsen). Both strategies are
	// sound exceedance upper bounds; see CoarsenLeastError and
	// CoarsenKeepHeaviest.
	CoarsenStrategy = dist.CoarsenStrategy
	// FMM is the Fault Miss Map: FMM[set][faultyBlocks] bounds the
	// fault-induced misses.
	FMM = ipet.FMM
	// FaultModel carries pfail and the derived block failure
	// probability of equation 1.
	FaultModel = fault.Model
	// VoltageModel maps DVFS supply voltage to per-bit failure
	// probability (calibrated against the paper's low-voltage citation).
	VoltageModel = fault.VoltageModel
	// Scenario is a composable description of the fault environment
	// (Options.Scenario / Query.Scenario); see the "Fault models"
	// section of the package documentation.
	Scenario = fault.Scenario
	// Permanent is the paper's fault scenario: SRAM cells fail at boot
	// with probability Pfail and stay failed (equations 1-3).
	Permanent = fault.Permanent
	// Transient is the SEU fault scenario: soft errors strike cache
	// lines as independent Poisson processes with rate Lambda per line
	// per cycle, each invalidating the struck line.
	Transient = fault.Transient
	// Combined composes a permanently degraded cache (Pfail) with soft
	// errors (Lambda); the independent penalty distributions convolve.
	Combined = fault.Combined
	// ScenarioKind identifies a scenario family (permanent, transient,
	// combined).
	ScenarioKind = fault.Kind
	// TransientModel carries the derived per-access SEU parameters of
	// one analysis (Result.Transient): the rate, the inter-access
	// window bound and the per-access extra-miss probability.
	TransientModel = fault.TransientModel
)

// ErrPoisoned is returned by every query against an Engine that
// recovered a panic earlier; see the Robustness section of the
// package documentation.
var ErrPoisoned = core.ErrPoisoned

// Scenario kinds, the values ScenarioKind takes.
const (
	ScenarioPermanent = fault.KindPermanent
	ScenarioTransient = fault.KindTransient
	ScenarioCombined  = fault.KindCombined
)

// ParseScenarioKind converts "permanent", "transient" or "combined" to
// a ScenarioKind (the spellings ScenarioKind.String returns, also used
// by the batch-spec "fault_model" field and the -fault-model CLI flag).
func ParseScenarioKind(s string) (ScenarioKind, error) { return fault.ParseKind(s) }

// Components splits any scenario into its permanent and transient
// parameters: the per-bit failure probability (0 for pure Transient)
// and the SEU rate lambda (0 for pure Permanent).
func Components(s Scenario) (pfail, lambda float64) { return fault.Components(s) }

// DefaultVoltageModel returns the low-voltage SRAM failure calibration
// (pfail = 1e-3 at 0.5V, per the paper's citation of Zhou et al.).
func DefaultVoltageModel() VoltageModel { return fault.DefaultVoltageModel() }

// Re-exported types: program authoring.
type (
	// Builder assembles a program from structured functions.
	Builder = program.Builder
	// Body is a sequence of statements (Ops/Loop/If/Call/Switch).
	Body = program.Body
	// Program is an assembled, analyzable program.
	Program = program.Program
)

// Reliability mechanisms (Section III.A of the paper).
const (
	// None: faulty blocks are disabled, nothing masks them.
	None = cache.MechanismNone
	// RW: the Reliable Way.
	RW = cache.MechanismRW
	// SRB: the Shared Reliable Buffer.
	SRB = cache.MechanismSRB
)

// Coarsening strategies for the convolution support cap. The default
// CoarsenLeastError merges the adjacent atom pair adding the least
// exceedance-curve error, which keeps the deep-tail quantiles (the
// 1e-9..1e-15 certification targets) within a small factor of the
// uncapped-exact values even when the cap binds hard; the legacy
// CoarsenKeepHeaviest keeps the heaviest atoms and reproduces the
// pre-tail-faithful results. When the cap never binds the strategies
// are byte-identical (the cap is a no-op).
const (
	CoarsenLeastError   = dist.CoarsenLeastError
	CoarsenKeepHeaviest = dist.CoarsenKeepHeaviest
)

// ParseCoarsenStrategy converts "least-error" or "keep-heaviest" to a
// CoarsenStrategy (the spellings CoarsenStrategy.String returns).
func ParseCoarsenStrategy(s string) (CoarsenStrategy, error) {
	return dist.ParseCoarsenStrategy(s)
}

// DefaultTargetExceedance is the paper's 1e-15 target probability.
const DefaultTargetExceedance = core.DefaultTargetExceedance

// PaperCache returns the evaluation cache of Section IV.A: 1KB, 4 ways,
// 16-byte lines, 1-cycle hit, 100-cycle memory.
func PaperCache() CacheConfig { return cache.PaperConfig() }

// NewProgram starts building a program with the given name.
func NewProgram(name string) *Builder { return program.New(name) }

// NewEngine builds a reusable analysis session for the program. The
// session verifies the program and constructs the IPET system once;
// every further artifact (cache fixpoints, fault-free WCET, per-set
// FMMs) is computed lazily on first use and shared by all subsequent
// Analyze and AnalyzeBatch queries.
func NewEngine(p *Program, opt EngineOptions) (*Engine, error) {
	return core.NewEngine(p, opt)
}

// Analyze runs the pWCET analysis of a program under the given options.
// It is a thin wrapper over a throwaway Engine; callers analyzing the
// same program more than once should hold an Engine instead.
func Analyze(p *Program, opt Options) (*Result, error) {
	e, err := core.NewEngine(p, EngineOptions{
		Workers:       opt.Workers,
		Reference:     opt.Reference,
		ExactConvolve: opt.ExactConvolve,
	})
	if err != nil {
		return nil, err
	}
	return e.Analyze(core.Query{
		Cache:            opt.Cache,
		Pfail:            opt.Pfail,
		Scenario:         opt.Scenario,
		Mechanism:        opt.Mechanism,
		TargetExceedance: opt.TargetExceedance,
		MaxSupport:       opt.MaxSupport,
		Coarsen:          opt.Coarsen,
		PreciseSRB:       opt.PreciseSRB,
		DataCache:        opt.DataCache,
	})
}

// AnalyzeAll analyzes a program under all three architectures (none, RW,
// SRB) with otherwise identical options, as one shared-work Engine
// batch.
func AnalyzeAll(p *Program, opt Options) (map[Mechanism]*Result, error) {
	return core.AnalyzeAll(p, opt)
}

// Gain returns the relative pWCET reduction of protected vs baseline.
func Gain(baseline, protected *Result) float64 { return core.Gain(baseline, protected) }

// Benchmarks lists the names of the 25-benchmark Mälardalen-like suite.
func Benchmarks() []string { return malardalen.Names() }

// Benchmark builds the named suite benchmark.
func Benchmark(name string) (*Program, error) { return malardalen.Get(name) }

// PBF computes the block failure probability of equation 1.
func PBF(pfail float64, blockBits int) float64 { return fault.PBF(pfail, blockBits) }

// ParseMechanism converts "none", "rw" or "srb" to a Mechanism.
func ParseMechanism(s string) (Mechanism, error) { return cache.ParseMechanism(s) }

// ValidationReport summarizes a Monte-Carlo soundness check.
type ValidationReport = sim.Report

// Validate samples fault maps from the result's fault model, simulates
// the program on random paths with a cycle-accurate cache model, and
// checks that no simulation exceeds its analytical bound. A sound
// analysis yields zero BoundViolations and zero CCDFViolations.
func Validate(p *Program, res *Result, samples, pathsPerSample int, seed int64) (*ValidationReport, error) {
	return sim.Validate(p, res, samples, pathsPerSample, seed)
}
