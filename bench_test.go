// Benchmark harness regenerating every data figure of the paper's
// evaluation (Section IV). Each BenchmarkFigN measures the cost of
// recomputing that figure's data and reports the headline numbers as
// custom metrics, so `go test -bench=. -benchmem` both exercises and
// documents the reproduction:
//
//	BenchmarkFig1  — Figure 1: FMM example + penalty convolution
//	BenchmarkFig3  — Figure 3: adpcm exceedance curves (3 mechanisms)
//	BenchmarkFig4  — Figure 4: 25-benchmark normalized pWCET sweep,
//	                 reporting the average/minimum gains of Section IV.B
//
// The remaining benchmarks profile the pipeline stages (cache analysis,
// IPET, FMM, convolution, simulation) on representative inputs.
package pwcet_test

import (
	"fmt"
	"math/rand"
	"testing"

	pwcet "repro"
	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ipet"
	"repro/internal/malardalen"
	"repro/internal/program"
)

// BenchmarkFig1 regenerates Figure 1: the per-set penalty distributions
// of the paper's illustrative 4-set FMM and their convolution.
func BenchmarkFig1(b *testing.B) {
	fmm := [][]int64{{0, 10, 130}, {0, 14, 164}, {0, 13, 193}, {0, 20, 240}}
	pbf := fault.PBF(1e-4, 128)
	pwf := fault.PWF(2, pbf)
	var support int
	for i := 0; i < b.N; i++ {
		total := dist.Degenerate(0)
		for _, row := range fmm {
			pts := make([]dist.Point, len(row))
			for f, v := range row {
				pts[f] = dist.Point{Value: v, Prob: pwf[f]}
			}
			d, err := dist.New(pts)
			if err != nil {
				b.Fatal(err)
			}
			total = total.Convolve(d)
		}
		support = total.Len()
	}
	b.ReportMetric(float64(support), "support-points")
}

// BenchmarkFig3 regenerates Figure 3: the exceedance curves of adpcm
// under no protection, SRB and RW at pfail = 1e-4.
func BenchmarkFig3(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	var none, rw, srb *core.Result
	for i := 0; i < b.N; i++ {
		results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
		if err != nil {
			b.Fatal(err)
		}
		none, rw, srb = results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
		// The curves themselves are part of the figure.
		_ = none.ExceedanceCurve()
		_ = rw.ExceedanceCurve()
		_ = srb.ExceedanceCurve()
	}
	b.ReportMetric(float64(none.PWCET), "pwcet-none")
	b.ReportMetric(float64(srb.PWCET), "pwcet-srb")
	b.ReportMetric(float64(rw.PWCET), "pwcet-rw")
	b.ReportMetric(float64(none.FaultFreeWCET), "wcet-fault-free")
}

// BenchmarkFig4 regenerates Figure 4 and the Section IV.B gain summary:
// pWCET at 1e-15 for all 25 benchmarks under the three architectures.
// Paper reference points: average gain RW 48%, SRB 40%; minimum gain RW
// 26% (fft), SRB 25% (ud).
func BenchmarkFig4(b *testing.B) {
	names := pwcet.Benchmarks()
	var avgRW, avgSRB, minRW, minSRB float64
	for i := 0; i < b.N; i++ {
		var sumRW, sumSRB float64
		minRW, minSRB = 1, 1
		for _, name := range names {
			p := malardalen.MustGet(name)
			results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
			if err != nil {
				b.Fatal(err)
			}
			gRW := pwcet.Gain(results[pwcet.None], results[pwcet.RW])
			gSRB := pwcet.Gain(results[pwcet.None], results[pwcet.SRB])
			sumRW += gRW
			sumSRB += gSRB
			if gRW < minRW {
				minRW = gRW
			}
			if gSRB < minSRB {
				minSRB = gSRB
			}
		}
		avgRW = sumRW / float64(len(names))
		avgSRB = sumSRB / float64(len(names))
	}
	b.ReportMetric(100*avgRW, "avg-gain-rw-%")
	b.ReportMetric(100*avgSRB, "avg-gain-srb-%")
	b.ReportMetric(100*minRW, "min-gain-rw-%")
	b.ReportMetric(100*minSRB, "min-gain-srb-%")
}

// BenchmarkCacheAnalysis profiles the Must/May/Persistence fixpoints on
// the largest benchmark (nsichneu).
func BenchmarkCacheAnalysis(b *testing.B) {
	p := malardalen.MustGet("nsichneu")
	cfg := cache.PaperConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := absint.New(p, cfg)
		_ = a.ClassifyAll()
	}
}

// BenchmarkIPETWCET profiles the fault-free WCET ILP on adpcm.
func BenchmarkIPETWCET(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	a := absint.New(p, cfg)
	classes := a.ClassifyAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := ipet.NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ipet.WCET(sys, a, classes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMM profiles the full fault-miss-map computation (S*W warm
// ILP solves plus per-set reclassification) on adpcm. Workers is
// pinned to 1 so ns/op and allocs/op are independent of the runner's
// core count — the committed baseline must gate on any machine;
// BenchmarkComputeFMMWorkers covers the parallel scaling.
func BenchmarkFMM(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	a := absint.New(p, cfg)
	classes := a.ClassifyAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := ipet.NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ipet.ComputeFMM(sys, a, classes, ipet.FMMOptions{Mechanism: cache.MechanismNone, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMMReference is BenchmarkFMM on the retained reference
// implementations — the dense uncompacted simplex and the map-based
// abstract domain — i.e. the hot path with compaction, sparse pivoting,
// dirty-row restores and the per-set index all off. Recording both
// keeps the optimized-vs-reference gap visible in every baseline (the
// results are byte-identical; only the cost differs). Workers pinned
// to 1 like BenchmarkFMM, for machine-independent metrics.
func BenchmarkFMMReference(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	a := absint.NewReference(p, cfg)
	classes := a.ClassifyAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := ipet.NewReferenceSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ipet.ComputeFMM(sys, a, classes, ipet.FMMOptions{Mechanism: cache.MechanismNone, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeFMMWorkers profiles the parallel fault-miss-map on
// adpcm (16 sets x 4 solves) across worker counts. The acceptance bar
// of the parallel engine: on multi-core hardware workers=4 is >= 2x
// faster than workers=1, while the FMM stays byte-identical (asserted
// by TestComputeFMMWorkersByteIdentical and the core equivalence
// tests).
func BenchmarkComputeFMMWorkers(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	a := absint.New(p, cfg)
	classes := a.ClassifyAll()
	sys, err := ipet.NewSystem(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ipet.ComputeFMM(sys, a, classes, ipet.FMMOptions{
					Mechanism: cache.MechanismNone,
					Workers:   workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPerSetDists builds per-set penalty distributions for a
// configuration with the given set count (the convolution fold input).
// Penalty values share the miss-penalty granularity and a realistic
// per-set miss range (like FMM-derived penalties), which keeps the
// convolutions on the dense accumulation path as in the pipeline.
func benchPerSetDists(b *testing.B, sets int) []*dist.Dist {
	b.Helper()
	cfg := cache.PaperConfig()
	pbf := fault.PBF(1e-4, cfg.BlockBits())
	pwf := fault.PWF(cfg.Ways, pbf)
	rng := rand.New(rand.NewSource(1))
	perSet := make([]*dist.Dist, sets)
	for s := range perSet {
		pts := make([]dist.Point, len(pwf))
		v := int64(0)
		for f := range pts {
			pts[f] = dist.Point{Value: v * 100, Prob: pwf[f]}
			v += int64(1 + rng.Intn(25))
		}
		d, err := dist.New(pts)
		if err != nil {
			b.Fatal(err)
		}
		perSet[s] = d
	}
	return perSet
}

// BenchmarkConvolveAllWorkers profiles the parallel pairwise tree
// reduction on a 256-set configuration across worker counts,
// benchmarked against the sequential left fold (BenchmarkConvolution
// measures the 16-set fold).
func BenchmarkConvolveAllWorkers(b *testing.B) {
	perSet := benchPerSetDists(b, 256)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := dist.ConvolveAll(perSet, core.DefaultMaxSupport, workers)
				_ = total.QuantileExceedance(1e-15)
			}
		})
	}
}

// BenchmarkAnalyzeWorkers profiles the end-to-end analysis (adpcm,
// none — the mechanism with the most ILP work) across worker counts.
func BenchmarkAnalyzeWorkers(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.None, Workers: workers}
				if _, err := pwcet.Analyze(p, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sweepPfails is the 10-point pfail sweep the session-reuse benchmarks
// share (the resilience-roadmap range of the faultsweep example).
var sweepPfails = []float64{6.1e-13, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 2.6e-4, 5e-4, 1e-3}

// BenchmarkPfailSweepOneShot is the pre-session baseline: a 10-point
// pfail sweep on the paper cache as 10 independent Analyze calls, each
// re-running the fixpoints, the IPET system, the fault-free WCET and
// every per-set FMM ILP solve.
func BenchmarkPfailSweepOneShot(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	for i := 0; i < b.N; i++ {
		for _, pf := range sweepPfails {
			if _, err := pwcet.Analyze(p, pwcet.Options{Pfail: pf, Mechanism: pwcet.SRB, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPfailSweepEngine is the same 10-point sweep as one
// Engine.AnalyzeBatch (including the engine construction): the shared
// artifacts are computed once and each sweep point only re-weights
// probabilities and convolves. The acceptance bar of the session
// redesign: at least 3x faster than BenchmarkPfailSweepOneShot, with
// byte-identical results (asserted by TestEnginePfailSweepByteIdentical
// in internal/core).
func BenchmarkPfailSweepEngine(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	queries := make([]pwcet.Query, len(sweepPfails))
	for i, pf := range sweepPfails {
		queries[i] = pwcet.Query{Pfail: pf, Mechanism: pwcet.SRB}
	}
	for i := 0; i < b.N; i++ {
		eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.AnalyzeBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchGridEngine profiles the full evaluation grid of one
// benchmark — 10 pfail points x 3 mechanisms — as a single engine
// batch, the cmd/pwcet -batch workload.
func BenchmarkBatchGridEngine(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	var queries []pwcet.Query
	for _, pf := range sweepPfails {
		for _, m := range []pwcet.Mechanism{pwcet.None, pwcet.RW, pwcet.SRB} {
			queries = append(queries, pwcet.Query{Pfail: pf, Mechanism: m})
		}
	}
	for i := 0; i < b.N; i++ {
		eng, err := pwcet.NewEngine(p, pwcet.EngineOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.AnalyzeBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolution profiles the 16-set penalty convolution with
// coarsening, the final stage of the pipeline.
func BenchmarkConvolution(b *testing.B) {
	cfg := cache.PaperConfig()
	pbf := fault.PBF(1e-4, cfg.BlockBits())
	pwf := fault.PWF(cfg.Ways, pbf)
	rng := rand.New(rand.NewSource(1))
	perSet := make([]*dist.Dist, cfg.Sets)
	for s := range perSet {
		pts := make([]dist.Point, len(pwf))
		v := int64(0)
		for f := range pts {
			pts[f] = dist.Point{Value: v * 100, Prob: pwf[f]}
			v += int64(1 + rng.Intn(200))
		}
		d, err := dist.New(pts)
		if err != nil {
			b.Fatal(err)
		}
		perSet[s] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := dist.Degenerate(0)
		for _, d := range perSet {
			total = total.Convolve(d).CoarsenTo(core.DefaultMaxSupport)
		}
		_ = total.QuantileExceedance(1e-15)
	}
}

// BenchmarkSimulation profiles the concrete cache simulator on a full
// adpcm trace (the validation substrate).
func BenchmarkSimulation(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	tr, err := p.Trace(program.FirstChooser, 50_000_000)
	if err != nil {
		b.Fatal(err)
	}
	fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
	fm[3][0], fm[3][1], fm[3][2], fm[3][3] = true, true, true, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cache.NewSim(cfg, cache.MechanismSRB, fm)
		s.AccessAll(tr)
	}
	b.SetBytes(int64(len(tr) * 4))
}

// BenchmarkAnalyzeSingle profiles one end-to-end analysis (matmult, RW).
func BenchmarkAnalyzeSingle(b *testing.B) {
	p := malardalen.MustGet("matmult")
	for i := 0; i < b.N; i++ {
		if _, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.RW}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze256 is the end-to-end analysis on a 256-set cache
// (16KB, 4-way): the configuration whose penalty reduction folds 256
// per-set distributions and therefore exercises the monoid-power /
// in-tree-coarsening ConvolveAll path inside the full pipeline
// (serial, so the gate tracks algorithmic cost, not core count).
func BenchmarkAnalyze256(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	cfg.Sets = 256
	for i := 0; i < b.N; i++ {
		opt := pwcet.Options{Cache: cfg, Pfail: 1e-4, Mechanism: pwcet.None, Workers: 1}
		if _, err := pwcet.Analyze(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeTransient256 is the pure-SEU pipeline on the 256-set
// cache: per-set hit-bound ILPs instead of the FMM, then the binomial
// materialization and convolution of 256 extra-miss distributions
// (serial, for the same algorithmic-cost tracking as Analyze256).
func BenchmarkAnalyzeTransient256(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	cfg.Sets = 256
	for i := 0; i < b.N; i++ {
		opt := pwcet.Options{Cache: cfg, Scenario: pwcet.Transient{Lambda: 1e-9}, Workers: 1}
		if _, err := pwcet.Analyze(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCombined256 runs both fault stages end to end on the
// 256-set cache: the full permanent FMM/penalty machinery plus the
// transient hit-bound and binomial stage folded on top — the cost
// ceiling of the scenario layer.
func BenchmarkAnalyzeCombined256(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	cfg := cache.PaperConfig()
	cfg.Sets = 256
	for i := 0; i < b.N; i++ {
		opt := pwcet.Options{
			Cache:    cfg,
			Scenario: pwcet.Combined{Pfail: 1e-4, Lambda: 1e-9},
			Workers:  1,
		}
		if _, err := pwcet.Analyze(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}
