package pwcet_test

// Ablation benchmarks for the design choices called out in DESIGN.md.
// Each reports the quantities being compared as custom metrics, so
// `go test -bench=Ablation` doubles as the ablation study:
//
//   - AblationPreciseSRB: the paper's future-work refinement of the SRB
//     analysis. The mixture bound can only help for exceedance targets
//     above P(two sets entirely faulty) ~ 8.4e-14; the bench reports
//     pWCETs at 1e-9 (where it helps) and 1e-15 (where it must not).
//   - AblationConservativeFM: the first-miss constant credits in the
//     FMM difference objective (tighter, equally sound) vs the plain
//     conservative accounting.
//   - AblationCoarsening: exact convolution vs aggressive support
//     coarsening; coarsening must only ever increase the pWCET.

import (
	"testing"

	pwcet "repro"
	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/ipet"
	"repro/internal/malardalen"
)

func BenchmarkAblationPreciseSRB(b *testing.B) {
	p := malardalen.MustGet("fibcall")
	var cons9, prec9, cons15, prec15 int64
	for i := 0; i < b.N; i++ {
		c, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.SRB})
		if err != nil {
			b.Fatal(err)
		}
		pr, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, Mechanism: pwcet.SRB, PreciseSRB: true})
		if err != nil {
			b.Fatal(err)
		}
		cons9, prec9 = c.PWCETAt(1e-9), pr.PWCETAt(1e-9)
		cons15, prec15 = c.PWCETAt(1e-15), pr.PWCETAt(1e-15)
		if prec9 > cons9 || prec15 > cons15 {
			b.Fatal("precise SRB produced a worse bound")
		}
	}
	b.ReportMetric(float64(cons9), "pwcet@1e-9-conservative")
	b.ReportMetric(float64(prec9), "pwcet@1e-9-precise")
	b.ReportMetric(float64(cons15), "pwcet@1e-15-conservative")
	b.ReportMetric(float64(prec15), "pwcet@1e-15-precise")
}

func BenchmarkAblationConservativeFM(b *testing.B) {
	p := malardalen.MustGet("crc")
	cfg := cache.PaperConfig()
	a := absint.New(p, cfg)
	classes := a.ClassifyAll()
	var tight, loose int64
	for i := 0; i < b.N; i++ {
		sys, err := ipet.NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		fmmTight, err := ipet.ComputeFMM(sys, a, classes, ipet.FMMOptions{Mechanism: cache.MechanismNone})
		if err != nil {
			b.Fatal(err)
		}
		fmmLoose, err := ipet.ComputeFMM(sys, a, classes, ipet.FMMOptions{
			Mechanism:      cache.MechanismNone,
			ConservativeFM: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		tight, loose = 0, 0
		for s := range fmmTight {
			for f := range fmmTight[s] {
				tight += fmmTight[s][f]
				loose += fmmLoose[s][f]
				if fmmTight[s][f] > fmmLoose[s][f] {
					b.Fatal("credited FMM exceeded the conservative one")
				}
			}
		}
	}
	b.ReportMetric(float64(tight), "fmm-total-with-credits")
	b.ReportMetric(float64(loose), "fmm-total-conservative")
}

func BenchmarkAblationCoarsening(b *testing.B) {
	p := malardalen.MustGet("adpcm")
	var exact, coarse, tiny int64
	for i := 0; i < b.N; i++ {
		e, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, MaxSupport: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		c, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4}) // default 4096
		if err != nil {
			b.Fatal(err)
		}
		ty, err := pwcet.Analyze(p, pwcet.Options{Pfail: 1e-4, MaxSupport: 32})
		if err != nil {
			b.Fatal(err)
		}
		exact, coarse, tiny = e.PWCET, c.PWCET, ty.PWCET
		if coarse < exact || tiny < coarse {
			b.Fatal("coarsening lowered a pWCET (must be conservative)")
		}
	}
	b.ReportMetric(float64(exact), "pwcet-exact")
	b.ReportMetric(float64(coarse), "pwcet-support-4096")
	b.ReportMetric(float64(tiny), "pwcet-support-32")
}
