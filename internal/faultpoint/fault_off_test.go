//go:build !pwcetfault

package faultpoint

import "testing"

// Without the pwcetfault build tag the whole framework must compile to
// inert no-ops: production binaries carry the call sites but can never
// be armed.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the pwcetfault build tag")
	}
	if err := Hit(SiteAnalyze); err != nil {
		t.Fatalf("Hit = %v, want nil", err)
	}
	if Fires(SiteForceEvict) {
		t.Fatal("Fires reported true in a disabled build")
	}
	if err := Enable(SiteAnalyze, "error"); err == nil {
		t.Fatal("Enable must refuse to arm a disabled build")
	}
	if err := EnableSpecs("core.analyze=error"); err == nil {
		t.Fatal("EnableSpecs must refuse to arm a disabled build")
	}
	// The empty spec list is the unarmed default (pwcetd -fault "") and
	// must stay accepted so plain deployments do not need the tag.
	if err := EnableSpecs(""); err != nil {
		t.Fatalf("EnableSpecs(\"\") = %v, want nil", err)
	}
	Disable(SiteAnalyze) // no-ops, must not panic
	Reset()
	if Active() != nil {
		t.Fatalf("Active() = %v, want nil", Active())
	}
	if len(Sites()) == 0 {
		t.Fatal("site catalog empty in disabled build")
	}
}
