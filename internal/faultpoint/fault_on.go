//go:build pwcetfault

package faultpoint

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Enabled gates the fault-injection registry: this is the chaos build
// (-tags pwcetfault), so the registry below is live.
const Enabled = true

// action is the effect an armed site applies when it fires.
type action int8

const (
	actError action = iota
	actPanic
	actSleep
	actOn
)

// point is one armed injection site. All counting state is guarded by
// the registry mutex, so the firing sequence is a deterministic
// function of the spec and the order of hits alone.
type point struct {
	action action
	sleep  time.Duration
	every  int // fire on every Nth eligible hit (>= 1)
	after  int // skip the first N hits
	count  int // fire at most N times (0 = unlimited)
	prob   float64
	rng    *rand.Rand
	hits   int
	fired  int
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// decide consumes one hit and reports whether the site fires for it.
// Called with mu held.
func (p *point) decide() bool {
	p.hits++
	h := p.hits - p.after
	if h <= 0 {
		return false
	}
	if p.every > 1 && (h-1)%p.every != 0 {
		return false
	}
	if p.count > 0 && p.fired >= p.count {
		return false
	}
	if p.prob < 1 && p.rng.Float64() >= p.prob {
		return false
	}
	p.fired++
	return true
}

// Hit consumes one hit of the site and applies its armed action:
// returns an *InjectedError (action "error"), panics with one (action
// "panic"), sleeps (action "sleep"), or does nothing ("on" and unarmed
// sites).
func Hit(site string) error {
	mu.Lock()
	p := points[site]
	if p == nil {
		mu.Unlock()
		return nil
	}
	fire := p.decide()
	act, sleep := p.action, p.sleep
	mu.Unlock()
	if !fire {
		return nil
	}
	switch act {
	case actError:
		return &InjectedError{Site: site}
	case actPanic:
		panic(&InjectedError{Site: site})
	case actSleep:
		time.Sleep(sleep)
		return nil
	case actOn:
		return nil
	default:
		panic(fmt.Sprintf("faultpoint: unknown action %d", int(act)))
	}
}

// Fires consumes one hit of the site and reports whether its
// control-flow toggle fired. Only sites armed with action "on" ever
// fire here; Hit-style actions at a Fires call site would be silently
// meaningless.
func Fires(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	p := points[site]
	if p == nil || p.action != actOn {
		return false
	}
	return p.decide()
}

// Enable arms the named site with the given spec (see the package doc
// for the grammar), replacing any previous arming and resetting its
// counters.
func Enable(site, spec string) error {
	if !knownSite(site) {
		return fmt.Errorf("faultpoint: unknown site %q (known: %s)", site, strings.Join(Sites(), ", "))
	}
	p, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("faultpoint: site %s: %w", site, err)
	}
	mu.Lock()
	defer mu.Unlock()
	points[site] = p
	return nil
}

// EnableSpecs arms several sites from a semicolon-separated list of
// site=spec pairs — the pwcetd -fault flag format.
func EnableSpecs(specs string) error {
	if specs == "" {
		return nil
	}
	for _, part := range strings.Split(specs, ";") {
		site, spec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faultpoint: malformed spec %q (want site=spec)", part)
		}
		if err := Enable(strings.TrimSpace(site), spec); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named site.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, site)
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
}

// Active lists the armed sites in sorted order.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	sites := make([]string, 0, len(points))
	//pwcetlint:mapiterdet collected into a slice and sorted before use
	for s := range points {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return sites
}

func knownSite(site string) bool {
	for _, s := range Sites() {
		if s == site {
			return true
		}
	}
	return false
}

// parseSpec parses "action[:param][,k=v...]" into an armed point.
func parseSpec(spec string) (*point, error) {
	parts := strings.Split(spec, ",")
	p := &point{prob: 1, every: 1}
	var seed int64 = 1
	act, param, _ := strings.Cut(parts[0], ":")
	switch act {
	case "error":
		p.action = actError
	case "panic":
		p.action = actPanic
	case "sleep":
		d, err := time.ParseDuration(param)
		if err != nil {
			return nil, fmt.Errorf("sleep duration %q: %w", param, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("sleep duration %v is negative", d)
		}
		p.action = actSleep
		p.sleep = d
	case "on":
		p.action = actOn
	default:
		return nil, fmt.Errorf("unknown action %q", act)
	}
	if p.action != actSleep && param != "" {
		return nil, fmt.Errorf("action %q takes no parameter (got %q)", act, param)
	}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("malformed modifier %q (want key=value)", kv)
		}
		switch k {
		case "every":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("every=%q must be an integer >= 1", v)
			}
			p.every = n
		case "after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("after=%q must be an integer >= 0", v)
			}
			p.after = n
		case "count":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("count=%q must be an integer >= 1", v)
			}
			p.count = n
		case "prob":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("prob=%q must be in [0,1]", v)
			}
			p.prob = f
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed=%q must be an integer", v)
			}
			seed = n
		default:
			return nil, fmt.Errorf("unknown modifier %q", k)
		}
	}
	p.rng = rand.New(rand.NewSource(seed))
	return p, nil
}
