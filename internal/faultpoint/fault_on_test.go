//go:build pwcetfault

package faultpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// arm is Enable with registry cleanup: the package registry is process
// global, so every test disarms everything it touched.
func arm(t *testing.T, site, spec string) {
	t.Helper()
	if err := Enable(site, spec); err != nil {
		t.Fatalf("Enable(%s, %q): %v", site, spec, err)
	}
	t.Cleanup(Reset)
}

func TestEnabledConst(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the pwcetfault build tag")
	}
}

func TestErrorAction(t *testing.T) {
	arm(t, SiteAnalyze, "error")
	err := Hit(SiteAnalyze)
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("Hit = %v, want *InjectedError", err)
	}
	if ie.Site != SiteAnalyze {
		t.Fatalf("InjectedError.Site = %q", ie.Site)
	}
	if !strings.Contains(ie.Error(), SiteAnalyze) {
		t.Fatalf("error text %q does not name the site", ie.Error())
	}
	// Unarmed sites stay silent even while another is armed.
	if err := Hit(SiteEngineBuild); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	arm(t, SiteSlowSolve, "panic")
	defer func() {
		r := recover()
		ie, ok := r.(*InjectedError)
		if !ok {
			t.Fatalf("recovered %v, want *InjectedError", r)
		}
		if ie.Site != SiteSlowSolve {
			t.Fatalf("panic names site %q", ie.Site)
		}
	}()
	Hit(SiteSlowSolve)
	t.Fatal("panic action did not panic")
}

func TestSleepAction(t *testing.T) {
	arm(t, SiteAnalyze, "sleep:30ms")
	start := time.Now()
	if err := Hit(SiteAnalyze); err != nil {
		t.Fatalf("sleep action returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("sleep action returned after %v, want >= 30ms", d)
	}
}

func TestOnActionAndFires(t *testing.T) {
	arm(t, SiteForceEvict, "on")
	if !Fires(SiteForceEvict) {
		t.Fatal("armed on-site did not fire")
	}
	// "on" is a pure control-flow toggle: Hit treats it as a no-op.
	if err := Hit(SiteForceEvict); err != nil {
		t.Fatalf("Hit on an on-site returned %v", err)
	}
	// Fires never triggers Hit-style actions: an error-armed site is
	// meaningless at a Fires call site and must report false.
	arm(t, SiteDisconnect, "error")
	if Fires(SiteDisconnect) {
		t.Fatal("Fires triggered on an error-armed site")
	}
	if Fires(SiteAnalyze) {
		t.Fatal("Fires triggered on an unarmed site")
	}
}

// TestSchedule pins the deterministic hit arithmetic: with
// after=2,every=3,count=2 exactly hits 3 and 6 fire, nothing after.
func TestSchedule(t *testing.T) {
	arm(t, SiteAnalyze, "error,after=2,every=3,count=2")
	var fired []int
	for hit := 1; hit <= 12; hit++ {
		if Hit(SiteAnalyze) != nil {
			fired = append(fired, hit)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired at hits %v, want [3 6]", fired)
	}
}

// TestProbDeterministic: prob uses a seeded PRNG, so the firing pattern
// is a pure function of the spec — re-arming with the same seed replays
// it exactly, and a different seed diverges (over enough trials).
func TestProbDeterministic(t *testing.T) {
	pattern := func(spec string) string {
		arm(t, SiteAnalyze, spec)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Hit(SiteAnalyze) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a := pattern("error,prob=0.5,seed=7")
	b := pattern("error,prob=0.5,seed=7")
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "0") || !strings.Contains(a, "1") {
		t.Fatalf("prob=0.5 produced a degenerate pattern %s", a)
	}
	if c := pattern("error,prob=0.5,seed=8"); c == a {
		t.Fatal("different seeds produced identical 64-hit patterns")
	}
}

func TestEnableSpecsMultiSite(t *testing.T) {
	t.Cleanup(Reset)
	if err := EnableSpecs("core.analyze=error,count=1; lp.slow-solve=sleep:1ms"); err != nil {
		t.Fatal(err)
	}
	got := Active()
	want := []string{SiteAnalyze, SiteSlowSolve}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Active() = %v, want %v", got, want)
	}
	if Hit(SiteAnalyze) == nil {
		t.Fatal("first armed site inert")
	}
	if err := EnableSpecs(""); err != nil {
		t.Fatalf("empty spec list rejected: %v", err)
	}
}

func TestDisableAndReset(t *testing.T) {
	arm(t, SiteAnalyze, "error")
	arm(t, SiteEngineBuild, "error")
	Disable(SiteAnalyze)
	if Hit(SiteAnalyze) != nil {
		t.Fatal("disabled site still fires")
	}
	if Hit(SiteEngineBuild) == nil {
		t.Fatal("Disable disarmed an unrelated site")
	}
	Reset()
	if Hit(SiteEngineBuild) != nil {
		t.Fatal("Reset left a site armed")
	}
	if Active() != nil && len(Active()) != 0 {
		t.Fatalf("Active() after Reset = %v", Active())
	}
}

// TestEnableReplacesAndResetsCounters: re-arming a site restarts its
// hit counters from zero.
func TestEnableReplacesAndResetsCounters(t *testing.T) {
	arm(t, SiteAnalyze, "error,count=1")
	if Hit(SiteAnalyze) == nil {
		t.Fatal("count=1 did not fire on first hit")
	}
	if Hit(SiteAnalyze) != nil {
		t.Fatal("count=1 fired twice")
	}
	arm(t, SiteAnalyze, "error,count=1")
	if Hit(SiteAnalyze) == nil {
		t.Fatal("re-armed site did not restart its count")
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []struct{ site, spec string }{
		{"no.such.site", "error"},
		{SiteAnalyze, "explode"},
		{SiteAnalyze, "error:param"},
		{SiteAnalyze, "sleep"},
		{SiteAnalyze, "sleep:-5ms"},
		{SiteAnalyze, "sleep:soon"},
		{SiteAnalyze, "error,every=0"},
		{SiteAnalyze, "error,after=-1"},
		{SiteAnalyze, "error,count=0"},
		{SiteAnalyze, "error,prob=1.5"},
		{SiteAnalyze, "error,prob=often"},
		{SiteAnalyze, "error,seed=x"},
		{SiteAnalyze, "error,bogus=1"},
		{SiteAnalyze, "error,count"},
	}
	for _, c := range bad {
		if err := Enable(c.site, c.spec); err == nil {
			t.Errorf("Enable(%s, %q) accepted", c.site, c.spec)
		}
	}
	if err := EnableSpecs("core.analyze"); err == nil {
		t.Error("EnableSpecs without '=' accepted")
	}
	if len(Active()) != 0 {
		t.Fatalf("rejected specs armed sites: %v", Active())
	}
}

func TestSitesCatalog(t *testing.T) {
	sites := Sites()
	for _, want := range []string{SiteEngineBuild, SiteAnalyze, SiteForceEvict, SiteSlowSolve, SitePivotLimit, SiteDisconnect} {
		found := false
		for _, s := range sites {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("site %s missing from Sites()", want)
		}
	}
}
