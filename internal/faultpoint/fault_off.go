//go:build !pwcetfault

package faultpoint

import "errors"

// Enabled gates the fault-injection registry. This is the default
// build: every probe below is an inlinable no-op, so instrumented hot
// paths pay nothing, and arming a site is an error rather than a
// silent no-op.
const Enabled = false

// Hit reports the injected action for the site: always nil here.
func Hit(site string) error { return nil }

// Fires reports whether the site's control-flow toggle fired: never.
func Fires(site string) bool { return false }

// Enable arms a site; without the pwcetfault build tag it reports an
// error so callers (cmd/pwcetd -fault, cmd/soak) fail loudly instead
// of running an unarmed chaos scenario.
func Enable(site, spec string) error { return errNotBuilt }

// EnableSpecs arms several sites from "site=spec;site=spec" form; it
// reports the same error as Enable in this build.
func EnableSpecs(specs string) error {
	if specs == "" {
		return nil
	}
	return errNotBuilt
}

// Disable disarms a site (no-op here).
func Disable(site string) {}

// Reset disarms every site (no-op here).
func Reset() {}

// Active lists the armed sites: always empty here.
func Active() []string { return nil }

var errNotBuilt = errors.New("faultpoint: fault injection requires the pwcetfault build tag")
