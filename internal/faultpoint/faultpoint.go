// Package faultpoint is a registry of named fault-injection sites for
// chaos testing the analysis engine and service. Production code marks
// a site with Hit (error/panic/sleep actions) or Fires (control-flow
// toggles); tests and cmd/soak arm sites with Enable/EnableSpecs.
//
// The package mirrors the pwcetcheck sanitizer discipline: without the
// pwcetfault build tag every probe compiles to an inlinable no-op and
// Enable reports an error, so the default build carries zero injection
// machinery. With -tags pwcetfault the registry is live and fully
// deterministic — firing decisions depend only on the spec and the
// site's hit counter (probabilistic specs use a seeded generator), so a
// chaos run replays exactly from its seed.
//
// # Spec grammar
//
//	action[:param][,every=N][,after=N][,count=N][,prob=P][,seed=S]
//
// Actions:
//
//	error        Hit returns an *InjectedError for the site
//	panic        Hit panics with an *InjectedError
//	sleep:DUR    Hit sleeps for DUR (time.ParseDuration) and returns nil
//	on           Fires returns true (Hit is a no-op for this action)
//
// Modifiers (all optional): after=N skips the first N hits, every=N
// then fires on every Nth eligible hit, count=N caps total firings,
// prob=P (with seed=S, default 1) fires eligible hits with probability
// P from a site-local seeded generator.
//
// EnableSpecs arms several sites at once from a single string of
// semicolon-separated site=spec pairs — the format of the pwcetd
// -fault flag:
//
//	core.force-evict=on;serve.disconnect=error,after=5,count=1
//
// # Site catalog
//
// The compiled-in sites (each documented at its call site):
//
//	core.engine-build   spurious NewEngine failure (Hit)
//	core.analyze        panic or slow-down inside an analysis (Hit)
//	core.force-evict    evict all unpinned artifacts on every eviction
//	                    pass regardless of budget — eviction-under-pin
//	                    chaos; behavior-invariant by the LRU contract
//	                    (Fires)
//	lp.slow-solve       sleep at the top of every Simplex.Maximize,
//	                    wedging the solver to force soft-deadline
//	                    degradation (Hit)
//	lp.pivot-limit      spurious ErrPivotLimit from Maximize (Fires)
//	serve.disconnect    simulated client disconnect mid-NDJSON-stream
//	                    (Fires)
package faultpoint

// InjectedError is the error Hit returns (action "error") or panics
// with (action "panic"). Callers that must distinguish injected faults
// from organic ones can errors.As against it.
type InjectedError struct {
	// Site is the injection site that fired.
	Site string
}

// Error describes the injected fault.
func (e *InjectedError) Error() string {
	return "faultpoint: injected fault at " + e.Site
}

// Compiled-in site names. Instrumented packages reference these
// constants so a renamed site cannot silently orphan its specs.
const (
	// SiteEngineBuild makes core.NewEngine fail spuriously.
	SiteEngineBuild = "core.engine-build"
	// SiteAnalyze panics or sleeps inside core.Engine analyses.
	SiteAnalyze = "core.analyze"
	// SiteForceEvict evicts every unpinned artifact on each eviction
	// pass, regardless of the configured budget.
	SiteForceEvict = "core.force-evict"
	// SiteSlowSolve sleeps at the top of every lp.Simplex.Maximize.
	SiteSlowSolve = "lp.slow-solve"
	// SitePivotLimit injects a spurious lp.ErrPivotLimit.
	SitePivotLimit = "lp.pivot-limit"
	// SiteDisconnect simulates a client disconnect mid-stream in serve.
	SiteDisconnect = "serve.disconnect"
)

// Sites lists the compiled-in injection sites.
func Sites() []string {
	return []string{
		SiteEngineBuild,
		SiteAnalyze,
		SiteForceEvict,
		SiteSlowSolve,
		SitePivotLimit,
		SiteDisconnect,
	}
}
