package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix is the comment prefix of a suppression directive.
// Like //go: directives, no space may follow the slashes.
const directivePrefix = "//pwcetlint:"

// orderedAlias is the directive name covering both order-sensitivity
// analyzers: //pwcetlint:ordered suppresses mapiterdet and floataccum.
const orderedAlias = "ordered"

// directiveNames are the accepted NAMEs of //pwcetlint:NAME.
var directiveNames = map[string]bool{
	orderedAlias:  true,
	"mapiterdet":  true,
	"floataccum":  true,
	"exhaustenum": true,
	"refpurity":   true,
}

// A directive is one parsed //pwcetlint:NAME comment.
type directive struct {
	name          string
	justification string
	pos           token.Position
	known         bool
	used          bool
}

// covers names the analyzers a directive suppresses, for the unused-
// directive message.
func (d *directive) covers() string {
	if d.name == orderedAlias {
		return "mapiterdet/floataccum"
	}
	return d.name
}

// suppresses reports whether the directive applies to a diagnostic of
// the named analyzer at the given position: same file, and the
// directive sits on the flagged line or the line immediately above.
func (d *directive) suppresses(analyzer string, pos token.Position) bool {
	if d.name != analyzer && !(d.name == orderedAlias && (analyzer == "mapiterdet" || analyzer == "floataccum")) {
		return false
	}
	if d.pos.Filename != pos.Filename {
		return false
	}
	return d.pos.Line == pos.Line || d.pos.Line == pos.Line-1
}

// collectDirectives parses every //pwcetlint: comment of the files.
// A directive with a misspelled NAME suppresses nothing; it is kept
// (known=false) so the driver can report it instead of letting the typo
// silently disable a reviewed suppression.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				name, just, _ := strings.Cut(rest, " ")
				out = append(out, &directive{
					name:          name,
					justification: strings.TrimSpace(just),
					pos:           fset.Position(c.Pos()),
					known:         directiveNames[name],
				})
			}
		}
	}
	return out
}

// applyDirectives drops the diagnostics covered by a directive with a
// justification, marking those directives used. Directives lacking a
// justification never suppress (the framework reports them instead), so
// an unjustified annotation cannot hide a finding.
func applyDirectives(diags []Diagnostic, dirs []*directive) []Diagnostic {
	var kept []Diagnostic
	for _, dg := range diags {
		suppressed := false
		for _, d := range dirs {
			if d.known && d.justification != "" && d.suppresses(dg.Analyzer, dg.Position) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	return kept
}
