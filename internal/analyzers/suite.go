package analyzers

// All returns the production-configured analyzer suite pwcetlint runs
// over the repository: mapiterdet on the determinism-critical packages,
// floataccum and refpurity everywhere, exhaustenum for enums defined in
// this module.
func All() []*Analyzer {
	return []*Analyzer{
		MapIterDet(DefaultCriticalPackages),
		FloatAccum(),
		ExhaustEnum("repro"),
		RefPurity(DefaultRefPurityRules),
	}
}
