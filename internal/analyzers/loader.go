package analyzers

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Incomplete,Error"

// Load resolves the package patterns (as `go list` would, in dir) and
// type-checks each matched package from source. Imports — standard
// library and intra-module alike — are satisfied from compiler export
// data produced by `go list -export`, so loading works offline and
// needs nothing beyond the Go toolchain. Test files are not loaded: the
// determinism contract is about what ships, and the site count stays
// reviewable.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, err := goList(dir, append([]string{"list", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"list", "-e", "-export", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadTestdata type-checks a single directory of Go files as package
// `path` — the analyzer test corpora under testdata/src. Imports are
// resolved like Load's, via export data listed from the enclosing
// module (the testdata packages import at most the standard library).
func LoadTestdata(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, m := range matches {
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			importSet[spec.Path.Value[1:len(spec.Path.Value)-1]] = true
		}
	}
	args := []string{"list", "-e", "-export", "-deps", listFields}
	for p := range importSet {
		args = append(args, p)
	}
	sort.Strings(args[5:]) // deterministic go list invocation
	exports := make(map[string]string)
	if len(importSet) > 0 {
		deps, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Name: tpkg.Name(), Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Name: tpkg.Name(), Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ErrFindings is returned by Main when diagnostics were reported.
var ErrFindings = errors.New("pwcetlint: findings reported")
