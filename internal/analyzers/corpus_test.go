package analyzers

import (
	"regexp"
	"testing"
)

func TestMapIterDetCorpus(t *testing.T) {
	runCorpus(t, "mapiterdet", "example.com/mapiterdet",
		[]*Analyzer{MapIterDet([]string{"example.com/mapiterdet"})})
}

// TestMapIterDetIgnoresNonCriticalPackages: the same corpus loaded under
// a path outside the critical set must produce no findings at all — but
// its directives then count as unused, which is exactly the hygiene
// signal for a package dropped from the critical list.
func TestMapIterDetIgnoresNonCriticalPackages(t *testing.T) {
	pkg, err := LoadTestdata("testdata/src/mapiterdet", "example.com/elsewhere")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{MapIterDet([]string{"example.com/mapiterdet"})})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "mapiterdet" {
			t.Errorf("finding in non-critical package: %s", d)
		}
	}
	unused := 0
	for _, d := range diags {
		if d.Analyzer == "pwcetlint" {
			unused++
		}
	}
	if unused == 0 {
		t.Error("expected the corpus directive to be reported unused when the package is not critical")
	}
}

func TestFloatAccumCorpus(t *testing.T) {
	runCorpus(t, "floataccum", "example.com/floataccum",
		[]*Analyzer{FloatAccum()})
}

func TestExhaustEnumCorpus(t *testing.T) {
	runCorpus(t, "exhaustenum", "example.com/exhaustenum",
		[]*Analyzer{ExhaustEnum("example.com")})
}

// TestExhaustEnumForeignModule: the same corpus analyzed with a module
// prefix that does not own the enum's package must stay silent — the
// analyzer only polices enums this module defines.
func TestExhaustEnumForeignModule(t *testing.T) {
	pkg, err := LoadTestdata("testdata/src/exhaustenum", "example.com/exhaustenum")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{ExhaustEnum("other.org")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "exhaustenum" {
			t.Errorf("finding on foreign-module enum: %s", d)
		}
	}
}

func TestRefPurityCorpus(t *testing.T) {
	runCorpus(t, "refpurity", "example.com/refpurity",
		[]*Analyzer{RefPurity([]RefPurityRule{{
			PkgPath:   "example.com/refpurity",
			Root:      regexp.MustCompile(`^Reference|\.Reference`),
			Forbidden: regexp.MustCompile(`^FastSum$|^Engine\.fastRun$`),
		}})})
}

func TestDirectiveHygieneCorpus(t *testing.T) {
	runCorpus(t, "directives", "example.com/directives",
		[]*Analyzer{MapIterDet([]string{"example.com/directives"})})
}
