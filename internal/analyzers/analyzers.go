// Package analyzers implements pwcetlint, the repo's static-analysis
// suite for the determinism and soundness invariants the pWCET
// pipeline depends on. The core contract of this codebase — byte-
// identical results for every worker count, coarsening strategy and
// fast-vs-reference path — is trivially broken by an unsorted map
// iteration or an order-dependent floating-point accumulation, and the
// differential tests only catch such a break when a particular run
// happens to expose it. The analyzers here enforce the discipline
// statically, at CI time:
//
//   - mapiterdet flags `range` over a map in the determinism-critical
//     packages unless the loop body is provably order-insensitive or
//     the site carries a reviewed //pwcetlint:ordered directive.
//   - floataccum flags floating-point compound accumulation whose
//     evaluation order derives from a map iteration or from a shared
//     accumulator written inside `go` function literals (the
//     per-worker-partition bug class the output-range convolution
//     splits were designed around).
//   - exhaustenum requires switches over the repo's int enums
//     (iota blocks such as cache.Mechanism, lp.Op, dist.CoarsenStrategy)
//     to be exhaustive or to carry a panicking default.
//   - refpurity keeps the retained reference implementations
//     (lp.NewReferenceSimplex's dense loops, absint's map-based domain,
//     dist.ConvolveAllExact) from calling into the optimized paths they
//     exist to validate.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, a `// want`-comment test harness) so a
// future migration to the real multichecker is mechanical; it is
// implemented on the standard library alone because this module has no
// external dependencies.
//
// # Suppression directives
//
// A finding is suppressed by a directive comment on the flagged line or
// on the line immediately above it:
//
//	//pwcetlint:NAME justification
//
// where NAME is an analyzer name (mapiterdet, floataccum, exhaustenum,
// refpurity) or the alias "ordered", which covers both order-sensitive
// analyzers (mapiterdet and floataccum). The justification text is
// mandatory: a bare directive is itself reported. Directives that
// suppress nothing are reported as unused, so stale annotations cannot
// accumulate. See the README section "Static analysis & invariants".
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pwcetlint:NAME suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `pwcetlint -help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with the syntax, type information
// and reporting sink for a single package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, resolves suppression
// directives, and returns the surviving diagnostics sorted by position.
// Directive hygiene is enforced here: a directive with no justification
// and a directive that suppressed nothing are both reported (under the
// pseudo-analyzer name "pwcetlint"), so the reviewed-annotation corpus
// stays honest — deleting the code a directive covers makes the
// directive itself fail the lint.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	var dirs []*directive
	for _, pkg := range pkgs {
		dirs = append(dirs, collectDirectives(pkg.Fset, pkg.Files)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := applyDirectives(raw, dirs)
	for _, d := range dirs {
		switch {
		case !d.known:
			kept = append(kept, Diagnostic{
				Analyzer: "pwcetlint",
				Position: d.pos,
				Message:  fmt.Sprintf("unknown directive //pwcetlint:%s (valid names: ordered, mapiterdet, floataccum, exhaustenum, refpurity)", d.name),
			})
		case d.justification == "":
			kept = append(kept, Diagnostic{
				Analyzer: "pwcetlint",
				Position: d.pos,
				Message:  fmt.Sprintf("//pwcetlint:%s directive needs a one-line justification", d.name),
			})
		case !d.used:
			kept = append(kept, Diagnostic{
				Analyzer: "pwcetlint",
				Position: d.pos,
				Message:  fmt.Sprintf("unused suppression directive //pwcetlint:%s (no %s finding on this or the next line)", d.name, d.covers()),
			})
		}
	}
	SortDiagnostics(kept)
	return kept, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the deterministic output order of the multichecker.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
