package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum returns the floataccum analyzer. It flags floating-point
// compound accumulation (+=, -=, *=, /=) whose evaluation order is
// nondeterministic — the exact bug class the output-range worker
// partitioning of dist.ConvolveAll was designed around, since float
// addition is not associative and a different accumulation order
// changes the low bits of the result:
//
//   - an accumulator declared outside a range-over-map loop and updated
//     inside it (iteration order varies run to run), and
//   - an accumulator declared outside a `go func` literal and updated
//     inside it (goroutine interleaving varies run to run — a shared
//     accumulator is a determinism bug on top of a data race).
//
// Accumulators local to the loop body (one partial sum per key, later
// combined in a sorted order) are fine and not flagged. A site that is
// genuinely order-safe — e.g. the loop is only ever entered with one
// element — can carry //pwcetlint:ordered with a justification.
func FloatAccum() *Analyzer {
	a := &Analyzer{
		Name: "floataccum",
		Doc:  "flags float += / *= accumulation whose order derives from map iteration or goroutine interleaving",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			// carriers is the stack of enclosing order-nondeterministic
			// regions: map-range loops and go-statement function literals.
			type carrier struct {
				node ast.Node
				kind string
			}
			var carriers []carrier
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if t := pass.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							carriers = append(carriers, carrier{n, "map iteration"})
							ast.Inspect(n.Body, walk)
							carriers = carriers[:len(carriers)-1]
							return false
						}
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						carriers = append(carriers, carrier{lit, "goroutine interleaving"})
						ast.Inspect(lit.Body, walk)
						carriers = carriers[:len(carriers)-1]
						// The call arguments are evaluated on the spawning
						// goroutine, outside the carrier.
						for _, arg := range n.Call.Args {
							ast.Inspect(arg, walk)
						}
						return false
					}
				case *ast.AssignStmt:
					if len(carriers) == 0 {
						return true
					}
					switch n.Tok {
					case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					default:
						return true
					}
					lhs := n.Lhs[0]
					if !isFloat(pass.TypeOf(lhs)) {
						return true
					}
					id := rootIdent(lhs)
					if id == nil {
						// Index/selector target: attribute it to the root
						// object when resolvable, otherwise stay silent
						// rather than guess.
						return true
					}
					obj := pass.Info.Uses[id]
					if obj == nil {
						return true
					}
					c := carriers[len(carriers)-1]
					if declaredWithin(obj, c.node) {
						return true // per-iteration (or per-goroutine) partial: order-invariant
					}
					pass.Reportf(n.TokPos,
						"floating-point accumulation into %s: the accumulation order derives from %s and is nondeterministic; accumulate into a local and combine in sorted order, or annotate //pwcetlint:ordered with a justification",
						id.Name, c.kind)
				}
				return true
			}
			ast.Inspect(f, walk)
		}
		return nil
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent returns the base identifier of an assignable expression:
// x, x[i], x.f, (*x) all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
