package analyzers

// The corpus harness mirrors golang.org/x/tools/go/analysis/analysistest:
// each directory under testdata/src is one package of golden Go files,
// and every expected diagnostic is declared in-source with a comment
//
//	// want `regexp`
//
// (double-quoted strings work too; several patterns may follow one
// want). A want matches a diagnostic on its own line whose message
// matches the pattern. The harness fails on both sides of a mismatch:
// an unmatched want AND an undeclared diagnostic — so the negative
// (false-positive-shaped) cases in the corpora are enforced, not just
// the positives.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

type wantExpectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// runCorpus loads testdata/src/<dir> as package pkgPath, runs the given
// analyzers through the full driver (directive resolution included) and
// checks the diagnostics against the corpus's want comments.
func runCorpus(t *testing.T, dir, pkgPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg, err := LoadTestdata(filepath.Join("testdata", "src", dir), pkgPath)
	if err != nil {
		t.Fatalf("load corpus %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run on corpus %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.Position.Filename) || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("undeclared diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants extracts the want expectations from every comment of the
// corpus package. Both line and block comments are scanned, so a want
// can share a line with a //pwcetlint: directive via /* want ... */.
func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = text[2:]
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimSuffix(text[2:], "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &wantExpectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						raw:  p,
					})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits a want payload into its quoted patterns:
// a sequence of backquoted or double-quoted Go strings.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", s)
			}
			p, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment without patterns")
	}
	return out, nil
}
