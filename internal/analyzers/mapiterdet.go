package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefaultCriticalPackages are the determinism-critical packages
// mapiterdet guards: every package whose computation feeds the pWCET
// results (an unsorted iteration there changes atom order, accumulation
// order or block numbering and with them the bytes of the output), plus
// the commands and report layer that serialize those results.
var DefaultCriticalPackages = []string{
	"repro",
	"repro/internal/dist",
	"repro/internal/lp",
	"repro/internal/ipet",
	"repro/internal/absint",
	"repro/internal/core",
	"repro/internal/cache",
	"repro/internal/fault",
	"repro/internal/chmc",
	"repro/internal/report",
	"repro/internal/program",
	"repro/internal/cfg",
	"repro/internal/sim",
	"repro/internal/progen",
	"repro/internal/malardalen",
	"repro/internal/batchspec",
	"repro/internal/serve",
	"repro/internal/faultpoint",
	"repro/cmd/pwcet",
	"repro/cmd/pwcetd",
	"repro/cmd/paperfigs",
	"repro/cmd/benchjson",
	"repro/cmd/soak",
}

// MapIterDet returns the mapiterdet analyzer restricted to the given
// package paths. It flags every `range` over a map in those packages
// unless the loop is provably order-insensitive:
//
//   - the body only collects keys/values into a slice that is passed to
//     a sort or slices call later in the same function
//     (collect-then-sort), or
//   - every statement commutes across iterations: plain stores into
//     another container indexed by exactly the iteration key (distinct
//     iterations write distinct entries), delete(m, key), exact
//     commutative scalar updates (integer/boolean +=/-=/++/--, |=, &=,
//     ^=) and constant stores — with no statement reading a variable
//     the body also writes. Floating-point accumulation never
//     qualifies: float addition is not bitwise-commutative.
//
// Anything else needs an explicit reviewed justification:
//
//	//pwcetlint:ordered <why this site cannot affect results>
//
// on the `for` line or the line above.
func MapIterDet(critical []string) *Analyzer {
	set := make(map[string]bool, len(critical))
	for _, p := range critical {
		set[p] = true
	}
	a := &Analyzer{
		Name: "mapiterdet",
		Doc:  "flags range-over-map in determinism-critical packages unless provably order-insensitive or annotated //pwcetlint:ordered",
	}
	a.Run = func(pass *Pass) error {
		if !set[pass.Pkg.Path()] {
			return nil
		}
		for _, f := range pass.Files {
			var funcStack []ast.Node // enclosing FuncDecl/FuncLit chain
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					body := funcBody(n)
					if body == nil {
						return false
					}
					funcStack = append(funcStack, n)
					ast.Inspect(body, walk)
					funcStack = funcStack[:len(funcStack)-1]
					return false
				case *ast.RangeStmt:
					t := pass.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					var encl ast.Node
					if len(funcStack) > 0 {
						encl = funcStack[len(funcStack)-1]
					}
					if !orderInsensitive(pass, n, encl) {
						pass.Reportf(n.For,
							"iteration over map %s has nondeterministic order; sort the keys first, make the body commutative, or annotate //pwcetlint:ordered with a justification",
							exprString(n.X))
					}
				}
				return true
			}
			ast.Inspect(f, walk)
		}
		return nil
	}
	return a
}

func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		if n.Body != nil {
			return n.Body
		}
	}
	return nil
}

// orderInsensitive reports whether the map-range loop provably computes
// the same result under any iteration order. The proof obligations:
// distinct iterations must touch disjoint state (plain stores indexed
// by the iteration key) or commute exactly (integer accumulation,
// constant stores, collect-then-sort), and no statement may read state
// another iteration writes.
func orderInsensitive(pass *Pass, loop *ast.RangeStmt, enclosing ast.Node) bool {
	st := &bodyState{
		pass:    pass,
		allowed: map[types.Object]bool{},
		keys:    map[types.Object]bool{},
		written: map[types.Object]bool{},
		loop:    loop,
	}
	for i, v := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id] // `for k = range` assigning an outer var
			}
			if obj != nil {
				st.allowed[obj] = true
				if i == 0 {
					st.keys[obj] = true // the key is unique per iteration; the value is not
				}
			}
		}
	}
	st.collectWritten(loop.Body)
	for _, s := range loop.Body.List {
		if !st.stmtOK(s) {
			return false
		}
	}
	// Every slice the body appended to must be sorted afterwards in the
	// same function for the collect-then-sort pattern to hold.
	for _, path := range st.collected {
		if enclosing == nil || !sortedLater(pass, funcBody(enclosing), loop, path) {
			return false
		}
	}
	return true
}

// bodyState tracks the proof state for one loop body: allowed holds the
// iteration variables and the call-free locals derived from them, keys
// the subset unique per iteration, written the outer variables the body
// mutates (which no expression may then read), collected the rendered
// paths of collect-then-sort append targets.
type bodyState struct {
	pass      *Pass
	allowed   map[types.Object]bool
	keys      map[types.Object]bool
	written   map[types.Object]bool
	collected []string
	loop      *ast.RangeStmt
}

// collectWritten records the root object of every assignment target,
// ++/-- operand and delete()d map in the body — excluding locals
// declared inside the loop, whose lifetime is one iteration.
func (st *bodyState) collectWritten(body *ast.BlockStmt) {
	note := func(e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj := st.pass.Info.Uses[id]
		if obj == nil {
			obj = st.pass.Info.Defs[id]
		}
		if obj == nil || declaredWithin(obj, st.loop) {
			return
		}
		st.written[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				note(l)
			}
		case *ast.IncDecStmt:
			note(n.X)
		case *ast.CallExpr:
			if id := identOf(n.Fun); id != nil {
				if b, ok := st.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) == 2 {
					note(n.Args[0])
				}
			}
		}
		return true
	})
}

func (st *bodyState) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return st.assignOK(s)
	case *ast.IncDecStmt:
		// ++/-- is += 1 / -= 1: exactly commutative on integers, so the
		// same shapes as the compound-assign rule below are accepted.
		if !isExactScalar(st.pass.TypeOf(s.X)) {
			return false
		}
		if x, ok := s.X.(*ast.IndexExpr); ok {
			return st.exprOKIgnoringWritten(x.Index) && rootIdent(x.X) != nil
		}
		return identOf(s.X) != nil
	case *ast.ExprStmt:
		// delete(m, key) commutes: distinct iterations delete distinct
		// keys. Deleting by anything else (the range value, a derived
		// expression) may collide with another iteration's write.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id := identOf(call.Fun); id != nil {
				if b, ok := st.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) == 2 {
					return st.isKeyIdent(call.Args[1])
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !st.stmtOK(s.Init) {
			return false
		}
		if !st.exprOK(s.Cond) {
			return false
		}
		if !st.blockOK(s.Body) {
			return false
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return st.blockOK(blk)
			}
			if elif, ok := s.Else.(*ast.IfStmt); ok {
				return st.stmtOK(elif)
			}
			return false
		}
		return true
	case *ast.BlockStmt:
		return st.blockOK(s)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.EmptyStmt:
		return true
	}
	return false
}

func (st *bodyState) blockOK(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !st.stmtOK(s) {
			return false
		}
	}
	return true
}

// assignOK validates one assignment of the loop body.
func (st *bodyState) assignOK(s *ast.AssignStmt) bool {
	if len(s.Rhs) != 1 {
		return false
	}
	rhs := s.Rhs[0]

	// Multi-value define (comma-ok map reads, v, ok := m[k]): every
	// left-hand side must be a freshly declared local — reusing an outer
	// variable would be an order-visible write.
	if len(s.Lhs) > 1 {
		if s.Tok != token.DEFINE || !st.exprOK(rhs) {
			return false
		}
		for _, l := range s.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				return false
			}
			if id.Name == "_" {
				continue
			}
			obj := st.pass.Info.Defs[id]
			if obj == nil {
				return false
			}
			st.allowed[obj] = true
		}
		return true
	}
	if len(s.Lhs) != 1 {
		return false
	}
	lhs := s.Lhs[0]

	// Collect-then-sort: x = append(x, e...). The appended values arrive
	// in nondeterministic order — the mandatory later sort canonicalizes
	// them.
	if s.Tok == token.ASSIGN {
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(st.pass, call) && len(call.Args) >= 2 && !call.Ellipsis.IsValid() {
			target, ok := renderPath(lhs)
			if !ok {
				return false
			}
			arg0, ok := renderPath(call.Args[0])
			if !ok || target != arg0 {
				return false
			}
			for _, arg := range call.Args[1:] {
				if !st.exprOKIgnoringWritten(arg) {
					return false
				}
			}
			st.collected = append(st.collected, target)
			return true
		}
	}

	switch s.Tok {
	case token.DEFINE:
		// v2 := f(k): a call-free local derived from iteration state
		// extends the allowed set.
		if !st.exprOK(rhs) {
			return false
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		if obj := st.pass.Info.Defs[id]; obj != nil {
			st.allowed[obj] = true
		}
		return true
	case token.ASSIGN:
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// out[key] = rhs: distinct iterations write distinct entries
			// only when the index is exactly the iteration key (any
			// derived expression — including the range value — may
			// collide across iterations). The container itself is
			// exempt from the written-variable check — it is the store
			// target; reads of it anywhere else in the body are still
			// rejected.
			return st.isKeyIdent(l.Index) && st.exprOKIgnoringWritten(l.X) && st.exprOK(rhs)
		case *ast.Ident:
			// x = <constant>: last-writer-wins with the same bits every
			// iteration.
			return isConstant(st.pass, rhs)
		}
		return false
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Exact commutative scalar accumulation (integers and booleans;
		// never floats: float addition is not bitwise-commutative across
		// orders). Colliding indices are fine — the operation commutes.
		if !isExactScalar(st.pass.TypeOf(lhs)) || !st.exprOK(rhs) {
			return false
		}
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			return st.exprOKIgnoringWritten(l.Index) && rootIdent(l.X) != nil
		case *ast.Ident:
			return true
		}
		return false
	}
	return false
}

// isKeyIdent reports whether e is (modulo parens) exactly an iteration
// key variable — the one value guaranteed distinct per iteration.
func (st *bodyState) isKeyIdent(e ast.Expr) bool {
	id := identOf(e)
	if id == nil {
		return false
	}
	obj := st.pass.Info.Uses[id]
	if obj == nil {
		obj = st.pass.Info.Defs[id]
	}
	return obj != nil && st.keys[obj]
}

// exprOK accepts side-effect-free expressions that read no state the
// loop body writes: no calls (conversions and len/cap/min/max are fine)
// and no identifier resolving to a written variable.
func (st *bodyState) exprOK(e ast.Expr) bool {
	return st.exprOKWith(e, true)
}

// exprOKIgnoringWritten is exprOK minus the written-variable check, for
// positions where reading body-written state is harmless: the operand
// of an exactly-commutative update and the values fed to a
// collect-then-sort append (the sort erases the order).
func (st *bodyState) exprOKIgnoringWritten(e ast.Expr) bool {
	return st.exprOKWith(e, false)
}

func (st *bodyState) exprOKWith(e ast.Expr, checkWritten bool) bool {
	if e == nil {
		return false
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, isT := st.pass.Info.Types[n.Fun]; isT && tv.IsType() {
				return true // conversion
			}
			if id := identOf(n.Fun); id != nil {
				if b, isB := st.pass.Info.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			ok = false
			return false
		case *ast.FuncLit:
			ok = false
			return false
		case *ast.Ident:
			if checkWritten {
				if obj := st.pass.Info.Uses[n]; obj != nil && st.written[obj] {
					ok = false
					return false
				}
			}
		}
		return true
	})
	return ok
}

// renderPath renders an ident/selector chain (x, x.f, x.f.g) to a
// canonical string, reporting false for any other shape.
func renderPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.ParenExpr:
		return renderPath(x.X)
	case *ast.SelectorExpr:
		base, ok := renderPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// sortedLater reports whether the collected path (a slice receiving map
// keys) is passed to a sort.* or slices.* call after the loop in the
// same function.
func sortedLater(pass *Pass, body ast.Node, loop *ast.RangeStmt, path string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= loop.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			matches := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if me, isE := m.(ast.Expr); isE {
					if r, okR := renderPath(me); okR && r == path {
						matches = true
						return false
					}
				}
				return true
			})
			if matches {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// isExactScalar reports whether t is a type whose += and bitwise
// accumulation commute exactly: integers and booleans, never floats or
// complex (rounding makes their accumulation order-visible) and never
// strings (+= concatenation is order-visible).
func isExactScalar(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func identOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "expression"
}
