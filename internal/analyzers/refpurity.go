package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
)

// A RefPurityRule declares, for one package, which functions are
// retained reference implementations (Root) and which functions they
// must never call (Forbidden) — the optimized paths they exist to
// validate. Function identities are matched as "Name" for package-level
// functions and "Recv.Name" for methods (pointer receivers stripped);
// calls into another package match as "pkgname.Name".
type RefPurityRule struct {
	PkgPath   string
	Root      *regexp.Regexp
	Forbidden *regexp.Regexp
}

// DefaultRefPurityRules pin the repo's reference/optimized pairs:
//
//   - dist.ConvolveAllExact[With] (the no-sharing, no-in-tree-coarsening
//     reduction) must not call the monoid-optimized ConvolveAll[With] or
//     its executor convolveAllOpt;
//   - lp's dense reference loops (referenceIterate, referencePivot)
//     must not call the sparse iterate/pivot, the tableau compaction or
//     its dirty-row bookkeeping;
//   - absint's map-based reference fixpoint (classifySetIntoReference,
//     fixpoint, inState, classify and the setState/youngerSet domain)
//     must not call the compact array/bitset path (…Compact, cstate);
//   - ipet.NewReferenceSystem must not build the optimized NewSystem.
//
// The differential suites compare the two sides for byte-identity; a
// reference that secretly calls the code under test would make that
// comparison vacuous, which is why this is a lint and not a test.
var DefaultRefPurityRules = []RefPurityRule{
	{
		PkgPath:   "repro/internal/dist",
		Root:      regexp.MustCompile(`^ConvolveAllExact(With|CancelWith)?$`),
		Forbidden: regexp.MustCompile(`^(ConvolveAll|ConvolveAllWith|ConvolveAllCancelWith|convolveAllOpt|convolveAllOptCancel)$`),
	},
	{
		PkgPath:   "repro/internal/lp",
		Root:      regexp.MustCompile(`^Simplex\.reference(Iterate|Pivot)$`),
		Forbidden: regexp.MustCompile(`^Simplex\.(iterate|pivot|compact|markDirty)$`),
	},
	{
		PkgPath:   "repro/internal/absint",
		Root:      regexp.MustCompile(`^Analyzer\.(classifySetIntoReference|fixpoint|inState)$|^classify$|^(setState|youngerSet)\.`),
		Forbidden: regexp.MustCompile(`Compact|^cstate\.`),
	},
	{
		PkgPath:   "repro/internal/ipet",
		Root:      regexp.MustCompile(`^NewReferenceSystem$`),
		Forbidden: regexp.MustCompile(`^NewSystem$|^lp\.NewSimplex$`),
	},
}

// RefPurity returns the refpurity analyzer over the given rules. For
// every function whose identity matches a rule's Root in that rule's
// package, each direct call whose callee identity matches Forbidden is
// reported. Matching is on direct calls by design: the repo's
// reference/optimized split dispatches through runtime flags in shared
// constructors (newSimplex, newAnalyzer), which transitive reachability
// would falsely flag.
func RefPurity(rules []RefPurityRule) *Analyzer {
	a := &Analyzer{
		Name: "refpurity",
		Doc:  "reference implementations must not call the optimized paths they validate",
	}
	a.Run = func(pass *Pass) error {
		var mine []RefPurityRule
		for _, r := range rules {
			if r.PkgPath == pass.Pkg.Path() {
				mine = append(mine, r)
			}
		}
		if len(mine) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := funcIdentity(pass, fd)
				for _, rule := range mine {
					if !rule.Root.MatchString(id) {
						continue
					}
					checkPurity(pass, fd, id, rule)
				}
			}
		}
		return nil
	}
	return a
}

func checkPurity(pass *Pass, fd *ast.FuncDecl, id string, rule RefPurityRule) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeIdentity(pass, call)
		if callee != "" && rule.Forbidden.MatchString(callee) {
			pass.Reportf(call.Pos(),
				"reference implementation %s calls optimized path %s; the reference exists to validate that code and must stay independent of it",
				id, callee)
		}
		return true
	})
}

// funcIdentity renders a declared function as "Name" or "Recv.Name".
func funcIdentity(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	return recvName(t) + "." + fd.Name.Name
}

// calleeIdentity resolves a call expression to a matchable identity:
// "Name" or "Recv.Name" for same-package targets, "pkgname.Name" for
// cross-package ones, "" for calls that cannot be resolved statically
// (function values, interface methods).
func calleeIdentity(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return typesFuncIdentity(pass, fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return typesFuncIdentity(pass, fn)
			}
			return ""
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return typesFuncIdentity(pass, fn)
		}
	}
	return ""
}

func typesFuncIdentity(pass *Pass, fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	name := fn.Name()
	if ok && sig.Recv() != nil {
		name = recvName(sig.Recv().Type()) + "." + name
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
