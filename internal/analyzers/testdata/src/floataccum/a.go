// Corpus for the floataccum analyzer: float compound accumulation is
// flagged when the accumulation order derives from a map iteration or
// from goroutine interleaving, and only then.
package floataccum

import "sync"

// mapAccum: the classic nondeterministic float sum — flagged.
func mapAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation into total.*map iteration`
	}
	return total
}

// mapProduct: *= is just as order-sensitive as += — flagged.
func mapProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation into p.*map iteration`
	}
	return p
}

// sliceAccum: slice iteration order is deterministic — not flagged.
func sliceAccum(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

// intAccum: integer accumulation in a map loop is exact — floataccum
// stays silent (mapiterdet owns that loop, and proves it).
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localPartial: the accumulator lives inside the loop body, one partial
// per key — not flagged.
func localPartial(m map[string][]float64, out map[string]float64) {
	for k, xs := range m {
		partial := 0.0
		for _, x := range xs {
			partial += x
		}
		out[k] = partial
	}
}

// goAccum: a shared accumulator updated inside a go literal — flagged
// (interleaving order, on top of the data race).
func goAccum(xs []float64) float64 {
	var wg sync.WaitGroup
	total := 0.0
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += xs[i] // want `floating-point accumulation into total.*goroutine interleaving`
		}()
	}
	wg.Wait()
	return total
}

// goLocal: per-goroutine partials written to distinct slots — the
// accumulator is declared inside the literal, not flagged.
func goLocal(parts [][]float64, sums []float64) {
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := 0.0
			for _, x := range parts[i] {
				s += x
			}
			sums[i] = s
		}()
	}
	wg.Wait()
}

// suppressed: the ordered alias covers floataccum too.
func suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//pwcetlint:ordered corpus example of a reviewed order-tolerant sum
		total += v
	}
	return total
}
