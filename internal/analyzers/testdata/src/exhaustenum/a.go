// Corpus for the exhaustenum analyzer: switches over module-defined
// iota enums must be exhaustive or carry a terminating default.
package exhaustenum

// Color is an enum in the analyzer's sense: a defined integer type with
// >= 2 same-typed package constants contiguous from 0.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// exhaustive: every member covered — not flagged.
func exhaustive(c Color) string {
	switch c {
	case Red:
		return "r"
	case Green:
		return "g"
	case Blue:
		return "b"
	}
	return ""
}

// panickingDefault: members missing, but the default terminates — not
// flagged.
func panickingDefault(c Color) string {
	switch c {
	case Red:
		return "r"
	default:
		panic("unhandled color")
	}
}

// missingNoDefault: Blue missing and nothing catches it — flagged.
func missingNoDefault(c Color) string {
	switch c { // want `switch over Color is not exhaustive \(missing Blue\) and has no default`
	case Red:
		return "r"
	case Green:
		return "g"
	}
	return ""
}

// silentDefault: the default swallows future members — flagged.
func silentDefault(c Color) int {
	switch c { // want `switch over Color is not exhaustive \(missing Green, Blue\) and its default does not panic`
	case Red:
		return 0
	default:
		return 9
	}
}

// multiValueCase: members may share a clause — not flagged.
func multiValueCase(c Color) bool {
	switch c {
	case Red, Green, Blue:
		return true
	}
	return false
}

// Lone has a single constant: not an enum, switches over it are free.
type Lone int

const Only Lone = 0

func notAnEnum(l Lone) {
	switch l {
	case Only:
	}
}

// Flags is non-contiguous (bitmask values): not an iota enum, so
// non-exhaustive switches over it are fine.
type Flags int

const (
	F1 Flags = 1
	F2 Flags = 2
	F4 Flags = 4
)

func bitmask(f Flags) bool {
	switch f {
	case F1:
		return true
	}
	return false
}

// nonConstantCase: coverage is unknowable — the analyzer stays silent.
func nonConstantCase(c Color, dynamic Color) bool {
	switch c {
	case dynamic:
		return true
	}
	return false
}

// suppressed: a justified directive on the line above the switch.
func suppressed(c Color) string {
	//pwcetlint:exhaustenum corpus example of a reviewed partial switch
	switch c {
	case Red:
		return "r"
	}
	return ""
}

// FaultKind mirrors the fault-scenario kind enum: a contiguous iota
// block that dispatch code switches over. The analyzer must auto-detect
// it like any other enum.
type FaultKind int

const (
	KindPermanent FaultKind = iota
	KindTransient
	KindCombined
)

// scenarioDispatch is the blessed shape of the scenario layer's
// Components/scenarioOf dispatchers: every kind handled, plus a
// panicking default for values outside the enum — not flagged.
func scenarioDispatch(k FaultKind) (pfail, lambda bool) {
	switch k {
	case KindPermanent:
		return true, false
	case KindTransient:
		return false, true
	case KindCombined:
		return true, true
	default:
		panic("unhandled fault kind")
	}
}

// scenarioSilentDefault is the bug the analyzer exists to catch in
// scenario dispatch: adding a fourth kind would silently analyze it as
// permanent instead of stopping — flagged.
func scenarioSilentDefault(k FaultKind) bool {
	switch k { // want `switch over FaultKind is not exhaustive \(missing KindPermanent, KindCombined\) and its default does not panic`
	case KindTransient:
		return true
	default:
		return false
	}
}

// scenarioMissingKind: a dispatcher that forgot the newest kind and has
// no default at all — flagged.
func scenarioMissingKind(k FaultKind) string {
	switch k { // want `switch over FaultKind is not exhaustive \(missing KindCombined\) and has no default`
	case KindPermanent:
		return "permanent"
	case KindTransient:
		return "transient"
	}
	return ""
}
