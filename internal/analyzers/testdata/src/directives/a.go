// Corpus for the directive hygiene rules of the driver itself: unknown
// names, missing justifications and unused directives are all reported
// under the pseudo-analyzer "pwcetlint". The wants ride in block
// comments so they can share a line with the directive under test.
package directives

/* want `unknown directive //pwcetlint:bogus` */ //pwcetlint:bogus well-meant but misspelled
func unknownName()                               {}

/* want `directive needs a one-line justification` */ //pwcetlint:mapiterdet
func missingJustification()                           {}

/* want `unused suppression directive //pwcetlint:refpurity` */ //pwcetlint:refpurity nothing here to suppress
func unusedDirective()                                          {}

/* want `unused suppression directive //pwcetlint:ordered` */ //pwcetlint:ordered this loop is provable, so the directive is stale
func staleOnProvableLoop(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
