// Corpus for the refpurity analyzer, run with a rule where functions
// matching ^Reference must not call FastSum or Engine.fastRun.
package refpurity

// FastSum is the "optimized path" of this corpus.
func FastSum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// slowSum is an unrelated helper: calling it is always fine.
func slowSum(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// ReferenceSum is a root and calls the forbidden function — flagged.
func ReferenceSum(xs []int) int {
	return FastSum(xs) // want `reference implementation ReferenceSum calls optimized path FastSum`
}

// ReferencePure is a root that stays on its own helpers — not flagged.
func ReferencePure(xs []int) int {
	return slowSum(xs)
}

// Caller is not a root: it may call the optimized path freely.
func Caller(xs []int) int {
	return FastSum(xs)
}

type Engine struct{ n int }

func (e *Engine) fastRun() int { return e.n * 2 }

func (e *Engine) helper() int { return e.n }

// ReferenceRun is a root method calling a forbidden method — flagged.
func (e *Engine) ReferenceRun() int {
	return e.fastRun() // want `reference implementation Engine\.ReferenceRun calls optimized path Engine\.fastRun`
}

// ReferenceHelper calls a non-forbidden method — not flagged.
func (e *Engine) ReferenceHelper() int {
	return e.helper()
}

// ReferenceShared: the call is justified and suppressed.
func ReferenceShared(xs []int) int {
	//pwcetlint:refpurity corpus example of a reviewed shared prologue
	return FastSum(xs)
}
