// Corpus for the mapiterdet analyzer: the package path is configured as
// determinism-critical by the test, so every map range here must be
// proven order-insensitive, suppressed, or flagged.
package mapiterdet

import "sort"

// keysSorted is the canonical collect-then-sort: proven, not flagged.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type holder struct {
	ids []int
}

// collectSelector: collect-then-sort through a selector target — the
// false-positive shape fixed for program/build.go's loop bodies.
func (h *holder) collectSelector(set map[int]bool) {
	for id := range set {
		h.ids = append(h.ids, id)
	}
	sort.Ints(h.ids)
}

// keysUnsorted collects without a later sort: flagged.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m has nondeterministic order`
		out = append(out, k)
	}
	return out
}

// sumInts: exact commutative scalar accumulation — proven.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sumFloats: float accumulation is never order-exact — flagged.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `iteration over map m has nondeterministic order`
		total += v
	}
	return total
}

// histogram: indexed exact increment commutes even on colliding keys.
func histogram(m map[string]int) map[int]int {
	hist := make(map[int]int)
	for _, v := range m {
		hist[v]++
	}
	return hist
}

// copyKeyed: plain store indexed by exactly the iteration key — distinct
// iterations write distinct entries. Proven, including the comma-ok read
// and the conversion on the right-hand side.
func copyKeyed(m map[string]int, keep map[string]bool) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		if ok := keep[k]; ok {
			out[k] = int64(v)
		}
	}
	return out
}

// invert stores keyed by the VALUE variable: two keys with equal values
// collide and last-writer-wins depends on iteration order. Flagged —
// this is the rev[v] = k false negative the exact-key rule exists for.
func invert(m map[string]int) map[int]string {
	rev := make(map[int]string, len(m))
	for k, v := range m { // want `iteration over map m has nondeterministic order`
		rev[v] = k
	}
	return rev
}

// cappedInsert reads len(out) while writing out: which five entries
// survive depends on iteration order. Flagged — the written-variable
// rule exists for this cap-limited-insertion shape.
func cappedInsert(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range m { // want `iteration over map m has nondeterministic order`
		if len(out) < 5 {
			out[k] = v
		}
	}
	return out
}

// pruneByKey deletes by exactly the iteration key: proven.
func pruneByKey(m map[string]int, drop map[string]bool) {
	for k := range drop {
		delete(m, k)
	}
}

// pruneByValue deletes by the value variable, which can collide with a
// keyed write of another iteration. Flagged.
func pruneByValue(index map[string]string, m map[string]int) {
	for _, v := range index { // want `iteration over map index has nondeterministic order`
		delete(index, v)
	}
	_ = m
}

// maxConst: constant store commutes (same bits every iteration).
func maxConst(m map[string]int) bool {
	any := false
	for range m {
		any = true
	}
	return any
}

// suppressed: unprovable (method call in body) but carries a reviewed
// justification, so no finding survives — and the directive counts as
// used, so no unused-directive report either.
func suppressed(m map[string]*holder, set map[int]bool) {
	//pwcetlint:ordered collectSelector sorts its output, so per-entry call order is invisible
	for _, h := range m {
		h.collectSelector(set)
	}
}

// scenario mirrors the comparable fault-scenario structs that key
// memoized sweep results: struct-keyed maps get no free pass.
type scenario struct {
	pfail, lambda float64
}

// memoizeByScenario stores keyed by exactly the iteration key: distinct
// scenarios write distinct entries — proven.
func memoizeByScenario(results map[scenario]int) map[scenario]int64 {
	out := make(map[scenario]int64, len(results))
	for s, v := range results {
		out[s] = int64(v)
	}
	return out
}

// emitScenarioRows appends sweep rows straight out of a scenario-keyed
// map: the output row order is nondeterministic — flagged. Sweep
// emitters must iterate the ordered query grid, not the memo table.
func emitScenarioRows(results map[scenario]int) []int {
	var rows []int
	for _, v := range results { // want `iteration over map results has nondeterministic order`
		rows = append(rows, v)
	}
	return rows
}
