package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ExhaustEnum returns the exhaustenum analyzer for enums declared in
// packages whose import path starts with modulePrefix. An enum is a
// defined integer type with at least two package-level constants of
// that exact type whose values are contiguous from 0 — the shape of the
// repo's iota blocks (cache.Mechanism, dist.CoarsenStrategy, lp.Op,
// chmc.Class, the classification kinds). A switch over an enum value
// must either cover every member or carry a default that panics (or
// otherwise terminates: log.Fatal, os.Exit): a silent default turns the
// addition of an enum member into wrong results instead of a loud stop,
// which for a soundness-critical pipeline is the worse failure mode.
func ExhaustEnum(modulePrefix string) *Analyzer {
	a := &Analyzer{
		Name: "exhaustenum",
		Doc:  "switches over module-defined int enums (iota blocks) must be exhaustive or carry a panicking default",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, sw, modulePrefix)
				return true
			})
		}
		return nil
	}
	return a
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, modulePrefix string) {
	t := pass.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	defPath := obj.Pkg().Path()
	if defPath != modulePrefix && !strings.HasPrefix(defPath, modulePrefix+"/") {
		return
	}
	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 || !contiguousFromZero(members) {
		return
	}

	covered := map[int64]bool{}
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return // non-constant case: coverage unknowable, stay silent
			}
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				return
			}
			covered[v] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.value] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt != nil && terminates(pass, deflt.Body) {
		return
	}
	enumName := obj.Name()
	if obj.Pkg().Path() != pass.Pkg.Path() {
		enumName = obj.Pkg().Name() + "." + obj.Name()
	}
	if deflt == nil {
		pass.Reportf(sw.Switch,
			"switch over %s is not exhaustive (missing %s) and has no default; cover every member or add a panicking default",
			enumName, strings.Join(missing, ", "))
	} else {
		pass.Reportf(sw.Switch,
			"switch over %s is not exhaustive (missing %s) and its default does not panic; a silent default hides new enum members",
			enumName, strings.Join(missing, ", "))
	}
}

type enumMember struct {
	name  string
	value int64
}

// enumMembers collects the package-level constants of exactly type t,
// deduplicated by value (aliases count once), sorted by value.
func enumMembers(pkg *types.Package, t *types.Named) []enumMember {
	byValue := map[int64]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			continue
		}
		if prev, dup := byValue[v]; !dup || name < prev {
			byValue[v] = name
		}
	}
	members := make([]enumMember, 0, len(byValue))
	for v, name := range byValue {
		members = append(members, enumMember{name: name, value: v})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].value < members[j].value })
	return members
}

func contiguousFromZero(ms []enumMember) bool {
	for i, m := range ms {
		if m.value != int64(i) {
			return false
		}
	}
	return true
}

// terminates reports whether the default clause's body always stops the
// program on the paths it handles: it contains a panic, log.Fatal*,
// os.Exit or t.Fatal* call (directly or inside nested blocks).
func terminates(pass *Pass, body []ast.Stmt) bool {
	found := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if b, isB := pass.Info.Uses[fun].(*types.Builtin); isB && b.Name() == "panic" {
					found = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fatal") || name == "Exit" || name == "Panic" || strings.HasPrefix(name, "Panic") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
