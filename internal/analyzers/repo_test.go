package analyzers

import (
	"strings"
	"testing"
)

// TestRepoCleanAndDirectivesLoadBearing is the in-process version of the
// CI lint gate, plus the guarantee the directive corpus stays honest:
//
//  1. the production suite over the whole module reports nothing, and
//  2. removing ANY single //pwcetlint: directive makes the suite report
//     again — every suppression in the tree covers a live finding, so a
//     reviewer can trust that each justification was written against
//     real code, not left behind by refactoring.
//
// (2) is checked by blanking one directive comment at a time in the
// loaded syntax trees and re-running the suite on the affected package.
func TestRepoCleanAndDirectivesLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
	if t.Failed() {
		return
	}

	checked := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					orig := c.Text
					c.Text = "// directive blanked by TestRepoCleanAndDirectivesLoadBearing"
					after, err := Run([]*Package{pkg}, All())
					c.Text = orig
					if err != nil {
						t.Fatal(err)
					}
					if len(after) == 0 {
						t.Errorf("%s: removing directive %q surfaces no finding; the suppression is stale",
							pkg.Fset.Position(c.Pos()), orig)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Error("no //pwcetlint: directives found in the module; expected the reviewed absint annotations")
	}
}
