// Package report renders analysis results as text: aligned tables, CSV
// series and ASCII exceedance plots (the Figure 3 style). It is shared
// by the command-line tools and tested independently of them.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes rows under a header with columns padded to their widest
// cell. All rows must have len(header) cells.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row has %d cells, header %d", len(row), len(header))
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	return nil
}

// CSV writes a header and rows as comma-separated values (cells must not
// contain commas — analysis output never does).
func CSV(w io.Writer, header []string, rows [][]string) error {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row has %d cells, header %d", len(row), len(header))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	return nil
}

// Curve is one exceedance curve of a plot: Quantile(p) must return the
// pWCET at exceedance probability p.
type Curve struct {
	Name     string
	Symbol   byte
	Quantile func(p float64) int64
}

// ExceedancePlot renders curves in the paper's Figure 3 style: the y
// axis spans probability decades from 1 down to 10^minExp, the x axis
// spans [lo, hi] cycles linearly. Curves are drawn by their symbol; on
// collisions the later curve wins (draw the most important last).
func ExceedancePlot(w io.Writer, lo, hi int64, width int, minExp int, curves []Curve) {
	if hi <= lo || width < 8 {
		return
	}
	col := func(x int64) int {
		c := int(float64(width-1) * float64(x-lo) / float64(hi-lo))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for exp := 0; exp >= minExp; exp -= 2 {
		p := math.Pow(10, float64(exp))
		line := []byte(strings.Repeat(" ", width))
		for _, c := range curves {
			line[col(c.Quantile(p))] = c.Symbol
		}
		fmt.Fprintf(w, "1e%-4d |%s\n", exp, string(line))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "        %-12d%*d (cycles)\n", lo, width-12, hi)
	var legend []string
	for _, c := range curves {
		legend = append(legend, fmt.Sprintf("%c=%s", c.Symbol, c.Name))
	}
	fmt.Fprintf(w, "        %s\n", strings.Join(legend, ", "))
}
