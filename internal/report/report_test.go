package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"name", "value"}, [][]string{
		{"a", "1"},
		{"long-name", "123456"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// Columns align: "value"/"1"/"123456" start at the same offset.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[1][off:], "1") {
		t.Errorf("row 1 misaligned: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2][off:], "123456") {
		t.Errorf("row 2 misaligned: %q", lines[2])
	}
}

func TestTableRowWidthChecked(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, []string{"a", "b"}, [][]string{{"only-one"}}); err == nil {
		t.Error("short row accepted")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	if err := CSV(&sb, []string{"x"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("wide row accepted")
	}
}

func TestExceedancePlot(t *testing.T) {
	var sb strings.Builder
	// A step curve: quantile 100 above 1e-4, then 900.
	q := func(p float64) int64 {
		if p >= 1e-4 {
			return 100
		}
		return 900
	}
	ExceedancePlot(&sb, 0, 1000, 40, -8, []Curve{{Name: "test", Symbol: 'x', Quantile: q}})
	out := sb.String()
	lines := strings.Split(out, "\n")
	// 5 probability rows (0,-2,-4,-6,-8) + axis + labels + legend.
	if len(lines) < 8 {
		t.Fatalf("plot too short:\n%s", out)
	}
	// The symbol appears on every probability row.
	count := strings.Count(out, "x")
	if count < 5 {
		t.Errorf("symbol drawn %d times, want >= 5:\n%s", count, out)
	}
	// Low-probability rows place the mark to the right of high-probability ones.
	first := strings.Index(lines[0], "x")
	last := strings.Index(lines[4], "x")
	if last <= first {
		t.Errorf("step curve not monotone in the plot (col %d -> %d)", first, last)
	}
	if !strings.Contains(out, "x=test") {
		t.Error("legend missing")
	}
}

func TestExceedancePlotDegenerate(t *testing.T) {
	var sb strings.Builder
	ExceedancePlot(&sb, 5, 5, 40, -4, nil) // hi == lo: no output, no panic
	if sb.Len() != 0 {
		t.Error("degenerate plot produced output")
	}
}
