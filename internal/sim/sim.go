// Package sim validates the static pWCET analysis against concrete
// execution: it samples fault maps from the paper's fault model, runs the
// cycle-accurate cache simulator over program paths, and checks the
// soundness obligations of the method:
//
//  1. per fault map, the measured execution time never exceeds the
//     fault-free WCET plus the sum of the per-set FMM penalties for the
//     realized fault counts (the additive bound behind Section II.C);
//  2. across sampled fault maps, the empirical exceedance of any
//     threshold never exceeds the analytical complementary CDF beyond
//     statistical noise.
//
// The validator is used by the test suite and exposed through
// cmd/pwcet -validate so users can audit any configuration.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/program"
)

// Report summarizes a Monte-Carlo validation run.
type Report struct {
	// Samples is the number of fault maps drawn.
	Samples int
	// PathsPerSample is the number of random paths simulated per map.
	PathsPerSample int
	// MaxTime is the largest simulated execution time observed.
	MaxTime int64
	// MaxBound is the largest per-fault-map analytical bound observed.
	MaxBound int64
	// BoundViolations counts simulations exceeding their per-map bound
	// (must be zero for a sound analysis).
	BoundViolations int
	// CCDFViolations counts thresholds where the empirical exceedance
	// exceeded the analytical CCDF beyond the confidence slack (must be
	// zero).
	CCDFViolations int
	// WorstGapRatio is max over simulations of time/bound (<= 1).
	WorstGapRatio float64
	// MeanTime is the average simulated time (for tightness reporting).
	MeanTime float64
}

// PenaltyBound returns the analytical penalty bound (in cycles) of one
// concrete fault map under the result's mechanism: the sum over sets of
// the FMM entry for the realized (mechanism-adjusted) fault count. When
// the precise SRB analysis is available and the map has at most one
// entirely faulty set (its soundness precondition), the tighter precise
// FMM is used.
func PenaltyBound(res *core.Result, fm cache.FaultMap) int64 {
	cfg := res.Options.Cache
	fmm := res.FMM
	if res.FMMPrecise != nil {
		full := 0
		for s := 0; s < cfg.Sets; s++ {
			if fm.NumFaulty(s) == cfg.Ways {
				full++
			}
		}
		if full <= 1 {
			fmm = res.FMMPrecise
		}
	}
	var bound int64
	for s := 0; s < cfg.Sets; s++ {
		f := fm.NumFaulty(s)
		if res.Options.Mechanism == cache.MechanismRW && fm[s][0] {
			f-- // the reliable way masks its own fault (Section III.B.1)
		}
		bound += fmm[s][f] * cfg.MissPenalty()
	}
	return bound
}

// DataPenaltyBound returns the analytical data-cache penalty bound of a
// concrete data-cache fault map (analyses with Options.DataCache only).
func DataPenaltyBound(res *core.Result, dfm cache.FaultMap) int64 {
	dcfg := *res.Options.DataCache
	var bound int64
	for s := 0; s < dcfg.Sets; s++ {
		f := dfm.NumFaulty(s)
		if res.Options.Mechanism == cache.MechanismRW && dfm[s][0] {
			f--
		}
		bound += res.DataFMM[s][f] * dcfg.MissPenalty()
	}
	return bound
}

// Validate samples fault maps and random paths and checks the soundness
// obligations. It returns a report; a sound analysis yields
// BoundViolations == 0 and CCDFViolations == 0. Analyses carrying a data
// cache are simulated with both caches against independently sampled
// fault maps.
func Validate(p *program.Program, res *core.Result, samples, pathsPerSample int, seed int64) (*Report, error) {
	if samples < 1 || pathsPerSample < 1 {
		return nil, fmt.Errorf("sim: need at least one sample and one path")
	}
	cfg := res.Options.Cache
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{Samples: samples, PathsPerSample: pathsPerSample}

	var penalties []int64 // realized per-map penalty bound, for CCDF check
	var totalTime float64
	var n int
	for i := 0; i < samples; i++ {
		fm := res.Model.SampleFaultMap(rng, cfg)
		bound := res.FaultFreeWCET + PenaltyBound(res, fm)
		var dfm cache.FaultMap
		if res.DataFMM != nil {
			dfm = res.DataModel.SampleFaultMap(rng, *res.Options.DataCache)
			bound += DataPenaltyBound(res, dfm)
		}
		penalties = append(penalties, bound-res.FaultFreeWCET)
		if bound > rep.MaxBound {
			rep.MaxBound = bound
		}
		for j := 0; j < pathsPerSample; j++ {
			var time int64
			if res.DataFMM != nil {
				accesses, err := p.TraceAccesses(program.RandomChooser(rng), 50_000_000)
				if err != nil {
					return nil, err
				}
				isim := cache.NewSim(cfg, res.Options.Mechanism, fm)
				dsim := cache.NewSim(*res.Options.DataCache, res.Options.Mechanism, dfm)
				for _, acc := range accesses {
					if acc.Data {
						dsim.Access(acc.Addr)
					} else {
						isim.Access(acc.Addr)
					}
				}
				time = isim.Time + dsim.Time
			} else {
				tr, err := p.Trace(program.RandomChooser(rng), 50_000_000)
				if err != nil {
					return nil, err
				}
				s := cache.NewSim(cfg, res.Options.Mechanism, fm)
				s.AccessAll(tr)
				time = s.Time
			}
			if time > rep.MaxTime {
				rep.MaxTime = time
			}
			totalTime += float64(time)
			n++
			if time > bound {
				rep.BoundViolations++
			}
			if ratio := float64(time) / float64(bound); ratio > rep.WorstGapRatio {
				rep.WorstGapRatio = ratio
			}
		}
	}
	rep.MeanTime = totalTime / float64(n)

	// Empirical exceedance of the *analytical per-map penalty* must be
	// dominated by the analytical penalty distribution: the realized
	// penalty bound of a sampled map is a draw from a distribution that
	// the convolution upper-bounds. Check at each decile threshold with
	// a 5-sigma binomial slack. (Adversarial fault placement is covered
	// separately by ValidateAdversarial.)
	for _, q := range []float64{0.5, 0.2, 0.1, 0.05, 0.01} {
		t := res.Penalty.QuantileExceedance(q)
		exceed := 0
		for _, pen := range penalties {
			if pen > t {
				exceed++
			}
		}
		pHat := float64(exceed) / float64(len(penalties))
		pAna := res.Penalty.CCDF(t)
		slack := 5 * math.Sqrt(pAna*(1-pAna)/float64(len(penalties)))
		if pHat > pAna+slack+1e-9 {
			rep.CCDFViolations++
		}
	}
	return rep, nil
}

// ValidateAdversarial checks the per-map bound against *worst-case*
// fault placements rather than random ones: whole-set kills and
// partial kills of the sets with the largest FMM entries, where the
// analysis has the least slack. Random sampling at realistic pfail
// almost never produces these maps, so this is the sharper probe of the
// FMM's soundness. Returns the number of bound violations (0 for a
// sound analysis).
func ValidateAdversarial(p *program.Program, res *core.Result, pathsPerMap int, seed int64) (int, error) {
	cfg := res.Options.Cache
	if res.DataFMM != nil {
		return 0, fmt.Errorf("sim: adversarial validation does not support data caches")
	}
	rng := rand.New(rand.NewSource(seed))

	// Rank sets by their worst FMM column.
	type ranked struct {
		set   int
		worst int64
	}
	order := make([]ranked, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		order[s].set = s
		for _, v := range res.FMM[s] {
			if v > order[s].worst {
				order[s].worst = v
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].worst > order[j].worst })

	var maps []cache.FaultMap
	// Kill the top-k hottest sets entirely, k = 1..3.
	for k := 1; k <= 3 && k <= cfg.Sets; k++ {
		fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
		for i := 0; i < k; i++ {
			for w := 0; w < cfg.Ways; w++ {
				fm[order[i].set][w] = true
			}
		}
		maps = append(maps, fm)
	}
	// Partial kills: f = 1..W-1 ways of every set simultaneously.
	for f := 1; f < cfg.Ways; f++ {
		fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
		for s := 0; s < cfg.Sets; s++ {
			for w := 0; w < f; w++ {
				fm[s][w] = true
			}
		}
		maps = append(maps, fm)
	}
	// Hottest set fully dead plus one faulty way everywhere else.
	fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		fm[order[0].set][w] = true
	}
	for s := 0; s < cfg.Sets; s++ {
		fm[s][0] = true
	}
	maps = append(maps, fm)

	violations := 0
	for _, fm := range maps {
		bound := res.FaultFreeWCET + PenaltyBound(res, fm)
		for j := 0; j < pathsPerMap; j++ {
			tr, err := p.Trace(program.RandomChooser(rng), 50_000_000)
			if err != nil {
				return violations, err
			}
			s := cache.NewSim(cfg, res.Options.Mechanism, fm)
			s.AccessAll(tr)
			if s.Time > bound {
				violations++
			}
		}
	}
	return violations, nil
}
