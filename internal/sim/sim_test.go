package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/malardalen"
	"repro/internal/progen"
	"repro/internal/program"
)

// validateBench runs the Monte-Carlo validator on one benchmark and
// mechanism with an elevated pfail (so sampled maps actually contain
// faults) and asserts zero violations.
func validateBench(t *testing.T, name string, mech cache.Mechanism) {
	t.Helper()
	p, err := malardalen.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(p, core.Options{
		Pfail:     2e-3, // pbf ~ 23%: faults are frequent in samples
		Mechanism: mech,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(p, res, 40, 2, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundViolations != 0 {
		t.Errorf("%s/%v: %d bound violations (max time %d, max bound %d)",
			name, mech, rep.BoundViolations, rep.MaxTime, rep.MaxBound)
	}
	if rep.CCDFViolations != 0 {
		t.Errorf("%s/%v: %d CCDF violations", name, mech, rep.CCDFViolations)
	}
	if rep.WorstGapRatio > 1 {
		t.Errorf("%s/%v: worst gap ratio %f > 1", name, mech, rep.WorstGapRatio)
	}
	if rep.MaxTime < res.FaultFreeWCET/10 {
		t.Errorf("%s/%v: simulated times suspiciously low (%d vs WCET %d)",
			name, mech, rep.MaxTime, res.FaultFreeWCET)
	}
}

func TestValidateSmallBenchmarks(t *testing.T) {
	for _, name := range []string{"bs", "fibcall", "prime", "insertsort"} {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			name, mech := name, mech
			t.Run(name+"/"+mech.String(), func(t *testing.T) {
				t.Parallel()
				validateBench(t, name, mech)
			})
		}
	}
}

func TestValidateMediumBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("medium benchmark validation is slow")
	}
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			t.Parallel()
			validateBench(t, "qurt", mech)
		})
	}
}

func TestValidateRandomPrograms(t *testing.T) {
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			res, err := core.Analyze(p, core.Options{Cache: cfg, Pfail: 5e-3, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Validate(p, res, 25, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if rep.BoundViolations != 0 {
				t.Fatalf("seed %d mech %v: %d bound violations", seed, mech, rep.BoundViolations)
			}
		}
	}
}

// TestValidatePreciseSRB checks the soundness of the mixture analysis:
// the per-map bound (which uses the precise FMM only when its
// single-fully-faulty-set precondition holds) must dominate every
// simulation, even at fault rates where whole sets die frequently.
func TestValidatePreciseSRB(t *testing.T) {
	for _, name := range []string{"bs", "fibcall", "insertsort"} {
		p, err := malardalen.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		// Very high pbf so that fully-faulty sets (and occasionally
		// several of them) occur in the samples.
		res, err := core.Analyze(p, core.Options{
			Pfail:      6e-3, // pbf ~ 54%
			Mechanism:  cache.MechanismSRB,
			PreciseSRB: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FMMPrecise == nil {
			t.Fatal("precise FMM missing")
		}
		rep, err := Validate(p, res, 60, 2, 99)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BoundViolations != 0 {
			t.Errorf("%s: %d bound violations with precise SRB", name, rep.BoundViolations)
		}
	}
}

// TestValidateWithDataCache runs the Monte-Carlo check on an analysis
// covering both caches: instruction and data fault maps are sampled
// independently and both simulators contribute to the execution time.
func TestValidateWithDataCache(t *testing.T) {
	b := program.New("datakernel")
	b.Func("main").
		Ops(4).
		Loop(15, func(l *program.Body) {
			l.Load(0x2000).Ops(2).Load(0x2010).Ops(2).Store(0x2020)
		}).
		Ops(2)
	p := b.MustBuild()
	dcfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		res, err := core.Analyze(p, core.Options{
			Cache:     cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
			Pfail:     5e-3,
			Mechanism: mech,
			DataCache: &dcfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Validate(p, res, 50, 2, 17)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BoundViolations != 0 {
			t.Errorf("%v: %d bound violations with data cache", mech, rep.BoundViolations)
		}
		if rep.CCDFViolations != 0 {
			t.Errorf("%v: %d CCDF violations with data cache", mech, rep.CCDFViolations)
		}
	}
}

func TestPenaltyBoundRWMasksWayZero(t *testing.T) {
	p, err := malardalen.Get("bs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(p, core.Options{Pfail: 1e-4, Mechanism: cache.MechanismRW})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Options.Cache
	// Fault only in way 0 of each set: fully masked by the RW.
	fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
	for s := range fm {
		fm[s][0] = true
	}
	if got := PenaltyBound(res, fm); got != 0 {
		t.Errorf("PenaltyBound with only way-0 faults under RW = %d, want 0", got)
	}
}

// TestAdversarialFaultMaps probes the FMM bound with worst-case fault
// placements (hottest sets killed, uniform partial kills) across the
// suite's small benchmarks and all mechanisms.
func TestAdversarialFaultMaps(t *testing.T) {
	for _, name := range []string{"bs", "fibcall", "prime", "expint", "matmult"} {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			name, mech := name, mech
			t.Run(name+"/"+mech.String(), func(t *testing.T) {
				t.Parallel()
				p, err := malardalen.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Analyze(p, core.Options{Pfail: 1e-4, Mechanism: mech})
				if err != nil {
					t.Fatal(err)
				}
				v, err := ValidateAdversarial(p, res, 3, 5)
				if err != nil {
					t.Fatal(err)
				}
				if v != 0 {
					t.Errorf("%d bound violations under adversarial fault maps", v)
				}
			})
		}
	}
}

func TestAdversarialRandomPrograms(t *testing.T) {
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismSRB} {
			res, err := core.Analyze(p, core.Options{Cache: cfg, Pfail: 1e-3, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			v, err := ValidateAdversarial(p, res, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if v != 0 {
				t.Fatalf("seed %d mech %v: %d adversarial violations", seed, mech, v)
			}
		}
	}
}

func TestValidateArgChecks(t *testing.T) {
	p, _ := malardalen.Get("bs")
	res, err := core.Analyze(p, core.Options{Pfail: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(p, res, 0, 1, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Validate(p, res, 1, 0, 1); err == nil {
		t.Error("zero paths accepted")
	}
}
