package program

import "fmt"

// protoBlock is a basic block of a single (not yet inlined) function.
// Instruction offsets are assigned after emission in creation order, which
// by construction of the emitter equals layout (address) order.
type protoBlock struct {
	idx    int
	n      int // instruction count
	offset int // instruction offset within the function
	data   []DataAccess
	succs  []int
	call   string // non-empty: block ends with a call to this function
	resume int    // proto index of the block following the call
}

type protoLoop struct {
	header, bodySucc, exitSucc int
	latch                      int
	bound                      int64
}

type protoFunc struct {
	name     string
	blocks   []*protoBlock
	loops    []*protoLoop
	entry    int
	exit     int
	numInstr int
	addr     uint32
}

type emitter struct{ f *protoFunc }

func (e *emitter) newBlock() *protoBlock {
	pb := &protoBlock{idx: len(e.f.blocks), resume: -1}
	e.f.blocks = append(e.f.blocks, pb)
	return pb
}

func (e *emitter) link(from, to *protoBlock) {
	from.succs = append(from.succs, to.idx)
}

// emitFunc lowers a function definition to its proto-CFG. Layout: the
// emitter creates blocks in address order, so the post-pass simply assigns
// cumulative offsets.
func emitFunc(def *funcDef) (*protoFunc, error) {
	f := &protoFunc{name: def.name}
	e := &emitter{f: f}
	entry := e.newBlock()
	f.entry = entry.idx
	last, err := e.emit(def.body, entry)
	if err != nil {
		return nil, err
	}
	last.n++ // function epilogue (return instruction)
	f.exit = last.idx

	off := 0
	for _, pb := range f.blocks {
		pb.offset = off
		off += pb.n
	}
	f.numInstr = off
	return f, nil
}

// emit lowers a statement sequence starting in block cur and returns the
// block control falls through to afterwards. The returned block is always
// the most recently created block (or cur itself), which keeps creation
// order equal to address order.
func (e *emitter) emit(bd *Body, cur *protoBlock) (*protoBlock, error) {
	for _, it := range bd.items {
		switch it.kind {
		case itemOps:
			cur.n += it.n

		case itemLoad, itemStore:
			cur.data = append(cur.data, DataAccess{
				Index: cur.n,
				Addr:  it.addr,
				Store: it.kind == itemStore,
			})
			cur.n++ // the load/store instruction itself

		case itemCall:
			cur.n++ // the call instruction (jal)
			if cur.call != "" {
				return nil, fmt.Errorf("internal: block already ends with a call")
			}
			cur.call = it.callee
			resume := e.newBlock()
			cur.resume = resume.idx
			cur = resume

		case itemLoop:
			header := e.newBlock()
			header.n = 2 // condition evaluation + conditional branch
			e.link(cur, header)
			bodyEntry := e.newBlock()
			e.link(header, bodyEntry)
			bodyExit, err := e.emit(it.body, bodyEntry)
			if err != nil {
				return nil, err
			}
			bodyExit.n++ // jump back to the header
			e.link(bodyExit, header)
			after := e.newBlock()
			e.link(header, after)
			e.f.loops = append(e.f.loops, &protoLoop{
				header:   header.idx,
				bodySucc: bodyEntry.idx,
				exitSucc: after.idx,
				latch:    bodyExit.idx,
				bound:    it.bound,
			})
			cur = after

		case itemIf:
			cur.n++ // conditional branch
			cond := cur
			thenEntry := e.newBlock()
			e.link(cond, thenEntry)
			thenExit, err := e.emit(it.then, thenEntry)
			if err != nil {
				return nil, err
			}
			if it.els != nil {
				thenExit.n++ // jump over the else branch
				elseEntry := e.newBlock()
				e.link(cond, elseEntry)
				elseExit, err := e.emit(it.els, elseEntry)
				if err != nil {
					return nil, err
				}
				join := e.newBlock()
				e.link(thenExit, join)
				e.link(elseExit, join)
				cur = join
			} else {
				join := e.newBlock()
				e.link(thenExit, join)
				e.link(cond, join)
				cur = join
			}

		case itemSwitch:
			cur.n++ // dispatch (indexed jump)
			cond := cur
			exits := make([]*protoBlock, 0, len(it.cases))
			for _, c := range it.cases {
				caseEntry := e.newBlock()
				e.link(cond, caseEntry)
				caseExit, err := e.emit(c, caseEntry)
				if err != nil {
					return nil, err
				}
				caseExit.n++ // jump to the join point
				exits = append(exits, caseExit)
			}
			join := e.newBlock()
			for _, x := range exits {
				e.link(x, join)
			}
			cur = join

		default:
			return nil, fmt.Errorf("internal: unknown item kind %d", it.kind)
		}
	}
	return cur, nil
}
