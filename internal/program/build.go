package program

import (
	"fmt"
	"sort"
)

// Build assembles the program: it lowers every function to a proto-CFG,
// lays functions out sequentially from the base address, virtually inlines
// calls starting from the entry function (the first one defined), and
// computes loop nesting. Recursion (direct or mutual) is rejected.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, fmt.Errorf("program %s: %w", b.name, b.err)
	}
	if len(b.order) == 0 {
		return nil, fmt.Errorf("program %s: no functions defined", b.name)
	}

	protos := make(map[string]*protoFunc, len(b.order))
	for _, name := range b.order {
		pf, err := emitFunc(b.funcs[name])
		if err != nil {
			return nil, fmt.Errorf("program %s, function %s: %w", b.name, name, err)
		}
		protos[name] = pf
	}

	// Layout: functions back to back in definition order.
	addr := b.baseAddr
	for _, name := range b.order {
		pf := protos[name]
		pf.addr = addr
		addr += uint32(pf.numInstr * InstrBytes)
	}

	p := &Program{Name: b.name}
	inl := &inliner{b: b, protos: protos, p: p, inlined: make(map[string]int)}
	entry, exit, err := inl.instantiate(b.order[0], nil)
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", b.name, err)
	}
	p.Entry, p.Exit = entry, exit

	for _, name := range b.order {
		pf := protos[name]
		p.Funcs = append(p.Funcs, FuncInfo{
			Name:       name,
			Addr:       pf.addr,
			NumInstr:   pf.numInstr,
			NumInlined: inl.inlined[name],
		})
	}

	fillPreds(p)
	if err := computeLoopNesting(p); err != nil {
		return nil, fmt.Errorf("program %s: %w", b.name, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for the static
// benchmark suite, whose programs are fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

type inliner struct {
	b       *Builder
	protos  map[string]*protoFunc
	p       *Program
	inlined map[string]int
}

// instantiate creates a fresh copy of fname's blocks and loops in the
// program (a new call context), recursively splicing callees at call
// sites. Addresses are the function's own, so all contexts of a function
// share its cache footprint. chain carries the call stack for recursion
// detection.
func (in *inliner) instantiate(fname string, chain []string) (entryID, exitID int, err error) {
	pf, ok := in.protos[fname]
	if !ok {
		return 0, 0, fmt.Errorf("call to undefined function %q", fname)
	}
	for _, c := range chain {
		if c == fname {
			return 0, 0, fmt.Errorf("recursion detected: %v -> %s", chain, fname)
		}
	}
	in.inlined[fname]++
	chain = append(chain, fname)

	idmap := make([]int, len(pf.blocks))
	for i, pb := range pf.blocks {
		nb := &Block{
			ID:       len(in.p.Blocks),
			Addr:     pf.addr + uint32(pb.offset*InstrBytes),
			NumInstr: pb.n,
			Data:     append([]DataAccess(nil), pb.data...),
			Func:     fname,
			Loop:     -1,
		}
		in.p.Blocks = append(in.p.Blocks, nb)
		idmap[i] = nb.ID
	}
	for i, pb := range pf.blocks {
		from := idmap[i]
		if pb.call != "" {
			ce, cx, err := in.instantiate(pb.call, chain)
			if err != nil {
				return 0, 0, err
			}
			in.p.Blocks[from].Succs = append(in.p.Blocks[from].Succs, ce)
			in.p.Blocks[cx].Succs = append(in.p.Blocks[cx].Succs, idmap[pb.resume])
			continue
		}
		for _, s := range pb.succs {
			in.p.Blocks[from].Succs = append(in.p.Blocks[from].Succs, idmap[s])
		}
	}
	for _, pl := range pf.loops {
		in.p.Loops = append(in.p.Loops, &Loop{
			ID:       len(in.p.Loops),
			Header:   idmap[pl.header],
			Bound:    pl.bound,
			Parent:   -1,
			BodySucc: idmap[pl.bodySucc],
			ExitSucc: idmap[pl.exitSucc],
			Back:     []Edge{{From: idmap[pl.latch], To: idmap[pl.header]}},
		})
	}
	return idmap[pf.entry], idmap[pf.exit], nil
}

func fillPreds(p *Program) {
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			p.Blocks[s].Preds = append(p.Blocks[s].Preds, b.ID)
		}
	}
}

// computeLoopNesting computes, for every loop, its natural-loop member
// set, its entry edges and its parent; and for every block, the innermost
// containing loop.
func computeLoopNesting(p *Program) error {
	sets := make([]map[int]bool, len(p.Loops))
	for i, l := range p.Loops {
		set := map[int]bool{l.Header: true}
		var stack []int
		for _, e := range l.Back {
			if !set[e.From] {
				set[e.From] = true
				stack = append(stack, e.From)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, q := range p.Blocks[n].Preds {
				if !set[q] {
					set[q] = true
					stack = append(stack, q)
				}
			}
		}
		sets[i] = set
		l.Blocks = l.Blocks[:0]
		for id := range set {
			l.Blocks = append(l.Blocks, id)
		}
		sort.Ints(l.Blocks)
		l.Entries = l.Entries[:0]
		for _, q := range p.Blocks[l.Header].Preds {
			if !set[q] {
				l.Entries = append(l.Entries, Edge{From: q, To: l.Header})
			}
		}
	}

	// Innermost loop per block: the smallest containing member set.
	for _, blk := range p.Blocks {
		best := -1
		for i := range p.Loops {
			if !sets[i][blk.ID] {
				continue
			}
			if best == -1 || len(sets[i]) < len(sets[best]) {
				best = i
			}
		}
		blk.Loop = best
	}

	// Parent: the smallest loop strictly containing the header (other
	// than the loop itself). Builder-produced loops are properly nested,
	// so containment of the header implies containment of the whole loop.
	for i, l := range p.Loops {
		best := -1
		for j := range p.Loops {
			if j == i || !sets[j][l.Header] {
				continue
			}
			if len(sets[j]) <= len(sets[i]) {
				return fmt.Errorf("loops %d and %d are not properly nested", i, j)
			}
			if best == -1 || len(sets[j]) < len(sets[best]) {
				best = j
			}
		}
		l.Parent = best
	}
	return nil
}
