package program

import (
	"math/rand"
	"strings"
	"testing"
)

func TestStraightLine(t *testing.T) {
	b := New("straight")
	b.Func("main").Ops(10)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumInstructions(); got != 11 { // 10 ops + return
		t.Errorf("NumInstructions = %d, want 11", got)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
	if p.Entry != p.Exit {
		t.Error("straight-line program must have entry == exit")
	}
	tr, err := p.Trace(FirstChooser, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 11 {
		t.Errorf("trace length = %d, want 11", len(tr))
	}
	for i, a := range tr {
		if a != uint32(i*InstrBytes) {
			t.Fatalf("trace[%d] = %#x, want %#x", i, a, i*InstrBytes)
		}
	}
}

func TestLoopStructure(t *testing.T) {
	b := New("loop")
	b.Func("main").Ops(2).Loop(5, func(l *Body) { l.Ops(3) }).Ops(1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(p.Loops))
	}
	l := p.Loops[0]
	if l.Bound != 5 {
		t.Errorf("bound = %d, want 5", l.Bound)
	}
	if l.Parent != -1 {
		t.Errorf("parent = %d, want -1", l.Parent)
	}
	hd := p.Blocks[l.Header]
	if hd.NumInstr != 2 {
		t.Errorf("header size = %d, want 2", hd.NumInstr)
	}
	if len(hd.Succs) != 2 {
		t.Fatalf("header successors = %d, want 2", len(hd.Succs))
	}
	// Total instructions: 2 (pre) + 2 (header) + 3 (body) + 1 (latch jump)
	// + 1 (post) + 1 (return) = 10.
	if got := p.NumInstructions(); got != 10 {
		t.Errorf("NumInstructions = %d, want 10", got)
	}
	// Trace: pre(2) + 6 header visits (2 each) + 5 iterations of (3+1) +
	// post(1) + return(1) = 2 + 12 + 20 + 2 = 36.
	tr, err := p.Trace(FirstChooser, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 36 {
		t.Errorf("trace length = %d, want 36", len(tr))
	}
}

func TestNestedLoops(t *testing.T) {
	b := New("nested")
	b.Func("main").Loop(3, func(outer *Body) {
		outer.Ops(1)
		outer.Loop(4, func(inner *Body) { inner.Ops(2) })
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(p.Loops))
	}
	var outer, inner *Loop
	for _, l := range p.Loops {
		if l.Bound == 3 {
			outer = l
		} else if l.Bound == 4 {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("could not identify loops by bound")
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if outer.Parent != -1 {
		t.Errorf("outer.Parent = %d, want -1", outer.Parent)
	}
	if p.Blocks[inner.Header].Loop != inner.ID {
		t.Errorf("inner header innermost loop = %d, want %d", p.Blocks[inner.Header].Loop, inner.ID)
	}
	if p.Blocks[outer.Header].Loop != outer.ID {
		t.Errorf("outer header innermost loop = %d, want %d", p.Blocks[outer.Header].Loop, outer.ID)
	}
	// Inner body instructions appear 3*4 = 12 times in the trace.
	tr, err := p.Trace(FirstChooser, 100000)
	if err != nil {
		t.Fatal(err)
	}
	innerBody := p.Blocks[inner.BodySucc]
	count := 0
	for _, a := range tr {
		if a == innerBody.Addr {
			count++
		}
	}
	if count != 12 {
		t.Errorf("inner body executed %d times, want 12", count)
	}
}

func TestIfElseLayoutAndTrace(t *testing.T) {
	b := New("ifelse")
	b.Func("main").
		Ops(1).
		If(func(then *Body) { then.Ops(5) }, func(els *Body) { els.Ops(7) }).
		Ops(2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 1 op + 1 branch | then 5 + 1 jump | else 7 | join 2 + 1 ret.
	if got := p.NumInstructions(); got != 18 {
		t.Errorf("NumInstructions = %d, want 18", got)
	}
	// then path: 2 + 6 + 3 = 11 fetches; else path: 2 + 7 + 3 = 12.
	trThen, err := p.Trace(FirstChooser, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(trThen) != 11 {
		t.Errorf("then trace = %d fetches, want 11", len(trThen))
	}
	second := func(_ int, succs []int) int { return succs[1] }
	trElse, err := p.Trace(second, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(trElse) != 12 {
		t.Errorf("else trace = %d fetches, want 12", len(trElse))
	}
}

func TestIfWithoutElse(t *testing.T) {
	b := New("ifnoelse")
	b.Func("main").If(func(then *Body) { then.Ops(3) }, nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 1 branch + 3 then + 1 return = 5.
	if got := p.NumInstructions(); got != 5 {
		t.Errorf("NumInstructions = %d, want 5", got)
	}
	tr, _ := p.Trace(FirstChooser, 100)
	if len(tr) != 5 {
		t.Errorf("then trace = %d, want 5", len(tr))
	}
	second := func(_ int, succs []int) int { return succs[1] }
	tr2, _ := p.Trace(second, 100)
	if len(tr2) != 2 {
		t.Errorf("skip trace = %d, want 2 (branch + return)", len(tr2))
	}
}

func TestSwitch(t *testing.T) {
	b := New("switch")
	b.Func("main").Switch(
		func(c *Body) { c.Ops(2) },
		func(c *Body) { c.Ops(4) },
		func(c *Body) { c.Ops(6) },
	)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 1 dispatch + (2+1) + (4+1) + (6+1) + 1 return = 17.
	if got := p.NumInstructions(); got != 17 {
		t.Errorf("NumInstructions = %d, want 17", got)
	}
	for i, want := range []int{1 + 3 + 1, 1 + 5 + 1, 1 + 7 + 1} {
		i := i
		tr, err := p.Trace(func(_ int, succs []int) int { return succs[i] }, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != want {
			t.Errorf("case %d trace = %d fetches, want %d", i, len(tr), want)
		}
	}
}

func TestCallSharedAddresses(t *testing.T) {
	b := New("calls")
	b.Func("main").Call("leaf").Ops(1).Call("leaf")
	b.Func("leaf").Ops(4)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Two contexts of leaf instantiated.
	var leafInfo FuncInfo
	for _, f := range p.Funcs {
		if f.Name == "leaf" {
			leafInfo = f
		}
	}
	if leafInfo.NumInlined != 2 {
		t.Errorf("leaf inlined %d times, want 2", leafInfo.NumInlined)
	}
	// Both contexts cover the same addresses.
	var leafBlocks []*Block
	for _, blk := range p.Blocks {
		if blk.Func == "leaf" {
			leafBlocks = append(leafBlocks, blk)
		}
	}
	if len(leafBlocks) != 2 {
		t.Fatalf("leaf block copies = %d, want 2", len(leafBlocks))
	}
	if leafBlocks[0].Addr != leafBlocks[1].Addr || leafBlocks[0].NumInstr != leafBlocks[1].NumInstr {
		t.Error("leaf contexts must share the same address range")
	}
	// The trace visits the leaf address range twice.
	tr, err := p.Trace(FirstChooser, 1000)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range tr {
		if a == leafBlocks[0].Addr {
			count++
		}
	}
	if count != 2 {
		t.Errorf("leaf entry fetched %d times, want 2", count)
	}
}

func TestCallInLoop(t *testing.T) {
	b := New("callloop")
	b.Func("main").Loop(10, func(l *Body) { l.Call("work") })
	b.Func("work").Ops(3)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Trace(FirstChooser, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// work body (3 ops + return = 4 instr) executed 10 times.
	var workAddr uint32
	for _, f := range p.Funcs {
		if f.Name == "work" {
			workAddr = f.Addr
		}
	}
	count := 0
	for _, a := range tr {
		if a == workAddr {
			count++
		}
	}
	if count != 10 {
		t.Errorf("work entered %d times, want 10", count)
	}
}

func TestRecursionRejected(t *testing.T) {
	b := New("rec")
	b.Func("main").Call("a")
	b.Func("a").Call("b")
	b.Func("b").Call("a")
	if _, err := b.Build(); err == nil {
		t.Error("mutual recursion not rejected")
	}
	b2 := New("selfrec")
	b2.Func("main").Call("main")
	if _, err := b2.Build(); err == nil {
		t.Error("self recursion not rejected")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := New("bad")
	b.Func("main").Ops(0)
	if _, err := b.Build(); err == nil {
		t.Error("Ops(0) not rejected")
	}
	b2 := New("bad2")
	b2.Func("main").Loop(0, func(*Body) {})
	if _, err := b2.Build(); err == nil {
		t.Error("Loop(0) not rejected")
	}
	b3 := New("bad3")
	b3.Func("main")
	b3.Func("main")
	if _, err := b3.Build(); err == nil {
		t.Error("duplicate function not rejected")
	}
	b4 := New("bad4")
	b4.Func("main").Call("missing")
	if _, err := b4.Build(); err == nil {
		t.Error("call to undefined function not rejected")
	}
	b5 := New("bad5")
	if _, err := b5.Build(); err == nil {
		t.Error("empty program not rejected")
	}
	b6 := New("bad6")
	b6.Func("main").Switch(func(*Body) {})
	if _, err := b6.Build(); err == nil {
		t.Error("1-case switch not rejected")
	}
}

func TestFunctionLayoutSequential(t *testing.T) {
	b := New("layout")
	b.SetBaseAddr(0x100)
	b.Func("main").Ops(3).Call("f").Call("g")
	b.Func("f").Ops(8)
	b.Func("g").Ops(2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Addr != 0x100 {
		t.Errorf("main at %#x, want 0x100", p.Funcs[0].Addr)
	}
	// main: 3 ops + 2 calls + return = 6 instructions.
	if p.Funcs[1].Addr != 0x100+6*InstrBytes {
		t.Errorf("f at %#x, want %#x", p.Funcs[1].Addr, 0x100+6*InstrBytes)
	}
	// f: 8 + return = 9 instructions.
	if p.Funcs[2].Addr != 0x100+(6+9)*InstrBytes {
		t.Errorf("g at %#x, want %#x", p.Funcs[2].Addr, 0x100+(6+9)*InstrBytes)
	}
	// Address ranges of distinct functions must not overlap.
	if p.MaxAddr() != 0x100+uint32((6+9+3)*InstrBytes) {
		t.Errorf("MaxAddr = %#x", p.MaxAddr())
	}
}

func TestTraceDeterministic(t *testing.T) {
	p := buildComplex(t)
	t1, err := p.Trace(FirstChooser, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Trace(FirstChooser, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatal("trace not deterministic")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace differs at %d", i)
		}
	}
}

func TestRandomTracesTerminate(t *testing.T) {
	p := buildComplex(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if _, err := p.Trace(RandomChooser(rng), 1e6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func buildComplex(t *testing.T) *Program {
	t.Helper()
	b := New("complex")
	b.Func("main").
		Ops(4).
		Loop(6, func(l *Body) {
			l.If(func(then *Body) {
				then.Call("helper")
			}, func(els *Body) {
				els.Ops(2).Switch(
					func(c *Body) { c.Ops(1) },
					func(c *Body) { c.Loop(3, func(i *Body) { i.Ops(2) }) },
				)
			})
		}).
		Call("helper")
	b.Func("helper").Loop(4, func(l *Body) { l.Ops(5) })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestComplexValidates(t *testing.T) {
	p := buildComplex(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// helper is called from two contexts: inside the loop and after it;
	// each context has its own loop copy, so loops: main's loop + switch
	// case loop + 2 copies of helper's loop = 4.
	if len(p.Loops) != 4 {
		t.Errorf("loops = %d, want 4", len(p.Loops))
	}
	if p.Blocks[p.Exit].NumInstr == 0 {
		t.Log("exit block empty (join) — acceptable")
	}
	if ids := p.BlocksInAddrOrder(); len(ids) != len(p.Blocks) {
		t.Error("BlocksInAddrOrder dropped blocks")
	}
}

func TestBlockAddrs(t *testing.T) {
	b := &Block{Addr: 0x20, NumInstr: 3}
	got := b.Addrs()
	want := []uint32{0x20, 0x24, 0x28}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Addrs[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if b.EndAddr() != 0x2c {
		t.Errorf("EndAddr = %#x, want 0x2c", b.EndAddr())
	}
}

func TestDump(t *testing.T) {
	p := buildComplex(t)
	out := p.Dump()
	if len(out) == 0 {
		t.Fatal("empty dump")
	}
	for _, want := range []string{"program complex", "b0", "L0", "header"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	// One line per block plus loops plus header.
	lines := strings.Count(out, "\n")
	if lines < len(p.Blocks)+len(p.Loops) {
		t.Errorf("dump has %d lines for %d blocks + %d loops", lines, len(p.Blocks), len(p.Loops))
	}
}
