package program

import (
	"fmt"
	"math/rand"
)

// Chooser selects the successor to follow at a branch block that is not a
// loop header (if/switch). It receives the block ID and its successors and
// must return one element of succs.
type Chooser func(block int, succs []int) int

// FirstChooser always takes the first successor (the then-branch / first
// case).
func FirstChooser(_ int, succs []int) int { return succs[0] }

// RandomChooser returns a Chooser drawing uniformly from the successors
// using the given source.
func RandomChooser(rng *rand.Rand) Chooser {
	return func(_ int, succs []int) int { return succs[rng.Intn(len(succs))] }
}

// Trace executes the program symbolically and returns the sequence of
// instruction fetch addresses. Loops iterate exactly their bound; at other
// branches the chooser decides. maxInstrs caps the trace length and
// returns an error when exceeded (guards against mis-built CFGs).
func (p *Program) Trace(choose Chooser, maxInstrs int) ([]uint32, error) {
	headerLoop := make(map[int]*Loop, len(p.Loops))
	for _, l := range p.Loops {
		headerLoop[l.Header] = l
	}

	type frame struct {
		loop      *Loop
		remaining int64
	}
	var stack []frame
	out := make([]uint32, 0, 1024)
	cur := p.Entry
	for {
		b := p.Blocks[cur]
		if len(out)+b.NumInstr > maxInstrs {
			return nil, fmt.Errorf("program %s: trace exceeds %d instructions", p.Name, maxInstrs)
		}
		for i := 0; i < b.NumInstr; i++ {
			out = append(out, b.Addr+uint32(i*InstrBytes))
		}
		if cur == p.Exit {
			return out, nil
		}

		var next int
		switch l := headerLoop[cur]; {
		case l != nil:
			if len(stack) > 0 && stack[len(stack)-1].loop == l {
				top := &stack[len(stack)-1]
				if top.remaining > 0 {
					top.remaining--
					next = l.BodySucc
				} else {
					stack = stack[:len(stack)-1]
					next = l.ExitSucc
				}
			} else {
				stack = append(stack, frame{loop: l, remaining: l.Bound - 1})
				next = l.BodySucc
			}
		case len(b.Succs) == 1:
			next = b.Succs[0]
		case len(b.Succs) == 0:
			return nil, fmt.Errorf("program %s: dead end at block %d", p.Name, cur)
		default:
			next = choose(cur, b.Succs)
			if !contains(b.Succs, next) {
				return nil, fmt.Errorf("program %s: chooser returned %d, not a successor of %d", p.Name, next, cur)
			}
		}
		cur = next
	}
}

// Access is one memory operation of an execution trace: an instruction
// fetch or a data access issued by a load/store instruction.
type Access struct {
	Addr  uint32
	Data  bool
	Store bool
}

// TraceAccesses is like Trace but interleaves data accesses with the
// instruction fetches that issue them, for joint I-cache/D-cache
// simulation.
func (p *Program) TraceAccesses(choose Chooser, maxLen int) ([]Access, error) {
	blocks, err := p.TraceBlocks(choose, maxLen)
	if err != nil {
		return nil, err
	}
	out := make([]Access, 0, 4*len(blocks))
	for _, id := range blocks {
		b := p.Blocks[id]
		di := 0
		for i := 0; i < b.NumInstr; i++ {
			if len(out)+2 > maxLen {
				return nil, fmt.Errorf("program %s: access trace exceeds %d entries", p.Name, maxLen)
			}
			out = append(out, Access{Addr: b.Addr + uint32(i*InstrBytes)})
			for di < len(b.Data) && b.Data[di].Index == i {
				out = append(out, Access{Addr: b.Data[di].Addr, Data: true, Store: b.Data[di].Store})
				di++
			}
		}
	}
	return out, nil
}

// TraceBlocks is like Trace but returns the sequence of visited block IDs
// instead of instruction addresses.
func (p *Program) TraceBlocks(choose Chooser, maxBlocks int) ([]int, error) {
	headerLoop := make(map[int]*Loop, len(p.Loops))
	for _, l := range p.Loops {
		headerLoop[l.Header] = l
	}
	type frame struct {
		loop      *Loop
		remaining int64
	}
	var stack []frame
	var out []int
	cur := p.Entry
	for {
		if len(out) >= maxBlocks {
			return nil, fmt.Errorf("program %s: block trace exceeds %d blocks", p.Name, maxBlocks)
		}
		out = append(out, cur)
		if cur == p.Exit {
			return out, nil
		}
		b := p.Blocks[cur]
		var next int
		switch l := headerLoop[cur]; {
		case l != nil:
			if len(stack) > 0 && stack[len(stack)-1].loop == l {
				top := &stack[len(stack)-1]
				if top.remaining > 0 {
					top.remaining--
					next = l.BodySucc
				} else {
					stack = stack[:len(stack)-1]
					next = l.ExitSucc
				}
			} else {
				stack = append(stack, frame{loop: l, remaining: l.Bound - 1})
				next = l.BodySucc
			}
		case len(b.Succs) == 1:
			next = b.Succs[0]
		case len(b.Succs) == 0:
			return nil, fmt.Errorf("program %s: dead end at block %d", p.Name, cur)
		default:
			next = choose(cur, b.Succs)
		}
		cur = next
	}
}
