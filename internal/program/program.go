// Package program provides a structured mini-IR for authoring benchmark
// programs, a deterministic assembler that lays them out as a MIPS-like
// stream of fixed-size instructions, and the control-flow graph (CFG) the
// WCET analyses operate on.
//
// This package replaces the paper's "MIPS R2000/R3000 binary code compiled
// with gcc 4.1" substrate: the static analyses only consume (a) the
// instruction addresses covered by each basic block and (b) the CFG with
// loop bounds, which is exactly what this package produces. Calls are
// virtually inlined (one CFG copy per call context, as in Heptane), while
// preserving callee addresses so shared code keeps a shared cache
// footprint.
package program

import (
	"fmt"
	"sort"
	"strings"
)

// InstrBytes is the size of one instruction in bytes (MIPS-like fixed
// 32-bit encoding).
const InstrBytes = 4

// DataAccess is a data-memory access issued by one instruction of a
// block (a scalar load or store at a statically-known address). Data
// accesses drive the data-cache analysis, the future-work extension of
// the paper's Section VI.
type DataAccess struct {
	// Index is the issuing instruction's position within the block.
	Index int
	// Addr is the byte address of the accessed datum.
	Addr uint32
	// Store marks write accesses (the analysis treats them as
	// write-allocate loads; see internal/core).
	Store bool
}

// Block is a basic block of the assembled program: NumInstr consecutive
// instructions starting at Addr, with CFG edges to successor blocks.
type Block struct {
	// ID is the block's index in Program.Blocks.
	ID int
	// Addr is the byte address of the block's first instruction.
	Addr uint32
	// NumInstr is the number of instructions in the block (may be 0 for
	// structural join blocks, which cost nothing and issue no fetches).
	NumInstr int
	// Data lists the block's data accesses in issue order.
	Data []DataAccess
	// Succs and Preds are CFG edges, as block IDs.
	Succs, Preds []int
	// Func is the name of the function this block was emitted from
	// (shared between call contexts).
	Func string
	// Loop is the ID of the innermost loop containing the block, or -1.
	Loop int
}

// Addrs returns the byte address of every instruction in the block.
func (b *Block) Addrs() []uint32 {
	out := make([]uint32, b.NumInstr)
	for i := range out {
		out[i] = b.Addr + uint32(i*InstrBytes)
	}
	return out
}

// EndAddr returns the address one past the last instruction of the block.
func (b *Block) EndAddr() uint32 { return b.Addr + uint32(b.NumInstr*InstrBytes) }

// Edge is a directed CFG edge.
type Edge struct{ From, To int }

// Loop describes a natural loop of the CFG with a user-provided bound.
type Loop struct {
	// ID is the loop's index in Program.Loops.
	ID int
	// Header is the block ID of the loop header (the condition test).
	Header int
	// Bound is the maximum number of body executions per loop entry.
	Bound int64
	// Parent is the ID of the enclosing loop, or -1 for outermost loops.
	Parent int
	// BodySucc and ExitSucc are the header's successors entering the body
	// and leaving the loop, respectively.
	BodySucc, ExitSucc int
	// Back are the back edges (latch -> header).
	Back []Edge
	// Entries are the edges entering the header from outside the loop.
	Entries []Edge
	// Blocks lists the member block IDs (header included).
	Blocks []int
}

// FuncInfo records the address range of a function for reporting.
type FuncInfo struct {
	Name       string
	Addr       uint32
	NumInstr   int
	NumInlined int // number of call contexts instantiated
}

// Program is an assembled benchmark: a CFG over address-mapped basic
// blocks, with loop bounds. It is immutable after Build.
type Program struct {
	Name   string
	Blocks []*Block
	Loops  []*Loop
	Funcs  []FuncInfo
	// Entry and Exit are block IDs of the unique entry and exit.
	Entry, Exit int
}

// NumInstructions returns the total static instruction count (code size /
// InstrBytes). Inlined call contexts share addresses, so this counts each
// function's code once.
func (p *Program) NumInstructions() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstr
	}
	return n
}

// CodeBytes returns the static code size in bytes.
func (p *Program) CodeBytes() int { return p.NumInstructions() * InstrBytes }

// Block returns the block with the given ID.
func (p *Program) Block(id int) *Block { return p.Blocks[id] }

// LoopOf returns the innermost loop containing block id, or nil.
func (p *Program) LoopOf(id int) *Loop {
	if l := p.Blocks[id].Loop; l >= 0 {
		return p.Loops[l]
	}
	return nil
}

// Validate checks structural invariants of the assembled program. A nil
// return guarantees the CFG is usable by the analyses: consistent edges,
// reachable exit, positive bounds, headers with exactly two successors.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program %s: no blocks", p.Name)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("program %s: block %d has ID %d", p.Name, i, b.ID)
		}
		if b.NumInstr < 0 {
			return fmt.Errorf("program %s: block %d has negative size", p.Name, i)
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(p.Blocks) {
				return fmt.Errorf("program %s: block %d has out-of-range successor %d", p.Name, i, s)
			}
			if !contains(p.Blocks[s].Preds, i) {
				return fmt.Errorf("program %s: edge %d->%d missing from preds", p.Name, i, s)
			}
		}
		for _, q := range b.Preds {
			if !contains(p.Blocks[q].Succs, i) {
				return fmt.Errorf("program %s: pred edge %d->%d missing from succs", p.Name, q, i)
			}
		}
	}
	if len(p.Blocks[p.Exit].Succs) != 0 {
		return fmt.Errorf("program %s: exit block %d has successors", p.Name, p.Exit)
	}
	if len(p.Blocks[p.Entry].Preds) != 0 {
		return fmt.Errorf("program %s: entry block %d has predecessors", p.Name, p.Entry)
	}
	// Every block reachable from entry must reach exit (no traps).
	seen := make([]bool, len(p.Blocks))
	var stack []int
	stack = append(stack, p.Entry)
	seen[p.Entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Blocks[n].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !seen[p.Exit] {
		return fmt.Errorf("program %s: exit unreachable from entry", p.Name)
	}
	for _, l := range p.Loops {
		if l.Bound < 1 {
			return fmt.Errorf("program %s: loop %d has bound %d < 1", p.Name, l.ID, l.Bound)
		}
		if len(l.Back) == 0 {
			return fmt.Errorf("program %s: loop %d has no back edge", p.Name, l.ID)
		}
		for _, e := range l.Back {
			if e.To != l.Header {
				return fmt.Errorf("program %s: loop %d back edge %v does not target header %d",
					p.Name, l.ID, e, l.Header)
			}
		}
		if len(l.Entries) == 0 {
			return fmt.Errorf("program %s: loop %d has no entry edge", p.Name, l.ID)
		}
	}
	return nil
}

// MaxAddr returns the highest instruction address used, plus InstrBytes.
func (p *Program) MaxAddr() uint32 {
	var max uint32
	for _, b := range p.Blocks {
		if e := b.EndAddr(); e > max {
			max = e
		}
	}
	return max
}

// BlocksInAddrOrder returns block IDs sorted by start address (stable on
// ties, empty blocks included). Useful for deterministic reporting.
func (p *Program) BlocksInAddrOrder() []int {
	ids := make([]int, len(p.Blocks))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return p.Blocks[ids[a]].Addr < p.Blocks[ids[b]].Addr })
	return ids
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Dump renders the CFG as text for debugging: one line per block with
// address range, function, loop membership, data accesses and edges,
// followed by the loop table.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s: %d blocks, %d loops, entry %d, exit %d\n",
		p.Name, len(p.Blocks), len(p.Loops), p.Entry, p.Exit)
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "  b%-3d %#06x+%-3d %-12s", b.ID, b.Addr, b.NumInstr, b.Func)
		if b.Loop >= 0 {
			fmt.Fprintf(&sb, " L%d", b.Loop)
		} else {
			fmt.Fprint(&sb, "   ")
		}
		if len(b.Data) > 0 {
			fmt.Fprintf(&sb, " data:%d", len(b.Data))
		}
		fmt.Fprintf(&sb, " -> %v\n", b.Succs)
	}
	for _, l := range p.Loops {
		fmt.Fprintf(&sb, "  L%-3d header b%d bound %d parent %d body %v\n",
			l.ID, l.Header, l.Bound, l.Parent, l.Blocks)
	}
	return sb.String()
}
