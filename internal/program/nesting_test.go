package program

import (
	"testing"
)

// TestDeepNesting exercises every construct nested inside every other.
func TestDeepNesting(t *testing.T) {
	b := New("deep")
	b.Func("main").
		Loop(2, func(l1 *Body) {
			l1.Switch(
				func(c *Body) {
					c.Loop(3, func(l2 *Body) {
						l2.If(func(then *Body) {
							then.Call("h")
						}, func(els *Body) {
							els.Loop(2, func(l3 *Body) { l3.Ops(1) })
						})
					})
				},
				func(c *Body) { c.Ops(2) },
			)
		})
	b.Func("h").If(func(then *Body) { then.Ops(1) }, nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Loops: l1, l2, l3 = 3 (h has none).
	if len(p.Loops) != 3 {
		t.Errorf("loops = %d, want 3", len(p.Loops))
	}
	// l3's parent is l2, l2's parent is l1, l1 outermost.
	byBound := map[int64]*Loop{}
	for _, l := range p.Loops {
		byBound[l.Bound] = l
	}
	l1, l2, l3 := byBound[2], byBound[3], byBound[2] // ambiguous: two bound-2 loops
	_ = l1
	_ = l3
	if l2 == nil {
		t.Fatal("bound-3 loop missing")
	}
	if l2.Parent == -1 {
		t.Error("middle loop must have a parent")
	}
	// The trace through the first case terminates.
	if _, err := p.Trace(FirstChooser, 100000); err != nil {
		t.Fatal(err)
	}
}

// TestAddressPartition checks that the blocks of each function exactly
// partition its address range: no gaps, no overlaps.
func TestAddressPartition(t *testing.T) {
	p := buildComplex(t)
	// Group blocks by function and dedupe by address (call contexts
	// share addresses).
	perFunc := map[string]map[uint32]int{} // addr -> numInstr
	for _, blk := range p.Blocks {
		if blk.NumInstr == 0 {
			continue
		}
		m := perFunc[blk.Func]
		if m == nil {
			m = make(map[uint32]int)
			perFunc[blk.Func] = m
		}
		if n, ok := m[blk.Addr]; ok && n != blk.NumInstr {
			t.Fatalf("two blocks at %#x with different sizes", blk.Addr)
		}
		m[blk.Addr] = blk.NumInstr
	}
	for _, f := range p.Funcs {
		m := perFunc[f.Name]
		covered := 0
		for addr, n := range m {
			if addr < f.Addr || addr+uint32(n*InstrBytes) > f.Addr+uint32(f.NumInstr*InstrBytes) {
				t.Fatalf("%s: block at %#x outside function range", f.Name, addr)
			}
			covered += n
		}
		if covered != f.NumInstr {
			t.Errorf("%s: blocks cover %d instructions, function has %d", f.Name, covered, f.NumInstr)
		}
	}
}

// TestConsecutiveCallsAndLoops stresses the resume-block chaining.
func TestConsecutiveCallsAndLoops(t *testing.T) {
	b := New("chain")
	b.Func("main").
		Call("a").Call("a").Call("b").
		Loop(2, func(l *Body) { l.Call("b") }).
		Call("a")
	b.Func("a").Ops(2)
	b.Func("b").Loop(3, func(l *Body) { l.Ops(1) })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var aInfo, bInfo FuncInfo
	for _, f := range p.Funcs {
		switch f.Name {
		case "a":
			aInfo = f
		case "b":
			bInfo = f
		}
	}
	if aInfo.NumInlined != 3 {
		t.Errorf("a inlined %d times, want 3", aInfo.NumInlined)
	}
	if bInfo.NumInlined != 2 {
		t.Errorf("b inlined %d times, want 2", bInfo.NumInlined)
	}
	// b's loop appears once per context.
	if len(p.Loops) != 3 { // main's loop + 2 copies of b's loop
		t.Errorf("loops = %d, want 3", len(p.Loops))
	}
	tr, err := p.Trace(FirstChooser, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// a: 3 executions of 3 instructions (2 ops + ret); b executed 3
	// times total (once direct + twice in loop), each 3 + 3*2 + ... just
	// check non-empty and terminating.
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
}

// TestLoopAsFirstAndLastStatement checks empty entry/exit chaining.
func TestLoopAsFirstAndLastStatement(t *testing.T) {
	b := New("edges")
	b.Func("main").Loop(2, func(l *Body) { l.Ops(1) })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Entry block is empty (the function starts with a loop).
	if p.Blocks[p.Entry].NumInstr != 0 {
		t.Log("entry block non-empty (acceptable, layout-dependent)")
	}
	// Exit block carries the return instruction.
	if p.Blocks[p.Exit].NumInstr != 1 {
		t.Errorf("exit block has %d instructions, want 1 (return)", p.Blocks[p.Exit].NumInstr)
	}
}
