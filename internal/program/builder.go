package program

import "fmt"

// Builder assembles a named program from structured function definitions.
// Functions are laid out in memory in definition order, starting at
// BaseAddr; the first function defined is the program entry point.
type Builder struct {
	name     string
	baseAddr uint32
	funcs    map[string]*funcDef
	order    []string
	err      error
}

// New returns a Builder for a program with the given name. Programs are
// laid out starting at address 0 by default (the paper uses the default
// gcc/linker layout; the analyses only depend on relative placement).
func New(name string) *Builder {
	return &Builder{name: name, funcs: make(map[string]*funcDef)}
}

// SetBaseAddr changes the address of the first instruction of the first
// function. It must be a multiple of InstrBytes.
func (b *Builder) SetBaseAddr(addr uint32) *Builder {
	if addr%InstrBytes != 0 {
		b.fail(fmt.Errorf("base address %#x not instruction-aligned", addr))
		return b
	}
	b.baseAddr = addr
	return b
}

// Func defines a function and returns the Body used to populate it.
// The first function defined is the entry point. Defining the same name
// twice is an error reported by Build.
func (b *Builder) Func(name string) *Body {
	body := &Body{builder: b}
	if _, dup := b.funcs[name]; dup {
		b.fail(fmt.Errorf("function %q defined twice", name))
		return body
	}
	b.funcs[name] = &funcDef{name: name, body: body}
	b.order = append(b.order, name)
	return body
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

type funcDef struct {
	name string
	body *Body
}

// Body is a sequence of structured statements inside a function, loop
// body, conditional branch or switch case.
type Body struct {
	builder *Builder
	items   []item
}

type itemKind int

const (
	itemOps itemKind = iota
	itemLoop
	itemIf
	itemCall
	itemSwitch
	itemLoad
	itemStore
)

type item struct {
	kind   itemKind
	n      int     // itemOps: instruction count
	bound  int64   // itemLoop
	body   *Body   // itemLoop
	then   *Body   // itemIf
	els    *Body   // itemIf (nil for if-without-else)
	callee string  // itemCall
	cases  []*Body // itemSwitch
	addr   uint32  // itemLoad/itemStore: data address
}

// Ops appends n straight-line instructions (arithmetic, loads of
// immediates, ... — anything without control flow). n must be positive.
func (bd *Body) Ops(n int) *Body {
	if n <= 0 {
		bd.builder.fail(fmt.Errorf("Ops(%d): count must be positive", n))
		return bd
	}
	bd.items = append(bd.items, item{kind: itemOps, n: n})
	return bd
}

// Loop appends a counted loop whose body executes at most bound times per
// entry of the loop. The loop header costs 2 instructions per test
// (condition + branch) and the body ends with a 1-instruction jump back.
func (bd *Body) Loop(bound int64, f func(*Body)) *Body {
	if bound < 1 {
		bd.builder.fail(fmt.Errorf("Loop(%d): bound must be >= 1", bound))
		return bd
	}
	inner := &Body{builder: bd.builder}
	if f != nil {
		f(inner)
	}
	bd.items = append(bd.items, item{kind: itemLoop, bound: bound, body: inner})
	return bd
}

// If appends a two-way conditional. els may be nil for an if-without-else.
// The condition costs 1 instruction; a taken then-branch with an else
// costs 1 extra jump instruction.
func (bd *Body) If(then, els func(*Body)) *Body {
	t := &Body{builder: bd.builder}
	if then != nil {
		then(t)
	}
	var e *Body
	if els != nil {
		e = &Body{builder: bd.builder}
		els(e)
	}
	bd.items = append(bd.items, item{kind: itemIf, then: t, els: e})
	return bd
}

// Call appends a call to the named function (1 instruction at the call
// site). The callee is virtually inlined at Build time; recursion is
// rejected.
func (bd *Body) Call(name string) *Body {
	bd.items = append(bd.items, item{kind: itemCall, callee: name})
	return bd
}

// Load appends one load instruction reading the scalar at the given
// data address. Data accesses feed the data-cache analysis (the paper's
// future-work extension); programs without loads/stores analyze the
// instruction cache only.
func (bd *Body) Load(addr uint32) *Body {
	bd.items = append(bd.items, item{kind: itemLoad, addr: addr})
	return bd
}

// Store appends one store instruction writing the scalar at the given
// data address (analyzed as a write-allocate access).
func (bd *Body) Store(addr uint32) *Body {
	bd.items = append(bd.items, item{kind: itemStore, addr: addr})
	return bd
}

// Switch appends an n-way branch (1 dispatch instruction) whose cases each
// end with a jump to the common join point. At least two cases are
// required; use If for two-way conditionals with fall-through semantics.
func (bd *Body) Switch(cases ...func(*Body)) *Body {
	if len(cases) < 2 {
		bd.builder.fail(fmt.Errorf("Switch with %d cases: need at least 2", len(cases)))
		return bd
	}
	cs := make([]*Body, len(cases))
	for i, f := range cases {
		cs[i] = &Body{builder: bd.builder}
		if f != nil {
			f(cs[i])
		}
	}
	bd.items = append(bd.items, item{kind: itemSwitch, cases: cs})
	return bd
}
