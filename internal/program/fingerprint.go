package program

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint returns a stable content hash of the assembled program:
// the CFG, instruction layout, data accesses and loop bounds — every
// input the analyses consume — but not the name. Two programs with
// equal fingerprints are analysis-equivalent (identical pWCET pipeline
// inputs), so the fingerprint is a sound memoization key for sharing a
// warm analysis engine across requests that name the same program
// (internal/serve's engine pool). Programs are immutable after Build,
// so the fingerprint never changes.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fpInt(h, int64(p.Entry))
	fpInt(h, int64(p.Exit))
	fpInt(h, int64(len(p.Blocks)))
	for _, b := range p.Blocks {
		fpInt(h, int64(b.ID))
		fpInt(h, int64(b.Addr))
		fpInt(h, int64(b.NumInstr))
		fpInt(h, int64(b.Loop))
		fpInt(h, int64(len(b.Data)))
		for _, d := range b.Data {
			fpInt(h, int64(d.Index))
			fpInt(h, int64(d.Addr))
			if d.Store {
				fpInt(h, 1)
			} else {
				fpInt(h, 0)
			}
		}
		fpInt(h, int64(len(b.Succs)))
		for _, s := range b.Succs {
			fpInt(h, int64(s))
		}
	}
	fpInt(h, int64(len(p.Loops)))
	for _, l := range p.Loops {
		fpInt(h, int64(l.ID))
		fpInt(h, int64(l.Header))
		fpInt(h, l.Bound)
		fpInt(h, int64(l.Parent))
		fpInt(h, int64(l.BodySucc))
		fpInt(h, int64(l.ExitSucc))
		fpInt(h, int64(len(l.Back)))
		for _, e := range l.Back {
			fpInt(h, int64(e.From))
			fpInt(h, int64(e.To))
		}
		fpInt(h, int64(len(l.Blocks)))
		for _, b := range l.Blocks {
			fpInt(h, int64(b))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func fpInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}
