package dist

import (
	"math/rand"
	"testing"
)

// assertSameAtoms fails unless both distributions hold bitwise
// identical atoms.
func assertSameAtoms(t *testing.T, label string, got, want *Dist) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: support size %d, want %d", label, got.Len(), want.Len())
	}
	wp := want.Points()
	for i, p := range got.Points() {
		if p != wp[i] {
			t.Fatalf("%s: atom %d is %+v, want %+v (must be byte-identical)", label, i, p, wp[i])
		}
	}
}

// bigRandomDist builds a distribution large enough to clear the
// minSplitPairs threshold when convolved, on either the dense or the
// wide-span path depending on the value stride.
func bigRandomDist(t *testing.T, rng *rand.Rand, atoms int, stride int64) *Dist {
	t.Helper()
	pts := make([]Point, atoms)
	v := int64(0)
	for i := range pts {
		v += 1 + int64(rng.Intn(8))*stride
		pts[i] = Point{Value: v, Prob: rng.Float64() + 1e-9}
	}
	var mass float64
	for _, p := range pts {
		mass += p.Prob
	}
	for i := range pts {
		pts[i].Prob /= mass
	}
	d, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestConvolveWorkersByteIdentical: the output-range-partitioned
// convolution must match the serial Convolve atom for atom, on both
// the dense path (narrow stride) and the k-way wide-span path (huge
// stride), for several worker counts. This is the property
// ConvolveAll's worker independence rests on.
func TestConvolveWorkersByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		name   string
		stride int64
	}{
		{"dense", 1},
		{"wide-span", 1 << 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for iter := 0; iter < 4; iter++ {
				a := bigRandomDist(t, rng, 300+rng.Intn(200), tc.stride)
				b := bigRandomDist(t, rng, 300+rng.Intn(200), tc.stride)
				want := a.Convolve(b)
				for _, workers := range []int{2, 3, 8} {
					assertSameAtoms(t, tc.name, convolveWorkers(a, b, workers), want)
				}
			}
		})
	}
}

// TestConvolveWorkersSmallFallsThrough: under the split threshold the
// parallel entry point must be the serial convolution (trivially
// byte-identical).
func TestConvolveWorkersSmallFallsThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomDist(t, rng, 12)
	b := randomDist(t, rng, 12)
	assertSameAtoms(t, "small", convolveWorkers(a, b, 8), a.Convolve(b))
}

// TestBuildMergePlanEqualSizes: with equal-size inputs the size-aware
// schedule must degenerate to the balanced pairwise tree — (0,1),
// (2,3), ... then the products in creation order — which is what keeps
// pipeline results identical to the level-synchronized reduction this
// replaced.
func TestBuildMergePlanEqualSizes(t *testing.T) {
	ds := make([]*Dist, 8)
	for i := range ds {
		d, err := New([]Point{{Value: int64(i), Prob: 0.5}, {Value: int64(i) + 100, Prob: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = d
	}
	plan := buildMergePlan(ds, 4096)
	want := []mergeStep{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}}
	if len(plan) != len(want) {
		t.Fatalf("plan has %d steps, want %d", len(plan), len(want))
	}
	for i, st := range plan {
		if st != want[i] {
			t.Fatalf("plan step %d is %+v, want %+v", i, st, want[i])
		}
	}
}

// TestBuildMergePlanSkewedSizes: small operands must pair with each
// other before touching a capped large partial, Huffman-style.
func TestBuildMergePlanSkewedSizes(t *testing.T) {
	mk := func(atoms int) *Dist {
		pts := make([]Point, atoms)
		for i := range pts {
			pts[i] = Point{Value: int64(i), Prob: 1 / float64(atoms)}
		}
		d, err := New(pts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// One big distribution and three tiny ones: the tiny ones must
	// merge together first; the big one joins last.
	ds := []*Dist{mk(4096), mk(2), mk(2), mk(2)}
	plan := buildMergePlan(ds, 4096)
	if plan[0] != (mergeStep{1, 2}) {
		t.Fatalf("first step %+v, want the two smallest {1 2}", plan[0])
	}
	if plan[1] != (mergeStep{3, 4}) {
		t.Fatalf("second step %+v, want tiny with tiny-product {3 4}", plan[1])
	}
	if plan[2] != (mergeStep{5, 0}) {
		t.Fatalf("last step %+v, want the big operand joining last {5 0}", plan[2])
	}
}

// FuzzConvolveWorkers feeds arbitrary operand pairs to the
// range-partitioned convolution and checks byte-identity against the
// serial path with the split threshold out of the way.
func FuzzConvolveWorkers(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3), false)
	f.Add([]byte{200, 1, 200, 2, 200, 3, 200, 4}, uint8(7), true)
	f.Fuzz(func(t *testing.T, data []byte, workers8 uint8, wide bool) {
		workers := 2 + int(workers8%7)
		stride := int64(1)
		if wide {
			stride = 1 << 45
		}
		var pts []Point
		v := int64(0)
		for len(data) >= 2 {
			v += (1 + int64(data[0])%17) * stride
			pts = append(pts, Point{Value: v, Prob: float64(1+int(data[1])%9) / 16})
			data = data[2:]
		}
		if len(pts) < 4 {
			return
		}
		half := len(pts) / 2
		norm := func(ps []Point) *Dist {
			var mass float64
			for _, p := range ps {
				mass += p.Prob
			}
			out := make([]Point, len(ps))
			for i, p := range ps {
				out[i] = Point{Value: p.Value, Prob: p.Prob / mass}
			}
			d, err := New(out)
			if err != nil {
				t.Skip()
			}
			return d
		}
		a, b := norm(pts[:half]), norm(pts[half:])
		want := a.Convolve(b)
		// Exercise the split paths directly, bypassing the size
		// threshold (convolveDensePar / convolveKWayPar are what the
		// fuzzer must break).
		n, m := a.Len(), b.Len()
		base := a.Min() + b.Min()
		diff := uint64(a.Max()+b.Max()) - uint64(base)
		var got *Dist
		if diff < uint64(denseLimit(n*m)) {
			got = a.convolveDensePar(b, base, int(diff)+1, workers, nil)
		} else if diff < 1<<62 && a.Max()+b.Max() != int64(^uint64(0)>>1) {
			got = a.convolveKWayPar(b, base, int64(diff), workers, nil)
		} else {
			return
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: support %d, want %d", workers, got.Len(), want.Len())
		}
		wp := want.Points()
		for i, p := range got.Points() {
			if p != wp[i] {
				t.Fatalf("workers=%d: atom %d is %+v, want %+v", workers, i, p, wp[i])
			}
		}
	})
}
