package dist

import (
	"fmt"
	"math"
)

// checkMassTolerance bounds how far the total mass of a checked
// distribution may exceed 1. Operations conserve mass only to
// floating-point accuracy and never renormalize, so after long
// Convolve/Coarsen chains the mass sits a few ulps off; 1e-6 is orders
// of magnitude above any legitimate drift and orders below any real
// corruption. Masses below 1 are legitimate: Convolve's result mass is
// the product of its operands' masses, and intermediate weighted terms
// carry sub-unit mass by design — but mass can never legitimately grow
// past 1.
const checkMassTolerance = 1e-6

// check asserts the representation invariants of a Dist and panics with
// the violation when one fails. It is called from construction sites
// under `if checkEnabled` — the pwcetcheck build tag (see check_on.go);
// in a default build the guard is constant-false and this function is
// never reached.
//
// Invariants checked:
//
//   - parallel slices: len(values) == len(probs) == len(ccdf) > 0;
//   - values strictly increasing (sorted, duplicate-free);
//   - every probability finite and > 0 (zero atoms are dropped by
//     construction; they would corrupt Max and QuantileExceedance);
//   - total mass at most 1 + checkMassTolerance (sub-unit masses are
//     legitimate intermediates; super-unit mass is always corruption);
//   - the ccdf is exactly the backward suffix sum of probs (bitwise:
//     fromSorted computes it in one deterministic order and every
//     operation preserves or recomputes it the same way), which implies
//     ccdf[len-1] == 0 and monotone non-increase.
//
// The int64 overflow pre-checks of Shift and Convolve are unconditional
// production code, not part of the sanitizer.
func (d *Dist) check(where string) {
	n := len(d.values)
	if n == 0 || len(d.probs) != n || len(d.ccdf) != n {
		panic(fmt.Sprintf("pwcetcheck: %s: malformed Dist: %d values, %d probs, %d ccdf",
			where, n, len(d.probs), len(d.ccdf)))
	}
	var mass float64
	var tail float64
	for i := n - 1; i >= 0; i-- {
		if i > 0 && d.values[i-1] >= d.values[i] {
			panic(fmt.Sprintf("pwcetcheck: %s: atoms not strictly sorted: values[%d]=%d >= values[%d]=%d",
				where, i-1, d.values[i-1], i, d.values[i]))
		}
		p := d.probs[i]
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
			panic(fmt.Sprintf("pwcetcheck: %s: probs[%d] = %g (want finite and > 0)", where, i, p))
		}
		if d.ccdf[i] != tail {
			panic(fmt.Sprintf("pwcetcheck: %s: ccdf[%d] = %g, want suffix sum %g", where, i, d.ccdf[i], tail))
		}
		tail += p
		mass += p
	}
	if mass > 1+checkMassTolerance {
		panic(fmt.Sprintf("pwcetcheck: %s: total mass %g exceeds 1 by more than %g", where, mass, checkMassTolerance))
	}
}
