//go:build !pwcetcheck

package dist

// checkEnabled gates the pwcetcheck sanitizer assertions (see check.go).
// This is the default build: the constant false lets the compiler drop
// every `if checkEnabled { ... }` block entirely.
const checkEnabled = false
