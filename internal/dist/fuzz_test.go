package dist

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzNew round-trips arbitrary point lists through New → Points:
// whatever bytes the fuzzer invents, New must either reject the input
// with an error or produce a well-formed distribution — sorted unique
// support, strictly positive atoms, unit mass — whose Points rebuild
// the identical distribution. No input may panic.
// FuzzCoarsenToWith feeds arbitrary byte-derived distributions and cap
// sizes to both coarsening strategies and checks the soundness
// contract that must hold for any input: the cap is respected, the
// support maximum survives, mass is conserved, the exact distribution
// is stochastically dominated (mass only ever moved upward), and the
// default-strategy shorthand CoarsenTo agrees with CoarsenToWith.
func FuzzCoarsenToWith(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1}, uint8(1), false)
	seed := make([]byte, 45)
	for i := 8; i < len(seed); i += 9 {
		seed[i-1] = byte(i) // spread values
		seed[i] = byte(1 + i%7)
	}
	f.Add(seed, uint8(2), true)
	f.Add(seed, uint8(0), false)
	f.Fuzz(func(t *testing.T, data []byte, cap8 uint8, heaviest bool) {
		// Decode 9-byte records like FuzzNew: 8 bytes of value, 1 byte
		// of weight, normalized to unit mass.
		var pts []Point
		var sum float64
		for len(data) >= 9 {
			v := int64(binary.LittleEndian.Uint64(data[:8]))
			w := float64(data[8])
			pts = append(pts, Point{Value: v, Prob: w})
			sum += w
			data = data[9:]
		}
		if sum == 0 {
			return
		}
		for i := range pts {
			pts[i].Prob /= sum
		}
		d, err := New(pts)
		if err != nil {
			t.Fatalf("New rejected normalized input: %v", err)
		}
		maxSupport := 1 + int(cap8)
		strategy := CoarsenLeastError
		if heaviest {
			strategy = CoarsenKeepHeaviest
		}
		c := d.CoarsenToWith(maxSupport, strategy)
		if c.Len() > maxSupport {
			t.Fatalf("%v: support %d exceeds cap %d", strategy, c.Len(), maxSupport)
		}
		if c.Max() != d.Max() {
			t.Fatalf("%v: support maximum moved from %d to %d", strategy, d.Max(), c.Max())
		}
		if m := c.Mass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("%v: mass drifted to %g", strategy, m)
		}
		if !d.DominatedBy(c, 1e-12) {
			t.Fatalf("%v: coarsened distribution does not dominate the exact one", strategy)
		}
		if strategy == CoarsenLeastError {
			ref := d.CoarsenTo(maxSupport)
			if ref.Len() != c.Len() {
				t.Fatalf("CoarsenTo disagrees with CoarsenToWith(least-error): %d vs %d atoms", ref.Len(), c.Len())
			}
			rp := ref.Points()
			for i, p := range c.Points() {
				if p != rp[i] {
					t.Fatalf("CoarsenTo disagrees at atom %d: %+v vs %+v", i, p, rp[i])
				}
			}
		}
	})
}

func FuzzNew(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	// Two atoms with equal values (merge path) and one zero weight.
	seed := make([]byte, 27)
	seed[8], seed[17], seed[26] = 3, 5, 0
	f.Add(seed)
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode 9-byte records: 8 bytes of value, 1 byte of weight.
		// Weights are normalized here so the input obeys the unit-mass
		// precondition; New still has to cope with duplicate values,
		// zero weights, and float rounding of the normalization.
		var pts []Point
		var sum float64
		for len(data) >= 9 {
			v := int64(binary.LittleEndian.Uint64(data[:8]))
			w := float64(data[8])
			pts = append(pts, Point{Value: v, Prob: w})
			sum += w
			data = data[9:]
		}
		if sum == 0 {
			// Only zero mass available: New must reject, not panic.
			if _, err := New(pts); err == nil {
				t.Fatal("New accepted zero total mass")
			}
			return
		}
		for i := range pts {
			pts[i].Prob /= sum
		}
		d, err := New(pts)
		if err != nil {
			t.Fatalf("New rejected normalized input: %v", err)
		}
		out := d.Points()
		if len(out) == 0 || len(out) > len(pts) {
			t.Fatalf("round-trip produced %d atoms from %d", len(out), len(pts))
		}
		var mass float64
		for i, p := range out {
			if p.Prob <= 0 {
				t.Fatalf("atom %d has non-positive mass %g", i, p.Prob)
			}
			if i > 0 && out[i-1].Value >= p.Value {
				t.Fatalf("support not strictly increasing at %d", i)
			}
			mass += p.Prob
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("mass %g lost in round-trip", mass)
		}
		// Points must rebuild the identical distribution.
		d2, err := New(out)
		if err != nil {
			t.Fatalf("New(Points()) failed: %v", err)
		}
		out2 := d2.Points()
		if len(out2) != len(out) {
			t.Fatalf("re-round-trip changed support size: %d vs %d", len(out2), len(out))
		}
		for i := range out {
			if out[i].Value != out2[i].Value || math.Abs(out[i].Prob-out2[i].Prob) > 1e-12 {
				t.Fatalf("re-round-trip changed atom %d: %v vs %v", i, out[i], out2[i])
			}
		}
	})
}
