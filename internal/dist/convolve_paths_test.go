package dist

import (
	"math"
	"sort"
	"testing"
)

// naiveConvolve is the obviously-correct reference the fast paths are
// pinned against: every pair product into a map, sorted, zero products
// dropped (the documented underflow semantics).
func naiveConvolve(a, b *Dist) *Dist {
	sums := make(map[int64]float64)
	for i, av := range a.values {
		for j, bv := range b.values {
			sums[av+bv] += a.probs[i] * b.probs[j]
		}
	}
	values := make([]int64, 0, len(sums))
	for v := range sums {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	probs := make([]float64, 0, len(values))
	kept := values[:0]
	for _, v := range values {
		if p := sums[v]; p > 0 {
			kept = append(kept, v)
			probs = append(probs, p)
		}
	}
	return fromSorted(kept, probs)
}

// subUnit builds a distribution with the given total mass directly on
// the internal representation — the shape underflow-dropped pair
// products leave behind, which New (unit-mass precondition) cannot
// express.
func subUnit(values []int64, weights []float64, mass float64) *Dist {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / sum * mass
	}
	return fromSorted(values, probs)
}

// TestConvolvePathAgreement is the table test pinning the three
// convolution executions — plain dense accumulator, stride-compressed
// dense grid, and wide-span k-way heap merge — to one another and to
// the naive reference, on the boundary shapes where path selection
// switches and on the degenerate inputs the reduction tree feeds them
// (neutral element, one-atom operands, sub-unit masses).
//
// The two dense paths must agree bitwise (the stride grid is the same
// accumulation in the same order on a compressed index); the k-way
// merge accumulates per-sum products in a different order, so it — and
// the naive reference — agree on the exact support and on
// probabilities up to reassociation rounding. Mass is conserved as the
// product of the operand masses on every path.
func TestConvolvePathAgreement(t *testing.T) {
	grid := func(n int, stride, base int64) ([]int64, []float64) {
		vs := make([]int64, n)
		ws := make([]float64, n)
		for i := range vs {
			vs[i] = base + int64(i)*int64(i)*stride
			ws[i] = float64(1+i%3) / 10
		}
		return vs, ws
	}
	mk := func(n int, stride, base int64) *Dist {
		vs, ws := grid(n, stride, base)
		return subUnit(vs, ws, 1)
	}
	cases := []struct {
		name string
		a, b *Dist
	}{
		// Neutral element and one-atom operands: the Shift shortcut.
		{"neutral-left", Degenerate(0), mk(9, 7, 3)},
		{"neutral-right", mk(9, 7, 3), Degenerate(0)},
		{"one-atom-shift", Degenerate(41), mk(12, 13, -5)},
		// Narrow span: plain dense accumulator.
		{"narrow-dense", mk(20, 3, 0), mk(15, 5, 2)},
		// Span just past the stride threshold on a shared coarse grid:
		// the stride-compressed dense path.
		{"stride-grid", mk(40, 100, 0), mk(40, 100, 200)},
		// Boundary: raw span straddling minStrideCells with gcd 1
		// (stride compression unavailable, plain dense must cope).
		{"boundary-gcd1", mk(64, 97, 0), subUnit([]int64{0, 1, 1 << 14}, []float64{1, 1, 1}, 1)},
		// Wide span, no common stride: the k-way heap merge.
		{"wide-kway", mk(24, 1_000_003, 0), mk(24, 999_983, 17)},
		// Sub-unit masses (the shape underflow leaves): mass must come
		// out as the product, not be renormalized away.
		{"sub-unit-narrow", subUnit([]int64{0, 2, 5}, []float64{1, 2, 1}, 0.25), subUnit([]int64{1, 3}, []float64{1, 1}, 0.5)},
		{"sub-unit-wide", subUnit([]int64{0, 1_000_003}, []float64{1, 3}, 0.125), subUnit([]int64{0, 2_000_005}, []float64{2, 1}, 0.75)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveConvolve(tc.a, tc.b)
			got := tc.a.Convolve(tc.b)
			if got.Len() != want.Len() {
				t.Fatalf("support size %d, want %d", got.Len(), want.Len())
			}
			wp := want.Points()
			for i, p := range got.Points() {
				if p.Value != wp[i].Value {
					t.Fatalf("support differs at %d: %d vs %d", i, p.Value, wp[i].Value)
				}
				if diff := math.Abs(p.Prob - wp[i].Prob); diff > 1e-12*wp[i].Prob {
					t.Fatalf("probability at value %d: %g, want %g", p.Value, p.Prob, wp[i].Prob)
				}
			}
			if wantMass := tc.a.Mass() * tc.b.Mass(); math.Abs(got.Mass()-wantMass) > 1e-12 {
				t.Fatalf("mass %g, want the product of operand masses %g", got.Mass(), wantMass)
			}
			if got.Max() != tc.a.Max()+tc.b.Max() {
				t.Fatalf("max %d, want %d", got.Max(), tc.a.Max()+tc.b.Max())
			}

			// Force the k-way merge on the same operands (legal for any
			// multi-atom pair): exact same support, rounding-level probs.
			if tc.a.Len() > 1 && tc.b.Len() > 1 {
				kway := tc.a.convolveKWay(tc.b)
				if kway.Len() != want.Len() {
					t.Fatalf("k-way support size %d, want %d", kway.Len(), want.Len())
				}
				for i, p := range kway.Points() {
					if p.Value != wp[i].Value {
						t.Fatalf("k-way support differs at %d: %d vs %d", i, p.Value, wp[i].Value)
					}
					if diff := math.Abs(p.Prob - wp[i].Prob); diff > 1e-12*wp[i].Prob {
						t.Fatalf("k-way probability at value %d: %g, want %g", p.Value, p.Prob, wp[i].Prob)
					}
				}
			}

			// Workers variant must be byte-identical to the serial result
			// for every path (the PR 4 contract the reduction relies on).
			par := convolveWorkers(tc.a, tc.b, 4)
			if par.Len() != got.Len() {
				t.Fatalf("workers=4 support size %d, want %d", par.Len(), got.Len())
			}
			gp := got.Points()
			for i, p := range par.Points() {
				if p != gp[i] {
					t.Fatalf("workers=4 atom %d: %+v, want %+v (must be byte-identical)", i, p, gp[i])
				}
			}
		})
	}
}

// TestConvolveDenseStrideBitIdentical pins the PR 5 claim the path
// selection rests on: on a shared coarse grid the stride-compressed
// accumulator produces bit-for-bit the atoms of the plain dense
// accumulator — same values, same float64 bit patterns — so the
// threshold between them is purely a locality choice and can never
// change a result.
func TestConvolveDenseStrideBitIdentical(t *testing.T) {
	mkGrid := func(n int, stride int64) *Dist {
		vs := make([]int64, n)
		ws := make([]float64, n)
		for i := range vs {
			vs[i] = int64(i) * int64(i+1) / 2 * stride
			ws[i] = 1 / float64(i+2)
		}
		return subUnit(vs, ws, 1)
	}
	for _, stride := range []int64{2, 100, 4096} {
		a, b := mkGrid(30, stride), mkGrid(25, stride)
		n, m := a.Len(), b.Len()
		base := a.Min() + b.Min()
		span := int(a.Max() + b.Max() - base)
		g := strideGCD(a, b)
		if g < 2 {
			t.Fatalf("stride %d: corpus bug: no common stride (gcd %d)", stride, g)
		}
		plain := a.convolveDense(b, base, span+1)
		strided := a.convolveDenseStride(b, base, span/int(g)+1, g)
		if plain.Len() != strided.Len() {
			t.Fatalf("stride %d: support sizes differ: %d vs %d", stride, plain.Len(), strided.Len())
		}
		pp := plain.Points()
		for i, p := range strided.Points() {
			if p != pp[i] {
				t.Fatalf("stride %d: atom %d differs: %+v vs %+v (n=%d m=%d)", stride, i, p, pp[i], n, m)
			}
		}
	}
}
