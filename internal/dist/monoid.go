// Monoid-structured reduction: the optimized ConvolveAll engine.
//
// The per-set penalty distributions the FMM stage produces are largely
// identical or shifted copies of one another (one distribution per
// fault profile, replicated across cache sets), so the N-way merge has
// exploitable algebraic structure: convolution is a commutative monoid
// and Shift distributes over it bitwise. This file detects that
// structure (canonical content order, shift-equivalence classes),
// hash-conses the merge plan so each distinct subtree convolves once,
// and interleaves budgeted coarsening into the tree so intermediate
// supports never balloon. reduce.go keeps the plan builder and the
// retained exact executor.
package dist

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// compareShape orders distributions by shift-invariant content:
// support size, then shift-normalized values (v - Min, compared as
// uint64 so the normalization is exact even across the int64 range),
// then probability bit patterns. Returns 0 exactly when the two are
// shift-equivalent: convolving either of them is the same computation
// up to one final Shift.
func compareShape(a, b *Dist) int {
	if len(a.values) != len(b.values) {
		if len(a.values) < len(b.values) {
			return -1
		}
		return 1
	}
	abase, bbase := uint64(a.values[0]), uint64(b.values[0])
	for i, av := range a.values {
		na, nb := uint64(av)-abase, uint64(b.values[i])-bbase
		if na != nb {
			if na < nb {
				return -1
			}
			return 1
		}
	}
	for i, ap := range a.probs {
		na, nb := math.Float64bits(ap), math.Float64bits(b.probs[i])
		if na != nb {
			if na < nb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// compareDist is compareShape with Min as the final tie-break: a total
// order on distribution contents. Sorting by it makes the reduction a
// pure function of the input multiset (never of input positions) and
// puts each shift-equivalence class in one contiguous run led by its
// smallest-Min member — the class representative, so every member's
// delta against it is non-negative and the representative subtree can
// never overflow where the raw one would not.
func compareDist(a, b *Dist) int {
	if a == b {
		return 0
	}
	if c := compareShape(a, b); c != 0 {
		return c
	}
	if a.values[0] != b.values[0] {
		if a.values[0] < b.values[0] {
			return -1
		}
		return 1
	}
	return 0
}

// canonicalSort returns ds sorted by compareDist, leaving ds itself
// untouched.
func canonicalSort(ds []*Dist) []*Dist {
	sorted := make([]*Dist, len(ds))
	copy(sorted, ds)
	sort.SliceStable(sorted, func(i, j int) bool { return compareDist(sorted[i], sorted[j]) < 0 })
	return sorted
}

// In-tree coarsening tuning. The budget machinery only arms when the
// reduction provably ends far over the cap (reductionBound >
// inTreeSlack·maxSupport) AND is wide enough for intermediate supports
// to balloon across many tree levels (>= inTreeMinInputs inputs):
// every paper-scale configuration — 16 sets, where the final
// coarsening barely binds and golden quantiles are pinned — runs
// bit-exact, and only the deeply over-cap regime (e.g. 256-set caches,
// where the exact support is ~9x the cap) trades a bounded exceedance
// area for tractable intermediate sizes.
const (
	// inTreeSlack: arm in-tree coarsening only when the exact final
	// support provably exceeds inTreeSlack·maxSupport.
	inTreeSlack = 3
	// inTreeMinInputs: additionally require a reduction at least this
	// wide. A wide-span 16-set configuration can clear the
	// reductionBound guard (span/gcd alone says little about tree
	// cost), but its merge tree is so shallow that the classic
	// final-coarsen path is already fast — and the paper-configuration
	// goldens (internal/malardalen) pin those pWCETs exactly, so
	// shallow reductions must stay on the bit-exact path. In-tree
	// budgets only pay for themselves when intermediate supports would
	// otherwise balloon across many levels.
	inTreeMinInputs = 32
	// softPairLimit: only merges whose operand pair count exceeds this
	// are pre-coarsened; smaller nodes (the whole bottom of the tree)
	// stay exact.
	softPairLimit = 1 << 17
	// softAreaFrac scales the total in-tree area budget: εtotal =
	// softAreaFrac · Σᵢ (Mean(dᵢ) − Min(dᵢ)). The sum is the natural
	// shift-invariant scale of the exact curve; the fraction is tuned
	// against TestCoarsenLeastErrorTailFidelityInTree's 1.10x bound.
	softAreaFrac = 1.0 / (1 << 10)
	// softGapSlack scales each operand's merge-run span cap relative to
	// its natural resolution span/softTarget (see softMaxGap). The area
	// budget alone cannot protect deep-tail quantiles — tail atoms carry
	// ~1e-12 mass, so merging them across enormous gaps is nearly free
	// in area yet moves the 1e-12 quantile arbitrarily — so the run cap
	// is what keeps in-tree coarsening tail-faithful, and this slack is
	// the speed/fidelity dial: larger values let coarsening reach the
	// target on raggeder supports, at more quantile inflation per level.
	softGapSlack = 2.0
)

// softMaxGap is the merge-run span cap for in-tree coarsening of d: a
// small multiple of span/target, the run width a uniform coarsening to
// target atoms would need. Capping runs at it bounds every quantile's
// inflation — at any exceedance probability, however deep — to one cap
// per coarsened operand, because coarsening moves mass upward by at
// most the span of the run it joins.
func softMaxGap(d *Dist, target int) float64 {
	span := float64(d.values[len(d.values)-1]) - float64(d.values[0])
	return softGapSlack * span / float64(target)
}

// reductionBound returns a sound upper bound on the exact (uncoarsened)
// final support size of convolving ds: the smaller of the support-size
// product and the final span divided by the common value stride, both
// saturating at sizeCap.
func reductionBound(ds []*Dist) int64 {
	prod := int64(1)
	for _, d := range ds {
		n := int64(d.Len())
		if prod > sizeCap/n {
			prod = sizeCap
			break
		}
		prod *= n
	}
	var span, g uint64
	for _, d := range ds {
		s := uint64(d.values[len(d.values)-1]) - uint64(d.values[0])
		if span+s < span {
			span = math.MaxUint64
		} else {
			span += s
		}
		if g != 1 {
			g = valuesGCD(g, d.values)
		}
	}
	if g == 0 {
		g = 1 // every input degenerate: span is 0 anyway
	}
	cells := span / g
	if cells >= uint64(sizeCap) || int64(cells)+1 > prod {
		return prod
	}
	return int64(cells) + 1
}

// convolveAllStats instruments one optimized reduction for the test
// suite; production callers ignore it.
type convolveAllStats struct {
	classes     int     // shift-equivalence classes among the inputs
	planNodes   int     // internal nodes in the merge plan (len(ds)-1)
	uniqueNodes int     // internal nodes actually computed after interning
	softBudget  float64 // total in-tree exceedance-area budget (0 = off)
	softSpent   float64 // area actually spent by in-tree coarsening
}

// canonNode is one hash-consed merge-tree computation: a
// shift-equivalence class of inputs (leaf, l == r == -1) or the
// convolution of two canon children. Identical (l, r) pairs intern to
// one node, so leaves and depth are pure functions of the id.
type canonNode struct {
	l, r   int32 // canon child ids, -1 for leaves
	leaves int32 // inputs under this subtree
	depth  int32 // 0 for leaves
	eps    float64
	spent  float64
	result *Dist
	done   chan struct{}
}

// convolveAllOpt is the optimized ConvolveAll engine. The stats return
// exists for the differential suite; the distribution is what callers
// use.
//
// Exactness conditions: the result is byte-identical to
// ConvolveAllExactWith on the same inputs whenever no coarsening binds
// — i.e. when reductionBound(ds) <= maxSupport, or maxSupport <= 0 —
// because canonical ordering and plan are shared, pure-function subtree
// sharing is bitwise-neutral, and Shift commutes bitwise with Convolve.
// When only the final cap binds (reductionBound <=
// inTreeSlack·maxSupport) the merges differ from exact solely through
// CoarsenToWith decisions, which are shift-invariant for values below
// 2^53 — the entire pipeline's value range. Beyond that, in-tree
// coarsening arms and the result additionally lifts the exceedance
// curve by at most softBudget of area (the per-merge budgets sum to at
// most εtotal; see the constants above), on top of the single-final-
// coarsen bound — still a sound upper bound with the exact support
// maximum, like every coarsening here.
func convolveAllOpt(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy) (*Dist, convolveAllStats) {
	d, st, err := convolveAllOptCancel(ds, maxSupport, workers, strategy, nil)
	if err != nil {
		panic("dist: convolveAllOpt canceled without a probe: " + err.Error())
	}
	return d, st
}

// convolveAllOptCancel is convolveAllOpt with an optional cancellation
// probe, consulted once per merge node (on whichever goroutine computes
// it). The first non-nil probe error sticks: remaining nodes skip their
// convolutions, every in-flight done channel still closes — no
// goroutine outlives the call — and the error is returned in place of a
// distribution. A nil probe adds no per-node overhead beyond one nil
// check.
func convolveAllOptCancel(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy, probe func() error) (*Dist, convolveAllStats, error) {
	var st convolveAllStats
	var abortMu sync.Mutex
	var abortErr error
	// checkCancel consults the probe under a sticky-error lock: once any
	// node observes cancellation, every later check returns the same
	// error without re-probing.
	checkCancel := func() error {
		if probe == nil {
			return nil
		}
		abortMu.Lock()
		defer abortMu.Unlock()
		if abortErr == nil {
			abortErr = probe()
		}
		return abortErr
	}
	if err := checkCancel(); err != nil {
		return nil, st, err
	}
	if len(ds) == 0 {
		return Degenerate(0), st, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(ds) == 1 {
		return ds[0].CoarsenToWith(maxSupport, strategy), st, nil
	}
	n := len(ds)
	sorted := canonicalSort(ds)

	// Leaves: one canon node per shift-equivalence class. Sorting made
	// classes contiguous and put the smallest-Min member first, so the
	// representative is sorted[k]'s first class sibling and all deltas
	// are >= 0.
	canon := make([]*canonNode, 0, 2*n-1)
	nodeCanon := make([]int32, 2*n-1) // plan node -> canon id
	nodeDelta := make([]int64, 2*n-1) // plan node -> shift vs canon result
	for k, d := range sorted {
		if k > 0 && compareShape(sorted[k-1], d) == 0 {
			nodeCanon[k] = nodeCanon[k-1]
			nodeDelta[k] = d.values[0] - canon[nodeCanon[k]].result.values[0]
		} else {
			canon = append(canon, &canonNode{l: -1, r: -1, leaves: 1, result: d})
			nodeCanon[k] = int32(len(canon) - 1)
		}
	}
	st.classes = len(canon)
	leafClasses := len(canon)

	// Intern the plan: nodes with identical canon children are the same
	// pure computation, so they share one canon node. For k equal
	// inputs the balanced Huffman pairing turns this sharing into
	// exponentiation by squaring — O(log k) distinct convolutions.
	plan := buildMergePlan(sorted, maxSupport)
	st.planNodes = len(plan)
	type pairKey struct{ l, r int32 }
	intern := make(map[pairKey]int32, len(plan))
	maxDepth := int32(0)
	for k, stp := range plan {
		cl, cr := nodeCanon[stp.l], nodeCanon[stp.r]
		id, ok := intern[pairKey{cl, cr}]
		if !ok {
			dep := canon[cl].depth
			if canon[cr].depth > dep {
				dep = canon[cr].depth
			}
			dep++
			if dep > maxDepth {
				maxDepth = dep
			}
			canon = append(canon, &canonNode{
				l: cl, r: cr,
				leaves: canon[cl].leaves + canon[cr].leaves,
				depth:  dep,
			})
			id = int32(len(canon) - 1)
			intern[pairKey{cl, cr}] = id
		}
		checkSumOverflow(nodeDelta[stp.l], nodeDelta[stp.r])
		nodeCanon[n+k] = id
		nodeDelta[n+k] = nodeDelta[stp.l] + nodeDelta[stp.r]
	}
	st.uniqueNodes = len(canon) - leafClasses

	// Arm in-tree coarsening only deep over the cap, and only for the
	// least-error strategy (the legacy keep-heaviest reduction keeps
	// its final-coarsen-only semantics). The total budget εtotal splits
	// across nodes proportionally to the inputs they cover: Σ over
	// internal nodes of leaves(node) <= n·depth(root), so the per-node
	// slices can never sum past εtotal for any tree shape — and the
	// split is a pure function of the plan, hence worker-independent.
	softTarget := 0
	if maxSupport >= 2 && strategy == CoarsenLeastError && n >= inTreeMinInputs &&
		reductionBound(sorted) > inTreeSlack*int64(maxSupport) {
		softTarget = maxSupport / 16
		if softTarget < 2 {
			softTarget = 2
		}
		var scale float64
		for _, d := range sorted {
			scale += d.Mean() - float64(d.values[0])
		}
		st.softBudget = softAreaFrac * scale
		denom := float64(n) * float64(maxDepth)
		for _, nd := range canon[leafClasses:] {
			nd.eps = st.softBudget * float64(nd.leaves) / denom
		}
	}

	compute := func(nd *canonNode, conv func(l, r *Dist) *Dist) {
		if checkCancel() != nil {
			return // a child may have been skipped; leave result nil
		}
		l, r := canon[nd.l].result, canon[nd.r].result
		if softTarget > 0 && int64(l.Len())*int64(r.Len()) > softPairLimit {
			half := nd.eps / 2
			var sl, sr float64
			l, sl = l.coarsenSoft(softTarget, half, softMaxGap(l, softTarget))
			r, sr = r.coarsenSoft(softTarget, half, softMaxGap(r, softTarget))
			nd.spent = sl + sr
		}
		out := conv(l, r)
		if softTarget > 0 && out.Len() > maxSupport {
			// Armed nodes hard-coarsen with a span cap. The soft passes
			// pre-thin the operands' tail dust, and on such pre-thinned
			// products the uncapped greedy engine's cost equilibrium
			// rises until it flings whole near-massless tail bands into
			// the support maximum — the capped engine freezes the
			// already-sparse tail and spends its merges on the dense
			// body instead (see coarsenLeastErrorCapped).
			nd.result = out.coarsenLeastErrorCapped(maxSupport, softMaxGap(out, maxSupport))
		} else {
			nd.result = out.CoarsenToWith(maxSupport, strategy)
		}
	}

	internal := canon[leafClasses:]
	rootID := nodeCanon[2*n-2]
	if workers <= 1 || len(internal) == 1 {
		// Canon ids are in dependency order (children precede parents).
		for _, nd := range internal {
			compute(nd, func(l, r *Dist) *Dist { return l.Convolve(r) })
		}
	} else {
		// Dependency-driven parallel execution, one goroutine per
		// unique node; identical to the exact executor's scheme. Every
		// canon node is an ancestor-reachable dependency of the root
		// (each plan node maps onto the canon DAG), so waiting for the
		// root's done orders every write before the reads below.
		sem := make(chan struct{}, workers)
		for _, nd := range internal {
			nd.done = make(chan struct{})
		}
		for _, nd := range internal {
			go func(nd *canonNode) {
				if c := canon[nd.l]; c.done != nil {
					<-c.done
				}
				if c := canon[nd.r]; c.done != nil {
					<-c.done
				}
				sem <- struct{}{}
				compute(nd, func(l, r *Dist) *Dist { return convolveWorkersSem(l, r, workers, sem) })
				<-sem
				close(nd.done)
			}(nd)
		}
		<-canon[rootID].done
	}
	if probe != nil {
		abortMu.Lock()
		err := abortErr
		abortMu.Unlock()
		if err != nil {
			return nil, st, err
		}
	}
	for _, nd := range internal {
		st.softSpent += nd.spent
	}
	return canon[rootID].result.Shift(nodeDelta[2*n-2]), st, nil
}
