package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file is the differential suite pinning the optimized monoid
// reduction (convolveAllOpt, behind ConvolveAll/ConvolveAllWith) to the
// retained reference executor (ConvolveAllExactWith):
//
//   - byte identity whenever no coarsening binds, across input shapes
//     (equal, shifted, distinct, mixed multisets), counts from 1 to 256,
//     narrow and wide value spans, and worker counts 1 and 4 (the suite
//     runs under -race in CI, so the parallel executors are exercised
//     for data races too);
//   - sound, bounded divergence when coarsening does bind: support cap
//     respected, support maximum preserved, unit mass conserved, the
//     exact distribution dominated, and the in-tree area spend within
//     its advertised budget.

// diffWorkers are the worker counts every differential case runs under.
var diffWorkers = []int{1, 4}

// mustDist builds a distribution from points or fails the test.
func mustDist(t *testing.T, pts []Point) *Dist {
	t.Helper()
	d, err := New(pts)
	if err != nil {
		t.Fatalf("New(%v): %v", pts, err)
	}
	return d
}

// assertSameDist fails unless got and want are byte-identical: same
// support, and probabilities equal as float64 bit patterns.
func assertSameDist(t *testing.T, label string, got, want *Dist) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: support size %d, want %d", label, got.Len(), want.Len())
	}
	wp := want.Points()
	for i, p := range got.Points() {
		if p != wp[i] {
			t.Fatalf("%s: atom %d is {%d %g}, want {%d %g} (must be byte-identical)",
				label, i, p.Value, p.Prob, wp[i].Value, wp[i].Prob)
		}
	}
}

// diffCase is one input multiset plus a cap that must not bind on it.
type diffCase struct {
	name string
	ds   []*Dist
	cap  int
}

// unboundCases builds the byte-identity corpus: every shape the FMM
// stage emits (replicated per-set distributions, shifted copies,
// heterogeneous sets) plus adversarial ones (wide strided spans that
// exercise the stride-dense accumulator, single inputs, cap disabled).
func unboundCases(t *testing.T, rng *rand.Rand) []diffCase {
	t.Helper()
	var cases []diffCase

	for _, count := range []int{1, 2, 3, 5, 8, 13} {
		cases = append(cases, diffCase{
			name: fmt.Sprintf("distinct-%d", count),
			ds:   randomDists(t, rng, count, 6),
			cap:  1 << 20,
		})
	}

	// k identical narrow inputs: the hash-consed plan computes O(log k)
	// convolutions; the result must still match the exact executor's
	// 255-convolution chain bit for bit.
	base := mustDist(t, []Point{{Value: 0, Prob: 0.5}, {Value: 1, Prob: 0.3}, {Value: 3, Prob: 0.2}})
	for _, count := range []int{2, 16, 256} {
		eq := make([]*Dist, count)
		for i := range eq {
			eq[i] = base
		}
		cases = append(cases, diffCase{name: fmt.Sprintf("equal-%d", count), ds: eq, cap: 1 << 20})
	}

	// Shifted copies: one shift-equivalence class, non-zero deltas.
	sh := make([]*Dist, 64)
	for i := range sh {
		sh[i] = base.Shift(int64(i * 7))
	}
	cases = append(cases, diffCase{name: "shifted-64", ds: sh, cap: 1 << 20})

	// Mixed multiset: equal runs, shifted runs, and distinct inputs.
	var mixed []*Dist
	for i := 0; i < 10; i++ {
		mixed = append(mixed, base)
	}
	for i := 0; i < 10; i++ {
		mixed = append(mixed, base.Shift(int64(100+3*i)))
	}
	mixed = append(mixed, randomDists(t, rng, 6, 5)...)
	cases = append(cases, diffCase{name: "mixed-26", ds: mixed, cap: 1 << 20})

	// Wide strided spans: values on a coarse common grid, so the
	// convolutions take the stride-compressed dense path.
	wide := make([]*Dist, 12)
	for i := range wide {
		wide[i] = mustDist(t, []Point{
			{Value: 0, Prob: 0.6},
			{Value: int64(1+rng.Intn(50)) * 1_000_000, Prob: 0.3},
			{Value: int64(60+rng.Intn(50)) * 1_000_000, Prob: 0.1},
		})
	}
	cases = append(cases, diffCase{name: "wide-stride-12", ds: wide, cap: 1 << 21})

	// Cap disabled entirely.
	cases = append(cases, diffCase{name: "cap-disabled", ds: randomDists(t, rng, 9, 5), cap: 0})
	return cases
}

// TestConvolveAllByteIdenticalToExact: whenever no coarsening binds the
// optimized reduction must reproduce the reference executor bit for
// bit, for both strategies and every worker count.
func TestConvolveAllByteIdenticalToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range unboundCases(t, rng) {
		for _, strategy := range []CoarsenStrategy{CoarsenLeastError, CoarsenKeepHeaviest} {
			want := ConvolveAllExactWith(tc.ds, tc.cap, 1, strategy)
			if tc.cap > 0 && want.Len() > tc.cap {
				t.Fatalf("%s: corpus bug: cap %d binds (exact support %d)", tc.name, tc.cap, want.Len())
			}
			for _, workers := range diffWorkers {
				label := fmt.Sprintf("%s/%v/workers=%d", tc.name, strategy, workers)
				assertSameDist(t, label+"/opt", ConvolveAllWith(tc.ds, tc.cap, workers, strategy), want)
				assertSameDist(t, label+"/exact", ConvolveAllExactWith(tc.ds, tc.cap, workers, strategy), want)
			}
		}
	}
}

// TestConvolveAllBoundedWhenCoarseningBinds: with a binding cap the two
// executors may diverge, but both must stay sound coarsenings of the
// same exact distribution: support within the cap, exact support
// maximum kept, unit mass, and stochastic dominance.
func TestConvolveAllBoundedWhenCoarseningBinds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 40; iter++ {
		ds := randomDists(t, rng, 2+rng.Intn(24), 5)
		exact := ConvolveAllWith(ds, 0, 1, CoarsenLeastError)
		maxSupport := 2 + rng.Intn(24)
		for _, workers := range diffWorkers {
			for _, name := range []string{"opt", "exact-executor"} {
				var got *Dist
				if name == "opt" {
					got = ConvolveAllWith(ds, maxSupport, workers, CoarsenLeastError)
				} else {
					got = ConvolveAllExactWith(ds, maxSupport, workers, CoarsenLeastError)
				}
				label := fmt.Sprintf("iter %d/%s/workers=%d", iter, name, workers)
				if got.Len() > maxSupport {
					t.Fatalf("%s: support %d exceeds cap %d", label, got.Len(), maxSupport)
				}
				if got.Max() != exact.Max() {
					t.Fatalf("%s: support maximum %d, want %d", label, got.Max(), exact.Max())
				}
				if m := got.Mass(); math.Abs(m-1) > 1e-9 {
					t.Fatalf("%s: mass drifted to %g", label, m)
				}
				if !exact.DominatedBy(got, 1e-9) {
					t.Fatalf("%s: result does not dominate the exact distribution", label)
				}
			}
		}
	}
}

// benchShapeDists replicates the 256-set workload of the root
// BenchmarkConvolveAllWorkers: one 5-atom penalty distribution per set
// on a stride-100 grid, deep enough over any small cap to arm in-tree
// coarsening.
func benchShapeDists(t *testing.T, sets int) []*Dist {
	t.Helper()
	pbf := 1 - math.Pow(1-1e-4, 128)
	binom := []float64{1, 4, 6, 4, 1}
	pwf := make([]float64, 5)
	for f := range pwf {
		pwf[f] = binom[f] * math.Pow(pbf, float64(f)) * math.Pow(1-pbf, float64(4-f))
	}
	rng := rand.New(rand.NewSource(1))
	ds := make([]*Dist, sets)
	for s := range ds {
		pts := make([]Point, len(pwf))
		v := int64(0)
		for f := range pts {
			pts[f] = Point{Value: v * 100, Prob: pwf[f]}
			v += int64(1 + rng.Intn(25))
		}
		ds[s] = mustDist(t, pts)
	}
	return ds
}

// TestConvolveAllInTreeBudgetRespected pins the armed in-tree regime:
// on a deeply over-cap workload the optimized reduction must actually
// arm (non-zero budget), spend no more area than advertised, stay a
// sound dominating bound with the exact maximum, and remain
// byte-identical across worker counts.
func TestConvolveAllInTreeBudgetRespected(t *testing.T) {
	ds := benchShapeDists(t, 256)
	const maxSupport = 512
	if rb := reductionBound(canonicalSort(ds)); rb <= inTreeSlack*int64(maxSupport) {
		t.Fatalf("corpus bug: reductionBound %d does not arm in-tree coarsening at cap %d", rb, maxSupport)
	}
	exact := ConvolveAllExactWith(ds, 0, 4, CoarsenLeastError)
	var ref *Dist
	for _, workers := range diffWorkers {
		got, st := convolveAllOpt(ds, maxSupport, workers, CoarsenLeastError)
		label := fmt.Sprintf("workers=%d", workers)
		if st.softBudget == 0 {
			t.Fatalf("%s: in-tree coarsening did not arm", label)
		}
		if st.softSpent > st.softBudget {
			t.Fatalf("%s: in-tree area spend %g exceeds budget %g", label, st.softSpent, st.softBudget)
		}
		if got.Len() > maxSupport {
			t.Fatalf("%s: support %d exceeds cap %d", label, got.Len(), maxSupport)
		}
		// No Max-equality assertion here: on a 256-fold product the
		// deepest atoms' probabilities underflow float64 to zero and are
		// dropped, and where that happens depends on the merge-tree
		// shape, which differs between the cap-0 reference and the armed
		// plan. Dominance below (with tolerance far above the underflow
		// scale) is the invariant that is actually shape-independent.
		if m := got.Mass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("%s: mass drifted to %g", label, m)
		}
		if !exact.DominatedBy(got, 1e-9) {
			t.Fatalf("%s: armed result does not dominate the exact distribution", label)
		}
		if ref == nil {
			ref = got
		} else {
			assertSameDist(t, label, got, ref)
		}
	}
}

// TestConvolveAllSharingStats pins the monoid detection itself: equal
// inputs collapse to one shift class and O(log k) unique convolutions
// (the exponentiation-by-squaring shape), shifted copies land in the
// same class, and distinct inputs do not alias.
func TestConvolveAllSharingStats(t *testing.T) {
	base := mustDist(t, []Point{{Value: 2, Prob: 0.5}, {Value: 9, Prob: 0.5}})
	eq := make([]*Dist, 256)
	for i := range eq {
		eq[i] = base
	}
	_, st := convolveAllOpt(eq, 0, 1, CoarsenLeastError)
	if st.classes != 1 {
		t.Fatalf("256 equal inputs: %d shift classes, want 1", st.classes)
	}
	if st.planNodes != 255 {
		t.Fatalf("256 equal inputs: %d plan nodes, want 255", st.planNodes)
	}
	if st.uniqueNodes != 8 {
		t.Fatalf("256 equal inputs: %d unique convolutions, want 8 (log2 256)", st.uniqueNodes)
	}

	sh := make([]*Dist, 32)
	for i := range sh {
		sh[i] = base.Shift(int64(i))
	}
	_, st = convolveAllOpt(sh, 0, 1, CoarsenLeastError)
	if st.classes != 1 {
		t.Fatalf("32 shifted copies: %d shift classes, want 1", st.classes)
	}
	if st.uniqueNodes != 5 {
		t.Fatalf("32 shifted copies: %d unique convolutions, want 5 (log2 32)", st.uniqueNodes)
	}

	rng := rand.New(rand.NewSource(23))
	distinct := randomDists(t, rng, 16, 6)
	_, st = convolveAllOpt(distinct, 0, 1, CoarsenLeastError)
	if st.classes < 2 {
		t.Fatalf("distinct inputs: %d shift classes, want several", st.classes)
	}
}

// FuzzConvolveAllPlan pins the monoid property the canonical plan is
// built on: the reduction is a pure function of the input MULTISET,
// never of input order. Any permutation of the inputs must yield a
// byte-identical distribution, from both the optimized and the exact
// executor, for binding and non-binding caps alike.
func FuzzConvolveAllPlan(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(8), uint64(1))
	f.Add([]byte{9, 200, 9, 200, 9, 200, 9, 200, 9, 200, 9, 0}, uint8(3), uint64(42))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, cap8 uint8, seed uint64) {
		maxSupport := 2 + int(cap8)
		// Decode pairs of bytes into atoms, 3 atoms per distribution,
		// like FuzzConvolveAll. Repeated byte patterns naturally produce
		// equal and shifted inputs, exercising the sharing paths.
		var ds []*Dist
		var pts []Point
		for len(data) >= 2 {
			v := int64(binary.LittleEndian.Uint16(data[:2]) % 512)
			pts = append(pts, Point{Value: v, Prob: 1})
			data = data[2:]
			if len(pts) == 3 {
				for i := range pts {
					pts[i].Prob = 1.0 / 3
				}
				d, err := New(pts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				ds = append(ds, d)
				pts = nil
			}
		}
		if len(ds) == 0 || len(ds) > 24 {
			return
		}
		perm := rand.New(rand.NewSource(int64(seed))).Perm(len(ds))
		shuffled := make([]*Dist, len(ds))
		for i, j := range perm {
			shuffled[j] = ds[i]
		}
		ref := ConvolveAllWith(ds, maxSupport, 1, CoarsenLeastError)
		assertSameDist(t, "opt permuted", ConvolveAllWith(shuffled, maxSupport, 2, CoarsenLeastError), ref)
		refExact := ConvolveAllExactWith(ds, maxSupport, 1, CoarsenLeastError)
		assertSameDist(t, "exact permuted", ConvolveAllExactWith(shuffled, maxSupport, 2, CoarsenLeastError), refExact)
	})
}
