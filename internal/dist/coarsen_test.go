package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCoarsenStrategyStringParse(t *testing.T) {
	for _, s := range []CoarsenStrategy{CoarsenLeastError, CoarsenKeepHeaviest} {
		got, err := ParseCoarsenStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseCoarsenStrategy(%q) = %v, %v", s.String(), got, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", s, err)
		}
	}
	if _, err := ParseCoarsenStrategy("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseCoarsenStrategy(bogus) err = %v", err)
	}
	if err := CoarsenStrategy(42).Validate(); err == nil {
		t.Error("Validate(42) accepted an unknown strategy")
	}
	if got := CoarsenStrategy(42).String(); !strings.Contains(got, "42") {
		t.Errorf("String(42) = %q", got)
	}
}

func TestCoarsenToWithUnknownStrategyPanics(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.5}, {1, 0.3}, {2, 0.2}})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "strategy") {
			t.Fatalf("recover() = %v, want strategy panic", r)
		}
	}()
	d.CoarsenToWith(2, CoarsenStrategy(42))
}

// TestGoldenCoarsenStrategies pins both schemes on hand-built
// distributions where they disagree.
func TestGoldenCoarsenStrategies(t *testing.T) {
	// A heavy bulk at the bottom and a light, widely spaced tail.
	// Keep-heaviest retains the three heaviest atoms (0, 1, 1000) and
	// collapses the whole tail into the maximum; least-error merges the
	// cheap adjacent tail pairs and keeps a tail foothold.
	d := mustNew(t, []Point{
		{0, 0.60}, {1, 0.30}, {10, 0.06}, {12, 0.03}, {900, 0.006}, {1000, 0.004},
	})
	kh := d.CoarsenToWith(3, CoarsenKeepHeaviest)
	want := []Point{{0, 0.60}, {1, 0.30}, {1000, 0.1}}
	if kh.Len() != len(want) {
		t.Fatalf("keep-heaviest Len = %d, want %d", kh.Len(), len(want))
	}
	for i, p := range kh.Points() {
		if p.Value != want[i].Value || math.Abs(p.Prob-want[i].Prob) > 1e-15 {
			t.Errorf("keep-heaviest atom %d = %v, want %v", i, p, want[i])
		}
	}
	// Least-error merge sequence by incremental area: (10,12) costs
	// 0.06*2=0.12... the cheapest pairs are (900,1000): 0.006*100=0.6?
	// No — costs: (0,1)=0.6, (1,10)=2.7, (10,12)=0.12, (12,900)=26.6,
	// (900,1000)=0.6. First merge (10,12) -> mass(12)=0.09; then
	// (0,1)=0.6 ties (900,1000)=0.6, left index 0 wins: merge 0 into 1.
	le := d.CoarsenToWith(4, CoarsenLeastError)
	wantLE := []Point{{1, 0.90}, {12, 0.09}, {900, 0.006}, {1000, 0.004}}
	if le.Len() != len(wantLE) {
		t.Fatalf("least-error Len = %d, want %d: %v", le.Len(), len(wantLE), le.Points())
	}
	for i, p := range le.Points() {
		if p.Value != wantLE[i].Value || math.Abs(p.Prob-wantLE[i].Prob) > 1e-15 {
			t.Errorf("least-error atom %d = %v, want %v", i, p, wantLE[i])
		}
	}
	// The deep-tail quantile: least-error keeps 900 as the 1e-2
	// exceedance bound, keep-heaviest(3) inflates it to 1000.
	if got := le.QuantileExceedance(0.009); got != 900 {
		t.Errorf("least-error QuantileExceedance(0.009) = %d, want 900", got)
	}
	if got := kh.QuantileExceedance(0.009); got != 1000 {
		t.Errorf("keep-heaviest QuantileExceedance(0.009) = %d, want 1000", got)
	}
}

// TestCoarsenNoBindIdentity: when the cap does not bind, both
// strategies return the receiver itself — results stay byte-identical
// to the uncoarsened distribution (the acceptance criterion that a
// strategy change cannot perturb configurations the cap never touched).
func TestCoarsenNoBindIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 50; iter++ {
		d := randomDist(t, rng, 40)
		for _, s := range []CoarsenStrategy{CoarsenLeastError, CoarsenKeepHeaviest} {
			if got := d.CoarsenToWith(d.Len(), s); got != d {
				t.Fatalf("%v with cap == Len did not return the receiver", s)
			}
			if got := d.CoarsenToWith(d.Len()+1+rng.Intn(100), s); got != d {
				t.Fatalf("%v with slack cap did not return the receiver", s)
			}
			if got := d.CoarsenToWith(0, s); got != d {
				t.Fatalf("%v with cap 0 did not return the receiver", s)
			}
		}
	}
}

// TestCoarsenStrategiesSound: the soundness contract holds for both
// strategies on random inputs — exceedance never decreases, the
// support maximum survives, mass is conserved, the cap is respected.
func TestCoarsenStrategiesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 200; iter++ {
		d := randomDist(t, rng, 50)
		maxSupport := 1 + rng.Intn(d.Len())
		for _, s := range []CoarsenStrategy{CoarsenLeastError, CoarsenKeepHeaviest} {
			c := d.CoarsenToWith(maxSupport, s)
			if c.Len() > maxSupport {
				t.Fatalf("%v: support %d exceeds cap %d", s, c.Len(), maxSupport)
			}
			if c.Max() != d.Max() {
				t.Fatalf("%v: support maximum moved from %d to %d", s, d.Max(), c.Max())
			}
			if m := c.Mass(); math.Abs(m-1) > 1e-12 {
				t.Fatalf("%v: mass drifted to %g", s, m)
			}
			if !d.DominatedBy(c, 1e-15) {
				t.Fatalf("%v: coarsened distribution does not dominate the exact one", s)
			}
		}
	}
}

// tailDists builds FMM-shaped per-set penalty distributions: 5 atoms
// per set (a 4-way cache's f = 0..4 faulty blocks) weighted by the
// binomial faulty-way probabilities of equation 2 at pfail = 1e-4 and
// 128-bit blocks — the exact shape core.convolveFMM feeds the
// reduction. Values are fault-induced miss counts (the miss-penalty
// factor only scales the axis and no quantile ratio); the per-set
// range of up to ~800 misses matches a large working set mapping many
// blocks per set, which is what makes the exact 256-set support
// (~36000 distinct sums) exceed the default 4096-point cap by ~9x.
func tailDists(tb testing.TB, sets int) []*Dist {
	tb.Helper()
	pbf := 1 - math.Pow(1-1e-4, 128) // equation 1
	pwf := make([]float64, 5)
	for f := 0; f < 5; f++ {
		pwf[f] = float64(binom4[f]) * math.Pow(pbf, float64(f)) * math.Pow(1-pbf, float64(4-f))
	}
	rng := rand.New(rand.NewSource(1))
	ds := make([]*Dist, sets)
	for s := range ds {
		pts := make([]Point, len(pwf))
		v := int64(0)
		for f := range pts {
			pts[f] = Point{Value: v, Prob: pwf[f]}
			v += int64(1 + rng.Intn(200))
		}
		d, err := New(pts)
		if err != nil {
			tb.Fatal(err)
		}
		ds[s] = d
	}
	return ds
}

var binom4 = [5]int{1, 4, 6, 4, 1}

// TestCoarsenLeastErrorTailFidelity is the headline golden test of the
// tail-faithful coarsening scheme: a 256-set configuration whose exact
// penalty distribution far exceeds the default 4096-point support cap.
// The deep-tail exceedance quantiles — the paper's deliverable — must
// stay within 2x of the uncapped-exact value under the new default
// scheme, while the legacy keep-heaviest scheme collapses the sub-cap
// tail into the support maximum and lands ~20x high at 1e-12 (pinned
// here as the regression the default fixes). Both must remain sound.
func TestCoarsenLeastErrorTailFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("computes a ~36000-atom exact reference distribution")
	}
	const defaultMaxSupport = 4096 // core.DefaultMaxSupport (no import cycle)
	ds := tailDists(t, 256)
	exact := ConvolveAllWith(ds, 0, 4, CoarsenLeastError) // cap disabled: exact
	if exact.Len() <= defaultMaxSupport {
		t.Fatalf("test construction: exact support %d does not exceed the cap %d",
			exact.Len(), defaultMaxSupport)
	}
	le := ConvolveAllWith(ds, defaultMaxSupport, 4, CoarsenLeastError)
	kh := ConvolveAllWith(ds, defaultMaxSupport, 4, CoarsenKeepHeaviest)
	if !exact.DominatedBy(le, 1e-9) || !exact.DominatedBy(kh, 1e-9) {
		t.Fatal("a coarsened result does not dominate the exact distribution")
	}
	for _, target := range []float64{1e-9, 1e-12, 1e-15} {
		exactQ := exact.QuantileExceedance(target)
		leQ := le.QuantileExceedance(target)
		khQ := kh.QuantileExceedance(target)
		t.Logf("target %g: exact %d, least-error %d (%.2fx), keep-heaviest %d (%.2fx)",
			target, exactQ, leQ, float64(leQ)/float64(exactQ), khQ, float64(khQ)/float64(exactQ))
		if leQ < exactQ {
			t.Errorf("target %g: least-error quantile %d below exact %d (unsound)", target, leQ, exactQ)
		}
		if float64(leQ) > 2*float64(exactQ) {
			t.Errorf("target %g: least-error quantile %d more than 2x exact %d", target, leQ, exactQ)
		}
	}
	// Pin the legacy scheme's deep-tail pessimism at 1e-12 — the
	// regression this PR fixes. ~20x in practice; assert a conservative
	// floor so the contrast cannot silently disappear.
	exactQ := exact.QuantileExceedance(1e-12)
	khQ := kh.QuantileExceedance(1e-12)
	if float64(khQ) < 10*float64(exactQ) {
		t.Errorf("keep-heaviest at 1e-12 is only %.2fx exact (%d vs %d); the legacy deep-tail collapse disappeared — update the docs and this pin",
			float64(khQ)/float64(exactQ), khQ, exactQ)
	}
}

// TestCoarsenLeastErrorTailFidelityInTree is the golden test of the
// in-tree coarsening regime specifically: on the same deeply over-cap
// 256-set configuration, the optimized reduction must actually arm its
// budgeted in-tree coarsening (the exact support is ~25x the cap, far
// past the arming threshold), stay within the advertised area budget,
// and still deliver deep-tail quantiles within 1.10x of uncapped-exact
// at every certification target — measured ~1.01x, pinned with head
// room so a tail-fidelity regression in the soft passes, the span caps
// or the capped final coarsening cannot land silently. The
// final-coarsen-only exact executor at the same cap is the control: it
// shows the fidelity the budget-free reference achieves, and the armed
// path must stay within 1.10x of IT as well (in-tree coarsening is a
// speed trade, not a precision cliff).
func TestCoarsenLeastErrorTailFidelityInTree(t *testing.T) {
	if testing.Short() {
		t.Skip("computes a ~36000-atom exact reference distribution")
	}
	const defaultMaxSupport = 4096 // core.DefaultMaxSupport (no import cycle)
	ds := tailDists(t, 256)
	if rb := reductionBound(canonicalSort(ds)); rb <= inTreeSlack*int64(defaultMaxSupport) {
		t.Fatalf("test construction: reductionBound %d does not arm in-tree coarsening at cap %d",
			rb, defaultMaxSupport)
	}
	exact := ConvolveAllWith(ds, 0, 4, CoarsenLeastError) // cap disabled: exact
	inTree, st := convolveAllOpt(ds, defaultMaxSupport, 4, CoarsenLeastError)
	if st.softBudget == 0 {
		t.Fatal("in-tree coarsening did not arm on the 256-set configuration")
	}
	if st.softSpent > st.softBudget {
		t.Fatalf("in-tree area spend %g exceeds the budget %g", st.softSpent, st.softBudget)
	}
	control := ConvolveAllExactWith(ds, defaultMaxSupport, 4, CoarsenLeastError)
	if !exact.DominatedBy(inTree, 1e-9) {
		t.Fatal("the armed result does not dominate the exact distribution")
	}
	for _, target := range []float64{1e-9, 1e-12, 1e-15} {
		exactQ := exact.QuantileExceedance(target)
		gotQ := inTree.QuantileExceedance(target)
		controlQ := control.QuantileExceedance(target)
		t.Logf("target %g: exact %d, in-tree %d (%.3fx), final-coarsen-only %d (%.3fx)",
			target, exactQ, gotQ, float64(gotQ)/float64(exactQ),
			controlQ, float64(controlQ)/float64(exactQ))
		if gotQ < exactQ {
			t.Errorf("target %g: in-tree quantile %d below exact %d (unsound)", target, gotQ, exactQ)
		}
		if float64(gotQ) > 1.10*float64(exactQ) {
			t.Errorf("target %g: in-tree quantile %d more than 1.10x exact %d (%.3fx)",
				target, gotQ, exactQ, float64(gotQ)/float64(exactQ))
		}
		if float64(gotQ) > 1.10*float64(controlQ) {
			t.Errorf("target %g: in-tree quantile %d more than 1.10x the final-coarsen-only control %d",
				target, gotQ, controlQ)
		}
	}
}
