package dist

import (
	"fmt"
	"math"
)

// maxDenseSpan caps the dense accumulator at 4M float64 cells (32 MB)
// no matter how many pairs a convolution produces.
const maxDenseSpan = 1 << 22

// Convolve returns the distribution of the sum of two independent
// random variables. This is the analysis hot path — convolveFMM folds
// it once per cache set and ConvolveAll runs it at every tree level —
// so it avoids map churn entirely:
//
//   - a degenerate operand turns the convolution into a Shift;
//   - when the result's value span is small relative to the number of
//     atom pairs (the common case: penalties share the miss-penalty
//     granularity), products are accumulated into a single
//     preallocated buffer indexed by value offset, O(n·m) with no
//     sorting and no allocation beyond the buffer and the result;
//   - otherwise — wide-span operands, the shape of the high levels of
//     ConvolveAll's reduction tree — the n sorted per-atom sum streams
//     are merged through a deterministic k-way heap, O(n·m·log k) with
//     k = min(n, m) and O(k) extra memory, instead of materializing
//     and sorting all n·m pairs.
//
// Total mass is conserved to floating-point accuracy (the result's
// mass is the product of the operands' masses); no renormalization
// happens. Pair products that underflow to exactly 0 are dropped on
// both paths, preserving the probs[i] > 0 invariant (the lost mass is
// below the smallest subnormal, far under any tolerance here).
//
// Convolve panics when an extreme pair sum (Min+Min or Max+Max) would
// overflow int64 — like Shift, silently wrapping would corrupt the
// value domain and with it the soundness contract.
func (d *Dist) Convolve(o *Dist) *Dist {
	n, m := len(d.values), len(o.values)
	checkSumOverflow(d.values[0], o.values[0])
	checkSumOverflow(d.values[n-1], o.values[m-1])
	if n == 1 {
		// P(X = v) = 1: the sum is o shifted by v, scaled by the
		// (unit) mass.
		return o.Shift(d.values[0])
	}
	if m == 1 {
		return d.Shift(o.values[0])
	}
	base := d.values[0] + o.values[0]
	// The span is compared as (span - 1) in uint64: the difference of
	// the two extreme sums always fits there even when it exceeds
	// MaxInt64 — including the extreme case where it is 2^64 - 1 and
	// span itself would wrap to 0.
	diff := uint64(d.values[n-1]+o.values[m-1]) - uint64(base)
	if diff < uint64(denseLimit(n*m)) {
		return d.convolveDense(o, base, int(diff)+1)
	}
	return d.convolveKWay(o)
}

// checkSumOverflow panics when a+b is not representable in int64. The
// interior pair sums of a convolution are bracketed by the extreme
// ones, so Convolve only needs this at the two extremes.
func checkSumOverflow(a, b int64) {
	if (b > 0 && a > math.MaxInt64-b) || (b < 0 && a < math.MinInt64-b) {
		panic(fmt.Sprintf("dist: Convolve overflows int64: %d + %d is not representable", a, b))
	}
}

// denseLimit bounds the dense accumulator size: proportional to the
// O(n·m) work the convolution does anyway, hard-capped at
// maxDenseSpan.
func denseLimit(pairs int) int {
	l := 8*pairs + 1024
	if l > maxDenseSpan || l < 0 {
		return maxDenseSpan
	}
	return l
}

// convolveDense accumulates pair products into a value-indexed buffer.
func (d *Dist) convolveDense(o *Dist, base int64, span int) *Dist {
	buf := make([]float64, span)
	for i, vi := range d.values {
		pi := d.probs[i]
		off := vi - base
		for j, vj := range o.values {
			buf[off+vj] += pi * o.probs[j]
		}
	}
	cnt := 0
	for _, p := range buf {
		if p > 0 {
			cnt++
		}
	}
	values := make([]int64, 0, cnt)
	probs := make([]float64, 0, cnt)
	for k, p := range buf {
		if p > 0 {
			values = append(values, base+int64(k))
			probs = append(probs, p)
		}
	}
	return fromSorted(values, probs)
}

// streamHead is one k-way-merge cursor: the next unconsumed sum of
// stream i (the i-th atom of the smaller operand paired with the
// ascending atoms of the larger one).
type streamHead struct {
	sum int64
	i   int32
}

// convolveKWay merges the k sorted per-atom sum streams of the smaller
// operand with a binary min-heap, accumulating equal sums as they pop
// out in order. Used when the value span is too wide for the dense
// buffer: O(n·m·log k) time and O(k) transient memory replace the old
// materialize-and-sort path's O(n·m) pair buffer and O(n·m·log(n·m))
// sort, which made high ConvolveAll tree levels sort-bound.
//
// The heap orders by (sum, stream index), so pops — and with them the
// per-value accumulation order — are a pure function of the operands:
// the result is deterministic, and for every output value the
// contributions are summed in ascending stream order, the same order
// the dense path uses.
func (d *Dist) convolveKWay(o *Dist) *Dist {
	if len(d.values) > len(o.values) {
		d, o = o, d
	}
	k, m := len(d.values), len(o.values)
	h := make([]streamHead, k)
	ptr := make([]int, k)
	for i := range h {
		h[i] = streamHead{sum: d.values[i] + o.values[0], i: int32(i)}
	}
	less := func(a, b streamHead) bool {
		return a.sum < b.sum || (a.sum == b.sum && a.i < b.i)
	}
	siftDown := func(root int) {
		for {
			child := 2*root + 1
			if child >= len(h) {
				return
			}
			if r := child + 1; r < len(h) && less(h[r], h[child]) {
				child = r
			}
			if !less(h[child], h[root]) {
				return
			}
			h[root], h[child] = h[child], h[root]
			root = child
		}
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	// Wide-span operands rarely collide on sums, so the output is
	// usually close to k·m atoms; presize for it (bounded, so a huge
	// convolution starts at a sane capacity and grows from there).
	est := k * m
	if est > 1<<22 {
		est = 1 << 22
	}
	values := make([]int64, 0, est)
	probs := make([]float64, 0, est)
	for len(h) > 0 {
		top := h[0]
		i := int(top.i)
		p := d.probs[i] * o.probs[ptr[i]]
		if last := len(values) - 1; last >= 0 && values[last] == top.sum {
			probs[last] += p
		} else if p > 0 {
			values = append(values, top.sum)
			probs = append(probs, p)
		}
		ptr[i]++
		if ptr[i] < m {
			h[0].sum = d.values[i] + o.values[ptr[i]]
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return fromSorted(values, probs)
}
