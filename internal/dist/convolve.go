package dist

import "sort"

// maxDenseSpan caps the dense accumulator at 4M float64 cells (32 MB)
// no matter how many pairs a convolution produces.
const maxDenseSpan = 1 << 22

// Convolve returns the distribution of the sum of two independent
// random variables. This is the analysis hot path — convolveFMM folds
// it once per cache set — so it avoids map churn entirely:
//
//   - a degenerate operand turns the convolution into a Shift;
//   - when the result's value span is small relative to the number of
//     atom pairs (the common case: penalties share the miss-penalty
//     granularity), products are accumulated into a single
//     preallocated buffer indexed by value offset, O(n·m) with no
//     sorting and no allocation beyond the buffer and the result;
//   - otherwise the pairs are materialized into one preallocated
//     slice, sorted, and merged.
//
// Total mass is conserved to floating-point accuracy (the result's
// mass is the product of the operands' masses); no renormalization
// happens. Pair products that underflow to exactly 0 are dropped on
// both paths, preserving the probs[i] > 0 invariant (the lost mass is
// below the smallest subnormal, far under any tolerance here).
func (d *Dist) Convolve(o *Dist) *Dist {
	if len(d.values) == 1 {
		// P(X = v) = 1: the sum is o shifted by v, scaled by the
		// (unit) mass.
		return o.Shift(d.values[0])
	}
	if len(o.values) == 1 {
		return d.Shift(o.values[0])
	}
	n, m := len(d.values), len(o.values)
	base := d.values[0] + o.values[0]
	span := (d.values[n-1] + o.values[m-1]) - base + 1
	if span <= int64(denseLimit(n*m)) {
		return d.convolveDense(o, base, int(span))
	}
	return d.convolveSparse(o)
}

// denseLimit bounds the dense accumulator size: proportional to the
// O(n·m) work the convolution does anyway, hard-capped at
// maxDenseSpan.
func denseLimit(pairs int) int {
	l := 8*pairs + 1024
	if l > maxDenseSpan || l < 0 {
		return maxDenseSpan
	}
	return l
}

// convolveDense accumulates pair products into a value-indexed buffer.
func (d *Dist) convolveDense(o *Dist, base int64, span int) *Dist {
	buf := make([]float64, span)
	for i, vi := range d.values {
		pi := d.probs[i]
		off := vi - base
		for j, vj := range o.values {
			buf[off+vj] += pi * o.probs[j]
		}
	}
	cnt := 0
	for _, p := range buf {
		if p > 0 {
			cnt++
		}
	}
	values := make([]int64, 0, cnt)
	probs := make([]float64, 0, cnt)
	for k, p := range buf {
		if p > 0 {
			values = append(values, base+int64(k))
			probs = append(probs, p)
		}
	}
	return fromSorted(values, probs)
}

// convolveSparse materializes all value pairs, sorts them once, and
// merges equal values. Used when the value span is too wide for the
// dense buffer.
func (d *Dist) convolveSparse(o *Dist) *Dist {
	pairs := make([]Point, 0, len(d.values)*len(o.values))
	for i, vi := range d.values {
		pi := d.probs[i]
		for j, vj := range o.values {
			pairs = append(pairs, Point{Value: vi + vj, Prob: pi * o.probs[j]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Value < pairs[j].Value })
	return fromSorted(mergeSortedPoints(pairs))
}
