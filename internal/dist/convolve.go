package dist

import (
	"fmt"
	"math"
	"sort"
)

// maxDenseSpan caps the dense accumulator at 4M float64 cells (32 MB)
// no matter how many pairs a convolution produces.
const maxDenseSpan = 1 << 22

// Convolve returns the distribution of the sum of two independent
// random variables. This is the analysis hot path — convolveFMM folds
// it once per cache set and ConvolveAll runs it at every tree level —
// so it avoids map churn entirely:
//
//   - a degenerate operand turns the convolution into a Shift;
//   - when the result's value span is small relative to the number of
//     atom pairs (the common case: penalties share the miss-penalty
//     granularity), products are accumulated into a single
//     preallocated buffer indexed by value offset, O(n·m) with no
//     sorting and no allocation beyond the buffer and the result;
//   - when the raw span is too wide but both supports share a common
//     value stride g > 1 (penalties are multiples of the miss penalty,
//     so whole reduction trees do), the same flat accumulation runs on
//     the compressed grid base + k·g with span/g cells — bitwise the
//     same atoms in the same order, at a fraction of the buffer;
//   - otherwise — wide-span operands, the shape of the high levels of
//     ConvolveAll's reduction tree — the n sorted per-atom sum streams
//     are merged through a deterministic k-way heap, O(n·m·log k) with
//     k = min(n, m) and O(k) extra memory, instead of materializing
//     and sorting all n·m pairs.
//
// Total mass is conserved to floating-point accuracy (the result's
// mass is the product of the operands' masses); no renormalization
// happens. Pair products that underflow to exactly 0 are dropped on
// both paths, preserving the probs[i] > 0 invariant (the lost mass is
// below the smallest subnormal, far under any tolerance here).
//
// Convolve panics when an extreme pair sum (Min+Min or Max+Max) would
// overflow int64 — like Shift, silently wrapping would corrupt the
// value domain and with it the soundness contract.
func (d *Dist) Convolve(o *Dist) *Dist {
	if checkEnabled {
		d.check("Convolve operand")
		o.check("Convolve operand")
	}
	n, m := len(d.values), len(o.values)
	checkSumOverflow(d.values[0], o.values[0])
	checkSumOverflow(d.values[n-1], o.values[m-1])
	if n == 1 {
		// P(X = v) = 1: the sum is o shifted by v, scaled by the
		// (unit) mass.
		return o.Shift(d.values[0])
	}
	if m == 1 {
		return d.Shift(o.values[0])
	}
	base := d.values[0] + o.values[0]
	// The span is compared as (span - 1) in uint64: the difference of
	// the two extreme sums always fits there even when it exceeds
	// MaxInt64 — including the extreme case where it is 2^64 - 1 and
	// span itself would wrap to 0.
	diff := uint64(d.values[n-1]+o.values[m-1]) - uint64(base)
	if diff < uint64(denseLimit(n*m)) {
		if diff >= minStrideCells {
			if g := strideGCD(d, o); g > 1 {
				return d.convolveDenseStride(o, base, int(diff/g)+1, g)
			}
		}
		return d.convolveDense(o, base, int(diff)+1)
	}
	// A raw span too wide for the dense buffer often compresses onto a
	// coarse grid: penalty values are multiples of the cache miss
	// penalty, so whole reduction trees share a common value stride.
	if g := strideGCD(d, o); g > 1 {
		if cells := diff/g + 1; cells <= uint64(denseLimit(n*m)) {
			return d.convolveDenseStride(o, base, int(cells), g)
		}
	}
	return d.convolveKWay(o)
}

// minStrideCells is the raw span under which the plain dense buffer is
// already cache-resident and the stride grid would only add the offset
// precomputation. Above it, a shared stride g > 1 divides the buffer
// (the two dense paths produce bitwise-identical results, so the choice
// is purely a locality matter).
const minStrideCells = 1 << 15

// strideGCD returns the greatest common divisor of every adjacent value
// difference of both operands: the coarsest grid base + k·g that holds
// every pair sum.
func strideGCD(d, o *Dist) uint64 {
	return valuesGCD(valuesGCD(0, d.values), o.values)
}

// valuesGCD folds the adjacent differences of a sorted value slice into
// a running gcd g (0 acts as the gcd identity). Differences are taken
// in uint64 — values are sorted ascending, so each difference is
// positive and exact even when the raw int64 subtraction would
// overflow. Returns early on 1 (the common case for unstructured
// supports).
func valuesGCD(g uint64, vs []int64) uint64 {
	for i := 1; i < len(vs); i++ {
		diff := uint64(vs[i]) - uint64(vs[i-1])
		for diff != 0 {
			g, diff = diff, g%diff
		}
		if g == 1 {
			return 1
		}
	}
	return g
}

// checkSumOverflow panics when a+b is not representable in int64. The
// interior pair sums of a convolution are bracketed by the extreme
// ones, so Convolve only needs this at the two extremes.
func checkSumOverflow(a, b int64) {
	if (b > 0 && a > math.MaxInt64-b) || (b < 0 && a < math.MinInt64-b) {
		panic(fmt.Sprintf("dist: Convolve overflows int64: %d + %d is not representable", a, b))
	}
}

// denseLimit bounds the dense accumulator size: proportional to the
// O(n·m) work the convolution does anyway, hard-capped at
// maxDenseSpan.
func denseLimit(pairs int) int {
	l := 8*pairs + 1024
	if l > maxDenseSpan || l < 0 {
		return maxDenseSpan
	}
	return l
}

// convolveDense accumulates pair products into a value-indexed buffer.
func (d *Dist) convolveDense(o *Dist, base int64, span int) *Dist {
	buf := make([]float64, span)
	for i, vi := range d.values {
		pi := d.probs[i]
		off := vi - base
		for j, vj := range o.values {
			buf[off+vj] += pi * o.probs[j]
		}
	}
	cnt := 0
	for _, p := range buf {
		if p > 0 {
			cnt++
		}
	}
	values := make([]int64, 0, cnt)
	probs := make([]float64, 0, cnt)
	for k, p := range buf {
		if p > 0 {
			values = append(values, base+int64(k))
			probs = append(probs, p)
		}
	}
	return fromSorted(values, probs)
}

// convolveDenseStride is convolveDense on the compressed grid
// base + k·g: when both operands' supports share a stride g > 1, every
// pair sum lands on the grid and the accumulator needs span/g cells
// instead of span — a 20 MB cache-thrashing buffer shrinks to a
// cache-resident one for miss-penalty-aligned supports. The inner loop
// adds into a contiguous offset-indexed row (ooff is precomputed once,
// no per-atom division or search), and a cell's contributions arrive in
// the same ascending-i order as convolveDense, so the choice between
// the two dense paths can never change an atom's accumulation order.
func (d *Dist) convolveDenseStride(o *Dist, base int64, cells int, g uint64) *Dist {
	buf := make([]float64, cells)
	ooff := denseOffsets(o, g)
	for i, vi := range d.values {
		pi := d.probs[i]
		row := buf[(uint64(vi)-uint64(d.values[0]))/g:]
		for j, oj := range ooff {
			row[oj] += pi * o.probs[j]
		}
	}
	cnt := 0
	for _, p := range buf {
		if p > 0 {
			cnt++
		}
	}
	values := make([]int64, 0, cnt)
	probs := make([]float64, 0, cnt)
	for k, p := range buf {
		if p > 0 {
			// Exact even when k·g alone exceeds int64: the sum is
			// computed mod 2^64 and the true value fits (extreme pair
			// sums were overflow-checked by the caller).
			values = append(values, int64(uint64(base)+uint64(k)*g))
			probs = append(probs, p)
		}
	}
	return fromSorted(values, probs)
}

// denseOffsets precomputes each atom's cell offset (v - Min) / g.
func denseOffsets(o *Dist, g uint64) []int {
	ooff := make([]int, len(o.values))
	for j, vj := range o.values {
		ooff[j] = int((uint64(vj) - uint64(o.values[0])) / g)
	}
	return ooff
}

// convolveWorkers is Convolve with the work split across up to workers
// goroutines by partitioning the OUTPUT value range. Every output atom
// is owned by exactly one partition and accumulates its pair products
// in the same order the serial path uses (ascending index of the first
// operand on the dense path, ascending stream index on the k-way
// path), so the result is byte-identical to Convolve for every worker
// count and every partitioning — the property ConvolveAll's worker
// independence rests on (asserted by TestConvolveWorkersByteIdentical
// and FuzzConvolveWorkers). Small convolutions and degenerate operands
// fall through to the serial implementation.
func convolveWorkers(d *Dist, o *Dist, workers int) *Dist {
	return convolveWorkersSem(d, o, workers, nil)
}

// convolveWorkersSem is convolveWorkers drawing helper goroutines from
// sem (see parallelFor); a nil sem spawns helpers unconditionally.
func convolveWorkersSem(d *Dist, o *Dist, workers int, sem chan struct{}) *Dist {
	n, m := len(d.values), len(o.values)
	if workers <= 1 || n == 1 || m == 1 || n*m < minSplitPairs {
		return d.Convolve(o)
	}
	checkSumOverflow(d.values[0], o.values[0])
	checkSumOverflow(d.values[n-1], o.values[m-1])
	base := d.values[0] + o.values[0]
	diff := uint64(d.values[n-1]+o.values[m-1]) - uint64(base)
	if diff < uint64(denseLimit(n*m)) {
		if diff >= minStrideCells {
			if g := strideGCD(d, o); g > 1 {
				return d.convolveDenseStridePar(o, base, int(diff/g)+1, g, workers, sem)
			}
		}
		return d.convolveDensePar(o, base, int(diff)+1, workers, sem)
	}
	if g := strideGCD(d, o); g > 1 {
		if cells := diff/g + 1; cells <= uint64(denseLimit(n*m)) {
			return d.convolveDenseStridePar(o, base, int(cells), g, workers, sem)
		}
	}
	if diff >= 1<<62 {
		// Astronomically wide span: partition arithmetic would not fit
		// int64; the serial k-way merge handles it, and such inputs
		// are degenerate for the pipeline anyway.
		return d.convolveKWay(o)
	}
	return d.convolveKWayPar(o, base, int64(diff), workers, sem)
}

// minSplitPairs is the pair count under which splitting a convolution
// across goroutines costs more than it saves.
const minSplitPairs = 1 << 16

// convolveDensePar is convolveDense with the output span partitioned
// into contiguous chunks, each filled by one task. A cell's
// contributions still arrive in ascending i order — identical to the
// serial loop — because each chunk scans i ascending and a given (i,
// cell) pair determines j uniquely.
func (d *Dist) convolveDensePar(o *Dist, base int64, span, workers int, sem chan struct{}) *Dist {
	buf := make([]float64, span)
	chunks := workers * 4
	if chunks > span {
		chunks = span
	}
	bound := func(c int) int { return int(int64(span) * int64(c) / int64(chunks)) }
	parallelFor(chunks, workers, sem, func(c int) {
		lo, hi := int64(bound(c)), int64(bound(c+1))
		for i, vi := range d.values {
			off := vi - base // cell = off + vj, always in [0, span)
			pi := d.probs[i]
			jlo := sort.Search(len(o.values), func(j int) bool { return off+o.values[j] >= lo })
			for j := jlo; j < len(o.values); j++ {
				cell := off + o.values[j]
				if cell >= hi {
					break
				}
				buf[cell] += pi * o.probs[j]
			}
		}
	})
	return extractDensePar(buf, base, 1, chunks, workers, bound, sem)
}

// extractDensePar turns a dense cell buffer into a Dist in parallel:
// count per chunk, prefix offsets, fill. Cell k holds value
// base + k·g. Chunks write disjoint output ranges, so the result is
// independent of scheduling.
func extractDensePar(buf []float64, base int64, g uint64, chunks, workers int, bound func(int) int, sem chan struct{}) *Dist {
	counts := make([]int, chunks)
	parallelFor(chunks, workers, sem, func(c int) {
		cnt := 0
		for _, p := range buf[bound(c):bound(c+1)] {
			if p > 0 {
				cnt++
			}
		}
		counts[c] = cnt
	})
	total := 0
	offs := make([]int, chunks+1)
	for c, cnt := range counts {
		offs[c] = total
		total += cnt
	}
	offs[chunks] = total
	values := make([]int64, total)
	probs := make([]float64, total)
	parallelFor(chunks, workers, sem, func(c int) {
		w := offs[c]
		lo := bound(c)
		for k, p := range buf[lo:bound(c+1)] {
			if p > 0 {
				values[w] = int64(uint64(base) + uint64(lo+k)*g)
				probs[w] = p
				w++
			}
		}
	})
	return fromSorted(values, probs)
}

// convolveDenseStridePar is convolveDenseStride with the cell range
// partitioned into contiguous chunks, each filled by one task — the
// stride twin of convolveDensePar, with the same byte-identity
// argument: a cell's contributions arrive in ascending i order
// whatever the partition, because each chunk scans i ascending and a
// given (i, cell) pair determines j uniquely.
func (d *Dist) convolveDenseStridePar(o *Dist, base int64, cells int, g uint64, workers int, sem chan struct{}) *Dist {
	buf := make([]float64, cells)
	ooff := denseOffsets(o, g)
	chunks := workers * 4
	if chunks > cells {
		chunks = cells
	}
	bound := func(c int) int { return int(int64(cells) * int64(c) / int64(chunks)) }
	parallelFor(chunks, workers, sem, func(c int) {
		lo, hi := bound(c), bound(c+1)
		for i, vi := range d.values {
			di := int((uint64(vi) - uint64(d.values[0])) / g)
			pi := d.probs[i]
			jlo := sort.Search(len(ooff), func(j int) bool { return di+ooff[j] >= lo })
			for j := jlo; j < len(ooff); j++ {
				cell := di + ooff[j]
				if cell >= hi {
					break
				}
				buf[cell] += pi * o.probs[j]
			}
		}
	})
	return extractDensePar(buf, base, g, chunks, workers, bound, sem)
}

// convolveKWayPar runs the k-way merge with the output sum range
// partitioned into contiguous value intervals, one restricted merge
// per chunk, concatenated in chunk order. Equal sums never straddle a
// chunk boundary and each chunk pops them in the same (sum, stream)
// order as the full merge, so the concatenation is byte-identical to
// convolveKWay.
func (d *Dist) convolveKWayPar(o *Dist, base int64, diff int64, workers int, sem chan struct{}) *Dist {
	if len(d.values) > len(o.values) {
		d, o = o, d
	}
	chunks := workers * 4
	if int64(chunks) > diff+1 {
		chunks = int(diff + 1)
	}
	// Any partition of the sum range yields the identical result (each
	// chunk owns its sums outright), so plain equal steps suffice.
	// Chunk c covers sums in [start(c), start(c+1)-1], the last one up
	// to the true maximal sum base+diff (inclusive bounds keep the
	// arithmetic inside int64 even at the extremes).
	step := (diff + 1) / int64(chunks)
	start := func(c int) int64 { return base + step*int64(c) }
	vparts := make([][]int64, chunks)
	pparts := make([][]float64, chunks)
	// Presize each chunk for its share of the usual near-k·m output,
	// like the serial path does for the whole range.
	hint := len(d.values) * len(o.values) / chunks
	if hint > 1<<22/chunks {
		hint = 1 << 22 / chunks
	}
	parallelFor(chunks, workers, sem, func(c int) {
		hi := base + diff
		if c < chunks-1 {
			hi = start(c+1) - 1
		}
		vparts[c], pparts[c] = d.mergeKWayRange(o, start(c), hi, hint)
	})
	total := 0
	for _, vp := range vparts {
		total += len(vp)
	}
	values := make([]int64, 0, total)
	probs := make([]float64, 0, total)
	for c := range vparts {
		values = append(values, vparts[c]...)
		probs = append(probs, pparts[c]...)
	}
	return fromSorted(values, probs)
}

// mergeKWayRange merges the per-atom sum streams restricted to sums in
// [lo, hi] (inclusive on both ends). It is the single k-way merge loop
// of the package: convolveKWay runs it over the full sum range and
// convolveKWayPar over one partition each. d must be the smaller
// operand. sizeHint, when positive, presizes the output slices.
//
// The heap order is (sum, stream index). The sift is a local closure
// rather than the shared siftDownFunc on purpose: this loop runs
// O(n·m) times on the wide-span hot path and the indirect comparison
// call costs ~30% there (measured on BenchmarkConvolveWideSpan).
func (d *Dist) mergeKWayRange(o *Dist, lo, hi int64, sizeHint int) ([]int64, []float64) {
	k, m := len(d.values), len(o.values)
	h := make([]streamHead, 0, k)
	ptr := make([]int, k)
	for i := 0; i < k; i++ {
		vi := d.values[i]
		j := sort.Search(m, func(j int) bool { return vi+o.values[j] >= lo })
		if j == m || vi+o.values[j] > hi {
			ptr[i] = m // stream contributes nothing to this range
			continue
		}
		ptr[i] = j
		h = append(h, streamHead{sum: vi + o.values[j], i: int32(i)})
	}
	less := func(a, b streamHead) bool {
		return a.sum < b.sum || (a.sum == b.sum && a.i < b.i)
	}
	siftDown := func(root int) {
		for {
			child := 2*root + 1
			if child >= len(h) {
				return
			}
			if r := child + 1; r < len(h) && less(h[r], h[child]) {
				child = r
			}
			if !less(h[child], h[root]) {
				return
			}
			h[root], h[child] = h[child], h[root]
			root = child
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	values := make([]int64, 0, sizeHint)
	probs := make([]float64, 0, sizeHint)
	for len(h) > 0 {
		top := h[0]
		i := int(top.i)
		p := d.probs[i] * o.probs[ptr[i]]
		if last := len(values) - 1; last >= 0 && values[last] == top.sum {
			probs[last] += p
		} else if p > 0 {
			values = append(values, top.sum)
			probs = append(probs, p)
		}
		ptr[i]++
		if ptr[i] < m && d.values[i]+o.values[ptr[i]] <= hi {
			h[0].sum = d.values[i] + o.values[ptr[i]]
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return values, probs
}

// streamHead is one k-way-merge cursor: the next unconsumed sum of
// stream i (the i-th atom of the smaller operand paired with the
// ascending atoms of the larger one).
type streamHead struct {
	sum int64
	i   int32
}

// convolveKWay merges the k sorted per-atom sum streams of the smaller
// operand with a binary min-heap, accumulating equal sums as they pop
// out in order. Used when the value span is too wide for the dense
// buffer: O(n·m·log k) time and O(k) transient memory replace the old
// materialize-and-sort path's O(n·m) pair buffer and O(n·m·log(n·m))
// sort, which made high ConvolveAll tree levels sort-bound.
//
// The heap orders by (sum, stream index), so pops — and with them the
// per-value accumulation order — are a pure function of the operands:
// the result is deterministic, and for every output value the
// contributions are summed in ascending stream order, the same order
// the dense path uses. The loop itself is mergeKWayRange over the full
// sum range.
func (d *Dist) convolveKWay(o *Dist) *Dist {
	if len(d.values) > len(o.values) {
		d, o = o, d
	}
	k, m := len(d.values), len(o.values)
	// Wide-span operands rarely collide on sums, so the output is
	// usually close to k·m atoms; presize for it (bounded, so a huge
	// convolution starts at a sane capacity and grows from there).
	est := k * m
	if est > 1<<22 {
		est = 1 << 22
	}
	values, probs := d.mergeKWayRange(o, d.values[0]+o.values[0], d.values[k-1]+o.values[m-1], est)
	return fromSorted(values, probs)
}
