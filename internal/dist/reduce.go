package dist

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// siftDownFunc restores the min-heap property of h rooted at root,
// under the given strict order. One implementation serves every heap
// in the package — the merge-plan builder and the k-way merge cursors
// — so their tie-break semantics cannot drift apart.
func siftDownFunc[T any](h []T, root int, less func(a, b T) bool) {
	for {
		child := 2*root + 1
		if child >= len(h) {
			return
		}
		if r := child + 1; r < len(h) && less(h[r], h[child]) {
			child = r
		}
		if !less(h[child], h[root]) {
			return
		}
		h[root], h[child] = h[child], h[root]
		root = child
	}
}

// ConvolveAll returns the distribution of the sum of all ds (mutually
// independent random variables), reducing them by a size-aware binary
// merge tree instead of a left fold. The merge schedule is built
// statically, Huffman-style: a min-heap of pending distributions keyed
// by (estimated support size, arrival order) always pairs the two
// smallest operands next, so skewed inputs (many degenerate or tiny
// per-set distributions next to capped 4096-atom partials) never drag
// a small operand through a chain of large convolutions. For a
// power-of-two count of equal-size inputs the schedule reproduces the
// balanced pairwise tree of earlier revisions exactly (the paper's 16-
// and 256-set geometries); other counts pair the trailing operands
// earlier than the old level-synchronized tree did, so partial
// products may associate differently. Each partial product is coarsened
// to maxSupport support points only when it exceeds the cap (CoarsenTo
// is the identity below it), so the result carries the same soundness
// contract as the fold: a pessimistic upper bound on the exceedance
// curve whenever the cap binds, the exact distribution otherwise.
// maxSupport <= 0 disables coarsening.
//
// workers bounds the goroutines executing merge-tree nodes
// concurrently; 0 means GOMAXPROCS, 1 is fully sequential. The
// schedule is a pure function of the input sizes, every node's product
// is a pure function of its two children, and the worker-split
// convolution of large nodes partitions the OUTPUT value range — each
// output atom is accumulated in the same order whatever the partition
// — so the result is byte-identical for every worker count. Unlike the
// level-synchronized tree this replaces, dependency-driven execution
// also overlaps tree levels, and the final wide merges at the top of
// the tree split across the worker pool instead of serializing it.
//
// An empty ds yields Degenerate(0), the neutral element of convolution.
//
// # Monoid structure
//
// Distributions form a commutative monoid under convolution, and the
// reduction exploits it three ways. First, the inputs are reordered
// canonically (by content, not position), so the result is invariant
// under any permutation of ds. Second, equal and shift-equivalent
// inputs — the common shape of per-set penalty distributions, one
// distribution per fault profile replicated across sets — are detected
// up front by content comparison and shift normalization, and the merge
// tree is hash-consed: every node is keyed by its (class, class)
// children, so each distinct subtree convolves once and k equal inputs
// cost O(log k) convolutions (the shared balanced subtrees ARE the
// exponentiation-by-squaring of Pow), with one final Shift restoring
// the accumulated offsets. Shifting commutes bitwise with convolution
// on every path (identical accumulation orders, identical products), so
// the sharing cannot change a single bit of the result.
//
// Third, when the exact final support provably dwarfs maxSupport, an
// exceedance-area budget is spread over the merge tree and big operands
// are pre-coarsened toward maxSupport/4 before convolving (in-tree
// coarsening, CoarsenLeastError only), keeping intermediate pair counts
// — and with them the whole reduction — bounded instead of ballooning
// to maxSupport² per node. See convolveAllOpt for the budget split and
// the exactness conditions.
//
// ConvolveAll coarsens with the default CoarsenLeastError strategy;
// ConvolveAllWith selects the strategy explicitly. ConvolveAllExact and
// ConvolveAllExactWith are the retained reference reduction — same
// canonical order and merge plan, no sharing, no in-tree coarsening —
// byte-identical to the optimized path whenever no coarsening binds
// (core.Options.ExactConvolve routes the pipeline through it for
// differential validation).
func ConvolveAll(ds []*Dist, maxSupport, workers int) *Dist {
	return ConvolveAllWith(ds, maxSupport, workers, CoarsenLeastError)
}

// mergeStep is one internal node of the static merge tree: node
// len(ds)+k convolves nodes l and r.
type mergeStep struct {
	l, r int32
}

// sizeCap bounds the support-size estimates when coarsening is
// disabled, keeping the products inside int64.
const sizeCap = int64(1) << 40

// buildMergePlan builds the Huffman-style merge schedule from the
// input support sizes alone: repeatedly pair the two smallest pending
// nodes, estimating each product's size as min(l*r, maxSupport) —
// coarsening caps whatever exceeds maxSupport. Ties break on arrival
// order (input index, then creation order), which makes the plan
// deterministic and reduces to the balanced pairwise tree for
// power-of-two counts of equal-size inputs.
func buildMergePlan(ds []*Dist, maxSupport int) []mergeStep {
	n := len(ds)
	type node struct {
		size int64
		seq  int32
	}
	h := make([]node, n)
	for i, d := range ds {
		h[i] = node{size: int64(d.Len()), seq: int32(i)}
	}
	less := func(a, b node) bool {
		return a.size < b.size || (a.size == b.size && a.seq < b.seq)
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDownFunc(h, i, less)
	}
	pop := func() node {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDownFunc(h, 0, less)
		return top
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				return
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	cap64 := sizeCap
	if maxSupport > 0 && int64(maxSupport) < cap64 {
		cap64 = int64(maxSupport)
	}
	plan := make([]mergeStep, 0, n-1)
	for len(h) > 1 {
		a := pop()
		b := pop()
		// Saturating product: a wrap-around could land non-negative
		// (two sizeCap nodes multiply to 2^80 ≡ 0 mod 2^64) and
		// misrank the largest pending node as the smallest.
		est := cap64
		if a.size == 0 || b.size <= cap64/a.size {
			est = a.size * b.size
		}
		id := int32(n + len(plan))
		plan = append(plan, mergeStep{l: a.seq, r: b.seq})
		h = append(h, node{size: est, seq: id})
		siftUp(len(h) - 1)
	}
	return plan
}

// ConvolveAllWith is ConvolveAll with an explicit coarsening strategy
// applied to every over-cap partial product (and the final result).
// The strategy never changes which pairs convolve — the schedule is
// keyed on maxSupport and the input sizes only — so the same
// worker-count independence holds for every strategy. In-tree budget
// coarsening only ever runs under CoarsenLeastError; the legacy
// CoarsenKeepHeaviest reduction stays final-coarsen-only.
func ConvolveAllWith(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy) *Dist {
	d, _ := convolveAllOpt(ds, maxSupport, workers, strategy)
	return d
}

// ConvolveAllCancelWith is ConvolveAllWith with a cancellation probe:
// probe (typically a context.Context's Err method) is consulted once
// per merge node, and the first non-nil error abandons the remaining
// convolutions and is returned in place of a result. Cancellation is
// clean — every merge goroutine finishes before the call returns — and
// a nil probe makes the function equivalent to ConvolveAllWith.
func ConvolveAllCancelWith(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy, probe func() error) (*Dist, error) {
	d, _, err := convolveAllOptCancel(ds, maxSupport, workers, strategy, probe)
	return d, err
}

// ConvolveAllExact is ConvolveAllExactWith with the default
// CoarsenLeastError strategy.
func ConvolveAllExact(ds []*Dist, maxSupport, workers int) *Dist {
	return ConvolveAllExactWith(ds, maxSupport, workers, CoarsenLeastError)
}

// ConvolveAllExactWith is the retained reference reduction: the same
// canonical input order and Huffman merge plan as ConvolveAllWith, but
// every internal node is computed independently from its two children —
// no shift-class sharing, no in-tree budget coarsening — exactly the
// pre-monoid tree. When no coarsening binds anywhere it is
// byte-identical to ConvolveAllWith (the differential suite pins this);
// when the cap binds, both remain sound upper bounds that differ only
// by the documented in-tree area budget. It exists to validate the
// optimized path and costs O(len(ds)) convolutions regardless of input
// structure.
func ConvolveAllExactWith(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy) *Dist {
	d, err := ConvolveAllExactCancelWith(ds, maxSupport, workers, strategy, nil)
	if err != nil {
		panic("dist: ConvolveAllExactWith canceled without a probe: " + err.Error())
	}
	return d
}

// ConvolveAllExactCancelWith is ConvolveAllExactWith with a
// cancellation probe, under the same contract as ConvolveAllCancelWith:
// the probe is consulted once per merge node, the first non-nil error
// sticks and is returned, every node goroutine finishes before the
// call returns, and a nil probe costs nothing.
func ConvolveAllExactCancelWith(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy, probe func() error) (*Dist, error) {
	var abortMu sync.Mutex
	var abortErr error
	checkCancel := func() error {
		if probe == nil {
			return nil
		}
		abortMu.Lock()
		defer abortMu.Unlock()
		if abortErr == nil {
			abortErr = probe()
		}
		return abortErr
	}
	if err := checkCancel(); err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		return Degenerate(0), nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(ds) == 1 {
		return ds[0].CoarsenToWith(maxSupport, strategy), nil
	}
	n := len(ds)
	sorted := canonicalSort(ds)
	plan := buildMergePlan(sorted, maxSupport)
	results := make([]*Dist, 2*n-1)
	copy(results, sorted)

	if workers <= 1 {
		// The plan lists nodes in dependency order (children always
		// precede parents): execute it sequentially.
		for k, st := range plan {
			if err := checkCancel(); err != nil {
				return nil, err
			}
			results[n+k] = results[st.l].Convolve(results[st.r]).CoarsenToWith(maxSupport, strategy)
		}
		return results[2*n-2], nil
	}

	// Dependency-driven parallel execution: one goroutine per internal
	// node waits for its children, takes a worker slot, computes, and
	// publishes. Results are pure functions of the children, so
	// scheduling cannot influence any atom.
	done := make([]chan struct{}, 2*n-1)
	closed := make(chan struct{})
	close(closed)
	for i := 0; i < n; i++ {
		done[i] = closed
	}
	for k := range plan {
		done[n+k] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	for k, st := range plan {
		go func(id int, st mergeStep) {
			<-done[st.l]
			<-done[st.r]
			sem <- struct{}{}
			// The node's split convolution draws any extra parallelism
			// from the same semaphore (its own slot counts as one), so
			// concurrent big merges can never oversubscribe the pool
			// to workers^2 goroutines. On cancellation the node is
			// skipped (its result stays nil — parents skip too) but its
			// done still closes, so no goroutine outlives the call.
			if checkCancel() == nil {
				results[id] = convolveWorkersSem(results[st.l], results[st.r], workers, sem).CoarsenToWith(maxSupport, strategy)
			}
			<-sem
			close(done[id])
		}(n+k, st)
	}
	<-done[2*n-2]
	if err := checkCancel(); err != nil {
		return nil, err
	}
	return results[2*n-2], nil
}

// parallelFor runs body(chunk) for every chunk in [0, chunks) on the
// calling goroutine plus up to workers-1 helpers, then waits for
// completion. When sem is non-nil each helper must win a slot from it
// non-blockingly — the caller participates unconditionally (its slot
// is already accounted for), so progress never deadlocks on a full
// semaphore and total concurrency stays bounded by the semaphore's
// capacity. Which goroutine executes which chunk can never influence
// the result: chunks write disjoint state.
func parallelFor(chunks, workers int, sem chan struct{}, body func(chunk int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			body(c)
		}
		return
	}
	var next atomic.Int64
	runner := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			body(c)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		if sem != nil {
			acquired := false
			select {
			case sem <- struct{}{}:
				acquired = true
			default:
			}
			if !acquired {
				break // pool saturated: the caller works alone from here
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner()
			if sem != nil {
				<-sem
			}
		}()
	}
	runner()
	wg.Wait()
}
