package dist

import (
	"runtime"
	"sync"
)

// ConvolveAll returns the distribution of the sum of all ds (mutually
// independent random variables), reducing them by a pairwise binary
// tree instead of a left fold: level after level, neighbors (0,1),
// (2,3), ... are convolved, an odd trailing element passes through
// unchanged. Each partial product is coarsened to maxSupport support
// points only when it exceeds the cap (CoarsenTo is the identity below
// it), so the result carries the same soundness contract as the fold:
// a pessimistic upper bound on the exceedance curve whenever the cap
// binds, the exact distribution otherwise. maxSupport <= 0 disables
// coarsening.
//
// workers bounds the goroutines convolving pairs of one tree level
// concurrently; 0 means GOMAXPROCS, 1 is fully sequential. The tree
// shape is fixed by len(ds) alone and every pair's product is a pure
// function of its two children, so the result is byte-identical for
// every worker count. Besides enabling parallelism, the tree keeps the
// operands of each convolution balanced in support size, which is why
// even workers=1 typically beats the fold on many-set configurations.
//
// An empty ds yields Degenerate(0), the neutral element of convolution.
//
// ConvolveAll coarsens with the default CoarsenLeastError strategy;
// ConvolveAllWith selects the strategy explicitly.
func ConvolveAll(ds []*Dist, maxSupport, workers int) *Dist {
	return ConvolveAllWith(ds, maxSupport, workers, CoarsenLeastError)
}

// ConvolveAllWith is ConvolveAll with an explicit coarsening strategy
// applied to every over-cap partial product (and the final result).
// The strategy never changes which pairs convolve — only how each
// partial is reduced — so the same worker-count independence holds for
// every strategy.
func ConvolveAllWith(ds []*Dist, maxSupport, workers int, strategy CoarsenStrategy) *Dist {
	if len(ds) == 0 {
		return Degenerate(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	level := make([]*Dist, len(ds))
	copy(level, ds)
	for len(level) > 1 {
		pairs := len(level) / 2
		next := make([]*Dist, (len(level)+1)/2)
		if len(level)%2 == 1 {
			next[pairs] = level[len(level)-1]
		}
		w := workers
		if w > pairs {
			w = pairs
		}
		if w <= 1 {
			for i := 0; i < pairs; i++ {
				next[i] = level[2*i].Convolve(level[2*i+1]).CoarsenToWith(maxSupport, strategy)
			}
		} else {
			var wg sync.WaitGroup
			jobs := make(chan int)
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						next[i] = level[2*i].Convolve(level[2*i+1]).CoarsenToWith(maxSupport, strategy)
					}
				}()
			}
			for i := 0; i < pairs; i++ {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		}
		level = next
	}
	return level[0].CoarsenToWith(maxSupport, strategy)
}
