package dist

import "fmt"

// Pow returns the distribution of the sum of k independent copies of
// the receiver — the k-fold convolution power d^⊗k — computed by
// exponentiation by squaring: O(log k) convolutions instead of the
// k−1 of a sequential fold. Distributions form a commutative monoid
// under Convolve with Degenerate(0) as the neutral element, which is
// exactly what makes the square-and-multiply recombination valid;
// ConvolveAll exploits the same structure implicitly by sharing the
// repeated subtrees of its merge plan when many inputs are equal.
//
// k == 0 returns Degenerate(0); k == 1 returns the receiver itself.
// Pow panics for k < 0 and, like Convolve, when an extreme support
// value of the result (k·Min or k·Max) is not representable in int64 —
// by the bracketing argument of checkSumOverflow, every intermediate
// square and partial product then fits too, so Pow panics exactly when
// the sequential fold would.
//
// Pow is exact: no coarsening is applied and the support is identical
// to the fold's. Because floating-point addition is not associative,
// atom probabilities may differ from the sequential fold's by
// reassociation rounding of a few ulps (FuzzPow bounds the drift); the
// combine order is a pure function of k, so the result itself is
// deterministic.
func (d *Dist) Pow(k int) *Dist {
	if k < 0 {
		panic(fmt.Sprintf("dist: Pow: negative exponent %d", k))
	}
	if k == 0 {
		return Degenerate(0)
	}
	checkPowOverflow(d.values[0], k)
	checkPowOverflow(d.values[len(d.values)-1], k)
	// LSB-first binary decomposition of k: sq walks d^1, d^2, d^4, ...
	// and acc multiplies in the powers at the set bits.
	var acc *Dist
	sq := d
	for {
		if k&1 == 1 {
			if acc == nil {
				acc = sq
			} else {
				acc = acc.Convolve(sq)
			}
		}
		k >>= 1
		if k == 0 {
			return acc
		}
		sq = sq.Convolve(sq)
	}
}

// checkPowOverflow panics when v·k overflows int64. The extreme
// support values of d^⊗k are k·Min and k·Max; interior sums are
// bracketed by them, mirroring Convolve's extreme-pair check.
func checkPowOverflow(v int64, k int) {
	if v == 0 {
		return
	}
	k64 := int64(k)
	if prod := v * k64; prod/k64 != v {
		panic(fmt.Sprintf("dist: Pow overflows int64: %d * %d is not representable", v, k))
	}
}
