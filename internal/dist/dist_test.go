package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func mustNew(t *testing.T, pts []Point) *Dist {
	t.Helper()
	d, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		want string // substring of the expected error, "" = success
	}{
		{"empty", nil, "no points"},
		{"negative", []Point{{0, -0.1}, {1, 1.1}}, "negative"},
		{"nan", []Point{{0, math.NaN()}, {1, 1}}, "NaN"},
		{"inf", []Point{{0, math.Inf(1)}, {1, 0.5}}, "+Inf"},
		{"zero mass", []Point{{0, 0}, {1, 0}}, "zero total mass"},
		{"mass too low", []Point{{0, 0.5}, {1, 0.4}}, "deviates"},
		{"mass too high", []Point{{0, 0.6}, {1, 0.6}}, "deviates"},
		{"exact", []Point{{0, 0.25}, {1, 0.75}}, ""},
		{"within tolerance", []Point{{0, 0.5}, {1, 0.5 + 1e-10}}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, err := New(c.pts)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if m := d.Mass(); math.Abs(m-1) > 1e-12 {
					t.Errorf("mass %g after normalization", m)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestNewMergesAndDrops(t *testing.T) {
	// Duplicate values merge; zero-probability atoms disappear (so Max
	// reflects only reachable values — the pfail=0 invariant upstream).
	d := mustNew(t, []Point{{5, 0.25}, {0, 0.5}, {5, 0.25}, {700, 0}})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Max() != 5 || d.Min() != 0 {
		t.Errorf("support [%d,%d], want [0,5]", d.Min(), d.Max())
	}
	pts := d.Points()
	if pts[0] != (Point{0, 0.5}) || pts[1] != (Point{5, 0.5}) {
		t.Errorf("points = %v", pts)
	}
}

func TestDegenerate(t *testing.T) {
	d := Degenerate(42)
	if d.Len() != 1 || d.Max() != 42 || d.Min() != 42 || d.Mass() != 1 {
		t.Fatalf("bad degenerate: %+v", d)
	}
	if d.CCDF(41) != 1 || d.CCDF(42) != 0 {
		t.Error("degenerate CCDF wrong")
	}
	if d.QuantileExceedance(0.5) != 42 || d.Quantile(0.5) != 42 {
		t.Error("degenerate quantiles wrong")
	}
	if d.Mean() != 42 {
		t.Error("degenerate mean wrong")
	}
}

// TestGoldenCCDFAndQuantiles checks CCDF, QuantileExceedance and
// Quantile against a hand-computed table for a four-atom distribution.
func TestGoldenCCDFAndQuantiles(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.9}, {10, 0.09}, {20, 0.009}, {30, 0.001}})
	// CCDF: P(X > t).
	ccdf := []struct {
		t    int64
		want float64
	}{
		{-1, 1}, {0, 0.1}, {5, 0.1}, {10, 0.01}, {19, 0.01},
		{20, 0.001}, {29, 0.001}, {30, 0}, {1000, 0},
	}
	for _, c := range ccdf {
		if got := d.CCDF(c.t); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("CCDF(%d) = %g, want %g", c.t, got, c.want)
		}
	}
	// QuantileExceedance: smallest support value with CCDF <= p.
	qe := []struct {
		p    float64
		want int64
	}{
		{1, 0}, {0.5, 0}, {0.1, 0}, {0.05, 10}, {0.01, 10},
		{0.005, 20}, {0.001, 20}, {1e-9, 30}, {0, 30}, {-1, 30},
	}
	for _, c := range qe {
		if got := d.QuantileExceedance(c.p); got != c.want {
			t.Errorf("QuantileExceedance(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	// Quantile: smallest support value with CDF >= p.
	q := []struct {
		p    float64
		want int64
	}{
		{0, 0}, {0.5, 0}, {0.9, 0}, {0.91, 10}, {0.99, 10},
		{0.995, 20}, {0.999, 20}, {0.9999, 30}, {1, 30}, {2, 30},
	}
	for _, c := range q {
		if got := d.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

// bruteConvolve enumerates all value pairs into a map — the obviously
// correct O(n·m) reference the optimized Convolve is checked against.
func bruteConvolve(a, b *Dist) map[int64]float64 {
	out := map[int64]float64{}
	for _, pa := range a.Points() {
		for _, pb := range b.Points() {
			out[pa.Value+pb.Value] += pa.Prob * pb.Prob
		}
	}
	return out
}

// TestGoldenConvolve cross-checks Convolve against brute-force
// enumeration on two small hand-built distributions, including the
// hand-computed headline values.
func TestGoldenConvolve(t *testing.T) {
	a := mustNew(t, []Point{{0, 0.5}, {10, 0.3}, {20, 0.2}})
	b := mustNew(t, []Point{{0, 0.7}, {10, 0.2}, {15, 0.1}})
	c := a.Convolve(b)
	// Hand-computed: value 10 arises as 0+10 and 10+0.
	if got := c.CCDF(-1); math.Abs(got-1) > 1e-15 {
		t.Errorf("total mass %g", got)
	}
	want := map[int64]float64{
		0:  0.5 * 0.7,
		10: 0.5*0.2 + 0.3*0.7,
		15: 0.5 * 0.1,
		20: 0.3*0.2 + 0.2*0.7,
		25: 0.3 * 0.1,
		30: 0.2 * 0.2,
		35: 0.2 * 0.1,
	}
	if c.Len() != len(want) {
		t.Fatalf("support size %d, want %d", c.Len(), len(want))
	}
	for _, p := range c.Points() {
		if math.Abs(p.Prob-want[p.Value]) > 1e-15 {
			t.Errorf("P(X=%d) = %g, want %g", p.Value, p.Prob, want[p.Value])
		}
	}
	// And against the brute-force reference.
	brute := bruteConvolve(a, b)
	for _, p := range c.Points() {
		if math.Abs(p.Prob-brute[p.Value]) > 1e-15 {
			t.Errorf("P(X=%d) = %g, brute force %g", p.Value, p.Prob, brute[p.Value])
		}
	}
}

func TestConvolveDegenerateIsShift(t *testing.T) {
	a := mustNew(t, []Point{{3, 0.4}, {8, 0.6}})
	c := a.Convolve(Degenerate(100))
	if c.Len() != 2 || c.Min() != 103 || c.Max() != 108 {
		t.Fatalf("degenerate convolve: %v", c.Points())
	}
	c2 := Degenerate(100).Convolve(a)
	if c2.Min() != 103 || c2.Max() != 108 {
		t.Fatalf("degenerate convolve (flipped): %v", c2.Points())
	}
}

// TestConvolveWidePath forces the wide-span k-way-merge fallback
// (values too spread out for the dense accumulator) and checks it
// against brute force.
func TestConvolveWidePath(t *testing.T) {
	a := mustNew(t, []Point{{0, 0.5}, {1 << 40, 0.5}})
	b := mustNew(t, []Point{{7, 0.25}, {1 << 41, 0.75}})
	c := a.Convolve(b)
	brute := bruteConvolve(a, b)
	if c.Len() != len(brute) {
		t.Fatalf("support size %d, want %d", c.Len(), len(brute))
	}
	for _, p := range c.Points() {
		if math.Abs(p.Prob-brute[p.Value]) > 1e-15 {
			t.Errorf("P(X=%d) = %g, brute force %g", p.Value, p.Prob, brute[p.Value])
		}
	}
}

// TestConvolveWidePathRandom drives the k-way merge with larger random
// wide-span operands — including colliding sums, asymmetric operand
// sizes and negative values — and checks support, mass and every
// probability against brute force.
func TestConvolveWidePathRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		na, nb := 1+rng.Intn(40), 1+rng.Intn(40)
		mk := func(n int) *Dist {
			pts := make([]Point, n)
			for i := range pts {
				// A wide base offset forces the k-way path; a small
				// additive grid makes distinct atoms collide on sums.
				v := int64(rng.Intn(50))*(1<<35) + int64(rng.Intn(8)) - (1 << 38)
				pts[i] = Point{Value: v, Prob: 1}
			}
			for i := range pts {
				pts[i].Prob = 1 / float64(n)
			}
			d, err := New(pts)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		a, b := mk(na), mk(nb)
		c := a.Convolve(b)
		brute := bruteConvolve(a, b)
		if c.Len() != len(brute) {
			t.Fatalf("support size %d, want %d", c.Len(), len(brute))
		}
		var mass float64
		for _, p := range c.Points() {
			if math.Abs(p.Prob-brute[p.Value]) > 1e-12 {
				t.Fatalf("P(X=%d) = %g, brute force %g", p.Value, p.Prob, brute[p.Value])
			}
			mass += p.Prob
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("mass drifted to %g", mass)
		}
	}
}

// TestConvolveFullDomainSpan: operands whose sum range covers the
// entire int64 domain (span - 1 == 2^64 - 1) must take the wide path,
// not wrap the span to 0 and panic in the dense accumulator.
func TestConvolveFullDomainSpan(t *testing.T) {
	a := mustNew(t, []Point{{math.MinInt64, 0.5}, {0, 0.5}})
	b := mustNew(t, []Point{{0, 0.25}, {math.MaxInt64, 0.75}})
	c := a.Convolve(b)
	brute := bruteConvolve(a, b)
	if c.Len() != len(brute) {
		t.Fatalf("support size %d, want %d", c.Len(), len(brute))
	}
	for _, p := range c.Points() {
		if math.Abs(p.Prob-brute[p.Value]) > 1e-15 {
			t.Errorf("P(X=%d) = %g, brute force %g", p.Value, p.Prob, brute[p.Value])
		}
	}
}

// TestConvolveOverflowPanics: a pair sum outside int64 must fail
// loudly instead of wrapping into the bottom of the value domain.
func TestConvolveOverflowPanics(t *testing.T) {
	a := mustNew(t, []Point{{math.MaxInt64 - 10, 0.5}, {0, 0.5}})
	b := mustNew(t, []Point{{100, 0.5}, {0, 0.5}})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "overflows int64") {
			t.Fatalf("recover() = %v, want overflow panic", r)
		}
	}()
	a.Convolve(b)
}

func TestShift(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.5}, {10, 0.5}})
	s := d.Shift(7)
	if s.Min() != 7 || s.Max() != 17 {
		t.Errorf("shift support [%d,%d]", s.Min(), s.Max())
	}
	if s.CCDF(7) != 0.5 || s.CCDF(16) != 0.5 || s.CCDF(17) != 0 {
		t.Error("shift CCDF wrong")
	}
	if d.Shift(0) != d {
		t.Error("Shift(0) must return the receiver")
	}
	if d.Min() != 0 {
		t.Error("Shift mutated the receiver")
	}
}

// TestShiftOverflowPanics: v + delta wrapping past either end of
// int64 must panic with a clear message, not silently corrupt the
// support (the adversarial penalty/WCET-sum regression).
func TestShiftOverflowPanics(t *testing.T) {
	cases := []struct {
		name  string
		pts   []Point
		delta int64
	}{
		{"positive", []Point{{0, 0.5}, {math.MaxInt64 - 5, 0.5}}, 10},
		{"negative", []Point{{math.MinInt64 + 5, 0.5}, {0, 0.5}}, -10},
		{"max delta", []Point{{1, 1}}, math.MaxInt64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := mustNew(t, c.pts)
			defer func() {
				if r := recover(); r == nil || !strings.Contains(r.(string), "overflows int64") {
					t.Fatalf("recover() = %v, want overflow panic", r)
				}
			}()
			d.Shift(c.delta)
		})
	}
	// The extremes staying in range must keep working, including at the
	// exact boundary.
	d := mustNew(t, []Point{{0, 0.5}, {math.MaxInt64 - 10, 0.5}})
	if s := d.Shift(10); s.Max() != math.MaxInt64 {
		t.Errorf("boundary shift Max = %d", s.Max())
	}
}

// TestQuantileBoundarySemantics pins the documented boundary behavior
// of Quantile, QuantileExceedance and CCDF on a sub-unit-mass
// distribution (as arises after long mass-conserving-but-not-
// renormalizing operation chains; built directly via fromSorted so the
// boundary probabilities are exact powers of two). The doc promises:
// Quantile returns Max() for every p > Mass() — not only p > 1 — and
// at p == Mass(); Min() for p <= 0; QuantileExceedance returns Max()
// at p == 0; CCDF below the support minimum is Mass(), not 1.
func TestQuantileBoundarySemantics(t *testing.T) {
	sub := fromSorted([]int64{0, 10, 20}, []float64{0.5, 0.25, 0.125})
	if m := sub.Mass(); m != 0.875 {
		t.Fatalf("test construction: Mass = %g, want 0.875", m)
	}
	q := []struct {
		p    float64
		want int64
	}{
		{-1, 0}, {0, 0}, {0.5, 0}, {0.75, 10}, {0.8, 20},
		{0.875, 20},         // p == Mass(): the full-mass value
		{0.875 + 1e-12, 20}, // p slightly above Mass(): clamps to Max
		{0.9, 20}, {1, 20},  // p in (Mass, 1]: same clamp, per the doc
		{2, 20}, // p > 1: the historically documented case
	}
	for _, c := range q {
		if got := sub.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	qe := []struct {
		p    float64
		want int64
	}{
		{0.875, 0}, {0.375, 0}, {0.375 - 1e-12, 10}, {0.125, 10},
		{0.1, 20},
		{0, 20},  // p == 0: CCDF(Max) == 0 is the only qualifying value
		{-1, 20}, // p < 0: same clamp
	}
	for _, c := range qe {
		if got := sub.QuantileExceedance(c.p); got != c.want {
			t.Errorf("QuantileExceedance(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	for _, tt := range []int64{-100, -1} {
		if got := sub.CCDF(tt); got != 0.875 {
			t.Errorf("CCDF(%d) = %g, want Mass() = 0.875", tt, got)
		}
	}
	// A unit-mass distribution keeps the familiar behavior: Mass() == 1
	// and p == 1 selects Max().
	unit := mustNew(t, []Point{{0, 0.5}, {10, 0.5}})
	if got := unit.Quantile(1); got != 10 {
		t.Errorf("unit Quantile(1) = %d, want 10", got)
	}
	if got := unit.Quantile(math.Nextafter(1, 2)); got != 10 {
		t.Errorf("unit Quantile(1+ulp) = %d, want 10", got)
	}
}

func TestAddIsConvolve(t *testing.T) {
	a := mustNew(t, []Point{{1, 0.5}, {2, 0.5}})
	b := mustNew(t, []Point{{10, 0.5}, {20, 0.5}})
	x, y := a.Add(b), a.Convolve(b)
	if x.Len() != y.Len() {
		t.Fatal("Add disagrees with Convolve")
	}
	for i, p := range x.Points() {
		if y.Points()[i] != p {
			t.Fatal("Add disagrees with Convolve")
		}
	}
}

func TestCurveMatchesCCDF(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.9}, {100, 0.09}, {200, 0.01}})
	curve := d.Curve()
	if len(curve) != d.Len() {
		t.Fatal("curve length mismatch")
	}
	for _, pt := range curve {
		if got := d.CCDF(pt.Value); got != pt.Prob {
			t.Errorf("Curve and CCDF disagree at %d: %g vs %g", pt.Value, pt.Prob, got)
		}
	}
	if last := curve[len(curve)-1]; last.Prob != 0 {
		t.Error("curve must end at probability 0")
	}
}

func TestMean(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.5}, {10, 0.25}, {20, 0.25}})
	if m := d.Mean(); math.Abs(m-7.5) > 1e-12 {
		t.Errorf("Mean = %g, want 7.5", m)
	}
}

// TestGoldenCoarsenTo pins the coarsening scheme on a hand-built
// distribution: the lightest atoms merge upward into the next retained
// atom, the maximum always survives.
func TestGoldenCoarsenTo(t *testing.T) {
	d := mustNew(t, []Point{{0, 0.5}, {1, 0.3}, {2, 0.1}, {3, 0.06}, {4, 0.04}})
	c := d.CoarsenTo(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Lightest non-max atoms are 3 (0.06) and 2 (0.1): both merge into
	// the retained atom above them, the maximum 4.
	want := []Point{{0, 0.5}, {1, 0.3}, {4, 0.2}}
	for i, p := range c.Points() {
		if p.Value != want[i].Value || math.Abs(p.Prob-want[i].Prob) > 1e-15 {
			t.Errorf("atom %d = %v, want %v", i, p, want[i])
		}
	}
	// No-op cases return the receiver untouched.
	if d.CoarsenTo(5) != d || d.CoarsenTo(100) != d || d.CoarsenTo(0) != d || d.CoarsenTo(-1) != d {
		t.Error("CoarsenTo must be a no-op when the support already fits")
	}
	// Collapsing to a single atom puts all mass on the maximum.
	one := d.CoarsenTo(1)
	if one.Len() != 1 || one.Max() != 4 || math.Abs(one.Mass()-1) > 1e-12 {
		t.Errorf("CoarsenTo(1) = %v", one.Points())
	}
}

func TestDominatedBy(t *testing.T) {
	small := mustNew(t, []Point{{0, 0.9}, {10, 0.1}})
	big := mustNew(t, []Point{{0, 0.5}, {10, 0.3}, {20, 0.2}})
	if !small.DominatedBy(big, 0) {
		t.Error("small must be dominated by big")
	}
	if big.DominatedBy(small, 1e-9) {
		t.Error("big must not be dominated by small")
	}
	if !big.DominatedBy(big, 0) {
		t.Error("domination must be reflexive")
	}
	// A large tolerance absorbs the gap.
	if !big.DominatedBy(small, 1) {
		t.Error("tolerance 1 must make everything dominated")
	}
}
