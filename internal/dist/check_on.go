//go:build pwcetcheck

package dist

// checkEnabled gates the pwcetcheck sanitizer assertions (see check.go).
// Build or test with -tags pwcetcheck to turn every Dist construction
// into an invariant check; without the tag the guard is a compile-time
// false and the checks cost nothing.
const checkEnabled = true
