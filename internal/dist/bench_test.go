package dist

// Perf baselines for the convolution hot path and coarsening, at the
// support sizes the analysis actually folds (the accumulator is capped
// at core.DefaultMaxSupport = 4096; 1k and 10k bracket it). The
// "xSet" benchmarks convolve a large accumulator with a 5-atom per-set
// distribution — the exact shape convolveFMM executes once per cache
// set — while "xSelf" measures the quadratic worst case.

import (
	"math/rand"
	"testing"
)

// benchDist builds an n-atom accumulator-like distribution: values on
// the miss-penalty grid, mass geometrically concentrated at the
// bottom like a convolved fault distribution.
func benchDist(n int, seed int64) *Dist {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	w := make([]float64, n)
	var sum float64
	decay := 1.0
	for i := range w {
		w[i] = decay * (rng.Float64() + 0.01)
		decay *= 0.995
		sum += w[i]
	}
	v := int64(0)
	for i := range pts {
		pts[i] = Point{Value: v, Prob: w[i] / sum}
		v += 100 * int64(1+rng.Intn(3))
	}
	d, err := New(pts)
	if err != nil {
		panic(err)
	}
	return d
}

// benchSetDist is a 5-atom per-set penalty distribution (4-way cache:
// f = 0..4 faulty ways) with the paper's skew.
func benchSetDist() *Dist {
	d, err := New([]Point{
		{0, 0.95}, {800, 0.04}, {2100, 0.009}, {3600, 0.0009}, {5200, 0.0001},
	})
	if err != nil {
		panic(err)
	}
	return d
}

func benchmarkConvolveSet(b *testing.B, n int) {
	acc := benchDist(n, 11)
	set := benchSetDist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acc.Convolve(set)
	}
}

func BenchmarkConvolve1kxSet(b *testing.B)  { benchmarkConvolveSet(b, 1_000) }
func BenchmarkConvolve10kxSet(b *testing.B) { benchmarkConvolveSet(b, 10_000) }

func BenchmarkConvolve1kxSelf(b *testing.B) {
	d := benchDist(1_000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Convolve(d)
	}
}

func benchmarkCoarsenTo(b *testing.B, n, maxSupport int) {
	d := benchDist(n, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.CoarsenTo(maxSupport)
	}
}

func BenchmarkCoarsenTo1k(b *testing.B)  { benchmarkCoarsenTo(b, 1_000, 256) }
func BenchmarkCoarsenTo10k(b *testing.B) { benchmarkCoarsenTo(b, 10_000, 4096) }
