package dist

// Perf baselines for the convolution hot path and coarsening, at the
// support sizes the analysis actually folds (the accumulator is capped
// at core.DefaultMaxSupport = 4096; 1k and 10k bracket it). The
// "xSet" benchmarks convolve a large accumulator with a 5-atom per-set
// distribution — the exact shape convolveFMM executes once per cache
// set — while "xSelf" measures the quadratic worst case.

import (
	"math/rand"
	"testing"
)

// benchDist builds an n-atom accumulator-like distribution: values on
// the miss-penalty grid, mass geometrically concentrated at the
// bottom like a convolved fault distribution.
func benchDist(n int, seed int64) *Dist {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	w := make([]float64, n)
	var sum float64
	decay := 1.0
	for i := range w {
		w[i] = decay * (rng.Float64() + 0.01)
		decay *= 0.995
		sum += w[i]
	}
	v := int64(0)
	for i := range pts {
		pts[i] = Point{Value: v, Prob: w[i] / sum}
		v += 100 * int64(1+rng.Intn(3))
	}
	d, err := New(pts)
	if err != nil {
		panic(err)
	}
	return d
}

// benchSetDist is a 5-atom per-set penalty distribution (4-way cache:
// f = 0..4 faulty ways) with the paper's skew.
func benchSetDist() *Dist {
	d, err := New([]Point{
		{0, 0.95}, {800, 0.04}, {2100, 0.009}, {3600, 0.0009}, {5200, 0.0001},
	})
	if err != nil {
		panic(err)
	}
	return d
}

func benchmarkConvolveSet(b *testing.B, n int) {
	acc := benchDist(n, 11)
	set := benchSetDist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acc.Convolve(set)
	}
}

func BenchmarkConvolve1kxSet(b *testing.B)  { benchmarkConvolveSet(b, 1_000) }
func BenchmarkConvolve10kxSet(b *testing.B) { benchmarkConvolveSet(b, 10_000) }

func BenchmarkConvolve1kxSelf(b *testing.B) {
	d := benchDist(1_000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Convolve(d)
	}
}

// benchWideDist builds an n-atom distribution whose values spread far
// beyond maxDenseSpan, forcing Convolve onto the wide-span k-way-merge
// path (the shape of the high levels of ConvolveAll's reduction tree).
func benchWideDist(n int, seed int64) *Dist {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	v := int64(0)
	for i := range pts {
		pts[i] = Point{Value: v, Prob: 1}
		v += int64(1 + rng.Intn(1<<24))
	}
	for i := range pts {
		pts[i].Prob = 1 / float64(n)
	}
	d, err := New(pts)
	if err != nil {
		panic(err)
	}
	return d
}

// BenchmarkConvolveWideSpan measures the wide-span convolution path
// that used to materialize and sort all n·m pairs (the sort-bound
// stage of high ConvolveAll tree levels) and is now a k-way heap
// merge.
func BenchmarkConvolveWideSpan(b *testing.B) {
	x := benchWideDist(2_000, 14)
	y := benchWideDist(2_000, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Convolve(y)
	}
}

// BenchmarkPow measures the exact square-and-multiply k-fold
// convolution on the 5-atom per-set shape. k = 64 keeps a full
// squaring chain (6 squares plus partial-product merges) while the
// uncoarsened supports stay small enough for a stable multi-iteration
// measurement; inside ConvolveAll the same chain runs with in-tree
// coarsening (BenchmarkConvolveAllEqualInputs measures that).
func BenchmarkPow(b *testing.B) {
	d := benchSetDist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Pow(64)
	}
}

// BenchmarkConvolveAllEqualInputs is the monoid fast path in
// isolation: 256 identical per-set distributions, which class
// detection collapses to a single Pow-style shared subtree (8 unique
// convolutions) instead of 255.
func BenchmarkConvolveAllEqualInputs(b *testing.B) {
	ds := make([]*Dist, 256)
	for i := range ds {
		ds[i] = benchSetDist()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := ConvolveAll(ds, 4096, 1)
		_ = total.QuantileExceedance(1e-15)
	}
}

func benchmarkCoarsenTo(b *testing.B, n, maxSupport int, strategy CoarsenStrategy) {
	d := benchDist(n, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.CoarsenToWith(maxSupport, strategy)
	}
}

func BenchmarkCoarsenTo1k(b *testing.B)  { benchmarkCoarsenTo(b, 1_000, 256, CoarsenLeastError) }
func BenchmarkCoarsenTo10k(b *testing.B) { benchmarkCoarsenTo(b, 10_000, 4096, CoarsenLeastError) }
func BenchmarkCoarsenKeepHeaviest10k(b *testing.B) {
	benchmarkCoarsenTo(b, 10_000, 4096, CoarsenKeepHeaviest)
}
