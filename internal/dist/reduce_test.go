package dist

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// foldConvolve is the reference left fold ConvolveAll replaced:
// acc ⊗ d, coarsened after every step.
func foldConvolve(ds []*Dist, maxSupport int) *Dist {
	acc := Degenerate(0)
	for _, d := range ds {
		acc = acc.Convolve(d).CoarsenTo(maxSupport)
	}
	return acc
}

func randomDists(t *testing.T, rng *rand.Rand, count, maxN int) []*Dist {
	t.Helper()
	ds := make([]*Dist, count)
	for i := range ds {
		ds[i] = randomDist(t, rng, maxN)
	}
	return ds
}

// TestConvolveAllMatchesFoldExact: with an unbinding support cap the
// tree reduction computes the same distribution as the sequential fold
// — identical support, probabilities equal up to reassociation
// rounding, and identical quantiles at every probability the pipeline
// reads (the golden values of the pWCET analysis).
func TestConvolveAllMatchesFoldExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		ds := randomDists(t, rng, 1+rng.Intn(12), 6)
		const cap = 1 << 20 // never binds on these sizes
		tree := ConvolveAll(ds, cap, 1+rng.Intn(4))
		fold := foldConvolve(ds, cap)
		if tree.Len() != fold.Len() {
			t.Fatalf("support sizes differ: tree %d, fold %d", tree.Len(), fold.Len())
		}
		fp := fold.Points()
		for i, p := range tree.Points() {
			if p.Value != fp[i].Value {
				t.Fatalf("support differs at %d: %d vs %d", i, p.Value, fp[i].Value)
			}
			if math.Abs(p.Prob-fp[i].Prob) > 1e-12 {
				t.Fatalf("probability differs at value %d: %g vs %g", p.Value, fp[i].Prob, p.Prob)
			}
		}
		for _, q := range []float64{0.5, 1e-2, 1e-4, 1e-6, 1e-9, 1e-12, 1e-15} {
			if a, b := tree.QuantileExceedance(q), fold.QuantileExceedance(q); a != b {
				t.Fatalf("quantile at %g differs: tree %d, fold %d", q, a, b)
			}
		}
	}
}

// TestConvolveAllWorkerCountIrrelevant: the reduction is byte-identical
// for every worker count, binding cap or not.
func TestConvolveAllWorkerCountIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 60; iter++ {
		ds := randomDists(t, rng, 1+rng.Intn(20), 8)
		maxSupport := 2 + rng.Intn(64)
		ref := ConvolveAll(ds, maxSupport, 1)
		for _, workers := range []int{0, 2, 3, 7, 16} {
			got := ConvolveAll(ds, maxSupport, workers)
			if got.Len() != ref.Len() {
				t.Fatalf("workers=%d: support size %d vs %d", workers, got.Len(), ref.Len())
			}
			rp := ref.Points()
			for i, p := range got.Points() {
				if p != rp[i] {
					t.Fatalf("workers=%d: atom %d is %+v, want %+v (must be byte-identical)",
						workers, i, p, rp[i])
				}
			}
		}
	}
}

// TestConvolveAllSoundWhenCapBinds: with a binding cap the tree result
// must stochastically dominate the exact (uncoarsened) distribution —
// same contract as the fold — conserve mass, and keep the exact
// support maximum.
func TestConvolveAllSoundWhenCapBinds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 60; iter++ {
		ds := randomDists(t, rng, 2+rng.Intn(10), 5)
		exact := ConvolveAll(ds, 0, 1) // cap disabled: exact distribution
		maxSupport := 2 + rng.Intn(16)
		coarse := ConvolveAll(ds, maxSupport, 2)
		if coarse.Len() > maxSupport {
			t.Fatalf("support %d exceeds cap %d", coarse.Len(), maxSupport)
		}
		if coarse.Max() != exact.Max() {
			t.Fatalf("support maximum changed: %d vs %d", coarse.Max(), exact.Max())
		}
		if m := coarse.Mass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("mass drifted to %g", m)
		}
		if !exact.DominatedBy(coarse, 1e-9) {
			t.Fatal("coarse tree result does not dominate the exact distribution")
		}
	}
}

// TestConvolveAllEdgeCases: empty input is the neutral element; a
// single distribution is returned coarsened, like the fold would.
func TestConvolveAllEdgeCases(t *testing.T) {
	if d := ConvolveAll(nil, 16, 4); d.Len() != 1 || d.Max() != 0 {
		t.Fatalf("empty reduction = %v, want Degenerate(0)", d.Points())
	}
	rng := rand.New(rand.NewSource(14))
	d := randomDist(t, rng, 40)
	got := ConvolveAll([]*Dist{d}, 8, 4)
	want := d.CoarsenTo(8)
	if got.Len() != want.Len() {
		t.Fatalf("single-dist reduction has %d atoms, want %d", got.Len(), want.Len())
	}
	wp := want.Points()
	for i, p := range got.Points() {
		if p != wp[i] {
			t.Fatalf("single-dist atom %d: %+v vs %+v", i, p, wp[i])
		}
	}
}

// FuzzConvolveAll feeds arbitrary byte-derived distribution lists to
// the parallel reduction and checks the invariants that must hold for
// any input: worker-count independence (byte-identical atoms), support
// cap respected, unit mass conserved, and dominance over the exact
// distribution when coarsening kicked in.
func FuzzConvolveAll(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(8), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{9, 200, 9, 200, 9, 200, 9, 200, 9, 200, 9}, uint8(4), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, cap8, workers8 uint8) {
		maxSupport := 2 + int(cap8)
		workers := int(workers8 % 9)
		// Decode pairs of bytes into atoms, 3 atoms per distribution.
		var ds []*Dist
		var pts []Point
		for len(data) >= 2 {
			v := int64(binary.LittleEndian.Uint16(data[:2]) % 512)
			pts = append(pts, Point{Value: v, Prob: 1})
			data = data[2:]
			if len(pts) == 3 {
				for i := range pts {
					pts[i].Prob = 1.0 / 3
				}
				d, err := New(pts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				ds = append(ds, d)
				pts = nil
			}
		}
		if len(ds) == 0 || len(ds) > 24 {
			return
		}
		got := ConvolveAll(ds, maxSupport, workers)
		if got.Len() > maxSupport {
			t.Fatalf("support %d exceeds cap %d", got.Len(), maxSupport)
		}
		if m := got.Mass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("mass drifted to %g", m)
		}
		ref := ConvolveAll(ds, maxSupport, 1)
		if got.Len() != ref.Len() {
			t.Fatalf("workers=%d changed support size: %d vs %d", workers, got.Len(), ref.Len())
		}
		rp := ref.Points()
		for i, p := range got.Points() {
			if p != rp[i] {
				t.Fatalf("workers=%d changed atom %d: %+v vs %+v", workers, i, p, rp[i])
			}
		}
		exact := ConvolveAll(ds, 0, 2)
		if !exact.DominatedBy(got, 1e-9) {
			t.Fatal("reduction result does not dominate the exact distribution")
		}
	})
}
