package dist

import "testing"

// TestPwcetcheckCatchesCorruptDist: under -tags pwcetcheck, feeding a
// hand-corrupted Dist (atoms out of order) into an operation must panic
// in the sanitizer instead of silently producing a wrong curve. Without
// the tag the test is skipped — the checks are compiled out there.
func TestPwcetcheckCatchesCorruptDist(t *testing.T) {
	if !checkEnabled {
		t.Skip("pwcetcheck tag not enabled; sanitizer assertions are compiled out")
	}
	corrupt := &Dist{
		values: []int64{10, 5}, // unsorted: violates the representation
		probs:  []float64{0.5, 0.5},
		ccdf:   []float64{0.5, 0},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Convolve on a corrupted Dist did not panic under pwcetcheck")
		}
	}()
	_ = corrupt.Convolve(Degenerate(1))
}

// TestPwcetcheckCatchesBrokenCCDF: a ccdf that is not the suffix sum of
// probs (here: stale after a hypothetical in-place mutation) must be
// caught too.
func TestPwcetcheckCatchesBrokenCCDF(t *testing.T) {
	if !checkEnabled {
		t.Skip("pwcetcheck tag not enabled; sanitizer assertions are compiled out")
	}
	corrupt := &Dist{
		values: []int64{1, 2},
		probs:  []float64{0.5, 0.5},
		ccdf:   []float64{0.25, 0}, // suffix sum would be 0.5
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Convolve on a Dist with inconsistent ccdf did not panic under pwcetcheck")
		}
	}()
	_ = corrupt.Convolve(Degenerate(1))
}
