// Package dist implements sparse discrete probability distributions
// over int64 values — the execution-time penalty distributions at the
// heart of the pWCET analysis (paper Sections II.C and III). Each cache
// set contributes a small distribution of fault-induced miss penalties
// (its FMM row weighted by the faulty-way probabilities of equations 2
// and 3); the per-set distributions are convolved (sets fail
// independently) and the pWCET is read off the resulting exceedance
// curve (Figure 3).
//
// # Representation
//
// A Dist is an immutable, sorted, duplicate-free list of atoms
// (value, probability) with a precomputed complementary CDF. All
// methods return new distributions; a *Dist can be shared freely
// across goroutines. The exceedance probability CCDF(t) = P(X > t) is
// strict, so CCDF(Max()) == 0.
//
// # Normalization rules
//
// New validates its input: probabilities must be finite and
// non-negative, duplicate values are merged by summing their mass,
// zero-probability atoms are dropped (they carry no information and
// would corrupt Max), and the remaining total mass must be 1 within
// MassTolerance — inputs further away are rejected, inputs within the
// tolerance are rescaled to exactly sum to 1. Operations (Convolve,
// CoarsenTo, Shift) conserve total mass to floating-point accuracy and
// never renormalize.
//
// # Soundness contract of coarsening
//
// CoarsenTo and CoarsenToWith bound the support size by merging atoms,
// always moving mass to a LARGER value (the support maximum is always
// retained). Mass therefore only ever moves upward, so for every
// threshold t the coarsened exceedance probability is >= the exact
// one: the coarsened distribution is a sound (pessimistic) upper bound
// on the exceedance curve, and any pWCET quantile read from it can
// only grow. It never under-approximates exceedance. The contract
// holds for every CoarsenStrategy; the strategies differ only in how
// tight the bound stays (see coarsen.go).
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// MassTolerance is how far the total input mass of New may deviate
// from 1 and still be accepted (and rescaled). The faulty-way weights
// of equations 2 and 3 are binomial probabilities whose float sum is
// off by at most a few ulps; anything beyond this tolerance indicates
// a caller bug, not rounding.
const MassTolerance = 1e-9

// Point is one (value, probability) atom of a distribution.
type Point struct {
	Value int64
	Prob  float64
}

// Dist is a discrete probability distribution with sparse, sorted
// support. The zero value is not a valid distribution; use New or
// Degenerate.
type Dist struct {
	values []int64   // sorted ascending, no duplicates
	probs  []float64 // probs[i] > 0, sums to 1 (after New)
	ccdf   []float64 // ccdf[i] = P(X > values[i]); ccdf[len-1] == 0
}

// New builds a distribution from points, applying the package's
// normalization rules: negative, NaN or infinite probabilities are
// rejected; duplicate values are merged; zero-probability atoms are
// dropped; the total mass must be 1 within MassTolerance (then the
// atoms are rescaled to sum to exactly 1) or the input is rejected.
func New(points []Point) (*Dist, error) {
	if len(points) == 0 {
		return nil, errors.New("dist: no points")
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	for _, p := range pts {
		if math.IsNaN(p.Prob) || math.IsInf(p.Prob, 0) {
			return nil, fmt.Errorf("dist: probability of value %d is %v", p.Value, p.Prob)
		}
		if p.Prob < 0 {
			return nil, fmt.Errorf("dist: negative probability %g of value %d", p.Prob, p.Value)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value })
	values, probs := mergeSortedPoints(pts)
	if len(values) == 0 {
		return nil, errors.New("dist: zero total mass")
	}
	var mass float64
	for _, p := range probs {
		mass += p
	}
	if math.Abs(mass-1) > MassTolerance {
		return nil, fmt.Errorf("dist: total mass %g deviates from 1 by more than %g", mass, MassTolerance)
	}
	if mass != 1 {
		inv := 1 / mass
		for i := range probs {
			probs[i] *= inv
		}
	}
	return fromSorted(values, probs), nil
}

// Degenerate returns the distribution that takes value v with
// probability 1.
func Degenerate(v int64) *Dist {
	return &Dist{values: []int64{v}, probs: []float64{1}, ccdf: []float64{0}}
}

// mergeSortedPoints merges duplicate values and drops zero-mass atoms
// from value-sorted points, returning the parallel slices of the
// internal representation. Dropping zeros keeps the probs[i] > 0
// invariant: a zero atom carries no information and would corrupt Max.
func mergeSortedPoints(pts []Point) ([]int64, []float64) {
	values := make([]int64, 0, len(pts))
	probs := make([]float64, 0, len(pts))
	for _, p := range pts {
		if n := len(values); n > 0 && values[n-1] == p.Value {
			probs[n-1] += p.Prob
		} else {
			values = append(values, p.Value)
			probs = append(probs, p.Prob)
		}
	}
	out := 0
	for i := range values {
		if probs[i] > 0 {
			values[out], probs[out] = values[i], probs[i]
			out++
		}
	}
	return values[:out], probs[:out]
}

// fromSorted wraps already sorted, deduplicated, positive-mass atoms
// and precomputes the complementary CDF by a single backward suffix
// sum (one deterministic summation order, so CCDF, Curve and the
// quantiles always agree bit-for-bit).
func fromSorted(values []int64, probs []float64) *Dist {
	ccdf := make([]float64, len(values))
	var tail float64
	for i := len(values) - 1; i >= 0; i-- {
		ccdf[i] = tail
		tail += probs[i]
	}
	d := &Dist{values: values, probs: probs, ccdf: ccdf}
	if checkEnabled {
		d.check("fromSorted")
	}
	return d
}

// Len returns the number of support points.
func (d *Dist) Len() int { return len(d.values) }

// Max returns the largest support value.
func (d *Dist) Max() int64 { return d.values[len(d.values)-1] }

// Min returns the smallest support value.
func (d *Dist) Min() int64 { return d.values[0] }

// Mass returns the total probability mass (1 up to floating-point
// error of the operations applied since New).
func (d *Dist) Mass() float64 { return d.ccdf[0] + d.probs[0] }

// Mean returns the expected value.
func (d *Dist) Mean() float64 {
	var m float64
	for i, v := range d.values {
		m += float64(v) * d.probs[i]
	}
	return m
}

// Points returns a copy of the support as (value, probability) atoms,
// sorted by ascending value.
func (d *Dist) Points() []Point {
	pts := make([]Point, len(d.values))
	for i, v := range d.values {
		pts[i] = Point{Value: v, Prob: d.probs[i]}
	}
	return pts
}

// Curve returns the exceedance curve: one (value, P(X > value)) point
// per support value, sorted by ascending value. The probabilities are
// non-increasing and the last one is 0.
func (d *Dist) Curve() []Point {
	pts := make([]Point, len(d.values))
	for i, v := range d.values {
		pts[i] = Point{Value: v, Prob: d.ccdf[i]}
	}
	return pts
}

// CCDF returns the exceedance probability P(X > t). For t below the
// support minimum it returns the total Mass() — exactly 1 after New,
// but possibly a few ulps away after long operation chains, since
// operations conserve mass only to floating-point accuracy and never
// renormalize.
func (d *Dist) CCDF(t int64) float64 {
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] > t })
	if i == 0 {
		return d.Mass()
	}
	return d.ccdf[i-1]
}

// QuantileExceedance returns the smallest support value t with
// P(X > t) <= p: the tightest bound whose exceedance probability meets
// the target. It is monotone non-increasing in p and returns Max()
// for p <= 0 — at p == 0 exactly, Max() is the unique answer, because
// CCDF(Max()) == 0 by construction while every smaller support value
// keeps a strictly positive exceedance (all atoms carry positive
// mass).
func (d *Dist) QuantileExceedance(p float64) int64 {
	i := sort.Search(len(d.ccdf), func(i int) bool { return d.ccdf[i] <= p })
	// Always found: ccdf[len-1] == 0 <= p for any p >= 0, and a
	// negative p selects the last index too.
	if i == len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Quantile returns the smallest support value v with P(X <= v) >= p
// (the usual CDF quantile). The CDF's supremum is Mass() — exactly 1
// after New, but possibly a few ulps below after long operation chains
// — so the boundary behavior is defined in terms of Mass(), not 1:
//
//   - p > Mass() (which includes every p > 1): no support value
//     qualifies; Quantile returns Max(), the sound top of the support.
//   - p == Mass(): returns Max(), the unique value whose CDF reaches
//     the full mass (every atom carries strictly positive probability).
//   - p <= 0: every value qualifies; returns Min().
func (d *Dist) Quantile(p float64) int64 {
	mass := d.Mass()
	i := sort.Search(len(d.values), func(i int) bool { return mass-d.ccdf[i] >= p })
	if i == len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Shift returns the distribution of X + delta. The probability
// vectors are shared with the receiver (both are immutable).
//
// Shift panics when v + delta overflows int64 for any support value:
// silently wrapping would teleport tail mass to the bottom of the
// value domain and break the soundness contract (an adversarial
// penalty or WCET sum must fail loudly, not produce an optimistic
// curve). Since the support is sorted it suffices to check the
// extremes, which is what the implementation does.
func (d *Dist) Shift(delta int64) *Dist {
	if delta == 0 {
		return d
	}
	if bound := d.values[len(d.values)-1]; delta > 0 && bound > math.MaxInt64-delta {
		panic(fmt.Sprintf("dist: Shift overflows int64: value %d + delta %d is not representable", bound, delta))
	}
	if bound := d.values[0]; delta < 0 && bound < math.MinInt64-delta {
		panic(fmt.Sprintf("dist: Shift overflows int64: value %d + delta %d is not representable", bound, delta))
	}
	values := make([]int64, len(d.values))
	for i, v := range d.values {
		values[i] = v + delta
	}
	out := &Dist{values: values, probs: d.probs, ccdf: d.ccdf}
	if checkEnabled {
		out.check("Shift")
	}
	return out
}

// Add is the sum of two independent random variables — an alias for
// Convolve kept for call sites that read better additively.
func (d *Dist) Add(o *Dist) *Dist { return d.Convolve(o) }

// DominatedBy reports whether d is stochastically dominated by o up to
// tol: for every threshold t, P(d > t) <= P(o > t) + tol. The CCDFs
// are step functions changing only at support values, so checking at
// every value of the union of both supports is exhaustive.
func (d *Dist) DominatedBy(o *Dist, tol float64) bool {
	i, j := 0, 0
	for i < len(d.values) || j < len(o.values) {
		var t int64
		switch {
		case i == len(d.values):
			t = o.values[j]
			j++
		case j == len(o.values):
			t = d.values[i]
			i++
		case d.values[i] <= o.values[j]:
			t = d.values[i]
			if o.values[j] == t {
				j++
			}
			i++
		default:
			t = o.values[j]
			j++
		}
		if d.CCDF(t) > o.CCDF(t)+tol {
			return false
		}
	}
	return true
}
