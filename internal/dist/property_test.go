package dist

// Property-based tests: randomized distributions checked against the
// package's invariants — mass conservation under every operation, CCDF
// shape, coarsening soundness (exceedance never decreases), and
// convolution commutativity.

import (
	"math"
	"math/rand"
	"testing"
)

// randomDist draws a distribution with up to maxN atoms. Values
// collide on purpose (exercising the merge path) and weights span
// many orders of magnitude (exercising tiny tail masses like the
// faulty-way probabilities).
func randomDist(t *testing.T, rng *rand.Rand, maxN int) *Dist {
	t.Helper()
	n := 1 + rng.Intn(maxN)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(10, -float64(rng.Intn(10))) * (rng.Float64() + 1e-3)
		sum += w[i]
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Value: int64(rng.Intn(500)) * int64(1+rng.Intn(5)), Prob: w[i] / sum}
	}
	d, err := New(pts)
	if err != nil {
		t.Fatalf("randomDist: %v", err)
	}
	return d
}

func checkMass(t *testing.T, d *Dist, context string) {
	t.Helper()
	if m := d.Mass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("%s: total mass %g drifted from 1", context, m)
	}
}

// TestPropertyMassConserved: Convolve, CoarsenTo and Shift all
// conserve total probability mass to within 1e-12.
func TestPropertyMassConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := randomDist(t, rng, 30)
		b := randomDist(t, rng, 30)
		checkMass(t, a.Convolve(b), "Convolve")
		checkMass(t, a.CoarsenTo(1+rng.Intn(a.Len())), "CoarsenTo")
		checkMass(t, a.Shift(int64(rng.Intn(2001)-1000)), "Shift")
	}
}

// TestPropertyCCDFShape: the CCDF is monotone non-increasing in t,
// starts at the total mass below the support, and is exactly 0 at and
// beyond the maximum.
func TestPropertyCCDFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		d := randomDist(t, rng, 40)
		if got := d.CCDF(d.Min() - 1); math.Abs(got-d.Mass()) > 1e-15 {
			t.Fatalf("CCDF below support = %g, want mass %g", got, d.Mass())
		}
		if d.CCDF(d.Max()) != 0 {
			t.Fatal("CCDF(Max) must be 0")
		}
		prev := math.Inf(1)
		for _, pt := range d.Curve() {
			if pt.Prob > prev {
				t.Fatalf("CCDF increased from %g to %g at %d", prev, pt.Prob, pt.Value)
			}
			prev = pt.Prob
		}
		// Spot-check arbitrary thresholds too, including between atoms.
		prev = math.Inf(1)
		for x := d.Min() - 2; x <= d.Max()+2; x += 1 + int64(rng.Intn(3)) {
			c := d.CCDF(x)
			if c > prev {
				t.Fatalf("CCDF(%d) = %g above CCDF at smaller t %g", x, c, prev)
			}
			prev = c
		}
	}
}

// TestPropertyCoarsenSound: coarsening never decreases any exceedance
// probability (the soundness contract), and consequently never lowers
// any exceedance quantile.
func TestPropertyCoarsenSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		d := randomDist(t, rng, 50)
		c := d.CoarsenTo(1 + rng.Intn(d.Len()))
		for _, pt := range d.Curve() {
			if got := c.CCDF(pt.Value); got < pt.Prob-1e-15 {
				t.Fatalf("coarse CCDF(%d) = %g below exact %g", pt.Value, got, pt.Prob)
			}
		}
		if c.Max() != d.Max() {
			t.Fatal("coarsening must retain the support maximum")
		}
		for _, p := range []float64{0.5, 0.1, 1e-3, 1e-6, 1e-9, 1e-15} {
			if c.QuantileExceedance(p) < d.QuantileExceedance(p) {
				t.Fatalf("coarse quantile at %g below exact", p)
			}
		}
	}
}

// TestPropertyConvolveCommutative: a ⊗ b and b ⊗ a agree atom by atom
// on random inputs (associativity of the underlying sums; float
// accumulation order may differ, hence the tolerance).
func TestPropertyConvolveCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		a := randomDist(t, rng, 30)
		b := randomDist(t, rng, 30)
		ab, ba := a.Convolve(b), b.Convolve(a)
		if ab.Len() != ba.Len() {
			t.Fatalf("support sizes differ: %d vs %d", ab.Len(), ba.Len())
		}
		pb := ba.Points()
		for i, p := range ab.Points() {
			if p.Value != pb[i].Value {
				t.Fatalf("values differ at %d: %d vs %d", i, p.Value, pb[i].Value)
			}
			if math.Abs(p.Prob-pb[i].Prob) > 1e-12 {
				t.Fatalf("probs differ at value %d: %g vs %g", p.Value, p.Prob, pb[i].Prob)
			}
		}
	}
}

// TestPropertyConvolveMatchesBruteForce: the optimized convolution
// (dense or sparse path) equals exhaustive enumeration.
func TestPropertyConvolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		a := randomDist(t, rng, 20)
		b := randomDist(t, rng, 20)
		c := a.Convolve(b)
		brute := bruteConvolve(a, b)
		if c.Len() != len(brute) {
			t.Fatalf("support size %d, want %d", c.Len(), len(brute))
		}
		for _, p := range c.Points() {
			if math.Abs(p.Prob-brute[p.Value]) > 1e-12 {
				t.Fatalf("P(X=%d) = %g, brute force %g", p.Value, p.Prob, brute[p.Value])
			}
		}
	}
}

// TestPropertyQuantileConsistency: QuantileExceedance inverts the
// CCDF (its result's exceedance meets the target, the next smaller
// atom's does not), and is monotone as the target tightens.
func TestPropertyQuantileConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		d := randomDist(t, rng, 40)
		prev := int64(math.MinInt64)
		for _, p := range []float64{1, 0.3, 1e-2, 1e-4, 1e-8, 1e-12, 0} {
			v := d.QuantileExceedance(p)
			if v < prev {
				t.Fatalf("quantile shrank from %d to %d as target tightened to %g", prev, v, p)
			}
			prev = v
			if d.CCDF(v) > p {
				t.Fatalf("CCDF(quantile %d) = %g above target %g", v, d.CCDF(v), p)
			}
			if v > d.Min() && p < d.Mass() {
				// The previous support atom must still exceed the target.
				pts := d.Points()
				for i := 1; i < len(pts); i++ {
					if pts[i].Value == v && d.CCDF(pts[i-1].Value) <= p {
						t.Fatalf("quantile %d not minimal for target %g", v, p)
					}
				}
			}
		}
	}
}

// TestPropertyShiftInvariants: shifting translates the support and
// quantiles, leaving probabilities untouched.
func TestPropertyShiftInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		d := randomDist(t, rng, 40)
		delta := int64(rng.Intn(4001) - 2000)
		s := d.Shift(delta)
		if s.Min() != d.Min()+delta || s.Max() != d.Max()+delta {
			t.Fatal("shift moved the support wrongly")
		}
		if s.QuantileExceedance(1e-6) != d.QuantileExceedance(1e-6)+delta {
			t.Fatal("shift broke the quantile")
		}
		if s.CCDF(delta+d.Min()) != d.CCDF(d.Min()) {
			t.Fatal("shift changed a probability")
		}
	}
}
