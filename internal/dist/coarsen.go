// Support coarsening: bounding a distribution's support size without
// ever under-approximating any exceedance probability.
//
// # Soundness contract (both strategies)
//
// Coarsening merges atoms by moving mass to a LARGER support value and
// never anywhere else, so for every threshold t the coarsened
// exceedance probability P(X > t) is >= the exact one: the result is a
// sound (pessimistic) upper bound on the exceedance curve, the support
// maximum is always retained, and total mass is conserved. Both
// strategies are the identity — the receiver itself, bit for bit —
// whenever the support already fits the cap, so results only change at
// all when the cap binds.
//
// # CoarsenLeastError (default)
//
// Greedy adjacent merge by least exceedance-curve error. Merging atom i
// upward into its right neighbor j raises the exceedance curve by
// exactly mass(i) on the interval [v_i, v_j) and nowhere else, adding
// area mass(i)·(v_j − v_i) between the coarse and exact curves. The
// scheme repeatedly merges the adjacent pair with the smallest such
// incremental area (a heap over candidate pairs with lazy
// invalidation, O(n log n)), so light, closely spaced atoms — the deep
// tail dust of a convolved fault distribution — collapse locally
// instead of being flung to the support maximum. The total area added
// to the exceedance curve is the sum of the chosen incremental costs;
// each individual exceedance probability grows by at most the mass
// merged across its threshold, and a quantile read at probability p
// grows by at most the span of the merged run that straddles the exact
// quantile. In the pWCET pipeline this keeps the deep-tail quantiles
// (the 1e-9..1e-15 certification targets) within a small factor of the
// uncapped-exact values even when the cap binds hard (pinned within 2x
// at 1e-12 on a 256-set configuration by TestCoarsenLeastErrorTailFidelity).
//
// # CoarsenKeepHeaviest (legacy)
//
// The PR-1 scheme: keep the maxSupport heaviest atoms in place and
// merge each lighter atom upward into the nearest retained atom above
// it. Exact at every threshold at or above the lightest retained atom
// when the dropped mass is negligible there — which is why it
// reproduces the exact quantiles at the paper's 16-set configurations,
// where the cap barely binds. Its failure mode is the deep tail: the
// tail atoms are the lightest, so once the cap binds hard (far more
// distinct sums than the cap accommodates, e.g. 256-set caches) every
// sub-cap tail atom merges all the way into the support maximum and
// the deepest quantiles jump to Max() — still sound, but ~20x
// pessimistic at 1e-12 (pinned as the regression the default scheme
// fixes, same test as above).
//
// # In-tree variants (the ConvolveAll hot path)
//
// The monoid ConvolveAll executor coarsens inside the merge tree and
// uses two specialized engines built on the same soundness contract:
// coarsenSoft, a linear-time threshold sweep that thins merge operands
// under an explicit exceedance-area budget and a maximum merge-run
// span (it stops early rather than overspend — the support target is
// best-effort), and coarsenLeastErrorCapped, the greedy heap above
// with a run-span eligibility cap that keeps the final hard coarsen
// from collapsing a pre-thinned tail into the support maximum. The
// classic engines remain the only ones reachable through the public
// CoarsenTo/CoarsenToWith API; see the method comments and reduce.go
// for how the executor splits its error budget across tree nodes.
package dist

import (
	"fmt"
	"math"
	"sort"
)

// CoarsenStrategy selects how CoarsenToWith reduces an over-cap
// support. Both strategies obey the same soundness contract (see the
// file comment); they differ only in which atoms merge and therefore
// in how tight the coarsened exceedance curve stays.
type CoarsenStrategy int

const (
	// CoarsenLeastError greedily merges the adjacent atom pair whose
	// upward merge adds the least area to the exceedance curve. The
	// default: tail-faithful when the cap binds, identical to
	// CoarsenKeepHeaviest (the identity) when it does not.
	CoarsenLeastError CoarsenStrategy = iota
	// CoarsenKeepHeaviest keeps the heaviest atoms and merges each
	// lighter atom into the nearest retained atom above it — the legacy
	// scheme, kept for reproducing pre-tail-faithful results.
	CoarsenKeepHeaviest
)

// String names the strategy (the spelling ParseCoarsenStrategy accepts).
func (s CoarsenStrategy) String() string {
	switch s {
	case CoarsenLeastError:
		return "least-error"
	case CoarsenKeepHeaviest:
		return "keep-heaviest"
	default:
		return fmt.Sprintf("coarsen-strategy(%d)", int(s))
	}
}

// Validate rejects values that are not a known strategy.
func (s CoarsenStrategy) Validate() error {
	switch s {
	case CoarsenLeastError, CoarsenKeepHeaviest:
		return nil
	default:
		return fmt.Errorf("dist: unknown coarsening strategy %d (want %s or %s)",
			int(s), CoarsenLeastError, CoarsenKeepHeaviest)
	}
}

// ParseCoarsenStrategy converts "least-error" or "keep-heaviest" to a
// CoarsenStrategy.
func ParseCoarsenStrategy(s string) (CoarsenStrategy, error) {
	switch s {
	case "least-error":
		return CoarsenLeastError, nil
	case "keep-heaviest":
		return CoarsenKeepHeaviest, nil
	default:
		return 0, fmt.Errorf("dist: unknown coarsening strategy %q (want %q or %q)",
			s, CoarsenLeastError.String(), CoarsenKeepHeaviest.String())
	}
}

// CoarsenTo bounds the support to at most maxSupport points using the
// default CoarsenLeastError strategy. A maxSupport <= 0 disables the
// cap entirely (returns the receiver unchanged); callers own the
// support growth in that case.
func (d *Dist) CoarsenTo(maxSupport int) *Dist {
	return d.CoarsenToWith(maxSupport, CoarsenLeastError)
}

// CoarsenToWith bounds the support to at most maxSupport points with
// the given strategy. See the file comment for the shared soundness
// contract and the per-strategy precision characteristics. It returns
// the receiver unchanged when maxSupport <= 0 (cap disabled) or the
// support already fits, and panics on an unknown strategy (callers
// exposing the strategy as configuration should Validate it first).
func (d *Dist) CoarsenToWith(maxSupport int, strategy CoarsenStrategy) *Dist {
	if maxSupport <= 0 || len(d.values) <= maxSupport {
		return d
	}
	switch strategy {
	case CoarsenLeastError:
		return d.coarsenLeastError(maxSupport)
	case CoarsenKeepHeaviest:
		return d.coarsenKeepHeaviest(maxSupport)
	default:
		panic(fmt.Sprintf("dist: CoarsenToWith: %v", strategy.Validate()))
	}
}

// mergeCand is one candidate adjacent merge: atom left into its
// current right neighbor, at the exceedance-area cost recorded when
// the candidate was pushed. Stale candidates (the pair changed since)
// are recognized by the version stamp and skipped on pop.
//
// Candidates live in a flat min-heap ordered by (cost, left) —
// maintained with the package's shared siftDownFunc instead of
// container/heap, whose interface methods box every popped element.
// The in-tree coarsening of ConvolveAll runs this engine at every big
// merge node, so the heap is on the reduction's critical path.
type mergeCand struct {
	cost float64
	left int
	ver  uint32
}

// mergeCandLess orders candidates by cost, ties broken by the left
// index so the merge sequence — and therefore the result — is
// deterministic.
func mergeCandLess(a, b mergeCand) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.left < b.left
}

// coarsenLeastError implements CoarsenLeastError: the capped engine
// with the span cap disabled, which makes every candidate eligible and
// reproduces the classic greedy least-error merge bit for bit.
func (d *Dist) coarsenLeastError(target int) *Dist {
	return d.coarsenLeastErrorCapped(target, math.Inf(1))
}

// coarsenLeastErrorCapped is the greedy least-error merge engine: a
// doubly linked list of live atoms plus a lazily invalidated min-heap
// of adjacent-pair merge costs. Each merge moves the left atom's
// (accumulated) mass to its right neighbor, exactly the upward
// direction the soundness contract requires; the rightmost atom has no
// right neighbor, so the support maximum can never move.
//
// maxGap additionally bounds every merged run's value span: a merge is
// eligible only while destination − (smallest value folded into the
// run) stays within maxGap, so no exceedance quantile — at any
// probability, however deep in the tail — can inflate by more than
// maxGap. ConvolveAll's in-tree mode relies on this: its soft passes
// pre-thin the operands' tail dust, and on such pre-thinned supports
// the uncapped greedy engine's cost equilibrium rises until it flings
// whole near-massless tail bands into the support maximum (exactly the
// keep-heaviest failure mode the least-error scheme exists to avoid).
// With the cap the engine freezes the already-sparse tail and spends
// its merges on the dense body instead. When the cap leaves too few
// eligible merges to reach target (sparse supports clustered wider
// than maxGap), the engine finishes with one uncapped pass over the
// survivors — the support bound is the contract, the span cap is best
// effort.
//
// Eligibility is checked once, when a candidate is pushed: any change
// to a pair — partner, accumulated mass, and with it the run's span —
// bumps ver and re-pushes, so a non-stale candidate's pair is in
// exactly the state it was pushed in, and maxGap = +Inf short-circuits
// the check for the classic engine.
func (d *Dist) coarsenLeastErrorCapped(target int, maxGap float64) *Dist {
	n := len(d.values)
	mass := make([]float64, n)
	copy(mass, d.probs)
	low := make([]float64, n) // smallest original value folded into atom i
	for i, v := range d.values {
		low[i] = float64(v)
	}
	next := make([]int, n)
	prev := make([]int, n)
	ver := make([]uint32, n)
	removed := make([]bool, n)
	for i := range next {
		next[i] = i + 1
		prev[i] = i - 1
	}
	h := make([]mergeCand, 0, n)
	// The gap is computed in float64 (values are sorted, but the int64
	// difference of two extreme values may not fit int64); the cost is
	// a merge-ordering heuristic, so the rounding is harmless.
	append_ := func(i int) {
		j := next[i]
		if float64(d.values[j])-low[i] > maxGap {
			return // run span cap: this merge would travel too far
		}
		h = append(h, mergeCand{
			cost: mass[i] * (float64(d.values[j]) - float64(d.values[i])),
			left: i,
			ver:  ver[i],
		})
	}
	push := func(i int) {
		append_(i)
		for c := len(h) - 1; c > 0; {
			p := (c - 1) / 2
			if !mergeCandLess(h[c], h[p]) {
				break
			}
			h[c], h[p] = h[p], h[c]
			c = p
		}
	}
	for i := 0; i < n-1; i++ {
		append_(i)
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownFunc(h, i, mergeCandLess)
	}
	pop := func() mergeCand {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDownFunc(h, 0, mergeCandLess)
		return top
	}
	// Invariant: every live adjacent pair (i, next[i]) whose merge is
	// span-eligible has at least one heap candidate stamped with the
	// current ver[i]; any change to the pair (partner or mass) bumps
	// ver[i] and re-pushes. Without a span cap there is always a live
	// pair while alive > target >= 1, so the heap runs dry only when
	// the cap has frozen every remaining pair.
	alive := n
	for alive > target && len(h) > 0 {
		c := pop()
		if c.ver != ver[c.left] {
			continue // stale: the pair changed after this candidate was pushed
		}
		i := c.left
		j := next[i]
		mass[j] += mass[i]
		if low[i] < low[j] {
			low[j] = low[i]
		}
		removed[i] = true
		ver[i]++ // i is gone: invalidate (i, j)
		ver[j]++ // j's mass grew: invalidate (j, next[j])
		if p := prev[i]; p >= 0 {
			next[p] = j
			prev[j] = p
			ver[p]++ // p's partner changed: invalidate (p, i)
			push(p)
		} else {
			prev[j] = -1
		}
		if next[j] < n {
			push(j)
		}
		alive--
	}
	values := make([]int64, 0, alive)
	probs := make([]float64, 0, alive)
	for i := 0; i < n; i++ {
		if !removed[i] {
			values = append(values, d.values[i])
			probs = append(probs, mass[i])
		}
	}
	if alive > target {
		// The span cap ran the heap dry early: finish uncapped on the
		// survivors so the support bound always holds.
		return fromSorted(values, probs).coarsenLeastError(target)
	}
	return fromSorted(values, probs)
}

// quickselectFloat partially sorts a in place and returns its k-th
// smallest element (0-indexed). Iterative Hoare partitioning with a
// median-of-three pivot: deterministic, O(len(a)) expected, and immune
// to the sorted and all-equal inputs that break a fixed-end pivot.
func quickselectFloat(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[lo]
}

// coarsenSoft is the in-tree coarsening pass of ConvolveAll: a linear
// threshold approximation of the least-error greedy merge, with two
// hard guards the greedy engine does not need.
//
// It quickselects θ, the (n−target)-th smallest adjacent merge cost
// mass(i)·(v_{i+1} − v_i), then sweeps left to right merging the atoms
// whose cost is below θ (ties at θ are taken left to right until the
// merge count target is met) — approximately the same atom set the
// greedy heap would merge, at O(n) instead of O(n log n). The guards:
//
//   - maxGap bounds every merge run's value span, measured to the run's
//     true destination (the next kept atom). Mass never travels more
//     than maxGap upward, so no exceedance quantile — at any
//     probability, however deep in the tail — can inflate by more than
//     maxGap. The area budget alone cannot provide this: deep-tail
//     atoms carry so little mass that flinging them across huge gaps is
//     nearly free in area yet moves the deep quantiles arbitrarily.
//   - budget bounds the total exceedance-curve area the pass may add
//     (the returned spent, which equals the mean shift); a run that
//     would cross it stays unmerged.
//
// The guards are enforced incrementally per extension against the
// run's current destination, which is exactly the binding check when
// the run finally closes. The support may exceed target when the
// guards bite; the result is the receiver itself when nothing merges.
// Soundness is the same contract as every coarsening here: mass only
// ever moves to a larger support value.
func (d *Dist) coarsenSoft(target int, budget, maxGap float64) (*Dist, float64) {
	n := len(d.values)
	if n <= target {
		return d, 0
	}
	m := n - target
	costs := make([]float64, n-1)
	for i := range costs {
		costs[i] = d.probs[i] * (float64(d.values[i+1]) - float64(d.values[i]))
	}
	sel := make([]float64, n-1)
	copy(sel, costs)
	theta := quickselectFloat(sel, m-1)
	ties := m
	for _, c := range costs {
		if c < theta {
			ties--
		}
	}

	values := make([]int64, 0, target)
	probs := make([]float64, 0, target)
	var spent float64
	// The open run: atoms already marked to merge upward, waiting for
	// the next kept atom. Closing the run at value v adds exactly
	// runMass·v − runMassV of exceedance area.
	var runMass, runMassV, runMin float64
	runOpen := false
	for i := 0; i < n; i++ {
		if i < n-1 {
			c := costs[i]
			if c < theta || (c == theta && ties > 0) {
				lo := float64(d.values[i])
				if runOpen && runMin < lo {
					lo = runMin
				}
				destV := float64(d.values[i+1])
				nm := runMass + d.probs[i]
				nmv := runMassV + d.probs[i]*float64(d.values[i])
				if destV-lo <= maxGap && spent+(nm*destV-nmv) <= budget {
					runMass, runMassV, runMin, runOpen = nm, nmv, lo, true
					if c == theta {
						ties--
					}
					continue
				}
			}
		}
		// Atom i is kept: any open run lands on it.
		p := d.probs[i]
		if runOpen {
			spent += runMass*float64(d.values[i]) - runMassV
			p += runMass
			runMass, runMassV, runOpen = 0, 0, false
		}
		values = append(values, d.values[i])
		probs = append(probs, p)
	}
	if len(values) == n {
		return d, 0
	}
	return fromSorted(values, probs), spent
}

// coarsenKeepHeaviest implements CoarsenKeepHeaviest: rank atoms by
// mass, keep the maxSupport heaviest, and merge every dropped atom
// upward into the next retained atom.
func (d *Dist) coarsenKeepHeaviest(maxSupport int) *Dist {
	n := len(d.values)
	// Rank atoms by mass, excluding the maximum (index n-1), which is
	// always retained so upward merges never lack a destination. Ties
	// break by index for determinism.
	order := make([]int, n-1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d.probs[order[a]] != d.probs[order[b]] {
			return d.probs[order[a]] < d.probs[order[b]]
		}
		return order[a] < order[b]
	})
	drop := make([]bool, n)
	for _, i := range order[:n-maxSupport] {
		drop[i] = true
	}
	values := make([]int64, 0, maxSupport)
	probs := make([]float64, 0, maxSupport)
	var carry float64 // mass of dropped atoms awaiting the next kept atom
	for i := 0; i < n; i++ {
		if drop[i] {
			carry += d.probs[i]
			continue
		}
		values = append(values, d.values[i])
		probs = append(probs, d.probs[i]+carry)
		carry = 0
	}
	return fromSorted(values, probs)
}
