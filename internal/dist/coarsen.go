package dist

import "sort"

// CoarsenTo bounds the support to at most maxSupport points. See the
// package comment for the soundness contract: mass only ever moves to
// a LARGER value, so for every t the coarsened P(X > t) is >= the
// exact one — the result is a sound (pessimistic) upper bound on the
// exceedance curve and never under-approximates any exceedance
// probability.
//
// The scheme keeps the maxSupport heaviest atoms in place and merges
// each lighter atom upward into the nearest retained atom above it.
// The support maximum is always retained. Because the dropped atoms
// are the lightest, every exceedance probability grows by at most the
// dropped mass in its neighborhood — in the pWCET pipeline the atoms
// that pin the deep-tail quantiles (the 1e-9..1e-15 certification
// targets) usually carry more mass than the combinatorial dust beyond
// them, so at the paper's configurations (16 sets, default cap 4096)
// repeated convolve-then-coarsen folding reproduces the exact
// quantiles. That precision is config-dependent, not guaranteed: when
// the cap binds hard (far more sets than the cap accommodates), the
// sub-cap tail atoms merge all the way into the maximum and the
// deepest quantiles become pessimistic — still sound, but loose. A
// tail-aware scheme is a ROADMAP item.
//
// A maxSupport <= 0 disables the cap entirely (returns the receiver
// unchanged); callers own the support growth in that case.
func (d *Dist) CoarsenTo(maxSupport int) *Dist {
	n := len(d.values)
	if maxSupport <= 0 || n <= maxSupport {
		return d
	}
	// Rank atoms by mass, excluding the maximum (index n-1), which is
	// always retained so upward merges never lack a destination. Ties
	// break by index for determinism.
	order := make([]int, n-1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d.probs[order[a]] != d.probs[order[b]] {
			return d.probs[order[a]] < d.probs[order[b]]
		}
		return order[a] < order[b]
	})
	drop := make([]bool, n)
	for _, i := range order[:n-maxSupport] {
		drop[i] = true
	}
	values := make([]int64, 0, maxSupport)
	probs := make([]float64, 0, maxSupport)
	var carry float64 // mass of dropped atoms awaiting the next kept atom
	for i := 0; i < n; i++ {
		if drop[i] {
			carry += d.probs[i]
			continue
		}
		values = append(values, d.values[i])
		probs = append(probs, d.probs[i]+carry)
		carry = 0
	}
	return fromSorted(values, probs)
}
