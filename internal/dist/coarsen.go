// Support coarsening: bounding a distribution's support size without
// ever under-approximating any exceedance probability.
//
// # Soundness contract (both strategies)
//
// Coarsening merges atoms by moving mass to a LARGER support value and
// never anywhere else, so for every threshold t the coarsened
// exceedance probability P(X > t) is >= the exact one: the result is a
// sound (pessimistic) upper bound on the exceedance curve, the support
// maximum is always retained, and total mass is conserved. Both
// strategies are the identity — the receiver itself, bit for bit —
// whenever the support already fits the cap, so results only change at
// all when the cap binds.
//
// # CoarsenLeastError (default)
//
// Greedy adjacent merge by least exceedance-curve error. Merging atom i
// upward into its right neighbor j raises the exceedance curve by
// exactly mass(i) on the interval [v_i, v_j) and nowhere else, adding
// area mass(i)·(v_j − v_i) between the coarse and exact curves. The
// scheme repeatedly merges the adjacent pair with the smallest such
// incremental area (a heap over candidate pairs with lazy
// invalidation, O(n log n)), so light, closely spaced atoms — the deep
// tail dust of a convolved fault distribution — collapse locally
// instead of being flung to the support maximum. The total area added
// to the exceedance curve is the sum of the chosen incremental costs;
// each individual exceedance probability grows by at most the mass
// merged across its threshold, and a quantile read at probability p
// grows by at most the span of the merged run that straddles the exact
// quantile. In the pWCET pipeline this keeps the deep-tail quantiles
// (the 1e-9..1e-15 certification targets) within a small factor of the
// uncapped-exact values even when the cap binds hard (pinned within 2x
// at 1e-12 on a 256-set configuration by TestCoarsenLeastErrorTailFidelity).
//
// # CoarsenKeepHeaviest (legacy)
//
// The PR-1 scheme: keep the maxSupport heaviest atoms in place and
// merge each lighter atom upward into the nearest retained atom above
// it. Exact at every threshold at or above the lightest retained atom
// when the dropped mass is negligible there — which is why it
// reproduces the exact quantiles at the paper's 16-set configurations,
// where the cap barely binds. Its failure mode is the deep tail: the
// tail atoms are the lightest, so once the cap binds hard (far more
// distinct sums than the cap accommodates, e.g. 256-set caches) every
// sub-cap tail atom merges all the way into the support maximum and
// the deepest quantiles jump to Max() — still sound, but ~20x
// pessimistic at 1e-12 (pinned as the regression the default scheme
// fixes, same test as above).
package dist

import (
	"container/heap"
	"fmt"
	"sort"
)

// CoarsenStrategy selects how CoarsenToWith reduces an over-cap
// support. Both strategies obey the same soundness contract (see the
// file comment); they differ only in which atoms merge and therefore
// in how tight the coarsened exceedance curve stays.
type CoarsenStrategy int

const (
	// CoarsenLeastError greedily merges the adjacent atom pair whose
	// upward merge adds the least area to the exceedance curve. The
	// default: tail-faithful when the cap binds, identical to
	// CoarsenKeepHeaviest (the identity) when it does not.
	CoarsenLeastError CoarsenStrategy = iota
	// CoarsenKeepHeaviest keeps the heaviest atoms and merges each
	// lighter atom into the nearest retained atom above it — the legacy
	// scheme, kept for reproducing pre-tail-faithful results.
	CoarsenKeepHeaviest
)

// String names the strategy (the spelling ParseCoarsenStrategy accepts).
func (s CoarsenStrategy) String() string {
	switch s {
	case CoarsenLeastError:
		return "least-error"
	case CoarsenKeepHeaviest:
		return "keep-heaviest"
	default:
		return fmt.Sprintf("coarsen-strategy(%d)", int(s))
	}
}

// Validate rejects values that are not a known strategy.
func (s CoarsenStrategy) Validate() error {
	switch s {
	case CoarsenLeastError, CoarsenKeepHeaviest:
		return nil
	default:
		return fmt.Errorf("dist: unknown coarsening strategy %d (want %s or %s)",
			int(s), CoarsenLeastError, CoarsenKeepHeaviest)
	}
}

// ParseCoarsenStrategy converts "least-error" or "keep-heaviest" to a
// CoarsenStrategy.
func ParseCoarsenStrategy(s string) (CoarsenStrategy, error) {
	switch s {
	case "least-error":
		return CoarsenLeastError, nil
	case "keep-heaviest":
		return CoarsenKeepHeaviest, nil
	default:
		return 0, fmt.Errorf("dist: unknown coarsening strategy %q (want %q or %q)",
			s, CoarsenLeastError.String(), CoarsenKeepHeaviest.String())
	}
}

// CoarsenTo bounds the support to at most maxSupport points using the
// default CoarsenLeastError strategy. A maxSupport <= 0 disables the
// cap entirely (returns the receiver unchanged); callers own the
// support growth in that case.
func (d *Dist) CoarsenTo(maxSupport int) *Dist {
	return d.CoarsenToWith(maxSupport, CoarsenLeastError)
}

// CoarsenToWith bounds the support to at most maxSupport points with
// the given strategy. See the file comment for the shared soundness
// contract and the per-strategy precision characteristics. It returns
// the receiver unchanged when maxSupport <= 0 (cap disabled) or the
// support already fits, and panics on an unknown strategy (callers
// exposing the strategy as configuration should Validate it first).
func (d *Dist) CoarsenToWith(maxSupport int, strategy CoarsenStrategy) *Dist {
	if maxSupport <= 0 || len(d.values) <= maxSupport {
		return d
	}
	switch strategy {
	case CoarsenLeastError:
		return d.coarsenLeastError(maxSupport)
	case CoarsenKeepHeaviest:
		return d.coarsenKeepHeaviest(maxSupport)
	default:
		panic(fmt.Sprintf("dist: CoarsenToWith: %v", strategy.Validate()))
	}
}

// mergeCand is one candidate adjacent merge: atom left into its
// current right neighbor, at the exceedance-area cost recorded when
// the candidate was pushed. Stale candidates (the pair changed since)
// are recognized by the version stamp and skipped on pop.
type mergeCand struct {
	cost float64
	left int
	ver  uint32
}

// mergeHeap is a min-heap of merge candidates ordered by cost, ties
// broken by the left index so the merge sequence — and therefore the
// result — is deterministic.
type mergeHeap []mergeCand

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].left < h[j].left
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeCand)) }
func (h *mergeHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// coarsenLeastError implements CoarsenLeastError: a doubly linked list
// of live atoms plus a lazily invalidated min-heap of adjacent-pair
// merge costs. Each merge moves the left atom's (accumulated) mass to
// its right neighbor, exactly the upward direction the soundness
// contract requires; the rightmost atom has no right neighbor, so the
// support maximum can never move.
func (d *Dist) coarsenLeastError(maxSupport int) *Dist {
	n := len(d.values)
	mass := make([]float64, n)
	copy(mass, d.probs)
	next := make([]int, n)
	prev := make([]int, n)
	ver := make([]uint32, n)
	removed := make([]bool, n)
	for i := range next {
		next[i] = i + 1
		prev[i] = i - 1
	}
	h := make(mergeHeap, 0, n)
	// The gap is computed in float64 (values are sorted, but the int64
	// difference of two extreme values may not fit int64); the cost is
	// a merge-ordering heuristic, so the rounding is harmless.
	push := func(i int) {
		j := next[i]
		h = append(h, mergeCand{
			cost: mass[i] * (float64(d.values[j]) - float64(d.values[i])),
			left: i,
			ver:  ver[i],
		})
	}
	for i := 0; i < n-1; i++ {
		push(i)
	}
	heap.Init(&h)
	// Invariant: every live adjacent pair (i, next[i]) has at least one
	// heap candidate stamped with the current ver[i]; any change to the
	// pair (partner or mass) bumps ver[i] and re-pushes. With alive >
	// maxSupport >= 1 there is always a live pair, so the heap cannot
	// run dry before the support fits.
	for alive := n; alive > maxSupport; {
		c := heap.Pop(&h).(mergeCand)
		if c.ver != ver[c.left] {
			continue // stale: the pair changed after this candidate was pushed
		}
		i := c.left
		j := next[i]
		mass[j] += mass[i]
		removed[i] = true
		ver[i]++ // i is gone: invalidate (i, j)
		ver[j]++ // j's mass grew: invalidate (j, next[j])
		if p := prev[i]; p >= 0 {
			next[p] = j
			prev[j] = p
			ver[p]++ // p's partner changed: invalidate (p, i)
			push(p)
			heap.Fix(&h, len(h)-1)
		} else {
			prev[j] = -1
		}
		if next[j] < n {
			push(j)
			heap.Fix(&h, len(h)-1)
		}
		alive--
	}
	values := make([]int64, 0, maxSupport)
	probs := make([]float64, 0, maxSupport)
	for i := 0; i < n; i++ {
		if !removed[i] {
			values = append(values, d.values[i])
			probs = append(probs, mass[i])
		}
	}
	return fromSorted(values, probs)
}

// coarsenKeepHeaviest implements CoarsenKeepHeaviest: rank atoms by
// mass, keep the maxSupport heaviest, and merge every dropped atom
// upward into the next retained atom.
func (d *Dist) coarsenKeepHeaviest(maxSupport int) *Dist {
	n := len(d.values)
	// Rank atoms by mass, excluding the maximum (index n-1), which is
	// always retained so upward merges never lack a destination. Ties
	// break by index for determinism.
	order := make([]int, n-1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d.probs[order[a]] != d.probs[order[b]] {
			return d.probs[order[a]] < d.probs[order[b]]
		}
		return order[a] < order[b]
	})
	drop := make([]bool, n)
	for _, i := range order[:n-maxSupport] {
		drop[i] = true
	}
	values := make([]int64, 0, maxSupport)
	probs := make([]float64, 0, maxSupport)
	var carry float64 // mass of dropped atoms awaiting the next kept atom
	for i := 0; i < n; i++ {
		if drop[i] {
			carry += d.probs[i]
			continue
		}
		values = append(values, d.values[i])
		probs = append(probs, d.probs[i]+carry)
		carry = 0
	}
	return fromSorted(values, probs)
}
