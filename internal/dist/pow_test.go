package dist

import (
	"encoding/binary"
	"math"
	"testing"
)

// powFold is the reference k-fold convolution Pow replaces: k plain
// Convolve steps off the neutral element.
func powFold(d *Dist, k int) *Dist {
	acc := Degenerate(0)
	for i := 0; i < k; i++ {
		acc = acc.Convolve(d)
	}
	return acc
}

// FuzzPow pins Pow's square-and-multiply against the sequential fold
// for arbitrary byte-derived distributions and exponents: identical
// support, probabilities equal up to reassociation rounding, the
// documented k = 0 and k = 1 identities, and panic agreement — Pow
// must panic on int64 overflow of k·Min or k·Max exactly when the
// fold's chained Convolve would, and never otherwise.
func FuzzPow(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1}, uint8(0))
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 3, 9, 0, 0, 0, 0, 0, 0, 0, 5}, uint8(1))
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 3, 9, 0, 0, 0, 0, 0, 0, 0, 5}, uint8(6))
	// Max near int64 overflow: k >= 2 must panic in both implementations.
	overflow := make([]byte, 18)
	binary.LittleEndian.PutUint64(overflow[0:8], uint64(int64(1)<<62))
	overflow[8] = 1
	overflow[17] = 1
	f.Add(overflow, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, k8 uint8) {
		// Decode 9-byte records like FuzzNew: 8 bytes of value, 1 byte
		// of weight, normalized to unit mass. At most 3 atoms and k <= 8
		// keep the exact support (up to 3^8 atoms) affordable.
		var pts []Point
		var sum float64
		for len(data) >= 9 && len(pts) < 3 {
			v := int64(binary.LittleEndian.Uint64(data[:8]))
			w := float64(data[8])
			pts = append(pts, Point{Value: v, Prob: w})
			sum += w
			data = data[9:]
		}
		if sum == 0 {
			return
		}
		for i := range pts {
			pts[i].Prob /= sum
		}
		d, err := New(pts)
		if err != nil {
			t.Fatalf("New rejected normalized input: %v", err)
		}
		k := int(k8 % 9)

		run := func(f func() *Dist) (res *Dist, panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			return f(), false
		}
		want, foldPanic := run(func() *Dist { return powFold(d, k) })
		got, powPanic := run(func() *Dist { return d.Pow(k) })
		if foldPanic != powPanic {
			t.Fatalf("k=%d: fold panicked=%v but Pow panicked=%v", k, foldPanic, powPanic)
		}
		if foldPanic {
			return
		}
		switch k {
		case 0:
			if got.Len() != 1 || got.Max() != 0 {
				t.Fatalf("Pow(0) = %v, want Degenerate(0)", got.Points())
			}
		case 1:
			if got != d {
				t.Fatal("Pow(1) did not return the receiver itself")
			}
		}
		if got.Len() != want.Len() {
			t.Fatalf("k=%d: support size %d, want fold's %d", k, got.Len(), want.Len())
		}
		wp := want.Points()
		for i, p := range got.Points() {
			if p.Value != wp[i].Value {
				t.Fatalf("k=%d: support differs at %d: %d vs %d", k, i, p.Value, wp[i].Value)
			}
			if diff := math.Abs(p.Prob - wp[i].Prob); diff > 1e-12*wp[i].Prob+1e-300 {
				t.Fatalf("k=%d: probability at value %d drifted beyond reassociation rounding: %g vs %g",
					k, p.Value, p.Prob, wp[i].Prob)
			}
		}
		if m := got.Mass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("k=%d: mass drifted to %g", k, m)
		}
	})
}
