package absint

import "unsafe"

// MemBytes estimates the resident heap bytes of the analyzer: the
// reference lists (global and per-block), the reverse post-order and
// the per-set index (per-set reference copies, block universes and
// fixpoint sweep groups). Transient fixpoint state parked in the
// per-set pools is deliberately not counted — it is reclaimable scratch,
// not part of the memoized artifact. The estimate feeds the engine's
// LRU eviction budget (core.EngineOptions.MaxArtifactBytes); relative
// consistency matters, byte exactness does not.
func (a *Analyzer) MemBytes() int64 {
	const (
		wordBytes        = 8
		sliceHeaderBytes = 24
	)
	refBytes := int64(unsafe.Sizeof(Ref{}))
	localRefBytes := int64(unsafe.Sizeof(localRef{}))
	b := int64(cap(a.all)) * refBytes
	b += int64(cap(a.perBB)) * sliceHeaderBytes
	for _, refs := range a.perBB {
		b += int64(cap(refs)) * refBytes
	}
	b += int64(cap(a.rpo)) * wordBytes
	b += int64(cap(a.sets)) * int64(unsafe.Sizeof(setIndex{}))
	for i := range a.sets {
		ix := &a.sets[i]
		b += int64(cap(ix.refs)) * refBytes
		b += int64(cap(ix.blocks)) * 4
		b += int64(cap(ix.groups)) * int64(unsafe.Sizeof(refGroup{}))
		for _, g := range ix.groups {
			b += int64(cap(g.refs)) * localRefBytes
		}
	}
	return b
}
