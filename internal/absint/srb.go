package absint

import "repro/internal/chmc"

// SRB analysis (Section III.B.2): a Must analysis of the Shared Reliable
// Buffer performed "as if the SRB was the only cache in the system".
// Every reference — whatever set it maps to — may reload the SRB, because
// whether a reference actually goes through the SRB depends on the fault
// map (it does when its set is entirely faulty). Analyzing the SRB as a
// one-block cache over the whole reference stream is therefore the
// conservative abstraction the paper uses; it captures spatial locality
// (sequential code within one memory block) and nothing more.
//
// The abstract state is: unreached, a single guaranteed-resident block,
// or unknown content.

type srbKind int8

const (
	srbUnreached srbKind = iota
	srbKnown
	srbUnknown
)

type srbState struct {
	kind  srbKind
	block uint32
}

func srbJoin(a, b srbState) srbState {
	switch {
	case a.kind == srbUnreached:
		return b
	case b.kind == srbUnreached:
		return a
	case a.kind == srbKnown && b.kind == srbKnown && a.block == b.block:
		return a
	default:
		return srbState{kind: srbUnknown}
	}
}

// ClassifySRB computes, for every reference (indexed by Ref.Global),
// whether it is guaranteed to hit in the SRB when its set is entirely
// faulty. Such references are removed from the f = W column of the Fault
// Miss Map (Section III.B.2).
func (a *Analyzer) ClassifySRB() []bool {
	outStates := make([]srbState, len(a.p.Blocks))
	for changed := true; changed; {
		changed = false
		for _, bb := range a.rpo {
			st := a.srbIn(outStates, bb)
			if st.kind != srbUnreached {
				for _, r := range a.perBB[bb] {
					st = srbState{kind: srbKnown, block: r.Block}
				}
			}
			if outStates[bb] != st {
				outStates[bb] = st
				changed = true
			}
		}
	}

	hit := make([]bool, len(a.all))
	for _, bb := range a.rpo {
		st := a.srbIn(outStates, bb)
		if st.kind == srbUnreached {
			continue
		}
		for _, r := range a.perBB[bb] {
			if st.kind == srbKnown && st.block == r.Block {
				hit[r.Global] = true
			}
			st = srbState{kind: srbKnown, block: r.Block}
		}
	}
	return hit
}

func (a *Analyzer) srbIn(outStates []srbState, bb int) srbState {
	st := srbState{}
	if bb == a.p.Entry {
		st = srbState{kind: srbUnknown} // SRB content unknown at start
	}
	for _, pr := range a.p.Blocks[bb].Preds {
		st = srbJoin(st, outStates[pr])
	}
	return st
}

// ClassifySRBForSet is the *precise* SRB analysis the paper leaves as
// future work ("a more precise pWCET estimation technique for the SRB
// could be devised to limit the conservatism", Section VI): it assumes
// the given set is the ONLY entirely-faulty set. Under that assumption
// the SRB is private to the set — references to healthy sets never
// consult or reload it (Section III.A.2's look-up rule) — so the buffer
// behaves exactly like a one-way cache receiving the set's references,
// and the full Must/May/Persistence machinery applies at associativity
// 1. Compared to the conservative boolean analysis, temporal locality
// becomes visible: a loop whose only reference in this set is one block
// keeps it resident in the SRB across iterations (first-miss instead of
// one miss per iteration).
//
// The result is sound only for fault maps with at most one fully faulty
// set; internal/core combines it with the conservative analysis through
// a probability-weighted mixture bound.
func (a *Analyzer) ClassifySRBForSet(set int) []chmc.Class {
	return a.ClassifySet(set, 1)
}
