package absint

import (
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/program"
)

// Analyzer runs the cache analyses of one program against one cache
// configuration. It precomputes the reference lists, a reverse
// post-order of the CFG and a per-set reference index (see index.go);
// individual sets can then be (re-)classified at arbitrary effective
// associativities, which the Fault Miss Map uses to model sets with f
// faulty ways. An Analyzer is safe for concurrent use.
//
// The classification fixpoints run on the compact per-set domain of
// domain_compact.go by default. NewReference/NewDataReference retain
// the original map-based domain (domain.go) as the reference
// implementation the compact path is differentially tested against.
type Analyzer struct {
	p     *program.Program
	cfg   cache.Config
	perBB [][]Ref
	all   []Ref
	rpo   []int
	sets  []setIndex
	ref   bool
}

// New builds an analyzer of the program's instruction fetches against
// the (instruction) cache configuration.
func New(p *program.Program, cfg cache.Config) *Analyzer {
	return newAnalyzer(p, cfg, false, false)
}

// NewData builds an analyzer of the program's data accesses against a
// data-cache configuration. The abstract domains, fixpoints and
// classifications are identical — only the reference stream differs —
// which is precisely why the paper expects its technique to "transpose
// to data caches" (Section VI). Stores are analyzed as write-allocate
// accesses.
func NewData(p *program.Program, cfg cache.Config) *Analyzer {
	return newAnalyzer(p, cfg, true, false)
}

// NewReference is New with the retained map-based abstract domain: the
// executable specification the compact hot path is validated against.
// Classifications are identical (asserted by the differential tests);
// only the constant factors differ.
func NewReference(p *program.Program, cfg cache.Config) *Analyzer {
	return newAnalyzer(p, cfg, false, true)
}

// NewDataReference is NewData on the retained map-based domain.
func NewDataReference(p *program.Program, cfg cache.Config) *Analyzer {
	return newAnalyzer(p, cfg, true, true)
}

func newAnalyzer(p *program.Program, cfg cache.Config, data, ref bool) *Analyzer {
	var perBB [][]Ref
	var all []Ref
	if data {
		perBB, all = ComputeDataRefs(p, cfg)
	} else {
		perBB, all = ComputeRefs(p, cfg)
	}
	rpo := reversePostOrder(p)
	return &Analyzer{
		p:     p,
		cfg:   cfg,
		perBB: perBB,
		all:   all,
		rpo:   rpo,
		sets:  buildSetIndexes(p, cfg.Sets, perBB, all, rpo),
		ref:   ref,
	}
}

// Refs returns all references in global order.
func (a *Analyzer) Refs() []Ref { return a.all }

// RefsOf returns the references of one basic block in fetch order.
func (a *Analyzer) RefsOf(bb int) []Ref { return a.perBB[bb] }

// RefsOfSet returns the references mapping to one cache set, in global
// order — the per-set index the FMM hot path iterates instead of
// filtering Refs() by set on every (set, fault-count) pair.
func (a *Analyzer) RefsOfSet(set int) []Ref { return a.sets[set].refs }

// Config returns the cache configuration being analyzed.
func (a *Analyzer) Config() cache.Config { return a.cfg }

// Program returns the program being analyzed.
func (a *Analyzer) Program() *program.Program { return a.p }

// ClassifyAll classifies every reference at full associativity (the
// fault-free cache). The result is indexed by Ref.Global.
func (a *Analyzer) ClassifyAll() []chmc.Class {
	out := make([]chmc.Class, len(a.all))
	for i := range out {
		out[i] = chmc.NotClassified
	}
	for s := 0; s < a.cfg.Sets; s++ {
		a.classifySetInto(out, s, a.cfg.Ways)
	}
	return out
}

// ClassifySet classifies the references mapping to one cache set at the
// given effective associativity (W - f for f faulty ways). Entries for
// references of other sets are NotClassified and must be ignored by the
// caller. assoc == 0 yields AlwaysMiss for every reference of the set.
func (a *Analyzer) ClassifySet(set, assoc int) []chmc.Class {
	out := make([]chmc.Class, len(a.all))
	for i := range out {
		out[i] = chmc.NotClassified
	}
	a.classifySetInto(out, set, assoc)
	return out
}

// ClassifySetInto is ClassifySet writing into a caller-provided buffer
// of len(Refs()) entries: every entry belonging to a reference of the
// set is (re)written — NotClassified included — while entries of other
// sets are left untouched. Reusing one buffer across the W fault
// counts of a set (and across sets) is what keeps the FMM's S*W
// reclassifications allocation-free; the caller must only ever read
// the entries of the set it just classified.
func (a *Analyzer) ClassifySetInto(out []chmc.Class, set, assoc int) {
	for _, r := range a.sets[set].refs {
		out[r.Global] = chmc.NotClassified
	}
	a.classifySetInto(out, set, assoc)
}

// classifySetInto dispatches one set's classification to the compact
// hot path or the retained reference domain. Both write the refs of the
// set that sit in entry-reachable blocks; callers prefill the rest.
func (a *Analyzer) classifySetInto(out []chmc.Class, set, assoc int) {
	if a.ref {
		a.classifySetIntoReference(out, set, assoc)
		return
	}
	a.classifySetIntoCompact(out, set, assoc)
}

// classifySetIntoCompact runs the per-set fixpoint and classification
// sweep on the compact domain over the set's local block universe.
func (a *Analyzer) classifySetIntoCompact(out []chmc.Class, set, assoc int) {
	ix := &a.sets[set]
	if len(ix.refs) == 0 {
		return
	}
	if assoc <= 0 {
		for _, r := range ix.refs {
			out[r.Global] = chmc.AlwaysMiss
		}
		return
	}

	outStates := a.fixpointCompact(ix, assoc)

	// Classification sweep: only blocks holding references of this set
	// matter, and the groups list them in reverse post-order already.
	for gi := range ix.groups {
		g := &ix.groups[gi]
		in := a.inStateCompact(outStates, int(g.bb), assoc, ix)
		if !in.reached {
			// Unreachable code never executes; AlwaysMiss is the
			// conservative (and irrelevant) classification.
			for _, lr := range g.refs {
				out[lr.global] = chmc.AlwaysMiss
			}
			ix.pool.Put(in)
			continue
		}
		for _, lr := range g.refs {
			out[lr.global] = classifyCompact(in, lr.local, assoc)
			in.access(lr.local, assoc)
		}
		ix.pool.Put(in)
	}
	for _, st := range outStates {
		if st != nil {
			ix.pool.Put(st)
		}
	}
}

// fixpointCompact iterates the three analyses for one set to a fixpoint
// on the compact domain and returns the OUT state of every block. The
// caller owns the returned states (they come from the set's pool).
func (a *Analyzer) fixpointCompact(ix *setIndex, assoc int) []*cstate {
	outStates := make([]*cstate, len(a.p.Blocks))
	for changed := true; changed; {
		changed = false
		gi := 0
		for pos, bb := range a.rpo {
			st := a.inStateCompact(outStates, bb, assoc, ix)
			var g *refGroup
			for gi < len(ix.groups) && int(ix.groups[gi].rpoPos) < pos {
				gi++
			}
			if gi < len(ix.groups) && int(ix.groups[gi].rpoPos) == pos {
				g = &ix.groups[gi]
				gi++
			}
			if st.reached && g != nil {
				for _, lr := range g.refs {
					st.access(lr.local, assoc)
				}
			}
			if outStates[bb] == nil || !outStates[bb].equal(st) {
				if outStates[bb] != nil {
					ix.pool.Put(outStates[bb])
				}
				outStates[bb] = st
				changed = true
			} else {
				ix.pool.Put(st)
			}
		}
	}
	return outStates
}

// inStateCompact joins the predecessors' OUT states into a pooled state
// (the entry block starts from the reached empty cache).
func (a *Analyzer) inStateCompact(outStates []*cstate, bb, assoc int, ix *setIndex) *cstate {
	in := ix.pool.Get().(*cstate)
	in.reset()
	if bb == a.p.Entry {
		in.reached = true
	}
	for _, pr := range a.p.Blocks[bb].Preds {
		if o := outStates[pr]; o != nil {
			in.join(o, assoc)
		}
	}
	return in
}

// classifySetIntoReference is the retained map-based classification
// path (the pre-index implementation, verbatim).
func (a *Analyzer) classifySetIntoReference(out []chmc.Class, set, assoc int) {
	if assoc <= 0 {
		for _, r := range a.all {
			if r.Set == set {
				out[r.Global] = chmc.AlwaysMiss
			}
		}
		return
	}

	outStates := a.fixpoint(set, assoc)

	for _, bb := range a.rpo {
		in := a.inState(outStates, bb, assoc)
		if !in.reached {
			// Unreachable code never executes; AlwaysMiss is the
			// conservative (and irrelevant) classification.
			for _, r := range a.perBB[bb] {
				if r.Set == set {
					out[r.Global] = chmc.AlwaysMiss
				}
			}
			continue
		}
		for _, r := range a.perBB[bb] {
			if r.Set != set {
				continue
			}
			out[r.Global] = classify(in, r.Block, assoc)
			in.access(r.Block, assoc)
		}
	}
}

// classify derives the CHMC of an access to block m from the pre-state.
func classify(st *setState, m uint32, assoc int) chmc.Class {
	if _, ok := st.must[m]; ok {
		return chmc.AlwaysHit
	}
	y, everLoaded := st.pers[m]
	if !everLoaded {
		// No path has loaded m before this point, so the reference
		// executes at most once per run: at most one miss.
		return chmc.FirstMiss
	}
	if !y.sat {
		return chmc.FirstMiss
	}
	if _, ok := st.may[m]; !ok {
		return chmc.AlwaysMiss
	}
	return chmc.NotClassified
}

// fixpoint iterates the three analyses for one set to a fixpoint on the
// reference domain and returns the OUT state of every block.
func (a *Analyzer) fixpoint(set, assoc int) []*setState {
	outStates := make([]*setState, len(a.p.Blocks))
	for changed := true; changed; {
		changed = false
		for _, bb := range a.rpo {
			st := a.inState(outStates, bb, assoc)
			if st.reached {
				for _, r := range a.perBB[bb] {
					if r.Set == set {
						st.access(r.Block, assoc)
					}
				}
			}
			if outStates[bb] == nil || !outStates[bb].equal(st) {
				outStates[bb] = st
				changed = true
			}
		}
	}
	return outStates
}

// inState joins the predecessors' OUT states (the entry block starts from
// the reached empty cache).
func (a *Analyzer) inState(outStates []*setState, bb, assoc int) *setState {
	in := newSetState()
	if bb == a.p.Entry {
		in.reached = true
	}
	for _, pr := range a.p.Blocks[bb].Preds {
		if outStates[pr] != nil {
			in.join(outStates[pr], assoc)
		}
	}
	return in
}

// reversePostOrder returns the CFG blocks in reverse post-order from the
// entry, which makes the fixpoint sweeps converge in few passes.
func reversePostOrder(p *program.Program) []int {
	visited := make([]bool, len(p.Blocks))
	var post []int
	// Iterative DFS with an explicit stack to avoid recursion limits.
	type frame struct {
		node int
		next int
	}
	var stack []frame
	push := func(n int) {
		visited[n] = true
		stack = append(stack, frame{node: n})
	}
	push(p.Entry)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := p.Blocks[f.node].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				push(s)
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i, n := range post {
		rpo[len(post)-1-i] = n
	}
	return rpo
}
