package absint

import (
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/program"
)

// Analyzer runs the cache analyses of one program against one cache
// configuration. It precomputes the reference lists and a reverse
// post-order of the CFG; individual sets can then be (re-)classified at
// arbitrary effective associativities, which the Fault Miss Map uses to
// model sets with f faulty ways.
type Analyzer struct {
	p     *program.Program
	cfg   cache.Config
	perBB [][]Ref
	all   []Ref
	rpo   []int
}

// New builds an analyzer of the program's instruction fetches against
// the (instruction) cache configuration.
func New(p *program.Program, cfg cache.Config) *Analyzer {
	perBB, all := ComputeRefs(p, cfg)
	return &Analyzer{p: p, cfg: cfg, perBB: perBB, all: all, rpo: reversePostOrder(p)}
}

// NewData builds an analyzer of the program's data accesses against a
// data-cache configuration. The abstract domains, fixpoints and
// classifications are identical — only the reference stream differs —
// which is precisely why the paper expects its technique to "transpose
// to data caches" (Section VI). Stores are analyzed as write-allocate
// accesses.
func NewData(p *program.Program, cfg cache.Config) *Analyzer {
	perBB, all := ComputeDataRefs(p, cfg)
	return &Analyzer{p: p, cfg: cfg, perBB: perBB, all: all, rpo: reversePostOrder(p)}
}

// Refs returns all references in global order.
func (a *Analyzer) Refs() []Ref { return a.all }

// RefsOf returns the references of one basic block in fetch order.
func (a *Analyzer) RefsOf(bb int) []Ref { return a.perBB[bb] }

// Config returns the cache configuration being analyzed.
func (a *Analyzer) Config() cache.Config { return a.cfg }

// Program returns the program being analyzed.
func (a *Analyzer) Program() *program.Program { return a.p }

// ClassifyAll classifies every reference at full associativity (the
// fault-free cache). The result is indexed by Ref.Global.
func (a *Analyzer) ClassifyAll() []chmc.Class {
	out := make([]chmc.Class, len(a.all))
	for i := range out {
		out[i] = chmc.NotClassified
	}
	for s := 0; s < a.cfg.Sets; s++ {
		a.classifySetInto(out, s, a.cfg.Ways)
	}
	return out
}

// ClassifySet classifies the references mapping to one cache set at the
// given effective associativity (W - f for f faulty ways). Entries for
// references of other sets are NotClassified and must be ignored by the
// caller. assoc == 0 yields AlwaysMiss for every reference of the set.
func (a *Analyzer) ClassifySet(set, assoc int) []chmc.Class {
	out := make([]chmc.Class, len(a.all))
	for i := range out {
		out[i] = chmc.NotClassified
	}
	a.classifySetInto(out, set, assoc)
	return out
}

func (a *Analyzer) classifySetInto(out []chmc.Class, set, assoc int) {
	if assoc <= 0 {
		for _, r := range a.all {
			if r.Set == set {
				out[r.Global] = chmc.AlwaysMiss
			}
		}
		return
	}

	outStates := a.fixpoint(set, assoc)

	for _, bb := range a.rpo {
		in := a.inState(outStates, bb, assoc)
		if !in.reached {
			// Unreachable code never executes; AlwaysMiss is the
			// conservative (and irrelevant) classification.
			for _, r := range a.perBB[bb] {
				if r.Set == set {
					out[r.Global] = chmc.AlwaysMiss
				}
			}
			continue
		}
		for _, r := range a.perBB[bb] {
			if r.Set != set {
				continue
			}
			out[r.Global] = classify(in, r.Block, assoc)
			in.access(r.Block, assoc)
		}
	}
}

// classify derives the CHMC of an access to block m from the pre-state.
func classify(st *setState, m uint32, assoc int) chmc.Class {
	if _, ok := st.must[m]; ok {
		return chmc.AlwaysHit
	}
	y, everLoaded := st.pers[m]
	if !everLoaded {
		// No path has loaded m before this point, so the reference
		// executes at most once per run: at most one miss.
		return chmc.FirstMiss
	}
	if !y.sat {
		return chmc.FirstMiss
	}
	if _, ok := st.may[m]; !ok {
		return chmc.AlwaysMiss
	}
	return chmc.NotClassified
}

// fixpoint iterates the three analyses for one set to a fixpoint and
// returns the OUT state of every block.
func (a *Analyzer) fixpoint(set, assoc int) []*setState {
	outStates := make([]*setState, len(a.p.Blocks))
	for changed := true; changed; {
		changed = false
		for _, bb := range a.rpo {
			st := a.inState(outStates, bb, assoc)
			if st.reached {
				for _, r := range a.perBB[bb] {
					if r.Set == set {
						st.access(r.Block, assoc)
					}
				}
			}
			if outStates[bb] == nil || !outStates[bb].equal(st) {
				outStates[bb] = st
				changed = true
			}
		}
	}
	return outStates
}

// inState joins the predecessors' OUT states (the entry block starts from
// the reached empty cache).
func (a *Analyzer) inState(outStates []*setState, bb, assoc int) *setState {
	in := newSetState()
	if bb == a.p.Entry {
		in.reached = true
	}
	for _, pr := range a.p.Blocks[bb].Preds {
		if outStates[pr] != nil {
			in.join(outStates[pr], assoc)
		}
	}
	return in
}

// reversePostOrder returns the CFG blocks in reverse post-order from the
// entry, which makes the fixpoint sweeps converge in few passes.
func reversePostOrder(p *program.Program) []int {
	visited := make([]bool, len(p.Blocks))
	var post []int
	// Iterative DFS with an explicit stack to avoid recursion limits.
	type frame struct {
		node int
		next int
	}
	var stack []frame
	push := func(n int) {
		visited[n] = true
		stack = append(stack, frame{node: n})
	}
	push(p.Entry)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := p.Blocks[f.node].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				push(s)
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i, n := range post {
		rpo[len(post)-1-i] = n
	}
	return rpo
}
