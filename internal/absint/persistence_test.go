package absint

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/program"
)

// TestPersistenceDeclinesEvictablePattern is a regression test for the
// soundness of the persistence analysis. The classical aging-based
// persistence update is known to be unsound (Cullmann): a block whose
// abstract age stays low on one path can still be evicted on another
// path where intervening blocks are absent from the abstract state. The
// younger-set abstraction counts *distinct possibly-intervening blocks*
// instead, which is immune.
//
// Construction (2-way set): a loop whose body touches blocks {b1, b2}
// of the same set on one branch and nothing on the other, then always
// touches m of that set. On a path alternating branches, m can be
// evicted between consecutive touches (b1 and b2 both enter the set),
// so m must NOT be classified FirstMiss.
func TestPersistenceDeclinesEvictablePattern(t *testing.T) {
	// Single-set cache isolates the interaction.
	cfg := cache.Config{Sets: 1, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("evictable")
	// Layout at 2 instructions per block:
	//   branch arm: 4 instructions = 2 blocks (b1, b2)
	//   fallthrough m-touch: 2 instructions = 1 block (m)
	b.Func("main").Loop(6, func(l *program.Body) {
		l.If(func(touch *program.Body) { touch.Ops(4) }, nil)
		l.Ops(2)
	})
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()

	// Find the last reference of the loop body (the "m" block) — it is
	// the reference of the block following the if-join with 2 original
	// instructions... identify it as any in-loop reference whose block
	// is touched on every iteration and classified FM/AH despite >= 2
	// distinct other blocks possibly intervening.
	loop := p.Loops[0]
	inLoop := make(map[int]bool)
	for _, id := range loop.Blocks {
		inLoop[id] = true
	}

	// Count the distinct memory blocks referenced inside the loop.
	blocks := make(map[uint32]bool)
	for _, r := range a.Refs() {
		if inLoop[r.BB] {
			blocks[r.Block] = true
		}
	}
	if len(blocks) < 3 {
		t.Fatalf("test construction wrong: only %d distinct blocks in loop", len(blocks))
	}

	// With >= 3 distinct blocks cycling through a 2-way set where the
	// conditional path interleaves them, no in-loop reference whose
	// block conflicts with >= 2 possibly-intervening blocks may be
	// FirstMiss or AlwaysHit. Verify against concrete simulation on the
	// alternating path: every classification must hold.
	alternate := 0
	chooser := func(_ int, succs []int) int {
		alternate++
		return succs[alternate%2]
	}
	blocksTrace, err := p.TraceBlocks(chooser, 100000)
	if err != nil {
		t.Fatal(err)
	}
	sim := cache.NewSim(cfg, cache.MechanismNone, cache.NewFaultMap(cfg.Sets, cfg.Ways))
	misses := make(map[int]int)
	hits := make(map[int]int)
	for _, bb := range blocksTrace {
		for _, r := range a.RefsOf(bb) {
			if sim.Access(r.FirstAddr) {
				hits[r.Global]++
			} else {
				misses[r.Global]++
			}
		}
	}
	for _, r := range a.Refs() {
		switch classes[r.Global] {
		case chmc.AlwaysHit:
			if misses[r.Global] > 0 {
				t.Errorf("AH ref %d (block %d) missed %d times on alternating path",
					r.Global, r.Block, misses[r.Global])
			}
		case chmc.FirstMiss:
			if misses[r.Global] > 1 {
				t.Errorf("FM ref %d (block %d) missed %d times on alternating path — "+
					"persistence unsound", r.Global, r.Block, misses[r.Global])
			}
		}
	}
}

// TestPersistenceStillPreciseWhenResident verifies the conservative fix
// does not destroy precision: a loop resident in the cache keeps its
// first-miss classifications.
func TestPersistenceStillPreciseWhenResident(t *testing.T) {
	cfg := cache.Config{Sets: 2, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("resident")
	// Loop footprint: header 2 instr (1 block) + body 3+1 instr (2
	// blocks) = 3 blocks over 2 sets x 2 ways = fits.
	b.Func("main").Loop(10, func(l *program.Body) { l.Ops(3) })
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()
	fm := 0
	for _, r := range a.Refs() {
		if classes[r.Global] == chmc.FirstMiss || classes[r.Global] == chmc.AlwaysHit {
			fm++
		}
	}
	if fm < 3 {
		t.Errorf("only %d refs classified FM/AH in a fully resident loop", fm)
	}
}

// TestMustAgesExactForSequentialFill pins the Must update rule: filling
// a 4-way set with 4 blocks leaves all four in the Must ACS; a fifth
// evicts exactly the oldest.
func TestMustAgesExactForSequentialFill(t *testing.T) {
	cfg := cache.Config{Sets: 1, Ways: 4, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("fill")
	b.Func("main").Ops(9) // 10 instr = 5 blocks, all set 0
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()
	// Straight-line cold code: every ref is a first (and only) access:
	// FirstMiss for all five.
	for _, r := range a.Refs() {
		if classes[r.Global] != chmc.FirstMiss {
			t.Errorf("ref %d: %v, want FM", r.Global, classes[r.Global])
		}
	}
}
