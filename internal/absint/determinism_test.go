package absint

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/progen"
)

// TestClassificationDeterministic guards the //pwcetlint:ordered
// directives in domain.go: the reference domain iterates Go maps, and
// every such loop is annotated as order-insensitive. If any annotation
// is wrong, two runs over fresh analyzers diverge somewhere in this
// sweep — map iteration order is randomized per run by the runtime.
func TestClassificationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		p := progen.Random(rng, progen.DefaultParams())
		cfg := cache.Config{
			Sets:       []int{2, 4, 8}[rng.Intn(3)],
			Ways:       1 + rng.Intn(4),
			BlockBytes: []int{8, 16}[rng.Intn(2)],
			HitLatency: 1,
			MemLatency: 10,
		}
		name := fmt.Sprintf("random-%d", iter)
		for _, mk := range []struct {
			kind string
			run  func() interface{}
		}{
			{"reference", func() interface{} {
				a := NewReference(p, cfg)
				out := [][]interface{}{{a.ClassifyAll()}}
				for set := 0; set < cfg.Sets; set++ {
					for assoc := 0; assoc <= cfg.Ways; assoc++ {
						out = append(out, []interface{}{a.ClassifySet(set, assoc)})
					}
				}
				return out
			}},
			{"compact", func() interface{} {
				a := New(p, cfg)
				out := [][]interface{}{{a.ClassifyAll()}}
				for set := 0; set < cfg.Sets; set++ {
					for assoc := 0; assoc <= cfg.Ways; assoc++ {
						out = append(out, []interface{}{a.ClassifySet(set, assoc)})
					}
				}
				return out
			}},
		} {
			first := mk.run()
			second := mk.run()
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("%s/%s: two runs over fresh analyzers disagree — a map iteration in the domain is order-sensitive", name, mk.kind)
			}
		}
	}
}
