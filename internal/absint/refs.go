// Package absint implements the static instruction-cache analyses of the
// paper by abstract interpretation over the program CFG (Section II.B.1):
//
//   - Must analysis (always-hit classification), per Ferdinand/Theiling;
//   - May analysis (always-miss classification);
//   - Persistence analysis (first-miss classification), using the sound
//     "younger set" abstraction: the age of a block is upper-bounded by
//     the number of distinct same-set blocks possibly accessed since its
//     last access, which avoids the known unsoundness of the original
//     aging-based persistence update;
//   - the SRB analysis of Section III.B.2: a Must analysis of the
//     single-block Shared Reliable Buffer performed as if the SRB were
//     the only cache in the system.
//
// Because LRU sets are mutually independent, each cache set is analyzed
// separately; degraded sets (with f faulty ways) are re-analyzed at
// effective associativity W-f without touching other sets, which is what
// the Fault Miss Map computation needs.
package absint

import (
	"repro/internal/cache"
	"repro/internal/program"
)

// Ref is one cache reference: the first instruction fetch of basic block
// BB inside memory block Block. Subsequent fetches of the same memory
// block within the basic block are guaranteed hits while the set has at
// least one usable way, and are accounted by NumInstr when it has none.
type Ref struct {
	// Global is the reference's index in Analyzer.Refs().
	Global int
	// BB is the basic block ID.
	BB int
	// Index is the reference's position among BB's references.
	Index int
	// Block is the memory-block address (byte address / BlockBytes).
	Block uint32
	// FirstAddr is the byte address of the first instruction covered by
	// this reference (not necessarily block-aligned for a block's first
	// reference).
	FirstAddr uint32
	// Set is the cache set the block maps to.
	Set int
	// NumInstr is the number of BB's instructions covered by this memory
	// block (1..BlockBytes/InstrBytes).
	NumInstr int
}

// ComputeDataRefs lists the data-cache references of every basic block
// in issue order: one reference per maximal run of consecutive
// same-block data accesses (the trailing accesses of a run are
// guaranteed hits, exactly like intra-block instruction fetches).
// NumInstr counts the accesses of the run.
func ComputeDataRefs(p *program.Program, cfg cache.Config) ([][]Ref, []Ref) {
	perBB := make([][]Ref, len(p.Blocks))
	var all []Ref
	for _, b := range p.Blocks {
		if len(b.Data) == 0 {
			continue
		}
		var refs []Ref
		cur := uint32(0xffffffff)
		first := true
		for _, d := range b.Data {
			m := cfg.BlockAddr(d.Addr)
			if first || m != cur {
				refs = append(refs, Ref{
					Global:    len(all) + len(refs),
					BB:        b.ID,
					Index:     len(refs),
					Block:     m,
					FirstAddr: d.Addr,
					Set:       cfg.SetOfBlock(m),
				})
				cur = m
				first = false
			}
			refs[len(refs)-1].NumInstr++
		}
		perBB[b.ID] = refs
		all = append(all, refs...)
	}
	return perBB, all
}

// ComputeRefs lists the references of every basic block in fetch order.
// The result is indexed by block ID; Global indices follow (BB, Index)
// order.
func ComputeRefs(p *program.Program, cfg cache.Config) ([][]Ref, []Ref) {
	perBB := make([][]Ref, len(p.Blocks))
	var all []Ref
	for _, b := range p.Blocks {
		if b.NumInstr == 0 {
			continue
		}
		var refs []Ref
		cur := uint32(0xffffffff)
		for i := 0; i < b.NumInstr; i++ {
			a := b.Addr + uint32(i*program.InstrBytes)
			m := cfg.BlockAddr(a)
			if len(refs) == 0 || m != cur {
				refs = append(refs, Ref{
					Global:    len(all) + len(refs),
					BB:        b.ID,
					Index:     len(refs),
					Block:     m,
					FirstAddr: a,
					Set:       cfg.SetOfBlock(m),
				})
				cur = m
			}
			refs[len(refs)-1].NumInstr++
		}
		perBB[b.ID] = refs
		all = append(all, refs...)
	}
	return perBB, all
}
