package absint

import (
	"sort"
	"sync"

	"repro/internal/program"
)

// This file builds the per-set reference index the analyzer's hot path
// runs on. The FMM workload reclassifies and re-weights one cache set
// at a time, S*W times per analysis; scanning the full reference list
// and filtering r.Set != set on every pass made that O(sets * ways *
// totalRefs). The index groups everything per set once at construction:
//
//   - refs: the set's references in global order (RefsOfSet — what
//     computeFMMRow iterates instead of Refs());
//   - blocks: the set's distinct memory blocks, sorted — the local
//     block universe. Local ids index the compact abstract states of
//     domain_compact.go, replacing per-block hash maps with dense
//     arrays and bitsets;
//   - groups: the set's references grouped by basic block in reverse
//     post-order, so a fixpoint sweep advances a single cursor instead
//     of filtering every block's reference list.

// localRef is one reference of a set inside the per-set index: its
// global index (for classification output) and the local id of its
// memory block in the set's block universe.
type localRef struct {
	global int32
	local  int32
}

// refGroup is the ordered run of a set's references inside one basic
// block, keyed by the block's position in the reverse post-order.
type refGroup struct {
	rpoPos int32
	bb     int32
	refs   []localRef
}

// setIndex is the per-set view of the reference stream.
type setIndex struct {
	refs   []Ref
	blocks []uint32
	groups []refGroup
	words  int // uint64 words per younger-set bitset row
	pool   *sync.Pool
}

// localOf returns the local id of a block in the set's universe.
func (ix *setIndex) localOf(block uint32) int32 {
	return int32(sort.Search(len(ix.blocks), func(i int) bool { return ix.blocks[i] >= block }))
}

// buildSetIndexes constructs the per-set index from the precomputed
// reference lists and the reverse post-order.
func buildSetIndexes(p *program.Program, sets int, perBB [][]Ref, all []Ref, rpo []int) []setIndex {
	ixs := make([]setIndex, sets)
	for _, r := range all {
		ixs[r.Set].refs = append(ixs[r.Set].refs, r)
	}
	for s := range ixs {
		ix := &ixs[s]
		blocks := make([]uint32, 0, len(ix.refs))
		for _, r := range ix.refs {
			blocks = append(blocks, r.Block)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		out := blocks[:0]
		for _, b := range blocks {
			if len(out) == 0 || out[len(out)-1] != b {
				out = append(out, b)
			}
		}
		ix.blocks = out
		ix.words = (len(out) + 63) / 64
	}
	for pos, bb := range rpo {
		for _, r := range perBB[bb] {
			ix := &ixs[r.Set]
			if n := len(ix.groups); n == 0 || ix.groups[n-1].rpoPos != int32(pos) {
				ix.groups = append(ix.groups, refGroup{rpoPos: int32(pos), bb: int32(bb)})
			}
			g := &ix.groups[len(ix.groups)-1]
			g.refs = append(g.refs, localRef{global: int32(r.Global), local: ix.localOf(r.Block)})
		}
	}
	for s := range ixs {
		ix := &ixs[s]
		nblocks, words := len(ix.blocks), ix.words
		ix.pool = &sync.Pool{New: func() any { return newCstate(nblocks, words) }}
	}
	return ixs
}
