package absint

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/progen"
	"repro/internal/program"
)

// testConfig is a small cache that random programs exercise thoroughly:
// 4 sets, 2 ways, 8-byte blocks (2 instructions per block).
func testConfig() cache.Config {
	return cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
}

func TestComputeRefs(t *testing.T) {
	cfg := testConfig()
	b := program.New("refs")
	b.Func("main").Ops(5) // + return = 6 instructions = 3 memory blocks
	p := b.MustBuild()
	perBB, all := ComputeRefs(p, cfg)
	if len(all) != 3 {
		t.Fatalf("total refs = %d, want 3", len(all))
	}
	refs := perBB[p.Entry]
	if len(refs) != 3 {
		t.Fatalf("entry refs = %d, want 3", len(refs))
	}
	for i, r := range refs {
		if r.NumInstr != 2 {
			t.Errorf("ref %d NumInstr = %d, want 2", i, r.NumInstr)
		}
		if r.Block != uint32(i) {
			t.Errorf("ref %d block = %d, want %d", i, r.Block, i)
		}
		if r.Set != i%cfg.Sets {
			t.Errorf("ref %d set = %d, want %d", i, r.Set, i%cfg.Sets)
		}
		if r.Global != i || r.Index != i || r.BB != p.Entry {
			t.Errorf("ref %d indices wrong: %+v", i, r)
		}
	}
}

func TestStraightLineClassification(t *testing.T) {
	cfg := testConfig()
	b := program.New("straight")
	b.Func("main").Ops(7) // 8 instructions, 4 blocks, sets 0..3
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()
	// Cold cache, no reuse: every ref is a first access executing once.
	for _, r := range a.Refs() {
		if c := classes[r.Global]; c != chmc.FirstMiss {
			t.Errorf("ref %d (block %d): class %v, want FM (single cold access)", r.Global, r.Block, c)
		}
	}
}

func TestLoopFitsInCache(t *testing.T) {
	cfg := testConfig() // capacity: 8 blocks of 8B = 64B = 16 instructions
	b := program.New("fits")
	b.Func("main").Loop(10, func(l *program.Body) { l.Ops(3) })
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()
	// The whole program is ~8 instructions = 4 blocks in 4 distinct sets;
	// everything fits, so all refs must be FM (miss once, then hit).
	for _, r := range a.Refs() {
		if c := classes[r.Global]; c != chmc.FirstMiss && c != chmc.AlwaysHit {
			t.Errorf("ref %d (bb %d, block %d): class %v, want FM or AH", r.Global, r.BB, r.Block, c)
		}
	}
	// At least one loop-body ref must be classified (not all NC).
	found := false
	for _, r := range a.Refs() {
		if classes[r.Global] == chmc.FirstMiss {
			found = true
		}
	}
	if !found {
		t.Error("no FM classification found in a cache-resident loop")
	}
}

func TestLoopThrashing(t *testing.T) {
	// 2-way sets; a loop body spanning 3+ blocks of the same set thrashes.
	cfg := cache.Config{Sets: 1, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("thrash")
	// Body of ~24 instructions = 12 blocks, all in the single set.
	b.Func("main").Loop(10, func(l *program.Body) { l.Ops(24) })
	p := b.MustBuild()
	a := New(p, cfg)
	classes := a.ClassifyAll()
	// Refs inside the loop cannot be FM or AH (the LRU stack of the only
	// set is overwhelmed each iteration).
	loop := p.Loops[0]
	inLoop := make(map[int]bool)
	for _, id := range loop.Blocks {
		inLoop[id] = true
	}
	nBad := 0
	for _, r := range a.Refs() {
		if !inLoop[r.BB] || r.BB == loop.Header {
			continue
		}
		if c := classes[r.Global]; c == chmc.AlwaysHit || c == chmc.FirstMiss {
			nBad++
			t.Errorf("thrashing ref %d (bb %d block %d) classified %v", r.Global, r.BB, r.Block, c)
		}
	}
	_ = nBad
}

func TestDegradedClassificationMonotone(t *testing.T) {
	cfg := cache.Config{Sets: 2, Ways: 4, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("degrade")
	b.Func("main").Loop(8, func(l *program.Body) { l.Ops(10) }).Loop(4, func(l *program.Body) { l.Ops(4) })
	p := b.MustBuild()
	a := New(p, cfg)
	for set := 0; set < cfg.Sets; set++ {
		prev := a.ClassifySet(set, cfg.Ways)
		for assoc := cfg.Ways - 1; assoc >= 0; assoc-- {
			cur := a.ClassifySet(set, assoc)
			for _, r := range a.Refs() {
				if r.Set != set {
					continue
				}
				if !cur[r.Global].WorseThan(prev[r.Global]) {
					t.Errorf("set %d assoc %d ref %d: %v better than %v at higher assoc",
						set, assoc, r.Global, cur[r.Global], prev[r.Global])
				}
			}
			prev = cur
		}
	}
}

func TestZeroAssocAllMiss(t *testing.T) {
	cfg := testConfig()
	p := progen.Random(rand.New(rand.NewSource(7)), progen.DefaultParams())
	a := New(p, cfg)
	classes := a.ClassifySet(2, 0)
	for _, r := range a.Refs() {
		if r.Set == 2 && classes[r.Global] != chmc.AlwaysMiss {
			t.Errorf("ref %d: class %v, want AM at associativity 0", r.Global, classes[r.Global])
		}
	}
}

func TestSRBSequentialHits(t *testing.T) {
	cfg := testConfig() // 2 instructions per block
	b := program.New("srbseq")
	// main: 3 ops + return = 4 instructions in 2 blocks; single basic
	// block, so the second block's ref follows the first consecutively...
	b.Func("main").Ops(3)
	p := b.MustBuild()
	a := New(p, cfg)
	hit := a.ClassifySRB()
	// Within a single basic block each ref accesses a distinct memory
	// block, so no ref repeats the previous block: no SRB hits at ref
	// granularity here.
	for _, r := range a.Refs() {
		if hit[r.Global] {
			t.Errorf("ref %d (block %d) claimed SRB-hit in straight-line distinct-block stream", r.Global, r.Block)
		}
	}
}

func TestSRBCrossBlockContinuation(t *testing.T) {
	cfg := testConfig() // 2 instructions per memory block
	b := program.New("srbcont")
	// if(cond){1 op}; join. Layout: [branch op][then op][join: ...].
	// With 2-instruction memory blocks, some block boundary will split a
	// memory block across two basic blocks, making the continuation ref
	// SRB-guaranteed... but only when all predecessors end in the same
	// memory block. We verify the invariant structurally instead of
	// pinning specific refs: an SRB-hit ref's memory block must equal the
	// last memory block of every predecessor path.
	b.Func("main").Ops(1).If(func(t *program.Body) { t.Ops(2) }, nil).Ops(3)
	p := b.MustBuild()
	a := New(p, cfg)
	hit := a.ClassifySRB()
	for _, r := range a.Refs() {
		if !hit[r.Global] {
			continue
		}
		// The ref must not be the first ref of a block whose
		// predecessors end in different memory blocks.
		if r.Index > 0 {
			t.Errorf("ref %d: SRB hit claimed for a non-first ref of its bb (distinct blocks within bb)", r.Global)
			continue
		}
		for _, pr := range p.Blocks[r.BB].Preds {
			prRefs := a.RefsOf(pr)
			if len(prRefs) == 0 {
				continue
			}
			if prRefs[len(prRefs)-1].Block != r.Block {
				t.Errorf("ref %d: SRB hit but pred bb %d ends in block %d, ref block %d",
					r.Global, pr, prRefs[len(prRefs)-1].Block, r.Block)
			}
		}
	}
}

// attributeTrace replays a block trace at reference granularity on a
// concrete simulator and returns hit/miss counts per global ref.
func attributeTrace(a *Analyzer, sim *cache.Sim, blocks []int) (hits, misses []int) {
	hits = make([]int, len(a.Refs()))
	misses = make([]int, len(a.Refs()))
	for _, bb := range blocks {
		for _, r := range a.RefsOf(bb) {
			first := r.Block * uint32(a.Config().BlockBytes)
			if sim.Access(first) {
				hits[r.Global]++
			} else {
				misses[r.Global]++
			}
		}
	}
	return hits, misses
}

// TestClassificationSoundVsSimulation is the central property test: on
// random programs and random paths, AlwaysHit references never miss,
// FirstMiss references miss at most once, and AlwaysMiss references never
// hit — against a concrete LRU simulation of the fault-free cache.
func TestClassificationSoundVsSimulation(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		a := New(p, cfg)
		classes := a.ClassifyAll()
		for path := 0; path < 4; path++ {
			blocks, err := p.TraceBlocks(program.RandomChooser(rng), 200000)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			sim := cache.NewSim(cfg, cache.MechanismNone, cache.NewFaultMap(cfg.Sets, cfg.Ways))
			hits, misses := attributeTrace(a, sim, blocks)
			for _, r := range a.Refs() {
				switch classes[r.Global] {
				case chmc.AlwaysHit:
					if misses[r.Global] > 0 {
						t.Fatalf("seed %d path %d: AH ref %d (bb %d, block %d) missed %d times",
							seed, path, r.Global, r.BB, r.Block, misses[r.Global])
					}
				case chmc.FirstMiss:
					if misses[r.Global] > 1 {
						t.Fatalf("seed %d path %d: FM ref %d (bb %d, block %d) missed %d times",
							seed, path, r.Global, r.BB, r.Block, misses[r.Global])
					}
				case chmc.AlwaysMiss:
					if hits[r.Global] > 0 {
						t.Fatalf("seed %d path %d: AM ref %d (bb %d, block %d) hit %d times",
							seed, path, r.Global, r.BB, r.Block, hits[r.Global])
					}
				}
			}
		}
	}
}

// TestDegradedClassificationSoundVsSimulation repeats the soundness check
// with faulty ways disabled in one set, using the per-set re-analysis at
// reduced associativity that the FMM relies on.
func TestDegradedClassificationSoundVsSimulation(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		a := New(p, cfg)
		set := rng.Intn(cfg.Sets)
		f := 1 + rng.Intn(cfg.Ways) // 1..W faulty ways
		classes := a.ClassifySet(set, cfg.Ways-f)

		fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
		for w := 0; w < f; w++ {
			fm[set][w] = true
		}
		blocks, err := p.TraceBlocks(program.RandomChooser(rng), 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sim := cache.NewSim(cfg, cache.MechanismNone, fm)
		hits, misses := attributeTrace(a, sim, blocks)
		for _, r := range a.Refs() {
			if r.Set != set {
				continue
			}
			switch classes[r.Global] {
			case chmc.AlwaysHit:
				if misses[r.Global] > 0 {
					t.Fatalf("seed %d: degraded AH ref %d missed", seed, r.Global)
				}
			case chmc.FirstMiss:
				if misses[r.Global] > 1 {
					t.Fatalf("seed %d: degraded FM ref %d missed %d times", seed, r.Global, misses[r.Global])
				}
			case chmc.AlwaysMiss:
				if hits[r.Global] > 0 {
					t.Fatalf("seed %d: degraded AM ref %d hit", seed, r.Global)
				}
			}
		}
	}
}

// TestSRBSoundVsSimulation checks that SRB-guaranteed-hit references
// indeed always hit when their set is entirely faulty and the SRB is the
// only storage, at instruction granularity.
func TestSRBSoundVsSimulation(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		a := New(p, cfg)
		srbHit := a.ClassifySRB()

		// All sets faulty: every access goes through the SRB.
		fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
		for s := range fm {
			for w := range fm[s] {
				fm[s][w] = true
			}
		}
		blocks, err := p.TraceBlocks(program.RandomChooser(rng), 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sim := cache.NewSim(cfg, cache.MechanismSRB, fm)
		for _, bb := range blocks {
			for _, r := range a.RefsOf(bb) {
				for i := 0; i < r.NumInstr; i++ {
					// Instruction addresses covered by the ref.
					base := r.Block*uint32(cfg.BlockBytes) + uint32(i*program.InstrBytes)
					hit := sim.Access(base)
					if i == 0 && srbHit[r.Global] && !hit {
						t.Fatalf("seed %d: SRB-AH ref %d (bb %d block %d) missed", seed, r.Global, r.BB, r.Block)
					}
					if i > 0 && !hit {
						t.Fatalf("seed %d: intra-block instruction missed in SRB", seed)
					}
				}
			}
		}
	}
}
