package absint

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/malardalen"
	"repro/internal/progen"
	"repro/internal/program"
)

// diffConfigs are the cache geometries the compact domain is pitted
// against the reference on: the paper's 16-set cache and a 256-set
// geometry where per-set universes get sparse (many empty sets).
func diffConfigs() []cache.Config {
	return []cache.Config{
		cache.PaperConfig(),
		{Sets: 256, Ways: 4, BlockBytes: 16, HitLatency: 1, MemLatency: 100},
		{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
	}
}

// assertSameClassification compares the compact and reference
// classifications of one program/config across full classification,
// every per-set degraded associativity, and the reused-buffer path.
func assertSameClassification(t *testing.T, name string, p *program.Program, cfg cache.Config) {
	t.Helper()
	fast := New(p, cfg)
	ref := NewReference(p, cfg)

	fa, ra := fast.ClassifyAll(), ref.ClassifyAll()
	for i := range fa {
		if fa[i] != ra[i] {
			t.Fatalf("%s/%v: ClassifyAll ref %d: %v vs reference %v", name, cfg, i, fa[i], ra[i])
		}
	}
	for set := 0; set < cfg.Sets; set++ {
		refs := fast.RefsOfSet(set)
		// The per-set index must be exactly the filtered global list.
		want := 0
		for _, r := range fast.Refs() {
			if r.Set == set {
				if refs[want] != r {
					t.Fatalf("%s/%v: RefsOfSet(%d)[%d] = %+v, want %+v", name, cfg, set, want, refs[want], r)
				}
				want++
			}
		}
		if want != len(refs) {
			t.Fatalf("%s/%v: RefsOfSet(%d) has %d refs, want %d", name, cfg, set, len(refs), want)
		}
		for assoc := 0; assoc <= cfg.Ways; assoc++ {
			fc, rc := fast.ClassifySet(set, assoc), ref.ClassifySet(set, assoc)
			for _, r := range refs {
				if fc[r.Global] != rc[r.Global] {
					t.Fatalf("%s/%v: set %d assoc %d ref %d: %v vs reference %v",
						name, cfg, set, assoc, r.Global, fc[r.Global], rc[r.Global])
				}
			}
		}
	}
}

// TestCompactDomainMatchesReferenceMalardalen: compact vs reference
// classifications must be identical on real benchmarks across the 16-
// and 256-set geometries, for every set and effective associativity.
func TestCompactDomainMatchesReferenceMalardalen(t *testing.T) {
	for _, name := range []string{"adpcm", "crc", "matmult", "bs"} {
		p := malardalen.MustGet(name)
		for _, cfg := range diffConfigs() {
			t.Run(fmt.Sprintf("%s/sets=%d", name, cfg.Sets), func(t *testing.T) {
				assertSameClassification(t, name, p, cfg)
			})
		}
	}
}

// TestCompactDomainMatchesReferenceRandom fuzzes the comparison over
// random structured programs (loops, branches, calls).
func TestCompactDomainMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		p := progen.Random(rng, progen.DefaultParams())
		cfg := cache.Config{
			Sets:       []int{2, 4, 8, 16}[rng.Intn(4)],
			Ways:       1 + rng.Intn(4),
			BlockBytes: []int{8, 16}[rng.Intn(2)],
			HitLatency: 1,
			MemLatency: 10,
		}
		assertSameClassification(t, fmt.Sprintf("random-%d", iter), p, cfg)
	}
}

// TestClassifySetIntoReusesBuffer: one buffer reused across every
// (set, associativity) pair — the FMM's access pattern — must yield
// the same per-set entries as fresh ClassifySet calls; stale entries
// may only ever survive for other sets.
func TestClassifySetIntoReusesBuffer(t *testing.T) {
	p := malardalen.MustGet("crc")
	cfg := cache.PaperConfig()
	a := New(p, cfg)
	buf := make([]chmc.Class, len(a.Refs()))
	for set := 0; set < cfg.Sets; set++ {
		for assoc := cfg.Ways; assoc >= 0; assoc-- {
			a.ClassifySetInto(buf, set, assoc)
			fresh := a.ClassifySet(set, assoc)
			for _, r := range a.RefsOfSet(set) {
				if buf[r.Global] != fresh[r.Global] {
					t.Fatalf("set %d assoc %d ref %d: reused buffer %v, fresh %v",
						set, assoc, r.Global, buf[r.Global], fresh[r.Global])
				}
			}
		}
	}
}
