package absint

// This file is the compact abstract set state the hot path runs on: the
// same Must/May/Persistence lattice as domain.go, represented over the
// set's local block universe (see index.go) as dense age arrays and
// younger-set bitsets instead of hash maps. Every operation — join,
// transfer, equality — is an elementwise sweep over the (small) block
// universe, so a fixpoint iteration costs a few linear scans instead of
// map iteration, hashing and per-entry allocation.
//
// The map-based domain in domain.go is retained as the reference
// implementation; TestCompactDomainMatchesReference checks, on random
// programs and the Mälardalen benchmarks, that both produce identical
// classifications for every (set, associativity).

import (
	"math/bits"

	"repro/internal/chmc"
)

// cstate is the joint Must/May/Persistence state of one cache set over
// a local block universe of B blocks.
//
// must[b]/may[b] hold the block's age bound, or -1 when the block is
// not in the respective ACS. The persistence state of block b is:
// absent (persIn[b] == false: never loaded on any path), saturated
// (persSat[b]: may have been evicted), or the younger set itself —
// persSize[b] distinct blocks recorded in row b of the persBits bitset.
// Bits of absent or saturated rows are meaningless (rows are cleared on
// (re)insertion), mirroring the nil blocks map of a saturated
// youngerSet.
type cstate struct {
	reached  bool
	must     []int16
	may      []int16
	persIn   []bool
	persSat  []bool
	persSize []int16
	persBits []uint64
	words    int
}

func newCstate(nblocks, words int) *cstate {
	s := &cstate{
		must:     make([]int16, nblocks),
		may:      make([]int16, nblocks),
		persIn:   make([]bool, nblocks),
		persSat:  make([]bool, nblocks),
		persSize: make([]int16, nblocks),
		persBits: make([]uint64, nblocks*words),
		words:    words,
	}
	s.reset()
	return s
}

// reset restores the unreached empty state (the lattice bottom).
func (s *cstate) reset() {
	s.reached = false
	for b := range s.must {
		s.must[b] = -1
		s.may[b] = -1
		s.persIn[b] = false
	}
}

// copyFrom makes s an exact copy of o (same universe).
func (s *cstate) copyFrom(o *cstate) {
	s.reached = o.reached
	copy(s.must, o.must)
	copy(s.may, o.may)
	copy(s.persIn, o.persIn)
	copy(s.persSat, o.persSat)
	copy(s.persSize, o.persSize)
	copy(s.persBits, o.persBits)
}

// join merges another state into s — Must: intersection with maximal
// age; May: union with minimal age; Persistence: union with united
// younger sets — exactly like setState.join.
func (s *cstate) join(o *cstate, assoc int) {
	if !o.reached {
		return
	}
	if !s.reached {
		s.copyFrom(o)
		return
	}
	w := s.words
	for b := range s.must {
		if a := s.must[b]; a >= 0 {
			if oa := o.must[b]; oa < 0 {
				s.must[b] = -1
			} else if oa > a {
				s.must[b] = oa
			}
		}
		if oa := o.may[b]; oa >= 0 && (s.may[b] < 0 || oa < s.may[b]) {
			s.may[b] = oa
		}
		if !o.persIn[b] {
			continue
		}
		switch {
		case !s.persIn[b]:
			s.persIn[b] = true
			s.persSat[b] = o.persSat[b]
			s.persSize[b] = o.persSize[b]
			copy(s.persBits[b*w:(b+1)*w], o.persBits[b*w:(b+1)*w])
		case s.persSat[b]:
			// Saturated absorbs any union.
		case o.persSat[b]:
			s.persSat[b] = true
		default:
			row, orow := s.persBits[b*w:(b+1)*w], o.persBits[b*w:(b+1)*w]
			size := 0
			for i := range row {
				row[i] |= orow[i]
				size += bits.OnesCount64(row[i])
			}
			s.persSize[b] = int16(size)
			if size >= assoc {
				s.persSat[b] = true
			}
		}
	}
}

// access applies the LRU transfer function for an access to local block
// m, mirroring setState.access.
func (s *cstate) access(m int32, assoc int) {
	if assoc <= 0 {
		return // no usable ways: nothing is cached
	}
	// Must update: blocks younger than m's max age grow older.
	mAge := s.must[m]
	if mAge < 0 {
		mAge = int16(assoc)
	}
	for b := range s.must {
		if a := s.must[b]; int32(b) != m && a >= 0 && a < mAge {
			if int(a)+1 >= assoc {
				s.must[b] = -1
			} else {
				s.must[b] = a + 1
			}
		}
	}
	s.must[m] = 0

	// May update: blocks at least as young as m's min age grow older.
	mMin := s.may[m]
	if mMin < 0 {
		mMin = int16(assoc)
	}
	for b := range s.may {
		if a := s.may[b]; int32(b) != m && a >= 0 && a <= mMin {
			if int(a)+1 >= assoc {
				s.may[b] = -1
			} else {
				s.may[b] = a + 1
			}
		}
	}
	s.may[m] = 0

	// Persistence update: every other block may now have one more
	// distinct block above it; m's own younger set resets.
	w := s.words
	word, mask := int(m)/64, uint64(1)<<(uint(m)%64)
	for b := range s.persIn {
		if int32(b) == m || !s.persIn[b] || s.persSat[b] {
			continue
		}
		if s.persBits[b*w+word]&mask == 0 {
			s.persBits[b*w+word] |= mask
			s.persSize[b]++
			if int(s.persSize[b]) >= assoc {
				s.persSat[b] = true
			}
		}
	}
	row := s.persBits[int(m)*w : (int(m)+1)*w]
	for i := range row {
		row[i] = 0
	}
	s.persIn[m] = true
	s.persSat[m] = false
	s.persSize[m] = 0
}

// equal reports exact state equality, like setState.equal. The states
// kept in a fixpoint are empty while unreached (they are only mutated
// once reached), so unreached states compare by reachedness alone.
func (s *cstate) equal(o *cstate) bool {
	if s.reached != o.reached {
		return false
	}
	if !s.reached {
		return true
	}
	w := s.words
	for b := range s.must {
		if s.must[b] != o.must[b] || s.may[b] != o.may[b] || s.persIn[b] != o.persIn[b] {
			return false
		}
		if !s.persIn[b] {
			continue
		}
		if s.persSat[b] != o.persSat[b] {
			return false
		}
		if s.persSat[b] {
			continue // saturated: content is immaterial, like a nil blocks map
		}
		if s.persSize[b] != o.persSize[b] {
			return false
		}
		row, orow := s.persBits[b*w:(b+1)*w], o.persBits[b*w:(b+1)*w]
		for i := range row {
			if row[i] != orow[i] {
				return false
			}
		}
	}
	return true
}

// classifyCompact derives the CHMC of an access to local block m from
// the pre-state — the compact twin of classify().
func classifyCompact(st *cstate, m int32, assoc int) chmc.Class {
	switch {
	case st.must[m] >= 0:
		return chmc.AlwaysHit
	case !st.persIn[m]:
		// No path has loaded m before this point, so the reference
		// executes at most once per run: at most one miss.
		return chmc.FirstMiss
	case !st.persSat[m]:
		return chmc.FirstMiss
	case st.may[m] < 0:
		return chmc.AlwaysMiss
	default:
		return chmc.NotClassified
	}
}
