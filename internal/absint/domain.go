package absint

// This file defines the abstract cache state (ACS) domains for one cache
// set, and their join/transfer/equality operations.
//
// Must and May track per-block LRU age bounds (max and min, respectively)
// as in Ferdinand & Wilhelm. Persistence tracks, per block, the "younger
// set": the set of distinct same-cache-set memory blocks possibly accessed
// since the block's last access. Under LRU, a block's concrete age equals
// the number of distinct blocks accessed since its last access (when it
// is still cached), so |youngerSet| upper-bounds the age on every path;
// the block may have been evicted only when |youngerSet| >= associativity.

// youngerSet is the per-block state of the persistence analysis. Once the
// set can reach the associativity bound the block is saturated ("may have
// been evicted") and the exact content no longer matters.
type youngerSet struct {
	sat    bool
	blocks map[uint32]struct{}
}

func (y *youngerSet) clone() *youngerSet {
	if y.sat {
		return &youngerSet{sat: true}
	}
	c := &youngerSet{blocks: make(map[uint32]struct{}, len(y.blocks))}
	for b := range y.blocks {
		c.blocks[b] = struct{}{}
	}
	return c
}

func (y *youngerSet) size() int {
	if y.sat {
		return 1 << 30
	}
	return len(y.blocks)
}

// add inserts a block and saturates when the set reaches assoc.
func (y *youngerSet) add(b uint32, assoc int) {
	if y.sat {
		return
	}
	y.blocks[b] = struct{}{}
	if len(y.blocks) >= assoc {
		y.sat = true
		y.blocks = nil
	}
}

func (y *youngerSet) union(o *youngerSet, assoc int) {
	if y.sat {
		return
	}
	if o.sat {
		y.sat = true
		y.blocks = nil
		return
	}
	//pwcetlint:ordered add() only inserts into a set and saturates at a size threshold; final content and sat flag are order-independent
	for b := range o.blocks {
		y.add(b, assoc)
	}
}

func (y *youngerSet) equal(o *youngerSet) bool {
	if y.sat != o.sat {
		return false
	}
	if y.sat {
		return true
	}
	if len(y.blocks) != len(o.blocks) {
		return false
	}
	//pwcetlint:ordered membership test with early return false; the boolean result is the same whichever mismatch is seen first
	for b := range y.blocks {
		if _, ok := o.blocks[b]; !ok {
			return false
		}
	}
	return true
}

// setState is the joint ACS of Must, May and Persistence for one cache
// set at a given effective associativity.
type setState struct {
	reached bool
	must    map[uint32]int // block -> max age, 0..assoc-1
	may     map[uint32]int // block -> min age, 0..assoc-1
	pers    map[uint32]*youngerSet
}

func newSetState() *setState {
	return &setState{
		must: make(map[uint32]int),
		may:  make(map[uint32]int),
		pers: make(map[uint32]*youngerSet),
	}
}

func (s *setState) clone() *setState {
	c := &setState{
		reached: s.reached,
		must:    make(map[uint32]int, len(s.must)),
		may:     make(map[uint32]int, len(s.may)),
		pers:    make(map[uint32]*youngerSet, len(s.pers)),
	}
	for b, a := range s.must {
		c.must[b] = a
	}
	for b, a := range s.may {
		c.may[b] = a
	}
	//pwcetlint:ordered keyed copy into a fresh map; clone() has no observable effect beyond its result
	for b, y := range s.pers {
		c.pers[b] = y.clone()
	}
	return c
}

func (s *setState) equal(o *setState) bool {
	if s.reached != o.reached || len(s.must) != len(o.must) ||
		len(s.may) != len(o.may) || len(s.pers) != len(o.pers) {
		return false
	}
	//pwcetlint:ordered per-key equality with early return false; the boolean result is the same whichever mismatch is seen first
	for b, a := range s.must {
		if oa, ok := o.must[b]; !ok || oa != a {
			return false
		}
	}
	//pwcetlint:ordered per-key equality with early return false; the boolean result is the same whichever mismatch is seen first
	for b, a := range s.may {
		if oa, ok := o.may[b]; !ok || oa != a {
			return false
		}
	}
	//pwcetlint:ordered per-key equality with early return false; equal() is read-only, so the result is order-independent
	for b, y := range s.pers {
		oy, ok := o.pers[b]
		if !ok || !y.equal(oy) {
			return false
		}
	}
	return true
}

// join merges another state into s (s becomes the join of both).
// Must: intersection with maximal age. May: union with minimal age.
// Persistence: union with united younger sets.
func (s *setState) join(o *setState, assoc int) {
	if !o.reached {
		return
	}
	if !s.reached {
		*s = *o.clone()
		return
	}
	for b, a := range s.must {
		oa, ok := o.must[b]
		if !ok {
			delete(s.must, b)
			continue
		}
		if oa > a {
			s.must[b] = oa
		}
	}
	//pwcetlint:ordered per-key min over disjoint keys; each iteration reads and writes only s.may[b] for its own b
	for b, oa := range o.may {
		if a, ok := s.may[b]; !ok || oa < a {
			s.may[b] = oa
		}
	}
	//pwcetlint:ordered per-key set union over disjoint keys; union/clone touch only the entry for this b
	for b, oy := range o.pers {
		if y, ok := s.pers[b]; ok {
			y.union(oy, assoc)
		} else {
			s.pers[b] = oy.clone()
		}
	}
}

// access applies the LRU transfer function for an access to block m.
func (s *setState) access(m uint32, assoc int) {
	if assoc <= 0 {
		return // no usable ways: nothing is cached
	}
	// Must update: blocks younger than m's max age grow older.
	mAge, inMust := s.must[m]
	if !inMust {
		mAge = assoc
	}
	for b, a := range s.must {
		if b == m {
			continue
		}
		if a < mAge {
			if a+1 >= assoc {
				delete(s.must, b)
			} else {
				s.must[b] = a + 1
			}
		}
	}
	s.must[m] = 0

	// May update: blocks at least as young as m's min age grow older.
	mMin, inMay := s.may[m]
	if !inMay {
		mMin = assoc
	}
	for b, a := range s.may {
		if b == m {
			continue
		}
		if a <= mMin {
			if a+1 >= assoc {
				delete(s.may, b)
			} else {
				s.may[b] = a + 1
			}
		}
	}
	s.may[m] = 0

	// Persistence update: every other block may now have one more
	// distinct block above it; m's own younger set resets.
	//pwcetlint:ordered inserts the same single block m into each entry's younger set; per-key independent
	for b, y := range s.pers {
		if b == m {
			continue
		}
		y.add(m, assoc)
	}
	s.pers[m] = &youngerSet{blocks: make(map[uint32]struct{})}
}
