package absint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomState builds a random abstract set state over a small block
// universe at the given associativity.
func randomState(rng *rand.Rand, assoc int) *setState {
	st := newSetState()
	st.reached = true
	for b := uint32(0); b < 6; b++ {
		if rng.Intn(3) == 0 {
			st.must[b] = rng.Intn(assoc)
		}
		if rng.Intn(2) == 0 {
			st.may[b] = rng.Intn(assoc)
		}
		if rng.Intn(2) == 0 {
			y := &youngerSet{blocks: make(map[uint32]struct{})}
			for o := uint32(0); o < 6; o++ {
				if o != b && rng.Intn(3) == 0 {
					y.add(o, assoc)
				}
			}
			st.pers[b] = y
		}
	}
	// Keep the invariant must ⊆ may (a guaranteed-present block may be
	// present): ages must satisfy may-age <= must-age.
	for b, a := range st.must {
		if ma, ok := st.may[b]; !ok || ma > a {
			st.may[b] = 0
		}
	}
	return st
}

// TestJoinIdempotent checks join(s, s) == s.
func TestJoinIdempotent(t *testing.T) {
	const assoc = 3
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, assoc)
		j := s.clone()
		j.join(s, assoc)
		return j.equal(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestJoinCommutative checks join(a, b) == join(b, a).
func TestJoinCommutative(t *testing.T) {
	const assoc = 3
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, assoc)
		b := randomState(rng, assoc)
		ab := a.clone()
		ab.join(b, assoc)
		ba := b.clone()
		ba.join(a, assoc)
		return ab.equal(ba)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestJoinAssociative checks join(join(a,b),c) == join(a,join(b,c)).
func TestJoinAssociative(t *testing.T) {
	const assoc = 3
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, assoc)
		b := randomState(rng, assoc)
		c := randomState(rng, assoc)
		l := a.clone()
		l.join(b, assoc)
		l.join(c, assoc)
		r := b.clone()
		r.join(c, assoc)
		r2 := a.clone()
		r2.join(r, assoc)
		return l.equal(r2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestJoinWeakening checks the lattice direction of each component:
// joining can only shrink the Must set (or raise its ages), only grow
// the May set (or lower its ages), and only grow the persistence
// younger-sets.
func TestJoinWeakening(t *testing.T) {
	const assoc = 3
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, assoc)
		b := randomState(rng, assoc)
		j := a.clone()
		j.join(b, assoc)
		// Must: j.must ⊆ a.must with ages >= a's.
		for blk, age := range j.must {
			aAge, ok := a.must[blk]
			if !ok || age < aAge {
				return false
			}
		}
		// May: a.may ⊆ j.may with ages <= a's.
		for blk, aAge := range a.may {
			jAge, ok := j.may[blk]
			if !ok || jAge > aAge {
				return false
			}
		}
		// Persistence: every younger-set of a is contained in j's.
		for blk, ay := range a.pers {
			jy, ok := j.pers[blk]
			if !ok {
				return false
			}
			if jy.sat {
				continue
			}
			if ay.sat {
				return false // join lost saturation
			}
			for o := range ay.blocks {
				if _, ok := jy.blocks[o]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAccessAfterAccessIsHit checks the Must transfer: immediately
// re-accessing a block finds it at age 0.
func TestAccessAfterAccessIsHit(t *testing.T) {
	const assoc = 2
	st := newSetState()
	st.reached = true
	st.access(1, assoc)
	st.access(2, assoc)
	if age, ok := st.must[2]; !ok || age != 0 {
		t.Error("just-accessed block not at Must age 0")
	}
	if age, ok := st.must[1]; !ok || age != 1 {
		t.Error("previous block not aged to 1")
	}
	st.access(3, assoc) // evicts block 1 from the 2-way Must view
	if _, ok := st.must[1]; ok {
		t.Error("block 1 must have been evicted from the Must ACS")
	}
	// Persistence: block 1's younger set saturated (2 distinct others).
	if y := st.pers[1]; y == nil || !y.sat {
		t.Error("block 1's younger set must be saturated")
	}
}

// TestYoungerSetSaturation pins the saturation threshold: the set
// saturates exactly when it reaches the associativity.
func TestYoungerSetSaturation(t *testing.T) {
	y := &youngerSet{blocks: make(map[uint32]struct{})}
	y.add(1, 3)
	y.add(2, 3)
	if y.sat {
		t.Error("saturated below the associativity")
	}
	y.add(2, 3) // duplicate: no growth
	if y.sat || len(y.blocks) != 2 {
		t.Error("duplicate insertion changed the set")
	}
	y.add(3, 3)
	if !y.sat {
		t.Error("not saturated at the associativity")
	}
	// Saturated sets absorb unions.
	o := &youngerSet{blocks: map[uint32]struct{}{9: {}}}
	o.union(y, 3)
	if !o.sat {
		t.Error("union with a saturated set must saturate")
	}
}
