package absint

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/progen"
	"repro/internal/program"
)

// TestDataClassificationSoundVsSimulation mirrors the instruction-side
// soundness property for the data-cache analysis: on random programs
// with random scalar loads/stores and random paths, AlwaysHit data
// references never miss, FirstMiss miss at most once, AlwaysMiss never
// hit — against concrete simulation of the data cache.
func TestDataClassificationSoundVsSimulation(t *testing.T) {
	dcfg := cache.Config{Sets: 2, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		p := progen.Random(rng, progen.DataParams())
		da := NewData(p, dcfg)
		classes := da.ClassifyAll()
		if len(da.Refs()) == 0 {
			continue // no data accesses generated this time
		}

		for path := 0; path < 3; path++ {
			blocks, err := p.TraceBlocks(program.RandomChooser(rng), 200000)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			sim := cache.NewSim(dcfg, cache.MechanismNone, cache.NewFaultMap(dcfg.Sets, dcfg.Ways))
			hits := make([]int, len(da.Refs()))
			misses := make([]int, len(da.Refs()))
			for _, bb := range blocks {
				for _, r := range da.RefsOf(bb) {
					if sim.Access(r.FirstAddr) {
						hits[r.Global]++
					} else {
						misses[r.Global]++
					}
				}
			}
			for _, r := range da.Refs() {
				switch classes[r.Global] {
				case chmc.AlwaysHit:
					if misses[r.Global] > 0 {
						t.Fatalf("seed %d: data AH ref %d missed", seed, r.Global)
					}
				case chmc.FirstMiss:
					if misses[r.Global] > 1 {
						t.Fatalf("seed %d: data FM ref %d missed %d times", seed, r.Global, misses[r.Global])
					}
				case chmc.AlwaysMiss:
					if hits[r.Global] > 0 {
						t.Fatalf("seed %d: data AM ref %d hit", seed, r.Global)
					}
				}
			}
		}
	}
}

// TestDataRefsRunCompression checks consecutive same-block accesses
// compress into one reference with the right access count.
func TestDataRefsRunCompression(t *testing.T) {
	dcfg := cache.Config{Sets: 2, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("runs")
	// Two accesses to the same 8-byte block (0x100, 0x104), then one to
	// a different block, then back to the first.
	b.Func("main").Load(0x100).Store(0x104).Load(0x200).Load(0x100)
	p := b.MustBuild()
	perBB, all := ComputeDataRefs(p, dcfg)
	_ = perBB
	if len(all) != 3 {
		t.Fatalf("data refs = %d, want 3 (run compression + re-access)", len(all))
	}
	if all[0].NumInstr != 2 {
		t.Errorf("first run has %d accesses, want 2", all[0].NumInstr)
	}
	if all[1].NumInstr != 1 || all[2].NumInstr != 1 {
		t.Error("later runs must have 1 access each")
	}
	if all[0].Block != all[2].Block {
		t.Error("first and last refs must be the same block")
	}
}

// TestInstructionRefsUnaffectedByData ensures data accesses do not leak
// into the instruction analyzer.
func TestInstructionRefsUnaffectedByData(t *testing.T) {
	cfg := testConfig()
	b1 := program.New("with")
	b1.Func("main").Load(0x5000).Ops(3).Store(0x5008)
	p1 := b1.MustBuild()
	b2 := program.New("without")
	b2.Func("main").Ops(5) // same instruction count (load/store are 1 instr each)
	p2 := b2.MustBuild()
	a1 := New(p1, cfg)
	a2 := New(p2, cfg)
	if len(a1.Refs()) != len(a2.Refs()) {
		t.Errorf("instruction refs differ: %d vs %d", len(a1.Refs()), len(a2.Refs()))
	}
}
