package core

// This file implements the Engine's bounded artifact memory
// (EngineOptions.MaxArtifactBytes). Every memoized artifact class —
// classification fixpoints, warm IPET contexts, per-context FMM
// columns — carries an estimated byte cost (the MemBytes estimators of
// internal/absint, internal/ipet and internal/lp) and an intrusive LRU
// node. When the estimated resident total exceeds the budget, least-
// recently-used unpinned artifacts are evicted: removed from their memo
// map so the next query that needs them recomputes them from scratch.
//
// Eviction is behavior-invariant by construction: every artifact is an
// immutable pure function of its key, so evict → recompute yields
// byte-identical data, and an in-flight query that still holds a
// pointer to an evicted entry keeps reading valid immutable state. The
// eviction tests assert both properties with the Hook counters (the
// recomputation fires the hook again) and full-result DeepEqual.
//
// Pinning keeps the accounting honest across the artifact dependency
// edges: a resident WCET context pins the classification entries it
// references (they cannot be evicted out from under it, which would
// leave resident-but-unaccounted memory), and every in-flight query
// pins its context for the duration of the analysis. The pinned
// working set of one query is therefore the hard floor of the budget:
// MaxArtifactBytes below that floor still yields correct results, with
// everything evicted between queries.

import "repro/internal/faultpoint"

// memoNode is the LRU/accounting handle of one memoized artifact. All
// fields are guarded by Engine.mu.
type memoNode struct {
	cost int64
	pins int
	// depPins counts the subset of pins held by artifact dependency
	// edges (a resident context's hold on its classifications) rather
	// than by in-flight queries. pins > depPins therefore means a query
	// is actively using the artifact right now — the quantity the
	// PinnedBytes leak metric reports.
	depPins int
	linked  bool
	prev    *memoNode
	next    *memoNode
	// drop removes the artifact from its owner map and releases its
	// dependency pins. Called with Engine.mu held, after the node has
	// been unlinked and its cost subtracted.
	drop func(e *Engine)
}

// MemStats is a snapshot of the engine's artifact-memory accounting.
type MemStats struct {
	// ArtifactBytes is the estimated resident bytes of all memoized
	// artifacts (classification fixpoints, warm IPET contexts, FMM
	// columns). Estimates come from the MemBytes cost model, not the
	// allocator, so treat them as consistent, not byte-exact.
	ArtifactBytes int64
	// MaxArtifactBytes echoes the configured budget (<= 0: unbounded).
	MaxArtifactBytes int64
	// Artifacts is the number of resident memoized artifacts.
	Artifacts int
	// Hits and Misses count memo-table lookups: a hit found the
	// artifact (possibly still being computed by another goroutine), a
	// miss created the entry and triggered a computation.
	Hits, Misses uint64
	// Evictions counts artifacts evicted under the byte budget;
	// EvictedBytes is their cumulative estimated size.
	Evictions    uint64
	EvictedBytes int64
	// PinnedBytes and PinnedArtifacts describe the working set pinned
	// by in-flight queries right now. Steady-state dependency pins (a
	// resident context's hold on its classification entries) guard
	// eviction order but are excluded here, so with no query in flight
	// both are zero — the leak tests assert a canceled query drops back
	// to zero like a completed one.
	PinnedBytes     int64
	PinnedArtifacts int
	// Poisoned reports the engine panicked and is unusable (see
	// ErrPoisoned). When the panic left the accounting mutex held, the
	// snapshot contains only this flag — MemStats never blocks on a
	// poisoned engine's dead lock.
	Poisoned bool
}

// MemStats returns a consistent snapshot of the artifact-memory
// accounting. Safe for concurrent use, including on poisoned engines
// (which may have died holding the lock — then only Poisoned is set).
func (e *Engine) MemStats() MemStats {
	if e.poisoned.Load() {
		if !e.mu.TryLock() {
			return MemStats{Poisoned: true}
		}
	} else {
		e.mu.Lock()
	}
	defer e.mu.Unlock()
	var pinned int64
	var pinnedN int
	for n := e.lruHead; n != nil; n = n.next {
		if n.pins > n.depPins {
			pinned += n.cost
			pinnedN++
		}
	}
	return MemStats{
		ArtifactBytes:    e.resident,
		MaxArtifactBytes: e.maxBytes,
		Artifacts:        e.artifacts,
		Hits:             e.hits,
		Misses:           e.misses,
		Evictions:        e.evictions,
		EvictedBytes:     e.evictedBytes,
		PinnedBytes:      pinned,
		PinnedArtifacts:  pinnedN,
		Poisoned:         e.poisoned.Load(),
	}
}

// linkFrontLocked inserts the node at the most-recently-used end.
func (e *Engine) linkFrontLocked(n *memoNode) {
	n.prev, n.next = nil, e.lruHead
	if e.lruHead != nil {
		e.lruHead.prev = n
	}
	e.lruHead = n
	if e.lruTail == nil {
		e.lruTail = n
	}
	n.linked = true
	e.artifacts++
}

// unlinkLocked removes the node from the LRU list (list surgery only;
// accounting is the caller's job).
func (e *Engine) unlinkLocked(n *memoNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		e.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		e.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
	n.linked = false
	e.artifacts--
}

// touchLocked marks the node most recently used. Nodes that are not
// linked yet (still being computed) or already evicted are left alone.
func (e *Engine) touchLocked(n *memoNode) {
	if !n.linked || e.lruHead == n {
		return
	}
	e.unlinkLocked(n)
	e.linkFrontLocked(n)
}

// chargeLocked adds delta estimated bytes to the node, linking it into
// the LRU on first charge, and enforces the budget.
func (e *Engine) chargeLocked(n *memoNode, delta int64) {
	n.cost += delta
	e.resident += delta
	if !n.linked {
		e.linkFrontLocked(n)
	}
	e.evictLocked()
}

// evictNodeLocked unlinks one node and settles its accounting, then
// runs its drop callback (owner-map removal, dependency unpinning).
func (e *Engine) evictNodeLocked(n *memoNode) {
	e.unlinkLocked(n)
	e.resident -= n.cost
	e.evictions++
	e.evictedBytes += n.cost
	n.drop(e)
}

// evictLocked evicts least-recently-used unpinned artifacts until the
// resident estimate fits the budget (or only pinned artifacts remain —
// the working set of in-flight queries is never evicted).
func (e *Engine) evictLocked() {
	if faultpoint.Enabled && faultpoint.Fires(faultpoint.SiteForceEvict) {
		// Chaos injection: evict every unpinned artifact regardless of
		// the budget. Behavior-invariant by the same argument as regular
		// eviction — pinned working sets survive, everything else
		// recomputes byte-identically — which is exactly what the soak
		// harness asserts under this fault.
		for {
			victim := e.lruTail
			for victim != nil && victim.pins > 0 {
				victim = victim.prev
			}
			if victim == nil {
				break
			}
			e.evictNodeLocked(victim)
		}
	}
	if e.maxBytes <= 0 {
		return
	}
	for e.resident > e.maxBytes {
		victim := e.lruTail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			return
		}
		e.evictNodeLocked(victim)
	}
}
