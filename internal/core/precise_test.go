package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/malardalen"
	"repro/internal/progen"
	"repro/internal/program"
)

func TestProbMultiFullSets(t *testing.T) {
	// q = pbf^W; with pbf = 0.0127, W = 4, S = 16: q ~ 2.6e-8 and
	// P(E>=2) ~ C(16,2) q^2 ~ 8.2e-14.
	pbf := 0.012719
	got := probMultiFullSets(pbf, 16, 4)
	q := math.Pow(pbf, 4)
	approx := 120 * q * q // C(16,2) q^2 leading term
	if got < approx/2 || got > approx*2 {
		t.Errorf("P(E>=2) = %g, want ~%g", got, approx)
	}
	if p := probMultiFullSets(0, 16, 4); p != 0 {
		t.Errorf("P(E>=2) at pbf=0 = %g, want 0", p)
	}
	if p := probMultiFullSets(1, 16, 4); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(E>=2) at pbf=1 = %g, want 1", p)
	}
}

func TestPerSetSRBSupersetOfGlobal(t *testing.T) {
	// The precise (per-set) SRB classification must be at least as good
	// as the conservative global analysis on every reference: a
	// conservative guaranteed hit must classify AlwaysHit in the private
	// 1-way view (assuming fewer evictions can only help).
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		a := absint.New(p, cfg)
		global := a.ClassifySRB()
		for set := 0; set < cfg.Sets; set++ {
			perSet := a.ClassifySRBForSet(set)
			for _, r := range a.Refs() {
				if r.Set != set {
					continue
				}
				if global[r.Global] && perSet[r.Global] != chmc.AlwaysHit {
					t.Fatalf("seed %d: ref %d global SRB-hit but per-set %v",
						seed, r.Global, perSet[r.Global])
				}
			}
		}
	}
}

func TestPerSetSRBSeesTemporalLocality(t *testing.T) {
	// A loop whose footprint is at most one block per set: each looping
	// set holds exactly one block, revisited every iteration. The
	// conservative SRB analysis sees no guaranteed hits (any reference
	// may reload the buffer); the private per-set view classifies the
	// repeated reference first-miss (one reload, then resident).
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	b := program.New("temporal")
	b.Func("main").Loop(10, func(l *program.Body) { l.Ops(3) })
	p := b.MustBuild()
	a := absint.New(p, cfg)
	global := a.ClassifySRB()

	foundImprovement := false
	for set := 0; set < cfg.Sets; set++ {
		perSet := a.ClassifySRBForSet(set)
		for _, r := range a.Refs() {
			if r.Set != set {
				continue
			}
			better := perSet[r.Global] == chmc.AlwaysHit || perSet[r.Global] == chmc.FirstMiss
			if better && !global[r.Global] {
				foundImprovement = true
			}
		}
	}
	if !foundImprovement {
		t.Error("per-set SRB analysis found no additional guaranteed hits on a looping set")
	}
}

func TestPreciseSRBAtRelaxedTarget(t *testing.T) {
	// At a target above P(E>=2) the mixture bound may improve on the
	// conservative pWCET; it must never be worse, and at the paper's
	// 1e-15 it must coincide with the conservative bound (the mixture's
	// additive term dominates).
	for _, name := range []string{"bs", "fibcall", "matmult", "crc"} {
		p := malardalen.MustGet(name)
		cons, err := Analyze(p, Options{Pfail: 1e-4, Mechanism: cache.MechanismSRB})
		if err != nil {
			t.Fatal(err)
		}
		prec, err := Analyze(p, Options{Pfail: 1e-4, Mechanism: cache.MechanismSRB, PreciseSRB: true})
		if err != nil {
			t.Fatal(err)
		}
		if prec.PenaltyPrecise == nil {
			t.Fatal("precise distribution missing")
		}
		// Precise penalty is dominated by the conservative one.
		if !prec.PenaltyPrecise.DominatedBy(prec.Penalty, 1e-9) {
			t.Errorf("%s: precise penalty not dominated by conservative", name)
		}
		for _, target := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
			c := cons.PWCETAt(target)
			m := prec.PWCETAt(target)
			if m > c {
				t.Errorf("%s at %g: mixture pWCET %d worse than conservative %d", name, target, m, c)
			}
		}
		// At 1e-15 (< P(E>=2) ~ 8e-14) the mixture cannot beat the
		// conservative bound.
		if got, want := prec.PWCETAt(1e-15), cons.PWCETAt(1e-15); got != want {
			t.Errorf("%s: mixture at 1e-15 = %d, conservative = %d (must coincide)", name, got, want)
		}
	}
}

func TestPreciseSRBImprovesSomewhere(t *testing.T) {
	// The extension must actually buy something at targets above
	// P(E>=2) for at least one benchmark with temporal locality.
	improved := false
	for _, name := range []string{"fibcall", "bs", "insertsort", "matmult"} {
		p := malardalen.MustGet(name)
		cons, err := Analyze(p, Options{Pfail: 1e-4, Mechanism: cache.MechanismSRB})
		if err != nil {
			t.Fatal(err)
		}
		prec, err := Analyze(p, Options{Pfail: 1e-4, Mechanism: cache.MechanismSRB, PreciseSRB: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []float64{1e-6, 1e-9, 1e-12} {
			if prec.PWCETAt(target) < cons.PWCETAt(target) {
				improved = true
			}
		}
	}
	if !improved {
		t.Error("precise SRB never improved the pWCET at relaxed targets")
	}
}

func TestPreciseSRBIgnoredForOtherMechanisms(t *testing.T) {
	p := malardalen.MustGet("bs")
	r, err := Analyze(p, Options{Pfail: 1e-4, Mechanism: cache.MechanismRW, PreciseSRB: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.PenaltyPrecise != nil {
		t.Error("precise SRB distribution built for a non-SRB mechanism")
	}
}
