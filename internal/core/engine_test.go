package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/progen"
	"repro/internal/program"
)

// sweepPfails is the 10-point pfail sweep of the acceptance criterion:
// the whole resilience-roadmap range the faultsweep example covers.
var sweepPfails = []float64{6.1e-13, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 2.6e-4, 5e-4, 1e-3}

// requireDeepEqualResult asserts every field of two results is
// byte-identical, including the echoed options, fault models, FMMs and
// every distribution atom. reflect.DeepEqual covers fields
// requireSameResult does not (Model, Options, HitRefs...).
func requireDeepEqualResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	requireSameResult(t, label, ref, got)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("%s: engine result differs from one-shot Analyze beyond the distribution fields:\nref: %+v\ngot: %+v", label, ref, got)
	}
}

// TestEnginePfailSweepByteIdentical is the acceptance criterion of the
// session redesign: an AnalyzeBatch over a 10-point pfail sweep on the
// paper cache returns results byte-identical to 10 independent one-shot
// Analyze calls, for every mechanism.
func TestEnginePfailSweepByteIdentical(t *testing.T) {
	p := buildLoop(t)
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		e, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]Query, len(sweepPfails))
		for i, pf := range sweepPfails {
			queries[i] = Query{Pfail: pf, Mechanism: mech}
		}
		batch, err := e.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, pf := range sweepPfails {
			solo, err := Analyze(p, Options{Pfail: pf, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			requireDeepEqualResult(t, fmt.Sprintf("%v pfail=%g", mech, pf), solo, batch[i])
		}
	}
}

// TestEngineMatchesAnalyzeOnRandomPrograms sweeps random programs,
// mechanisms and targets through one engine per program and compares
// every result against a fresh one-shot Analyze.
func TestEngineMatchesAnalyzeOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := progen.Random(rand.New(rand.NewSource(900+seed)), progen.DefaultParams())
		e, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			for _, target := range []float64{1e-9, 1e-15} {
				q := Query{
					Cache:            testOptions(mech).Cache,
					Pfail:            1e-3,
					Mechanism:        mech,
					TargetExceedance: target,
				}
				got, err := e.Analyze(q)
				if err != nil {
					t.Fatal(err)
				}
				solo, err := Analyze(p, q.options(0))
				if err != nil {
					t.Fatal(err)
				}
				requireDeepEqualResult(t, fmt.Sprintf("seed %d %v target %g", seed, mech, target), solo, got)
			}
		}
	}
}

// TestEngineCacheSweepByteIdentical varies the cache geometry across
// queries of one engine (the cachesweep example's workload) and checks
// per-cache memoization does not change any result.
func TestEngineCacheSweepByteIdentical(t *testing.T) {
	p := progen.Random(rand.New(rand.NewSource(42)), progen.DefaultParams())
	e, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	geoms := []cache.Config{
		{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		{Sets: 4, Ways: 4, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		{Sets: 4, Ways: 2, BlockBytes: 16, HitLatency: 1, MemLatency: 10},
	}
	var queries []Query
	for _, g := range geoms {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			queries = append(queries, Query{Cache: g, Pfail: 1e-3, Mechanism: mech})
		}
	}
	batch, err := e.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		solo, err := Analyze(p, q.options(0))
		if err != nil {
			t.Fatal(err)
		}
		requireDeepEqualResult(t, fmt.Sprintf("query %d (%+v)", i, q.Cache), solo, batch[i])
	}
}

// TestEnginePreciseSRBAndDataCache covers the two specialized analysis
// paths through the engine: the precise SRB mixture bound and the
// combined instruction+data analysis.
func TestEnginePreciseSRBAndDataCache(t *testing.T) {
	p := buildLoop(t)
	e, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	prec := Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB, PreciseSRB: true}
	got, err := e.Analyze(prec)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Analyze(p, prec.options(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.PenaltyPrecise == nil || solo.PenaltyPrecise == nil {
		t.Fatal("precise SRB analysis did not run")
	}
	requireDeepEqualResult(t, "precise srb", solo, got)

	// PreciseSRB on a non-SRB mechanism is ignored, like in Analyze.
	rw := Query{Pfail: 1e-4, Mechanism: cache.MechanismRW, PreciseSRB: true}
	if r, err := e.Analyze(rw); err != nil || r.PenaltyPrecise != nil {
		t.Fatalf("RW+PreciseSRB: err %v, PenaltyPrecise %v", err, r.PenaltyPrecise)
	}

	dcfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	dp := program.New("data")
	fb := dp.Func("main")
	fb.Loop(20, func(l *program.Body) { l.Ops(4).Load(0x1000).Store(0x1010) })
	prog := dp.MustBuild()
	de, err := NewEngine(prog, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismSRB} {
		q := Query{Pfail: 1e-3, Mechanism: mech, DataCache: &dcfg}
		got, err := de.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := Analyze(prog, q.options(0))
		if err != nil {
			t.Fatal(err)
		}
		requireDeepEqualResult(t, "data cache "+mech.String(), solo, got)
		if got.DataFMM == nil {
			t.Fatal("data FMM missing")
		}
	}

	if _, err := de.Analyze(Query{Pfail: 1e-3, Mechanism: cache.MechanismSRB, PreciseSRB: true, DataCache: &dcfg}); err == nil {
		t.Error("engine accepted PreciseSRB together with a data cache")
	}
}

// countingHook tallies artifact computations, keyed by a readable
// label, under a lock (the hook contract allows concurrent calls).
type countingHook struct {
	mu     sync.Mutex
	counts map[string]int
}

func (h *countingHook) hook(ev ArtifactEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make(map[string]int)
	}
	key := fmt.Sprintf("%v/sets=%d,ways=%d/data=%v", ev.Artifact, ev.Cache.Sets, ev.Cache.Ways, ev.Data)
	if ev.Artifact == ArtifactFMMColumn {
		key += fmt.Sprintf("/mech=%v,precise=%v", ev.Mechanism, ev.Precise)
	}
	h.counts[key]++
}

func (h *countingHook) snapshot() map[string]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

// TestEngineMemoizesExpensiveStages asserts, via the counting hook,
// that a pfail sweep on one engine computes the fixpoints, the WCET and
// the FMM artifacts exactly once per (cache, mechanism) — while the
// results stay byte-identical to fresh Analyze calls (the sweep test
// above). This is the sharing the session API exists for.
func TestEngineMemoizesExpensiveStages(t *testing.T) {
	p := buildLoop(t)
	h := &countingHook{}
	e, err := NewEngine(p, EngineOptions{Hook: h.hook})
	if err != nil {
		t.Fatal(err)
	}

	// 10 pfail points x 3 mechanisms = 30 queries, one cache config.
	var queries []Query
	for _, pf := range sweepPfails {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			queries = append(queries, Query{Pfail: pf, Mechanism: mech})
		}
	}
	if _, err := e.AnalyzeBatch(queries); err != nil {
		t.Fatal(err)
	}

	want := map[string]int{
		"classification/sets=16,ways=4/data=false":                     1,
		"srb-classification/sets=16,ways=4/data=false":                 1,
		"wcet/sets=16,ways=4/data=false":                               1,
		"fmm-core/sets=16,ways=4/data=false":                           1,
		"fmm-column/sets=16,ways=4/data=false/mech=none,precise=false": 1,
		"fmm-column/sets=16,ways=4/data=false/mech=srb,precise=false":  1,
	}
	if got := h.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("artifact computation counts:\n got %v\nwant %v", got, want)
	}

	// Re-running the same sweep must not compute anything new.
	if _, err := e.AnalyzeBatch(queries); err != nil {
		t.Fatal(err)
	}
	if got := h.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("second identical sweep recomputed artifacts:\n got %v\nwant %v", got, want)
	}
}

// TestEngineBatchStreaming checks the streaming contract: every index
// delivered exactly once, deliver never called concurrently, channel
// variant closes after the last result, and per-index content matches
// the ordered batch.
func TestEngineBatchStreaming(t *testing.T) {
	p := buildLoop(t)
	e, err := NewEngine(p, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for _, pf := range sweepPfails {
		queries = append(queries, Query{Pfail: pf, Mechanism: cache.MechanismSRB})
	}

	ordered, err := e.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int]int)
	inFlight := 0
	e.AnalyzeBatchStream(queries, func(r BatchResult) {
		inFlight++
		if inFlight != 1 {
			t.Error("deliver called concurrently")
		}
		if r.Err != nil {
			t.Errorf("query %d failed: %v", r.Index, r.Err)
		}
		if r.Query != queries[r.Index] {
			t.Errorf("query %d echoed %+v", r.Index, r.Query)
		}
		if r.Result.PWCET != ordered[r.Index].PWCET {
			t.Errorf("query %d: streamed pWCET %d != batch %d", r.Index, r.Result.PWCET, ordered[r.Index].PWCET)
		}
		seen[r.Index]++
		inFlight--
	})
	for i := range queries {
		if seen[i] != 1 {
			t.Errorf("index %d delivered %d times", i, seen[i])
		}
	}

	n := 0
	for r := range e.AnalyzeBatchChan(queries) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
	}
	if n != len(queries) {
		t.Errorf("channel delivered %d results, want %d", n, len(queries))
	}
}

// TestEngineBatchWorkersEquivalence runs the same mixed batch at
// several worker counts; every result must be byte-identical (and the
// -race run exercises the memoization layer's locking).
func TestEngineBatchWorkersEquivalence(t *testing.T) {
	p := progen.Random(rand.New(rand.NewSource(1234)), progen.DefaultParams())
	var queries []Query
	for _, pf := range []float64{1e-5, 1e-4, 1e-3} {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			queries = append(queries, Query{Cache: testOptions(mech).Cache, Pfail: pf, Mechanism: mech})
		}
	}
	refEngine, err := NewEngine(p, EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refEngine.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 7} {
		e, err := NewEngine(p, EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			requireSameResult(t, fmt.Sprintf("workers=%d query %d", workers, i), ref[i], got[i])
		}
	}
}

// TestEngineErrors covers validation and batch error propagation.
func TestEngineErrors(t *testing.T) {
	p := buildLoop(t)
	if _, err := NewEngine(p, EngineOptions{Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
	e, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Query{Pfail: 2}); err == nil {
		t.Error("pfail=2 accepted")
	}
	if _, err := e.Analyze(Query{Pfail: 1e-4, TargetExceedance: 1.5}); err == nil {
		t.Error("target 1.5 accepted")
	}
	if _, err := e.Analyze(Query{Pfail: 1e-4, MaxSupport: 1}); err == nil {
		t.Error("MaxSupport 1 accepted")
	}
	bad := Query{Cache: cache.Config{Sets: 3, Ways: 1, BlockBytes: 8, HitLatency: 1, MemLatency: 1}}
	if _, err := e.Analyze(bad); err == nil {
		t.Error("invalid cache accepted")
	}

	// A batch with one failing query returns the lowest-index error and
	// still computes nothing-shared queries deterministically.
	queries := []Query{
		{Pfail: 1e-4},
		{Pfail: 3}, // invalid
		{Pfail: 5}, // invalid, higher index
	}
	if _, err := e.AnalyzeBatch(queries); err == nil {
		t.Error("batch with invalid query succeeded")
	}
	var failures []int
	e.AnalyzeBatchStream(queries, func(r BatchResult) {
		if r.Err != nil {
			failures = append(failures, r.Index)
		}
	})
	if len(failures) != 2 {
		t.Errorf("streamed failures %v, want indices 1 and 2", failures)
	}
}
