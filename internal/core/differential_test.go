package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/malardalen"
)

// assertResultsByteIdentical compares every analysis artifact of two
// Results: the fault-free WCET, the complete fault miss map, every
// atom of the per-set and total penalty distributions, the pWCET and
// the full exceedance curve. The optimized hot path skips only no-op
// float updates and re-represents the abstract domain, so any
// divergence — a single ulp anywhere — is a bug, not noise.
func assertResultsByteIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.FaultFreeWCET != want.FaultFreeWCET {
		t.Fatalf("%s: fault-free WCET %d vs reference %d", label, got.FaultFreeWCET, want.FaultFreeWCET)
	}
	if !reflect.DeepEqual(got.FMM, want.FMM) {
		t.Fatalf("%s: FMM diverged:\n%v\nvs reference\n%v", label, got.FMM, want.FMM)
	}
	if got.PWCET != want.PWCET {
		t.Fatalf("%s: pWCET %d vs reference %d", label, got.PWCET, want.PWCET)
	}
	if len(got.PerSet) != len(want.PerSet) {
		t.Fatalf("%s: %d per-set distributions vs reference %d", label, len(got.PerSet), len(want.PerSet))
	}
	for s := range got.PerSet {
		if !reflect.DeepEqual(got.PerSet[s].Points(), want.PerSet[s].Points()) {
			t.Fatalf("%s: per-set distribution %d diverged", label, s)
		}
	}
	if !reflect.DeepEqual(got.Penalty.Points(), want.Penalty.Points()) {
		t.Fatalf("%s: penalty distribution diverged", label)
	}
	if !reflect.DeepEqual(got.ExceedanceCurve(), want.ExceedanceCurve()) {
		t.Fatalf("%s: exceedance curve diverged", label)
	}
	if got.HitRefs != want.HitRefs || got.FMRefs != want.FMRefs || got.MissRefs != want.MissRefs {
		t.Fatalf("%s: classification counts (%d,%d,%d) vs reference (%d,%d,%d)", label,
			got.HitRefs, got.FMRefs, got.MissRefs, want.HitRefs, want.FMRefs, want.MissRefs)
	}
}

// TestOptimizedPipelineMatchesReference pits the compacted/sparse
// simplex and compact abstract domain against the retained dense
// reference implementations across Mälardalen programs, the paper's
// 16-set cache and a 256-set geometry, all three mechanisms, and
// multiple worker counts (run under -race in CI). Everything —
// fault-free WCET, full FMM, every distribution atom, the final pWCET
// curve — must be byte-identical.
func TestOptimizedPipelineMatchesReference(t *testing.T) {
	cfg256 := cache.Config{Sets: 256, Ways: 4, BlockBytes: 16, HitLatency: 1, MemLatency: 100}
	cases := []struct {
		bench string
		cfg   cache.Config
	}{
		{"adpcm", cache.PaperConfig()},
		{"crc", cache.PaperConfig()},
		{"crc", cfg256},
		{"matmult", cache.PaperConfig()},
		{"bs", cfg256},
	}
	for _, tc := range cases {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			// The reference run fixes the pivot-path-independent truth
			// once; every optimized worker count must reproduce it.
			p := malardalen.MustGet(tc.bench)
			opt := Options{Cache: tc.cfg, Pfail: 1e-4, Mechanism: mech}
			refOpt := opt
			refOpt.Reference = true
			refOpt.Workers = 1
			want, err := Analyze(p, refOpt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/sets=%d/%v/workers=%d", tc.bench, tc.cfg.Sets, mech, workers)
				fastOpt := opt
				fastOpt.Workers = workers
				got, err := Analyze(p, fastOpt)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsByteIdentical(t, label, got, want)
			}
		}
	}
}

// TestReferenceEngineMatchesOptimizedEngine runs the same query batch
// through a reference engine and an optimized engine: the session layer
// must inherit the byte-identity (artifacts are memoized per engine, so
// this also exercises CopyFrom restores against a warm pristine basis).
func TestReferenceEngineMatchesOptimizedEngine(t *testing.T) {
	p := malardalen.MustGet("crc")
	queries := []Query{
		{Pfail: 1e-4, Mechanism: cache.MechanismNone},
		{Pfail: 1e-4, Mechanism: cache.MechanismRW},
		{Pfail: 1e-4, Mechanism: cache.MechanismSRB},
		{Pfail: 1e-6, Mechanism: cache.MechanismSRB, PreciseSRB: true},
	}
	fast, err := NewEngine(p, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(p, EngineOptions{Workers: 1, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fast.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ref.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		assertResultsByteIdentical(t, fmt.Sprintf("query %d", i), fr[i], rr[i])
		if fr[i].FMMPrecise != nil || rr[i].FMMPrecise != nil {
			if !reflect.DeepEqual(fr[i].FMMPrecise, rr[i].FMMPrecise) {
				t.Fatalf("query %d: precise FMM diverged", i)
			}
			if !reflect.DeepEqual(fr[i].PenaltyPrecise.Points(), rr[i].PenaltyPrecise.Points()) {
				t.Fatalf("query %d: precise penalty distribution diverged", i)
			}
		}
	}
}
