package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/malardalen"
)

// sweepLambdas is the SEU-rate sweep used by the transient scenario
// tests: from negligible to rates where the per-access upset
// probability saturates the window.
var sweepLambdas = []float64{1e-15, 1e-12, 1e-10, 1e-9, 1e-8}

// assertSameDistributions compares the distribution-level output of two
// results — fault-free WCET, every penalty atom, the pWCET and the full
// exceedance curve — without touching FMM/PerSet. Degenerate-scenario
// equivalences (Combined with a zero axis vs the pure scenario) agree
// on these but legitimately differ in which permanent-side artifacts
// they carry (a pure Transient result has no FMM at all).
func assertSameDistributions(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.FaultFreeWCET != want.FaultFreeWCET {
		t.Fatalf("%s: fault-free WCET %d vs %d", label, got.FaultFreeWCET, want.FaultFreeWCET)
	}
	if !reflect.DeepEqual(got.Penalty.Points(), want.Penalty.Points()) {
		t.Fatalf("%s: penalty distribution diverged", label)
	}
	if got.PWCET != want.PWCET {
		t.Fatalf("%s: pWCET %d vs %d", label, got.PWCET, want.PWCET)
	}
	if !reflect.DeepEqual(got.ExceedanceCurve(), want.ExceedanceCurve()) {
		t.Fatalf("%s: exceedance curve diverged", label)
	}
}

// TestPermanentScenarioByteIdenticalToLegacy is the refactor's central
// differential pin: spelling the paper's model as an explicit
// fault.Permanent scenario is byte-identical to the legacy Pfail
// field across Mälardalen programs, two cache geometries, all
// mechanisms and worker counts. The scenario layer must be a pure
// re-plumbing of the permanent path, not a reimplementation.
func TestPermanentScenarioByteIdenticalToLegacy(t *testing.T) {
	cfg256 := cache.Config{Sets: 256, Ways: 4, BlockBytes: 16, HitLatency: 1, MemLatency: 100}
	cases := []struct {
		bench string
		cfg   cache.Config
	}{
		{"adpcm", cache.PaperConfig()},
		{"crc", cache.PaperConfig()},
		{"crc", cfg256},
		{"matmult", cache.PaperConfig()},
		{"bs", cfg256},
	}
	for _, tc := range cases {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			p := malardalen.MustGet(tc.bench)
			legacy := Options{Cache: tc.cfg, Pfail: 1e-4, Mechanism: mech}
			want, err := Analyze(p, legacy)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/sets=%d/%v/workers=%d", tc.bench, tc.cfg.Sets, mech, workers)
				opt := Options{Cache: tc.cfg, Scenario: fault.Permanent{Pfail: 1e-4}, Mechanism: mech, Workers: workers}
				got, err := Analyze(p, opt)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsByteIdentical(t, label, got, want)
				if got.Scenario != (fault.Permanent{Pfail: 1e-4}) {
					t.Fatalf("%s: resolved scenario %v", label, got.Scenario)
				}
			}
			// The legacy spelling resolves to the same scenario value.
			if want.Scenario != (fault.Permanent{Pfail: 1e-4}) {
				t.Fatalf("legacy options resolved to %v, want fault.Permanent", want.Scenario)
			}
		}
	}
}

// TestCombinedDegeneratesToPermanent: Combined(pfail, lambda=0) carries
// the identical permanent machinery and a zero-rate transient stage
// that must be a strict no-op — every artifact byte-identical to the
// pure Permanent analysis.
func TestCombinedDegeneratesToPermanent(t *testing.T) {
	p := malardalen.MustGet("crc")
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		for _, pf := range []float64{6.1e-13, 1e-4, 1e-3} {
			label := fmt.Sprintf("%v pfail=%g", mech, pf)
			want, err := Analyze(p, Options{Pfail: pf, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Analyze(p, Options{Scenario: fault.Combined{Pfail: pf}, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			assertResultsByteIdentical(t, label, got, want)
			if got.Transient.PMiss != 0 {
				t.Fatalf("%s: lambda=0 produced PMiss %g", label, got.Transient.PMiss)
			}
			if got.HitBounds == nil {
				t.Fatalf("%s: combined scenario did not compute hit bounds", label)
			}
		}
	}
}

// TestCombinedDegeneratesToTransient: Combined(pfail=0, lambda) equals
// the pure Transient analysis on every distribution atom. (The results
// are compared at the distribution level: the pure Transient run
// carries no FMM by design, while the combined run computes one whose
// pfail-0 weighting contributes a point mass at zero.)
func TestCombinedDegeneratesToTransient(t *testing.T) {
	p := malardalen.MustGet("crc")
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismSRB} {
		for _, la := range sweepLambdas {
			label := fmt.Sprintf("%v lambda=%g", mech, la)
			want, err := Analyze(p, Options{Scenario: fault.Transient{Lambda: la}, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Analyze(p, Options{Scenario: fault.Combined{Lambda: la}, Mechanism: mech})
			if err != nil {
				t.Fatal(err)
			}
			assertSameDistributions(t, label, got, want)
			if got.Transient != want.Transient {
				t.Fatalf("%s: transient models diverged: %+v vs %+v", label, got.Transient, want.Transient)
			}
			if !reflect.DeepEqual(got.HitBounds, want.HitBounds) {
				t.Fatalf("%s: hit bounds diverged", label)
			}
			if want.FMM != nil {
				t.Fatalf("%s: pure transient result carries an FMM", label)
			}
		}
	}
}

// TestTransientMechanismInvariant: the pure SEU analysis uses the
// fault-free classification only — no permanent fault map exists for a
// mitigation mechanism to mitigate — so the result must not depend on
// the mechanism at all.
func TestTransientMechanismInvariant(t *testing.T) {
	p := malardalen.MustGet("bs")
	base, err := Analyze(p, Options{Scenario: fault.Transient{Lambda: 1e-9}, Mechanism: cache.MechanismNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []cache.Mechanism{cache.MechanismRW, cache.MechanismSRB} {
		got, err := Analyze(p, Options{Scenario: fault.Transient{Lambda: 1e-9}, Mechanism: mech})
		if err != nil {
			t.Fatal(err)
		}
		assertSameDistributions(t, fmt.Sprintf("mech=%v", mech), got, base)
	}
}

// TestTransientMonotoneInLambda: a higher SEU rate can only worsen the
// exceedance bound — pWCET must be non-decreasing along the lambda
// sweep, and the lambda=0 transient scenario must collapse to the
// fault-free WCET exactly.
func TestTransientMonotoneInLambda(t *testing.T) {
	p := malardalen.MustGet("crc")
	zero, err := Analyze(p, Options{Scenario: fault.Transient{}})
	if err != nil {
		t.Fatal(err)
	}
	if zero.PWCET != zero.FaultFreeWCET {
		t.Fatalf("lambda=0: pWCET %d, want the fault-free WCET %d", zero.PWCET, zero.FaultFreeWCET)
	}
	prev := zero.PWCET
	for _, la := range sweepLambdas {
		r, err := Analyze(p, Options{Scenario: fault.Transient{Lambda: la}})
		if err != nil {
			t.Fatal(err)
		}
		if r.PWCET < prev {
			t.Fatalf("lambda=%g: pWCET %d dropped below %d", la, r.PWCET, prev)
		}
		if r.PWCET < r.FaultFreeWCET {
			t.Fatalf("lambda=%g: pWCET %d below the fault-free WCET %d", la, r.PWCET, r.FaultFreeWCET)
		}
		prev = r.PWCET
	}
}

// TestEngineScenarioSweepByteIdentical: a mixed scenario batch through
// one engine is byte-identical to independent one-shot Analyze calls —
// the memoized hit-bound and FMM artifacts must not leak between
// scenario kinds.
func TestEngineScenarioSweepByteIdentical(t *testing.T) {
	p := malardalen.MustGet("crc")
	var queries []Query
	for _, la := range sweepLambdas {
		queries = append(queries, Query{Scenario: fault.Transient{Lambda: la}})
		queries = append(queries, Query{Scenario: fault.Combined{Pfail: 1e-4, Lambda: la}, Mechanism: cache.MechanismSRB})
	}
	queries = append(queries,
		Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB},
		Query{Scenario: fault.Permanent{Pfail: 1e-4}, Mechanism: cache.MechanismSRB},
	)
	for _, workers := range []int{1, 4} {
		e, err := NewEngine(p, EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := e.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			solo, err := Analyze(p, Options{
				Cache: q.Cache, Pfail: q.Pfail, Scenario: q.Scenario,
				Mechanism: q.Mechanism, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Options echoes differ (Workers is engine-wide); compare
			// the analysis artifacts.
			solo.Options = batch[i].Options
			requireDeepEqualResult(t, fmt.Sprintf("workers=%d query %d (%+v)", workers, i, q), solo, batch[i])
		}
	}
}

// TestEngineMemoizesTransientBound: the per-set hit bounds are a
// scenario-independent, mechanism-independent artifact of the
// classification context — a full lambda x mechanism x scenario-kind
// sweep on one engine computes them exactly once (the counting hook
// shows one transient-bound event), alongside exactly one WCET and one
// FMM core.
func TestEngineMemoizesTransientBound(t *testing.T) {
	p := buildLoop(t)
	h := &countingHook{}
	e, err := NewEngine(p, EngineOptions{Hook: h.hook})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for _, la := range sweepLambdas {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			queries = append(queries, Query{Scenario: fault.Transient{Lambda: la}, Mechanism: mech})
			queries = append(queries, Query{Scenario: fault.Combined{Pfail: 1e-4, Lambda: la}, Mechanism: mech})
		}
	}
	if _, err := e.AnalyzeBatch(queries); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"classification/sets=16,ways=4/data=false":                     1,
		"srb-classification/sets=16,ways=4/data=false":                 1,
		"wcet/sets=16,ways=4/data=false":                               1,
		"transient-bound/sets=16,ways=4/data=false":                    1,
		"fmm-core/sets=16,ways=4/data=false":                           1,
		"fmm-column/sets=16,ways=4/data=false/mech=none,precise=false": 1,
		"fmm-column/sets=16,ways=4/data=false/mech=srb,precise=false":  1,
	}
	if got := h.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("artifact computation counts:\n got %v\nwant %v", got, want)
	}
	// Re-running the sweep finds everything memoized.
	if _, err := e.AnalyzeBatch(queries); err != nil {
		t.Fatal(err)
	}
	if got := h.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("second identical sweep recomputed artifacts:\n got %v\nwant %v", got, want)
	}
}

// TestEngineTransientEvictionByteIdentical extends the bounded-memory
// invariant to the transient artifact: under a 1-byte budget the hit
// bounds are evicted and recomputed (visible through repeated
// transient-bound hook events), while every result stays byte-identical
// to the unbounded engine.
func TestEngineTransientEvictionByteIdentical(t *testing.T) {
	p := buildLoop(t)
	var queries []Query
	for _, la := range sweepLambdas[:3] {
		queries = append(queries,
			Query{Scenario: fault.Transient{Lambda: la}},
			Query{Scenario: fault.Combined{Pfail: 1e-3, Lambda: la}, Mechanism: cache.MechanismSRB},
		)
	}
	unbounded, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := unbounded.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHook{}
	bounded, err := NewEngine(p, EngineOptions{MaxArtifactBytes: 1, Hook: h.hook})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := bounded.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			requireDeepEqualResult(t, fmt.Sprintf("round %d query %d", round, i), ref[i], got[i])
		}
	}
	if ms := bounded.MemStats(); ms.Evictions == 0 || ms.ArtifactBytes != 0 {
		t.Errorf("1-byte budget: evictions %d (want > 0), resident %d (want 0)", ms.Evictions, ms.ArtifactBytes)
	}
	if n := h.snapshot()["transient-bound/sets=16,ways=4/data=false"]; n < 2 {
		t.Errorf("transient-bound computed %d times under eviction, want >= 2", n)
	}
}

// TestScenarioOptionErrors pins the option-validation surface of the
// scenario layer: ambiguous spellings, invalid parameters, and the
// permanent-only analysis modes.
func TestScenarioOptionErrors(t *testing.T) {
	p := buildLoop(t)
	dcfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	cases := []struct {
		label string
		opt   Options
		want  string
	}{
		{"both pfail and scenario",
			Options{Pfail: 1e-4, Scenario: fault.Transient{Lambda: 1e-9}},
			"use exactly one"},
		{"negative lambda",
			Options{Scenario: fault.Transient{Lambda: -1}},
			"lambda"},
		{"combined pfail out of range",
			Options{Scenario: fault.Combined{Pfail: 2, Lambda: 1e-9}},
			"pfail"},
		{"transient with PreciseSRB",
			Options{Scenario: fault.Transient{Lambda: 1e-9}, Mechanism: cache.MechanismSRB, PreciseSRB: true},
			"permanent only"},
		{"combined with data cache",
			Options{Scenario: fault.Combined{Pfail: 1e-4, Lambda: 1e-9}, DataCache: &dcfg},
			"permanent only"},
	}
	for _, tc := range cases {
		_, err := Analyze(p, tc.opt)
		if err == nil {
			t.Errorf("%s: Analyze accepted %+v", tc.label, tc.opt)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
		// The engine path must reject the same spellings.
		e, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		q := Query{Pfail: tc.opt.Pfail, Scenario: tc.opt.Scenario, Mechanism: tc.opt.Mechanism,
			PreciseSRB: tc.opt.PreciseSRB, DataCache: tc.opt.DataCache}
		if _, err := e.Analyze(q); err == nil {
			t.Errorf("%s: engine accepted %+v", tc.label, q)
		}
	}
}
