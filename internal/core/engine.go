package core

// This file implements the session layer of the analysis: a reusable
// Engine that memoizes the program- and cache-level artifacts of the
// pipeline so that sweeps — the paper's whole evaluation is sweeps over
// pfail points, mechanisms, exceedance targets and cache geometries —
// pay for CFG construction, the Must/May/Persistence fixpoints, the
// IPET system, the fault-free WCET and the per-set FMM ILP solves
// exactly once per distinct configuration, instead of once per query.
//
// Artifact layers and their keys:
//
//   - program level (NewEngine): loop-metadata verification,
//     reducibility check, the IPET constraint system with its phase-1
//     simplex basis;
//   - per (cache config, reference kind): the abstract-interpretation
//     analyzer with its classification fixpoints, and lazily the SRB
//     guaranteed-hit classification;
//   - per (instruction cache, optional data cache): a warm System
//     clone pivoted by exactly the fault-free WCET solve, plus the
//     WCET result itself;
//   - per (context, reference kind, FMM artifact): the
//     mechanism-independent f < W FMM columns (one ILP solve per set
//     and fault count) and the three flavours of the f = W column
//     (none, SRB, precise SRB), from which any mechanism's FMM is
//     spliced without further solves;
//   - per context: the transient hit-bound vector (one ILP solve per
//     set), shared by every transient and combined scenario — the
//     bound does not depend on lambda, pfail or mechanism, so a lambda
//     sweep computes it exactly once.
//
// A Query then only performs the cheap per-query work: the fault model
// of equation 1, the probability weighting of equations 2/3, the
// penalty convolution, and the quantile read-off. Every artifact is a
// pure function of its key, so batch scheduling can never change any
// result; AnalyzeBatch results are byte-identical to independent
// Analyze calls whatever the worker count or completion order.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/chmc"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/faultpoint"
	"repro/internal/ipet"
	"repro/internal/program"
)

// Query selects one analysis configuration to run against an Engine's
// program. The zero value of each field selects the same default as the
// corresponding Options field (paper cache, 1e-15 target, 4096 support
// cap); Workers is not part of a Query — parallelism belongs to the
// Engine, and results never depend on it.
type Query struct {
	// Cache is the instruction-cache geometry. Zero value = PaperConfig.
	Cache cache.Config
	// Pfail is the per-bit permanent failure probability — the legacy
	// spelling of Scenario = fault.Permanent{Pfail} (see
	// Options.Pfail).
	Pfail float64
	// Scenario selects the fault environment (see Options.Scenario).
	// nil defaults to fault.Permanent{Pfail: Pfail}. Scenario
	// parameters only shape the per-query probability weighting: the
	// memoized artifacts they read (classification, WCET, FMM columns,
	// transient hit bounds) are scenario-independent, so a lambda or
	// pfail sweep computes each artifact exactly once.
	Scenario fault.Scenario
	// Mechanism selects the reliability hardware (None, RW, SRB).
	Mechanism cache.Mechanism
	// TargetExceedance is the probability at which the pWCET is read
	// (default 1e-15).
	TargetExceedance float64
	// MaxSupport caps the convolution support size (default 4096).
	MaxSupport int
	// Coarsen selects the coarsening strategy enforcing MaxSupport
	// (zero value: dist.CoarsenLeastError). The strategy only shapes
	// the per-query distribution stage, which is never memoized: every
	// cached artifact (classification, WCET, FMM) is a pure function of
	// keys the strategy is not part of BECAUSE it cannot influence them
	// — fault-miss counts are convolution-free. Two queries differing
	// only in Coarsen therefore share every artifact and still can
	// never alias each other's distributions or results (asserted by
	// TestEngineCoarsenStrategyNoAliasing).
	Coarsen dist.CoarsenStrategy
	// PreciseSRB enables the refined SRB analysis (mixture bound).
	PreciseSRB bool
	// DataCache, when non-nil, additionally analyzes data accesses
	// against this configuration (not combinable with PreciseSRB).
	DataCache *cache.Config
	// SoftDeadline, when positive, arms the degraded mode: if one
	// attempt of the query does not finish within this duration, the
	// engine retries with a geometrically tighter MaxSupport cap
	// (quartering down to a floor of 16 support points) and marks the
	// result Degraded instead of failing. The final floor attempt runs
	// without the soft deadline, so a query only fails outright when
	// the caller's own context expires. Degradation is sound:
	// coarsening is tail-preserving, so every degraded pWCET
	// upper-bounds the exact one (see Result.Degraded). Zero disables
	// the mechanism — queries run to completion at full precision.
	//
	// SoftDeadline is not part of any memo key: artifacts computed by a
	// degraded attempt are the same pure functions of their keys as
	// always, and the per-query distribution stage is never memoized.
	SoftDeadline time.Duration
}

// options converts the query to the equivalent one-shot Options.
func (q Query) options(workers int) Options {
	return Options{
		Cache:            q.Cache,
		Pfail:            q.Pfail,
		Scenario:         q.Scenario,
		Mechanism:        q.Mechanism,
		TargetExceedance: q.TargetExceedance,
		MaxSupport:       q.MaxSupport,
		Coarsen:          q.Coarsen,
		PreciseSRB:       q.PreciseSRB,
		DataCache:        q.DataCache,
		Workers:          workers,
	}
}

// queryOf converts one-shot Options to the equivalent Query.
func queryOf(o Options) Query {
	return Query{
		Cache:            o.Cache,
		Pfail:            o.Pfail,
		Scenario:         o.Scenario,
		Mechanism:        o.Mechanism,
		TargetExceedance: o.TargetExceedance,
		MaxSupport:       o.MaxSupport,
		Coarsen:          o.Coarsen,
		PreciseSRB:       o.PreciseSRB,
		DataCache:        o.DataCache,
	}
}

// Artifact identifies one class of memoized computation. Hook callbacks
// receive the artifact kind so tests and monitoring can count how often
// the expensive stages actually run.
type Artifact int

const (
	// ArtifactClassification is the Must/May/Persistence fixpoints and
	// CHMC classification of one cache configuration.
	ArtifactClassification Artifact = iota
	// ArtifactSRBClassification is the SRB guaranteed-hit fixpoint.
	ArtifactSRBClassification
	// ArtifactWCET is the fault-free IPET WCET solve of one
	// (instruction cache, data cache) context.
	ArtifactWCET
	// ArtifactFMMCore is the mechanism-independent f < W columns of the
	// fault miss map (one ILP solve per set and fault count).
	ArtifactFMMCore
	// ArtifactFMMColumn is one flavour of the f = W column; the event's
	// Mechanism and Precise fields identify which.
	ArtifactFMMColumn
	// ArtifactTransientBound is the per-set transient hit-bound vector
	// (one ILP solve per set), shared by every transient and combined
	// scenario of one context — the bound is independent of lambda,
	// pfail and mechanism.
	ArtifactTransientBound
)

// String names the artifact kind for logs and test failures.
func (a Artifact) String() string {
	switch a {
	case ArtifactClassification:
		return "classification"
	case ArtifactSRBClassification:
		return "srb-classification"
	case ArtifactWCET:
		return "wcet"
	case ArtifactFMMCore:
		return "fmm-core"
	case ArtifactFMMColumn:
		return "fmm-column"
	case ArtifactTransientBound:
		return "transient-bound"
	default:
		return fmt.Sprintf("artifact(%d)", int(a))
	}
}

// ArtifactEvent describes one artifact computation (not a cache hit).
type ArtifactEvent struct {
	// Artifact is the kind of computation that ran.
	Artifact Artifact
	// Cache is the cache configuration the artifact belongs to.
	Cache cache.Config
	// Data marks artifacts of a data-cache reference stream.
	Data bool
	// Mechanism qualifies ArtifactFMMColumn events (None or SRB).
	Mechanism cache.Mechanism
	// Precise marks the precise-SRB f = W column.
	Precise bool
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers bounds the goroutines used by the per-set stages of each
	// analysis and by AnalyzeBatch's query scheduling. 0 means
	// GOMAXPROCS, 1 is fully sequential; negative values are rejected.
	// When a batch fans out at query level, each query's own
	// distribution stages run sequentially (the pool is already
	// saturated), so the bound is not multiplied. Results are
	// byte-identical for every worker count.
	Workers int
	// Hook, when non-nil, is called once per artifact actually computed
	// (memo hits do not fire it). Calls may come from any worker
	// goroutine; the callback must be safe for concurrent use.
	Hook func(ArtifactEvent)
	// Reference builds every artifact on the retained reference
	// implementations (dense simplex, map-based abstract domain) —
	// see Options.Reference. Bit-identical results, much slower;
	// for differential validation only.
	Reference bool
	// ExactConvolve routes every query's penalty reduction through the
	// retained reference convolution executor — see
	// Options.ExactConvolve. The convolution analogue of Reference:
	// byte-identical results whenever no coarsening binds, final-
	// coarsen-only semantics (no in-tree coarsening) when it does.
	ExactConvolve bool
	// MaxArtifactBytes bounds the estimated resident bytes of the
	// engine's memoized artifacts (classification fixpoints, warm IPET
	// contexts, FMM columns). When an artifact computation pushes the
	// estimate over the budget, least-recently-used artifacts are
	// evicted and recomputed on next use — eviction is behavior-
	// invariant (evicted artifacts are pure functions of their keys, so
	// recomputation is byte-identical; asserted by the eviction tests)
	// and changes only memory and wall-clock time, never any result.
	// The pinned working set of one in-flight query is the effective
	// floor: budgets below it still behave correctly, evicting
	// everything between queries.
	//
	// <= 0 (the zero value) keeps the historical behavior: every
	// artifact is retained for the lifetime of the Engine, unbounded.
	// Long-lived processes serving many programs or cache geometries
	// (e.g. internal/serve's engine pool) should set a budget.
	MaxArtifactBytes int64
}

// Engine is a reusable analysis session for one program. It memoizes
// every expensive artifact (see the file comment for the layering), so
// repeated Analyze calls and AnalyzeBatch sweeps that vary only pfail,
// mechanism or target skip straight to the cheap probability weighting.
//
// An Engine is safe for concurrent use; all memoized artifacts are pure
// functions of their keys, so results are byte-identical to independent
// one-shot Analyze calls with the same Workers setting, in any order.
// By default memoized artifacts are retained for the lifetime of the
// Engine (unbounded memory); EngineOptions.MaxArtifactBytes bounds the
// estimated resident total with LRU eviction, trading recomputation for
// memory without ever changing a result. MemStats reports the resident
// estimate and the hit/miss/eviction counters.
type Engine struct {
	p        *program.Program
	workers  int
	hook     func(ArtifactEvent)
	ref      bool
	exact    bool
	maxBytes int64
	pristine *ipet.System

	// poisoned is set when a query panicked inside the engine (see
	// PanicError): internal memo state may be partially constructed, so
	// every later call fails fast with ErrPoisoned instead of touching
	// it. panicVal retains the first panic for the error message.
	poisoned atomic.Bool
	panicVal atomic.Pointer[PanicError]

	mu      sync.Mutex
	classes map[classKey]*classEntry
	ctxs    map[ctxKey]*ctxEntry

	// Artifact-memory accounting (see memory.go), guarded by mu.
	lruHead, lruTail *memoNode
	resident         int64
	artifacts        int
	hits, misses     uint64
	evictions        uint64
	evictedBytes     int64
}

// classKey identifies one classification artifact: a cache geometry
// applied to one of the program's two reference streams.
type classKey struct {
	cfg  cache.Config
	data bool
}

// classEntry memoizes the analyzer and classification of one classKey.
type classEntry struct {
	node *memoNode
	once sync.Once
	a    *absint.Analyzer
	base []chmc.Class

	srbOnce sync.Once
	srbHit  []bool
}

// ctxKey identifies one WCET context: the instruction cache plus the
// optional data cache (the combined objective pivots the simplex
// differently, so contexts with and without a data cache are distinct).
type ctxKey struct {
	icfg    cache.Config
	dcfg    cache.Config
	hasData bool
}

// ctxEntry memoizes one context's warm system, WCET and FMM artifacts.
// The fmms map and fmmList are guarded by Engine.mu; fmmList mirrors the
// map as a slice so evicting a whole context can settle its FMM nodes
// without a map iteration.
type ctxEntry struct {
	node *memoNode
	once sync.Once
	err  error

	ic, dc *classEntry
	sys    *ipet.System
	wcet   *ipet.WCETResult

	fmms    map[fmmKey]*fmmEntry
	fmmList []*fmmEntry

	// hbe memoizes the context's transient hit-bound vector (guarded by
	// Engine.mu like fmms); nil until a transient or combined query
	// needs it, and reset to nil on eviction.
	hbe *hbEntry
}

// hbEntry memoizes the per-set transient hit bounds of one context —
// like the FMM artifacts, an independently evictable pure function of
// the context key (the bounds depend only on the classification and the
// constraint system, not on lambda, pfail or mechanism).
type hbEntry struct {
	node *memoNode
	once sync.Once
	hb   ipet.HitBounds
	err  error
}

// fmmKind selects one memoized FMM artifact of a context.
type fmmKind int

const (
	// fmmCore is the mechanism-independent f < W columns (computed with
	// MechanismRW, which skips the f = W solve entirely).
	fmmCore fmmKind = iota
	// fmmNoneColumn is the unprotected f = W column.
	fmmNoneColumn
	// fmmSRBColumn is the SRB-filtered f = W column.
	fmmSRBColumn
	// fmmPreciseColumn is the precise-SRB f = W column.
	fmmPreciseColumn
)

type fmmKey struct {
	kind fmmKind
	data bool
}

type fmmEntry struct {
	key  fmmKey
	node *memoNode
	once sync.Once
	fmm  ipet.FMM
	err  error
}

// NewEngine builds an analysis session for the program: it verifies the
// loop metadata and reducibility once, constructs the IPET constraint
// system and runs simplex phase 1. Everything else is computed lazily
// and memoized as queries need it.
func NewEngine(p *program.Program, opt EngineOptions) (*Engine, error) {
	if opt.Workers < 0 {
		return nil, fmt.Errorf("core: Workers %d is negative (0 means GOMAXPROCS)", opt.Workers)
	}
	if faultpoint.Enabled {
		if err := faultpoint.Hit(faultpoint.SiteEngineBuild); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	// Soundness gate, identical to Analyze: IPET loop-bound constraints
	// are only valid for verified natural loops on a reducible CFG.
	if err := cfg.VerifyLoopMetadata(p); err != nil {
		return nil, fmt.Errorf("core: %s: %w", p.Name, err)
	}
	if !cfg.Reducible(p) {
		return nil, fmt.Errorf("core: %s: irreducible control flow", p.Name)
	}
	newSystem := ipet.NewSystem
	if opt.Reference {
		newSystem = ipet.NewReferenceSystem
	}
	sys, err := newSystem(p)
	if err != nil {
		return nil, err
	}
	return &Engine{
		p:        p,
		workers:  opt.Workers,
		hook:     opt.Hook,
		ref:      opt.Reference,
		exact:    opt.ExactConvolve,
		maxBytes: opt.MaxArtifactBytes,
		pristine: sys,
		classes:  make(map[classKey]*classEntry),
		ctxs:     make(map[ctxKey]*ctxEntry),
	}, nil
}

// Program returns the program the engine analyzes.
func (e *Engine) Program() *program.Program { return e.p }

// Workers returns the engine's worker bound (0 means GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) emit(ev ArtifactEvent) {
	if e.hook != nil {
		e.hook(ev)
	}
}

// class returns the memoized classification of one cache configuration,
// computing the fixpoints on first use. The entry is pinned for the
// caller — class is only called from context construction, and the
// resulting context holds the pin until it is itself evicted (or its
// construction fails), so a resident context can never reference an
// evicted, unaccounted classification.
func (e *Engine) class(cfg cache.Config, data bool) *classEntry {
	key := classKey{cfg: cfg, data: data}
	e.mu.Lock()
	c := e.classes[key]
	if c == nil {
		c = &classEntry{}
		c.node = &memoNode{drop: func(e *Engine) { delete(e.classes, key) }}
		e.classes[key] = c
		e.misses++
	} else {
		e.hits++
		e.touchLocked(c.node)
	}
	// A dependency pin: held by the owning context for its resident
	// lifetime, not by the query that happens to be constructing it.
	c.node.pins++
	c.node.depPins++
	e.mu.Unlock()
	c.once.Do(func() {
		switch {
		case data && e.ref:
			c.a = absint.NewDataReference(e.p, cfg)
		case data:
			c.a = absint.NewData(e.p, cfg)
		case e.ref:
			c.a = absint.NewReference(e.p, cfg)
		default:
			c.a = absint.New(e.p, cfg)
		}
		c.base = c.a.ClassifyAll()
		e.mu.Lock()
		e.chargeLocked(c.node, c.a.MemBytes()+int64(cap(c.base)))
		e.mu.Unlock()
		e.emit(ArtifactEvent{Artifact: ArtifactClassification, Cache: cfg, Data: data})
	})
	return c
}

// srb returns the memoized SRB guaranteed-hit classification. Its bytes
// are charged onto the owning classification's node (it shares that
// artifact's lifetime and key).
func (e *Engine) srb(c *classEntry, data bool) []bool {
	c.srbOnce.Do(func() {
		c.srbHit = c.a.ClassifySRB()
		e.mu.Lock()
		e.chargeLocked(c.node, int64(cap(c.srbHit)))
		e.mu.Unlock()
		e.emit(ArtifactEvent{Artifact: ArtifactSRBClassification, Cache: c.a.Config(), Data: data})
	})
	return c.srbHit
}

// context returns the memoized WCET context of the query's cache pair:
// a private System warmed by exactly the fault-free WCET solve a
// one-shot Analyze would run, and the WCET result. Genuine analysis
// errors are sticky; cancellation errors are not — a canceled entry is
// dropped from the memo map inside its sync.Once, so a caller whose own
// context is still live retries against a fresh entry instead of
// inheriting another query's cancellation.
//
// The returned context is pinned for the calling query — it cannot be
// evicted while the analysis uses it. The caller must releaseCtx it
// (analyze defers this); on error the pin is dropped here.
func (e *Engine) context(qctx context.Context, icfg cache.Config, dcfg *cache.Config) (*ctxEntry, error) {
	for {
		ce, err := e.contextOnce(qctx, icfg, dcfg)
		if err == nil {
			return ce, nil
		}
		if !isCancelErr(err) || qctx.Err() != nil {
			return nil, err
		}
		// The shared computation was canceled by the context of whichever
		// query created the entry; ours is still live and the canceled
		// entry is already out of the memo map, so retry computes fresh.
	}
}

func (e *Engine) contextOnce(qctx context.Context, icfg cache.Config, dcfg *cache.Config) (*ctxEntry, error) {
	key := ctxKey{icfg: icfg}
	if dcfg != nil {
		key.dcfg, key.hasData = *dcfg, true
	}
	e.mu.Lock()
	ce := e.ctxs[key]
	if ce == nil {
		ce = &ctxEntry{fmms: make(map[fmmKey]*fmmEntry)}
		entry := ce
		ce.node = &memoNode{drop: func(e *Engine) { e.dropCtxLocked(key, entry) }}
		e.ctxs[key] = ce
		e.misses++
	} else {
		e.hits++
		e.touchLocked(ce.node)
	}
	ce.node.pins++
	e.mu.Unlock()
	// analyze's releaseCtx defer is only registered once this returns;
	// a panic inside the computation (recovered into engine poisoning by
	// analyzeOnce) must not strand the query pin taken above.
	defer func() {
		if r := recover(); r != nil {
			e.releaseCtx(ce)
			panic(r)
		}
	}()
	ce.once.Do(func() {
		ce.ic = e.class(icfg, false) // pins the classification until ctx eviction
		if key.hasData {
			ce.dc = e.class(key.dcfg, true)
		}
		// The clone starts from the pristine phase-1 basis, exactly like
		// a fresh NewSystem; the WCET solve below pivots only this
		// clone, so it is the context's sole warm-up — afterwards the
		// system is only ever read (ComputeFMM workers clone from it).
		ce.sys = e.pristine.Clone()
		var da *absint.Analyzer
		var dbase []chmc.Class
		if ce.dc != nil {
			da, dbase = ce.dc.a, ce.dc.base
		}
		if qctx.Done() != nil {
			// Abandon the WCET solve between pivot batches when the
			// creating query's context dies; cleared below so the warm
			// system never retains a dead query's probe.
			ce.sys.SetCancel(qctx.Err)
		}
		ce.wcet, ce.err = ipet.WCETCombined(ce.sys, ce.ic.a, ce.ic.base, da, dbase)
		ce.sys.SetCancel(nil)
		e.mu.Lock()
		if ce.err != nil {
			// The sticky error entry stays for dedup, but it is never
			// charged or evicted, so it must not pin its classifications.
			// Cancellation is not a property of the key: drop the entry so
			// the next query recomputes instead of seeing a dead context's
			// error forever.
			e.unpinClassesLocked(ce)
			if isCancelErr(ce.err) && e.ctxs[key] == ce {
				delete(e.ctxs, key)
			}
		} else {
			cost := ce.sys.WarmMemBytes() + int64(cap(ce.wcet.BlockCounts))*8
			e.chargeLocked(ce.node, cost)
		}
		e.mu.Unlock()
		if ce.err == nil {
			e.emit(ArtifactEvent{Artifact: ArtifactWCET, Cache: icfg, Data: key.hasData})
		}
	})
	if ce.err != nil {
		e.releaseCtx(ce)
		return nil, ce.err
	}
	return ce, nil
}

// releaseCtx drops a query's pin on its context and enforces the byte
// budget now that the query's working set is no longer pinned.
func (e *Engine) releaseCtx(ctx *ctxEntry) {
	e.mu.Lock()
	ctx.node.pins--
	e.evictLocked()
	e.mu.Unlock()
}

// unpinClassesLocked releases the context's pins on its classification
// entries (on context eviction, or when construction failed).
func (e *Engine) unpinClassesLocked(ctx *ctxEntry) {
	if ctx.ic != nil {
		ctx.ic.node.pins--
		ctx.ic.node.depPins--
	}
	if ctx.dc != nil {
		ctx.dc.node.pins--
		ctx.dc.node.depPins--
	}
}

// dropCtxLocked is the context node's drop callback: it removes the
// context from the memo map, settles its resident FMM artifacts and
// releases the classification pins.
func (e *Engine) dropCtxLocked(key ctxKey, ctx *ctxEntry) {
	delete(e.ctxs, key)
	e.unpinClassesLocked(ctx)
	for _, fe := range ctx.fmmList {
		if fe.node.linked {
			e.evictNodeLocked(fe.node)
		}
	}
	if ctx.hbe != nil && ctx.hbe.node.linked {
		e.evictNodeLocked(ctx.hbe.node)
	}
}

// fmmArtifact returns one memoized FMM artifact of the context. The
// caller must hold a pin on the context (analyze does, for the whole
// query), which keeps the context — though not necessarily this FMM
// entry — resident while the artifact is computed and read. Like
// context, a cancellation error drops the entry and a live caller
// retries; genuine solver errors stay sticky.
func (e *Engine) fmmArtifact(qctx context.Context, ce *ctxEntry, key fmmKey) (ipet.FMM, error) {
	for {
		fmm, err := e.fmmArtifactOnce(qctx, ce, key)
		if err == nil || !isCancelErr(err) || qctx.Err() != nil {
			return fmm, err
		}
	}
}

func (e *Engine) fmmArtifactOnce(qctx context.Context, ce *ctxEntry, key fmmKey) (ipet.FMM, error) {
	e.mu.Lock()
	entry := ce.fmms[key]
	if entry == nil {
		entry = &fmmEntry{key: key}
		entry.node = &memoNode{drop: func(e *Engine) { delete(ce.fmms, key) }}
		ce.fmms[key] = entry
		// Compact evicted entries out of the list mirror so evict/
		// recompute churn on a long-lived context cannot grow it without
		// bound (at most one live entry per fmmKey survives).
		live := ce.fmmList[:0]
		for _, fe := range ce.fmmList {
			if ce.fmms[fe.key] == fe {
				live = append(live, fe)
			}
		}
		ce.fmmList = append(live, entry)
		e.misses++
	} else {
		e.hits++
		e.touchLocked(entry.node)
	}
	e.mu.Unlock()
	entry.once.Do(func() {
		c := ce.ic
		if key.data {
			c = ce.dc
		}
		opt := ipet.FMMOptions{Workers: e.workers}
		if qctx.Done() != nil {
			opt.Ctx = qctx // per-set and pivot-batch cancellation checks
		}
		ev := ArtifactEvent{Cache: c.a.Config(), Data: key.data}
		switch key.kind {
		case fmmCore:
			// MechanismRW never reaches the f = W column, so its FMM is
			// exactly the mechanism-independent f < W columns.
			opt.Mechanism = cache.MechanismRW
			ev.Artifact, ev.Mechanism = ArtifactFMMCore, cache.MechanismRW
		case fmmNoneColumn:
			opt.Mechanism = cache.MechanismNone
			opt.OnlyWholeSetColumn = true
			ev.Artifact, ev.Mechanism = ArtifactFMMColumn, cache.MechanismNone
		case fmmSRBColumn:
			opt.Mechanism = cache.MechanismSRB
			opt.SRBHit = e.srb(c, key.data)
			opt.OnlyWholeSetColumn = true
			ev.Artifact, ev.Mechanism = ArtifactFMMColumn, cache.MechanismSRB
		case fmmPreciseColumn:
			// The precise column classifies per set (ClassifySRBForSet);
			// the SRB guaranteed-hit vector is not consulted.
			opt.Mechanism = cache.MechanismSRB
			opt.PreciseSRB = true
			opt.OnlyWholeSetColumn = true
			ev.Artifact, ev.Mechanism, ev.Precise = ArtifactFMMColumn, cache.MechanismSRB, true
		}
		entry.fmm, entry.err = ipet.ComputeFMM(ce.sys, c.a, c.base, opt)
		switch {
		case entry.err == nil:
			e.mu.Lock()
			e.chargeLocked(entry.node, entry.fmm.MemBytes())
			e.mu.Unlock()
			e.emit(ev)
		case isCancelErr(entry.err):
			// Never charged; drop so the next query recomputes instead of
			// inheriting this query's cancellation. The stale pointer left
			// in fmmList is filtered by the ce.fmms[fe.key] == fe guards.
			e.mu.Lock()
			if ce.fmms[key] == entry {
				delete(ce.fmms, key)
			}
			e.mu.Unlock()
		}
	})
	return entry.fmm, entry.err
}

// hitBounds returns the context's memoized transient hit-bound vector,
// solving the per-set ILPs on first use. The caller must hold a pin on
// the context (analyze does); the vector itself is never mutated after
// construction, so returning the memoized slice directly is safe even
// across a later eviction. Cancellation errors drop the entry and a
// live caller retries, exactly like fmmArtifact.
func (e *Engine) hitBounds(qctx context.Context, ce *ctxEntry) (ipet.HitBounds, error) {
	for {
		hb, err := e.hitBoundsOnce(qctx, ce)
		if err == nil || !isCancelErr(err) || qctx.Err() != nil {
			return hb, err
		}
	}
}

func (e *Engine) hitBoundsOnce(qctx context.Context, ce *ctxEntry) (ipet.HitBounds, error) {
	e.mu.Lock()
	entry := ce.hbe
	if entry == nil {
		entry = &hbEntry{}
		entry.node = &memoNode{drop: func(e *Engine) { ce.hbe = nil }}
		ce.hbe = entry
		e.misses++
	} else {
		e.hits++
		e.touchLocked(entry.node)
	}
	e.mu.Unlock()
	entry.once.Do(func() {
		c := ce.ic
		opt := ipet.HitBoundOptions{Workers: e.workers}
		if qctx.Done() != nil {
			opt.Ctx = qctx
		}
		entry.hb, entry.err = ipet.ComputeHitBounds(ce.sys, c.a, c.base, opt)
		switch {
		case entry.err == nil:
			e.mu.Lock()
			e.chargeLocked(entry.node, entry.hb.MemBytes())
			e.mu.Unlock()
			e.emit(ArtifactEvent{Artifact: ArtifactTransientBound, Cache: c.a.Config()})
		case isCancelErr(entry.err):
			e.mu.Lock()
			if ce.hbe == entry {
				ce.hbe = nil
			}
			e.mu.Unlock()
		}
	})
	return entry.hb, entry.err
}

// fmmFor splices the requested mechanism's fault miss map from the
// memoized artifacts: the shared f < W columns plus the mechanism's
// f = W column. The returned FMM is a fresh copy the caller owns.
func (e *Engine) fmmFor(qctx context.Context, ctx *ctxEntry, data bool, mech cache.Mechanism, precise bool) (ipet.FMM, error) {
	core, err := e.fmmArtifact(qctx, ctx, fmmKey{kind: fmmCore, data: data})
	if err != nil {
		return nil, err
	}
	var column ipet.FMM
	switch {
	case precise:
		column, err = e.fmmArtifact(qctx, ctx, fmmKey{kind: fmmPreciseColumn, data: data})
	case mech == cache.MechanismNone:
		column, err = e.fmmArtifact(qctx, ctx, fmmKey{kind: fmmNoneColumn, data: data})
	case mech == cache.MechanismSRB:
		column, err = e.fmmArtifact(qctx, ctx, fmmKey{kind: fmmSRBColumn, data: data})
	}
	if err != nil {
		return nil, err
	}
	c := ctx.ic
	if data {
		c = ctx.dc
	}
	ways := c.a.Config().Ways
	fmm := make(ipet.FMM, len(core))
	for s, row := range core {
		fmm[s] = append([]int64(nil), row...)
		if column != nil {
			fmm[s][ways] = column[s][ways]
		}
	}
	return fmm, nil
}

// Analyze runs one query against the session, reusing every memoized
// artifact and computing only the per-query probability weighting,
// convolution and quantile. The result is byte-identical to a one-shot
// Analyze call with the same configuration. It is exactly
// AnalyzeContext under context.Background().
func (e *Engine) Analyze(q Query) (*Result, error) {
	return e.AnalyzeContext(context.Background(), q)
}

// AnalyzeContext is Analyze under a context. Cancellation is honored at
// every expensive boundary: before each memoized artifact, before every
// per-set ILP solve, between simplex pivot batches inside each solve,
// and at every merge node of the penalty convolution tree. A canceled
// query returns an error satisfying errors.Is(err, ctx.Err()) promptly,
// releases its LRU pins and leaks no goroutines; memoized artifacts
// are never left poisoned by a cancellation — a partially computed
// entry is dropped and the next query recomputes it.
func (e *Engine) AnalyzeContext(ctx context.Context, q Query) (*Result, error) {
	return e.analyze(ctx, q, e.workers)
}

// analyze runs one query with the per-query distribution stages
// bounded by stageWorkers, dispatching to the degraded-mode retry loop
// when the query arms a soft deadline. AnalyzeBatchStream's parallel
// path passes 1: the query-level fan-out already saturates the pool,
// and multiplying it by per-set parallelism would oversubscribe the
// machine. Stage parallelism never changes any result.
func (e *Engine) analyze(qctx context.Context, q Query, stageWorkers int) (*Result, error) {
	if q.SoftDeadline <= 0 {
		return e.analyzeOnce(qctx, q, stageWorkers)
	}
	return e.analyzeDegrade(qctx, q, stageWorkers)
}

// analyzeDegrade is the degraded-mode driver (Query.SoftDeadline): each
// attempt runs under a soft timeout with a geometrically tighter
// MaxSupport cap (quartered down to a floor of 16), and the final floor
// attempt runs without the soft timeout so the query completes unless
// the caller's own context expires. Tightening the cap only engages
// more coarsening, which is tail-preserving — every degraded result
// upper-bounds the exact pWCET (asserted by the dominance tests).
func (e *Engine) analyzeDegrade(qctx context.Context, q Query, stageWorkers int) (*Result, error) {
	const floorSupport = 16
	caps := []int{q.MaxSupport}
	if caps[0] == 0 {
		caps[0] = DefaultMaxSupport
	}
	for c := caps[len(caps)-1] >> 2; c > floorSupport; c >>= 2 {
		caps = append(caps, c)
	}
	if caps[len(caps)-1] > floorSupport {
		caps = append(caps, floorSupport)
	}
	soft := q.SoftDeadline
	q.SoftDeadline = 0
	for attempt, c := range caps {
		q.MaxSupport = c
		last := attempt == len(caps)-1
		actx := qctx
		var cancel context.CancelFunc
		if !last {
			actx, cancel = context.WithTimeout(qctx, soft)
		}
		res, err := e.analyzeOnce(actx, q, stageWorkers)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			res.Degraded = attempt > 0
			return res, nil
		}
		// Retry only when the soft deadline (not the caller's context)
		// expired; genuine analysis errors and caller cancellation
		// propagate unchanged.
		if last || !errors.Is(err, context.DeadlineExceeded) || qctx.Err() != nil {
			return nil, err
		}
	}
	panic("core: degraded-mode attempt ladder exhausted without returning")
}

// analyzeOnce runs one attempt of one query. It is the engine's panic
// boundary: a panic anywhere in the analysis is recovered into a
// *PanicError and poisons the engine — internal memo state may be
// partially constructed, so every later call fails fast with
// ErrPoisoned. Pool owners (internal/serve) check Poisoned on release
// and discard poisoned engines instead of reusing them.
func (e *Engine) analyzeOnce(qctx context.Context, q Query, stageWorkers int) (res *Result, err error) {
	if e.poisoned.Load() {
		return nil, e.poisonError()
	}
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Value: r, Stack: debug.Stack()}
			e.poison(pe)
			res, err = nil, pe
		}
	}()
	if faultpoint.Enabled {
		if ferr := faultpoint.Hit(faultpoint.SiteAnalyze); ferr != nil {
			return nil, fmt.Errorf("core: %w", ferr)
		}
	}
	if err := qctx.Err(); err != nil {
		return nil, err
	}
	opt := q.options(e.workers)
	opt.Reference = e.ref       // echoed in Result.Options like the one-shot path
	opt.ExactConvolve = e.exact // ditto; buildDistributions reads it off Result.Options
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.DataCache != nil && opt.PreciseSRB {
		return nil, fmt.Errorf("core: PreciseSRB is not supported together with a data cache")
	}
	scn, err := opt.scenario()
	if err != nil {
		return nil, err
	}
	kind := scn.Kind()
	pfail, _ := fault.Components(scn)
	if kind != fault.KindPermanent && (opt.PreciseSRB || opt.DataCache != nil) {
		return nil, fmt.Errorf("core: %v scenario does not support PreciseSRB or DataCache (permanent only)", kind)
	}
	model, err := fault.NewModel(pfail, opt.Cache)
	if err != nil {
		return nil, err
	}
	var dmodel fault.Model
	if opt.DataCache != nil {
		if err := opt.DataCache.Validate(); err != nil {
			return nil, fmt.Errorf("core: data cache: %w", err)
		}
		dmodel, err = fault.NewModel(pfail, *opt.DataCache)
		if err != nil {
			return nil, err
		}
	}

	ce, err := e.context(qctx, opt.Cache, opt.DataCache)
	if err != nil {
		return nil, err
	}
	// The context (and through it the classifications) stays pinned —
	// not evictable — for the rest of the query; the budget is enforced
	// against the unpinned remainder now and fully on release. The defer
	// also runs when the analysis panics (the recover above fires after
	// it), so even a poisoning query leaves no pinned bytes behind.
	defer e.releaseCtx(ce)
	var fmm ipet.FMM
	if kind != fault.KindTransient {
		fmm, err = e.fmmFor(qctx, ce, false, opt.Mechanism, false)
		if err != nil {
			return nil, err
		}
	}

	res = &Result{
		Program:       e.p.Name,
		Options:       opt,
		Scenario:      scn,
		Model:         model,
		FaultFreeWCET: ce.wcet.WCET,
		FMM:           fmm,
		HitRefs:       ce.wcet.HitRefs,
		FMRefs:        ce.wcet.FMRefs,
		MissRefs:      ce.wcet.MissRefs,
	}
	var probe func() error
	if qctx.Done() != nil {
		probe = qctx.Err // checked at every convolution merge node
	}
	if kind != fault.KindPermanent {
		res.HitBounds, err = e.hitBounds(qctx, ce)
		if err != nil {
			return nil, err
		}
	}
	if opt.DataCache != nil {
		dfmm, err := e.fmmFor(qctx, ce, true, opt.Mechanism, false)
		if err != nil {
			return nil, err
		}
		res.DataModel = dmodel
		res.DataFMM = dfmm
	}
	if err := res.buildDistributionsCancel(stageWorkers, probe); err != nil {
		return nil, err
	}
	if opt.PreciseSRB && opt.Mechanism == cache.MechanismSRB {
		pfmm, err := e.fmmFor(qctx, ce, false, opt.Mechanism, true)
		if err != nil {
			return nil, err
		}
		if err := res.attachPreciseSRB(pfmm, stageWorkers); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// BatchResult is one indexed outcome of AnalyzeBatchStream: the query's
// position in the input slice, the query itself, and either a result or
// an error. Delivery order follows completion, but the content of every
// result is deterministic — a pure function of the query.
type BatchResult struct {
	Index  int
	Query  Query
	Result *Result
	Err    error
}

// AnalyzeBatchStream schedules the queries over the engine's worker
// pool and streams each outcome to deliver as soon as it completes.
// deliver is never called concurrently with itself; delivery order is
// scheduling-dependent, result content is not. Shared artifacts are
// computed once however many queries need them: concurrent queries
// that hit the same missing artifact block until its single
// computation finishes.
func (e *Engine) AnalyzeBatchStream(queries []Query, deliver func(BatchResult)) {
	e.AnalyzeBatchStreamContext(context.Background(), queries, deliver)
}

// AnalyzeBatchStreamContext is AnalyzeBatchStream under a context. When
// the context dies, every not-yet-started query fails fast with
// ctx.Err() and in-flight queries abandon their solves at the next
// cancellation checkpoint — deliver is still called exactly once per
// query, and all worker goroutines exit before the call returns.
func (e *Engine) AnalyzeBatchStreamContext(ctx context.Context, queries []Query, deliver func(BatchResult)) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			res, err := e.analyze(ctx, q, e.workers)
			deliver(BatchResult{Index: i, Query: q, Result: res, Err: err})
		}
		return
	}

	var mu sync.Mutex // serializes deliver
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Stage parallelism 1: the query-level fan-out already
				// saturates the pool (memoized artifacts still compute
				// at the engine's Workers, deduplicated by sync.Once).
				res, err := e.analyze(ctx, queries[i], 1)
				mu.Lock()
				deliver(BatchResult{Index: i, Query: queries[i], Result: res, Err: err})
				mu.Unlock()
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// AnalyzeBatchChan is AnalyzeBatchStream delivering over a channel; the
// channel is closed after the last result. The channel is buffered to
// hold the whole batch, so a consumer that stops reading early (e.g.
// breaking out of the range on the first error) strands no goroutine —
// the remaining queries still run to completion in the background.
func (e *Engine) AnalyzeBatchChan(queries []Query) <-chan BatchResult {
	return e.AnalyzeBatchChanContext(context.Background(), queries)
}

// AnalyzeBatchChanContext is AnalyzeBatchChan under a context. The
// channel still closes after exactly len(queries) results — canceled
// queries are delivered with Err set, never silently dropped — so an
// abandoned consumer strands no goroutine and a canceled batch winds
// down promptly.
func (e *Engine) AnalyzeBatchChanContext(ctx context.Context, queries []Query) <-chan BatchResult {
	ch := make(chan BatchResult, len(queries))
	go func() {
		defer close(ch)
		e.AnalyzeBatchStreamContext(ctx, queries, func(r BatchResult) { ch <- r })
	}()
	return ch
}

// AnalyzeBatch runs all queries and returns their results in input
// order. On failures it returns the error of the lowest-index failing
// query — the same one a sequential loop would have hit first.
func (e *Engine) AnalyzeBatch(queries []Query) ([]*Result, error) {
	return e.AnalyzeBatchContext(context.Background(), queries)
}

// AnalyzeBatchContext is AnalyzeBatch under a context: a canceled batch
// returns ctx.Err() (wrapped per the lowest failing query) after all
// workers have wound down, with every pin released.
func (e *Engine) AnalyzeBatchContext(ctx context.Context, queries []Query) ([]*Result, error) {
	results := make([]*Result, len(queries))
	firstFailed, firstErr := len(queries), error(nil)
	e.AnalyzeBatchStreamContext(ctx, queries, func(r BatchResult) {
		if r.Err != nil {
			if r.Index < firstFailed {
				firstFailed, firstErr = r.Index, r.Err
			}
			return
		}
		results[r.Index] = r.Result
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
