package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/program"
)

// TestScalability analyzes a program several times the size of the
// largest suite benchmark (thousands of blocks after inlining) and
// checks the pipeline completes in reasonable time. This guards the
// dense-simplex and fixpoint implementations against accidental
// super-quadratic regressions.
func TestScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability test")
	}
	b := program.New("huge")
	main := b.Func("main").Ops(64)
	for phase := 0; phase < 16; phase++ {
		name := fmt.Sprintf("phase%d", phase)
		main.Call(name).Call(name2(phase))
		pb := b.Func(name).Ops(20)
		pb.Loop(8, func(l *program.Body) {
			for i := 0; i < 8; i++ {
				l.If(func(then *program.Body) { then.Ops(12) },
					func(els *program.Body) { els.Ops(10) })
			}
			l.Ops(8)
		})
		b.Func(name2(phase)).Loop(4, func(l *program.Body) {
			l.Switch(
				func(c *program.Body) { c.Ops(9) },
				func(c *program.Body) { c.Ops(11) },
				func(c *program.Body) { c.Ops(7) },
			)
		})
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("huge program: %d blocks, %d loops, %d bytes",
		len(p.Blocks), len(p.Loops), p.CodeBytes())
	if len(p.Blocks) < 300 {
		t.Fatalf("test construction too small: %d blocks", len(p.Blocks))
	}

	start := time.Now()
	results, err := AnalyzeAll(p, Options{Pfail: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("AnalyzeAll on %d blocks took %v", len(p.Blocks), elapsed)
	if elapsed > 2*time.Minute {
		t.Errorf("analysis took %v; the pipeline has regressed badly", elapsed)
	}
	none := results[cache.MechanismNone]
	if none.FaultFreeWCET <= 0 || none.PWCET < none.FaultFreeWCET {
		t.Error("implausible results on the huge program")
	}
}

func name2(phase int) string { return fmt.Sprintf("aux%d", phase) }
