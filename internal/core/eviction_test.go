package core

import (
	"fmt"
	"testing"

	"repro/internal/cache"
)

// evictionQueries is a mixed workload touching several cache
// geometries and all mechanisms (including SRB, which adds the SRB
// classification artifact), so that a byte budget actually has
// distinct artifacts to churn through.
func evictionQueries() []Query {
	geoms := []cache.Config{
		{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		{Sets: 4, Ways: 4, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		{Sets: 4, Ways: 2, BlockBytes: 16, HitLatency: 1, MemLatency: 10},
	}
	var queries []Query
	for _, g := range geoms {
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			queries = append(queries, Query{Cache: g, Pfail: 1e-3, Mechanism: mech})
		}
	}
	return queries
}

// TestEngineEvictionByteIdentical is the acceptance criterion of the
// bounded-memory refactor: with MaxArtifactBytes set small enough to
// force eviction of every artifact class, a repeated sweep returns
// results byte-identical to the unbounded engine — eviction trades
// recomputation (visible through the Hook counters) for memory,
// never results.
func TestEngineEvictionByteIdentical(t *testing.T) {
	p := buildLoop(t)
	queries := evictionQueries()

	unbounded, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := unbounded.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if ms := unbounded.MemStats(); ms.Evictions != 0 || ms.ArtifactBytes == 0 {
		t.Fatalf("unbounded engine: evictions %d (want 0), resident %d (want > 0)", ms.Evictions, ms.ArtifactBytes)
	}

	h := &countingHook{}
	// A 1-byte budget is below the cost of every artifact: everything is
	// evicted as soon as the pinning query releases it.
	bounded, err := NewEngine(p, EngineOptions{MaxArtifactBytes: 1, Hook: h.hook})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := bounded.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			requireDeepEqualResult(t, fmt.Sprintf("round %d query %d", round, i), ref[i], got[i])
		}
	}

	ms := bounded.MemStats()
	if ms.Evictions == 0 {
		t.Error("1-byte budget over a repeated multi-geometry sweep evicted nothing")
	}
	if ms.ArtifactBytes != 0 {
		t.Errorf("resident %d bytes after all queries released under a 1-byte budget, want 0", ms.ArtifactBytes)
	}
	// The second round cannot have found any memoized artifact: the
	// counting hook must show every expensive stage recomputed, i.e.
	// at least 2 computations per (artifact, cache) key.
	recomputed := false
	for key, n := range h.snapshot() {
		if n >= 2 {
			recomputed = true
		}
		_ = key
	}
	if !recomputed {
		t.Errorf("no artifact was recomputed across rounds under eviction: %v", h.snapshot())
	}
}

// TestEngineEvictionUnderConcurrentBatch churns a tiny budget under a
// parallel batch (exercising pin/evict races under -race) and checks
// byte-identity against the unbounded engine.
func TestEngineEvictionUnderConcurrentBatch(t *testing.T) {
	p := buildLoop(t)
	queries := evictionQueries()

	unbounded, err := NewEngine(p, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := unbounded.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 64 << 10} {
		bounded, err := NewEngine(p, EngineOptions{Workers: 4, MaxArtifactBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			got, err := bounded.AnalyzeBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				requireDeepEqualResult(t, fmt.Sprintf("budget %d round %d query %d", budget, round, i), ref[i], got[i])
			}
		}
	}
}

// TestEngineBoundedResidencyAcrossGeometries serves many distinct cache
// geometries through one engine under a budget sized for only a few of
// them, asserting the resident artifact estimate stays under the budget
// after every query — bounded, not monotonically growing.
func TestEngineBoundedResidencyAcrossGeometries(t *testing.T) {
	p := buildLoop(t)

	// Size the budget from a real single-geometry working set so the
	// test is robust to cost-model changes: room for ~3 geometries.
	probe, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Analyze(Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB}); err != nil {
		t.Fatal(err)
	}
	budget := 3 * probe.MemStats().ArtifactBytes
	if budget <= 0 {
		t.Fatal("probe engine reported zero resident artifact bytes")
	}

	e, err := NewEngine(p, EngineOptions{MaxArtifactBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var last cache.Config
	for _, sets := range []int{4, 8, 16, 32} {
		for _, ways := range []int{1, 2, 4} {
			for _, block := range []int{8, 16} {
				last = cache.Config{Sets: sets, Ways: ways, BlockBytes: block, HitLatency: 1, MemLatency: 10}
				if _, err := e.Analyze(Query{Cache: last, Pfail: 1e-4, Mechanism: cache.MechanismSRB}); err != nil {
					t.Fatal(err)
				}
				count++
				if ms := e.MemStats(); ms.ArtifactBytes > budget {
					t.Fatalf("after %d geometries: resident %d exceeds budget %d", count, ms.ArtifactBytes, budget)
				}
			}
		}
	}
	if count < 20 {
		t.Fatalf("test covered only %d distinct geometries, want >= 20", count)
	}
	ms := e.MemStats()
	if ms.Evictions == 0 {
		t.Error("a budget sized for ~3 geometries never evicted across 24")
	}
	if ms.Misses == 0 {
		t.Errorf("24 distinct geometries produced no memo misses: %+v", ms)
	}
	// The most recent geometry is still resident: re-querying it must
	// hit the memo tables, not recompute.
	if _, err := e.Analyze(Query{Cache: last, Pfail: 1e-4, Mechanism: cache.MechanismSRB}); err != nil {
		t.Fatal(err)
	}
	after := e.MemStats()
	if after.Hits <= ms.Hits {
		t.Errorf("re-query of the resident geometry produced no memo hits: %+v -> %+v", ms, after)
	}
}

// TestEngineMemStatsAccounting sanity-checks the unbounded engine's
// accounting: resident bytes grow with distinct artifacts, repeated
// queries hit the memo table, and nothing is ever evicted.
func TestEngineMemStatsAccounting(t *testing.T) {
	p := buildLoop(t)
	e, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Query{Pfail: 1e-4, Mechanism: cache.MechanismNone}); err != nil {
		t.Fatal(err)
	}
	first := e.MemStats()
	if first.ArtifactBytes <= 0 || first.Artifacts == 0 {
		t.Fatalf("no resident artifacts after a query: %+v", first)
	}
	if _, err := e.Analyze(Query{Pfail: 1e-3, Mechanism: cache.MechanismNone}); err != nil {
		t.Fatal(err)
	}
	second := e.MemStats()
	if second.ArtifactBytes != first.ArtifactBytes {
		t.Errorf("a same-configuration query changed residency: %d -> %d", first.ArtifactBytes, second.ArtifactBytes)
	}
	if second.Hits <= first.Hits {
		t.Errorf("repeated query produced no memo hits: %+v -> %+v", first, second)
	}
	if second.Evictions != 0 || second.EvictedBytes != 0 {
		t.Errorf("unbounded engine evicted: %+v", second)
	}
}
