//go:build pwcetfault

// Integration coverage for the fault-point sites wired into the engine.
// These tests only build under -tags pwcetfault; the registry is
// process-global, so each test disarms everything it touched.

package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/faultpoint"
	"repro/internal/lp"
)

func TestInjectedEngineBuildFault(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	if err := faultpoint.Enable(faultpoint.SiteEngineBuild, "error,count=1"); err != nil {
		t.Fatal(err)
	}
	_, err := NewEngine(p, EngineOptions{})
	var ie *faultpoint.InjectedError
	if !errors.As(err, &ie) || ie.Site != faultpoint.SiteEngineBuild {
		t.Fatalf("NewEngine = %v, want injected %s fault", err, faultpoint.SiteEngineBuild)
	}
	// count=1 is exhausted: the retry builds cleanly.
	if _, err := NewEngine(p, EngineOptions{}); err != nil {
		t.Fatalf("NewEngine after fault window: %v", err)
	}
}

func TestInjectedAnalyzeError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Enable(faultpoint.SiteAnalyze, "error,count=1"); err != nil {
		t.Fatal(err)
	}
	q := Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB}
	_, err = eng.Analyze(q)
	var ie *faultpoint.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("Analyze = %v, want *InjectedError", err)
	}
	// An injected error is an ordinary failure, not a panic: the engine
	// must stay healthy and answer the retry byte-identically to a
	// fresh engine.
	if eng.Poisoned() {
		t.Fatal("injected error poisoned the engine")
	}
	if ms := eng.MemStats(); ms.PinnedBytes != 0 {
		t.Fatalf("injected error stranded pins: %+v", ms)
	}
	got, err := eng.Analyze(q)
	if err != nil {
		t.Fatalf("Analyze after fault window: %v", err)
	}
	fresh, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "post-fault", want, got)
}

func TestInjectedAnalyzePanicPoisons(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Enable(faultpoint.SiteAnalyze, "panic,count=1"); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Analyze(Query{Pfail: 1e-4})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Analyze = %v, want *PanicError", err)
	}
	if ie, ok := pe.Value.(*faultpoint.InjectedError); !ok || ie.Site != faultpoint.SiteAnalyze {
		t.Fatalf("PanicError.Value = %v, want the injected fault", pe.Value)
	}
	if !eng.Poisoned() {
		t.Fatal("injected panic did not poison the engine")
	}
	if _, err := eng.Analyze(Query{Pfail: 1e-4}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned engine answered: %v", err)
	}
}

// TestInjectedForceEvictByteIdentity: the core memoization contract
// under chaos — evicting every unpinned artifact on every eviction
// check still yields byte-identical results, because artifacts are pure
// functions of their keys.
func TestInjectedForceEvictByteIdentity(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	queries := []Query{
		{Pfail: 1e-5, Mechanism: cache.MechanismNone},
		{Pfail: 1e-4, Mechanism: cache.MechanismRW},
		{Pfail: 1e-3, Mechanism: cache.MechanismSRB},
	}
	ref, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		if want[i], err = ref.Analyze(q); err != nil {
			t.Fatal(err)
		}
	}

	if err := faultpoint.Enable(faultpoint.SiteForceEvict, "on"); err != nil {
		t.Fatal(err)
	}
	chaos, err := NewEngine(p, EngineOptions{MaxArtifactBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, err := chaos.Analyze(q)
		if err != nil {
			t.Fatalf("query %d under forced eviction: %v", i, err)
		}
		requireSameResult(t, "forced-eviction", want[i], got)
	}
	if ms := chaos.MemStats(); ms.Evictions == 0 {
		t.Error("force-evict fault never evicted anything")
	}
}

// TestInjectedSlowSolveDegrades is the acceptance scenario: a fault
// making every LP solve artificially slow trips the soft deadline, and
// the query completes degraded instead of timing out.
func TestInjectedSlowSolveDegrades(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Enable(faultpoint.SiteSlowSolve, "sleep:2ms"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Analyze(Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB, SoftDeadline: time.Millisecond})
	if err != nil {
		t.Fatalf("slow-solver query must complete degraded, got %v", err)
	}
	if !res.Degraded {
		t.Fatal("slow-solver query not flagged Degraded")
	}
	if res.PWCET <= 0 {
		t.Fatalf("degraded result carries implausible pWCET %d", res.PWCET)
	}
}

func TestInjectedPivotLimit(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Enable(faultpoint.SitePivotLimit, "on,count=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(Query{Pfail: 1e-4}); !errors.Is(err, lp.ErrPivotLimit) {
		t.Fatalf("Analyze = %v, want wrapped lp.ErrPivotLimit", err)
	}
}
