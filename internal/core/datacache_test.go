package core

import (
	"math/rand"
	"testing"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/program"
)

func dcacheConfig() cache.Config {
	return cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
}

// buildDataProgram is a small kernel with scalar loads/stores: an
// accumulation loop reading two table entries and writing one result
// per iteration.
func buildDataProgram() *program.Program {
	b := program.New("datakernel")
	b.Func("main").
		Ops(4).
		Loop(20, func(l *program.Body) {
			l.Load(0x1000). // table A (block 512, set 0)
					Load(0x1008). // table B (block 513, set 1)
					Ops(3).
					Store(0x1010) // result (block 514, set 2)
		}).
		Ops(2)
	return b.MustBuild()
}

func TestDataRefsComputed(t *testing.T) {
	p := buildDataProgram()
	da := absint.NewData(p, dcacheConfig())
	refs := da.Refs()
	if len(refs) == 0 {
		t.Fatal("no data references found")
	}
	// Three distinct data blocks: 0x1000/8=512, 0x1008/8=513, 0x1010/8=514.
	blocks := map[uint32]bool{}
	for _, r := range refs {
		blocks[r.Block] = true
	}
	for _, want := range []uint32{512, 513, 514} {
		if !blocks[want] {
			t.Errorf("data block %d missing from references", want)
		}
	}
}

func TestDataClassificationLoopResident(t *testing.T) {
	p := buildDataProgram()
	da := absint.NewData(p, dcacheConfig())
	classes := da.ClassifyAll()
	// Three scalar blocks in three distinct sets: all resident after
	// the first access -> FM or AH, never AM.
	for _, r := range da.Refs() {
		if c := classes[r.Global]; c != chmc.FirstMiss && c != chmc.AlwaysHit {
			t.Errorf("data ref %d (block %d): %v, want FM/AH", r.Global, r.Block, c)
		}
	}
}

func TestCombinedWCETAddsDataCosts(t *testing.T) {
	p := buildDataProgram()
	icfg := dcacheConfig()
	dcfg := dcacheConfig()
	without, err := Analyze(p, Options{Cache: icfg, Pfail: 0})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Analyze(p, Options{Cache: icfg, Pfail: 0, DataCache: &dcfg})
	if err != nil {
		t.Fatal(err)
	}
	if with.FaultFreeWCET <= without.FaultFreeWCET {
		t.Errorf("combined WCET %d not above instruction-only %d",
			with.FaultFreeWCET, without.FaultFreeWCET)
	}
	// At pfail=0 the pWCET equals the WCET.
	if with.PWCET != with.FaultFreeWCET {
		t.Errorf("pWCET %d != WCET %d at pfail 0", with.PWCET, with.FaultFreeWCET)
	}
	// Exact accounting on this single-path program: 60 data accesses
	// (3 per iteration x 20) at 1 cycle plus 3 cold data misses at 10.
	wantExtra := int64(60*1 + 3*10)
	if got := with.FaultFreeWCET - without.FaultFreeWCET; got != wantExtra {
		t.Errorf("data cost = %d, want %d", got, wantExtra)
	}
}

func TestDataFaultsRaisePWCET(t *testing.T) {
	p := buildDataProgram()
	icfg := dcacheConfig()
	dcfg := dcacheConfig()
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		r, err := Analyze(p, Options{Cache: icfg, Pfail: 1e-3, Mechanism: mech, DataCache: &dcfg})
		if err != nil {
			t.Fatal(err)
		}
		if r.DataFMM == nil {
			t.Fatal("data FMM missing")
		}
		if r.PWCET < r.FaultFreeWCET {
			t.Errorf("%v: pWCET below WCET", mech)
		}
		// The data kernel's blocks are hot; unprotected faults must
		// show up in the data FMM's full-set column for their sets.
		if mech == cache.MechanismNone {
			total := int64(0)
			for s := range r.DataFMM {
				total += r.DataFMM[s][dcfg.Ways]
			}
			if total == 0 {
				t.Error("no fault-induced data misses in the f=W columns")
			}
		}
	}
}

func TestDataCacheMechanismOrdering(t *testing.T) {
	p := buildDataProgram()
	icfg := dcacheConfig()
	dcfg := dcacheConfig()
	results := map[cache.Mechanism]*Result{}
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		r, err := Analyze(p, Options{Cache: icfg, Pfail: 2e-3, Mechanism: mech, DataCache: &dcfg})
		if err != nil {
			t.Fatal(err)
		}
		results[mech] = r
	}
	none, rw, srb := results[cache.MechanismNone], results[cache.MechanismRW], results[cache.MechanismSRB]
	if !(rw.PWCET <= srb.PWCET && srb.PWCET <= none.PWCET) {
		t.Errorf("ordering violated with data cache: rw %d, srb %d, none %d",
			rw.PWCET, srb.PWCET, none.PWCET)
	}
}

func TestPreciseSRBWithDataCacheRejected(t *testing.T) {
	p := buildDataProgram()
	dcfg := dcacheConfig()
	_, err := Analyze(p, Options{
		Cache: dcacheConfig(), Pfail: 1e-4,
		Mechanism: cache.MechanismSRB, PreciseSRB: true, DataCache: &dcfg,
	})
	if err == nil {
		t.Error("PreciseSRB with DataCache accepted")
	}
}

func TestDataTraceInterleavesAccesses(t *testing.T) {
	p := buildDataProgram()
	accesses, err := p.TraceAccesses(program.FirstChooser, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	dataCount, storeCount := 0, 0
	for _, a := range accesses {
		if a.Data {
			dataCount++
			if a.Store {
				storeCount++
			}
		}
	}
	if dataCount != 60 {
		t.Errorf("data accesses = %d, want 60", dataCount)
	}
	if storeCount != 20 {
		t.Errorf("stores = %d, want 20", storeCount)
	}
	// A data access must directly follow the fetch of its instruction.
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for i, a := range accesses {
		if a.Data && i == 0 {
			t.Fatal("trace starts with a data access")
		}
	}
}
