package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
)

// waitGoroutines polls until the goroutine count drops back to at most
// baseline (plus the runtime's own background slack), failing after a
// generous deadline. Cancellation must leave no worker behind.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finished goroutines through exit
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationPromptAndLeakFree is the acceptance criterion of the
// robustness issue: canceling a 256-set batch mid-flight returns
// ctx.Err() within 100ms, every worker goroutine winds down, and the
// engine's LRU holds zero query-pinned bytes afterwards. Exercised at
// workers 1 (serial path) and 4 (pool path).
func TestCancellationPromptAndLeakFree(t *testing.T) {
	cfg := cache.Config{Sets: 256, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 100}
	p := build256SetProgram(t)

	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		eng, err := NewEngine(p, EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]Query, len(sweepPfails))
		for i, pf := range sweepPfails {
			queries[i] = Query{Cache: cfg, Pfail: pf, Mechanism: cache.MechanismSRB}
		}

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := eng.AnalyzeBatchContext(ctx, queries)
			done <- err
		}()
		time.Sleep(5 * time.Millisecond) // let the batch get into the pipeline
		canceledAt := time.Now()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: batch error = %v, want context.Canceled", workers, err)
			}
			if took := time.Since(canceledAt); took > 100*time.Millisecond {
				t.Errorf("workers=%d: cancellation took %v, want < 100ms", workers, took)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: canceled batch never returned", workers)
		}

		waitGoroutines(t, baseline)
		if ms := eng.MemStats(); ms.PinnedBytes != 0 || ms.PinnedArtifacts != 0 {
			t.Errorf("workers=%d: canceled batch left pins behind: %+v", workers, ms)
		}

		// The engine must still be fully usable: a clean run afterwards
		// matches a fresh engine byte for byte (cancellation never
		// poisons memo entries).
		got, err := eng.Analyze(queries[0])
		if err != nil {
			t.Fatalf("workers=%d: post-cancel Analyze: %v", workers, err)
		}
		fresh, err := NewEngine(p, EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Analyze(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "post-cancel", want, got)
	}
}

// TestPreCanceledContext: an already-dead context fails before any
// computation starts.
func TestPreCanceledContext(t *testing.T) {
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnalyzeContext(ctx, Query{Pfail: 1e-4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeContext on dead ctx = %v, want context.Canceled", err)
	}
	if ms := eng.MemStats(); ms.Misses != 0 {
		t.Fatalf("dead ctx still triggered %d artifact computations", ms.Misses)
	}
}

// TestLegacySignaturesAreBackgroundWrappers: the context-free API is
// byte-identical to AnalyzeContext(context.Background(), ...).
func TestLegacySignaturesAreBackgroundWrappers(t *testing.T) {
	p := buildLoop(t)
	a, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Pfail: 1e-4, Mechanism: cache.MechanismSRB}
	legacy, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := b.AnalyzeContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqualResult(t, "legacy-vs-context", legacy, ctxed)
}

// TestDegradedModeSoundDominance pins the degraded-mode soundness
// contract: a query forced through the tightest support cap by an
// unmeetable soft deadline must (a) complete instead of timing out,
// (b) be flagged Degraded, and (c) upper-bound the exact result — the
// exact penalty distribution is stochastically dominated by the
// degraded one, and the degraded pWCET quantile is at or above the
// exact quantile.
func TestDegradedModeSoundDominance(t *testing.T) {
	p := build256SetProgram(t)
	cfg := cache.Config{Sets: 256, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 100}

	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		q := Query{Cache: cfg, Pfail: 1e-3, Mechanism: mech}
		eng, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := eng.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Degraded {
			t.Fatalf("%v: exact run flagged degraded", mech)
		}

		q.SoftDeadline = time.Nanosecond // every timed attempt dies; the floor attempt completes
		deng, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		degraded, err := deng.Analyze(q)
		if err != nil {
			t.Fatalf("%v: degraded mode must complete, got %v", mech, err)
		}
		if !degraded.Degraded {
			t.Fatalf("%v: result not flagged Degraded under a 1ns soft deadline", mech)
		}
		if degraded.PWCET < exact.PWCET {
			t.Errorf("%v: degraded pWCET %d below exact %d — unsound", mech, degraded.PWCET, exact.PWCET)
		}
		if !exact.Penalty.DominatedBy(degraded.Penalty, 1e-12) {
			t.Errorf("%v: degraded penalty distribution does not dominate the exact one", mech)
		}
	}
}

// TestDegradedModeNoDeadlineIsExact: a generous soft deadline leaves
// the result byte-identical to the plain path, with Degraded false.
func TestDegradedModeNoDeadlineIsExact(t *testing.T) {
	p := buildLoop(t)
	q := Query{Pfail: 1e-4, Mechanism: cache.MechanismRW}
	a, _ := NewEngine(p, EngineOptions{})
	b, _ := NewEngine(p, EngineOptions{})
	exact, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	q.SoftDeadline = time.Hour
	relaxed, err := b.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Degraded {
		t.Fatal("unbinding soft deadline flagged the result degraded")
	}
	requireDeepEqualResult(t, "soft-deadline-unbinding", exact, relaxed)
}

// TestPanicPoisonsEngine: a panic anywhere inside an analysis is
// recovered into a *PanicError, the engine is poisoned (all further
// queries fail fast with ErrPoisoned), and no query pins are stranded.
func TestPanicPoisonsEngine(t *testing.T) {
	p := buildLoop(t)
	eng, err := NewEngine(p, EngineOptions{
		Hook: func(ArtifactEvent) { panic("injected hook panic") },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Analyze(Query{Pfail: 1e-4})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Analyze after panic = %v, want *PanicError", err)
	}
	if pe.Value != "injected hook panic" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError carries %v / %d stack bytes", pe.Value, len(pe.Stack))
	}
	if !eng.Poisoned() {
		t.Fatal("engine not poisoned after a panicking query")
	}

	start := time.Now()
	_, err = eng.Analyze(Query{Pfail: 1e-3})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second Analyze = %v, want ErrPoisoned", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("poisoned engine did not fail fast")
	}

	ms := eng.MemStats()
	if !ms.Poisoned {
		t.Error("MemStats does not report poisoning")
	}
	if ms.PinnedBytes != 0 || ms.PinnedArtifacts != 0 {
		t.Errorf("poisoning query stranded pins: %+v", ms)
	}
}

// TestBatchCancellationAcrossWorkers runs the cancel-mid-batch path
// under both scheduling modes repeatedly — fodder for the -race build
// to catch unsynchronized teardown.
func TestBatchCancellationAcrossWorkers(t *testing.T) {
	p := buildLoop(t)
	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(p, EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]Query, 6)
		for i := range queries {
			queries[i] = Query{Pfail: sweepPfails[i], Mechanism: cache.MechanismSRB}
		}
		for round := 0; round < 5; round++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(round)*500*time.Microsecond)
			_, err := eng.AnalyzeBatchContext(ctx, queries)
			cancel()
			if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d round=%d: unexpected error class %v", workers, round, err)
			}
			if ms := eng.MemStats(); ms.PinnedBytes != 0 {
				t.Fatalf("workers=%d round=%d: pins left: %+v", workers, round, ms)
			}
		}
		// Afterwards the engine still answers cleanly.
		if _, err := eng.Analyze(queries[0]); err != nil {
			t.Fatalf("workers=%d: engine unusable after cancel rounds: %v", workers, err)
		}
	}
}
