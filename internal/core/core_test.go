package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/progen"
	"repro/internal/program"
)

func testOptions(mech cache.Mechanism) Options {
	return Options{
		Cache:     cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10},
		Pfail:     1e-3,
		Mechanism: mech,
	}
}

func buildLoop(t *testing.T) *program.Program {
	t.Helper()
	b := program.New("loop")
	b.Func("main").Loop(50, func(l *program.Body) { l.Ops(6) })
	return b.MustBuild()
}

func TestAnalyzeDefaults(t *testing.T) {
	p := buildLoop(t)
	r, err := Analyze(p, Options{Pfail: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Options.Cache != cache.PaperConfig() {
		t.Error("default cache config not applied")
	}
	if r.Options.TargetExceedance != 1e-15 {
		t.Error("default target exceedance not applied")
	}
	if r.FaultFreeWCET <= 0 {
		t.Error("non-positive WCET")
	}
	if r.PWCET < r.FaultFreeWCET {
		t.Error("pWCET below fault-free WCET")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p := buildLoop(t)
	if _, err := Analyze(p, Options{Pfail: 2}); err == nil {
		t.Error("pfail=2 accepted")
	}
	if _, err := Analyze(p, Options{Pfail: 1e-4, TargetExceedance: 1.5}); err == nil {
		t.Error("target 1.5 accepted")
	}
	bad := Options{Cache: cache.Config{Sets: 3, Ways: 1, BlockBytes: 8, HitLatency: 1, MemLatency: 1}}
	if _, err := Analyze(p, bad); err == nil {
		t.Error("invalid cache accepted")
	}
}

func TestZeroPfailPWCETEqualsWCET(t *testing.T) {
	p := buildLoop(t)
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		opt := testOptions(mech)
		opt.Pfail = 0
		r, err := Analyze(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.PWCET != r.FaultFreeWCET {
			t.Errorf("%v: pWCET %d != fault-free WCET %d at pfail=0", mech, r.PWCET, r.FaultFreeWCET)
		}
		if r.Penalty.Max() != 0 {
			t.Errorf("%v: nonzero penalty at pfail=0", mech)
		}
	}
}

func TestMechanismOrdering(t *testing.T) {
	// For every program: fault-free WCET <= pWCET(RW) <= pWCET(SRB) <=
	// pWCET(none). RW dominates SRB because it preserves strictly more
	// locality; both dominate no protection.
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		results, err := AnalyzeAll(p, testOptions(cache.MechanismNone))
		if err != nil {
			t.Fatal(err)
		}
		none := results[cache.MechanismNone]
		rw := results[cache.MechanismRW]
		srb := results[cache.MechanismSRB]
		if rw.FaultFreeWCET != none.FaultFreeWCET || srb.FaultFreeWCET != none.FaultFreeWCET {
			t.Fatalf("seed %d: fault-free WCET differs across mechanisms", seed)
		}
		if rw.PWCET > srb.PWCET {
			t.Errorf("seed %d (%s): pWCET RW %d > SRB %d", seed, p.Name, rw.PWCET, srb.PWCET)
		}
		if srb.PWCET > none.PWCET {
			t.Errorf("seed %d (%s): pWCET SRB %d > none %d", seed, p.Name, srb.PWCET, none.PWCET)
		}
		if none.PWCET < none.FaultFreeWCET {
			t.Errorf("seed %d: pWCET below fault-free WCET", seed)
		}
		// Distributional version: RW's penalty is stochastically
		// dominated by SRB's, which is dominated by none's.
		if !rw.Penalty.DominatedBy(srb.Penalty, 1e-9) {
			t.Errorf("seed %d: RW penalty not dominated by SRB", seed)
		}
		if !srb.Penalty.DominatedBy(none.Penalty, 1e-9) {
			t.Errorf("seed %d: SRB penalty not dominated by none", seed)
		}
	}
}

// TestAnalyzeAllMatchesIndividualAnalyses asserts the shared-computation
// fast path of AnalyzeAll produces results identical to three
// independent Analyze calls: same WCETs, pWCETs, and FMM entries.
func TestAnalyzeAllMatchesIndividualAnalyses(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		opt := testOptions(cache.MechanismNone)
		shared, err := AnalyzeAll(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			o := opt
			o.Mechanism = m
			solo, err := Analyze(p, o)
			if err != nil {
				t.Fatal(err)
			}
			sh := shared[m]
			if sh.FaultFreeWCET != solo.FaultFreeWCET {
				t.Errorf("seed %d %v: shared WCET %d != solo %d", seed, m, sh.FaultFreeWCET, solo.FaultFreeWCET)
			}
			if sh.PWCET != solo.PWCET {
				t.Errorf("seed %d %v: shared pWCET %d != solo %d", seed, m, sh.PWCET, solo.PWCET)
			}
			for s := range solo.FMM {
				for f := range solo.FMM[s] {
					if sh.FMM[s][f] != solo.FMM[s][f] {
						t.Errorf("seed %d %v: FMM[%d][%d] shared %d != solo %d",
							seed, m, s, f, sh.FMM[s][f], solo.FMM[s][f])
					}
				}
			}
		}
	}
}

func TestAnalyzeAllRejectsSpecializedOptions(t *testing.T) {
	p := buildLoop(t)
	opt := testOptions(cache.MechanismSRB)
	opt.PreciseSRB = true
	if _, err := AnalyzeAll(p, opt); err == nil {
		t.Error("AnalyzeAll accepted PreciseSRB")
	}
	dcfg := testOptions(cache.MechanismNone).Cache
	opt2 := testOptions(cache.MechanismNone)
	opt2.DataCache = &dcfg
	if _, err := AnalyzeAll(p, opt2); err == nil {
		t.Error("AnalyzeAll accepted DataCache")
	}
}

func TestGain(t *testing.T) {
	base := &Result{PWCET: 200}
	prot := &Result{PWCET: 120}
	if g := Gain(base, prot); math.Abs(g-0.4) > 1e-12 {
		t.Errorf("Gain = %g, want 0.4", g)
	}
	if g := Gain(&Result{PWCET: 0}, prot); g != 0 {
		t.Error("zero baseline must give zero gain")
	}
}

func TestPWCETMonotoneInExceedance(t *testing.T) {
	p := buildLoop(t)
	r, err := Analyze(p, testOptions(cache.MechanismNone))
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for _, prob := range []float64{0.5, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
		v := r.PWCETAt(prob)
		if v < prev {
			t.Errorf("pWCET at %g = %d below pWCET at larger probability %d (must grow as the target tightens)", prob, v, prev)
		}
		prev = v
	}
}

func TestExceedanceCurveShape(t *testing.T) {
	p := buildLoop(t)
	r, err := Analyze(p, testOptions(cache.MechanismNone))
	if err != nil {
		t.Fatal(err)
	}
	curve := r.ExceedanceCurve()
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	if curve[0].Value < r.FaultFreeWCET {
		t.Error("curve starts below the fault-free WCET")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Prob > curve[i-1].Prob {
			t.Fatal("exceedance curve not non-increasing")
		}
		if curve[i].Value <= curve[i-1].Value {
			t.Fatal("curve values not strictly increasing")
		}
	}
	if last := curve[len(curve)-1]; last.Prob != 0 {
		t.Error("curve must end at probability 0")
	}
}

func TestPfailMonotone(t *testing.T) {
	// Higher pfail gives (weakly) higher pWCET for the unprotected
	// architecture.
	p := buildLoop(t)
	prev := int64(0)
	for _, pf := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		opt := testOptions(cache.MechanismNone)
		opt.Pfail = pf
		r, err := Analyze(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.PWCET < prev {
			t.Errorf("pWCET decreased from %d to %d when pfail rose to %g", prev, r.PWCET, pf)
		}
		prev = r.PWCET
	}
}

func TestClassify(t *testing.T) {
	p := buildLoop(t)
	c := Classify(p, testOptions(cache.MechanismNone).Cache)
	if len(c.Refs) == 0 || len(c.Classes) != len(c.Refs) || len(c.SRBHit) != len(c.Refs) {
		t.Fatal("classification shape wrong")
	}
}

// TestCurveQuantileConsistency: for every point (v, p) of the
// exceedance curve, PWCETAt must be consistent: at probability just
// above p the quantile is at most v; at p itself the quantile is the
// smallest value whose exceedance is <= p.
func TestCurveQuantileConsistency(t *testing.T) {
	p := buildLoop(t)
	r, err := Analyze(p, testOptions(cache.MechanismNone))
	if err != nil {
		t.Fatal(err)
	}
	curve := r.ExceedanceCurve()
	for _, pt := range curve {
		if got := r.PWCETAt(pt.Prob); got > pt.Value {
			t.Errorf("PWCETAt(%g) = %d, above curve value %d", pt.Prob, got, pt.Value)
		}
	}
	// CCDF read back from the penalty distribution matches the curve.
	for _, pt := range curve {
		if got := r.Penalty.CCDF(pt.Value - r.FaultFreeWCET); math.Abs(got-pt.Prob) > 1e-12 {
			t.Errorf("CCDF mismatch at %d: %g vs %g", pt.Value, got, pt.Prob)
		}
	}
}

func TestCoarseningStillSound(t *testing.T) {
	// A tiny MaxSupport must never lower the pWCET (mass only moves up).
	p := progen.Random(rand.New(rand.NewSource(3)), progen.DefaultParams())
	exact, err := Analyze(p, testOptions(cache.MechanismNone))
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(cache.MechanismNone)
	opt.MaxSupport = 8
	coarse, err := Analyze(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.PWCET < exact.PWCET {
		t.Errorf("coarsened pWCET %d below exact %d", coarse.PWCET, exact.PWCET)
	}
}
