package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/progen"
	"repro/internal/program"
)

// requireSameResult asserts two results are byte-identical in every
// field the parallelism touches: FMM entries, per-set distributions,
// penalty distribution and pWCET. Probabilities must match exactly
// (==), not within a tolerance — the determinism guarantee of
// Options.Workers is bit-level.
func requireSameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if got.FaultFreeWCET != ref.FaultFreeWCET {
		t.Fatalf("%s: fault-free WCET %d, want %d", label, got.FaultFreeWCET, ref.FaultFreeWCET)
	}
	if got.PWCET != ref.PWCET {
		t.Fatalf("%s: pWCET %d, want %d", label, got.PWCET, ref.PWCET)
	}
	if len(got.FMM) != len(ref.FMM) {
		t.Fatalf("%s: FMM has %d sets, want %d", label, len(got.FMM), len(ref.FMM))
	}
	for s := range ref.FMM {
		for f := range ref.FMM[s] {
			if got.FMM[s][f] != ref.FMM[s][f] {
				t.Fatalf("%s: FMM[%d][%d] = %d, want %d", label, s, f, got.FMM[s][f], ref.FMM[s][f])
			}
		}
	}
	requireSameDist(t, label+": Penalty", ref.Penalty, got.Penalty)
	if len(got.PerSet) != len(ref.PerSet) {
		t.Fatalf("%s: %d per-set distributions, want %d", label, len(got.PerSet), len(ref.PerSet))
	}
	for s := range ref.PerSet {
		requireSameDist(t, label+": PerSet", ref.PerSet[s], got.PerSet[s])
	}
}

func requireSameDist(t *testing.T, label string, ref, got *dist.Dist) {
	t.Helper()
	if got.Len() != ref.Len() {
		t.Fatalf("%s: support size %d, want %d", label, got.Len(), ref.Len())
	}
	rp := ref.Points()
	for i, p := range got.Points() {
		if p != rp[i] {
			t.Fatalf("%s: atom %d is %+v, want %+v (must be byte-identical)", label, i, p, rp[i])
		}
	}
}

// TestAnalyzeWorkersEquivalence: Analyze with Workers > 1 produces
// results identical to Workers = 1 across all mechanisms (run with
// -race this also exercises the pool for data races).
func TestAnalyzeWorkersEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := progen.Random(rand.New(rand.NewSource(700+seed)), progen.DefaultParams())
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			opt := testOptions(mech)
			opt.Workers = 1
			ref, err := Analyze(p, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 4, 13} {
				opt.Workers = workers
				got, err := Analyze(p, opt)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, mech.String(), ref, got)
			}
		}
	}
}

// TestAnalyzeAllWorkersEquivalence covers the shared-computation path,
// whose three per-mechanism distribution builds also run concurrently.
func TestAnalyzeAllWorkersEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := progen.Random(rand.New(rand.NewSource(800+seed)), progen.DefaultParams())
		opt := testOptions(cache.MechanismNone)
		opt.Workers = 1
		ref, err := AnalyzeAll(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 4} {
			opt.Workers = workers
			got, err := AnalyzeAll(p, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
				requireSameResult(t, mech.String(), ref[mech], got[mech])
			}
		}
	}
}

// build256SetProgram returns a program whose code span covers all sets
// of a 256-set cache, so the parallel FMM really fans 256 per-set
// solves out.
func build256SetProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.New("wide256")
	b.Func("main").
		Ops(200).
		Loop(30, func(l *program.Body) {
			l.Ops(300)
			l.If(func(then *program.Body) { then.Ops(250) },
				func(els *program.Body) { els.Ops(180) })
		}).
		Loop(12, func(l *program.Body) { l.Ops(320) })
	return b.MustBuild()
}

// TestWorkersEquivalence256Sets is the scale case of the issue: a
// 256-set configuration where the parallel per-set stages hurt most.
// Workers = 1 and Workers = 4 must agree byte for byte, for Analyze
// and AnalyzeAll alike.
func TestWorkersEquivalence256Sets(t *testing.T) {
	if testing.Short() {
		t.Skip("256-set equivalence sweep")
	}
	cfg := cache.Config{Sets: 256, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 100}
	p := build256SetProgram(t)

	opt := Options{Cache: cfg, Pfail: 1e-3, Mechanism: cache.MechanismSRB, Workers: 1}
	ref, err := Analyze(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	touched := 0
	for s := range ref.FMM {
		for _, v := range ref.FMM[s] {
			if v > 0 {
				touched++
				break
			}
		}
	}
	if touched < 200 {
		t.Fatalf("only %d of 256 sets carry misses; the scale case is not exercising the pool", touched)
	}
	opt.Workers = 4
	got, err := Analyze(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "srb-256", ref, got)

	aopt := Options{Cache: cfg, Pfail: 1e-3, Workers: 1}
	refAll, err := AnalyzeAll(p, aopt)
	if err != nil {
		t.Fatal(err)
	}
	aopt.Workers = 4
	gotAll, err := AnalyzeAll(p, aopt)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
		requireSameResult(t, "all-256-"+mech.String(), refAll[mech], gotAll[mech])
	}
}

// TestOptionsValidation: MaxSupport below 2 (except the 0 default) and
// negative Workers are rejected up front by both entry points.
func TestOptionsValidation(t *testing.T) {
	p := buildLoop(t)
	for _, bad := range []int{1, -1, -4096} {
		opt := testOptions(cache.MechanismNone)
		opt.MaxSupport = bad
		if _, err := Analyze(p, opt); err == nil {
			t.Errorf("Analyze accepted MaxSupport = %d", bad)
		}
		if _, err := AnalyzeAll(p, opt); err == nil {
			t.Errorf("AnalyzeAll accepted MaxSupport = %d", bad)
		}
	}
	opt := testOptions(cache.MechanismNone)
	opt.Workers = -1
	if _, err := Analyze(p, opt); err == nil {
		t.Error("Analyze accepted Workers = -1")
	}
	if _, err := AnalyzeAll(p, opt); err == nil {
		t.Error("AnalyzeAll accepted Workers = -1")
	}
	// MaxSupport = 2 is the smallest valid cap and must be accepted.
	opt = testOptions(cache.MechanismNone)
	opt.MaxSupport = 2
	if _, err := Analyze(p, opt); err != nil {
		t.Errorf("Analyze rejected MaxSupport = 2: %v", err)
	}
}
