package core

// Tests of the coarsening-strategy plumbing: the strategy reaches the
// distribution stage, never aliases memoized artifacts, and batch
// results stay byte-identical to one-shot runs under both strategies.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/progen"
)

func TestCoarsenStrategyValidation(t *testing.T) {
	p := buildLoop(t)
	if _, err := Analyze(p, Options{Pfail: 1e-4, Coarsen: dist.CoarsenStrategy(42)}); err == nil {
		t.Error("unknown coarsening strategy accepted by Analyze")
	}
	e, err := NewEngine(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Query{Pfail: 1e-4, Coarsen: dist.CoarsenStrategy(42)}); err == nil {
		t.Error("unknown coarsening strategy accepted by Engine.Analyze")
	}
	r, err := Analyze(p, Options{Pfail: 1e-4, Coarsen: dist.CoarsenKeepHeaviest})
	if err != nil {
		t.Fatal(err)
	}
	if r.Options.Coarsen != dist.CoarsenKeepHeaviest {
		t.Errorf("Result.Options does not echo the strategy: %v", r.Options.Coarsen)
	}
}

// bindingMaxSupport is a support cap small enough to bind on the test
// programs (each test asserts that it does), so the two strategies
// actually diverge.
const bindingMaxSupport = 8

// TestEngineCoarsenStrategyNoAliasing: two queries differing only in
// the coarsening strategy share every memoized artifact (the
// classification, WCET and FMM artifacts are strategy-independent:
// fault-miss counts involve no convolution) and still produce distinct
// penalty distributions — a strategy change can never be served a
// stale distribution from the other strategy's run, in either order.
func TestEngineCoarsenStrategyNoAliasing(t *testing.T) {
	p := progen.Random(rand.New(rand.NewSource(8)), progen.DefaultParams())
	// Construction check: with an unbinding cap the penalty support
	// must exceed bindingMaxSupport, otherwise the strategies cannot
	// diverge and this test would vacuously pass.
	wide, err := Analyze(p, Options{Pfail: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Penalty.Len() <= bindingMaxSupport {
		t.Fatalf("test construction: penalty support %d does not exceed the binding cap %d",
			wide.Penalty.Len(), bindingMaxSupport)
	}

	var mu sync.Mutex
	counts := map[Artifact]int{}
	e, err := NewEngine(p, EngineOptions{Hook: func(ev ArtifactEvent) {
		mu.Lock()
		counts[ev.Artifact]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Pfail: 1e-3, MaxSupport: bindingMaxSupport}
	qLE, qKH := q, q
	qLE.Coarsen, qKH.Coarsen = dist.CoarsenLeastError, dist.CoarsenKeepHeaviest
	le1, err := e.Analyze(qLE)
	if err != nil {
		t.Fatal(err)
	}
	kh, err := e.Analyze(qKH)
	if err != nil {
		t.Fatal(err)
	}
	le2, err := e.Analyze(qLE) // after the other strategy ran: no aliasing back
	if err != nil {
		t.Fatal(err)
	}

	// All three queries hit the same memoized artifacts exactly once.
	for a, want := range map[Artifact]int{
		ArtifactClassification: 1, ArtifactWCET: 1, ArtifactFMMCore: 1, ArtifactFMMColumn: 1,
	} {
		if counts[a] != want {
			t.Errorf("artifact %v computed %d times, want %d (strategy must not be part of these keys)",
				a, counts[a], want)
		}
	}
	// The shared FMM is identical; the distributions are not.
	for s := range le1.FMM {
		for f := range le1.FMM[s] {
			if le1.FMM[s][f] != kh.FMM[s][f] {
				t.Fatalf("FMM[%d][%d] differs between strategies: %d vs %d",
					s, f, le1.FMM[s][f], kh.FMM[s][f])
			}
		}
	}
	samePenalty := le1.Penalty.Len() == kh.Penalty.Len()
	if samePenalty {
		for i, pt := range le1.Penalty.Points() {
			if kh.Penalty.Points()[i] != pt {
				samePenalty = false
				break
			}
		}
	}
	if samePenalty {
		t.Error("the two strategies produced identical penalties under a binding cap — aliasing or a dead strategy switch")
	}
	requireDeepEqualResult(t, "least-error re-query", le1, le2)

	// Both remain sound upper bounds of the unbinding-cap distribution.
	for _, r := range []*Result{le1, kh} {
		if !wide.Penalty.DominatedBy(r.Penalty, 1e-12) {
			t.Errorf("%v penalty does not dominate the unbinding-cap penalty", r.Options.Coarsen)
		}
		if r.PWCET < wide.PWCET {
			t.Errorf("%v pWCET %d below the unbinding-cap pWCET %d", r.Options.Coarsen, r.PWCET, wide.PWCET)
		}
	}
}

// TestEngineBatchByteIdenticalUnderStrategies is the acceptance
// criterion: engine batch results stay byte-identical to independent
// one-shot Analyze runs under BOTH coarsening strategies, with a cap
// small enough to bind.
func TestEngineBatchByteIdenticalUnderStrategies(t *testing.T) {
	p := progen.Random(rand.New(rand.NewSource(8)), progen.DefaultParams())
	for _, strategy := range []dist.CoarsenStrategy{dist.CoarsenLeastError, dist.CoarsenKeepHeaviest} {
		e, err := NewEngine(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var queries []Query
		for _, pf := range []float64{1e-6, 1e-4, 1e-3} {
			for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
				queries = append(queries, Query{
					Pfail: pf, Mechanism: mech, MaxSupport: bindingMaxSupport, Coarsen: strategy,
				})
			}
		}
		batch, err := e.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			solo, err := Analyze(p, q.options(0))
			if err != nil {
				t.Fatal(err)
			}
			requireDeepEqualResult(t, fmt.Sprintf("%v %v pfail=%g", strategy, q.Mechanism, q.Pfail), solo, batch[i])
		}
	}
}

// TestCoarsenStrategiesAgreeWhenCapDoesNotBind: with the default
// support cap (which these programs never reach) the strategy is
// inert — results are byte-identical across strategies, i.e. identical
// to the pre-strategy behavior whenever the cap does not bind.
func TestCoarsenStrategiesAgreeWhenCapDoesNotBind(t *testing.T) {
	p := progen.Random(rand.New(rand.NewSource(8)), progen.DefaultParams())
	for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismSRB} {
		le, err := Analyze(p, Options{Pfail: 1e-3, Mechanism: mech, Coarsen: dist.CoarsenLeastError})
		if err != nil {
			t.Fatal(err)
		}
		if le.Penalty.Len() >= DefaultMaxSupport {
			t.Fatalf("test construction: penalty support %d reaches the default cap", le.Penalty.Len())
		}
		kh, err := Analyze(p, Options{Pfail: 1e-3, Mechanism: mech, Coarsen: dist.CoarsenKeepHeaviest})
		if err != nil {
			t.Fatal(err)
		}
		kh.Options.Coarsen = le.Options.Coarsen // the echoed option is the one intended difference
		requireDeepEqualResult(t, fmt.Sprintf("unbinding cap %v", mech), le, kh)
	}
}
