// Package core implements the paper's contribution: static probabilistic
// WCET estimation for set-associative LRU instruction caches with
// permanently faulty blocks, under three architectures — no protection
// (the baseline of Hardy & Puaut, RTS 2015), the Reliable Way (RW), and
// the Shared Reliable Buffer (SRB) (Sections II.C and III of the paper).
//
// The pipeline per program and configuration:
//
//  1. classify every reference with the Must/May/Persistence analyses
//     (internal/absint) and compute the fault-free WCET by IPET
//     (internal/ipet);
//  2. compute the Fault Miss Map: per set s and per number of faulty
//     blocks f, an ILP upper-bounds the fault-induced misses, with the
//     mechanism-specific handling of the f = W column;
//  3. turn each set's FMM row into a discrete penalty distribution
//     weighted by the faulty-way probabilities (equations 2 and 3) and
//     convolve the per-set distributions (sets are independent);
//  4. read the pWCET at the target exceedance probability off the
//     resulting distribution, on top of the fault-free WCET.
package core

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/chmc"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ipet"
	"repro/internal/program"
)

// DefaultTargetExceedance is the paper's target probability: 10^-15 per
// task activation (commercial aerospace, Section IV.A).
const DefaultTargetExceedance = 1e-15

// DefaultMaxSupport caps the penalty distribution support during
// convolution; coarsening is conservative (CCDF upper bound).
const DefaultMaxSupport = 4096

// Options configures one analysis.
type Options struct {
	// Cache is the cache geometry and timing. Zero value = PaperConfig.
	Cache cache.Config
	// Pfail is the per-bit permanent failure probability (paper: 1e-4).
	// It is the legacy spelling of Scenario = fault.Permanent{Pfail}:
	// leaving Scenario nil selects the paper's permanent model with
	// this probability, byte-identical to the pre-scenario pipeline.
	Pfail float64
	// Scenario selects the fault environment: fault.Permanent (the
	// paper's boot-time model), fault.Transient (per-access SEUs at
	// rate lambda), or fault.Combined (both, independently composed).
	// nil defaults to fault.Permanent{Pfail: Pfail}; setting both
	// Scenario and a non-zero Pfail is rejected. Transient and
	// Combined scenarios are not combinable with PreciseSRB or
	// DataCache.
	Scenario fault.Scenario
	// Mechanism selects the reliability hardware. It shapes only the
	// permanent fault component; a pure Transient scenario yields the
	// same result for every mechanism.
	Mechanism cache.Mechanism
	// TargetExceedance is the probability at which the pWCET is read
	// (default 1e-15).
	TargetExceedance float64
	// MaxSupport caps the convolution support size (default 4096).
	MaxSupport int
	// Coarsen selects the strategy that enforces MaxSupport on over-cap
	// convolution partials. The zero value is dist.CoarsenLeastError,
	// the tail-faithful default; dist.CoarsenKeepHeaviest reproduces
	// the legacy keep-heaviest reduction. Both are sound upper bounds
	// and byte-identical (the cap is a no-op) whenever the support
	// never exceeds MaxSupport; they only diverge when the cap binds.
	Coarsen dist.CoarsenStrategy
	// PreciseSRB enables the refined SRB analysis of internal/core's
	// precise.go (the paper's future-work item): per-set private SRB
	// classification combined with the conservative one through a sound
	// probability mixture. Only meaningful with MechanismSRB.
	PreciseSRB bool
	// DataCache, when non-nil, additionally analyzes the program's data
	// accesses (Body.Load/Store) against this data-cache configuration —
	// the paper's "transpose the hardware and corresponding analyses to
	// data caches" future-work direction. The same pfail and mechanism
	// apply to both caches; their fault populations are independent, so
	// the two penalty distributions convolve. Not combinable with
	// PreciseSRB.
	DataCache *cache.Config
	// Workers bounds the goroutines used for the per-set stages (the
	// FMM's ILP solves and the penalty convolution tree), which are
	// independent across sets. 0 means GOMAXPROCS, 1 is fully
	// sequential; negative values are rejected. Results are
	// byte-identical for every worker count — parallelism only changes
	// wall-clock time, never FMM entries, distributions or pWCETs.
	Workers int
	// Reference runs the analysis on the retained reference
	// implementations of the hot paths: the dense uncompacted simplex
	// (lp.NewReferenceSimplex) and the map-based abstract cache domain
	// (absint.NewReference), instead of the compacted sparse simplex
	// and the indexed compact domain. Results are bit-identical either
	// way — the differential byte-identity suite asserts it on every
	// stage (WCET, full FMM, penalty distribution, pWCET curve) — so
	// the flag exists purely to validate the optimized path, at a
	// substantial slowdown.
	Reference bool
	// ExactConvolve routes every penalty reduction through the retained
	// reference convolution executor (dist.ConvolveAllExactWith): the
	// same canonical order and merge plan as the optimized monoid
	// engine, but no subtree sharing and no in-tree coarsening — the
	// convolution analogue of Reference. Byte-identical to the default
	// whenever no coarsening binds; when the support cap binds hard
	// (deeply over-cap configurations arm in-tree coarsening), the
	// default trades a bounded, documented exceedance-area budget for a
	// large speedup, and this flag recovers the final-coarsen-only
	// semantics for differential validation.
	ExactConvolve bool
}

func (o Options) withDefaults() Options {
	if o.Cache == (cache.Config{}) {
		o.Cache = cache.PaperConfig()
	}
	if o.TargetExceedance == 0 {
		o.TargetExceedance = DefaultTargetExceedance
	}
	if o.MaxSupport == 0 {
		o.MaxSupport = DefaultMaxSupport
	}
	return o
}

// validate checks the option fields shared by Analyze and AnalyzeAll,
// after defaults have been applied.
func (o Options) validate() error {
	if err := o.Cache.Validate(); err != nil {
		return err
	}
	if o.TargetExceedance <= 0 || o.TargetExceedance >= 1 {
		return fmt.Errorf("core: target exceedance %g outside (0,1)", o.TargetExceedance)
	}
	// MaxSupport feeds dist.CoarsenTo, where values below 2 would
	// either disable the cap (<= 0, silently unbounded memory) or
	// collapse every distribution to its maximum (1). Only 0 (replaced
	// by the default above) is a valid "unset".
	//
	// Note the per-query support cap is distinct from the session-level
	// artifact memory: an Engine retains every memoized artifact
	// forever unless EngineOptions.MaxArtifactBytes sets a byte budget
	// (<= 0 keeps the unbounded behavior — see its documentation).
	// Long-lived processes should set a budget.
	if o.MaxSupport < 2 {
		return fmt.Errorf("core: MaxSupport %d: need at least 2 support points (or 0 for the default %d)",
			o.MaxSupport, DefaultMaxSupport)
	}
	if err := o.Coarsen.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers %d is negative (0 means GOMAXPROCS)", o.Workers)
	}
	return nil
}

// scenario resolves the effective fault scenario: an explicit Scenario
// wins; a nil Scenario selects the paper's permanent model at the
// legacy Pfail field, keeping every pre-scenario call site working
// unchanged. Setting both is rejected so a sweep can never silently
// mix the two spellings.
func (o Options) scenario() (fault.Scenario, error) {
	if o.Scenario == nil {
		return fault.Permanent{Pfail: o.Pfail}, nil
	}
	if o.Pfail != 0 {
		return nil, fmt.Errorf("core: both Pfail %g and Scenario %v set; use exactly one", o.Pfail, o.Scenario)
	}
	if err := o.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return o.Scenario, nil
}

// Result is the outcome of one pWCET analysis.
type Result struct {
	// Program is the analyzed program's name.
	Program string
	// Options echoes the effective analysis options (defaults resolved).
	Options Options
	// Scenario is the resolved fault scenario — never nil: a nil
	// Options.Scenario resolves to fault.Permanent{Pfail}.
	Scenario fault.Scenario
	// Model is the derived permanent fault model (pbf from equation 1).
	// For a pure Transient scenario it is the zero-pfail model.
	Model fault.Model
	// Transient is the derived SEU model (lambda, window bound,
	// per-access extra-miss probability). Zero unless the scenario has
	// a transient component.
	Transient fault.TransientModel
	// HitBounds caps, per cache set, the hit-classified reference
	// executions a transient upset can turn into extra misses. nil
	// unless the scenario has a transient component.
	HitBounds ipet.HitBounds
	// FaultFreeWCET is the deterministic WCET with zero faults, in
	// cycles.
	FaultFreeWCET int64
	// FMM is the fault miss map (misses, not cycles): FMM[s][f]. nil
	// for a pure Transient scenario, which has no permanent component.
	FMM ipet.FMM
	// PerSet holds each set's penalty distribution in cycles.
	PerSet []*dist.Dist
	// Penalty is the convolution of the per-set distributions: the
	// distribution of the total fault-induced penalty in cycles.
	Penalty *dist.Dist
	// PWCET is the probabilistic WCET at TargetExceedance:
	// FaultFreeWCET + penalty quantile.
	PWCET int64
	// Degraded marks a result produced by the engine's degraded mode
	// (Query.SoftDeadline): the soft deadline expired and the analysis
	// was retried under a tighter MaxSupport cap. Degraded results are
	// still sound — coarsening is tail-preserving, so the degraded
	// pWCET upper-bounds the exact one (the dominance tests pin this) —
	// they are just less tight. Always false for one-shot Analyze and
	// for queries without a soft deadline.
	Degraded bool
	// HitRefs, FMRefs, MissRefs count reference classifications.
	HitRefs, FMRefs, MissRefs int

	// FMMPrecise and PenaltyPrecise hold the refined SRB analysis
	// (Options.PreciseSRB): a fault miss map and penalty distribution
	// that are sound for fault maps with at most one entirely faulty
	// set. ProbMultiFullSets is P(two or more sets entirely faulty),
	// the additive term of the mixture bound. All nil/zero unless
	// PreciseSRB was requested.
	FMMPrecise        ipet.FMM
	PenaltyPrecise    *dist.Dist
	ProbMultiFullSets float64

	// DataModel and DataFMM hold the data-cache analysis when
	// Options.DataCache was set; the data-cache penalty is already
	// convolved into Penalty.
	DataModel fault.Model
	DataFMM   ipet.FMM
}

// Analyze runs the full pWCET analysis of one program.
func Analyze(p *program.Program, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	scn, err := opt.scenario()
	if err != nil {
		return nil, err
	}
	kind := scn.Kind()
	pfail, _ := fault.Components(scn)
	if kind != fault.KindPermanent && (opt.PreciseSRB || opt.DataCache != nil) {
		return nil, fmt.Errorf("core: %v scenario does not support PreciseSRB or DataCache (permanent only)", kind)
	}
	model, err := fault.NewModel(pfail, opt.Cache)
	if err != nil {
		return nil, err
	}
	// Soundness gate: the loop-bound constraints of IPET are only valid
	// if the recorded loops are exactly the CFG's natural loops and the
	// graph is reducible. Verified independently (internal/cfg).
	if err := cfg.VerifyLoopMetadata(p); err != nil {
		return nil, fmt.Errorf("core: %s: %w", p.Name, err)
	}
	if !cfg.Reducible(p) {
		return nil, fmt.Errorf("core: %s: irreducible control flow", p.Name)
	}

	if opt.DataCache != nil && opt.PreciseSRB {
		return nil, fmt.Errorf("core: PreciseSRB is not supported together with a data cache")
	}

	newSystem, newAnalyzer, newDataAnalyzer := ipet.NewSystem, absint.New, absint.NewData
	if opt.Reference {
		newSystem, newAnalyzer, newDataAnalyzer = ipet.NewReferenceSystem, absint.NewReference, absint.NewDataReference
	}
	sys, err := newSystem(p)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(p, opt.Cache)
	base := a.ClassifyAll()

	var da *absint.Analyzer
	var dbase []chmc.Class
	var dmodel fault.Model
	if opt.DataCache != nil {
		if err := opt.DataCache.Validate(); err != nil {
			return nil, fmt.Errorf("core: data cache: %w", err)
		}
		dmodel, err = fault.NewModel(pfail, *opt.DataCache)
		if err != nil {
			return nil, err
		}
		da = newDataAnalyzer(p, *opt.DataCache)
		dbase = da.ClassifyAll()
	}

	wres, err := ipet.WCETCombined(sys, a, base, da, dbase)
	if err != nil {
		return nil, err
	}

	// A pure Transient scenario has no permanent component: the fault
	// miss map (per-set misses as a function of permanently faulty
	// ways) is meaningless for it and is skipped entirely.
	var fmm ipet.FMM
	if kind != fault.KindTransient {
		fopt := ipet.FMMOptions{Mechanism: opt.Mechanism, Workers: opt.Workers}
		if opt.Mechanism == cache.MechanismSRB {
			fopt.SRBHit = a.ClassifySRB()
		}
		fmm, err = ipet.ComputeFMM(sys, a, base, fopt)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Program:       p.Name,
		Options:       opt,
		Scenario:      scn,
		Model:         model,
		FaultFreeWCET: wres.WCET,
		FMM:           fmm,
		HitRefs:       wres.HitRefs,
		FMRefs:        wres.FMRefs,
		MissRefs:      wres.MissRefs,
	}
	if kind != fault.KindPermanent {
		res.HitBounds, err = ipet.ComputeHitBounds(sys, a, base, ipet.HitBoundOptions{Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
	}
	if da != nil {
		dfopt := ipet.FMMOptions{Mechanism: opt.Mechanism, Workers: opt.Workers}
		if opt.Mechanism == cache.MechanismSRB {
			dfopt.SRBHit = da.ClassifySRB()
		}
		dfmm, err := ipet.ComputeFMM(sys, da, dbase, dfopt)
		if err != nil {
			return nil, err
		}
		res.DataModel = dmodel
		res.DataFMM = dfmm
	}
	if err := res.buildDistributions(opt.Workers); err != nil {
		return nil, err
	}
	if opt.PreciseSRB && opt.Mechanism == cache.MechanismSRB {
		if err := res.buildPreciseSRB(sys, a, base); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// buildDistributions derives the per-set penalty distributions from the
// FMM and the faulty-way probabilities, convolves them (including the
// data cache's, whose fault population is independent), folds in the
// transient extra-miss penalty when the scenario has one, and reads the
// pWCET quantile. workers bounds the convolution tree's parallelism
// (it may differ from Options.Workers when an Engine batch already
// fans out at query level); it never changes the result.
//
// The permanent stage runs exactly the historical code whenever an FMM
// is present; the transient stage is strictly appended after it, so a
// permanent-only scenario is byte-identical to the pre-scenario
// pipeline and Combined(pfail, lambda) convolves the two independent
// penalty distributions.
func (r *Result) buildDistributions(workers int) error {
	return r.buildDistributionsCancel(workers, nil)
}

// buildDistributionsCancel is buildDistributions with a cancellation
// probe threaded into the convolution reduction trees (nil disables it
// at zero cost). The probe is consulted at every merge node; on a
// non-nil probe error the stage unwinds with that error — partial
// distributions are discarded, never published on the Result.
func (r *Result) buildDistributionsCancel(workers int, probe func() error) error {
	cfg := r.Options.Cache
	penalty := dist.Degenerate(0)
	if r.FMM != nil {
		var err error
		r.PerSet, penalty, err = convolveFMM(r.FMM, cfg, r.Model, r.Options.Mechanism,
			penalty, r.Options.MaxSupport, r.Options.Coarsen, workers, r.Options.ExactConvolve, probe)
		if err != nil {
			return err
		}
		if r.DataFMM != nil {
			_, penalty, err = convolveFMM(r.DataFMM, *r.Options.DataCache, r.DataModel,
				r.Options.Mechanism, penalty, r.Options.MaxSupport, r.Options.Coarsen, workers,
				r.Options.ExactConvolve, probe)
			if err != nil {
				return err
			}
		}
	}
	if r.HitBounds != nil {
		// The window bound on any access's inter-access distance is a
		// bound on the whole run's duration: fault-free WCET, plus the
		// worst permanent penalty already materialized in the
		// accumulator, plus one miss penalty per vulnerable access (the
		// transient misses themselves lengthen the run).
		_, lambda := fault.Components(r.Scenario)
		window := r.FaultFreeWCET + penalty.Max() + cfg.MissPenalty()*r.HitBounds.Total()
		tm, err := fault.NewTransientModel(lambda, window)
		if err != nil {
			return err
		}
		r.Transient = tm
		penalty, err = convolveTransient(penalty, r.HitBounds, cfg, tm,
			r.Options.MaxSupport, r.Options.Coarsen, workers, r.Options.ExactConvolve, probe)
		if err != nil {
			return err
		}
	}
	r.Penalty = penalty
	r.PWCET = r.FaultFreeWCET + penalty.QuantileExceedance(r.Options.TargetExceedance)
	return nil
}

// convolveFMM convolves one cache's per-set penalty distributions into
// an accumulator distribution. The per-set distributions are reduced by
// dist.ConvolveAllWith's parallel pairwise tree (coarsening only the
// partial products that exceed maxSupport, with the configured
// strategy) and the result is folded into the accumulator; workers
// bounds the tree's parallelism. exact selects the retained reference
// executor instead (Options.ExactConvolve). probe, when non-nil, is the
// cancellation hook checked at every merge node of the reduction.
func convolveFMM(fmm ipet.FMM, cfg cache.Config, model fault.Model, mech cache.Mechanism,
	acc *dist.Dist, maxSupport int, strategy dist.CoarsenStrategy, workers int, exact bool,
	probe func() error) ([]*dist.Dist, *dist.Dist, error) {
	var pwf []float64
	if mech == cache.MechanismRW {
		pwf = fault.PWFReliableWay(cfg.Ways, model.PBF) // equation 3
	} else {
		pwf = fault.PWF(cfg.Ways, model.PBF) // equation 2
	}
	perSet := make([]*dist.Dist, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		pts := make([]dist.Point, 0, len(pwf))
		for f, prob := range pwf {
			pts = append(pts, dist.Point{
				Value: fmm[s][f] * cfg.MissPenalty(),
				Prob:  prob,
			})
		}
		d, err := dist.New(pts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: set %d penalty distribution: %w", s, err)
		}
		perSet[s] = d
	}
	reduce := dist.ConvolveAllCancelWith
	if exact {
		reduce = dist.ConvolveAllExactCancelWith
	}
	total, err := reduce(perSet, maxSupport, workers, strategy, probe)
	if err != nil {
		return nil, nil, err
	}
	acc = acc.Convolve(total).CoarsenToWith(maxSupport, strategy)
	return perSet, acc, nil
}

// convolveTransient folds the transient extra-miss penalty into the
// accumulator: per set, the step-scaled binomial distribution of extra
// misses — at most HitBounds[s] vulnerable accesses, each upset with
// the model's per-access probability — convolved across independent
// sets by the same reduction tree as the permanent stage. Each per-set
// binomial is coarsened to the support cap before entering the tree
// (unlike the permanent per-set distributions, whose support is at most
// Ways+1 atoms, a binomial can carry thousands). A zero PMiss
// contributes nothing and returns the accumulator unchanged, which is
// what makes Combined(pfail, lambda=0) byte-identical to
// Permanent(pfail). probe mirrors convolveFMM's cancellation hook.
func convolveTransient(acc *dist.Dist, hb ipet.HitBounds, cfg cache.Config, tm fault.TransientModel,
	maxSupport int, strategy dist.CoarsenStrategy, workers int, exact bool,
	probe func() error) (*dist.Dist, error) {
	if tm.PMiss == 0 {
		return acc, nil
	}
	perSet := make([]*dist.Dist, len(hb))
	for s, n := range hb {
		pts, err := fault.BinomialPoints(n, tm.PMiss, cfg.MissPenalty())
		if err != nil {
			return nil, fmt.Errorf("core: set %d transient distribution: %w", s, err)
		}
		d, err := dist.New(pts)
		if err != nil {
			return nil, fmt.Errorf("core: set %d transient distribution: %w", s, err)
		}
		perSet[s] = d.CoarsenToWith(maxSupport, strategy)
	}
	reduce := dist.ConvolveAllCancelWith
	if exact {
		reduce = dist.ConvolveAllExactCancelWith
	}
	total, err := reduce(perSet, maxSupport, workers, strategy, probe)
	if err != nil {
		return nil, err
	}
	return acc.Convolve(total).CoarsenToWith(maxSupport, strategy), nil
}

// PWCETAt returns the pWCET at an arbitrary exceedance probability,
// using the mixture bound when the precise SRB analysis is enabled.
func (r *Result) PWCETAt(p float64) int64 {
	if r.PenaltyPrecise != nil {
		return r.FaultFreeWCET + r.mixtureQuantile(p)
	}
	return r.FaultFreeWCET + r.Penalty.QuantileExceedance(p)
}

// ExceedanceCurve returns the complementary cumulative distribution of
// the pWCET (Figure 3): pairs (execution time, probability that the WCET
// exceeds it).
func (r *Result) ExceedanceCurve() []dist.Point {
	return r.Penalty.Shift(r.FaultFreeWCET).Curve()
}

// Gain returns the relative pWCET reduction of a protected architecture
// against a baseline (paper Section IV.B: gain of RW/SRB vs no
// protection).
func Gain(baseline, protected *Result) float64 {
	if baseline.PWCET == 0 {
		return 0
	}
	return 1 - float64(protected.PWCET)/float64(baseline.PWCET)
}

// AnalyzeAll runs the analysis for the three architectures of the paper's
// evaluation as one Engine batch, sharing the expensive common work: the
// cache analyses, the IPET system (with its warm simplex basis) and the
// FMM columns for f < W are identical across mechanisms; only the f = W
// column differs (absent for RW, SRB-filtered for SRB). The results are
// identical to three independent Analyze calls (asserted by tests) at
// roughly a third of the cost. Options fields that specialize a single
// mechanism (PreciseSRB, DataCache) are not supported here — use Analyze.
func AnalyzeAll(p *program.Program, opt Options) (map[cache.Mechanism]*Result, error) {
	if opt.PreciseSRB || opt.DataCache != nil {
		return nil, fmt.Errorf("core: AnalyzeAll does not support PreciseSRB or DataCache; call Analyze per mechanism")
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	e, err := NewEngine(p, EngineOptions{Workers: opt.Workers, Reference: opt.Reference, ExactConvolve: opt.ExactConvolve})
	if err != nil {
		return nil, err
	}
	mechs := []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB}
	queries := make([]Query, len(mechs))
	for i, m := range mechs {
		q := queryOf(opt)
		q.Mechanism = m
		queries[i] = q
	}
	results, err := e.AnalyzeBatch(queries)
	if err != nil {
		return nil, err
	}
	out := make(map[cache.Mechanism]*Result, len(mechs))
	for i, m := range mechs {
		out[m] = results[i]
	}
	return out, nil
}

// Classification bundles the reference classification of a program so
// reporting tools and tests can inspect it without re-running fixpoints.
type Classification struct {
	Refs    []absint.Ref
	Classes []chmc.Class
	SRBHit  []bool
}

// Classify runs only the cache analyses (no ILP) and returns the
// fault-free classification of every reference.
func Classify(p *program.Program, cfg cache.Config) *Classification {
	a := absint.New(p, cfg)
	return &Classification{Refs: a.Refs(), Classes: a.ClassifyAll(), SRBHit: a.ClassifySRB()}
}
