package core

// Robustness helpers of the Engine: the panic boundary that poisons an
// engine whose internal memo state can no longer be trusted, and the
// cancellation-error classifier shared by the memoized-artifact retry
// loops (see engine.go).

import (
	"context"
	"errors"
	"fmt"
)

// ErrPoisoned is returned (wrapped) by every Engine method after a
// query panicked inside the engine. A panic can interrupt memo-table
// construction at any point, so the engine's internal state is no
// longer trustworthy; callers must discard the engine and build a new
// one. internal/serve's pool does this automatically on release.
var ErrPoisoned = errors.New("core: engine poisoned by a previous panic")

// PanicError is the error a recovered analysis panic turns into: the
// engine's panic boundary (analyzeOnce) converts the panic into this
// error, poisons the engine and returns it to the caller instead of
// unwinding the process. Value is the recovered panic value and Stack
// the stack captured at the recovery point.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is available on the field
// for logs (internal/serve includes it in the daemon's error log).
func (p *PanicError) Error() string {
	return fmt.Sprintf("core: analysis panicked: %v", p.Value)
}

// poison marks the engine unusable, retaining the first panic.
func (e *Engine) poison(pe *PanicError) {
	e.panicVal.CompareAndSwap(nil, pe)
	e.poisoned.Store(true)
}

// poisonError builds the fail-fast error of a poisoned engine,
// identifying the original panic when it is known.
func (e *Engine) poisonError() error {
	if pe := e.panicVal.Load(); pe != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, pe.Value)
	}
	return ErrPoisoned
}

// Poisoned reports whether a query panicked inside the engine. A
// poisoned engine fails every call fast with ErrPoisoned and must be
// discarded; pool owners check this on release and never hand a
// poisoned engine out again.
func (e *Engine) Poisoned() bool { return e.poisoned.Load() }

// isCancelErr reports whether err stems from context cancellation (or
// deadline expiry) rather than a genuine analysis failure. The memo
// layers use it to decide stickiness: real errors are properties of the
// artifact key and stay cached, cancellation is a property of one
// query's context and must never outlive that query.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
