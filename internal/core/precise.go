package core

import (
	"math"
	"sort"

	"repro/internal/absint"
	"repro/internal/chmc"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ipet"
)

// This file implements the paper's future-work item (Section VI): "a
// more precise pWCET estimation technique for the SRB could be devised
// to limit the conservatism of the proposed technique".
//
// The conservative SRB analysis assumes every reference may reload the
// buffer, because any set could be entirely faulty. But the SRB is only
// consulted by references whose set IS entirely faulty; on a chip where
// at most one set is entirely faulty, the buffer is private to that set
// and retains its content across other sets' accesses, exposing
// temporal locality the conservative analysis discards.
//
// Let E be the number of entirely faulty sets, q = pbf^W, so
//
//	P(E >= 2) = 1 - (1-q)^S - S q (1-q)^(S-1).
//
// With D_prec the penalty distribution built from the per-set precise
// SRB classification (sound conditional on E <= 1) and D_cons the
// conservative one (sound unconditionally):
//
//	P(penalty > t) <= min( CCDF_cons(t), CCDF_prec(t) + P(E >= 2) )
//
// because {penalty > t} splits into {penalty > t, E <= 1}, whose
// probability CCDF_prec(t) upper-bounds, and {E >= 2}, whose probability
// is the additive term. The mixture is therefore a sound exceedance
// bound that is tighter whenever the target probability exceeds
// P(E >= 2) (about 8.4e-14 for the paper's configuration — so the
// paper's 1e-15 target cannot benefit, but certification targets of
// 1e-9..1e-12 do; the ablation bench quantifies this).

// probMultiFullSets returns P(E >= 2) for S independent sets whose
// probability of being entirely faulty is q = pbf^W each.
func probMultiFullSets(pbf float64, sets, ways int) float64 {
	q := math.Pow(pbf, float64(ways))
	s := float64(sets)
	return 1 - math.Pow(1-q, s) - s*q*math.Pow(1-q, s-1)
}

// buildPreciseSRB computes the precise FMM and attaches the precise
// penalty distribution to the result. Must be called after
// buildDistributions.
func (r *Result) buildPreciseSRB(sys *ipet.System, a *absint.Analyzer, base []chmc.Class) error {
	fmm, err := ipet.ComputeFMM(sys, a, base, ipet.FMMOptions{
		Mechanism:  r.Options.Mechanism,
		PreciseSRB: true,
		Workers:    r.Options.Workers,
	})
	if err != nil {
		return err
	}
	return r.attachPreciseSRB(fmm, r.Options.Workers)
}

// attachPreciseSRB derives the precise penalty distribution and the
// mixture pWCET from an already-computed precise FMM (Engine sessions
// memoize it across queries). workers bounds the convolution only.
func (r *Result) attachPreciseSRB(fmm ipet.FMM, workers int) error {
	cfg := r.Options.Cache
	r.FMMPrecise = fmm

	pwf := fault.PWF(cfg.Ways, r.Model.PBF)
	perSet := make([]*dist.Dist, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		pts := make([]dist.Point, 0, len(pwf))
		for f, prob := range pwf {
			pts = append(pts, dist.Point{Value: fmm[s][f] * cfg.MissPenalty(), Prob: prob})
		}
		d, err := dist.New(pts)
		if err != nil {
			return err
		}
		perSet[s] = d
	}
	reduce := dist.ConvolveAllWith
	if r.Options.ExactConvolve {
		reduce = dist.ConvolveAllExactWith
	}
	r.PenaltyPrecise = reduce(perSet, r.Options.MaxSupport, workers, r.Options.Coarsen)
	r.ProbMultiFullSets = probMultiFullSets(r.Model.PBF, cfg.Sets, cfg.Ways)
	r.PWCET = r.FaultFreeWCET + r.mixtureQuantile(r.Options.TargetExceedance)
	return nil
}

// MixtureCCDF returns the sound exceedance bound at penalty t combining
// the conservative and precise distributions (see file comment). When
// the precise analysis is disabled it degrades to the conservative CCDF.
func (r *Result) MixtureCCDF(t int64) float64 {
	cons := r.Penalty.CCDF(t)
	if r.PenaltyPrecise == nil {
		return cons
	}
	prec := r.PenaltyPrecise.CCDF(t) + r.ProbMultiFullSets
	return math.Min(cons, prec)
}

// mixtureQuantile returns the smallest penalty t with MixtureCCDF(t) <=
// target, scanning the union of both supports.
func (r *Result) mixtureQuantile(target float64) int64 {
	values := make([]int64, 0, r.Penalty.Len()+r.PenaltyPrecise.Len())
	for _, p := range r.Penalty.Points() {
		values = append(values, p.Value)
	}
	for _, p := range r.PenaltyPrecise.Points() {
		values = append(values, p.Value)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, v := range values {
		if r.MixtureCCDF(v) <= target {
			return v
		}
	}
	return values[len(values)-1]
}
