// Package serve implements the HTTP analysis service behind
// cmd/pwcetd: a thin, testable front end over the pwcet analysis
// engine (internal/core) for the interactive, many-query workloads a
// design-space exploration produces.
//
// POST /v1/batch accepts the cmd/pwcet -batch sweep specification
// (internal/batchspec) and streams one compact JSON row per line
// (NDJSON) as results complete, in the specification's grid order —
// byte-for-byte the rows `pwcet -batch spec.json -ndjson` prints for
// the same spec. Under the handlers sits an engine pool keyed by
// program fingerprint (warm engines are reused across requests) with
// whole-engine LRU eviction under pool pressure and a per-engine
// artifact byte budget (core.EngineOptions.MaxArtifactBytes), so a
// long-lived server holds its memory flat no matter how many distinct
// sweeps it serves.
//
// The server enforces API-key auth (Authorization: Bearer <key>),
// per-key token-bucket rate limits, a request body size limit and a
// per-batch time limit, and drains gracefully: after Drain, new
// requests get 503 while in-flight streams run to completion.
//
// GET /v1/benchmarks lists the built-in suite; GET /metrics exposes
// the request/row/pool counters and per-stage latency histograms as
// JSON; GET /healthz reports readiness; /debug/pprof serves the
// standard profiles.
package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/batchspec"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/malardalen"
)

// Options configures a Server.
type Options struct {
	// APIKeys are the accepted bearer tokens. Empty leaves the server
	// open — acceptable for tests and loopback use only; cmd/pwcetd
	// refuses to listen on non-loopback addresses without keys.
	APIKeys []string
	// RatePerSecond is each key's sustained request rate through a
	// token bucket of the given Burst (Burst 0 means 1). <= 0 disables
	// rate limiting. The unauthenticated (open) mode shares one bucket.
	RatePerSecond float64
	Burst         int
	// MaxBodyBytes caps the request body; 0 defaults to 1 MiB (a sweep
	// specification is a few hundred bytes). Oversized bodies get 413.
	MaxBodyBytes int64
	// BatchTimeout bounds one batch request's wall-clock time; a batch
	// that exceeds it ends with an NDJSON error line. 0 = unlimited.
	// The deadline also cancels the underlying engine computation (via
	// the request context), so a timed-out batch stops burning CPU.
	BatchTimeout time.Duration
	// SoftDeadline, when positive, arms the engine's degraded mode for
	// every batch query (core.Query.SoftDeadline): a query that cannot
	// finish within the deadline retries under a geometrically tighter
	// support cap and streams a row flagged "degraded": true — a sound,
	// less tight upper bound — instead of timing the whole batch out.
	// 0 keeps full precision for every row.
	SoftDeadline time.Duration
	// Workers is the default engine worker bound for specs that leave
	// their workers field at 0.
	Workers int
	// Pool configures engine pooling (see PoolOptions).
	Pool PoolOptions
	// Now injects a clock for rate-limit tests; nil uses time.Now.
	Now func() time.Time
}

// Server is the handler state. Create with New, expose via Handler,
// stop with Drain.
type Server struct {
	opt  Options
	pool *Pool
	met  *metrics

	mu       sync.Mutex
	buckets  map[string]*bucket
	draining bool
	inflight int
	idle     chan struct{}
}

// New builds a Server. The zero Options value yields an open,
// unlimited server with defaults suitable for tests.
func New(opt Options) *Server {
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 1 << 20
	}
	if opt.Burst <= 0 {
		opt.Burst = 1
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	return &Server{
		opt:     opt,
		pool:    NewPool(opt.Pool),
		met:     &metrics{},
		buckets: make(map[string]*bucket),
	}
}

// Pool exposes the server's engine pool (for stats and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Handler returns the route mux:
//
//	POST /v1/batch       run a sweep spec, stream NDJSON rows
//	GET  /v1/benchmarks  list the built-in benchmarks
//	GET  /metrics        JSON counters and latency histograms
//	GET  /healthz        200 ok / 503 draining
//	     /debug/pprof/*  standard pprof profiles
//
// Every route runs inside the panic-isolation middleware: a panicking
// handler is recovered into a 500 (when the response has not started
// streaming) and counted in /metrics as panic_recovered — one bad
// request can never take the daemon down.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.recoverPanics(mux)
}

// startedWriter tracks whether the response has started, so the panic
// middleware knows whether a 500 can still be written. It forwards
// Flush to keep the NDJSON streaming path working through the wrapper.
type startedWriter struct {
	http.ResponseWriter
	started bool
}

func (w *startedWriter) WriteHeader(code int) {
	w.started = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *startedWriter) Write(b []byte) (int, error) {
	w.started = true
	return w.ResponseWriter.Write(b)
}

func (w *startedWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recoverPanics is the per-request panic boundary of the service. Note
// the engine has its own boundary (core recovers analysis panics into
// *core.PanicError and poisons the engine), so what reaches here is
// handler-level bugs; either way the daemon stays up, the panic is
// counted, and a 500 is returned when nothing has been streamed yet.
// http.ErrAbortHandler passes through — it is net/http's own sentinel
// for deliberately dropping a connection, not a failure.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &startedWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.met.panicsRecovered.add(1)
			if !sw.started {
				errorJSON(sw, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// Drain stops accepting new batch requests (503) and waits for the
// in-flight ones to finish streaming, or for ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// track registers an in-flight request; the returned release must be
// called exactly once. ok is false while draining.
func (s *Server) track() (release func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight++
	return func() {
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 && s.idle != nil {
			close(s.idle)
			s.idle = nil
		}
		s.mu.Unlock()
	}, true
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, a ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, a...)})
}

// authenticate resolves the request's API key. With no configured keys
// the server is open and all requests share the anonymous identity.
func (s *Server) authenticate(r *http.Request) (key string, ok bool) {
	if len(s.opt.APIKeys) == 0 {
		return "", true
	}
	token := r.Header.Get("Authorization")
	token, found := strings.CutPrefix(token, "Bearer ")
	if !found {
		return "", false
	}
	for _, k := range s.opt.APIKeys {
		if subtle.ConstantTimeCompare([]byte(k), []byte(token)) == 1 {
			return k, true
		}
	}
	return "", false
}

// bucket is one key's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// allow takes one token from the key's bucket, refilled at
// RatePerSecond up to Burst.
func (s *Server) allow(key string) bool {
	if s.opt.RatePerSecond <= 0 {
		return true
	}
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[key]
	if b == nil {
		b = &bucket{tokens: float64(s.opt.Burst), last: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.opt.RatePerSecond
	if max := float64(s.opt.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// handleHealthz reports readiness: 200 while serving, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.requests.add(1)
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		errorJSON(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleMetrics renders the counters, histograms and pool stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.requests.add(1)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.met.snapshot(s.pool.Stats()))
}

// benchmarkJSON is one /v1/benchmarks entry.
type benchmarkJSON struct {
	Name      string `json:"name"`
	CodeBytes int    `json:"code_bytes"`
	Blocks    int    `json:"blocks"`
	Loops     int    `json:"loops"`
}

// handleBenchmarks lists the built-in suite.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.met.requests.add(1)
	if _, ok := s.authenticate(r); !ok {
		s.met.rejectedAuth.add(1)
		errorJSON(w, http.StatusUnauthorized, "missing or invalid API key")
		return
	}
	var out []benchmarkJSON
	for _, name := range malardalen.Names() {
		p := malardalen.MustGet(name)
		out = append(out, benchmarkJSON{
			Name: name, CodeBytes: p.CodeBytes(), Blocks: len(p.Blocks), Loops: len(p.Loops),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleBatch runs a sweep specification and streams its rows as
// NDJSON in grid order (benchmarks, then pfails x mechanisms x
// targets) — the byte-identical order of cmd/pwcet -batch -ndjson. An
// analysis error or timeout terminates the stream with a final
// {"error": ...} line; rows already streamed remain valid.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := s.opt.Now()
	s.met.requests.add(1)

	release, accepting := s.track()
	if !accepting {
		s.met.rejectedDraining.add(1)
		errorJSON(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer release()

	key, ok := s.authenticate(r)
	if !ok {
		s.met.rejectedAuth.add(1)
		errorJSON(w, http.StatusUnauthorized, "missing or invalid API key")
		return
	}
	if !s.allow(key) {
		s.met.rejectedRate.add(1)
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}

	spec, err := batchspec.Parse(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.met.rejectedSpec.add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			errorJSON(w, http.StatusRequestEntityTooLarge, "spec larger than %d bytes", tooLarge.Limit)
			return
		}
		errorJSON(w, http.StatusBadRequest, "batch spec: %v", err)
		return
	}
	s.met.specParse.observe(s.opt.Now().Sub(start))
	s.met.batches.add(1)

	var deadline time.Time
	rctx := r.Context()
	if s.opt.BatchTimeout > 0 {
		deadline = start.Add(s.opt.BatchTimeout)
		// The deadline also cancels the engine computation itself, so a
		// timed-out batch stops consuming CPU instead of racing on with
		// nobody listening. (The emit check below uses the injectable
		// clock; this context uses real time — both end the stream.)
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, s.opt.BatchTimeout)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Pwcet-Rows", fmt.Sprint(spec.NumRows()))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// emit writes one NDJSON line and reports whether streaming can
	// continue (false on client disconnect or timeout).
	clientGone := r.Context().Done()
	emit := func(v any) bool {
		if faultpoint.Enabled && faultpoint.Fires(faultpoint.SiteDisconnect) {
			// Chaos injection: behave exactly as if the client vanished
			// mid-stream — truncate the NDJSON stream and let the
			// disconnect path drain the batch and return the engine.
			s.met.clientDisconnects.add(1)
			return false
		}
		select {
		case <-clientGone:
			s.met.clientDisconnects.add(1)
			return false
		default:
		}
		if !deadline.IsZero() && s.opt.Now().After(deadline) {
			s.met.batchErrors.add(1)
			s.met.timeouts.add(1)
			enc.Encode(map[string]string{"error": "batch timeout exceeded"})
			return false
		}
		if err := enc.Encode(v); err != nil {
			s.met.clientDisconnects.add(1)
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for _, name := range spec.Benchmarks {
		prog := malardalen.MustGet(name)
		prep := s.opt.Now()
		handle, err := s.pool.Acquire(prog, spec.EngineOptions(s.opt.Workers))
		if err != nil {
			s.met.batchErrors.add(1)
			emit(map[string]string{"error": fmt.Sprintf("%s: %v", name, err)})
			return
		}
		s.met.enginePrep.observe(s.opt.Now().Sub(prep))

		queries := spec.Queries()
		if s.opt.SoftDeadline > 0 {
			for i := range queries {
				queries[i].SoftDeadline = s.opt.SoftDeadline
			}
		}
		ch := handle.Engine().AnalyzeBatchChanContext(rctx, queries)
		// Reassemble completion order into grid order: each row streams
		// as soon as it and all lower-index rows are done. The channel
		// is buffered for the whole batch, so when the client vanishes
		// mid-stream the producers never block — the background drain
		// below just discards the leftovers and returns the engine to
		// the pool, which therefore cannot wedge.
		done := make([]*core.BatchResult, len(queries))
		next := 0
		streaming := true
		for br := range ch {
			done[br.Index] = &br
			for streaming && next < len(done) && done[next] != nil {
				res := done[next]
				if res.Err != nil {
					s.met.batchErrors.add(1)
					switch {
					case errors.Is(res.Err, context.Canceled):
						s.met.canceled.add(1)
					case errors.Is(res.Err, context.DeadlineExceeded):
						s.met.timeouts.add(1)
					}
					var pe *core.PanicError
					if errors.As(res.Err, &pe) {
						// The engine recovered an analysis panic and
						// poisoned itself; Release below drops it from the
						// pool so it is never handed out again.
						s.met.panicsRecovered.add(1)
					}
					emit(map[string]string{"error": fmt.Sprintf("%s: %v", name, res.Err)})
					streaming = false
					break
				}
				if res.Result.Degraded {
					s.met.degradedRows.add(1)
				}
				if !emit(batchspec.RowOf(name, res.Query, res.Result)) {
					streaming = false
					break
				}
				s.met.rowsStreamed.add(1)
				s.met.rowLatency.observe(s.opt.Now().Sub(start))
				next++
			}
			if !streaming {
				break
			}
		}
		if !streaming {
			go func() {
				for range ch {
				}
				handle.Release()
			}()
			return
		}
		handle.Release()
	}
	s.met.batchLatency.observe(s.opt.Now().Sub(start))
}
