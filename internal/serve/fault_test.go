//go:build pwcetfault

package serve

import (
	"net/http"
	"testing"

	"repro/internal/faultpoint"
)

// TestInjectedDisconnectTruncatesWithoutWedging: the serve.disconnect
// fault behaves exactly like a client vanishing mid-stream — the NDJSON
// stream is cut at a row boundary, the disconnect is counted, and the
// pooled engine is returned so the next request streams the full sweep.
func TestInjectedDisconnectTruncatesWithoutWedging(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Enable(faultpoint.SiteDisconnect, "on,after=2,count=1"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{})
	spec := `{"benchmarks":["bs"],"pfails":[1e-5,1e-4],"mechanisms":["none","srb"]}`

	resp := postSpec(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	rows := readRows(t, resp.Body)
	if len(rows) != 2 {
		t.Fatalf("streamed %d rows, want 2 before the injected disconnect", len(rows))
	}

	// The fault window (count=1) is spent: the retry must stream all 4
	// rows from the same, un-wedged pool.
	resp = postSpec(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d", resp.StatusCode)
	}
	if rows := readRows(t, resp.Body); len(rows) != 4 {
		t.Fatalf("retry streamed %d rows, want 4", len(rows))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	m := decodeMetrics(t, mresp.Body)
	if m.ClientDisconnects != 1 {
		t.Errorf("client_disconnects = %d, want 1", m.ClientDisconnects)
	}
	if m.PanicsRecovered != 0 || m.BatchErrors != 0 {
		t.Errorf("injected disconnect misclassified: %+v", m)
	}
}
