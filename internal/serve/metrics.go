package serve

import (
	"sync"
	"time"
)

// numLatencyBuckets counts the bounded buckets of latencyBuckets; one
// more unbounded overflow bucket follows them.
const numLatencyBuckets = 21

// latencyBuckets are the upper bounds (exclusive) of the latency
// histogram, exponential from 100µs to ~105s; the last bucket is
// unbounded. Chosen to straddle the measured per-query analysis times
// (tens of microseconds for warm engines, tens of milliseconds cold).
var latencyBuckets = [numLatencyBuckets]time.Duration{
	100 * time.Microsecond,
	200 * time.Microsecond,
	400 * time.Microsecond,
	800 * time.Microsecond,
	1600 * time.Microsecond,
	3200 * time.Microsecond,
	6400 * time.Microsecond,
	12800 * time.Microsecond,
	25600 * time.Microsecond,
	51200 * time.Microsecond,
	102400 * time.Microsecond,
	204800 * time.Microsecond,
	409600 * time.Microsecond,
	819200 * time.Microsecond,
	1638400 * time.Microsecond,
	3276800 * time.Microsecond,
	6553600 * time.Microsecond,
	13107200 * time.Microsecond,
	26214400 * time.Microsecond,
	52428800 * time.Microsecond,
	104857600 * time.Microsecond,
}

// histogram is a fixed-bucket latency histogram. Safe for concurrent
// use.
type histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	buckets [numLatencyBuckets + 1]uint64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBuckets) && d >= latencyBuckets[i] {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// histogramBucket is one rendered histogram bucket: the inclusive
// upper bound in milliseconds (0 marks the unbounded overflow bucket)
// and the number of observations that fell under it.
type histogramBucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    uint64  `json:"count"`
}

// histogramJSON is the rendered form of a histogram. Buckets with zero
// observations are omitted to keep /metrics readable.
type histogramJSON struct {
	Count    uint64            `json:"count"`
	SumMs    float64           `json:"sum_ms"`
	MeanMs   float64           `json:"mean_ms"`
	Nonempty []histogramBucket `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() histogramJSON {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := histogramJSON{Count: h.count, SumMs: float64(h.sum) / float64(time.Millisecond)}
	if h.count > 0 {
		out.MeanMs = out.SumMs / float64(h.count)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := histogramBucket{Count: c}
		if i < len(latencyBuckets) {
			b.LEMillis = float64(latencyBuckets[i]) / float64(time.Millisecond)
		}
		out.Nonempty = append(out.Nonempty, b)
	}
	return out
}

// counter is a mutex-guarded uint64 counter (contention here is
// trivial next to the analyses the requests run).
type counter struct {
	mu sync.Mutex
	v  uint64
}

func (c *counter) add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

func (c *counter) get() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// metrics aggregates the server's observability counters, exposed as
// JSON by the /metrics handler.
type metrics struct {
	requests          counter // HTTP requests accepted by any handler
	rejectedAuth      counter // 401s
	rejectedRate      counter // 429s
	rejectedSpec      counter // 400/413s (malformed or oversized specs)
	rejectedDraining  counter // 503s during drain
	batches           counter // batch requests that started streaming
	batchErrors       counter // batches terminated by an analysis error or timeout
	rowsStreamed      counter // NDJSON result rows written
	clientDisconnects counter // batches cut short by the client
	canceled          counter // queries canceled via the request context
	timeouts          counter // batches/queries ended by a deadline
	degradedRows      counter // rows served by the engine's degraded mode
	panicsRecovered   counter // panics recovered into errors (handler or engine)

	specParse    histogram // spec decode+validate latency
	enginePrep   histogram // pool acquire latency (cold = engine build)
	rowLatency   histogram // per-row latency, request start to row write
	batchLatency histogram // whole-batch latency, request start to last row
}

// metricsJSON is the /metrics response body.
type metricsJSON struct {
	Requests          uint64 `json:"requests"`
	RejectedAuth      uint64 `json:"rejected_auth"`
	RejectedRate      uint64 `json:"rejected_rate_limit"`
	RejectedSpec      uint64 `json:"rejected_spec"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	Batches           uint64 `json:"batches"`
	BatchErrors       uint64 `json:"batch_errors"`
	RowsStreamed      uint64 `json:"rows_streamed"`
	ClientDisconnects uint64 `json:"client_disconnects"`
	Canceled          uint64 `json:"canceled"`
	Timeouts          uint64 `json:"timeout"`
	DegradedRows      uint64 `json:"degraded"`
	PanicsRecovered   uint64 `json:"panic_recovered"`

	Pool PoolStats `json:"engine_pool"`

	SpecParse    histogramJSON `json:"spec_parse_latency"`
	EnginePrep   histogramJSON `json:"engine_prep_latency"`
	RowLatency   histogramJSON `json:"row_latency"`
	BatchLatency histogramJSON `json:"batch_latency"`
}

func (m *metrics) snapshot(pool PoolStats) metricsJSON {
	return metricsJSON{
		Requests:          m.requests.get(),
		RejectedAuth:      m.rejectedAuth.get(),
		RejectedRate:      m.rejectedRate.get(),
		RejectedSpec:      m.rejectedSpec.get(),
		RejectedDraining:  m.rejectedDraining.get(),
		Batches:           m.batches.get(),
		BatchErrors:       m.batchErrors.get(),
		RowsStreamed:      m.rowsStreamed.get(),
		ClientDisconnects: m.clientDisconnects.get(),
		Canceled:          m.canceled.get(),
		Timeouts:          m.timeouts.get(),
		DegradedRows:      m.degradedRows.get(),
		PanicsRecovered:   m.panicsRecovered.get(),
		Pool:              pool,
		SpecParse:         m.specParse.snapshot(),
		EnginePrep:        m.enginePrep.snapshot(),
		RowLatency:        m.rowLatency.snapshot(),
		BatchLatency:      m.batchLatency.snapshot(),
	}
}
