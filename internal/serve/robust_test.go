package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/malardalen"
)

func decodeMetrics(t *testing.T, r io.Reader) metricsJSON {
	t.Helper()
	var m metricsJSON
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRecoverPanicsMiddleware: a panicking handler becomes a 500 plus
// a panic_recovered count when nothing has been written yet, a counted
// connection drop when streaming already started, and ErrAbortHandler
// passes through untouched (net/http's deliberate-drop sentinel).
func TestRecoverPanicsMiddleware(t *testing.T) {
	s := New(Options{})

	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if got := s.met.panicsRecovered.get(); got != 1 {
		t.Fatalf("panic_recovered = %d, want 1", got)
	}

	h = s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "partial")
		panic("late bug")
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "partial" {
		t.Fatalf("started response rewritten: %d %q", rec.Code, rec.Body.String())
	}
	if got := s.met.panicsRecovered.get(); got != 2 {
		t.Fatalf("panic_recovered = %d, want 2", got)
	}

	h = s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("ErrAbortHandler swallowed, recovered %v", r)
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	}()
	if got := s.met.panicsRecovered.get(); got != 2 {
		t.Fatalf("ErrAbortHandler counted as a recovered panic (%d)", got)
	}
}

// poisonEngine drives the handle's engine into the poisoned state by
// running a query whose instrumentation hook panics.
func poisonEngine(t *testing.T, eng *core.Engine) {
	t.Helper()
	if _, err := eng.Analyze(core.Query{Pfail: 1e-4}); err == nil {
		t.Fatal("panicking query reported success")
	}
	if !eng.Poisoned() {
		t.Fatal("engine not poisoned")
	}
}

// TestPoolDropsPoisonedEngine: an engine poisoned by a panicking query
// is evicted on Release and never handed out again — concurrent and
// subsequent Acquires get a fresh engine, and the eviction is counted.
func TestPoolDropsPoisonedEngine(t *testing.T) {
	prog := malardalen.MustGet("bs")
	p := NewPool(PoolOptions{})
	armed := true
	opt := core.EngineOptions{Hook: func(core.ArtifactEvent) {
		if armed {
			panic("injected")
		}
	}}

	h1, err := p.Acquire(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	poisonEngine(t, h1.Engine())

	// An Acquire while the poisoning lease is still in flight must not
	// reuse the poisoned entry.
	armed = false
	h2, err := p.Acquire(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Engine() == h1.Engine() {
		t.Fatal("pool handed out a poisoned engine")
	}
	if _, err := h2.Engine().Analyze(core.Query{Pfail: 1e-4}); err != nil {
		t.Fatalf("replacement engine broken: %v", err)
	}
	h1.Release()
	h2.Release()

	st := p.Stats()
	if st.PoisonedEvictions != 1 {
		t.Errorf("poisoned_engines = %d, want 1", st.PoisonedEvictions)
	}
	if st.Engines != 1 {
		t.Errorf("resident engines = %d, want 1 (the healthy replacement)", st.Engines)
	}
}

// TestReleaseExactlyOnce: a second Release is a no-op in regular
// builds and a panic under -tags pwcetcheck — either way the refcount
// stays correct and the entry remains evictable exactly once.
func TestReleaseExactlyOnce(t *testing.T) {
	prog := malardalen.MustGet("bs")
	p := NewPool(PoolOptions{})
	h, err := p.Acquire(prog, core.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	if checkEnabled {
		defer func() {
			if recover() == nil {
				t.Fatal("double Release did not panic under pwcetcheck")
			}
		}()
		h.Release()
		return
	}
	h.Release() // absorbed
	p.mu.Lock()
	refs := h.entry.refs
	p.mu.Unlock()
	if refs != 0 {
		t.Fatalf("refcount corrupted by double release: %d", refs)
	}
	// The entry must still be acquirable and consistent.
	h2, err := p.Acquire(prog, core.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats after double release: %+v", st)
	}
}

// TestSoftDeadlineStreamsDegradedRows: with the server-level soft
// deadline armed at an unmeetable 1ns, every row still arrives (no
// 504s, no error lines), is flagged "degraded": true, and the degraded
// counter shows up in /metrics.
func TestSoftDeadlineStreamsDegradedRows(t *testing.T) {
	_, ts := newTestServer(t, Options{SoftDeadline: time.Nanosecond})
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-5,1e-4],"mechanisms":["none","srb"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	rows := readRows(t, resp.Body)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.Degraded {
			t.Errorf("row %s/%s/%g not flagged degraded", r.Benchmark, r.Mechanism, r.Pfail)
		}
		if r.PWCET <= 0 {
			t.Errorf("degraded row carries implausible pWCET %d", r.PWCET)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	m := decodeMetrics(t, mresp.Body)
	if m.DegradedRows != 4 {
		t.Errorf("degraded counter = %d, want 4", m.DegradedRows)
	}
	if m.Timeouts != 0 || m.BatchErrors != 0 {
		t.Errorf("degraded mode leaked timeouts/errors: %+v", m)
	}
}

// TestDegradedOffByDefault: without SoftDeadline the same sweep streams
// rows without the degraded flag — the field stays absent from the
// wire (omitempty), keeping historical byte-identity.
func TestDegradedOffByDefault(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-4],"mechanisms":["none"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || body[0] != '{' {
		t.Fatalf("no rows streamed: %q", body)
	}
	if strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded field leaked into non-degraded rows: %s", body)
	}
}
