//go:build !pwcetcheck

package serve

// checkEnabled is off in regular builds: a double Release is absorbed
// as a no-op (the released flag already makes it harmless); pwcetcheck
// builds panic instead so tests catch the bug at its source.
const checkEnabled = false
