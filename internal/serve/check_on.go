//go:build pwcetcheck

package serve

// checkEnabled arms the package's internal sanity assertions, mirroring
// internal/dist's pwcetcheck mode: a double-released pool Handle panics
// at the offending call site instead of silently racing the refcount.
const checkEnabled = true
