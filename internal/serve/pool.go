package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/program"
)

// PoolOptions configures the engine pool.
type PoolOptions struct {
	// MaxEngines bounds the number of resident engines; when a new
	// engine would exceed it, the least-recently-used unreferenced
	// engine is evicted whole (its memoized artifacts recompute on the
	// next request for that program). <= 0 keeps every engine resident.
	MaxEngines int
	// MaxArtifactBytes is the per-engine artifact byte budget
	// (EngineOptions.MaxArtifactBytes) applied to every pooled engine.
	// <= 0 leaves each engine unbounded — only safe together with a
	// MaxEngines bound and a bounded program population.
	MaxArtifactBytes int64
}

// poolKey identifies a shareable warm engine: the program's content
// fingerprint plus the engine options that change behavior or
// scheduling. Two requests naming byte-identical programs with the
// same options share one engine; artifact memoization then makes the
// second request cheap.
type poolKey struct {
	fingerprint string
	workers     int
	exact       bool
}

type poolEntry struct {
	key  poolKey
	eng  *core.Engine
	refs int    // in-flight batches using this engine
	seq  uint64 // last-use stamp for LRU eviction
}

// Handle is a leased engine. Callers must Release it when the batch is
// done — including batches cut short by a client disconnect or a
// handler panic — or the entry stays pinned in the pool forever.
type Handle struct {
	pool  *Pool
	entry *poolEntry
	// released makes Release idempotent-safe under races between the
	// handler's deferred release, the background drain goroutine and
	// the panic-recovery path: the first call wins, any later call is a
	// no-op (and panics under the pwcetcheck build so tests catch the
	// double-release bug at its source). Guarded by pool.mu.
	released bool
}

// Engine returns the leased engine. Valid until Release, and safe to
// keep using even if the pool evicts the entry mid-batch (eviction
// only drops the pool's reference; the engine object keeps working).
func (h *Handle) Engine() *core.Engine { return h.entry.eng }

// Release returns the lease exactly once; extra calls are no-ops (a
// panic under pwcetcheck builds). If the engine was poisoned by a
// panicking query while leased, Release also drops it from the pool so
// it is never handed out again — in-flight leases on other handles keep
// their (fail-fast, ErrPoisoned-returning) reference until they too
// release.
func (h *Handle) Release() {
	p := h.pool
	p.mu.Lock()
	if h.released {
		p.mu.Unlock()
		if checkEnabled {
			panic("serve: pool Handle released twice")
		}
		return
	}
	h.released = true
	e := h.entry
	e.refs--
	if e.eng.Poisoned() && p.engines[e.key] == e {
		delete(p.engines, e.key)
		p.poisoned++
	}
	p.evictLocked()
	p.mu.Unlock()
}

// Pool shares warm analysis engines across requests, keyed by program
// fingerprint. Engines are expensive to build (IPET system
// construction) and accumulate valuable memoized artifacts, so the
// service reuses them; MaxEngines bounds how many stay resident and
// MaxArtifactBytes bounds what each one retains. Safe for concurrent
// use.
type Pool struct {
	opt PoolOptions

	mu        sync.Mutex
	engines   map[poolKey]*poolEntry
	seq       uint64
	hits      uint64
	misses    uint64
	evictions uint64
	poisoned  uint64
}

// NewPool builds an empty engine pool.
func NewPool(opt PoolOptions) *Pool {
	return &Pool{opt: opt, engines: make(map[poolKey]*poolEntry)}
}

// Acquire leases the pool's engine for the program under the given
// options, building one on first use. The options' MaxArtifactBytes is
// overridden by the pool's per-engine budget.
func (p *Pool) Acquire(prog *program.Program, opt core.EngineOptions) (*Handle, error) {
	key := poolKey{fingerprint: prog.Fingerprint(), workers: opt.Workers, exact: opt.ExactConvolve}

	p.mu.Lock()
	if e, ok := p.engines[key]; ok && !e.eng.Poisoned() {
		e.refs++
		p.seq++
		e.seq = p.seq
		p.hits++
		p.mu.Unlock()
		return &Handle{pool: p, entry: e}, nil
	} else if ok {
		// A resident engine was poisoned by a panicking query: drop it
		// now (normally Release does this, but the poisoning lease may
		// still be in flight) and build a replacement below.
		delete(p.engines, key)
		p.poisoned++
	}
	p.misses++
	p.mu.Unlock()

	// Build outside the lock: engine construction verifies the program
	// and assembles the IPET system, which must not block unrelated
	// acquires. Two concurrent misses on the same key may both build;
	// the loser's engine is discarded below — wasted work, never wrong
	// results.
	opt.MaxArtifactBytes = p.opt.MaxArtifactBytes
	eng, err := core.NewEngine(prog, opt)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.engines[key]; ok && !e.eng.Poisoned() {
		e.refs++
		p.seq++
		e.seq = p.seq
		p.hits++
		return &Handle{pool: p, entry: e}, nil
	} else if ok {
		delete(p.engines, key)
		p.poisoned++
	}
	p.seq++
	e := &poolEntry{key: key, eng: eng, refs: 1, seq: p.seq}
	p.engines[key] = e
	p.evictLocked()
	return &Handle{pool: p, entry: e}, nil
}

// evictLocked evicts least-recently-used unreferenced engines until
// the pool fits MaxEngines. Entries with in-flight batches are never
// evicted; the pool may therefore transiently exceed the bound.
func (p *Pool) evictLocked() {
	if p.opt.MaxEngines <= 0 {
		return
	}
	for len(p.engines) > p.opt.MaxEngines {
		var victim *poolEntry
		//pwcetlint:ordered selects the minimum-seq unreferenced entry; min over disjoint entries is order-independent (seq stamps are unique)
		for _, e := range p.engines {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(p.engines, victim.key)
		p.evictions++
	}
}

// PoolStats is a snapshot of the pool, embedded in /metrics.
type PoolStats struct {
	// Engines is the number of resident engines; MaxEngines echoes the
	// configured bound (0 = unbounded).
	Engines    int `json:"engines"`
	MaxEngines int `json:"max_engines"`
	// Hits and Misses count Acquire calls that found / had to build an
	// engine; Evictions counts whole engines dropped under pressure.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// PoisonedEvictions counts engines dropped because a query panicked
	// inside them (core.ErrPoisoned); each is rebuilt on next demand.
	PoisonedEvictions uint64 `json:"poisoned_engines"`
	// ArtifactBytes is the estimated resident memoized-artifact bytes
	// summed over all pooled engines (each engine's MemStats);
	// MaxArtifactBytes echoes the per-engine budget.
	ArtifactBytes    int64 `json:"artifact_bytes"`
	MaxArtifactBytes int64 `json:"max_artifact_bytes_per_engine"`
	// ArtifactEvictions sums the per-engine artifact eviction counts —
	// the churn MaxArtifactBytes causes inside resident engines.
	ArtifactEvictions uint64 `json:"artifact_evictions"`
}

// Stats returns a consistent snapshot of the pool counters and the
// summed artifact residency of its engines.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Engines:           len(p.engines),
		MaxEngines:        p.opt.MaxEngines,
		Hits:              p.hits,
		Misses:            p.misses,
		Evictions:         p.evictions,
		PoisonedEvictions: p.poisoned,
		MaxArtifactBytes:  p.opt.MaxArtifactBytes,
	}
	//pwcetlint:ordered commutative sums over all resident engines; addition of integers is order-independent
	for _, e := range p.engines {
		ms := e.eng.MemStats()
		st.ArtifactBytes += ms.ArtifactBytes
		st.ArtifactEvictions += ms.Evictions
	}
	return st
}
