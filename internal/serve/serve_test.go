package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	pwcet "repro"
	"repro/internal/batchspec"
	"repro/internal/malardalen"
)

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSpec(t *testing.T, url, spec string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/batch", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// readRows decodes the NDJSON body; any {"error": ...} line fails the
// test.
func readRows(t *testing.T, body io.Reader) []batchspec.Row {
	t.Helper()
	var rows []batchspec.Row
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", sc.Text(), err)
		}
		if msg, ok := probe["error"]; ok {
			t.Fatalf("stream ended with error line: %v", msg)
		}
		var row batchspec.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestBatchStreamMatchesEngine: the streamed rows arrive in grid order
// and equal the rows a direct engine batch produces for the same spec.
func TestBatchStreamMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := `{
		"benchmarks": ["bs", "fibcall"],
		"pfails": [1e-5, 1e-3],
		"mechanisms": ["none", "srb"],
		"targets": [1e-9, 1e-15]
	}`
	resp := postSpec(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	if rows := resp.Header.Get("X-Pwcet-Rows"); rows != "16" {
		t.Errorf("X-Pwcet-Rows %q, want 16", rows)
	}
	got := readRows(t, resp.Body)

	parsed, err := batchspec.Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var want []batchspec.Row
	for _, name := range parsed.Benchmarks {
		p := malardalen.MustGet(name)
		eng, err := pwcet.NewEngine(p, parsed.EngineOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		queries := parsed.Queries()
		results, err := eng.AnalyzeBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, batchspec.Rows(name, queries, results)...)
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestBatchStreamTransientMatchesEngine extends the byte-identity
// guarantee to the scenario layer: a combined permanent+transient sweep
// streamed by the service equals the rows of a direct engine batch,
// including the fault_model and lambda columns.
func TestBatchStreamTransientMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := `{
		"benchmarks": ["bs"],
		"fault_model": "combined",
		"pfails": [0, 1e-3],
		"lambdas": [0, 1e-10],
		"mechanisms": ["none", "srb"]
	}`
	resp := postSpec(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rows := resp.Header.Get("X-Pwcet-Rows"); rows != "8" {
		t.Errorf("X-Pwcet-Rows %q, want 8", rows)
	}
	got := readRows(t, resp.Body)

	parsed, err := batchspec.Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	p := malardalen.MustGet("bs")
	eng, err := pwcet.NewEngine(p, parsed.EngineOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	queries := parsed.Queries()
	results, err := eng.AnalyzeBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	want := batchspec.Rows("bs", queries, results)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].FaultModel != "combined" {
			t.Errorf("row %d fault_model %q, want combined", i, got[i].FaultModel)
		}
	}
}

// TestHandlerTable covers the rejection paths: wrong method, malformed
// and oversized specs, and missing or wrong API keys.
func TestHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Options{
		APIKeys:      []string{"secret-key", "other-key"},
		MaxBodyBytes: 512,
	})
	auth := map[string]string{"Authorization": "Bearer secret-key"}
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		header     map[string]string
		wantStatus int
		wantBody   string
	}{
		{"wrong method", http.MethodGet, "/v1/batch", "", auth, http.StatusMethodNotAllowed, ""},
		{"no key", http.MethodPost, "/v1/batch", `{"pfails":[1e-4]}`, nil, http.StatusUnauthorized, "API key"},
		{"wrong key", http.MethodPost, "/v1/batch", `{"pfails":[1e-4]}`,
			map[string]string{"Authorization": "Bearer nope"}, http.StatusUnauthorized, "API key"},
		{"wrong scheme", http.MethodPost, "/v1/batch", `{"pfails":[1e-4]}`,
			map[string]string{"Authorization": "Basic secret-key"}, http.StatusUnauthorized, "API key"},
		{"benchmarks no key", http.MethodGet, "/v1/benchmarks", "", nil, http.StatusUnauthorized, "API key"},
		{"syntax error", http.MethodPost, "/v1/batch", `{`, auth, http.StatusBadRequest, "batch spec"},
		{"no pfails", http.MethodPost, "/v1/batch", `{"benchmarks":["bs"]}`, auth, http.StatusBadRequest, "pfails must be non-empty"},
		{"unknown field", http.MethodPost, "/v1/batch", `{"pfails":[1e-4],"wat":1}`, auth, http.StatusBadRequest, "unknown field"},
		{"unknown benchmark", http.MethodPost, "/v1/batch", `{"pfails":[1e-4],"benchmarks":["nope"]}`, auth, http.StatusBadRequest, "unknown benchmark"},
		{"bad mechanism", http.MethodPost, "/v1/batch", `{"pfails":[1e-4],"mechanisms":["bogus"]}`, auth, http.StatusBadRequest, "unknown mechanism"},
		{"oversized body", http.MethodPost, "/v1/batch",
			`{"pfails":[1e-4],"benchmarks":[` + strings.Repeat(`"bs",`, 200) + `"bs"]}`,
			auth, http.StatusRequestEntityTooLarge, "larger than"},
		{"healthz", http.MethodGet, "/healthz", "", nil, http.StatusOK, "ok"},
		{"metrics", http.MethodGet, "/metrics", "", nil, http.StatusOK, "engine_pool"},
		{"benchmarks", http.MethodGet, "/v1/benchmarks", "", auth, http.StatusOK, `"bs"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.header {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantBody != "" && !strings.Contains(string(body), tc.wantBody) {
				t.Errorf("body %q missing %q", body, tc.wantBody)
			}
		})
	}

	// A valid key passes auth and streams.
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-4],"mechanisms":["none"]}`, auth)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key rejected: %d", resp.StatusCode)
	}
	if rows := readRows(t, resp.Body); len(rows) != 1 {
		t.Errorf("%d rows, want 1", len(rows))
	}
}

// TestRateLimit: each key has its own token bucket on the injected
// clock — burst, rejection, refill, isolation between keys.
func TestRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	_, ts := newTestServer(t, Options{
		APIKeys:       []string{"alpha", "beta"},
		RatePerSecond: 1,
		Burst:         2,
		Now:           clock,
	})
	spec := `{"benchmarks":["bs"],"pfails":[1e-4],"mechanisms":["none"]}`
	status := func(key string) int {
		resp := postSpec(t, ts.URL, spec, map[string]string{"Authorization": "Bearer " + key})
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if s := status("alpha"); s != http.StatusOK {
		t.Fatalf("1st request: %d", s)
	}
	if s := status("alpha"); s != http.StatusOK {
		t.Fatalf("2nd request (burst): %d", s)
	}
	if s := status("alpha"); s != http.StatusTooManyRequests {
		t.Fatalf("3rd request: %d, want 429", s)
	}
	// The other key has its own bucket.
	if s := status("beta"); s != http.StatusOK {
		t.Fatalf("other key rejected: %d", s)
	}
	// One second refills one token.
	advance(time.Second)
	if s := status("alpha"); s != http.StatusOK {
		t.Fatalf("post-refill request: %d", s)
	}
	if s := status("alpha"); s != http.StatusTooManyRequests {
		t.Fatalf("refill must add one token, not reset the burst: %d", s)
	}
}

// TestClientDisconnectDoesNotWedgePool: a client that vanishes
// mid-stream must not pin the pool — the engine is returned and the
// next request (same program, MaxEngines=1) completes normally.
func TestClientDisconnectDoesNotWedgePool(t *testing.T) {
	srv, ts := newTestServer(t, Options{Pool: PoolOptions{MaxEngines: 1}})
	spec := `{"benchmarks":["adpcm"],"pfails":[1e-6,1e-5,1e-4,1e-3],"mechanisms":["none","rw","srb"]}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one row, then walk away mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The pool must recover: the same program analyzes again through
	// the single pool slot, to completion.
	resp2 := postSpec(t, ts.URL, spec, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: %d", resp2.StatusCode)
	}
	if rows := readRows(t, resp2.Body); len(rows) != 12 {
		t.Fatalf("post-disconnect rows %d, want 12", len(rows))
	}
	st := srv.Pool().Stats()
	if st.Engines > 1 {
		t.Errorf("pool over bound after disconnect: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("second request should reuse the warm engine: %+v", st)
	}
	// The disconnect metric lands asynchronously with the aborted
	// handler; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.met.clientDisconnects.get() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.met.clientDisconnects.get() == 0 {
		t.Error("client disconnect not counted")
	}
}

// TestPoolEvictionAndReuse: the pool caps resident engines, evicts LRU
// whole engines, and reuses warm ones.
func TestPoolEvictionAndReuse(t *testing.T) {
	srv, ts := newTestServer(t, Options{Pool: PoolOptions{MaxEngines: 2}})
	spec := func(bench string) string {
		return fmt.Sprintf(`{"benchmarks":[%q],"pfails":[1e-4],"mechanisms":["none"]}`, bench)
	}
	for _, bench := range []string{"bs", "fibcall", "crc", "bs"} {
		resp := postSpec(t, ts.URL, spec(bench), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", bench, resp.StatusCode)
		}
		readRows(t, resp.Body)
	}
	st := srv.Pool().Stats()
	if st.Engines > 2 {
		t.Errorf("resident engines %d exceed MaxEngines 2", st.Engines)
	}
	if st.Evictions == 0 {
		t.Error("three distinct programs through two slots evicted nothing")
	}
	if st.Misses < 3 {
		t.Errorf("misses %d, want >= 3 (one per distinct program)", st.Misses)
	}
}

// TestDrain: draining rejects new work with 503 on both the batch and
// health endpoints, and Drain returns once the server is idle.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-4],"mechanisms":["none"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain request: %d", resp.StatusCode)
	}
	readRows(t, resp.Body)

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	resp = postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-4]}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch during drain: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hresp.StatusCode)
	}
}

// TestBatchTimeout: a batch exceeding BatchTimeout ends with an error
// line instead of streaming forever.
func TestBatchTimeout(t *testing.T) {
	// A clock that jumps far past the deadline after the first read
	// makes the timeout deterministic without a slow spec.
	base := time.Unix(0, 0)
	calls := 0
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return base.Add(time.Duration(calls) * time.Hour)
	}
	_, ts := newTestServer(t, Options{BatchTimeout: time.Minute, Now: clock})
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-4],"mechanisms":["none","srb"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "batch timeout exceeded") {
		t.Errorf("timed-out batch did not report the timeout:\n%s", body)
	}
}

// TestMetricsEndpoint: after a sweep, the counters reflect the
// requests, rows and pool activity.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postSpec(t, ts.URL, `{"benchmarks":["bs"],"pfails":[1e-5,1e-4],"mechanisms":["none"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readRows(t, resp.Body)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m metricsJSON
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Batches != 1 || m.RowsStreamed != 2 {
		t.Errorf("batches %d rows %d, want 1 and 2", m.Batches, m.RowsStreamed)
	}
	if m.Pool.Misses != 1 || m.Pool.Engines != 1 {
		t.Errorf("pool stats %+v, want 1 miss, 1 engine", m.Pool)
	}
	if m.Pool.ArtifactBytes <= 0 {
		t.Errorf("artifact residency %d, want > 0 after a sweep", m.Pool.ArtifactBytes)
	}
	if m.RowLatency.Count != 2 || m.BatchLatency.Count != 1 || m.SpecParse.Count != 1 {
		t.Errorf("latency histograms incomplete: rows %d batches %d specs %d",
			m.RowLatency.Count, m.BatchLatency.Count, m.SpecParse.Count)
	}
}

// TestServiceChurnBoundedResidency is the acceptance criterion of the
// bounded-memory service: one process serving sweeps for >= 20
// distinct programs keeps the summed resident artifact bytes bounded
// (pool engine cap x per-engine budget), not monotonically growing.
func TestServiceChurnBoundedResidency(t *testing.T) {
	const (
		maxEngines   = 3
		engineBudget = 64 << 10
	)
	srv, ts := newTestServer(t, Options{
		Pool: PoolOptions{MaxEngines: maxEngines, MaxArtifactBytes: engineBudget},
	})
	benchmarks := pwcet.Benchmarks()
	if len(benchmarks) < 20 {
		t.Fatalf("suite has only %d benchmarks", len(benchmarks))
	}
	bound := int64(maxEngines) * engineBudget
	var peak int64
	for _, bench := range benchmarks {
		resp := postSpec(t, ts.URL,
			fmt.Sprintf(`{"benchmarks":[%q],"pfails":[1e-4],"mechanisms":["none","srb"]}`, bench), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", bench, resp.StatusCode)
		}
		readRows(t, resp.Body)
		st := srv.Pool().Stats()
		if st.ArtifactBytes > bound {
			t.Fatalf("after %s: resident %d bytes exceeds bound %d", bench, st.ArtifactBytes, bound)
		}
		if st.ArtifactBytes > peak {
			peak = st.ArtifactBytes
		}
	}
	st := srv.Pool().Stats()
	if st.Engines > maxEngines {
		t.Errorf("resident engines %d exceed cap %d", st.Engines, maxEngines)
	}
	if st.Evictions == 0 {
		t.Errorf("%d distinct programs through %d slots evicted no engines", len(benchmarks), maxEngines)
	}
	if peak == 0 {
		t.Error("no artifact residency observed at all")
	}
	t.Logf("served %d programs: peak residency %d bytes (bound %d), pool %+v",
		len(benchmarks), peak, bound, st)
}
