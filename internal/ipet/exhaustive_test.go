package ipet

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/progen"
	"repro/internal/program"
)

// TestILPMatchesExhaustive is the strongest IPET validation: on random
// small programs with random non-negative weights, the ILP maximum must
// equal the explicit path-enumeration maximum exactly.
func TestILPMatchesExhaustive(t *testing.T) {
	params := progen.Params{MaxDepth: 2, MaxItems: 2, MaxOps: 4, MaxBound: 3, Helpers: 1}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, params)
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]float64, len(p.Blocks))
		for i := range weights {
			weights[i] = float64(rng.Intn(10))
		}
		ilp, err := sys.MaximizeBlockWeights(weights, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exact, err := ExhaustiveMax(p, weights, 5_000_000)
		if err != nil {
			t.Logf("seed %d: enumeration too large, skipped (%v)", seed, err)
			continue
		}
		if math.Abs(ilp.Objective-exact) > 1e-6 {
			t.Errorf("seed %d (%s): ILP %v != exhaustive %v", seed, p.Name, ilp.Objective, exact)
		}
	}
}

// TestExhaustiveHandCases pins the enumeration semantics on hand-built
// programs.
func TestExhaustiveHandCases(t *testing.T) {
	// Loop with bound 3, weight 1 on the body: maximum is 3.
	b := program.New("loop3")
	b.Func("main").Loop(3, func(l *program.Body) { l.Ops(1) })
	p := b.MustBuild()
	w := make([]float64, len(p.Blocks))
	w[p.Loops[0].BodySucc] = 1
	got, err := ExhaustiveMax(p, w, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("loop body max = %v, want 3", got)
	}

	// Branch: weight 5 on then, 9 on else; maximum is 9.
	b2 := program.New("branch")
	b2.Func("main").If(func(then *program.Body) { then.Ops(1) },
		func(els *program.Body) { els.Ops(1) })
	p2 := b2.MustBuild()
	w2 := make([]float64, len(p2.Blocks))
	cond := p2.Entry
	w2[p2.Blocks[cond].Succs[0]] = 5
	w2[p2.Blocks[cond].Succs[1]] = 9
	got2, err := ExhaustiveMax(p2, w2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 9 {
		t.Errorf("branch max = %v, want 9", got2)
	}
}

func TestExhaustiveBudget(t *testing.T) {
	b := program.New("big")
	b.Func("main").Loop(10, func(o *program.Body) {
		o.Loop(10, func(i *program.Body) {
			i.If(func(t *program.Body) { t.Ops(1) }, func(e *program.Body) { e.Ops(1) })
		})
	})
	p := b.MustBuild()
	w := make([]float64, len(p.Blocks))
	if _, err := ExhaustiveMax(p, w, 100); err == nil {
		t.Error("tiny budget not enforced")
	}
}

func TestExhaustiveWeightLenCheck(t *testing.T) {
	b := program.New("x")
	b.Func("main").Ops(1)
	p := b.MustBuild()
	if _, err := ExhaustiveMax(p, []float64{1, 2, 3, 4, 5, 6, 7}, 100); err == nil && len(p.Blocks) != 7 {
		t.Error("weight length mismatch not rejected")
	}
}

func TestWriteLPSystem(t *testing.T) {
	b := program.New("dump")
	b.Func("main").Loop(3, func(l *program.Body) { l.Ops(2) })
	p := b.MustBuild()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, len(p.Blocks))
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	var sb strings.Builder
	if err := sys.WriteLP(&sb, weights, 42); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Maximize", "Subject To", "source = 1", "General", "End"} {
		if !strings.Contains(out, want) {
			t.Errorf("LP dump missing %q:\n%s", want, out)
		}
	}
	if err := sys.WriteLP(&sb, weights[:1], 0); err == nil {
		t.Error("short weights accepted")
	}
}
