package ipet

// MemBytes estimates the resident heap bytes of the system: the sparse
// constraint set, the per-block incoming-edge index, the objective
// scratch and the warm simplex tableau. Like lp.Simplex.MemBytes, it is
// an eviction-cost estimate (consistent, not byte-exact) for the
// engine's bounded artifact memory.
func (s *System) MemBytes() int64 {
	const (
		wordBytes        = 8
		coefBytes        = 16 // {Var int; Val float64}
		sliceHeaderBytes = 24
	)
	b := int64(cap(s.cons)) * (sliceHeaderBytes + 2*wordBytes) // Coefs header + Op + RHS
	for _, c := range s.cons {
		b += int64(cap(c.Coefs)) * coefBytes
	}
	b += int64(cap(s.inVars)) * sliceHeaderBytes
	for _, vars := range s.inVars {
		b += int64(cap(vars)) * wordBytes
	}
	b += s.WarmMemBytes()
	return b
}

// WarmMemBytes estimates only the clone-private bytes of the system:
// the warm simplex tableau and the objective scratch. Clone shares the
// program, constraints and edge index with its source (read-only), so
// evicting a warm clone frees exactly this much — it is the eviction
// cost of a memoized WCET context, whereas MemBytes is the cost of an
// independently built System.
func (s *System) WarmMemBytes() int64 {
	const wordBytes = 8
	b := int64(cap(s.obj)) * wordBytes
	if s.sx != nil {
		b += s.sx.MemBytes()
	}
	return b
}

// MemBytes estimates the resident heap bytes of the fault miss map.
func (f FMM) MemBytes() int64 {
	const (
		wordBytes        = 8
		sliceHeaderBytes = 24
	)
	b := int64(cap(f)) * sliceHeaderBytes
	for _, row := range f {
		b += int64(cap(row)) * wordBytes
	}
	return b
}
