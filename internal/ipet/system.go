// Package ipet implements WCET calculation by the Implicit Path
// Enumeration Technique (Li & Malik, DAC 1995), the high-level analysis
// of Section II.B.2, and the Fault Miss Map (FMM) computation of
// Section II.C / III.B.
//
// The ILP has one variable per CFG edge (plus a virtual source and sink).
// Structural constraints equate each block's in-flow and out-flow; loop
// bound constraints bound back-edge counts relative to loop entry counts.
// All FMM objectives reuse one constraint system through the warm-started
// simplex, which is what makes the S*W per-set solves cheap.
package ipet

import (
	"fmt"
	"io"
	"math"

	"repro/internal/lp"
	"repro/internal/program"
)

// System is the IPET constraint system of one program: a reusable
// (warm-started) LP over edge-count variables.
type System struct {
	p       *program.Program
	numVars int
	cons    []lp.Constraint
	// inVars[b] lists the variable indices of b's incoming edges (the
	// virtual source for the entry block).
	inVars [][]int
	sx     *lp.Simplex
	ref    bool
	// obj is the per-System objective scratch of MaximizeBlockWeights.
	// A System is driven by one goroutine at a time (workers Clone);
	// reusing the buffer keeps the S*W FMM objectives allocation-free.
	obj []float64
}

// NewSystem builds the structural and loop-bound constraints for the
// program and runs simplex phase 1 once, on the compacted sparse
// simplex of internal/lp.
func NewSystem(p *program.Program) (*System, error) {
	return newSystem(p, false)
}

// NewReferenceSystem is NewSystem on lp.NewReferenceSimplex — the
// retained dense solver. Results are bit-identical to NewSystem's (the
// differential suites assert it); it exists so whole-pipeline runs can
// be validated against the reference implementation.
func NewReferenceSystem(p *program.Program) (*System, error) {
	return newSystem(p, true)
}

func newSystem(p *program.Program, ref bool) (*System, error) {
	s := &System{p: p, inVars: make([][]int, len(p.Blocks)), ref: ref}

	edgeVar := make(map[program.Edge]int)
	outVars := make([][]int, len(p.Blocks))
	for _, b := range p.Blocks {
		for _, succ := range b.Succs {
			e := program.Edge{From: b.ID, To: succ}
			if _, dup := edgeVar[e]; dup {
				return nil, fmt.Errorf("ipet: duplicate edge %v", e)
			}
			v := s.numVars
			s.numVars++
			edgeVar[e] = v
			outVars[b.ID] = append(outVars[b.ID], v)
			s.inVars[succ] = append(s.inVars[succ], v)
		}
	}
	source := s.numVars
	s.numVars++
	sink := s.numVars
	s.numVars++
	s.inVars[p.Entry] = append(s.inVars[p.Entry], source)
	outVars[p.Exit] = append(outVars[p.Exit], sink)

	// The program executes exactly once.
	s.cons = append(s.cons, lp.Constraint{
		Coefs: []lp.Coef{{Var: source, Val: 1}},
		Op:    lp.EQ,
		RHS:   1,
	})
	// Flow conservation per block.
	for _, b := range s.p.Blocks {
		var cf []lp.Coef
		for _, v := range s.inVars[b.ID] {
			cf = append(cf, lp.Coef{Var: v, Val: 1})
		}
		for _, v := range outVars[b.ID] {
			cf = append(cf, lp.Coef{Var: v, Val: -1})
		}
		s.cons = append(s.cons, lp.Constraint{Coefs: cf, Op: lp.EQ, RHS: 0})
	}
	// Loop bounds: sum(back) <= bound * sum(entries).
	for _, l := range p.Loops {
		var cf []lp.Coef
		for _, e := range l.Back {
			v, ok := edgeVar[e]
			if !ok {
				return nil, fmt.Errorf("ipet: loop %d back edge %v not in CFG", l.ID, e)
			}
			cf = append(cf, lp.Coef{Var: v, Val: 1})
		}
		for _, e := range l.Entries {
			v, ok := edgeVar[e]
			if !ok {
				return nil, fmt.Errorf("ipet: loop %d entry edge %v not in CFG", l.ID, e)
			}
			cf = append(cf, lp.Coef{Var: v, Val: -float64(l.Bound)})
		}
		s.cons = append(s.cons, lp.Constraint{Coefs: cf, Op: lp.LE, RHS: 0})
	}

	newSimplex := lp.NewSimplex
	if ref {
		newSimplex = lp.NewReferenceSimplex
	}
	sx, err := newSimplex(s.numVars, s.cons)
	if err != nil {
		return nil, err
	}
	if !sx.Feasible() {
		return nil, fmt.Errorf("ipet: structural constraints infeasible for program %s", p.Name)
	}
	s.sx = sx
	return s, nil
}

// Result is the outcome of one IPET maximization.
type Result struct {
	// Objective is the maximal value of the weighted block counts plus
	// the caller's constant term.
	Objective float64
	// BlockCounts holds the execution count of every block on the
	// witness worst-case path.
	BlockCounts []float64
	// Integral records whether the warm LP relaxation was already
	// integral (true for virtually all IPET systems) or branch & bound
	// had to run.
	Integral bool
}

// MaximizeBlockWeights maximizes sum_b weights[b] * count(b) + constant
// over all structurally feasible paths. weights must have one entry per
// block and be non-negative for soundness of the warm-start reuse.
func (s *System) MaximizeBlockWeights(weights []float64, constant float64) (*Result, error) {
	if len(weights) != len(s.p.Blocks) {
		return nil, fmt.Errorf("ipet: %d weights for %d blocks", len(weights), len(s.p.Blocks))
	}
	if s.obj == nil {
		s.obj = make([]float64, s.numVars)
	}
	obj := s.obj
	clear(obj)
	for b, w := range weights {
		if w == 0 {
			continue
		}
		for _, v := range s.inVars[b] {
			obj[v] += w
		}
	}

	sol, err := s.sx.Maximize(obj)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
		// fall through to the integrality check below
	case lp.Infeasible:
		return nil, fmt.Errorf("ipet: infeasible system for program %s", s.p.Name)
	case lp.Unbounded:
		return nil, fmt.Errorf("ipet: unbounded objective for program %s (missing loop bound?)", s.p.Name)
	default:
		panic(fmt.Sprintf("ipet: unknown LP status %v", sol.Status))
	}

	integral := lp.IsIntegral(sol.X)
	x := sol.X
	objVal := sol.Obj
	if !integral {
		// Rare: fall back to a cold branch & bound solve.
		isol, err := lp.SolveILP(lp.Problem{NumVars: s.numVars, Obj: obj, Cons: s.cons})
		if err != nil {
			return nil, err
		}
		if isol.Status != lp.Optimal {
			return nil, fmt.Errorf("ipet: ILP fallback returned %v", isol.Status)
		}
		x = isol.X
		objVal = isol.Obj
	}

	counts := make([]float64, len(s.p.Blocks))
	for b := range s.p.Blocks {
		c := 0.0
		for _, v := range s.inVars[b] {
			c += x[v]
		}
		counts[b] = math.Round(c)
	}
	return &Result{Objective: objVal + constant, BlockCounts: counts, Integral: integral}, nil
}

// Program returns the program the system was built for.
func (s *System) Program() *program.Program { return s.p }

// Clone returns a System that shares the program, constraints and edge
// maps (all read-only after NewSystem) but owns a private copy of the
// warm simplex state (and a private objective scratch). Clones can run
// MaximizeBlockWeights concurrently with each other and with the
// receiver; phase 1 is not redone.
func (s *System) Clone() *System {
	return &System{
		p:       s.p,
		numVars: s.numVars,
		cons:    s.cons,
		inVars:  s.inVars,
		sx:      s.sx.Clone(),
		ref:     s.ref,
	}
}

// resetFrom restores the clone's simplex to src's current basis without
// allocating; see lp.Simplex.CopyFrom.
func (s *System) resetFrom(src *System) error { return s.sx.CopyFrom(src.sx) }

// SetCancel installs (or, with nil, removes) a cancellation probe on
// the system's simplex: every subsequent MaximizeBlockWeights consults
// it between pivot batches and abandons the solve with the probe's
// error — typically a context.Context's Err method. The probe is
// per-System state: clones start without one, and resetFrom never
// copies it. See lp.Simplex.SetCancel.
func (s *System) SetCancel(probe func() error) { s.sx.SetCancel(probe) }

// WriteLP dumps the system with the given block weights as a CPLEX LP
// file (via lp.WriteLP), for debugging or solving with an external
// solver. Variables are named eN (edges), source and sink.
func (s *System) WriteLP(w io.Writer, weights []float64, constant float64) error {
	if len(weights) != len(s.p.Blocks) {
		return fmt.Errorf("ipet: %d weights for %d blocks", len(weights), len(s.p.Blocks))
	}
	obj := make([]float64, s.numVars)
	for b, wt := range weights {
		for _, v := range s.inVars[b] {
			obj[v] += wt
		}
	}
	name := func(j int) string {
		switch j {
		case s.numVars - 2:
			return "source"
		case s.numVars - 1:
			return "sink"
		default:
			return fmt.Sprintf("e%d", j)
		}
	}
	fmt.Fprintf(w, "\\ IPET system for %s (constant offset %g not encoded)\n", s.p.Name, constant)
	return lp.WriteLP(w, lp.Problem{NumVars: s.numVars, Obj: obj, Cons: s.cons}, name)
}

// NumVars returns the number of ILP variables (edges + source + sink).
func (s *System) NumVars() int { return s.numVars }

// NumConstraints returns the number of ILP constraints.
func (s *System) NumConstraints() int { return len(s.cons) }
