package ipet

import (
	"math/rand"
	"testing"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/progen"
)

// TestComputeFMMWorkersByteIdentical: the parallel fault-miss-map is
// byte-identical to the sequential one for every worker count and
// mechanism — each set's row is a pure function of the pristine warm
// basis, so neither scheduling nor pool size may show in the output.
func TestComputeFMMWorkersByteIdentical(t *testing.T) {
	cfg := cache.Config{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 6; seed++ {
		p := progen.Random(rand.New(rand.NewSource(900+seed)), progen.DefaultParams())
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		a := absint.New(p, cfg)
		base := a.ClassifyAll()
		for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
			opt := FMMOptions{Mechanism: mech, Workers: 1}
			if mech == cache.MechanismSRB {
				opt.SRBHit = a.ClassifySRB()
			}
			ref, err := ComputeFMM(sys, a, base, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 3, 8, 64} {
				opt.Workers = workers
				got, err := ComputeFMM(sys, a, base, opt)
				if err != nil {
					t.Fatal(err)
				}
				for s := range ref {
					for f := range ref[s] {
						if got[s][f] != ref[s][f] {
							t.Fatalf("seed %d %v workers=%d: FMM[%d][%d] = %d, want %d",
								seed, mech, workers, s, f, got[s][f], ref[s][f])
						}
					}
				}
			}
		}
	}
}

// TestComputeFMMLeavesSystemPristine: ComputeFMM must not pivot the
// shared system — a later solve on it behaves as if the FMM had never
// run, which is what makes concurrent ComputeFMM calls on one System
// safe.
func TestComputeFMMLeavesSystemPristine(t *testing.T) {
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	p := progen.Random(rand.New(rand.NewSource(77)), progen.DefaultParams())
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	a := absint.New(p, cfg)
	base := a.ClassifyAll()

	before, err := WCET(sys, a, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismNone, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	after, err := WCET(sys, a, base)
	if err != nil {
		t.Fatal(err)
	}
	if before.WCET != after.WCET {
		t.Fatalf("WCET changed from %d to %d across ComputeFMM", before.WCET, after.WCET)
	}
}
