package ipet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/progen"
	"repro/internal/program"
)

func testConfig() cache.Config {
	return cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
}

// simTime runs the full instruction trace through a concrete simulator
// and returns the cycle count.
func simTime(t *testing.T, p *program.Program, cfg cache.Config, mech cache.Mechanism,
	fm cache.FaultMap, choose program.Chooser) int64 {
	t.Helper()
	tr, err := p.Trace(choose, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sim := cache.NewSim(cfg, mech, fm)
	sim.AccessAll(tr)
	return sim.Time
}

func analyze(t *testing.T, p *program.Program, cfg cache.Config) (*System, *absint.Analyzer, *WCETResult) {
	t.Helper()
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	a := absint.New(p, cfg)
	res, err := WCET(sys, a, a.ClassifyAll())
	if err != nil {
		t.Fatal(err)
	}
	return sys, a, res
}

func TestWCETStraightLine(t *testing.T) {
	cfg := testConfig()
	b := program.New("straight")
	b.Func("main").Ops(7) // 8 instructions, 4 blocks
	p := b.MustBuild()
	_, _, res := analyze(t, p, cfg)
	// 8 fetches at 1 cycle + 4 cold (first) misses at 10 extra cycles.
	if res.WCET != 8+4*10 {
		t.Errorf("WCET = %d, want 48", res.WCET)
	}
	if res.FMRefs != 4 {
		t.Errorf("FM refs = %d, want 4", res.FMRefs)
	}
}

func TestWCETSinglePathLoopExactlyMatchesSimulation(t *testing.T) {
	cfg := testConfig()
	b := program.New("fits")
	b.Func("main").Loop(9, func(l *program.Body) { l.Ops(3) })
	p := b.MustBuild()
	_, _, res := analyze(t, p, cfg)
	sim := simTime(t, p, cfg, cache.MechanismNone, cache.NewFaultMap(cfg.Sets, cfg.Ways), program.FirstChooser)
	// Single-path program whose loop fits in the cache: all references
	// are exactly classified, so the static WCET is exact.
	if res.WCET != sim {
		t.Errorf("WCET = %d, simulated = %d (must be exact here)", res.WCET, sim)
	}
}

func TestWCETTakesWorstBranch(t *testing.T) {
	cfg := testConfig()
	b := program.New("branch")
	b.Func("main").If(
		func(then *program.Body) { then.Ops(2) },
		func(els *program.Body) { els.Ops(30) },
	)
	p := b.MustBuild()
	_, _, res := analyze(t, p, cfg)
	second := func(_ int, succs []int) int { return succs[1] }
	simThen := simTime(t, p, cfg, cache.MechanismNone, cache.NewFaultMap(cfg.Sets, cfg.Ways), program.FirstChooser)
	simElse := simTime(t, p, cfg, cache.MechanismNone, cache.NewFaultMap(cfg.Sets, cfg.Ways), second)
	worst := simThen
	if simElse > worst {
		worst = simElse
	}
	if res.WCET < worst {
		t.Errorf("WCET = %d below worst simulated branch %d", res.WCET, worst)
	}
	// The else branch dominates by construction; the WCET must reflect
	// it rather than the then branch.
	if res.WCET < simElse {
		t.Errorf("WCET = %d, want >= else-branch time %d", res.WCET, simElse)
	}
}

func TestWCETRespectsLoopBounds(t *testing.T) {
	cfg := testConfig()
	b := program.New("bounds")
	b.Func("main").Loop(7, func(l *program.Body) { l.Ops(2) })
	p := b.MustBuild()
	sys, _, res := analyze(t, p, cfg)
	_ = res
	// The loop body block must execute exactly 7 times on the worst path.
	weights := make([]float64, len(p.Blocks))
	body := p.Blocks[p.Loops[0].BodySucc]
	weights[body.ID] = 1
	r, err := sys.MaximizeBlockWeights(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Objective-7) > 1e-6 {
		t.Errorf("max body executions = %v, want 7", r.Objective)
	}
	if !r.Integral {
		t.Error("IPET relaxation unexpectedly fractional")
	}
}

func TestWCETSoundOnRandomPrograms(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progen.Random(rng, progen.DefaultParams())
		_, _, res := analyze(t, p, cfg)
		for path := 0; path < 5; path++ {
			sim := simTime(t, p, cfg, cache.MechanismNone,
				cache.NewFaultMap(cfg.Sets, cfg.Ways), program.RandomChooser(rng))
			if sim > res.WCET {
				t.Fatalf("seed %d: simulated %d exceeds WCET %d", seed, sim, res.WCET)
			}
		}
	}
}

func TestFMMZeroFaultsZero(t *testing.T) {
	cfg := testConfig()
	p := progen.Random(rand.New(rand.NewSource(1)), progen.DefaultParams())
	sys, a, _ := analyze(t, p, cfg)
	fmm, err := ComputeFMM(sys, a, a.ClassifyAll(), FMMOptions{Mechanism: cache.MechanismNone})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sets; s++ {
		if fmm[s][0] != 0 {
			t.Errorf("FMM[%d][0] = %d, want 0", s, fmm[s][0])
		}
	}
}

func TestFMMMonotoneInFaults(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Random(rand.New(rand.NewSource(100+seed)), progen.DefaultParams())
		sys, a, _ := analyze(t, p, cfg)
		fmm, err := ComputeFMM(sys, a, a.ClassifyAll(), FMMOptions{Mechanism: cache.MechanismNone})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < cfg.Sets; s++ {
			for f := 1; f <= cfg.Ways; f++ {
				if fmm[s][f] < fmm[s][f-1] {
					t.Errorf("seed %d: FMM[%d] not monotone: f=%d gives %d < %d",
						seed, s, f, fmm[s][f], fmm[s][f-1])
				}
			}
		}
	}
}

func TestFMMRWColumnEmpty(t *testing.T) {
	cfg := testConfig()
	p := progen.Random(rand.New(rand.NewSource(5)), progen.DefaultParams())
	sys, a, _ := analyze(t, p, cfg)
	base := a.ClassifyAll()
	fmmRW, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismRW})
	if err != nil {
		t.Fatal(err)
	}
	fmmNone, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismNone})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sets; s++ {
		if fmmRW[s][cfg.Ways] != 0 {
			t.Errorf("RW FMM[%d][W] = %d, want 0 (column excluded)", s, fmmRW[s][cfg.Ways])
		}
		for f := 1; f < cfg.Ways; f++ {
			if fmmRW[s][f] != fmmNone[s][f] {
				t.Errorf("RW FMM[%d][%d] = %d, differs from unprotected %d",
					s, f, fmmRW[s][f], fmmNone[s][f])
			}
		}
	}
}

func TestFMMSRBColumnNotWorseThanNone(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Random(rand.New(rand.NewSource(200+seed)), progen.DefaultParams())
		sys, a, _ := analyze(t, p, cfg)
		base := a.ClassifyAll()
		fmmNone, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismNone})
		if err != nil {
			t.Fatal(err)
		}
		fmmSRB, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismSRB, SRBHit: a.ClassifySRB()})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < cfg.Sets; s++ {
			if fmmSRB[s][cfg.Ways] > fmmNone[s][cfg.Ways] {
				t.Errorf("seed %d: SRB FMM[%d][W] = %d worse than unprotected %d",
					seed, s, fmmSRB[s][cfg.Ways], fmmNone[s][cfg.Ways])
			}
			for f := 1; f < cfg.Ways; f++ {
				if fmmSRB[s][f] != fmmNone[s][f] {
					t.Errorf("seed %d: SRB FMM[%d][%d] differs below f=W", seed, s, f)
				}
			}
		}
	}
}

// missesPerSet runs the instruction trace and counts misses per set.
func missesPerSet(cfg cache.Config, mech cache.Mechanism, fm cache.FaultMap, tr []uint32) []int64 {
	sim := cache.NewSim(cfg, mech, fm)
	out := make([]int64, cfg.Sets)
	for _, a := range tr {
		if !sim.Access(a) {
			out[cfg.SetOf(a)]++
		}
	}
	return out
}

// chargedMissesPerSet computes, per set, the misses the fault-free WCET
// charges along a concrete block trace: one per execution for always-miss
// and not-classified references, one per run for first-miss references,
// none for always-hits. The FMM bounds fault-induced misses relative to
// this charged baseline (the charge headroom for NC references lives in
// the fault-free WCET, which the end-to-end test exercises).
func chargedMissesPerSet(a *absint.Analyzer, classes []chmc.Class, blockTrace []int) []int64 {
	cfg := a.Config()
	counts := make(map[int]int64)
	for _, bb := range blockTrace {
		counts[bb]++
	}
	out := make([]int64, cfg.Sets)
	for _, r := range a.Refs() {
		switch {
		case classes[r.Global].CountsAsMiss():
			out[r.Set] += counts[r.BB]
		case classes[r.Global] == chmc.FirstMiss:
			out[r.Set]++
		}
	}
	return out
}

// TestFMMSoundVsSimulation is the FMM's core soundness property: for any
// path and any single degraded set, the measured misses of that set never
// exceed the charged fault-free baseline plus the FMM entry.
func TestFMMSoundVsSimulation(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		sys, a, _ := analyze(t, p, cfg)
		base := a.ClassifyAll()
		fmmNone, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismNone})
		if err != nil {
			t.Fatal(err)
		}
		fmmSRB, err := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismSRB, SRBHit: a.ClassifySRB()})
		if err != nil {
			t.Fatal(err)
		}

		for trial := 0; trial < 4; trial++ {
			chooser := replayChooser(rng)
			blocks, err := p.TraceBlocks(chooser.choose, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := p.Trace(chooser.replay(), 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			charged := chargedMissesPerSet(a, base, blocks)

			set := rng.Intn(cfg.Sets)
			f := 1 + rng.Intn(cfg.Ways)
			fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
			for w := 0; w < f; w++ {
				fm[set][w] = true
			}

			degMisses := missesPerSet(cfg, cache.MechanismNone, fm, tr)
			if degMisses[set] > charged[set]+fmmNone[set][f] {
				t.Fatalf("seed %d trial %d: set %d f=%d misses %d exceed charged %d + FMM %d",
					seed, trial, set, f, degMisses[set], charged[set], fmmNone[set][f])
			}

			if f == cfg.Ways {
				srbMisses := missesPerSet(cfg, cache.MechanismSRB, fm, tr)
				if srbMisses[set] > charged[set]+fmmSRB[set][f] {
					t.Fatalf("seed %d trial %d: set %d SRB misses %d exceed charged %d + FMM %d",
						seed, trial, set, srbMisses[set], charged[set], fmmSRB[set][f])
				}
			}
		}
	}
}

// replayChooser records branch decisions so a block trace and an
// instruction trace can follow the identical path.
type recordedChooser struct {
	rng       *rand.Rand
	decisions []int
	pos       int
}

func replayChooser(rng *rand.Rand) *recordedChooser { return &recordedChooser{rng: rng} }

func (c *recordedChooser) choose(_ int, succs []int) int {
	d := c.rng.Intn(len(succs))
	c.decisions = append(c.decisions, d)
	return succs[d]
}

func (c *recordedChooser) replay() program.Chooser {
	c.pos = 0
	return func(_ int, succs []int) int {
		d := c.decisions[c.pos]
		c.pos++
		return succs[d]
	}
}

// TestEndToEndPenaltySound checks the additive bound underlying the whole
// method: simulated time with an arbitrary fault map never exceeds the
// fault-free WCET plus the sum of the per-set FMM penalties.
func TestEndToEndPenaltySound(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		p := progen.Random(rng, progen.DefaultParams())
		sys, a, res := analyze(t, p, cfg)
		base := a.ClassifyAll()
		srbHit := a.ClassifySRB()
		fmmNone, _ := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismNone})
		fmmSRB, _ := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismSRB, SRBHit: srbHit})
		fmmRW, _ := ComputeFMM(sys, a, base, FMMOptions{Mechanism: cache.MechanismRW})

		fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
		for s := range fm {
			for w := range fm[s] {
				fm[s][w] = rng.Intn(3) == 0
			}
		}
		for trial := 0; trial < 3; trial++ {
			choose := program.RandomChooser(rng)
			for _, mech := range []cache.Mechanism{cache.MechanismNone, cache.MechanismRW, cache.MechanismSRB} {
				var fmm FMM
				switch mech {
				case cache.MechanismRW:
					fmm = fmmRW
				case cache.MechanismSRB:
					fmm = fmmSRB
				default:
					fmm = fmmNone
				}
				bound := res.WCET
				for s := 0; s < cfg.Sets; s++ {
					fEff := cfg.Sets
					_ = fEff
					f := fm.NumFaulty(s)
					if mech == cache.MechanismRW && fm[s][0] {
						f-- // the reliable way masks its own fault
					}
					bound += fmm[s][f] * cfg.MissPenalty()
				}
				sim := simTime(t, p, cfg, mech, fm, choose)
				if sim > bound {
					t.Fatalf("seed %d trial %d mech %v: simulated %d exceeds bound %d",
						seed, trial, mech, sim, bound)
				}
			}
		}
	}
}
