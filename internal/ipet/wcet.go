package ipet

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/chmc"
)

// WCETResult is the fault-free WCET and its witness path.
type WCETResult struct {
	// WCET is the fault-free worst-case execution time in cycles.
	WCET int64
	// BlockCounts is the block execution profile of the worst path.
	BlockCounts []float64
	// HitRefs, FMRefs, MissRefs count the instruction-reference
	// classifications used.
	HitRefs, FMRefs, MissRefs int
	// DataHitRefs, DataFMRefs, DataMissRefs count the data-reference
	// classifications (combined analyses only).
	DataHitRefs, DataFMRefs, DataMissRefs int
}

// WCET computes the fault-free worst-case execution time (Section II.B)
// from the IPET system, the reference lists and their classifications.
//
// Cost model (paper Section IV.A): every instruction fetch costs the
// cache hit latency; every always-miss (or not-classified, treated alike)
// reference adds the miss penalty on each execution; every first-miss
// reference adds the miss penalty once per run, accounted as a constant
// since the persistence scope is the whole program.
func WCET(sys *System, a *absint.Analyzer, classes []chmc.Class) (*WCETResult, error) {
	return WCETCombined(sys, a, classes, nil, nil)
}

// WCETCombined computes the fault-free WCET accounting both instruction
// fetches (through ia) and, when da is non-nil, data accesses (through
// da, built with absint.NewData against the data-cache configuration).
// Both reference streams are evaluated on the same worst-case path: the
// ILP objective is the sum of their block weights. Each data access
// costs the data cache's hit latency, plus its miss penalty per the
// data classification.
func WCETCombined(sys *System, ia *absint.Analyzer, icls []chmc.Class,
	da *absint.Analyzer, dcls []chmc.Class) (*WCETResult, error) {
	icfg := ia.Config()
	weights := make([]float64, len(sys.p.Blocks))
	constant := 0.0
	res := &WCETResult{}
	for _, b := range sys.p.Blocks {
		w := float64(b.NumInstr) * float64(icfg.HitLatency)
		for _, r := range ia.RefsOf(b.ID) {
			switch {
			case icls[r.Global].CountsAsMiss():
				w += float64(icfg.MissPenalty())
				res.MissRefs++
			case icls[r.Global] == chmc.FirstMiss:
				constant += float64(icfg.MissPenalty())
				res.FMRefs++
			default:
				res.HitRefs++
			}
		}
		if da != nil {
			dcfg := da.Config()
			for _, r := range da.RefsOf(b.ID) {
				w += float64(r.NumInstr) * float64(dcfg.HitLatency)
				switch {
				case dcls[r.Global].CountsAsMiss():
					w += float64(dcfg.MissPenalty())
					res.DataMissRefs++
				case dcls[r.Global] == chmc.FirstMiss:
					constant += float64(dcfg.MissPenalty())
					res.DataFMRefs++
				default:
					res.DataHitRefs++
				}
			}
		}
		weights[b.ID] = w
	}
	r, err := sys.MaximizeBlockWeights(weights, constant)
	if err != nil {
		return nil, err
	}
	res.WCET = int64(math.Round(r.Objective))
	res.BlockCounts = r.BlockCounts
	return res, nil
}

// FMM is the Fault Miss Map (Figure 1.a): FMM[s][f] upper-bounds the
// number of fault-induced misses of cache set s when exactly f of its
// blocks are faulty, maximized over all structurally feasible paths.
type FMM [][]int64

// Entry returns FMM[set][faulty].
func (m FMM) Entry(set, faulty int) int64 { return m[set][faulty] }

// FMMOptions selects how the all-ways-faulty column (f = W) is computed.
type FMMOptions struct {
	// Mechanism selects the reliability hardware. MechanismRW leaves the
	// f = W column zero (it can never occur and is excluded from the
	// penalty distribution by equation 3). MechanismSRB filters
	// SRB-guaranteed hits out of the f = W column. MechanismNone counts
	// the full per-instruction miss stream of faulty sets.
	Mechanism cache.Mechanism
	// SRBHit marks references guaranteed to hit in the SRB (by
	// Analyzer.ClassifySRB); required when Mechanism is MechanismSRB.
	SRBHit []bool
	// PreciseSRB switches the f = W column of each set to the precise
	// per-set SRB analysis (Analyzer.ClassifySRBForSet): the SRB is
	// treated as a one-way cache private to the set, which assumes the
	// set is the only fully faulty one. The resulting FMM is only sound
	// for fault maps with at most one fully faulty set; see the mixture
	// bound in internal/core.
	PreciseSRB bool
	// ConservativeFM disables the first-miss constant credits (the
	// "-1 per run" terms), reverting to the plainly conservative
	// accounting. Exposed for the ablation study; the default (false)
	// is tighter and equally sound.
	ConservativeFM bool
	// OnlyWholeSetColumn computes only the f = W column, leaving the
	// others zero. The f < W columns are mechanism-independent, so
	// callers comparing mechanisms can compute them once and splice
	// (core.AnalyzeAll does).
	OnlyWholeSetColumn bool
	// Workers bounds the number of goroutines solving per-set ILPs
	// concurrently (sets are independent). 0 means GOMAXPROCS; 1 is
	// fully sequential. The result is byte-identical for every worker
	// count: each set's row is computed from a private simplex restored
	// to the same pristine basis, so neither scheduling nor the number
	// of workers can influence any pivot path.
	Workers int
	// Ctx, when non-nil, cancels the computation: it is checked before
	// every per-set solve and between pivot batches inside each solve
	// (via the worker simplexes' cancel probes), so ComputeFMM returns
	// Ctx.Err() promptly — wrapped or bare, errors.Is-matchable — with
	// every worker goroutine finished. nil means never canceled.
	Ctx context.Context
}

// ComputeFMM builds the fault miss map for every set and fault count
// f in [0, W]. base must be the full-associativity classification
// (Analyzer.ClassifyAll).
//
// For f < W the degraded classification of the set at associativity W-f
// is compared against the baseline: a reference that degrades from
// always-hit to always-miss contributes one extra miss per execution,
// from always-hit to first-miss one extra miss per run, from first-miss
// to always-miss one extra miss per execution (the baseline's one-time
// miss is conservatively not deducted).
//
// For f = W (no usable ways) the set caches nothing, so without
// protection every instruction fetch of the set misses: a reference with
// k instructions contributes k extra misses per execution (k-1 if it was
// already an always-miss). With the SRB, the set's fetch stream is served
// by the one-block buffer: each reference costs at most one miss per
// execution, and none if it is SRB-guaranteed (Section III.B.2).
// The per-set work (a fixpoint reclassification plus up to W warm ILP
// solves) fans out over a bounded worker pool (FMMOptions.Workers).
// Every worker owns a clone of the system and restores it to sys's
// pristine basis before each set, so FMM[s] is a pure function of
// (sys, a, base, opt, s): the output is byte-identical whatever the
// worker count or scheduling, and sys itself is never pivoted. On
// error the lowest-numbered failing set's error is returned (the same
// one the sequential loop would have hit first).
func ComputeFMM(sys *System, a *absint.Analyzer, base []chmc.Class, opt FMMOptions) (FMM, error) {
	cfg := a.Config()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Sets {
		workers = cfg.Sets
	}

	fmm := make(FMM, cfg.Sets)
	errs := make([]error, cfg.Sets)
	if workers == 1 {
		ws := sys.Clone()
		if opt.Ctx != nil {
			ws.SetCancel(opt.Ctx.Err)
		}
		sc := newFMMScratch(sys, a)
		for set := 0; set < cfg.Sets; set++ {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			if fmm[set], errs[set] = computeFMMRow(ws, sys, a, base, opt, set, sc); errs[set] != nil {
				return nil, errs[set]
			}
		}
		return fmm, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := sys.Clone()
			if opt.Ctx != nil {
				ws.SetCancel(opt.Ctx.Err)
			}
			sc := newFMMScratch(sys, a)
			for set := range jobs {
				// A canceled context fails the remaining sets cheaply:
				// the jobs channel still drains (the feeder never
				// blocks forever) but no further ILPs run.
				if opt.Ctx != nil {
					if err := opt.Ctx.Err(); err != nil {
						errs[set] = err
						continue
					}
				}
				fmm[set], errs[set] = computeFMMRow(ws, sys, a, base, opt, set, sc)
			}
		}()
	}
	for set := 0; set < cfg.Sets; set++ {
		jobs <- set
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fmm, nil
}

// fmmScratch holds the per-worker buffers of computeFMMRow: the block
// weights of the ILP objective and the degraded-classification vector,
// both reused across every (set, fault count) pair the worker handles
// instead of being reallocated S*W times.
type fmmScratch struct {
	weights []float64
	deg     []chmc.Class
}

func newFMMScratch(sys *System, a *absint.Analyzer) *fmmScratch {
	return &fmmScratch{
		weights: make([]float64, len(sys.p.Blocks)),
		deg:     make([]chmc.Class, len(a.Refs())),
	}
}

// computeFMMRow computes one set's FMM row on the worker's private
// system ws, first restoring ws to pristine's basis so the row does not
// depend on what ws solved before. It touches only the set's own
// references (Analyzer.RefsOfSet) — never the full reference list —
// and reuses the worker's scratch buffers across fault counts.
func computeFMMRow(ws, pristine *System, a *absint.Analyzer, base []chmc.Class, opt FMMOptions, set int, sc *fmmScratch) ([]int64, error) {
	if err := ws.resetFrom(pristine); err != nil {
		return nil, err
	}
	cfg := a.Config()
	row := make([]int64, cfg.Ways+1)
	refs := a.RefsOfSet(set)
	if len(refs) == 0 {
		return row, nil // the set caches nothing: no reference can suffer
	}
	for f := 1; f <= cfg.Ways; f++ {
		if f == cfg.Ways && opt.Mechanism == cache.MechanismRW {
			// The reliable way guarantees at least one usable way;
			// this column is never reached.
			continue
		}
		if opt.OnlyWholeSetColumn && f < cfg.Ways {
			continue
		}
		weights := sc.weights
		clear(weights)
		constant := 0.0
		any := false
		var deg []chmc.Class
		switch {
		case f < cfg.Ways:
			a.ClassifySetInto(sc.deg, set, cfg.Ways-f)
			deg = sc.deg
		case opt.PreciseSRB && opt.Mechanism == cache.MechanismSRB:
			// Precise SRB: the buffer is a private 1-way cache.
			a.ClassifySetInto(sc.deg, set, 1)
			deg = sc.deg
		}
		for _, r := range refs {
			var pe, pc int64
			if deg != nil {
				pe, pc = refExtra(base[r.Global], deg[r.Global])
			} else {
				pe, pc = wholeSetExtra(r, base[r.Global], opt.Mechanism, opt.SRBHit)
			}
			if opt.ConservativeFM && pc < 0 {
				pc = 0 // ablation: drop the first-miss credits
			}
			if pe != 0 {
				weights[r.BB] += float64(pe)
				any = true
			}
			constant += float64(pc)
		}
		if !any && constant <= 0 {
			continue // no reference can suffer: bound is 0
		}
		res, err := ws.MaximizeBlockWeights(weights, constant)
		if err != nil {
			return nil, err
		}
		if v := int64(math.Round(res.Objective)); v > 0 {
			row[f] = v
		}
	}
	return row, nil
}

// refExtra returns the (per-execution, per-run) extra miss counts of a
// reference whose classification degrades from base to deg, relative to
// the charges already included in the fault-free WCET: always-miss and
// not-classified are charged per execution there, first-miss once per run
// as a path-independent constant. Degrading a first-miss to always-miss
// therefore credits the constant back (perRun -1), keeping the sum
// "fault-free WCET + penalty" a sound and tight upper bound.
func refExtra(base, deg chmc.Class) (perExec, perRun int64) {
	if base.CountsAsMiss() {
		return 0, 0 // already charged a miss on every execution
	}
	switch {
	case deg.CountsAsMiss():
		if base == chmc.FirstMiss {
			return 1, -1
		}
		return 1, 0
	case deg == chmc.FirstMiss && base == chmc.AlwaysHit:
		return 0, 1
	default:
		return 0, 0
	}
}

// wholeSetExtra returns the (per-execution, per-run) extra misses of a
// reference when its whole set is faulty (f = W).
func wholeSetExtra(r absint.Ref, base chmc.Class, mech cache.Mechanism, srbHit []bool) (perExec, perRun int64) {
	if mech == cache.MechanismSRB {
		if srbHit != nil && srbHit[r.Global] {
			// Guaranteed SRB hit: "can be safely removed" (III.B.2).
			return 0, 0
		}
		// One SRB (re)load per execution at reference granularity (the
		// SRB preserves intra-block spatial locality).
		switch {
		case base.CountsAsMiss():
			return 0, 0
		case base == chmc.FirstMiss:
			return 1, -1
		default:
			return 1, 0
		}
	}
	// No protection and no usable ways: every one of the reference's k
	// instruction fetches misses on every execution.
	k := int64(r.NumInstr)
	switch {
	case base.CountsAsMiss():
		return k - 1, 0
	case base == chmc.FirstMiss:
		return k, -1
	default:
		return k, 0
	}
}
