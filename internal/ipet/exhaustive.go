package ipet

import (
	"fmt"

	"repro/internal/program"
)

// ExhaustiveMax computes max over all structurally feasible paths of
// sum(weights[b] * executions(b)) by explicit path enumeration: loops
// iterate any number of times from 0 to their bound, branches explore
// every successor. It is exponential and only usable on small programs;
// its purpose is to cross-validate the IPET ILP (the two must agree
// exactly, since the ILP's feasible region at integrality is precisely
// the set of path profiles of this enumeration).
//
// nodeBudget caps the number of enumeration steps; exceeding it returns
// an error rather than an unsound partial maximum.
func ExhaustiveMax(p *program.Program, weights []float64, nodeBudget int) (float64, error) {
	if len(weights) != len(p.Blocks) {
		return 0, fmt.Errorf("ipet: %d weights for %d blocks", len(weights), len(p.Blocks))
	}
	headerLoop := make(map[int]*program.Loop, len(p.Loops))
	for _, l := range p.Loops {
		headerLoop[l.Header] = l
	}

	type frame struct {
		loop      *program.Loop
		remaining int64
	}
	nodes := 0
	var walk func(cur int, stack []frame, acc float64) (float64, error)
	walk = func(cur int, stack []frame, acc float64) (float64, error) {
		nodes++
		if nodes > nodeBudget {
			return 0, fmt.Errorf("ipet: exhaustive enumeration exceeded %d nodes", nodeBudget)
		}
		acc += weights[cur]
		if cur == p.Exit {
			return acc, nil
		}
		b := p.Blocks[cur]

		if l := headerLoop[cur]; l != nil {
			// At a loop header: either continue iterating (if the
			// current frame has budget) or exit the loop.
			if len(stack) > 0 && stack[len(stack)-1].loop == l {
				top := stack[len(stack)-1]
				best := 0.0
				found := false
				if top.remaining > 0 {
					ns := append(stack[:len(stack)-1:len(stack)-1],
						frame{loop: l, remaining: top.remaining - 1})
					v, err := walk(l.BodySucc, ns, acc)
					if err != nil {
						return 0, err
					}
					best, found = v, true
				}
				v, err := walk(l.ExitSucc, stack[:len(stack)-1], acc)
				if err != nil {
					return 0, err
				}
				if !found || v > best {
					best = v
				}
				return best, nil
			}
			// Fresh entry: choose to iterate (bound-1 more afterwards)
			// or skip the loop entirely.
			best := 0.0
			found := false
			if l.Bound > 0 {
				ns := append(stack[:len(stack):len(stack)], frame{loop: l, remaining: l.Bound - 1})
				v, err := walk(l.BodySucc, ns, acc)
				if err != nil {
					return 0, err
				}
				best, found = v, true
			}
			v, err := walk(l.ExitSucc, stack, acc)
			if err != nil {
				return 0, err
			}
			if !found || v > best {
				best = v
			}
			return best, nil
		}

		switch len(b.Succs) {
		case 0:
			return 0, fmt.Errorf("ipet: dead end at block %d", cur)
		case 1:
			return walk(b.Succs[0], stack, acc)
		default:
			best := 0.0
			for i, s := range b.Succs {
				v, err := walk(s, stack, acc)
				if err != nil {
					return 0, err
				}
				if i == 0 || v > best {
					best = v
				}
			}
			return best, nil
		}
	}
	return walk(p.Entry, nil, 0)
}
