package ipet

import (
	"math/rand"
	"testing"

	"repro/internal/absint"
	"repro/internal/cache"
	"repro/internal/chmc"
	"repro/internal/progen"
)

// TestComputeHitBoundsWorkersByteIdentical: the per-set hit bounds are
// byte-identical for every worker count — each set's ILP is solved on a
// private simplex restored to the same pristine basis, exactly like the
// FMM solves.
func TestComputeHitBoundsWorkersByteIdentical(t *testing.T) {
	cfg := cache.Config{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 6; seed++ {
		p := progen.Random(rand.New(rand.NewSource(900+seed)), progen.DefaultParams())
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		a := absint.New(p, cfg)
		base := a.ClassifyAll()
		ref, err := ComputeHitBounds(sys, a, base, HitBoundOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8, 64} {
			got, err := ComputeHitBounds(sys, a, base, HitBoundOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for s := range ref {
				if got[s] != ref[s] {
					t.Fatalf("seed %d workers=%d: bound[%d] = %d, want %d",
						seed, workers, s, got[s], ref[s])
				}
			}
		}
	}
}

// TestComputeHitBoundsDominatesHitExecutions: the bound of each set must
// be at least the hit-classified executions of any feasible path; the
// WCET solve's block counts provide one such path.
func TestComputeHitBoundsDominatesHitExecutions(t *testing.T) {
	cfg := cache.Config{Sets: 8, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	for seed := int64(0); seed < 6; seed++ {
		p := progen.Random(rand.New(rand.NewSource(300+seed)), progen.DefaultParams())
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		a := absint.New(p, cfg)
		base := a.ClassifyAll()
		wres, err := WCET(sys, a, base)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := ComputeHitBounds(sys, a, base, HitBoundOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Count the WCET path's hit-classified executions per set.
		onPath := make([]int64, cfg.Sets)
		for s := 0; s < cfg.Sets; s++ {
			for _, r := range a.RefsOfSet(s) {
				if base[r.Global].CountsAsMiss() {
					continue
				}
				// BlockCounts are integral at ILP optima; round defensively.
				onPath[s] += int64(wres.BlockCounts[r.BB] + 0.5)
			}
		}
		for s := 0; s < cfg.Sets; s++ {
			if hb[s] < onPath[s] {
				t.Errorf("seed %d: bound[%d] = %d below the WCET path's %d hit executions",
					seed, s, hb[s], onPath[s])
			}
			if hb[s] < 0 {
				t.Errorf("seed %d: bound[%d] = %d negative", seed, s, hb[s])
			}
		}
	}
}

// TestComputeHitBoundsAllMissSet: a set whose references all count as
// misses has bound 0 without solving an ILP.
func TestComputeHitBoundsAllMissSet(t *testing.T) {
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	p := progen.Random(rand.New(rand.NewSource(42)), progen.DefaultParams())
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	a := absint.New(p, cfg)
	base := a.ClassifyAll()
	// Degrade every classification to always-miss: no reference is
	// vulnerable, so every bound must be 0.
	allMiss := make([]chmc.Class, len(base))
	for i := range allMiss {
		allMiss[i] = chmc.AlwaysMiss
	}
	hb, err := ComputeHitBounds(sys, a, allMiss, HitBoundOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range hb {
		if v != 0 {
			t.Errorf("all-miss classification: bound[%d] = %d, want 0", s, v)
		}
	}
	if hb.Total() != 0 {
		t.Errorf("Total() = %d, want 0", hb.Total())
	}
}

// TestComputeHitBoundsLeavesSystemPristine mirrors the FMM guarantee:
// the shared system is not pivoted by the bound solves.
func TestComputeHitBoundsLeavesSystemPristine(t *testing.T) {
	cfg := cache.Config{Sets: 4, Ways: 2, BlockBytes: 8, HitLatency: 1, MemLatency: 10}
	p := progen.Random(rand.New(rand.NewSource(77)), progen.DefaultParams())
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	a := absint.New(p, cfg)
	base := a.ClassifyAll()

	before, err := WCET(sys, a, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeHitBounds(sys, a, base, HitBoundOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	after, err := WCET(sys, a, base)
	if err != nil {
		t.Fatal(err)
	}
	if before.WCET != after.WCET {
		t.Fatalf("WCET changed from %d to %d across ComputeHitBounds", before.WCET, after.WCET)
	}
}
