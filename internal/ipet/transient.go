package ipet

// Transient-fault support: per-set bounds on the number of accesses an
// SEU can turn into an extra miss. The transient model of
// internal/fault charges at most one extra miss per execution of a
// reference whose fault-free classification hits (always-hit or
// first-miss): an access that misses anyway is already charged its
// penalty, so an upset striking its line adds nothing. The per-set
// count of such vulnerable reference executions, maximized over all
// structurally feasible paths by the same ILP machinery as the FMM,
// caps the binomial extra-miss distribution of each set.

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/absint"
	"repro/internal/chmc"
)

// HitBounds[s] upper-bounds the number of hit-classified reference
// executions of cache set s on any structurally feasible path — the
// accesses a transient upset can turn into extra misses. The bound
// uses the fault-free classification, which is an upper bound on the
// vulnerable accesses under ANY permanent fault map: permanent faults
// only ever degrade classifications toward miss, and degraded-to-miss
// accesses are no longer vulnerable.
type HitBounds []int64

// Total sums the per-set bounds: the program-wide cap on transient
// extra misses.
func (h HitBounds) Total() int64 {
	var t int64
	for _, v := range h {
		t += v
	}
	return t
}

// MemBytes estimates the resident heap bytes of the bounds vector —
// the eviction-cost estimate for the engine's bounded artifact memory.
func (h HitBounds) MemBytes() int64 {
	const wordBytes = 8
	return int64(cap(h)) * wordBytes
}

// HitBoundOptions configures ComputeHitBounds.
type HitBoundOptions struct {
	// Workers bounds the goroutines solving per-set ILPs concurrently
	// (sets are independent). 0 means GOMAXPROCS; 1 is fully
	// sequential. Like ComputeFMM, the result is byte-identical for
	// every worker count: each set's bound is solved on a private
	// simplex restored to the same pristine basis.
	Workers int
	// Ctx, when non-nil, cancels the computation under the same
	// contract as FMMOptions.Ctx: checked before every per-set solve
	// and between pivot batches inside each solve.
	Ctx context.Context
}

// ComputeHitBounds bounds, for every cache set, the number of
// vulnerable (hit-classified) reference executions over all
// structurally feasible paths: one ILP per set maximizing the count of
// executions of the set's always-hit and first-miss references. base
// must be the full-associativity classification (Analyzer.ClassifyAll).
// The per-set solves fan out over a bounded worker pool exactly like
// ComputeFMM; on error the lowest-numbered failing set's error is
// returned.
func ComputeHitBounds(sys *System, a *absint.Analyzer, base []chmc.Class, opt HitBoundOptions) (HitBounds, error) {
	cfg := a.Config()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Sets {
		workers = cfg.Sets
	}

	hb := make(HitBounds, cfg.Sets)
	errs := make([]error, cfg.Sets)
	if workers == 1 {
		ws := sys.Clone()
		if opt.Ctx != nil {
			ws.SetCancel(opt.Ctx.Err)
		}
		weights := make([]float64, len(sys.p.Blocks))
		for set := 0; set < cfg.Sets; set++ {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			if hb[set], errs[set] = computeHitBound(ws, sys, a, base, set, weights); errs[set] != nil {
				return nil, errs[set]
			}
		}
		return hb, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := sys.Clone()
			if opt.Ctx != nil {
				ws.SetCancel(opt.Ctx.Err)
			}
			weights := make([]float64, len(sys.p.Blocks))
			for set := range jobs {
				if opt.Ctx != nil {
					if err := opt.Ctx.Err(); err != nil {
						errs[set] = err
						continue
					}
				}
				hb[set], errs[set] = computeHitBound(ws, sys, a, base, set, weights)
			}
		}()
	}
	for set := 0; set < cfg.Sets; set++ {
		jobs <- set
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return hb, nil
}

// computeHitBound solves one set's vulnerable-access ILP on the
// worker's private system ws, restored to pristine's basis first so
// the bound is a pure function of (sys, a, base, set).
func computeHitBound(ws, pristine *System, a *absint.Analyzer, base []chmc.Class, set int, weights []float64) (int64, error) {
	refs := a.RefsOfSet(set)
	clear(weights)
	any := false
	for _, r := range refs {
		if base[r.Global].CountsAsMiss() {
			continue // already charged a miss per execution; not vulnerable
		}
		weights[r.BB]++
		any = true
	}
	if !any {
		return 0, nil // no reference of the set can suffer an extra miss
	}
	if err := ws.resetFrom(pristine); err != nil {
		return 0, err
	}
	res, err := ws.MaximizeBlockWeights(weights, 0)
	if err != nil {
		return 0, err
	}
	if v := int64(math.Round(res.Objective)); v > 0 {
		return v, nil
	}
	return 0, nil
}
