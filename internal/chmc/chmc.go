// Package chmc defines the Cache Hit/Miss Classification (CHMC) lattice
// used by the static cache analyses (Section II.B.1 of the paper).
//
// Every reference (the first access of a basic block to a memory block)
// receives a classification describing its worst-case cache behaviour:
//
//   - AlwaysHit: guaranteed to hit on every execution (Must analysis);
//   - FirstMiss: misses at most once per persistence scope, then always
//     hits (Persistence analysis);
//   - AlwaysMiss: guaranteed to miss on every execution (May analysis);
//   - NotClassified: none of the above can be proven.
//
// Following the paper's experimental setup, NotClassified is accounted
// exactly like AlwaysMiss by the timing model.
package chmc

import "fmt"

// Class is a cache hit/miss classification.
type Class int8

const (
	// AlwaysHit marks references guaranteed to hit.
	AlwaysHit Class = iota
	// FirstMiss marks references that miss at most once per scope.
	FirstMiss
	// AlwaysMiss marks references guaranteed to miss.
	AlwaysMiss
	// NotClassified marks references with unknown behaviour; treated as
	// AlwaysMiss by the timing model.
	NotClassified
)

// String returns the conventional short name.
func (c Class) String() string {
	switch c {
	case AlwaysHit:
		return "AH"
	case FirstMiss:
		return "FM"
	case AlwaysMiss:
		return "AM"
	case NotClassified:
		return "NC"
	}
	return "?"
}

// CountsAsMiss reports whether the timing model charges a miss on every
// execution for this classification (AM and NC).
func (c Class) CountsAsMiss() bool { return c == AlwaysMiss || c == NotClassified }

// WorseThan reports whether c is at least as costly as d in the timing
// model's per-execution ordering AH < FM < AM=NC. Degrading a cache
// (removing ways) can only move classifications upward in this order.
func (c Class) WorseThan(d Class) bool { return c.rank() >= d.rank() }

func (c Class) rank() int {
	switch c {
	case AlwaysHit:
		return 0
	case FirstMiss:
		return 1
	case AlwaysMiss, NotClassified:
		return 2
	default:
		panic(fmt.Sprintf("chmc: rank of invalid Class %d", int(c)))
	}
}
