package chmc

import "testing"

func TestString(t *testing.T) {
	for c, want := range map[Class]string{
		AlwaysHit: "AH", FirstMiss: "FM", AlwaysMiss: "AM", NotClassified: "NC", Class(9): "?",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestCountsAsMiss(t *testing.T) {
	if AlwaysHit.CountsAsMiss() || FirstMiss.CountsAsMiss() {
		t.Error("AH/FM must not count as per-execution miss")
	}
	if !AlwaysMiss.CountsAsMiss() || !NotClassified.CountsAsMiss() {
		t.Error("AM/NC must count as per-execution miss (paper setup)")
	}
}

func TestWorseThanOrdering(t *testing.T) {
	order := []Class{AlwaysHit, FirstMiss, AlwaysMiss}
	for i, lo := range order {
		for j, hi := range order {
			got := hi.WorseThan(lo)
			want := j >= i
			if got != want {
				t.Errorf("%v.WorseThan(%v) = %v, want %v", hi, lo, got, want)
			}
		}
	}
	// NC and AM are equally costly.
	if !NotClassified.WorseThan(AlwaysMiss) || !AlwaysMiss.WorseThan(NotClassified) {
		t.Error("NC and AM must be mutually WorseThan (same cost rank)")
	}
}

// TestRankPanicsOnInvalidClass: an out-of-range Class must stop the
// pipeline loudly instead of silently ranking as AM/NC (which would
// corrupt monotonicity checks for any future enum member).
func TestRankPanicsOnInvalidClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WorseThan on an invalid Class did not panic")
		}
	}()
	_ = Class(42).WorseThan(AlwaysHit)
}
