package malardalen

import "repro/internal/program"

// This file holds the streaming benchmarks (hot code larger than the
// cache, so only spatial locality is captured — the paper's category 1,
// where both mechanisms recover the fault-free WCET) and the mixed
// benchmarks combining resident loops with streaming phases (category 4).

// nsichneu mirrors Mälardalen nsichneu: a generated Petri-net simulation
// made of hundreds of independent if-blocks executed in a short loop.
// The body far exceeds the 1KB cache, so nothing is temporally reusable.
func nsichneu() *program.Program {
	b := program.New("nsichneu")
	b.Func("main").
		Ops(6).
		Loop(4, func(net *program.Body) {
			for i := 0; i < 36; i++ {
				net.If(func(fire *program.Body) {
					fire.Ops(12) // update marking
				}, func(skip *program.Body) {
					skip.Ops(10)
				})
			}
		}).
		Ops(3)
	return b.MustBuild()
}

// statemate mirrors Mälardalen statemate: car-window-lift controller
// code generated from a STATEMATE statechart — a loop over large switch
// dispatches whose cases exceed the cache.
func statemate() *program.Program {
	b := program.New("statemate")
	cases := make([]func(*program.Body), 10)
	for i := range cases {
		n := 48 + 6*i // state handlers of growing size
		cases[i] = func(c *program.Body) {
			c.Ops(n)
			c.If(func(t *program.Body) { t.Ops(6) }, func(e *program.Body) { e.Ops(6) })
		}
	}
	b.Func("main").
		Ops(8).
		Loop(12, func(step *program.Body) {
			step.Ops(4) // read inputs
			step.Switch(cases...)
			step.Ops(3) // write outputs
		})
	return b.MustBuild()
}

// cover mirrors Mälardalen cover: loops over switches with many cases,
// each case a distinct code region (built to exercise path coverage).
func cover() *program.Program {
	b := program.New("cover")
	mkCases := func(n, size int) []func(*program.Body) {
		cs := make([]func(*program.Body), n)
		for i := range cs {
			cs[i] = func(c *program.Body) { c.Ops(size) }
		}
		return cs
	}
	b.Func("main").
		Ops(5).
		Loop(20, func(l *program.Body) {
			l.Switch(mkCases(20, 20)...)
		}).
		Loop(20, func(l *program.Body) {
			l.Switch(mkCases(20, 22)...)
		}).
		Ops(3)
	return b.MustBuild()
}

// fdct mirrors Mälardalen fdct: forward discrete cosine transform —
// two loops (rows then columns) with very large straight-line bodies.
func fdct() *program.Program {
	b := program.New("fdct")
	b.Func("main").
		Ops(6).
		Loop(8, func(rows *program.Body) {
			rows.Ops(360) // one row's butterfly arithmetic
		}).
		Loop(8, func(cols *program.Body) {
			cols.Ops(380) // one column's butterfly arithmetic
		}).
		Ops(4)
	return b.MustBuild()
}

// jfdctint mirrors Mälardalen jfdctint: JPEG integer DCT, structured
// like fdct with even larger slice bodies.
func jfdctint() *program.Program {
	b := program.New("jfdctint")
	b.Func("main").
		Ops(8).
		Loop(8, func(pass1 *program.Body) {
			pass1.Ops(420)
		}).
		Loop(8, func(pass2 *program.Body) {
			pass2.Ops(400)
		}).
		Ops(4)
	return b.MustBuild()
}

// ndes mirrors Mälardalen ndes: DES-like block cipher with large
// S-box/permutation helpers called from the round loop; the total
// footprint exceeds the cache.
func ndes() *program.Program {
	b := program.New("ndes")
	b.Func("main").
		Ops(10).
		Loop(16, func(round *program.Body) {
			round.Ops(40) // key schedule slice
			round.Call("des_f")
			round.Call("permute")
			round.Ops(30) // swap halves
		}).
		Ops(6)
	b.Func("des_f").
		Ops(60).
		Loop(8, func(sbox *program.Body) {
			sbox.Ops(20) // one S-box lookup + xor
		}).
		Ops(16)
	b.Func("permute").
		Ops(120) // bit permutation network
	return b.MustBuild()
}

// adpcm mirrors Mälardalen adpcm: ADPCM encoder and decoder invoked
// alternately from the main sample loop, with a shared quantizer and
// filter helpers; mixes a resident hot loop with wider helper code.
// Figure 3 of the paper plots this benchmark's exceedance curves.
func adpcm() *program.Program {
	b := program.New("adpcm")
	b.Func("main").
		Ops(300). // I/O buffers setup (cold -O0 code)
		Loop(24, func(sample *program.Body) {
			sample.Ops(4)
			sample.Call("encode")
			sample.Call("decode")
			sample.Ops(3)
		}).
		Ops(6)
	b.Func("encode").
		Ops(24).
		Loop(4, func(pred *program.Body) {
			pred.Ops(14) // predictor taps
		}).
		If(func(sat *program.Body) {
			sat.Ops(20) // saturation
		}, func(lin *program.Body) {
			lin.Ops(16)
		}).
		Call("quantl").
		Ops(10)
	b.Func("decode").
		Ops(18).
		If(func(hi *program.Body) {
			hi.Ops(24)
		}, func(lo *program.Body) {
			lo.Ops(14)
		}).
		Call("quantl").
		Ops(8)
	b.Func("quantl").
		Ops(12).
		Loop(6, func(scan *program.Body) {
			scan.Ops(8) // table scan
			scan.If(func(found *program.Body) { found.Ops(4) }, nil)
		}).
		Ops(8)
	return b.MustBuild()
}

// matmult mirrors Mälardalen matmult: 2 matrix initializations followed
// by the classic triple-nested multiplication loop. The right-hand side
// of the paper's Figure 4 uses matmult to illustrate how the SRB and RW
// gains stack.
func matmult() *program.Program {
	b := program.New("matmult")
	b.Func("main").
		Ops(400). // I/O and seed setup (cold -O0 code)
		Call("initmat").
		Call("initmat2").
		Loop(4, func(i *program.Body) {
			i.Ops(3)
			i.Loop(4, func(j *program.Body) {
				j.Ops(4)
				j.Loop(4, func(k *program.Body) {
					k.Ops(6) // load a[i][k], b[k][j], MAC
				})
				j.Ops(2) // store c[i][j]
			})
		}).
		Ops(3)
	b.Func("initmat").
		Ops(4).
		Loop(6, func(r *program.Body) {
			r.Loop(6, func(c *program.Body) { c.Ops(5) })
		})
	b.Func("initmat2").
		Ops(4).
		Loop(6, func(r *program.Body) {
			r.Loop(6, func(c *program.Body) { c.Ops(6) })
		})
	return b.MustBuild()
}

// minver mirrors Mälardalen minver: 3x3 matrix inversion with distinct
// phases (determinant, cofactors, normalization) plus helper calls —
// a mixed-category program.
func minver() *program.Program {
	b := program.New("minver")
	b.Func("main").
		Ops(260). // matrix staging (cold -O0 code)
		Call("mmul").
		Loop(3, func(col *program.Body) {
			col.Ops(20)
			col.Loop(3, func(row *program.Body) {
				row.Ops(30) // cofactor terms
				row.If(func(z *program.Body) { z.Ops(8) }, nil)
			})
		}).
		Call("mmul").
		Loop(3, func(norm *program.Body) {
			norm.Ops(14)
			norm.Loop(3, func(el *program.Body) { el.Ops(16) })
		}).
		Ops(5)
	b.Func("mmul").
		Ops(12).
		Loop(3, func(i *program.Body) {
			i.Loop(3, func(j *program.Body) {
				j.Ops(12)
				j.Loop(3, func(k *program.Body) { k.Ops(10) })
			})
		})
	return b.MustBuild()
}
