// Package malardalen provides the 25-benchmark suite used by the paper's
// evaluation (Section IV.A: "25 benchmarks from the Mälardalen WCET
// benchmark suite").
//
// Substitution note (see DESIGN.md): the paper analyzes MIPS R2000/R3000
// binaries produced by gcc 4.1 -O0. This repository cannot ship those
// binaries, so each benchmark is a synthetic structured program mirroring
// the control structure, loop bounds and code-size-to-cache-size ratio of
// its Mälardalen namesake, assembled deterministically by
// internal/program. The static analyses consume exactly the information a
// binary provides (instruction addresses per basic block, CFG, loop
// bounds), so the pipeline is unchanged; only absolute cycle counts
// differ from the paper's.
//
// The suite deliberately spans the paper's four behaviour categories
// (Figure 4) against the 1KB 4-way 16-byte-line cache:
//
//   - spatial-only programs whose hot code exceeds the cache (streaming:
//     nsichneu, statemate, cover, fdct, jfdctint, ndes);
//   - tight loops resident in a single way per set (MRU-temporal: bs,
//     fibcall, insertsort, prime, expint, ns, cnt, bsort100,
//     janne_complex, fir);
//   - loops whose footprint needs several ways per set (deep-temporal:
//     crc, edn, fft, ludcmp, qurt, ud);
//   - mixed programs with both behaviours (adpcm, matmult, minver).
package malardalen

import (
	"fmt"
	"sort"

	"repro/internal/program"
)

// builders maps benchmark names to their program constructors.
var builders = map[string]func() *program.Program{
	"adpcm":         adpcm,
	"bs":            bs,
	"bsort100":      bsort100,
	"cnt":           cnt,
	"cover":         cover,
	"crc":           crc,
	"edn":           edn,
	"expint":        expint,
	"fdct":          fdct,
	"fft":           fft,
	"fibcall":       fibcall,
	"fir":           fir,
	"insertsort":    insertsort,
	"janne_complex": janneComplex,
	"jfdctint":      jfdctint,
	"ludcmp":        ludcmp,
	"matmult":       matmult,
	"minver":        minver,
	"ndes":          ndes,
	"ns":            ns,
	"nsichneu":      nsichneu,
	"prime":         prime,
	"qurt":          qurt,
	"statemate":     statemate,
	"ud":            ud,
}

// Names returns the benchmark names in deterministic (sorted) order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get builds the named benchmark program.
func Get(name string) (*program.Program, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("malardalen: unknown benchmark %q", name)
	}
	return b(), nil
}

// MustGet is Get for known-constant names; it panics on unknown names.
func MustGet(name string) *program.Program {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All builds every benchmark, in Names() order.
func All() []*program.Program {
	names := Names()
	out := make([]*program.Program, len(names))
	for i, n := range names {
		out[i] = MustGet(n)
	}
	return out
}
