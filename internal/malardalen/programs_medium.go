package malardalen

import "repro/internal/program"

// This file holds the deep-temporal benchmarks: their hot footprint
// spreads over several ways per cache set, so even partial fault counts
// (f < W) evict useful blocks — the paper's category 3, where RW and SRB
// achieve similar gains because neither protects non-MRU temporal
// locality.

// crc mirrors Mälardalen crc: CRC over a 40-byte message with a helper
// updating the checksum bit by bit against a table region.
func crc() *program.Program {
	b := program.New("crc")
	b.Func("main").
		Ops(300). // table construction, init remainder (cold -O0 code)
		Loop(26, func(msg *program.Body) {
			msg.Ops(30) // fetch byte, index into the 256-entry table region
			msg.If(func(hi *program.Body) {
				hi.Ops(14) // high-nibble xor path
			}, func(lo *program.Body) {
				lo.Ops(10)
			})
			msg.Call("icrc1")
		}).
		Ops(4)
	b.Func("icrc1").
		Ops(70). // table slice touched by this byte
		Loop(8, func(bit *program.Body) {
			bit.Ops(14)
			bit.If(func(carry *program.Body) {
				carry.Ops(6) // polynomial xor
			}, nil)
		})
	return b.MustBuild()
}

// edn mirrors Mälardalen edn: a sequence of vector/filter kernels
// (vec_mpy, mac, fir alike) laid out one after another, each a medium
// loop over its own code region.
func edn() *program.Program {
	b := program.New("edn")
	b.Func("main").
		Ops(400). // input block staging (cold -O0 code)
		Call("vec_mpy").
		Call("mac").
		Call("fir_k").
		Call("latsynth").
		Ops(4)
	b.Func("vec_mpy").
		Ops(5).
		Loop(8, func(l *program.Body) { l.Ops(44) })
	b.Func("mac").
		Ops(6).
		Loop(8, func(l *program.Body) { l.Ops(48) })
	b.Func("fir_k").
		Ops(4).
		Loop(6, func(outer *program.Body) {
			outer.Ops(12)
			outer.Loop(5, func(inner *program.Body) { inner.Ops(18) })
		})
	b.Func("latsynth").
		Ops(5).
		Loop(8, func(l *program.Body) { l.Ops(46) })
	return b.MustBuild()
}

// fft mirrors Mälardalen fft1: bit reversal followed by butterfly stages
// calling a helper; the working set spans several ways per set. The
// paper reports fft as the benchmark with the minimum RW gain (26%).
func fft() *program.Program {
	b := program.New("fft")
	b.Func("main").
		Ops(300). // sample buffer staging (cold -O0 code)
		Call("bitrev").
		Loop(5, func(stage *program.Body) {
			stage.Ops(30) // stride/twiddle setup
			stage.Loop(8, func(group *program.Body) {
				group.Ops(16) // index arithmetic
				group.Call("butterfly")
			})
		}).
		Ops(4)
	b.Func("bitrev").
		Ops(4).
		Loop(16, func(l *program.Body) {
			l.Ops(6)
			l.If(func(swap *program.Body) { swap.Ops(4) }, nil)
		})
	b.Func("butterfly").
		Ops(110). // complex multiply-accumulate, twiddle application
		If(func(norm *program.Body) {
			norm.Ops(18)
		}, func(other *program.Body) {
			other.Ops(18)
		})
	return b.MustBuild()
}

// ludcmp mirrors Mälardalen ludcmp: LU decomposition plus forward and
// backward substitution over a 6x6 system.
func ludcmp() *program.Program {
	b := program.New("ludcmp")
	b.Func("main").
		Ops(300). // matrix load (cold -O0 code)
		Loop(6, func(col *program.Body) {
			col.Ops(16)
			col.Loop(6, func(row *program.Body) {
				row.Ops(40) // pivot row scaling over the matrix region
				row.Loop(6, func(k *program.Body) {
					k.Ops(20) // elimination MAC
				})
			})
			col.Call("pivot")
		}).
		Call("substitute").
		Ops(4)
	b.Func("pivot").
		Ops(40).
		If(func(swap *program.Body) { swap.Ops(16) }, nil)
	b.Func("substitute").
		Ops(6).
		Loop(6, func(fwd *program.Body) {
			fwd.Ops(20)
			fwd.Loop(6, func(inner *program.Body) { inner.Ops(16) })
		}).
		Loop(6, func(bwd *program.Body) {
			bwd.Ops(20)
			bwd.Loop(6, func(inner *program.Body) { inner.Ops(16) })
		})
	return b.MustBuild()
}

// qurt mirrors Mälardalen qurt: quadratic-equation root computation
// using an iterative square root helper.
func qurt() *program.Program {
	b := program.New("qurt")
	b.Func("main").
		Ops(300). // coefficient setup, discriminant (cold -O0 code)
		Loop(3, func(root *program.Body) {
			root.Call("qurt_calc")
		}).
		Ops(4)
	b.Func("qurt_calc").
		Ops(60).
		If(func(realRoots *program.Body) {
			realRoots.Ops(30)
		}, func(complexRoots *program.Body) {
			complexRoots.Ops(30)
		}).
		Loop(10, func(iter *program.Body) {
			iter.Ops(24)
			iter.Call("my_sqrt")
		})
	b.Func("my_sqrt").
		Ops(20).
		Loop(12, func(newton *program.Body) {
			newton.Ops(14)
			newton.If(func(conv *program.Body) {
				conv.Ops(6)
			}, func(cont *program.Body) {
				cont.Ops(6)
			})
		})
	return b.MustBuild()
}

// ud mirrors Mälardalen ud: LU decomposition without pivoting over
// integer matrices. The paper reports ud as the benchmark with the
// minimum SRB gain (25%): most of its temporal locality sits beyond the
// MRU position.
func ud() *program.Program {
	b := program.New("ud")
	b.Func("main").
		Ops(350). // matrix staging (cold -O0 code)
		Loop(8, func(i *program.Body) {
			i.Ops(30)
			i.Loop(8, func(j *program.Body) {
				j.Ops(80)
				j.Loop(8, func(k *program.Body) {
					k.Ops(70) // MAC over a wide code region
				})
			})
		}).
		Loop(8, func(back *program.Body) {
			back.Ops(30)
			back.Loop(8, func(inner *program.Body) {
				inner.Ops(36)
			})
		}).
		Ops(4)
	return b.MustBuild()
}
