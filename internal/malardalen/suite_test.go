package malardalen

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/program"
)

func TestSuiteComplete(t *testing.T) {
	names := Names()
	if len(names) != 25 {
		t.Fatalf("suite has %d benchmarks, want 25 (paper Section IV.A)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
	}
}

func TestAllBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Name != name {
				t.Errorf("program name %q != benchmark name %q", p.Name, name)
			}
			if p.NumInstructions() < 10 {
				t.Errorf("suspiciously small program: %d instructions", p.NumInstructions())
			}
			// Traces must terminate (structural sanity of loops).
			tr, err := p.Trace(program.FirstChooser, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr) == 0 {
				t.Error("empty trace")
			}
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("dijkstra"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic on unknown name")
		}
	}()
	MustGet("unknown")
}

func TestAllReturnsEverything(t *testing.T) {
	ps := All()
	if len(ps) != 25 {
		t.Fatalf("All returned %d programs", len(ps))
	}
}

// TestSizeSpread checks the suite spans the code-size spectrum the
// categories need. Like the real Mälardalen binaries at gcc -O0, every
// program carries substantial once-executed code, so total sizes all
// exceed the cache; what distinguishes the categories is the span from
// barely-above-cache programs (whose hot loops are tiny and resident) to
// programs several times the cache (streaming). We assert that span.
func TestSizeSpread(t *testing.T) {
	cfg := cache.PaperConfig()
	min, max := 1<<30, 0
	large := 0
	for _, p := range All() {
		bytes := p.CodeBytes()
		if bytes < min {
			min = bytes
		}
		if bytes > max {
			max = bytes
		}
		if bytes > 2*cfg.SizeBytes() {
			large++
		}
		t.Logf("%-14s %5d bytes (%d instructions)", p.Name, bytes, p.NumInstructions())
	}
	if max < 3*min {
		t.Errorf("size span too narrow: min %dB, max %dB", min, max)
	}
	if large < 4 {
		t.Errorf("only %d benchmarks above twice the cache size; category 1 needs more", large)
	}
	if min < cfg.SizeBytes()/2 {
		t.Logf("note: smallest benchmark %dB is below half the cache", min)
	}
}
