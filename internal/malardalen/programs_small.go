package malardalen

import "repro/internal/program"

// This file holds the tight-loop benchmarks: their hot code is small
// enough to live in one way per cache set, so losing up to W-1 ways
// costs nothing but losing a whole set costs every fetch of it
// (the paper's category 2: temporal locality in the MRU position).

// bs mirrors Mälardalen bs: binary search over a 15-entry array.
// A single small loop with a three-way comparison inside.
func bs() *program.Program {
	b := program.New("bs")
	b.Func("main").
		Ops(56). // array initialization and bounds setup (cold code)
		Loop(4, func(l *program.Body) {
			l.Ops(4) // mid computation, load
			l.If(func(hit *program.Body) {
				hit.Ops(3) // record position, break flag
			}, func(miss *program.Body) {
				miss.If(func(lo *program.Body) {
					lo.Ops(2) // up = mid-1
				}, func(hi *program.Body) {
					hi.Ops(2) // low = mid+1
				})
			})
		}).
		Ops(2) // return value selection
	return b.MustBuild()
}

// fibcall mirrors Mälardalen fibcall: iterative Fibonacci of 30.
func fibcall() *program.Program {
	b := program.New("fibcall")
	b.Func("main").
		Ops(240). // argument unpacking and result buffer (cold -O0 code)
		Loop(20, func(l *program.Body) {
			l.Ops(4) // temp = a+b; a = b; b = temp
		}).
		Ops(10)
	return b.MustBuild()
}

// insertsort mirrors Mälardalen insertsort: insertion sort of a
// 10-element array (triangular nested loop).
func insertsort() *program.Program {
	b := program.New("insertsort")
	b.Func("main").
		Ops(360). // unrolled array initialization (cold -O0 code)
		Loop(5, func(outer *program.Body) {
			outer.Ops(3) // key = a[i]
			outer.Loop(5, func(inner *program.Body) {
				inner.Ops(4) // compare + shift
				inner.If(func(brk *program.Body) {
					brk.Ops(2) // early exit bookkeeping
				}, nil)
			})
			outer.Ops(2) // a[j+1] = key
		})
	return b.MustBuild()
}

// prime mirrors Mälardalen prime: trial-division primality testing.
func prime() *program.Program {
	b := program.New("prime")
	b.Func("main").
		Ops(360). // sieve table setup (cold -O0 code)
		Loop(8, func(outer *program.Body) {
			outer.Ops(3) // candidate selection
			outer.If(func(odd *program.Body) {
				odd.Loop(6, func(div *program.Body) {
					div.Ops(4) // modulo check
					div.If(func(comp *program.Body) {
						comp.Ops(2) // mark composite
					}, nil)
				})
			}, func(even *program.Body) {
				even.Ops(2)
			})
		})
	return b.MustBuild()
}

// expint mirrors Mälardalen expint: exponential integral with an inner
// series loop guarded by a conditional.
func expint() *program.Program {
	b := program.New("expint")
	b.Func("main").
		Ops(360). // Chebyshev coefficient tables (cold -O0 code)
		Loop(6, func(outer *program.Body) {
			outer.Ops(3)
			outer.If(func(series *program.Body) {
				series.Loop(5, func(inner *program.Body) {
					inner.Ops(5) // term update, accumulate
				})
			}, func(direct *program.Body) {
				direct.Ops(6)
			})
		}).
		Ops(3)
	return b.MustBuild()
}

// ns mirrors Mälardalen ns: search in a 4-dimensional table
// (four nested loops around a tiny comparison body).
func ns() *program.Program {
	b := program.New("ns")
	b.Func("main").
		Ops(400). // 4-D table initialization (cold -O0 code)
		Loop(3, func(l1 *program.Body) {
			l1.Loop(3, func(l2 *program.Body) {
				l2.Loop(3, func(l3 *program.Body) {
					l3.Loop(4, func(l4 *program.Body) {
						l4.Ops(4) // table load + compare
						l4.If(func(found *program.Body) {
							found.Ops(3) // record indices
						}, nil)
					})
				})
			})
		})
	return b.MustBuild()
}

// cnt mirrors Mälardalen cnt: count negative/positive cells of a 10x10
// matrix (two nested loops, a branch per cell).
func cnt() *program.Program {
	b := program.New("cnt")
	b.Func("main").
		Ops(360). // matrix fill prologue (cold -O0 code)
		Loop(5, func(row *program.Body) {
			row.Ops(2)
			row.Loop(5, func(col *program.Body) {
				col.Ops(4) // load cell
				col.If(func(neg *program.Body) {
					neg.Ops(3) // negative sum/count
				}, func(pos *program.Body) {
					pos.Ops(3) // positive sum/count
				})
			})
		}).
		Ops(4)
	return b.MustBuild()
}

// bsort100 mirrors Mälardalen bsort100: bubble sort of 100 integers
// (nested loops with a compare-and-swap body). Bounds are scaled to 14
// to keep the analysis workload proportional to the rest of the suite.
func bsort100() *program.Program {
	b := program.New("bsort100")
	b.Func("main").
		Ops(400). // array shuffle and I/O prologue (cold -O0 code)
		Loop(5, func(outer *program.Body) {
			outer.Ops(2)
			outer.Loop(5, func(inner *program.Body) {
				inner.Ops(4) // load pair, compare
				inner.If(func(swap *program.Body) {
					swap.Ops(4) // swap
				}, nil)
			})
			outer.If(func(done *program.Body) {
				done.Ops(2) // early-termination flag
			}, nil)
		})
	return b.MustBuild()
}

// janneComplex mirrors Mälardalen janne_complex: two nested loops whose
// bodies interact through conditionals.
func janneComplex() *program.Program {
	b := program.New("janne_complex")
	b.Func("main").
		Ops(300). // initialization (cold -O0 code)
		Loop(6, func(outer *program.Body) {
			outer.If(func(a *program.Body) {
				a.Ops(5)
			}, func(bb *program.Body) {
				bb.Ops(7)
			})
			outer.Loop(4, func(inner *program.Body) {
				inner.Ops(5)
				inner.If(func(c *program.Body) {
					c.Ops(3)
				}, nil)
			})
		})
	return b.MustBuild()
}

// fir mirrors Mälardalen fir: a finite impulse response filter — an
// outer loop over samples with an inner multiply-accumulate loop over
// coefficients.
func fir() *program.Program {
	b := program.New("fir")
	b.Func("main").
		Ops(400). // coefficient table fill (cold -O0 code)
		Loop(8, func(sample *program.Body) {
			sample.Ops(4)
			sample.Loop(6, func(tap *program.Body) {
				tap.Ops(5) // load coeff, load sample, MAC
			})
			sample.Ops(3) // scale + store output
		})
	return b.MustBuild()
}
