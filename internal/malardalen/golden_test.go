package malardalen_test

import (
	"testing"

	pwcet "repro"
)

// goldenRow records the analysis outputs of one benchmark under the
// paper's configuration (pfail = 1e-4, target 1e-15). These values lock
// the calibrated suite: any change to the benchmark programs, the
// analyses or the distribution machinery that shifts a number must be
// deliberate (update the table in the same change and re-derive the
// EXPERIMENTS.md record).
type goldenRow struct {
	name              string
	ff, none, rw, srb int64
}

var golden = []goldenRow{
	{"adpcm", 24577, 314077, 218977, 225877},
	{"bs", 2509, 5509, 2509, 3409},
	{"bsort100", 11453, 35753, 11453, 18653},
	{"cnt", 10702, 32302, 10702, 18302},
	{"cover", 33553, 64053, 35653, 35653},
	{"crc", 20397, 233097, 148997, 174697},
	{"edn", 18349, 63149, 18449, 28849},
	{"expint", 10766, 31966, 10766, 17766},
	{"fdct", 156983, 214583, 156983, 156983},
	{"fft", 20754, 150454, 124654, 125154},
	{"fibcall", 6993, 17293, 6993, 8993},
	{"fir", 11583, 45283, 11583, 22583},
	{"insertsort", 10463, 31063, 10463, 18063},
	{"janne_complex", 9269, 32069, 9269, 16169},
	{"jfdctint", 173725, 236225, 173725, 173725},
	{"ludcmp", 23555, 232555, 121155, 124355},
	{"matmult", 14078, 58978, 14078, 29878},
	{"minver", 14621, 65121, 21921, 31121},
	{"ndes", 161663, 292763, 201663, 203163},
	{"ns", 12686, 93486, 12686, 40386},
	{"nsichneu", 60940, 94540, 60940, 60940},
	{"prime", 10623, 45423, 10623, 21623},
	{"qurt", 24634, 412934, 302634, 335434},
	{"statemate", 41591, 62091, 43791, 43791},
	{"ud", 62331, 853731, 516031, 529331},
}

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	for _, g := range golden {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			p, err := pwcet.Benchmark(g.name)
			if err != nil {
				t.Fatal(err)
			}
			results, err := pwcet.AnalyzeAll(p, pwcet.Options{Pfail: 1e-4})
			if err != nil {
				t.Fatal(err)
			}
			none, rw, srb := results[pwcet.None], results[pwcet.RW], results[pwcet.SRB]
			if none.FaultFreeWCET != g.ff {
				t.Errorf("fault-free WCET = %d, golden %d", none.FaultFreeWCET, g.ff)
			}
			if none.PWCET != g.none {
				t.Errorf("pWCET none = %d, golden %d", none.PWCET, g.none)
			}
			if rw.PWCET != g.rw {
				t.Errorf("pWCET rw = %d, golden %d", rw.PWCET, g.rw)
			}
			if srb.PWCET != g.srb {
				t.Errorf("pWCET srb = %d, golden %d", srb.PWCET, g.srb)
			}
		})
	}
}

// TestGoldenCategories locks each benchmark's Figure-4 category (1:
// both mechanisms reach fault-free, 2: only RW does, 3: similar gains,
// 4: mixed) as derived from the golden values.
func TestGoldenCategories(t *testing.T) {
	want := map[string]int{
		"fdct": 1, "jfdctint": 1, "nsichneu": 1,
		"bs": 2, "bsort100": 2, "cnt": 2, "expint": 2, "fibcall": 2,
		"fir": 2, "insertsort": 2, "janne_complex": 2, "matmult": 2,
		"ns": 2, "prime": 2,
		"cover": 3, "fft": 3, "ludcmp": 3, "ndes": 3, "statemate": 3, "ud": 3,
		"adpcm": 4, "crc": 4, "edn": 4, "minver": 4, "qurt": 4,
	}
	for _, g := range golden {
		gainRW := 1 - float64(g.rw)/float64(g.none)
		gainSRB := 1 - float64(g.srb)/float64(g.none)
		var cat int
		switch {
		case g.rw == g.ff && g.srb == g.ff:
			cat = 1
		case g.rw == g.ff:
			cat = 2
		case gainRW-gainSRB < 0.02:
			cat = 3
		default:
			cat = 4
		}
		if cat != want[g.name] {
			t.Errorf("%s: category %d, want %d", g.name, cat, want[g.name])
		}
	}
}

func TestGoldenCoversSuite(t *testing.T) {
	names := map[string]bool{}
	for _, g := range golden {
		names[g.name] = true
	}
	for _, n := range pwcet.Benchmarks() {
		if !names[n] {
			t.Errorf("benchmark %s missing from the golden table", n)
		}
	}
	if len(golden) != len(pwcet.Benchmarks()) {
		t.Errorf("golden table has %d rows, suite has %d", len(golden), len(pwcet.Benchmarks()))
	}
}
