package fault

// Composable fault scenarios.
//
// The source paper models one fault environment: permanent faults,
// SRAM cells that fail at boot and stay failed, folded into the
// per-way fault-probability vector of equations 2 and 3. A Scenario
// generalizes that into a first-class, composable description of the
// fault environment, with three implementations:
//
//   - Permanent: the paper's boot-time model, parameterized by the
//     per-bit failure probability pfail. The analysis pipeline under a
//     Permanent scenario is byte-identical to the historical
//     (Mechanism, pfail) pipeline.
//   - Transient: a per-access SEU (single-event-upset) model in the
//     spirit of Del Tedesco et al.'s environmental-noise analyses and
//     Das & Dey's per-access unreliability: soft errors strike cache
//     lines as independent Poisson processes with rate Lambda per line
//     per cycle, invalidating the struck line. An access that would
//     have hit suffers an extra miss when an upset struck its line
//     since the previous access to it.
//   - Combined: a degraded cache AND soft errors — the product
//     composition of the two. The permanent and transient penalty
//     distributions are independent (boot-time cell failures versus
//     in-flight particle strikes), so they convolve.
//
// Scenario values are small comparable structs: they can key memoized
// artifacts and deduplicate sweep grids directly.
//
// # Soundness of the transient model
//
// Each extra transient miss requires a distinct upset: one upset
// invalidates one line once, and after the reload a further miss needs
// a further upset. For a fixed access sequence, the invalidation
// windows of consecutive accesses to the same line are disjoint, so by
// the independent-increments property of the Poisson process the
// per-access "line was invalidated since its previous access"
// indicators are independent, each with probability
// 1 - exp(-Lambda*d) where d is that access's inter-access distance.
// Bounding every d by a bound D on the whole run duration and the
// number of vulnerable accesses per set by the ILP bound of
// ipet.ComputeHitBounds, the per-set count of transient extra misses
// is stochastically dominated by Binomial(N_s, 1-exp(-Lambda*D)) —
// the distribution BinomialPoints materializes. Everything downstream
// (convolution across independent sets, coarsening) preserves the
// exceedance upper bound.

import (
	"fmt"
	"math"
)

// Kind identifies the scenario family. It is one of the repo's checked
// enums: every switch over a Kind must be exhaustive or panic in
// default (enforced by the exhaustenum analyzer).
type Kind int

const (
	// KindPermanent is the paper's boot-time permanent-fault model.
	KindPermanent Kind = iota
	// KindTransient is the per-access SEU model (rate Lambda).
	KindTransient
	// KindCombined composes a permanently degraded cache with SEUs.
	KindCombined
)

// String returns the wire name used by batch specs and CLI flags.
func (k Kind) String() string {
	switch k {
	case KindPermanent:
		return "permanent"
	case KindTransient:
		return "transient"
	case KindCombined:
		return "combined"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a wire name ("permanent", "transient",
// "combined") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "permanent":
		return KindPermanent, nil
	case "transient":
		return KindTransient, nil
	case "combined":
		return KindCombined, nil
	}
	return 0, fmt.Errorf("fault: unknown fault model %q (want permanent, transient or combined)", s)
}

// Scenario is a composable description of the fault environment of one
// analysis. The three implementations — Permanent, Transient, Combined
// — are small comparable structs, so Scenario values can be compared
// and used as map keys directly.
type Scenario interface {
	// Kind identifies the scenario family.
	Kind() Kind
	// Validate checks the scenario parameters' domains.
	Validate() error
	// String renders the scenario for logs and reports.
	String() string
}

// Permanent is the paper's fault environment: every SRAM cell fails
// permanently at boot with probability Pfail (equations 1–3). The
// analysis under a Permanent scenario is byte-identical to the
// historical pfail-parameterized pipeline.
type Permanent struct {
	// Pfail is the per-bit permanent failure probability, in [0,1].
	Pfail float64
}

// Kind returns KindPermanent.
func (Permanent) Kind() Kind { return KindPermanent }

// Validate checks the parameter domain.
func (s Permanent) Validate() error { return validatePfail(s.Pfail) }

// String renders the scenario.
func (s Permanent) String() string { return fmt.Sprintf("permanent(pfail=%g)", s.Pfail) }

// Transient is the SEU fault environment: soft errors strike each
// cache line as an independent Poisson process with rate Lambda
// (upsets per line per cycle), invalidating the line. Permanent faults
// are absent.
type Transient struct {
	// Lambda is the per-line per-cycle upset rate, >= 0.
	Lambda float64
}

// Kind returns KindTransient.
func (Transient) Kind() Kind { return KindTransient }

// Validate checks the parameter domain.
func (s Transient) Validate() error { return validateLambda(s.Lambda) }

// String renders the scenario.
func (s Transient) String() string { return fmt.Sprintf("transient(lambda=%g)", s.Lambda) }

// Combined composes a permanently degraded cache (per-bit failure
// probability Pfail) with soft errors (per-line per-cycle upset rate
// Lambda). The two fault populations are independent, so their penalty
// distributions convolve; Combined{Pfail, 0} is equivalent to
// Permanent{Pfail} and Combined{0, Lambda} to Transient{Lambda}
// (asserted byte-identical by the differential suite).
type Combined struct {
	// Pfail is the per-bit permanent failure probability, in [0,1].
	Pfail float64
	// Lambda is the per-line per-cycle upset rate, >= 0.
	Lambda float64
}

// Kind returns KindCombined.
func (Combined) Kind() Kind { return KindCombined }

// Validate checks both parameter domains.
func (s Combined) Validate() error {
	if err := validatePfail(s.Pfail); err != nil {
		return err
	}
	return validateLambda(s.Lambda)
}

// String renders the scenario.
func (s Combined) String() string {
	return fmt.Sprintf("combined(pfail=%g, lambda=%g)", s.Pfail, s.Lambda)
}

func validatePfail(pfail float64) error {
	if pfail < 0 || pfail > 1 || math.IsNaN(pfail) {
		return fmt.Errorf("fault: pfail %g outside [0,1]", pfail)
	}
	return nil
}

func validateLambda(lambda float64) error {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return fmt.Errorf("fault: lambda %g must be a finite rate >= 0", lambda)
	}
	return nil
}

// Components decomposes a scenario into its permanent and transient
// parameters: pfail is 0 when the scenario has no permanent component,
// lambda is 0 when it has no transient component. The switch is
// exhaustive over Kind — an unhandled scenario family is a programming
// error, not a silent default.
func Components(s Scenario) (pfail, lambda float64) {
	switch s.Kind() {
	case KindPermanent:
		return s.(Permanent).Pfail, 0
	case KindTransient:
		return 0, s.(Transient).Lambda
	case KindCombined:
		c := s.(Combined)
		return c.Pfail, c.Lambda
	default:
		panic(fmt.Sprintf("fault: unhandled scenario kind %v", s.Kind()))
	}
}

// TransientModel carries the derived per-access parameters of one
// transient analysis — the SEU analogue of Model.
type TransientModel struct {
	// Lambda is the per-line per-cycle upset rate.
	Lambda float64
	// Window is the sound bound on any access's inter-access distance
	// in cycles: the bound on the whole run duration (fault-free WCET
	// plus the maximal permanent penalty plus one miss penalty per
	// vulnerable access).
	Window int64
	// PMiss is the derived per-access extra-miss probability:
	// 1 - exp(-Lambda*Window), the probability that at least one upset
	// struck the access's line within its window.
	PMiss float64
}

// NewTransientModel derives the per-access extra-miss probability from
// the upset rate and the run-duration bound. The probability is
// computed stably via expm1 for tiny rates.
func NewTransientModel(lambda float64, window int64) (TransientModel, error) {
	if err := validateLambda(lambda); err != nil {
		return TransientModel{}, err
	}
	if window <= 0 {
		return TransientModel{}, fmt.Errorf("fault: transient window %d must be positive cycles", window)
	}
	p := -math.Expm1(-lambda * float64(window))
	if p > 1 {
		p = 1
	}
	return TransientModel{Lambda: lambda, Window: window, PMiss: p}, nil
}
