// Package fault implements the paper's permanent-fault model
// (Section II.A): every SRAM cell fails independently with probability
// pfail; a cache block with at least one faulty bit is disabled.
//
// Equations implemented:
//
//	pbf    = 1 - (1-pfail)^K                       (1)
//	pwf(w) = C(W,w)   pbf^w (1-pbf)^(W-w)          (2)
//	pwf(w) = C(W-1,w) pbf^w (1-pbf)^(W-1-w)        (3, Reliable Way)
//
// The package also samples concrete fault maps for Monte-Carlo validation.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cache"
)

// PBF returns the probability that a cache block of blockBits bits holds
// at least one permanently faulty cell (equation 1).
func PBF(pfail float64, blockBits int) float64 {
	if pfail <= 0 {
		return 0
	}
	if pfail >= 1 {
		return 1
	}
	// 1-(1-p)^K computed stably via expm1/log1p for tiny p.
	return -math.Expm1(float64(blockBits) * math.Log1p(-pfail))
}

// PWF returns the distribution of the number of faulty ways among W
// (equation 2): PWF(W, pbf)[w] = P(exactly w faulty ways), w in [0, W].
func PWF(ways int, pbf float64) []float64 {
	return binomial(ways, pbf)
}

// PWFReliableWay returns the faulty-way distribution under the Reliable
// Way mechanism (equation 3): faults in the fixed reliable way are
// masked, so only W-1 ways can fail; the result has W entries for
// w in [0, W-1].
func PWFReliableWay(ways int, pbf float64) []float64 {
	return binomial(ways-1, pbf)
}

func binomial(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for w := 0; w <= n; w++ {
		out[w] = choose(n, w) * math.Pow(p, float64(w)) * math.Pow(1-p, float64(n-w))
	}
	return out
}

func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// Model bundles the fault parameters of one analysis.
type Model struct {
	// Pfail is the per-bit probability of permanent failure.
	Pfail float64
	// PBF is the derived per-block failure probability (equation 1).
	PBF float64
}

// NewModel derives the block-failure probability for a cache
// configuration (equation 1 with K = block size in bits).
func NewModel(pfail float64, cfg cache.Config) (Model, error) {
	if pfail < 0 || pfail > 1 || math.IsNaN(pfail) {
		return Model{}, fmt.Errorf("fault: pfail %g outside [0,1]", pfail)
	}
	return Model{Pfail: pfail, PBF: PBF(pfail, cfg.BlockBits())}, nil
}

// SampleFaultMap draws a random fault map: each block is independently
// faulty with probability m.PBF. This realizes the paper's "locations of
// permanently faulty SRAM cells are random" assumption at block grain.
func (m Model) SampleFaultMap(rng *rand.Rand, cfg cache.Config) cache.FaultMap {
	fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
	for s := 0; s < cfg.Sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			if rng.Float64() < m.PBF {
				fm[s][w] = true
			}
		}
	}
	return fm
}
