// Package fault implements the paper's permanent-fault model
// (Section II.A): every SRAM cell fails independently with probability
// pfail; a cache block with at least one faulty bit is disabled.
//
// Equations implemented:
//
//	pbf    = 1 - (1-pfail)^K                       (1)
//	pwf(w) = C(W,w)   pbf^w (1-pbf)^(W-w)          (2)
//	pwf(w) = C(W-1,w) pbf^w (1-pbf)^(W-1-w)        (3, Reliable Way)
//
// The package also samples concrete fault maps for Monte-Carlo validation.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cache"
)

// PBF returns the probability that a cache block of blockBits bits holds
// at least one permanently faulty cell (equation 1).
func PBF(pfail float64, blockBits int) float64 {
	if pfail <= 0 {
		return 0
	}
	if pfail >= 1 {
		return 1
	}
	// 1-(1-p)^K computed stably via expm1/log1p for tiny p.
	return -math.Expm1(float64(blockBits) * math.Log1p(-pfail))
}

// PWF returns the distribution of the number of faulty ways among W
// (equation 2): PWF(W, pbf)[w] = P(exactly w faulty ways), w in [0, W].
func PWF(ways int, pbf float64) []float64 {
	return binomial(ways, pbf)
}

// PWFReliableWay returns the faulty-way distribution under the Reliable
// Way mechanism (equation 3): faults in the fixed reliable way are
// masked, so only W-1 ways can fail; the result has W entries for
// w in [0, W-1].
func PWFReliableWay(ways int, pbf float64) []float64 {
	return binomial(ways-1, pbf)
}

func binomial(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for w := 0; w <= n; w++ {
		out[w] = choose(n, w) * math.Pow(p, float64(w)) * math.Pow(1-p, float64(n-w))
	}
	renormalize(out)
	return out
}

// renormalize rescales a probability vector so it sums to exactly 1:
// the binomial terms individually round, so their float sum can drift
// a few ulps from 1, and at the paper's 1e-15 target exceedance a
// penalty distribution carrying more or less than unit mass shifts the
// deep-tail quantiles. After the multiplicative rescale, the residual
// ulps are folded into the largest entry — where they are relatively
// smallest and can never flip a sign; the tail entries, whose tiny
// masses pin the deep quantiles, are left bit-exact. Folding moves the
// forward sum by one rounding step per pass, so a handful of passes
// reaches a sum of exactly 1 (each pass strictly shrinks |1-sum| until
// it hits 0).
func renormalize(out []float64) {
	var sum float64
	argmax := 0
	for i, v := range out {
		sum += v
		if v > out[argmax] {
			argmax = i
		}
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return // degenerate input; leave it to the caller's validation
	}
	if sum != 1 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	// Exactness step: the rescaled forward sum still rounds, leaving a
	// residual of an ulp or two. The forward sum is monotone in every
	// entry, so for each entry (largest first) bracket the target and
	// bisect over the entry's ulp offsets until the sum lands exactly on
	// 1; if the sum's rounding steps over 1 on this entry (possible when
	// the partial crossing 1 rounds at coarser granularity than the
	// entry moves it), restore it and try the next. The winning entry
	// absorbed only ulps of itself — a relative error of a few 1e-16 —
	// so even when a tail entry is chosen, the tiny masses that pin the
	// deep quantiles keep their accuracy.
	if forwardSum(out) == 1 {
		return
	}
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return out[order[a]] > out[order[b]] })
	for _, j := range order {
		if exactifyAt(out, j) {
			return
		}
	}
	// No entry admits an exact landing (not observed in practice); the
	// sum is off by at most a couple of ulps, well inside
	// dist.MassTolerance.
}

// exactifyAt tries to make forwardSum(out) exactly 1 by adjusting only
// out[j], bisecting over ulp offsets of the entry. It reports success;
// on failure out[j] is restored.
func exactifyAt(out []float64, j int) bool {
	x0 := out[j]
	if x0 <= 0 || math.IsInf(x0, 0) || math.IsNaN(x0) {
		return false
	}
	f := func(k int64) float64 {
		out[j] = ulpOffset(x0, k)
		return forwardSum(out)
	}
	// Expand a bracket [klo, khi] in ulp offsets with f(klo) < 1 < f(khi).
	const maxExp = int64(1) << 40
	var klo, khi int64
	s := f(0)
	switch {
	case s == 1:
		return true
	case s < 1:
		klo = 0
		for khi = 1; ; khi *= 2 {
			if v := f(khi); v == 1 {
				return true
			} else if v > 1 {
				break
			}
			if khi >= maxExp {
				out[j] = x0
				return false // entry too small to move the sum
			}
		}
	default:
		khi = 0
		for klo = -1; ; klo *= 2 {
			if ulpOffset(x0, klo) <= 0 {
				out[j] = x0
				return false // cannot shrink this entry enough
			}
			if v := f(klo); v == 1 {
				return true
			} else if v < 1 {
				break
			}
			if klo <= -maxExp {
				out[j] = x0
				return false
			}
		}
	}
	for khi-klo > 1 {
		mid := klo + (khi-klo)/2
		switch v := f(mid); {
		case v == 1:
			return true
		case v < 1:
			klo = mid
		default:
			khi = mid
		}
	}
	out[j] = x0
	return false // the rounded sum steps over 1 on this entry
}

// ulpOffset returns the float k representable steps away from the
// positive float x (negative k steps toward zero), clamping at 0. The
// IEEE-754 bit patterns of positive floats are ordered, so stepping is
// integer arithmetic on the representation.
func ulpOffset(x float64, k int64) float64 {
	b := int64(math.Float64bits(x)) + k
	if b <= 0 {
		return 0
	}
	return math.Float64frombits(uint64(b))
}

func forwardSum(out []float64) float64 {
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// Model bundles the fault parameters of one analysis.
type Model struct {
	// Pfail is the per-bit probability of permanent failure.
	Pfail float64
	// PBF is the derived per-block failure probability (equation 1).
	PBF float64
}

// NewModel derives the block-failure probability for a cache
// configuration (equation 1 with K = block size in bits).
func NewModel(pfail float64, cfg cache.Config) (Model, error) {
	if pfail < 0 || pfail > 1 || math.IsNaN(pfail) {
		return Model{}, fmt.Errorf("fault: pfail %g outside [0,1]", pfail)
	}
	return Model{Pfail: pfail, PBF: PBF(pfail, cfg.BlockBits())}, nil
}

// SampleFaultMap draws a random fault map: each block is independently
// faulty with probability m.PBF. This realizes the paper's "locations of
// permanently faulty SRAM cells are random" assumption at block grain.
func (m Model) SampleFaultMap(rng *rand.Rand, cfg cache.Config) cache.FaultMap {
	fm := cache.NewFaultMap(cfg.Sets, cfg.Ways)
	for s := 0; s < cfg.Sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			if rng.Float64() < m.PBF {
				fm[s][w] = true
			}
		}
	}
	return fm
}
