package fault

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func binomialDist(t *testing.T, n int64, q float64, step int64) *dist.Dist {
	t.Helper()
	pts, err := BinomialPoints(n, q, step)
	if err != nil {
		t.Fatalf("BinomialPoints(%d, %g, %d): %v", n, q, step, err)
	}
	d, err := dist.New(pts)
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	return d
}

func TestBinomialPointsEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		q    float64
		want int64 // single-atom support value
	}{
		{0, 0.5, 0},       // no trials
		{100, 0, 0},       // upsets impossible
		{100, 1, 100 * 7}, // every access misses
	} {
		d := binomialDist(t, tc.n, tc.q, 7)
		if d.Len() != 1 || d.Max() != tc.want {
			t.Errorf("Binomial(%d, %g): support %d atoms max %d, want the single atom %d",
				tc.n, tc.q, d.Len(), d.Max(), tc.want)
		}
	}
}

func TestBinomialPointsRejectsBadInputs(t *testing.T) {
	cases := []struct {
		n    int64
		q    float64
		step int64
	}{
		{-1, 0.5, 1},
		{10, -0.1, 1},
		{10, 1.1, 1},
		{10, math.NaN(), 1},
		{10, 0.5, 0},
		{10, 0.5, -3},
		{math.MaxInt64, 0.5, 2}, // n*step overflows
	}
	for _, tc := range cases {
		if _, err := BinomialPoints(tc.n, tc.q, tc.step); err == nil {
			t.Errorf("BinomialPoints(%d, %g, %d) accepted", tc.n, tc.q, tc.step)
		}
	}
}

// The materialized pmf must match the direct small-n product formula and
// carry exactly unit mass.
func TestBinomialPointsMatchesDirectFormula(t *testing.T) {
	const n, q, step = 12, 0.3, 100
	d := binomialDist(t, n, q, step)
	pmf := make(map[int64]float64, d.Len())
	for _, pt := range d.Points() {
		pmf[pt.Value] = pt.Prob
	}
	for k := int64(0); k <= n; k++ {
		want := choose(n, int(k)) * math.Pow(q, float64(k)) * math.Pow(1-q, float64(n-k))
		got := pmf[k*step]
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("pmf(%d) = %g, want %g", k, got, want)
		}
	}
}

// Large-n regimes where naive products underflow: the log-space window
// must still carry the mass near the mode, total exactly 1 after
// dist.New's renormalization, and mean close to n*q.
func TestBinomialPointsLargeN(t *testing.T) {
	for _, tc := range []struct {
		n int64
		q float64
	}{
		{100_000, 1e-4},
		{100_000, 0.5}, // (1-q)^n underflows catastrophically
		{1_000_000, 1e-6},
		{50_000, 0.999},
	} {
		d := binomialDist(t, tc.n, tc.q, 1)
		mean := 0.0
		for _, pt := range d.Points() {
			mean += float64(pt.Value) * pt.Prob
		}
		want := float64(tc.n) * tc.q
		// The residual fold to n*step shifts the mean up by the folded
		// mass (the forward sum's rounding, ~1e-10) times the support.
		if math.Abs(mean-want) > 1e-6*want+1e-9*float64(tc.n) {
			t.Errorf("Binomial(%d, %g): mean %g, want ~%g", tc.n, tc.q, mean, want)
		}
		if d.Max() > tc.n {
			t.Errorf("Binomial(%d, %g): support max %d exceeds n", tc.n, tc.q, d.Max())
		}
	}
}

// The tail fold keeps the result a sound exceedance upper bound of the
// true binomial: at every threshold the materialized P(X >= v) must be
// >= the true tail (checked against an exact small-n reference).
func TestBinomialPointsSoundTail(t *testing.T) {
	const n, q, step = 40, 0.2, 1
	d := binomialDist(t, n, q, step)
	for v := int64(0); v <= n; v++ {
		var want float64
		for k := v; k <= n; k++ {
			want += choose(n, int(k)) * math.Pow(q, float64(k)) * math.Pow(1-q, float64(n-k))
		}
		got := d.CCDF(v - 1) // P(X > v-1) = P(X >= v)
		if got < want-1e-12 {
			t.Errorf("P(X >= %d) = %g below true %g", v, got, want)
		}
	}
}

// The scan is a pure function of its arguments: same inputs, same atoms.
func TestBinomialPointsDeterministic(t *testing.T) {
	a, err := BinomialPoints(10_000, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinomialPoints(10_000, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("atom %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
