package fault

import (
	"math"
	"testing"
)

func TestVoltageModelCalibration(t *testing.T) {
	m := DefaultVoltageModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's [5] citation: pfail = 1e-3 at 0.5V (32nm).
	if got := m.Pfail(0.5); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("pfail(0.5V) = %g, want 1e-3", got)
	}
	// One decade per Decade volts.
	if got := m.Pfail(0.5 + m.Decade); math.Abs(got-1e-4) > 1e-12 {
		t.Errorf("pfail(Vmin+decade) = %g, want 1e-4", got)
	}
}

func TestVoltageMonotone(t *testing.T) {
	m := DefaultVoltageModel()
	prev := 2.0
	for v := 0.4; v <= 1.1; v += 0.05 {
		p := m.Pfail(v)
		if p > prev {
			t.Fatalf("pfail not decreasing at %gV", v)
		}
		if p < 0 || p > 1 {
			t.Fatalf("pfail(%gV) = %g outside [0,1]", v, p)
		}
		prev = p
	}
	// Deep undervolting clamps at 1.
	if got := m.Pfail(0.01); got != 1 {
		t.Errorf("pfail(0.01V) = %g, want 1 (clamped)", got)
	}
}

func TestMinVoltageFor(t *testing.T) {
	m := DefaultVoltageModel()
	v, err := m.MinVoltageFor(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip: pfail at the returned voltage equals the target.
	if got := m.Pfail(v); math.Abs(got-1e-4)/1e-4 > 1e-9 {
		t.Errorf("pfail(MinVoltageFor(1e-4)) = %g", got)
	}
	// Tighter targets need higher voltages.
	v2, err := m.MinVoltageFor(1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v {
		t.Errorf("voltage for 1e-8 (%g) not above voltage for 1e-4 (%g)", v2, v)
	}
	if _, err := m.MinVoltageFor(0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := m.MinVoltageFor(1); err == nil {
		t.Error("target 1 accepted")
	}
}

func TestVoltageModelValidate(t *testing.T) {
	for _, bad := range []VoltageModel{
		{Vmin: 0.5, PfailAtVmin: 0, Decade: 0.1},
		{Vmin: 0.5, PfailAtVmin: 2, Decade: 0.1},
		{Vmin: 0.5, PfailAtVmin: 1e-3, Decade: 0},
		{Vmin: 0, PfailAtVmin: 1e-3, Decade: 0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid model %+v accepted", bad)
		}
	}
}
