package fault

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cache"
)

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPermanent, KindTransient, KindCombined} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("lamda"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if s := Kind(42).String(); s != "Kind(42)" {
		t.Fatalf("out-of-range Kind string = %q", s)
	}
}

func TestScenarioValidate(t *testing.T) {
	valid := []Scenario{
		Permanent{},
		Permanent{Pfail: 1e-4},
		Permanent{Pfail: 1},
		Transient{},
		Transient{Lambda: 1e-9},
		Combined{Pfail: 1e-4, Lambda: 1e-9},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%v.Validate() = %v, want nil", s, err)
		}
	}
	invalid := []Scenario{
		Permanent{Pfail: -1e-9},
		Permanent{Pfail: 1.0000001},
		Permanent{Pfail: math.NaN()},
		Transient{Lambda: -1},
		Transient{Lambda: math.NaN()},
		Transient{Lambda: math.Inf(1)},
		Combined{Pfail: 2, Lambda: 0},
		Combined{Pfail: 0, Lambda: -1},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%#v.Validate() = nil, want error", s)
		}
	}
}

func TestScenarioComponents(t *testing.T) {
	cases := []struct {
		s          Scenario
		pf, lambda float64
	}{
		{Permanent{Pfail: 1e-4}, 1e-4, 0},
		{Transient{Lambda: 1e-9}, 0, 1e-9},
		{Combined{Pfail: 1e-3, Lambda: 1e-8}, 1e-3, 1e-8},
	}
	for _, tc := range cases {
		pf, la := Components(tc.s)
		if pf != tc.pf || la != tc.lambda {
			t.Errorf("Components(%v) = (%g, %g), want (%g, %g)", tc.s, pf, la, tc.pf, tc.lambda)
		}
	}
}

// Scenario values are comparable structs by design: they key memoized
// artifacts and deduplicate sweep grids directly.
func TestScenarioComparable(t *testing.T) {
	m := map[Scenario]int{
		Permanent{Pfail: 1e-4}:                1,
		Transient{Lambda: 1e-9}:               2,
		Combined{Pfail: 1e-4, Lambda: 1e-9}:   3,
		Combined{Pfail: 1e-4, Lambda: 2e-9}:   4,
		Combined{Pfail: 1.1e-4, Lambda: 1e-9}: 5,
	}
	if len(m) != 5 {
		t.Fatalf("scenario map collapsed to %d entries, want 5", len(m))
	}
	if m[Transient{Lambda: 1e-9}] != 2 {
		t.Fatal("scenario map lookup by equal value failed")
	}
}

func TestNewTransientModel(t *testing.T) {
	tm, err := NewTransientModel(1e-9, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Expm1(-1e-9 * 1e6)
	if tm.PMiss != want {
		t.Fatalf("PMiss = %g, want %g", tm.PMiss, want)
	}
	if tm.Lambda != 1e-9 || tm.Window != 1_000_000 {
		t.Fatalf("model did not echo its parameters: %+v", tm)
	}

	// Zero rate: upsets never happen.
	tm, err = NewTransientModel(0, 100)
	if err != nil || tm.PMiss != 0 {
		t.Fatalf("lambda=0: PMiss = %g, err = %v", tm.PMiss, err)
	}
	// Huge rate: probability saturates at exactly 1, never above.
	tm, err = NewTransientModel(1e30, math.MaxInt64)
	if err != nil || tm.PMiss != 1 {
		t.Fatalf("huge lambda: PMiss = %g, err = %v", tm.PMiss, err)
	}
	if _, err := NewTransientModel(-1, 100); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := NewTransientModel(1e-9, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// renormalize edge cases (satellite): the degenerate guards must leave
// hopeless inputs untouched, and regular pwf vectors must come out
// exactly unit-sum.
func TestRenormalizeEdgeCases(t *testing.T) {
	// All-zero vector: no rescale is possible; left as-is.
	zeros := []float64{0, 0, 0}
	renormalize(zeros)
	if !reflect.DeepEqual(zeros, []float64{0, 0, 0}) {
		t.Fatalf("all-zero vector mutated: %v", zeros)
	}
	// NaN/Inf sums are degenerate too.
	nan := []float64{math.NaN(), 0.5}
	renormalize(nan)
	if !math.IsNaN(nan[0]) || nan[1] != 0.5 {
		t.Fatalf("NaN vector mutated: %v", nan)
	}
	inf := []float64{math.Inf(1), 0.5}
	renormalize(inf)
	if !math.IsInf(inf[0], 1) || inf[1] != 0.5 {
		t.Fatalf("Inf vector mutated: %v", inf)
	}

	// Single atom: rescales to exactly 1.
	single := []float64{0.3}
	renormalize(single)
	if single[0] != 1 {
		t.Fatalf("single atom = %g, want exactly 1", single[0])
	}

	// Already exact: bit-identical passthrough.
	exact := []float64{0.5, 0.25, 0.25}
	want := append([]float64(nil), exact...)
	renormalize(exact)
	if !reflect.DeepEqual(exact, want) {
		t.Fatalf("already-exact vector changed: %v", exact)
	}

	// A drifted vector lands on exactly 1.
	drift := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	renormalize(drift)
	if got := forwardSum(drift); got != 1 {
		t.Fatalf("renormalized sum = %g (off by %g), want exactly 1", got, got-1)
	}

	// Real pwf vectors across magnitudes end exactly unit-sum.
	for _, pbf := range []float64{1e-12, 1e-6, 1e-3, 0.1, 0.9} {
		for _, ways := range []int{2, 4, 8} {
			if got := forwardSum(PWF(ways, pbf)); got != 1 {
				t.Errorf("PWF(%d, %g) sum = %g, want exactly 1", ways, pbf, got)
			}
			if got := forwardSum(PWFReliableWay(ways, pbf)); got != 1 {
				t.Errorf("PWFReliableWay(%d, %g) sum = %g, want exactly 1", ways, pbf, got)
			}
		}
	}
}

// exactifyAt edge cases (satellite): entries that cannot host the
// adjustment must be restored bit-identically, and a feasible entry must
// land the forward sum on exactly 1.
func TestExactifyAtEdgeCases(t *testing.T) {
	// Non-positive and non-finite entries are rejected outright.
	for _, bad := range []float64{0, -0.5, math.NaN(), math.Inf(1)} {
		out := []float64{bad, 0.5}
		if exactifyAt(out, 0) {
			t.Errorf("exactifyAt succeeded on entry %g", bad)
		}
		if b, w := math.Float64bits(out[0]), math.Float64bits(bad); b != w {
			t.Errorf("rejected entry mutated: %g -> %g", bad, out[0])
		}
	}

	// An entry far too small to move the sum: failure, entry restored.
	out := []float64{5e-324, 0.75}
	if exactifyAt(out, 0) {
		t.Fatal("exactifyAt moved the sum with a subnormal entry")
	}
	if out[0] != 5e-324 {
		t.Fatalf("failed attempt did not restore the entry: %g", out[0])
	}

	// Already exact: immediate success, nothing moves.
	out = []float64{0.5, 0.5}
	if !exactifyAt(out, 0) {
		t.Fatal("exactifyAt failed on an already-exact vector")
	}
	if out[0] != 0.5 || out[1] != 0.5 {
		t.Fatalf("exact vector mutated: %v", out)
	}

	// A one-ulp drift is absorbed by the large entry.
	out = []float64{ulpOffset(0.5, -1), 0.5}
	if !exactifyAt(out, 1) {
		t.Fatal("exactifyAt could not absorb a one-ulp drift")
	}
	if got := forwardSum(out); got != 1 {
		t.Fatalf("sum after exactifyAt = %g, want exactly 1", got)
	}
}

// SampleFaultMap must be a pure function of (model, rng stream):
// identical seeds yield identical maps, draw after draw (satellite
// regression — the Monte-Carlo validator's reproducibility rests on it).
func TestSampleFaultMapDeterministic(t *testing.T) {
	cfg := cache.PaperConfig()
	m, err := NewModel(1e-3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const seed, draws = 12345, 50
	a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
	total := 0
	for i := 0; i < draws; i++ {
		fa, fb := m.SampleFaultMap(a, cfg), m.SampleFaultMap(b, cfg)
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("draw %d: same seed produced different fault maps", i)
		}
		total += fa.TotalFaulty()
	}
	// Regression pin: the exact faulty-block count of this seeded stream.
	// A change here means the sampling algorithm consumed the rng
	// differently — which silently invalidates recorded validation runs.
	const wantTotal = 381
	if total != wantTotal {
		t.Fatalf("seeded stream drew %d faulty blocks total, want %d", total, wantTotal)
	}
}
