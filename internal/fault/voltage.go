package fault

import (
	"fmt"
	"math"
)

// Voltage-dependent failure model.
//
// The paper's introduction motivates the fault model partly through
// dynamic voltage and frequency scaling: "when using DVFS, SRAM cells
// may begin to fail if the voltage is reduced too much. In [5] the
// predicted pfail for 32nm technology is 1e-3 at 0.5V" (Zhou et al.,
// ICCD 2010). This file provides an exponential cell-failure/voltage
// model calibrated against that citation, so the pfail sweep examples
// can be expressed in operating points rather than raw probabilities.
//
// The model is the standard low-voltage SRAM failure shape: the failure
// probability falls by a constant factor per Delta-V of margin,
//
//	pfail(V) = PfailAtVmin * 10^(-(V - Vmin) / Decade)
//
// clamped to [0, 1]. The default calibration puts 1e-3 at 0.5V and
// roughly 1e-9 at 0.9V nominal — an illustrative slope consistent with
// published low-voltage failure curves, not a foundry model.

// VoltageModel maps supply voltage to per-bit failure probability.
type VoltageModel struct {
	// Vmin is the voltage at which PfailAtVmin holds (volts).
	Vmin float64
	// PfailAtVmin is the per-bit failure probability at Vmin.
	PfailAtVmin float64
	// Decade is the voltage increase that reduces pfail tenfold (volts).
	Decade float64
}

// DefaultVoltageModel returns the calibration described in the package
// comment: pfail(0.5V) = 1e-3 (the paper's [5] citation), one decade
// per ~67mV.
func DefaultVoltageModel() VoltageModel {
	return VoltageModel{Vmin: 0.5, PfailAtVmin: 1e-3, Decade: 0.0667}
}

// Validate reports whether the model parameters are usable.
func (m VoltageModel) Validate() error {
	switch {
	case m.PfailAtVmin <= 0 || m.PfailAtVmin > 1:
		return fmt.Errorf("fault: PfailAtVmin %g outside (0,1]", m.PfailAtVmin)
	case m.Decade <= 0:
		return fmt.Errorf("fault: Decade must be positive, got %g", m.Decade)
	case m.Vmin <= 0:
		return fmt.Errorf("fault: Vmin must be positive, got %g", m.Vmin)
	}
	return nil
}

// Pfail returns the per-bit failure probability at the given supply
// voltage. Voltages below Vmin extrapolate upward (clamped to 1).
func (m VoltageModel) Pfail(voltage float64) float64 {
	p := m.PfailAtVmin * math.Pow(10, -(voltage-m.Vmin)/m.Decade)
	if p > 1 {
		return 1
	}
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	return p
}

// MinVoltageFor returns the lowest supply voltage at which the per-bit
// failure probability stays at or below the given target — the DVFS
// floor a designer can use once the pWCET analysis has established the
// largest tolerable pfail.
func (m VoltageModel) MinVoltageFor(pfailTarget float64) (float64, error) {
	if pfailTarget <= 0 || pfailTarget >= 1 {
		return 0, fmt.Errorf("fault: pfail target %g outside (0,1)", pfailTarget)
	}
	// Invert pfail(V): V = Vmin + Decade * log10(PfailAtVmin / target).
	return m.Vmin + m.Decade*math.Log10(m.PfailAtVmin/pfailTarget), nil
}
