package fault

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// binomialUnderflowLog is the natural-log threshold below which a
// binomial term underflows float64 (exp(-746) == 0, including
// subnormals). Terms beyond it carry exactly zero representable mass,
// so the support scan can stop there without dropping anything a
// float64 distribution could express.
const binomialUnderflowLog = -746.0

// BinomialPoints materializes the distribution of step-scaled
// Binomial(n, q) counts — the per-set transient extra-miss penalty of
// a TransientModel: value k*step with probability C(n,k) q^k (1-q)^(n-k).
//
// The terms are computed in log space (via Lgamma) over the window of
// k whose probability is representable in float64; the window is found
// by expanding outward from the distribution mode, where the log-term
// is maximal, exploiting its concavity in k. All float mass the scan
// could not represent — both tails together, at most a few 1e-300 — is
// folded onto the support maximum n*step, so the result keeps exactly
// unit mass and remains a sound exceedance upper bound: mass only ever
// moved to a larger value. The computation is a pure function of
// (n, q, step) — deterministic across runs and platforms running the
// same Go math library.
//
// n == 0 or q <= 0 yield the degenerate point {0, 1}; q >= 1 yields
// {n*step, 1}.
func BinomialPoints(n int64, q float64, step int64) ([]dist.Point, error) {
	switch {
	case n < 0:
		return nil, fmt.Errorf("fault: binomial count %d is negative", n)
	case step <= 0:
		return nil, fmt.Errorf("fault: binomial step %d must be positive", step)
	case math.IsNaN(q) || q < 0 || q > 1:
		return nil, fmt.Errorf("fault: binomial probability %g outside [0,1]", q)
	case n > 0 && n > math.MaxInt64/step:
		return nil, fmt.Errorf("fault: binomial support %d*%d overflows int64", n, step)
	}
	if n == 0 || q == 0 {
		return []dist.Point{{Value: 0, Prob: 1}}, nil
	}
	if q == 1 {
		return []dist.Point{{Value: n * step, Prob: 1}}, nil
	}

	logQ, logNotQ := math.Log(q), math.Log1p(-q)
	lgN1, _ := math.Lgamma(float64(n) + 1)
	logTerm := func(k int64) float64 {
		lgK1, _ := math.Lgamma(float64(k) + 1)
		lgNK1, _ := math.Lgamma(float64(n-k) + 1)
		return lgN1 - lgK1 - lgNK1 + float64(k)*logQ + float64(n-k)*logNotQ
	}

	// The mode floor((n+1)q) maximizes the term; the log-term is
	// concave in k, so expanding until underflow finds the exact
	// representable window.
	mode := int64(math.Floor(float64(n+1) * q))
	if mode > n {
		mode = n
	}
	lo, hi := mode, mode
	for lo > 0 && logTerm(lo-1) > binomialUnderflowLog {
		lo--
	}
	for hi < n && logTerm(hi+1) > binomialUnderflowLog {
		hi++
	}

	pts := make([]dist.Point, 0, hi-lo+2)
	var sum float64
	for k := lo; k <= hi; k++ {
		p := math.Exp(logTerm(k))
		if p <= 0 {
			continue
		}
		pts = append(pts, dist.Point{Value: k * step, Prob: p})
		sum += p
	}
	// Fold the unrepresented residual mass — the truncated tails plus
	// the rounding of the forward sum — onto the support maximum:
	// soundly pessimistic (mass moves up) and exactly unit total.
	if rem := 1 - sum; rem > 0 {
		pts = append(pts, dist.Point{Value: n * step, Prob: rem})
	}
	return pts, nil
}
