package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestPBFPaperValues(t *testing.T) {
	// Paper Section IV.A: pfail = 1e-4, 16-byte (128-bit) blocks.
	pbf := PBF(1e-4, 128)
	// 1-(1-1e-4)^128 = 0.012719...
	want := 1 - math.Pow(1-1e-4, 128)
	if math.Abs(pbf-want) > 1e-12 {
		t.Errorf("PBF = %g, want %g", pbf, want)
	}
	if pbf < 0.0127 || pbf > 0.0128 {
		t.Errorf("PBF = %g outside the expected ~1.27%% range", pbf)
	}
}

func TestPBFEdgeCases(t *testing.T) {
	if PBF(0, 128) != 0 {
		t.Error("PBF(0) != 0")
	}
	if PBF(1, 128) != 1 {
		t.Error("PBF(1) != 1")
	}
	// Tiny pfail must not underflow to zero (expm1/log1p path).
	if p := PBF(6.1e-13, 128); p <= 0 || p > 1e-9 {
		t.Errorf("PBF(6.1e-13) = %g, want ~7.8e-11 (45nm roadmap value)", p)
	}
}

func TestPWFSumsToOne(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(8)
		pbf := rng.Float64()
		sum := 0.0
		for _, p := range PWF(w, pbf) {
			if p < 0 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		sumRW := 0.0
		for _, p := range PWFReliableWay(w, pbf) {
			sumRW += p
		}
		return math.Abs(sumRW-1) > 1e-9 == false
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPWFExactUnitMass is the regression test for the renormalization
// of binomial: the raw terms accumulate floating-point error, and any
// deviation from unit mass surfaces as wrong deep-tail quantiles at
// the paper's 1e-15 target. The sum must now be exactly 1.0 — not just
// within a tolerance — for every associativity and failure probability.
func TestPWFExactUnitMass(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pbfs := []float64{0, 1e-12, 1e-6, 0.0127, 0.1, 0.5, 0.9, 1 - 1e-9, 1}
	for i := 0; i < 100; i++ {
		pbfs = append(pbfs, rng.Float64())
	}
	for w := 1; w <= 16; w++ {
		for _, pbf := range pbfs {
			var sum float64
			for _, p := range PWF(w, pbf) {
				if p < 0 {
					t.Fatalf("PWF(%d, %g): negative probability %g", w, pbf, p)
				}
				sum += p
			}
			if sum != 1 {
				t.Errorf("PWF(%d, %g) sums to %.17g, want exactly 1", w, pbf, sum)
			}
			sum = 0
			for _, p := range PWFReliableWay(w+1, pbf) {
				if p < 0 {
					t.Fatalf("PWFReliableWay(%d, %g): negative probability %g", w+1, pbf, p)
				}
				sum += p
			}
			if sum != 1 {
				t.Errorf("PWFReliableWay(%d, %g) sums to %.17g, want exactly 1", w+1, pbf, sum)
			}
		}
	}
}

func TestPWFKnownValues(t *testing.T) {
	// W=4, pbf=0.5: binomial(4, 0.5) = 1/16, 4/16, 6/16, 4/16, 1/16.
	got := PWF(4, 0.5)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("PWF[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// RW variant: binomial over W-1 = 3 ways.
	gotRW := PWFReliableWay(4, 0.5)
	wantRW := []float64{1.0 / 8, 3.0 / 8, 3.0 / 8, 1.0 / 8}
	if len(gotRW) != 4 {
		t.Fatalf("PWFReliableWay length = %d, want 4 (w in [0,W-1])", len(gotRW))
	}
	for i := range wantRW {
		if math.Abs(gotRW[i]-wantRW[i]) > 1e-12 {
			t.Errorf("PWFReliableWay[%d] = %g, want %g", i, gotRW[i], wantRW[i])
		}
	}
}

func TestPWFRWCutsTail(t *testing.T) {
	// The RW removes the all-ways-faulty case: P(w = W) is simply not a
	// point of the RW distribution, and P(W-1 faulty) under RW is larger
	// than under no protection (conditioning on one fewer way).
	pbf := PBF(1e-4, 128)
	none := PWF(4, pbf)
	rw := PWFReliableWay(4, pbf)
	if none[4] <= 0 {
		t.Fatal("unprotected P(all faulty) must be positive")
	}
	if len(rw) != 4 {
		t.Fatal("RW distribution must stop at W-1")
	}
	if rw[3] <= none[4] {
		t.Errorf("P_RW(3 faulty) = %g should exceed P(4 faulty) = %g", rw[3], none[4])
	}
}

func TestNewModel(t *testing.T) {
	cfg := cache.PaperConfig()
	m, err := NewModel(1e-4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pfail != 1e-4 {
		t.Error("Pfail not recorded")
	}
	if math.Abs(m.PBF-PBF(1e-4, 128)) > 1e-15 {
		t.Error("PBF mismatch")
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewModel(bad, cfg); err == nil {
			t.Errorf("NewModel(%v) accepted", bad)
		}
	}
}

func TestSampleFaultMapStatistics(t *testing.T) {
	cfg := cache.PaperConfig()
	m := Model{Pfail: 0, PBF: 0.25}
	rng := rand.New(rand.NewSource(1))
	total := 0
	blocks := 0
	for i := 0; i < 2000; i++ {
		fm := m.SampleFaultMap(rng, cfg)
		total += fm.TotalFaulty()
		blocks += cfg.Sets * cfg.Ways
	}
	rate := float64(total) / float64(blocks)
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("empirical fault rate %g, want ~0.25", rate)
	}
	zero := Model{PBF: 0}
	if fm := zero.SampleFaultMap(rng, cfg); fm.TotalFaulty() != 0 {
		t.Error("PBF=0 produced faults")
	}
}
