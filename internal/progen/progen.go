// Package progen generates random structured programs for property-based
// testing. The generated programs exercise every Builder construct
// (straight-line code, nested bounded loops, if/else, switch, calls) and
// are guaranteed recursion-free, so every generator output builds into a
// valid analyzable CFG.
package progen

import (
	"fmt"
	"math/rand"

	"repro/internal/program"
)

// Params tunes the shape of generated programs.
type Params struct {
	// MaxDepth bounds the nesting of loops/conditionals.
	MaxDepth int
	// MaxItems bounds the number of statements per body.
	MaxItems int
	// MaxOps bounds the size of straight-line runs.
	MaxOps int
	// MaxBound bounds loop bounds.
	MaxBound int64
	// Helpers is the number of callable helper functions.
	Helpers int
	// DataBlocks, when positive, makes the generator emit scalar
	// loads/stores drawn from a pool of this many distinct data
	// addresses (for data-cache analysis testing).
	DataBlocks int
}

// DefaultParams returns generation parameters producing small programs
// suitable for exhaustive validation against concrete simulation.
func DefaultParams() Params {
	return Params{MaxDepth: 3, MaxItems: 4, MaxOps: 8, MaxBound: 5, Helpers: 3}
}

// DataParams is DefaultParams plus a pool of data addresses.
func DataParams() Params {
	p := DefaultParams()
	p.DataBlocks = 12
	return p
}

// Random generates a random program. Helper function i may only call
// helpers with larger indices, which rules out recursion by construction.
func Random(rng *rand.Rand, p Params) *program.Program {
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	if p.MaxItems < 1 {
		p.MaxItems = 1
	}
	if p.MaxOps < 1 {
		p.MaxOps = 1
	}
	if p.MaxBound < 1 {
		p.MaxBound = 1
	}
	g := &gen{rng: rng, p: p}
	b := program.New(fmt.Sprintf("random-%d", rng.Int63()))
	g.fill(b.Func("main"), p.MaxDepth, 0)
	for h := 0; h < p.Helpers; h++ {
		g.fill(b.Func(helperName(h)), p.MaxDepth-1, h+1)
	}
	return b.MustBuild()
}

func helperName(i int) string { return fmt.Sprintf("helper%d", i) }

type gen struct {
	rng *rand.Rand
	p   Params
}

// fill populates a body. minHelper is the smallest helper index this body
// may call (main uses 0; helper i uses i+1).
func (g *gen) fill(bd *program.Body, depth, minHelper int) {
	n := 1 + g.rng.Intn(g.p.MaxItems)
	for i := 0; i < n; i++ {
		g.item(bd, depth, minHelper)
	}
	// Guarantee at least one instruction so bodies are never empty.
	bd.Ops(1 + g.rng.Intn(g.p.MaxOps))
}

func (g *gen) item(bd *program.Body, depth, minHelper int) {
	canCall := minHelper < g.p.Helpers
	if g.p.DataBlocks > 0 && g.rng.Intn(3) == 0 {
		// Scalar data access at a pooled address (4-byte aligned, far
		// from the code region).
		addr := 0x100000 + uint32(g.rng.Intn(g.p.DataBlocks))*4
		if g.rng.Intn(3) == 0 {
			bd.Store(addr)
		} else {
			bd.Load(addr)
		}
	}
	choice := g.rng.Intn(10)
	switch {
	case choice < 4 || depth <= 0:
		bd.Ops(1 + g.rng.Intn(g.p.MaxOps))
	case choice < 6:
		bound := 1 + g.rng.Int63n(g.p.MaxBound)
		bd.Loop(bound, func(inner *program.Body) { g.fill(inner, depth-1, minHelper) })
	case choice < 8:
		if g.rng.Intn(2) == 0 {
			bd.If(func(t *program.Body) { g.fill(t, depth-1, minHelper) }, nil)
		} else {
			bd.If(
				func(t *program.Body) { g.fill(t, depth-1, minHelper) },
				func(e *program.Body) { g.fill(e, depth-1, minHelper) },
			)
		}
	case choice < 9 && canCall:
		callee := minHelper + g.rng.Intn(g.p.Helpers-minHelper)
		bd.Call(helperName(callee))
	default:
		ncases := 2 + g.rng.Intn(2)
		cases := make([]func(*program.Body), ncases)
		for c := range cases {
			cases[c] = func(cb *program.Body) { g.fill(cb, depth-1, minHelper) }
		}
		bd.Switch(cases...)
	}
}
