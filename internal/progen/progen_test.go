package progen

import (
	"math/rand"
	"testing"

	"repro/internal/program"
)

func TestRandomProgramsValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Random(rand.New(rand.NewSource(seed)), DefaultParams())
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := p.Trace(program.FirstChooser, 10_000_000); err != nil {
			t.Fatalf("seed %d: trace: %v", seed, err)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(42)), DefaultParams())
	b := Random(rand.New(rand.NewSource(42)), DefaultParams())
	if a.Name != b.Name || len(a.Blocks) != len(b.Blocks) || len(a.Loops) != len(b.Loops) {
		t.Fatal("same seed produced different programs")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Addr != b.Blocks[i].Addr || a.Blocks[i].NumInstr != b.Blocks[i].NumInstr {
			t.Fatalf("block %d differs between identical seeds", i)
		}
	}
}

func TestParamsRespected(t *testing.T) {
	params := Params{MaxDepth: 1, MaxItems: 2, MaxOps: 3, MaxBound: 2, Helpers: 0}
	for seed := int64(0); seed < 50; seed++ {
		p := Random(rand.New(rand.NewSource(seed)), params)
		for _, l := range p.Loops {
			if l.Bound > 2 {
				t.Fatalf("seed %d: loop bound %d exceeds MaxBound 2", seed, l.Bound)
			}
		}
		if len(p.Funcs) != 1 {
			t.Fatalf("seed %d: %d functions with Helpers=0", seed, len(p.Funcs))
		}
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	p := Random(rand.New(rand.NewSource(1)), Params{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVarietyOfShapes(t *testing.T) {
	// Across many seeds the generator must produce loops, branches and
	// calls (otherwise the property tests exercise too little).
	loops, branches, multiFunc := 0, 0, 0
	for seed := int64(0); seed < 60; seed++ {
		p := Random(rand.New(rand.NewSource(seed)), DefaultParams())
		if len(p.Loops) > 0 {
			loops++
		}
		for _, b := range p.Blocks {
			if len(b.Succs) > 1 && b.Loop < 0 {
				branches++
				break
			}
		}
		inlined := 0
		for _, f := range p.Funcs {
			inlined += f.NumInlined
		}
		if inlined > 1 {
			multiFunc++
		}
	}
	if loops < 30 {
		t.Errorf("only %d/60 programs contain loops", loops)
	}
	if branches < 20 {
		t.Errorf("only %d/60 programs contain non-loop branches", branches)
	}
	if multiFunc < 10 {
		t.Errorf("only %d/60 programs instantiate callees", multiFunc)
	}
}
